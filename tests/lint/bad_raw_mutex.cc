// Lint fixture: raw std:: synchronization primitives outside
// src/common/synchronization.{h,cc}. Each use below must trip
// sync-raw-mutex -- raw locks are invisible to the Clang thread-safety
// analysis and to the HTG_DEADLOCK_DETECT lock-order detector.
//
// expect-lint: sync-raw-mutex

#include <mutex>
#include <shared_mutex>

namespace bad {

void RawLockGuard() {
  static std::mutex mu;  // declaration of the raw type trips too
  std::lock_guard<std::mutex> lock(mu);
}

void RawUniqueLock() {
  static std::shared_mutex smu;
  std::unique_lock<std::shared_mutex> lock(smu);
}

}  // namespace bad
