// Fixture: raw clock reads that would bypass htg::Stopwatch in src/exec.
#include <chrono>
#include <ctime>

namespace htg::exec {

uint64_t BadOperatorTiming() {
  auto t0 = std::chrono::steady_clock::now();  // expect-lint: exec-raw-timing
  using std::chrono::high_resolution_clock;
  auto t1 = high_resolution_clock::now();  // expect-lint: exec-raw-timing
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);  // expect-lint: exec-raw-timing
  return static_cast<uint64_t>((t1 - t0).count()) +
         static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace htg::exec
