// Lint fixture: a switch over StatusCode with a default: label, which
// would silently swallow any StatusCode added later. Not compiled.
// expect-lint: statuscode-switch
#include "common/status.h"

namespace htg {

const char* Classify(const Status& s) {
  switch (s.code()) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kCorruption:
      return "corrupt";
    default:  // statuscode-switch: hides newly added codes
      return "other";
  }
}

}  // namespace htg
