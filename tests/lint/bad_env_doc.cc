// Fixture: references an HTG_* environment knob that docs/OPERATIONS.md
// does not list. Documented knobs (e.g. HTG_SCALE below) must not fire.
// expect-lint: env-doc

#include <cstdlib>

double UndocumentedKnob() {
  const char* env = std::getenv("HTG_NOT_A_REAL_KNOB");
  if (env == nullptr) env = std::getenv("HTG_SCALE");  // documented: clean
  return env ? 1.0 : 0.0;
}
