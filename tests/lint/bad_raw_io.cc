// Lint fixture: raw file I/O outside the Vfs seam. NOT compiled; scanned
// only by `htg_lint.py --selftest`, which asserts each annotated rule fires.
// expect-lint: raw-io
#include <cstdio>
#include <fcntl.h>
#include <unistd.h>

bool WriteDirectly(const char* path, const char* data, int len) {
  FILE* f = fopen(path, "wb");  // raw-io: bypasses storage::Vfs
  if (f == nullptr) return false;
  fwrite(data, 1, len, f);
  fclose(f);
  int fd = ::open(path, O_WRONLY);  // raw-io again
  ::fsync(fd);                      // and again
  ::close(fd);
  return true;
}
