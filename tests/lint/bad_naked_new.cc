// Lint fixture: allocations with no visible owner, and a matching naked
// delete. Not compiled.
// expect-lint: naked-new
#include <memory>

struct Node {
  int value = 0;
};

int UseAfterManualOwnership() {
  Node* n = new Node();  // naked-new: no visible owner
  int v = n->value;
  delete n;  // naked-new (delete form)
  return v;
}

// These idioms are sanctioned and must NOT fire:
std::unique_ptr<Node> Owned() {
  return std::unique_ptr<Node>(new Node());
}
Node& LeakySingleton() {
  static Node& node = *new Node();
  return node;
}
