// Lint fixture: a header with no #pragma once that also includes a .cc
// file and void-discards a call result. Not compiled.
// expect-lint: pragma-once
// expect-lint: include-cc
// expect-lint: void-status
#ifndef HTG_TESTS_LINT_BAD_HEADER_H_
#define HTG_TESTS_LINT_BAD_HEADER_H_

#include "common/status.cc"

namespace htg {

inline void DropStatusInvisibly(const Status& (*op)()) {
  (void)op();  // void-status: use HTG_IGNORE_STATUS instead
}

}  // namespace htg

#endif  // HTG_TESTS_LINT_BAD_HEADER_H_
