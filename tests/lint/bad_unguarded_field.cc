// Lint fixture: a class declaring a Mutex member with no sibling
// HTG_GUARDED_BY annotation. Must trip sync-unguarded-field -- a lock
// the analysis cannot tie to any data is either dead weight or
// protecting fields it is not declared to protect.
//
// expect-lint: sync-unguarded-field

#include "common/synchronization.h"

namespace bad {

class Counter {
 public:
  void Add(long n) {
    htg::MutexLock lock(&mu_);
    total_ += n;
  }

 private:
  htg::Mutex mu_{"bad::Counter::mu_"};
  long total_ = 0;  // should be: long total_ HTG_GUARDED_BY(mu_) = 0;
};

}  // namespace bad
