// Lint fixture: a *Locked() method declared without HTG_REQUIRES(...).
// Must trip sync-locked-suffix -- the suffix is the repo convention for
// "caller already holds the lock", and only the annotation lets Clang
// actually enforce that at every call site.
//
// expect-lint: sync-locked-suffix

#include "common/synchronization.h"

namespace bad {

class Ledger {
 public:
  void Add(long n) {
    htg::MutexLock lock(&mu_);
    AddLocked(n);
  }

 private:
  void AddLocked(long n);  // should carry HTG_REQUIRES(mu_)

  htg::Mutex mu_{"bad::Ledger::mu_"};
  long total_ HTG_GUARDED_BY(mu_) = 0;
};

}  // namespace bad
