// Lint fixture: raw socket syscalls outside src/server/net_socket.{h,cc}.
// Each use below must trip server-raw-socket -- sockets opened behind the
// seam's back skip MSG_NOSIGNAL (a dead peer becomes SIGPIPE), EINTR
// retries, and the typed kTransient/kIOError error mapping.
//
// expect-lint: server-raw-socket

#include <sys/socket.h>

namespace bad {

long RawSocketTraffic() {
  int fd = ::socket(2 /*AF_INET*/, 1 /*SOCK_STREAM*/, 0);
  char buf[16];
  long in = ::recv(fd, buf, sizeof(buf), 0);
  long out = ::send(fd, buf, sizeof(buf), 0);
  ::shutdown(fd, 0);
  return in + out + fd;
}

}  // namespace bad
