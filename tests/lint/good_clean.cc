// Lint fixture: clean file plus every sanctioned suppression/idiom; no
// rule may fire here. Not compiled.
#include <cstdio>
#include <memory>

#include "common/status.h"

namespace htg {

struct Widget {
  int id = 0;
};

// NOLINT suppression is honoured, with and without the htg- prefix.
inline FILE* RawButJustified(const char* path) {
  return fopen(path, "rb");  // NOLINT(htg-raw-io)
}

// Owned allocation and leaky singleton: allowed without suppression.
inline std::unique_ptr<Widget> MakeWidget() {
  return std::unique_ptr<Widget>(new Widget());
}
inline Widget& GlobalWidget() {
  static Widget& w = *new Widget();
  return w;
}

// Exhaustive StatusCode switch (subset shown; no default:). Mentions of
// fopen( inside comments and "string ::open( literals" must not fire.
inline bool IsOk(const Status& s) {
  switch (s.code()) {
    case StatusCode::kOk:
      return true;
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kAlreadyExists:
    case StatusCode::kOutOfRange:
    case StatusCode::kCorruption:
    case StatusCode::kIOError:
    case StatusCode::kTransient:
    case StatusCode::kNotImplemented:
    case StatusCode::kInternal:
    case StatusCode::kAborted:
    case StatusCode::kParseError:
    case StatusCode::kBindError:
    case StatusCode::kExecError:
      return false;
  }
  return false;
}

// The sanctioned way to drop a Status (unlike a (void) cast).
inline void BestEffort(Status (*op)()) { HTG_IGNORE_STATUS(op()); }

}  // namespace htg
