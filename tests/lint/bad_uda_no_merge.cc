// Lint fixture: a UDA whose instance lacks Merge(), so it could never run
// in a parallel partial/final plan (paper Sec. 5.3). Not compiled.
// expect-lint: uda-merge
#include "udf/function.h"

namespace htg::udf {

class BrokenSumInstance : public AggregateInstance {
 public:
  Status Accumulate(const std::vector<Value>& args) override {
    total_ += args[0].AsInt64();
    return Status::OK();
  }
  // No Merge() override: uda-merge must flag this class.
  Result<Value> Terminate() override { return Value::Int64(total_); }

 private:
  int64_t total_ = 0;
};

}  // namespace htg::udf
