// Lint fixture: `.ok();` in statement position, discarding the error the
// [[nodiscard]] Status carried. Not compiled.
// expect-lint: status-ok-drop
#include "common/status.h"

namespace htg {

Status BestEffortDelete(const char*);

void Cleanup(const char* path) {
  BestEffortDelete(path).ok();  // status-ok-drop: error vanishes
}

// Consumed results must NOT fire:
bool CleanupChecked(const char* path) {
  Status s = BestEffortDelete(path);
  if (s.ok()) return true;
  const bool retried = BestEffortDelete(path).ok();
  return retried && s.ok();
}
bool JustReturn(const char* path) { return BestEffortDelete(path).ok(); }

}  // namespace htg
