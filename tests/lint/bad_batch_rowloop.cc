// Fixture: a src/exec batch kernel that secretly degrades to per-row
// pulls. Both detection paths must fire on the same pattern: a class
// deriving BatchIterator, and a free function whose name contains Batch.
// expect-lint: exec-batch-rowloop

#include "exec/batch.h"

namespace htg::exec {

class LeakyBatchScan : public BatchIterator {
 public:
  explicit LeakyBatchScan(storage::RowIterator* child)
      : BatchIterator(0), child_(child) {}

 protected:
  bool ProduceBatch(RowBatch* batch) override {
    batch->Clear();
    Row row;
    while (!batch->full() && child_->Next(&row)) {
      batch->AppendRow(std::move(row));
      row.clear();
    }
    return batch->num_rows() > 0;
  }

 private:
  storage::RowIterator* child_;
};

inline Status DrainOneBatch(storage::RowIterator* iter, RowBatch* batch) {
  batch->Clear();
  Row row;
  while (!batch->full() && iter->Next(&row)) {
    batch->AppendRow(std::move(row));
    row.clear();
  }
  return iter->status();
}

}  // namespace htg::exec
