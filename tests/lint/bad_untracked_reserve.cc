// Lint fixture: a materializing exec operator reserving a row buffer of
// data-proportional size with no memory charge in scope — the buffer is
// invisible to the query budget and can neither fail typed nor spill.
// expect-lint: exec-untracked-reserve

#include <utility>
#include <vector>

namespace htg::exec {

using Value = int;
using Row = std::vector<Value>;

// Buffers its whole input without ever touching a MemoryCharge: the
// reserve below must trip the rule.
void BufferEverything(const std::vector<Row>& input, std::vector<Row>* out) {
  out->reserve(input.size());
  for (const Row& r : input) out->push_back(r);
}

// A fixed-size literal reservation is bounded scratch and stays clean.
void BoundedScratch(std::vector<Row>* out) { out->reserve(64); }

// Arity-sized scratch on a non-row-buffer container stays clean too.
void KeyScratch(const std::vector<int>& exprs) {
  std::vector<int> key;
  key.reserve(exprs.size());
  for (int e : exprs) key.push_back(e);
}

}  // namespace htg::exec
