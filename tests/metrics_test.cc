#include "common/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "genomics/register.h"
#include "sql/engine.h"

namespace htg::obs {
namespace {

TEST(MetricsTest, CounterSingleThread) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.counter.basic");
  const uint64_t before = c->Value();
  c->Add(1);
  c->Add(41);
  EXPECT_EQ(c->Value(), before + 42);
}

TEST(MetricsTest, RegistryReturnsSameInstanceForName) {
  Counter* a = MetricsRegistry::Global().GetCounter("test.counter.same");
  Counter* b = MetricsRegistry::Global().GetCounter("test.counter.same");
  EXPECT_EQ(a, b);
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.hist.same");
  EXPECT_EQ(h, MetricsRegistry::Global().GetHistogram("test.hist.same"));
}

TEST(MetricsTest, CounterConcurrentWritersLoseNothing) {
  Counter* c =
      MetricsRegistry::Global().GetCounter("test.counter.concurrent");
  const uint64_t before = c->Value();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), before + uint64_t{kThreads} * kPerThread);
}

TEST(MetricsTest, HistogramConcurrentWritersLoseNothing) {
  Histogram* h =
      MetricsRegistry::Global().GetHistogram("test.hist.concurrent");
  const uint64_t count_before = h->count();
  const uint64_t sum_before = h->sum();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h] {
      for (int i = 0; i < kPerThread; ++i) {
        h->Record(static_cast<uint64_t>(i % 1000) + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h->count(), count_before + uint64_t{kThreads} * kPerThread);
  EXPECT_GT(h->sum(), sum_before);
}

TEST(MetricsTest, HistogramBucketsAndPercentiles) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.hist.buckets");
  // 100 values of 10 (bit width 4) and 1 value of 1000 (bit width 10).
  for (int i = 0; i < 100; ++i) h->Record(10);
  h->Record(1000);

  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const HistogramSnapshot& hs = snap.histograms.at("test.hist.buckets");
  EXPECT_EQ(hs.count, 101u);
  EXPECT_EQ(hs.sum, 100u * 10 + 1000);
  // p50 falls in the bucket holding the 10s: upper bound 2^4 - 1 = 15.
  EXPECT_EQ(hs.Percentile(0.5), 15u);
  // p99+ must reach the outlier's bucket: upper bound 2^10 - 1 = 1023.
  EXPECT_EQ(hs.Percentile(0.999), 1023u);
}

TEST(MetricsTest, SnapshotDeltaSubtracts) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.counter.delta");
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.hist.delta");
  c->Add(5);
  h->Record(100);
  MetricsSnapshot base = MetricsRegistry::Global().Snapshot();
  c->Add(7);
  h->Record(200);
  h->Record(300);
  MetricsSnapshot now = MetricsRegistry::Global().Snapshot();
  MetricsSnapshot delta = now.Delta(base);
  EXPECT_EQ(delta.counters.at("test.counter.delta"), 7u);
  EXPECT_EQ(delta.histograms.at("test.hist.delta").count, 2u);
  EXPECT_EQ(delta.histograms.at("test.hist.delta").sum, 500u);
}

TEST(MetricsTest, DeltaTreatsMetricsAbsentFromBaseAsZero) {
  MetricsSnapshot base;  // empty
  Counter* c = MetricsRegistry::Global().GetCounter("test.counter.fresh");
  c->Add(3);
  MetricsSnapshot delta = MetricsRegistry::Global().Snapshot().Delta(base);
  EXPECT_GE(delta.counters.at("test.counter.fresh"), 3u);
}

TEST(MetricsTest, KillSwitchStopsRecording) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.counter.disabled");
  const uint64_t before = c->Value();
  SetMetricsEnabled(false);
  c->Add(100);
  SetMetricsEnabled(true);
  EXPECT_EQ(c->Value(), before);
  c->Add(1);
  EXPECT_EQ(c->Value(), before + 1);
}

TEST(MetricsTest, ToJsonIsWellFormedAndSorted) {
  MetricsSnapshot snap;
  snap.counters["b.count"] = 2;
  snap.counters["a.count"] = 1;
  snap.gauges["g"] = -5;
  HistogramSnapshot hs;
  hs.count = 1;
  hs.sum = 10;
  hs.buckets.assign(Histogram::kBuckets, 0);
  hs.buckets[4] = 1;
  snap.histograms["h"] = hs;
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"a.count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"b.count\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"g\":-5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":1"), std::string::npos) << json;
  // std::map iteration order makes the output deterministic.
  EXPECT_LT(json.find("a.count"), json.find("b.count"));
}

TEST(MetricsTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE integration: per-operator runtime stats flow through the
// engine and render in the annotated plan tree.

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    DatabaseOptions options;
    options.filestream_root =
        "/tmp/htg_metrics_test_" + std::to_string(counter++);
    auto db = Database::Open("metricstest", options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    ASSERT_TRUE(db_->filestream()->Clear().ok());
    ASSERT_TRUE(genomics::RegisterGenomicsExtensions(db_.get()).ok());
    engine_ = std::make_unique<sql::SqlEngine>(db_.get());
  }

  std::string ExplainAnalyze(const std::string& sql) {
    Result<sql::QueryResult> result =
        engine_->Execute("EXPLAIN ANALYZE " + sql);
    EXPECT_TRUE(result.ok()) << sql << "\n--> "
                             << result.status().ToString();
    return result.ok() ? result->message : std::string();
  }

  void Exec(const std::string& sql) {
    Result<sql::QueryResult> result = engine_->Execute(sql);
    ASSERT_TRUE(result.ok()) << sql << "\n--> "
                             << result.status().ToString();
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<sql::SqlEngine> engine_;
};

TEST_F(ExplainAnalyzeTest, RowCountsFlowThroughScanFilterAggregate) {
  Exec("CREATE TABLE t (k INT, v BIGINT)");
  Exec("INSERT INTO t VALUES (1, 10), (1, 20), (2, 30), (2, 5), (3, 1)");
  const std::string plan =
      ExplainAnalyze("SELECT k, SUM(v) FROM t WHERE v >= 10 GROUP BY k");
  // Scan emits all 5 rows; the filter passes 3; two groups survive.
  EXPECT_NE(plan.find("actual rows=5"), std::string::npos) << plan;
  EXPECT_NE(plan.find("actual rows=3"), std::string::npos) << plan;
  EXPECT_NE(plan.find("actual rows=2"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Filter"), std::string::npos) << plan;
  EXPECT_NE(plan.find("total: 2 rows"), std::string::npos) << plan;
}

TEST_F(ExplainAnalyzeTest, EstimatedVersusActualShown) {
  Exec("CREATE TABLE t (k INT)");
  Exec("INSERT INTO t VALUES (1), (2), (3), (4)");
  const std::string plan = ExplainAnalyze("SELECT k FROM t");
  EXPECT_NE(plan.find("est rows=4"), std::string::npos) << plan;
  EXPECT_NE(plan.find("actual rows=4"), std::string::npos) << plan;
  EXPECT_NE(plan.find("time="), std::string::npos) << plan;
}

TEST_F(ExplainAnalyzeTest, CrossApplyWithAggregate) {
  Exec("CREATE TABLE reads (id BIGINT PRIMARY KEY, pos BIGINT, "
       "seq VARCHAR(100), quals VARCHAR(100))");
  Exec("INSERT INTO reads VALUES (1, 0, 'ACGTACGT', 'IIIIIIII'), "
       "(2, 10, 'TTTTCCCC', 'IIIIIIII')");
  const std::string plan = ExplainAnalyze(
      "SELECT r.id, COUNT(*) FROM reads r "
      "CROSS APPLY PivotAlignment(r.pos, r.seq, r.quals) p GROUP BY r.id");
  // Every operator in the tree carries actuals; the apply fans out one row
  // per base call (8 per read, 16 total).
  EXPECT_NE(plan.find("Apply"), std::string::npos) << plan;
  EXPECT_NE(plan.find("actual rows=16"), std::string::npos) << plan;
  EXPECT_NE(plan.find("total: 2 rows"), std::string::npos) << plan;
}

TEST_F(ExplainAnalyzeTest, ParallelPlanShowsDopAndPerWorkerRows) {
  Exec("CREATE TABLE big (k INT, v BIGINT)");
  auto* table = *db_->GetTable("big");
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(
        db_->InsertRow(table, Row{Value::Int32(i % 5), Value::Int64(i)})
            .ok());
  }
  // Plain EXPLAIN shows the effective DOP without executing.
  Result<std::string> explain =
      engine_->Explain("SELECT k, COUNT(*) FROM big GROUP BY k");
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("Gather Streams"), std::string::npos) << *explain;
  EXPECT_NE(explain->find("DOP="), std::string::npos) << *explain;

  const std::string plan =
      ExplainAnalyze("SELECT k, COUNT(*) FROM big GROUP BY k");
  EXPECT_NE(plan.find("DOP="), std::string::npos) << plan;
  EXPECT_NE(plan.find("[worker 0]"), std::string::npos) << plan;
  // All 20000 scanned rows are accounted for across workers.
  EXPECT_NE(plan.find("actual rows=20000"), std::string::npos) << plan;
  EXPECT_NE(plan.find("total: 5 rows"), std::string::npos) << plan;
}

TEST_F(ExplainAnalyzeTest, PlainExplainDoesNotExecute) {
  Exec("CREATE TABLE t (k INT)");
  Exec("INSERT INTO t VALUES (1)");
  Result<sql::QueryResult> result = engine_->Execute("EXPLAIN SELECT k FROM t");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->message.find("actual rows"), std::string::npos)
      << result->message;
}

}  // namespace
}  // namespace htg::obs
