// Crash-safety harness: deterministic fault injection through the Vfs
// seam, byte-flip corruption detection through the CRC32C checksums, and
// statement-level graceful degradation of the SQL engine.
//
// The core sweep follows the classic recovery-testing recipe: run a
// workload once fault-free to number its mutating I/O ops, then for every
// k re-run it with "fail op k and crash", reopen the store with a healthy
// Vfs, and assert the durability invariant — every blob is either absent
// or fully present with a matching checksum. HTG_FAULT_SEED varies the
// torn-write prefix lengths across CI runs.

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "genomics/register.h"
#include "sql/engine.h"
#include "storage/fault_injection.h"
#include "storage/filestream.h"
#include "storage/page.h"
#include "storage/vfs.h"
#include "storage/wal.h"

namespace htg::storage {
namespace {

// ---------------------------------------------------------------------
// CRC32C

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 check value for "123456789".
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  // Extend in pieces == one shot.
  const std::string data = "The quick brown fox jumps over the lazy dog";
  uint32_t piecewise = 0;
  for (char c : data) piecewise = Crc32cExtend(piecewise, &c, 1);
  EXPECT_EQ(piecewise, Crc32c(data));
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::string data(512, '\0');
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<char>(i);
  const uint32_t clean = Crc32c(data);
  for (size_t i = 0; i < data.size(); i += 37) {
    std::string flipped = data;
    flipped[i] ^= 0x10;
    EXPECT_NE(Crc32c(flipped), clean) << "flip at " << i;
  }
}

// ---------------------------------------------------------------------
// Page checksums

Schema PageSchema() {
  Schema schema;
  schema.AddColumn({.name = "id", .type = DataType::kInt64});
  schema.AddColumn({.name = "seq", .type = DataType::kString});
  schema.AddColumn({.name = "score", .type = DataType::kDouble});
  return schema;
}

class PageCorruptionTest : public ::testing::TestWithParam<Compression> {};

TEST_P(PageCorruptionTest, EveryByteFlipYieldsCorruption) {
  const Schema schema = PageSchema();
  PageBuilder builder(&schema, GetParam());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(builder
                    .Add(Row{Value::Int64(i),
                             Value::String("ACGTACGT" + std::to_string(i)),
                             Value::Double(i * 0.25)})
                    .ok());
  }
  const std::string page = builder.Finish();

  // Sanity: the clean page decodes.
  {
    PageReader reader(&schema, Slice(page));
    ASSERT_TRUE(reader.Init().ok());
    Row row;
    int rows = 0;
    while (reader.Next(&row)) ++rows;
    ASSERT_TRUE(reader.status().ok());
    ASSERT_EQ(rows, 20);
  }

  // Flip one bit at every byte position (including inside the checksum
  // trailer itself): Init must refuse the page with a typed Corruption.
  for (size_t i = 0; i < page.size(); ++i) {
    std::string corrupt = page;
    corrupt[i] ^= 0x04;
    PageReader reader(&schema, Slice(corrupt));
    const Status s = reader.Init();
    ASSERT_FALSE(s.ok()) << "flip at byte " << i << " went undetected";
    EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  }
}

TEST_P(PageCorruptionTest, TruncatedPageYieldsCorruption) {
  const Schema schema = PageSchema();
  PageBuilder builder(&schema, GetParam());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        builder.Add(Row{Value::Int64(i), Value::String("x"), Value::Double(0)})
            .ok());
  }
  const std::string page = builder.Finish();
  for (size_t cut : {page.size() - 1, page.size() / 2, size_t{1}}) {
    PageReader reader(&schema, Slice(page.data(), cut));
    EXPECT_TRUE(reader.Init().IsCorruption()) << "cut to " << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, PageCorruptionTest,
                         ::testing::Values(Compression::kNone,
                                           Compression::kRow,
                                           Compression::kPage));

// ---------------------------------------------------------------------
// WAL

TEST(WalTest, RoundTripsRecords) {
  const std::string dir = "/tmp/htg_wal_test_1";
  ASSERT_TRUE(Vfs::Default()->CreateDirs(dir).ok());
  const std::string path = dir + "/wal.log";
  HTG_IGNORE_STATUS(Vfs::Default()->DeleteFile(path));

  std::vector<WalRecord> recovered;
  {
    auto wal = WriteAheadLog::Open(Vfs::Default(), path, &recovered);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(recovered.empty());
    ASSERT_TRUE(
        (*wal)
            ->Append({WalRecordType::kIntentCreate, "blob_a", 123, 0xDEAD},
                     /*sync=*/true)
            .ok());
    ASSERT_TRUE((*wal)
                    ->Append({WalRecordType::kCommitCreate, "blob_a", 0, 0},
                             /*sync=*/false)
                    .ok());
  }
  auto wal = WriteAheadLog::Open(Vfs::Default(), path, &recovered);
  ASSERT_TRUE(wal.ok());
  ASSERT_EQ(recovered.size(), 2u);
  EXPECT_EQ(recovered[0].type, WalRecordType::kIntentCreate);
  EXPECT_EQ(recovered[0].name, "blob_a");
  EXPECT_EQ(recovered[0].size, 123u);
  EXPECT_EQ(recovered[0].content_crc, 0xDEADu);
  EXPECT_EQ(recovered[1].type, WalRecordType::kCommitCreate);
}

TEST(WalTest, TornTailIsIgnored) {
  const std::string dir = "/tmp/htg_wal_test_2";
  ASSERT_TRUE(Vfs::Default()->CreateDirs(dir).ok());
  const std::string path = dir + "/wal.log";
  HTG_IGNORE_STATUS(Vfs::Default()->DeleteFile(path));

  const std::string rec1 =
      EncodeWalRecord({WalRecordType::kIntentCreate, "blob_a", 7, 1});
  const std::string rec2 =
      EncodeWalRecord({WalRecordType::kIntentDelete, "blob_b", 0, 0});
  // A crash mid-append leaves a torn final record.
  for (size_t cut = 0; cut < rec2.size(); ++cut) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << rec1 << rec2.substr(0, cut);
    out.close();
    std::vector<WalRecord> recovered;
    auto wal = WriteAheadLog::Open(Vfs::Default(), path, &recovered);
    ASSERT_TRUE(wal.ok()) << "cut " << cut;
    ASSERT_EQ(recovered.size(), 1u) << "cut " << cut;
    EXPECT_EQ(recovered[0].name, "blob_a");
  }
}

// ---------------------------------------------------------------------
// FileStream store: corruption detection + crash-recovery sweep

// Flips one byte in the middle of an on-disk file.
void FlipByteOnDisk(const std::string& path) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(0, std::ios::end);
  const std::streamoff size = f.tellg();
  ASSERT_GT(size, 0);
  f.seekg(size / 2);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x20);
  f.seekp(size / 2);
  f.write(&byte, 1);
}

TEST(FileStreamFaultTest, BitRotDetectedOnRead) {
  auto store = FileStreamStore::Open("/tmp/htg_fi_bitrot");
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Clear().ok());
  auto path = (*store)->CreateBlob("reads.fastq", "@r1\nACGTACGTACGT\n+\nIIII");
  ASSERT_TRUE(path.ok());
  ASSERT_TRUE((*store)->VerifyBlob(*path).ok());

  FlipByteOnDisk(*path);
  EXPECT_TRUE((*store)->VerifyBlob(*path).IsCorruption());
  Result<std::string> bytes = (*store)->ReadAll(*path);
  ASSERT_FALSE(bytes.ok());
  EXPECT_TRUE(bytes.status().IsCorruption()) << bytes.status().ToString();
}

TEST(FileStreamFaultTest, TransientFaultsAreRetriedToSuccess) {
  FaultInjectingVfs vfs(Vfs::Default(), FaultPlan{});  // armed after Open

  FileStreamOptions options;
  options.vfs = &vfs;
  auto store = FileStreamStore::Open("/tmp/htg_fi_transient", options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Clear().ok());

  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kTransientEio;
  plan.fail_at_op = 3;
  plan.transient_failures = 2;  // < RetryPolicy default of 4 attempts
  vfs.Reset(plan);

  auto path = (*store)->CreateBlob("lane1", "transient faults should heal");
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  EXPECT_TRUE(vfs.fault_fired());
  auto bytes = (*store)->ReadAll(*path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "transient faults should heal");
}

// The workload the sweep protects: three creates and one delete, with
// deterministic content per name hint.
std::map<std::string, std::string> ExpectedBlobs() {
  return {{"lane1", std::string(2000, 'A') + "end-of-lane1"},
          {"lane2", "short blob"},
          {"lane3", std::string(512, 'G')}};
}

// Runs the workload, tolerating injected failures. Returns paths by hint.
void RunWorkload(FileStreamStore* store) {
  std::map<std::string, std::string> paths;
  for (const auto& [hint, content] : ExpectedBlobs()) {
    Result<std::string> p = store->CreateBlob(hint, content);
    if (p.ok()) paths[hint] = *p;
  }
  // Delete one blob so the sweep also crosses delete intents.
  auto it = paths.find("lane2");
  // The delete may hit an injected fault; the sweep only needs the intent.
  if (it != paths.end()) HTG_IGNORE_STATUS(store->Delete(it->second));
}

// The durability invariant after recovery: every blob in the catalog is
// fully readable and checksum-clean, and its content is one of the
// workload's (no torn prefix ever becomes visible).
void VerifyInvariants(const std::string& root) {
  auto reopened = FileStreamStore::Open(root);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const auto expected = ExpectedBlobs();
  for (const std::string& path : (*reopened)->ListBlobs()) {
    ASSERT_TRUE((*reopened)->VerifyBlob(path).ok()) << path;
    Result<std::string> bytes = (*reopened)->ReadAll(path);
    ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
    bool matches_some_workload_blob = false;
    for (const auto& [hint, content] : expected) {
      if (*bytes == content) matches_some_workload_blob = true;
    }
    EXPECT_TRUE(matches_some_workload_blob)
        << path << " holds " << bytes->size() << " unexpected bytes";
  }
  ASSERT_TRUE((*reopened)->Clear().ok());
}

TEST(FileStreamFaultTest, CrashRecoverySweep) {
  const std::string root = "/tmp/htg_fi_sweep";
  // Fault-free pass to number the workload's mutating ops.
  {
    auto store = FileStreamStore::Open(root);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Clear().ok());
  }
  FaultPlan probe;  // kNone: counts ops without failing any
  probe.seed = FaultPlan::SeedFromEnv();
  FaultInjectingVfs counter(Vfs::Default(), probe);
  {
    FileStreamOptions options;
    options.vfs = &counter;
    auto store = FileStreamStore::Open(root, options);
    ASSERT_TRUE(store.ok());
    RunWorkload(store->get());
  }
  const int64_t total_ops = counter.ops_seen();
  ASSERT_GT(total_ops, 10) << "workload too small to be a meaningful sweep";
  VerifyInvariants(root);

  const FaultPlan::Kind kinds[] = {
      FaultPlan::Kind::kFail, FaultPlan::Kind::kTornWrite,
      FaultPlan::Kind::kNoSpace, FaultPlan::Kind::kSyncFail};
  for (FaultPlan::Kind kind : kinds) {
    for (int64_t k = 0; k < total_ops; ++k) {
      FaultPlan plan;
      plan.kind = kind;
      plan.fail_at_op = k;
      plan.seed = FaultPlan::SeedFromEnv() + static_cast<uint64_t>(k);
      plan.crash_after_fault = true;
      FaultInjectingVfs vfs(Vfs::Default(), plan);
      FileStreamOptions options;
      options.vfs = &vfs;
      // Disable retries: a crashed process never gets to retry, and the
      // sweep should exercise the un-healed path.
      options.retry.max_attempts = 1;
      {
        auto store = FileStreamStore::Open(root, options);
        // Open itself may hit the fault (recovery I/O is swept too).
        if (store.ok()) RunWorkload(store->get());
      }
      SCOPED_TRACE("kind=" + std::to_string(static_cast<int>(kind)) +
                   " fail_at_op=" + std::to_string(k));
      VerifyInvariants(root);
    }
  }
}

TEST(FileStreamFaultTest, RecoveryRollsForwardCommittedCreate) {
  const std::string root = "/tmp/htg_fi_rollfwd";
  {
    auto store = FileStreamStore::Open(root);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Clear().ok());
  }
  // Crash immediately after the blob file lands (rename) but before the
  // commit record: recovery must roll the create forward from the intent.
  FaultPlan probe;
  FaultInjectingVfs counter(Vfs::Default(), probe);
  std::string blob_path;
  {
    FileStreamOptions options;
    options.vfs = &counter;
    auto store = FileStreamStore::Open(root, options);
    ASSERT_TRUE(store.ok());
    auto p = (*store)->CreateBlob("lane9", "roll me forward");
    ASSERT_TRUE(p.ok());
    blob_path = *p;
  }
  // Fault the op *after* the rename of this create in a fresh run: sweep
  // positions differ per run, so instead simulate directly — delete the
  // manifest and WAL commit by rewriting the WAL with only the intent.
  auto vfs = Vfs::Default();
  const std::string content = "roll me forward";
  std::vector<WalRecord> dummy;
  {
    auto wal = WriteAheadLog::Open(vfs, root + "/wal.log", &dummy);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Reset().ok());
    WalRecord intent;
    intent.type = WalRecordType::kIntentCreate;
    intent.name = blob_path.substr(root.size() + 1);
    intent.size = content.size();
    intent.content_crc = Crc32c(content);
    ASSERT_TRUE((*wal)->Append(intent, true).ok());
  }
  HTG_IGNORE_STATUS(vfs->DeleteFile(root + "/MANIFEST"));

  auto reopened = FileStreamStore::Open(root);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->recovery_stats().creates_rolled_forward, 1u);
  auto bytes = (*reopened)->ReadAll(blob_path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, content);
}

}  // namespace
}  // namespace htg::storage

// ---------------------------------------------------------------------
// Engine-level graceful degradation

namespace htg::sql {
namespace {

TEST(EngineDegradationTest, FailedStatementLeavesSessionUsable) {
  storage::FaultPlan plan;  // armed later via Reset
  storage::FaultInjectingVfs vfs(storage::Vfs::Default(), plan);

  DatabaseOptions options;
  options.filestream_root = "/tmp/htg_fi_engine";
  options.filestream_options.vfs = &vfs;
  options.filestream_options.retry.max_attempts = 1;
  auto db = Database::Open("faulty", options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->filestream()->Clear().ok());
  ASSERT_TRUE(genomics::RegisterGenomicsExtensions(db->get()).ok());
  SqlEngine engine(db->get());

  ASSERT_TRUE(engine
                  .Execute("CREATE TABLE files (id INT, "
                           "data VARBINARY(MAX) FILESTREAM)")
                  .ok());
  const uint64_t before = (*db)->filestream()->TotalBytes();

  // A hard (non-crash) I/O fault on the next blob write: the statement
  // fails, its partial effects roll back, the session keeps going.
  storage::FaultPlan hard;
  hard.kind = storage::FaultPlan::Kind::kNoSpace;
  hard.fail_at_op = 0;
  hard.crash_after_fault = false;
  vfs.Reset(hard);
  Result<QueryResult> failed =
      engine.Execute("INSERT INTO files VALUES (1, 'doomed-bytes')");
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(vfs.fault_fired());
  EXPECT_EQ((*db)->filestream()->TotalBytes(), before);
  EXPECT_EQ((*engine.Execute("SELECT COUNT(*) FROM files"))
                .rows[0][0]
                .AsInt64(),
            0);

  // Device recovered: the same session succeeds without reopening.
  storage::FaultPlan healthy;
  vfs.Reset(healthy);
  ASSERT_TRUE(
      engine.Execute("INSERT INTO files VALUES (1, 'alive-again')").ok());
  EXPECT_EQ((*engine.Execute("SELECT COUNT(*) FROM files"))
                .rows[0][0]
                .AsInt64(),
            1);
  EXPECT_EQ((*engine.Execute("SELECT DATALENGTH(data) FROM files"))
                .rows[0][0]
                .AsInt64(),
            11);
}

TEST(EngineDegradationTest, TransientFaultRetriedAtStatementLevel) {
  storage::FaultPlan plan;
  storage::FaultInjectingVfs vfs(storage::Vfs::Default(), plan);

  DatabaseOptions options;
  options.filestream_root = "/tmp/htg_fi_engine_retry";
  options.filestream_options.vfs = &vfs;
  auto db = Database::Open("flaky", options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->filestream()->Clear().ok());
  SqlEngine engine(db->get());
  ASSERT_TRUE(engine
                  .Execute("CREATE TABLE files (id INT, "
                           "data VARBINARY(MAX) FILESTREAM)")
                  .ok());

  // The device flakes twice, then heals: the storage-level backoff (4
  // attempts) absorbs it and the statement succeeds on the first try.
  storage::FaultPlan flaky;
  flaky.kind = storage::FaultPlan::Kind::kTransientEio;
  flaky.fail_at_op = 1;
  flaky.transient_failures = 2;
  vfs.Reset(flaky);
  ASSERT_TRUE(
      engine.Execute("INSERT INTO files VALUES (7, 'persisted')").ok());
  EXPECT_TRUE(vfs.fault_fired());
  EXPECT_EQ((*engine.Execute("SELECT COUNT(*) FROM files"))
                .rows[0][0]
                .AsInt64(),
            1);
}

}  // namespace
}  // namespace htg::sql
