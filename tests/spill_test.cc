// Memory governance and spill-to-disk degradation: parity between
// in-memory and forced-spill execution for sort / hash aggregate / hash
// join (row mode, batch mode, and DOP-8 parallel aggregation), typed
// kResourceExhausted failures when spilling is unavailable, EXPLAIN
// ANALYZE spill reporting, and fault injection into the spill write path
// through the Vfs seam (ENOSPC, torn write, transient EIO) — after which
// the session keeps working and no orphan spill files remain.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "sql/engine.h"
#include "storage/fault_injection.h"
#include "storage/vfs.h"

namespace htg::sql {
namespace {

constexpr int kRows = 12000;   // above parallel_threshold (10000)
constexpr int kGroups = 500;   // distinct aggregation keys
constexpr int kDimRows = 2000; // join build side (4 rows per key)
constexpr int64_t kTinyBudget = 64 * 1024;  // forces multi-run spills

std::string PayloadFor(int i) {
  // 32 deterministic chars so each row carries real bytes.
  std::string s;
  s.reserve(32);
  uint64_t x = 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(i + 1);
  for (int c = 0; c < 32; ++c) {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    s.push_back(static_cast<char>('a' + (x * 0x2545F4914F6CDD1DULL >> 59) % 26));
  }
  return s;
}

// Opens a database with the given memory governance settings and loads
// the deterministic fact table t and dimension table u.
std::unique_ptr<Database> OpenLoaded(const std::string& tag,
                                     int64_t query_mem_bytes,
                                     bool enable_spill, size_t batch_rows,
                                     int max_dop,
                                     storage::Vfs* vfs = nullptr) {
  DatabaseOptions options;
  options.filestream_root = "/tmp/htg_spill_test_" + tag;
  std::filesystem::remove_all(options.filestream_root);
  options.query_mem_bytes = query_mem_bytes;
  options.enable_spill = enable_spill;
  options.batch_rows = batch_rows;
  options.max_dop = max_dop;
  if (vfs != nullptr) options.filestream_options.vfs = vfs;
  auto db = Database::Open("spill_" + tag, options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  if (!db.ok()) return nullptr;
  SqlEngine engine(db->get());
  EXPECT_TRUE(engine
                  .Execute("CREATE TABLE t (k INT, v BIGINT, s VARCHAR(64))")
                  .ok());
  EXPECT_TRUE(engine.Execute("CREATE TABLE u (k INT, w BIGINT)").ok());
  catalog::TableDef* t = *(*db)->GetTable("t");
  for (int i = 0; i < kRows; ++i) {
    const Status s = (*db)->InsertRow(
        t, Row{Value::Int32(i % kGroups), Value::Int64(i),
               Value::String(PayloadFor(i))});
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  catalog::TableDef* u = *(*db)->GetTable("u");
  for (int i = 0; i < kDimRows; ++i) {
    const Status s = (*db)->InsertRow(
        u, Row{Value::Int32(i % kGroups), Value::Int64(i * 10)});
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  return std::move(*db);
}

std::vector<std::string> RowStrings(const QueryResult& r) {
  std::vector<std::string> out;
  out.reserve(r.rows.size());
  for (const Row& row : r.rows) {
    std::string line;
    for (const Value& v : row) {
      line += v.is_null() ? std::string("<null>") : v.ToString();
      line += '|';
    }
    out.push_back(std::move(line));
  }
  return out;
}

uint64_t SpillRunsCounter() {
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  const auto it = snap.counters.find("exec.spill.runs");
  return it == snap.counters.end() ? 0 : it->second;
}

// Runs `sql` on both databases and asserts identical result multisets
// (and identical order when `ordered`); asserts the tiny-budget run
// actually spilled.
void ExpectParity(SqlEngine* reference, SqlEngine* tiny,
                  const std::string& sql, bool ordered) {
  Result<QueryResult> expect = reference->Execute(sql);
  ASSERT_TRUE(expect.ok()) << sql << "\n--> " << expect.status().ToString();
  const uint64_t runs_before = SpillRunsCounter();
  Result<QueryResult> got = tiny->Execute(sql);
  ASSERT_TRUE(got.ok()) << sql << "\n--> " << got.status().ToString();
  EXPECT_GT(SpillRunsCounter(), runs_before)
      << "tiny-budget run did not spill: " << sql;
  std::vector<std::string> want = RowStrings(*expect);
  std::vector<std::string> have = RowStrings(*got);
  ASSERT_EQ(want.size(), have.size()) << sql;
  if (!ordered) {
    std::sort(want.begin(), want.end());
    std::sort(have.begin(), have.end());
  }
  EXPECT_EQ(want, have) << sql;
}

// batch_rows parameter: 1 = legacy row-at-a-time path, 0 = vectorized
// batches (the default).
class SpillParityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SpillParityTest, ExternalSortMatchesInMemorySort) {
  auto ref = OpenLoaded("sortref_" + std::to_string(GetParam()), 0, true,
                        GetParam(), 4);
  auto tiny = OpenLoaded("sorttiny_" + std::to_string(GetParam()), kTinyBudget,
                         true, GetParam(), 4);
  ASSERT_NE(ref, nullptr);
  ASSERT_NE(tiny, nullptr);
  SqlEngine ref_engine(ref.get());
  SqlEngine tiny_engine(tiny.get());
  ExpectParity(&ref_engine, &tiny_engine,
               "SELECT k, v, s FROM t ORDER BY v DESC", /*ordered=*/true);
  ExpectParity(&ref_engine, &tiny_engine,
               "SELECT s, v FROM t ORDER BY s, v", /*ordered=*/true);
}

TEST_P(SpillParityTest, SpilledAggregateMatchesInMemoryAggregate) {
  auto ref = OpenLoaded("aggref_" + std::to_string(GetParam()), 0, true,
                        GetParam(), 1);
  auto tiny = OpenLoaded("aggtiny_" + std::to_string(GetParam()), kTinyBudget,
                         true, GetParam(), 1);
  ASSERT_NE(ref, nullptr);
  ASSERT_NE(tiny, nullptr);
  SqlEngine ref_engine(ref.get());
  SqlEngine tiny_engine(tiny.get());
  ExpectParity(&ref_engine, &tiny_engine,
               "SELECT k, COUNT(*), SUM(v), MIN(s), MAX(s) FROM t GROUP BY k",
               /*ordered=*/false);
  ExpectParity(&ref_engine, &tiny_engine,
               "SELECT s, COUNT(*) FROM t GROUP BY s", /*ordered=*/false);
}

TEST_P(SpillParityTest, ParallelAggregateSpillsAtDop8) {
  auto ref = OpenLoaded("pagref_" + std::to_string(GetParam()), 0, true,
                        GetParam(), 8);
  auto tiny = OpenLoaded("pagtiny_" + std::to_string(GetParam()), kTinyBudget,
                         true, GetParam(), 8);
  ASSERT_NE(ref, nullptr);
  ASSERT_NE(tiny, nullptr);
  SqlEngine ref_engine(ref.get());
  SqlEngine tiny_engine(tiny.get());
  ExpectParity(&ref_engine, &tiny_engine,
               "SELECT k, COUNT(*), SUM(v), MIN(s) FROM t GROUP BY k",
               /*ordered=*/false);
}

TEST_P(SpillParityTest, GraceHashJoinMatchesInMemoryJoin) {
  auto ref = OpenLoaded("joinref_" + std::to_string(GetParam()), 0, true,
                        GetParam(), 1);
  auto tiny = OpenLoaded("jointiny_" + std::to_string(GetParam()), kTinyBudget,
                         true, GetParam(), 1);
  ASSERT_NE(ref, nullptr);
  ASSERT_NE(tiny, nullptr);
  SqlEngine ref_engine(ref.get());
  SqlEngine tiny_engine(tiny.get());
  ExpectParity(&ref_engine, &tiny_engine,
               "SELECT t.v, u.w FROM t JOIN u ON t.k = u.k WHERE u.w < 2000",
               /*ordered=*/false);
}

INSTANTIATE_TEST_SUITE_P(RowAndBatchModes, SpillParityTest,
                         ::testing::Values<size_t>(1, 0));

TEST(SpillDisabledTest, OverBudgetFailsTypedAndSessionSurvives) {
  auto db = OpenLoaded("nospill", kTinyBudget, /*enable_spill=*/false, 0, 4);
  ASSERT_NE(db, nullptr);
  SqlEngine engine(db.get());
  for (const char* sql :
       {"SELECT k, v, s FROM t ORDER BY v DESC",
        "SELECT k, COUNT(*), SUM(v) FROM t GROUP BY k",
        "SELECT t.v, u.w FROM t JOIN u ON t.k = u.k"}) {
    Result<QueryResult> r = engine.Execute(sql);
    ASSERT_FALSE(r.ok()) << sql;
    EXPECT_TRUE(r.status().IsResourceExhausted())
        << sql << "\n--> " << r.status().ToString();
  }
  // The failures are statement-level: the same session keeps answering.
  Result<QueryResult> alive = engine.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(alive.ok()) << alive.status().ToString();
  EXPECT_EQ(alive->rows[0][0].AsInt64(), kRows);
}

TEST(SpillDisabledTest, DistinctHasNoSpillAndFailsTyped) {
  // DISTINCT's dedup set has no out-of-core fallback: over budget it
  // fails typed even with spilling enabled.
  auto db = OpenLoaded("distinct", kTinyBudget, /*enable_spill=*/true, 0, 4);
  ASSERT_NE(db, nullptr);
  SqlEngine engine(db.get());
  Result<QueryResult> r = engine.Execute("SELECT DISTINCT s, v FROM t");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  EXPECT_TRUE(engine.Execute("SELECT COUNT(*) FROM t").ok());
}

TEST(SpillExplainTest, AnalyzeReportsSpillRunsAndPeakMem) {
  auto db = OpenLoaded("explain", kTinyBudget, true, 0, 4);
  ASSERT_NE(db, nullptr);
  SqlEngine engine(db.get());
  Result<QueryResult> r = engine.Execute(
      "EXPLAIN ANALYZE SELECT k, COUNT(*), SUM(v) FROM t GROUP BY k");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->message.find("peak-mem="), std::string::npos) << r->message;
  EXPECT_NE(r->message.find("spill runs="), std::string::npos) << r->message;
  EXPECT_NE(r->message.find("memory: peak="), std::string::npos) << r->message;
  EXPECT_NE(r->message.find("budget 0.1 MiB"), std::string::npos)
      << r->message;

  // An in-budget statement reports zero spill runs in the summary.
  Result<QueryResult> quiet =
      engine.Execute("EXPLAIN ANALYZE SELECT COUNT(*) FROM u");
  ASSERT_TRUE(quiet.ok());
  EXPECT_NE(quiet->message.find("spill runs=0"), std::string::npos)
      << quiet->message;
}

// ---------------------------------------------------------------------
// Fault injection into the spill write path

bool AnySpillFilesLeft(const std::string& root) {
  const std::filesystem::path dir = root + "/tablespace";
  if (!std::filesystem::exists(dir)) return false;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("spill", 0) == 0) return true;
  }
  return false;
}

class SpillFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    vfs_ = std::make_unique<storage::FaultInjectingVfs>(
        storage::Vfs::Default(), storage::FaultPlan{});
    db_ = OpenLoaded("fault", kTinyBudget, true, 0, 4, vfs_.get());
    ASSERT_NE(db_, nullptr);
    engine_ = std::make_unique<SqlEngine>(db_.get());
  }

  void Arm(storage::FaultPlan::Kind kind, int64_t at, int transient = 2) {
    storage::FaultPlan plan;
    plan.kind = kind;
    plan.fail_at_op = at;
    plan.transient_failures = transient;
    plan.crash_after_fault = false;  // device degrades, process survives
    vfs_->Reset(plan);
  }

  void Heal() { vfs_->Reset(storage::FaultPlan{}); }

  const char* kSpillQuery = "SELECT k, COUNT(*), SUM(v) FROM t GROUP BY k";

  std::unique_ptr<storage::FaultInjectingVfs> vfs_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<SqlEngine> engine_;
};

TEST_F(SpillFaultTest, NoSpaceOnSpillWriteFailsStatementOnly) {
  Arm(storage::FaultPlan::Kind::kNoSpace, 0);
  Result<QueryResult> failed = engine_->Execute(kSpillQuery);
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(vfs_->fault_fired());
  // The failed statement's spill files were cleaned up with its
  // iterators — nothing orphaned in the tablespace directory.
  Heal();
  EXPECT_FALSE(AnySpillFilesLeft(db_->options().filestream_root));
  // The device recovered: the same session runs the same query.
  Result<QueryResult> ok = engine_->Execute(kSpillQuery);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->rows.size(), static_cast<size_t>(kGroups));
  EXPECT_FALSE(AnySpillFilesLeft(db_->options().filestream_root));
}

TEST_F(SpillFaultTest, TornSpillWriteFailsStatementOnly) {
  Arm(storage::FaultPlan::Kind::kTornWrite, 2);
  Result<QueryResult> failed = engine_->Execute(kSpillQuery);
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(vfs_->fault_fired());
  Heal();
  EXPECT_FALSE(AnySpillFilesLeft(db_->options().filestream_root));
  Result<QueryResult> ok = engine_->Execute(kSpillQuery);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->rows.size(), static_cast<size_t>(kGroups));
}

TEST_F(SpillFaultTest, TransientEioOnSpillWriteIsAbsorbed) {
  // The device flakes twice on one spill write, then heals: the storage
  // retry policy (and statement-level retry above it) absorb the fault
  // and the query still answers correctly.
  Arm(storage::FaultPlan::Kind::kTransientEio, 1, /*transient=*/2);
  Result<QueryResult> r = engine_->Execute(kSpillQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(vfs_->fault_fired());
  EXPECT_EQ(r->rows.size(), static_cast<size_t>(kGroups));
  EXPECT_FALSE(AnySpillFilesLeft(db_->options().filestream_root));
}

}  // namespace
}  // namespace htg::sql
