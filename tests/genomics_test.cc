#include <gtest/gtest.h>

#include "common/random.h"
#include "genomics/dna_sequence.h"
#include "genomics/formats.h"
#include "genomics/gene_expression.h"
#include "genomics/nucleotide.h"
#include "genomics/reference.h"
#include "genomics/simulator.h"

namespace htg::genomics {
namespace {

TEST(NucleotideTest, BaseCodesRoundTrip) {
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(BaseCode(CodeBase(i)), i);
  }
  EXPECT_EQ(BaseCode('N'), -1);
  EXPECT_EQ(BaseCode('a'), 0);
  EXPECT_EQ(CodeBase(-1), 'N');
}

TEST(NucleotideTest, ComplementPairs) {
  EXPECT_EQ(Complement('A'), 'T');
  EXPECT_EQ(Complement('C'), 'G');
  EXPECT_EQ(Complement('G'), 'C');
  EXPECT_EQ(Complement('T'), 'A');
  EXPECT_EQ(Complement('N'), 'N');
}

TEST(NucleotideTest, ReverseComplementInvolution) {
  const std::string seq = "ACGTNACCGT";
  EXPECT_EQ(ReverseComplement(ReverseComplement(seq)), seq);
  EXPECT_EQ(ReverseComplement("ACGT"), "ACGT");
  EXPECT_EQ(ReverseComplement("AAAC"), "GTTT");
}

TEST(NucleotideTest, PhredEncodingRoundTrip) {
  for (int q = 0; q <= kMaxPhred; ++q) {
    EXPECT_EQ(CharToPhred(PhredToChar(q)), q);
  }
  EXPECT_EQ(PhredToChar(-5), '!');
  EXPECT_EQ(PhredToChar(200), PhredToChar(kMaxPhred));
}

TEST(NucleotideTest, PhredProbabilityRelation) {
  EXPECT_NEAR(PhredToErrorProbability(10), 0.1, 1e-12);
  EXPECT_NEAR(PhredToErrorProbability(30), 0.001, 1e-12);
  EXPECT_EQ(ErrorProbabilityToPhred(0.001), 30);
  EXPECT_EQ(ErrorProbabilityToPhred(0.0), kMaxPhred);
}

TEST(DnaSequenceTest, PackUnpackRoundTrip) {
  const std::string texts[] = {"", "A", "ACGT", "ACGTN", "NNNN",
                               "ACGTACGTACGTACG", "TTTTTTTTTTTTTTTTT"};
  for (const std::string& text : texts) {
    DnaSequence seq = DnaSequence::FromText(text);
    EXPECT_EQ(seq.ToText(), text) << text;
    EXPECT_EQ(seq.length(), text.size());
    Result<DnaSequence> decoded = DnaSequence::FromBlob(seq.ToBlob());
    ASSERT_TRUE(decoded.ok()) << text;
    EXPECT_EQ(decoded->ToText(), text);
  }
}

TEST(DnaSequenceTest, PackedSizeIsAboutAQuarter) {
  // The §5.1.2 claim: bit-encoding shrinks sequences to ~1/4.
  std::string text;
  Random rng(17);
  for (int i = 0; i < 10000; ++i) text.push_back(kBases[rng.Uniform(4)]);
  const std::string blob = DnaSequence::FromText(text).ToBlob();
  EXPECT_LT(blob.size(), text.size() / 3.9);
  EXPECT_GT(blob.size(), text.size() / 4.2);
}

TEST(DnaSequenceTest, BaseAtMatchesText) {
  const std::string text = "ACGTNAGCT";
  DnaSequence seq = DnaSequence::FromText(text);
  for (size_t i = 0; i < text.size(); ++i) {
    EXPECT_EQ(seq.BaseAt(i), text[i]) << i;
  }
}

TEST(DnaSequenceTest, CorruptBlobRejected) {
  EXPECT_FALSE(DnaSequence::FromBlob("\xff\xff\xff").ok());
  DnaSequence seq = DnaSequence::FromText("ACGTACGT");
  std::string blob = seq.ToBlob();
  blob.resize(blob.size() - 1);
  EXPECT_FALSE(DnaSequence::FromBlob(blob).ok());
}

TEST(ReadNameTest, FormatParseRoundTrip) {
  ReadCoordinates coords{"IL4", 855, 1, 17, 954, 659};
  const std::string name = FormatReadName(coords);
  EXPECT_EQ(name, "IL4_855:1:17:954:659");
  Result<ReadCoordinates> parsed = ParseReadName(name);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->machine, "IL4");
  EXPECT_EQ(parsed->flowcell, 855);
  EXPECT_EQ(parsed->tile, 17);
  EXPECT_EQ(parsed->y, 659);
  EXPECT_FALSE(ParseReadName("garbage").ok());
  EXPECT_FALSE(ParseReadName("m_1:2:3").ok());
}

TEST(FastqTest, WholeFileRoundTrip) {
  std::vector<ShortRead> reads;
  for (int i = 0; i < 100; ++i) {
    reads.push_back({"IL4_855:1:1:" + std::to_string(i) + ":0",
                     "ACGTACGTACGTACGTACGT",
                     std::string(20, static_cast<char>('!' + i % 60))});
  }
  const std::string path = "/tmp/htg_fastq_roundtrip.fastq";
  ASSERT_TRUE(WriteFastqFile(path, reads).ok());
  Result<std::vector<ShortRead>> loaded = ReadFastqFile(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), reads.size());
  for (size_t i = 0; i < reads.size(); ++i) {
    EXPECT_EQ((*loaded)[i].name, reads[i].name);
    EXPECT_EQ((*loaded)[i].sequence, reads[i].sequence);
    EXPECT_EQ((*loaded)[i].quality, reads[i].quality);
  }
}

TEST(FastqTest, ChunkParserStopsAtPartialRecord) {
  const std::string data =
      "@r1\nACGT\n+\nIIII\n"
      "@r2\nGGGG\n+\nII";  // truncated qualities
  FastqChunkParser parser;
  size_t pos = 0;
  ShortRead read;
  ASSERT_TRUE(parser.ParseRecord(data.data(), data.size(), &pos, &read));
  EXPECT_EQ(read.name, "r1");
  // Second record incomplete: parser must not consume it.
  const size_t before = pos;
  EXPECT_FALSE(parser.ParseRecord(data.data(), data.size(), &pos, &read));
  EXPECT_EQ(pos, before);
  EXPECT_TRUE(parser.status().ok());
}

TEST(FastqTest, ChunkParserHandlesFinalRecordWithoutNewline) {
  const std::string data = "@r1\nACGT\n+\nIIII";
  FastqChunkParser parser;
  size_t pos = 0;
  ShortRead read;
  ASSERT_TRUE(parser.ParseRecord(data.data(), data.size(), &pos, &read));
  EXPECT_EQ(read.quality, "IIII");
  EXPECT_EQ(pos, data.size());
}

TEST(FastqTest, CorruptRecordReported) {
  const std::string data = "not a fastq record\nxxxx\n";
  FastqChunkParser parser;
  size_t pos = 0;
  ShortRead read;
  EXPECT_FALSE(parser.ParseRecord(data.data(), data.size(), &pos, &read));
  EXPECT_FALSE(parser.status().ok());
}

TEST(FastaTest, LineWrappingRoundTrip) {
  std::vector<ShortRead> records;
  ShortRead rec;
  rec.name = "chr1";
  for (int i = 0; i < 500; ++i) rec.sequence.push_back(kBases[i % 4]);
  records.push_back(rec);
  const std::string path = "/tmp/htg_fasta_roundtrip.fa";
  ASSERT_TRUE(WriteFastaFile(path, records, 60).ok());
  // Verify the 60-char wrap the paper mentions.
  FILE* f = fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char line[256];
  ASSERT_NE(fgets(line, sizeof(line), f), nullptr);  // header
  ASSERT_NE(fgets(line, sizeof(line), f), nullptr);  // first sequence line
  EXPECT_EQ(strlen(line), 61u);                      // 60 + newline
  fclose(f);
  Result<std::vector<ShortRead>> loaded = ReadFastaFile(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].sequence, rec.sequence);
}

TEST(FastaTest, MultipleRecords) {
  std::vector<ShortRead> records;
  records.push_back({"a", "ACGTACGT", ""});
  records.push_back({"b", "TTTT", ""});
  const std::string path = "/tmp/htg_fasta_multi.fa";
  ASSERT_TRUE(WriteFastaFile(path, records, 4).ok());
  Result<std::vector<ShortRead>> loaded = ReadFastaFile(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].sequence, "ACGTACGT");
  EXPECT_EQ((*loaded)[1].name, "b");
}

TEST(ReferenceTest, RandomGenomeShape) {
  ReferenceGenome ref = ReferenceGenome::Random(100000, 25, 1);
  EXPECT_EQ(ref.num_chromosomes(), 25);
  EXPECT_GT(ref.total_bases(), 90000u);
  // Sizes decrease chromosome-like.
  EXPECT_GT(ref.chromosome(0).sequence.size(),
            ref.chromosome(24).sequence.size());
  EXPECT_EQ(ref.FindChromosome("chr3"), 2);
  EXPECT_EQ(ref.FindChromosome("chrX"), -1);
}

TEST(ReferenceTest, FastaRoundTrip) {
  ReferenceGenome ref = ReferenceGenome::Random(5000, 3, 2);
  const std::string path = "/tmp/htg_ref_roundtrip.fa";
  ASSERT_TRUE(ref.SaveFasta(path).ok());
  Result<ReferenceGenome> loaded = ReferenceGenome::LoadFasta(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_chromosomes(), 3);
  EXPECT_EQ(loaded->chromosome(1).sequence, ref.chromosome(1).sequence);
}

TEST(SimulatorTest, ResequencingReadsMatchReference) {
  ReferenceGenome ref = ReferenceGenome::Random(50000, 4, 3);
  SimulatorOptions options;
  options.seed = 4;
  options.base_error_rate = 0.0;
  options.error_rate_slope = 0.0;
  options.n_rate = 0.0;
  ReadSimulator sim(&ref, options);
  std::vector<SimulatedOrigin> origins;
  std::vector<ShortRead> reads = sim.SimulateResequencing(200, &origins);
  ASSERT_EQ(reads.size(), origins.size());
  for (size_t i = 0; i < reads.size(); ++i) {
    const std::string& chr = ref.chromosome(origins[i].chromosome).sequence;
    std::string expected = chr.substr(origins[i].position, 36);
    if (origins[i].reverse_strand) expected = ReverseComplement(expected);
    EXPECT_EQ(reads[i].sequence, expected) << i;
    EXPECT_EQ(reads[i].quality.size(), reads[i].sequence.size());
  }
}

TEST(SimulatorTest, ErrorsAppearAtConfiguredRate) {
  ReferenceGenome ref = ReferenceGenome::Random(50000, 2, 5);
  SimulatorOptions options;
  options.seed = 6;
  options.base_error_rate = 0.05;
  options.error_rate_slope = 0.0;
  options.n_rate = 0.0;
  ReadSimulator sim(&ref, options);
  std::vector<SimulatedOrigin> origins;
  std::vector<ShortRead> reads = sim.SimulateResequencing(500, &origins);
  int64_t mismatches = 0;
  int64_t bases = 0;
  for (size_t i = 0; i < reads.size(); ++i) {
    const std::string& chr = ref.chromosome(origins[i].chromosome).sequence;
    std::string truth = chr.substr(origins[i].position, 36);
    if (origins[i].reverse_strand) truth = ReverseComplement(truth);
    for (size_t b = 0; b < truth.size(); ++b) {
      if (reads[i].sequence[b] != truth[b]) ++mismatches;
      ++bases;
    }
  }
  const double rate = static_cast<double>(mismatches) / bases;
  EXPECT_GT(rate, 0.03);
  EXPECT_LT(rate, 0.08);
}

TEST(SimulatorTest, DgeTagsAreRepetitive) {
  ReferenceGenome ref = ReferenceGenome::Random(100000, 4, 7);
  SimulatorOptions options;
  options.seed = 8;
  options.base_error_rate = 0.0;
  options.error_rate_slope = 0.0;
  options.n_rate = 0.0;
  ReadSimulator sim(&ref, options);
  DgeOptions dge;
  dge.num_genes = 200;
  std::vector<ShortRead> tags = sim.SimulateDge(5000, dge);
  std::vector<TagCount> bins = BinUniqueReads(tags);
  // Zipf abundance: far fewer unique tags than reads, top tag dominant.
  EXPECT_LT(bins.size(), 1000u);
  EXPECT_GT(bins[0].frequency, 50);
}

TEST(SimulatorTest, CoordinatesAreParsable) {
  ReferenceGenome ref = ReferenceGenome::Random(10000, 1, 9);
  ReadSimulator sim(&ref, {});
  std::vector<ShortRead> reads = sim.SimulateResequencing(10);
  for (const ShortRead& r : reads) {
    Result<ReadCoordinates> coords = ParseReadName(r.name);
    ASSERT_TRUE(coords.ok()) << r.name;
    EXPECT_EQ(coords->machine, "IL4");
    EXPECT_GE(coords->tile, 1);
    EXPECT_LE(coords->tile, 300);
  }
}

TEST(GeneExpressionTest, BinningDropsNsAndRanks) {
  std::vector<ShortRead> reads = {
      {"a", "AAAA", ""}, {"b", "AAAA", ""}, {"c", "CCCC", ""},
      {"d", "CCNC", ""},  // contains N: dropped
      {"e", "AAAA", ""},
  };
  std::vector<TagCount> tags = BinUniqueReads(reads);
  ASSERT_EQ(tags.size(), 2u);
  EXPECT_EQ(tags[0].sequence, "AAAA");
  EXPECT_EQ(tags[0].frequency, 3);
  EXPECT_EQ(tags[0].rank, 1);
  EXPECT_EQ(tags[1].sequence, "CCCC");
  EXPECT_EQ(tags[1].rank, 2);
}

TEST(GeneExpressionTest, AggregateExpressionSumsPerGene) {
  std::vector<AlignedTag> aligned = {
      {7, 1, 100}, {7, 2, 50}, {8, 3, 10}};
  std::vector<GeneExpression> expr = AggregateExpression(aligned);
  ASSERT_EQ(expr.size(), 2u);
  EXPECT_EQ(expr[0].gene_id, 7);
  EXPECT_EQ(expr[0].total_frequency, 150);
  EXPECT_EQ(expr[0].tag_count, 2);
}

TEST(GeneExpressionTest, DifferentialExpressionDetectsChange) {
  std::vector<GeneExpression> a = {{1, 1000, 5}, {2, 100, 2}, {3, 100, 1}};
  std::vector<GeneExpression> b = {{1, 1000, 5}, {2, 800, 2}, {3, 100, 1}};
  std::vector<DifferentialExpression> diff = CompareExpression(a, b);
  ASSERT_EQ(diff.size(), 3u);
  // Gene 2 jumped 8x: it should rank first by chi-square.
  EXPECT_EQ(diff[0].gene_id, 2);
  EXPECT_GT(diff[0].log2_fold_change, 1.5);
}

}  // namespace
}  // namespace htg::genomics
