#include <gtest/gtest.h>

#include "genomics/register.h"
#include "genomics/simulator.h"
#include "workflow/loaders.h"
#include "workflow/schema.h"

namespace htg::workflow {
namespace {

using genomics::ReferenceGenome;
using genomics::ShortRead;

class WorkflowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    DatabaseOptions options;
    options.filestream_root =
        "/tmp/htg_workflow_test_" + std::to_string(counter++);
    auto db = Database::Open("workflow", options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    ASSERT_TRUE(db_->filestream()->Clear().ok());
    ASSERT_TRUE(genomics::RegisterGenomicsExtensions(db_.get()).ok());
    engine_ = std::make_unique<sql::SqlEngine>(db_.get());

    ref_ = ReferenceGenome::Random(30000, 3, 71);
    genomics::SimulatorOptions sim_options;
    sim_options.seed = 72;
    sim_options.n_rate = 0.02;
    genomics::ReadSimulator sim(&ref_, sim_options);
    reads_ = sim.SimulateResequencing(500);
  }

  sql::QueryResult Exec(const std::string& sql) {
    Result<sql::QueryResult> result = engine_->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << "\n--> " << result.status().ToString();
    return result.ok() ? std::move(*result) : sql::QueryResult{};
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<sql::SqlEngine> engine_;
  ReferenceGenome ref_;
  std::vector<ShortRead> reads_;
};

TEST_F(WorkflowTest, NormalizedSchemaCreates) {
  ASSERT_TRUE(CreateGenomicsSchema(engine_.get()).ok());
  const std::vector<std::string> tables = db_->ListTables();
  EXPECT_GE(tables.size(), 10u);
  EXPECT_TRUE(db_->GetTable("Read").ok());
  EXPECT_TRUE(db_->GetTable("Alignment").ok());
  EXPECT_TRUE(db_->GetTable("ShortReadFiles").ok());
  // FileStream column survived DDL.
  auto* srf = *db_->GetTable("ShortReadFiles");
  EXPECT_TRUE(srf->schema.column(srf->schema.FindColumn("reads")).filestream);
}

TEST_F(WorkflowTest, SchemaVariantsCoexist) {
  SchemaOptions row;
  row.compression = storage::Compression::kRow;
  row.suffix = "_row";
  ASSERT_TRUE(CreateGenomicsSchema(engine_.get(), row).ok());
  SchemaOptions page;
  page.compression = storage::Compression::kPage;
  page.suffix = "_page";
  ASSERT_TRUE(CreateGenomicsSchema(engine_.get(), page).ok());
  ASSERT_TRUE(CreateOneToOneSchema(engine_.get()).ok());
  EXPECT_TRUE(db_->GetTable("Read_row").ok());
  EXPECT_TRUE(db_->GetTable("Read_page").ok());
  EXPECT_TRUE(db_->GetTable("Read_1to1").ok());
  EXPECT_EQ((*db_->GetTable("Read_page"))->compression,
            storage::Compression::kPage);
}

TEST_F(WorkflowTest, LoadReadsDecomposesCoordinates) {
  ASSERT_TRUE(CreateGenomicsSchema(engine_.get()).ok());
  Result<LoadResult> loaded = LoadReads(db_.get(), "Read", reads_, {1, 2, 3});
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->loaded, reads_.size());
  EXPECT_EQ(loaded->rejected, 0u);
  sql::QueryResult r = Exec(
      "SELECT COUNT(*), MIN(tile), MAX(tile) FROM Read WHERE r_e_id = 1");
  EXPECT_EQ(r.rows[0][0].AsInt64(), static_cast<int64_t>(reads_.size()));
  EXPECT_GE(r.rows[0][1].AsInt64(), 1);
  EXPECT_LE(r.rows[0][2].AsInt64(), 300);
}

TEST_F(WorkflowTest, NormalizedSmallerThanOneToOne) {
  // The §5.1 storage claim in miniature: the normalized schema links
  // alignments back to reads by compact numeric foreign keys, while the
  // 1:1 file import repeats the textual composite read name in every
  // alignment row (the paper reports ~40% savings on alignments).
  ASSERT_TRUE(CreateGenomicsSchema(engine_.get()).ok());
  ASSERT_TRUE(CreateOneToOneSchema(engine_.get()).ok());
  ASSERT_TRUE(LoadReads(db_.get(), "Read", reads_, {1, 1, 1}).ok());
  ASSERT_TRUE(LoadReadsOneToOne(db_.get(), "Read_1to1", reads_).ok());

  genomics::Aligner aligner(&ref_, {});
  std::vector<genomics::Alignment> alignments = aligner.AlignBatch(reads_);
  ASSERT_GT(alignments.size(), 100u);
  ASSERT_TRUE(
      LoadAlignments(db_.get(), "Alignment", alignments, {1, 1, 1}).ok());
  ASSERT_TRUE(LoadAlignmentsOneToOne(db_.get(), "Alignment_1to1", alignments,
                                     reads_, ref_)
                  .ok());

  const uint64_t norm_align =
      (*db_->GetTable("Alignment"))->table->Stats().data_bytes;
  const uint64_t one_align =
      (*db_->GetTable("Alignment_1to1"))->table->Stats().data_bytes;
  EXPECT_LT(norm_align, one_align);

  // Under ROW compression (variable-length numeric storage) the compact
  // foreign keys pay off fully: the ~40% saving of the paper's §5.1.2.
  SchemaOptions row_options;
  row_options.compression = storage::Compression::kRow;
  row_options.suffix = "_rowc";
  ASSERT_TRUE(CreateGenomicsSchema(engine_.get(), row_options).ok());
  Exec(
      "CREATE TABLE Alignment_1to1r (read_name VARCHAR(100) NOT NULL, "
      "chromosome VARCHAR(100) NOT NULL, pos BIGINT, strand CHAR(1), "
      "mismatches INT, mapq INT) WITH (DATA_COMPRESSION = ROW)");
  ASSERT_TRUE(
      LoadAlignments(db_.get(), "Alignment_rowc", alignments, {1, 1, 1}).ok());
  ASSERT_TRUE(LoadAlignmentsOneToOne(db_.get(), "Alignment_1to1r", alignments,
                                     reads_, ref_)
                  .ok());
  const uint64_t norm_rowc =
      (*db_->GetTable("Alignment_rowc"))->table->Stats().data_bytes;
  const uint64_t one_rowc =
      (*db_->GetTable("Alignment_1to1r"))->table->Stats().data_bytes;
  EXPECT_LT(norm_rowc, one_rowc * 6 / 10);  // ≥ 40% smaller

  // Across the whole lane (reads + alignments), uncompressed normalized
  // storage is on par with the 1:1 import (the paper: "a plain normalized
  // relational schema ... achieve[s] the same storage efficiency"); allow
  // a few percent either way.
  const uint64_t norm_total =
      (*db_->GetTable("Read"))->table->Stats().data_bytes + norm_align;
  const uint64_t one_total =
      (*db_->GetTable("Read_1to1"))->table->Stats().data_bytes + one_align;
  EXPECT_LT(norm_total, one_total * 105 / 100);
}

TEST_F(WorkflowTest, AlignLoadAndQuery) {
  ASSERT_TRUE(CreateGenomicsSchema(engine_.get()).ok());
  ASSERT_TRUE(LoadReads(db_.get(), "Read", reads_, {1, 1, 1}).ok());
  ASSERT_TRUE(LoadReferenceCatalog(db_.get(), "ReferenceSequence", ref_).ok());
  genomics::Aligner aligner(&ref_, {});
  std::vector<genomics::Alignment> alignments = aligner.AlignBatch(reads_);
  ASSERT_GT(alignments.size(), 100u);
  ASSERT_TRUE(LoadAlignments(db_.get(), "Alignment", alignments, {1, 1, 1}).ok());

  // Foreign-key join back to reads and the reference catalog.
  sql::QueryResult r = Exec(
      "SELECT name, COUNT(*) AS hits FROM Alignment "
      "JOIN ReferenceSequence ON a_g_id = g_id "
      "GROUP BY name ORDER BY name");
  EXPECT_EQ(r.rows.size(), 3u);
  int64_t total = 0;
  for (const Row& row : r.rows) total += row[1].AsInt64();
  EXPECT_EQ(total, static_cast<int64_t>(alignments.size()));
}

TEST_F(WorkflowTest, ClusteredSchemaGetsMergeJoinPlan) {
  SchemaOptions options;
  options.clustered_join_keys = true;
  ASSERT_TRUE(CreateGenomicsSchema(engine_.get(), options).ok());
  Result<std::string> plan = engine_->Explain(
      "SELECT a_pos, short_read_seq FROM Alignment "
      "JOIN Read ON a_r_id = r_id");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("Merge Join"), std::string::npos) << *plan;
}

TEST_F(WorkflowTest, FileStreamImportFlow) {
  ASSERT_TRUE(CreateGenomicsSchema(engine_.get()).ok());
  const std::string fastq = "/tmp/htg_workflow_lane.fastq";
  ASSERT_TRUE(genomics::WriteFastqFile(fastq, reads_).ok());
  ASSERT_TRUE(
      ImportFastqAsFileStream(engine_.get(), "ShortReadFiles", fastq, 855, 1)
          .ok());
  sql::QueryResult r =
      Exec("SELECT COUNT(*) FROM ListShortReads(855, 1, 'FastQ')");
  EXPECT_EQ(r.rows[0][0].AsInt64(), static_cast<int64_t>(reads_.size()));
}

TEST_F(WorkflowTest, PaperQuery1OverLoadedLane) {
  ASSERT_TRUE(CreateGenomicsSchema(engine_.get()).ok());
  ASSERT_TRUE(LoadReads(db_.get(), "Read", reads_, {1, 2, 1}).ok());
  sql::QueryResult r = Exec(
      "SELECT TOP 5 ROW_NUMBER() OVER (ORDER BY COUNT(*) DESC) AS rank, "
      "COUNT(*) AS freq, short_read_seq "
      "FROM Read "
      "WHERE r_e_id=1 AND r_sg_id=2 AND r_s_id=1 "
      "  AND CHARINDEX('N', short_read_seq) = 0 "
      "GROUP BY short_read_seq ORDER BY rank");
  ASSERT_LE(r.rows.size(), 5u);
  ASSERT_GE(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 1);

  // Cross-check total against the in-memory binning reference.
  std::vector<genomics::TagCount> expected =
      genomics::BinUniqueReads(reads_);
  sql::QueryResult total = Exec(
      "SELECT COUNT(*) FROM (SELECT short_read_seq, COUNT(*) AS c FROM Read "
      "WHERE CHARINDEX('N', short_read_seq) = 0 "
      "GROUP BY short_read_seq) t");
  EXPECT_EQ(total.rows[0][0].AsInt64(),
            static_cast<int64_t>(expected.size()));
}

}  // namespace
}  // namespace htg::workflow
