// Tests for the future-work extensions the paper sketches: the SRF
// container (§5.3.1), in-database alignment (§6.1), and data provenance
// (§6.1).

#include <gtest/gtest.h>

#include "genomics/nucleotide.h"
#include "genomics/register.h"
#include "genomics/simulator.h"
#include "genomics/srf.h"
#include "sql/engine.h"
#include "workflow/provenance.h"
#include "workflow/schema.h"

namespace htg {
namespace {

using genomics::ReferenceGenome;
using genomics::ShortRead;
using genomics::SrfRecord;

class ExtensionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    DatabaseOptions options;
    options.filestream_root =
        "/tmp/htg_ext_test_" + std::to_string(counter++);
    auto db = Database::Open("ext", options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    ASSERT_TRUE(db_->filestream()->Clear().ok());
    ASSERT_TRUE(genomics::RegisterGenomicsExtensions(db_.get()).ok());
    engine_ = std::make_unique<sql::SqlEngine>(db_.get());

    reference_ = ReferenceGenome::Random(40000, 2, 91);
    genomics::SimulatorOptions sim_options;
    sim_options.seed = 92;
    genomics::ReadSimulator sim(&reference_, sim_options);
    reads_ = sim.SimulateResequencing(300);
  }

  sql::QueryResult Exec(const std::string& sql) {
    Result<sql::QueryResult> result = engine_->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << "\n--> " << result.status().ToString();
    return result.ok() ? std::move(*result) : sql::QueryResult{};
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<sql::SqlEngine> engine_;
  ReferenceGenome reference_;
  std::vector<ShortRead> reads_;
};

TEST_F(ExtensionsTest, SrfFileRoundTrip) {
  std::vector<SrfRecord> records = genomics::AttachSrfSignals(reads_, 93);
  ASSERT_EQ(records.size(), reads_.size());
  const std::string path = "/tmp/htg_ext_lane.srf";
  ASSERT_TRUE(genomics::WriteSrfFile(path, records).ok());
  Result<std::vector<SrfRecord>> loaded = genomics::ReadSrfFile(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), records.size());
  EXPECT_EQ((*loaded)[7].read.name, records[7].read.name);
  EXPECT_EQ((*loaded)[7].read.sequence, records[7].read.sequence);
  EXPECT_EQ((*loaded)[7].intensities.size(), records[7].intensities.size());
  EXPECT_FLOAT_EQ((*loaded)[7].signal_to_noise,
                  records[7].signal_to_noise);
}

TEST_F(ExtensionsTest, SrfRejectsNonSrfInput) {
  const std::string path = "/tmp/htg_ext_notsrf.bin";
  FILE* f = fopen(path.c_str(), "wb");
  fputs("@this is fastq\n", f);
  fclose(f);
  EXPECT_FALSE(genomics::ReadSrfFile(path).ok());
}

TEST_F(ExtensionsTest, SrfIntensityTracksQuality) {
  // Higher Phred ⇒ higher expected intensity: check aggregate ordering.
  std::vector<ShortRead> two = {
      {"hi", "ACGTACGTAC", std::string(10, genomics::PhredToChar(40))},
      {"lo", "ACGTACGTAC", std::string(10, genomics::PhredToChar(5))}};
  std::vector<SrfRecord> records = genomics::AttachSrfSignals(two, 94);
  double hi = 0;
  double lo = 0;
  for (float v : records[0].intensities) hi += v;
  for (float v : records[1].intensities) lo += v;
  EXPECT_GT(hi, lo * 2);
  EXPECT_GT(records[0].signal_to_noise, records[1].signal_to_noise);
}

TEST_F(ExtensionsTest, SrfTvfStreamsThroughSql) {
  std::vector<SrfRecord> records = genomics::AttachSrfSignals(reads_, 95);
  const std::string path = "/tmp/htg_ext_tvf.srf";
  ASSERT_TRUE(genomics::WriteSrfFile(path, records).ok());
  const std::string blob =
      *db_->filestream()->ImportFile(path, "lane.srf");
  sql::QueryResult count =
      Exec("SELECT COUNT(*) FROM ReadSrfFile('" + blob + "')");
  EXPECT_EQ(count.rows[0][0].AsInt64(), static_cast<int64_t>(reads_.size()));
  // Level-0-derived signals are queryable alongside the sequence data.
  sql::QueryResult noisy = Exec(
      "SELECT COUNT(*) FROM ReadSrfFile('" + blob + "') WHERE snr < 5.0");
  EXPECT_GE(noisy.rows[0][0].AsInt64(), 0);
  sql::QueryResult top = Exec(
      "SELECT TOP 1 read_name, avg_intensity FROM ReadSrfFile('" + blob +
      "') ORDER BY avg_intensity DESC");
  ASSERT_EQ(top.rows.size(), 1u);
  EXPECT_GT(top.rows[0][1].AsDouble(), 0.0);
}

TEST_F(ExtensionsTest, SrfTvfSmallChunksMatch) {
  std::vector<SrfRecord> records = genomics::AttachSrfSignals(reads_, 96);
  const std::string path = "/tmp/htg_ext_chunk.srf";
  ASSERT_TRUE(genomics::WriteSrfFile(path, records).ok());
  const std::string blob = *db_->filestream()->ImportFile(path, "c.srf");
  // 4 KiB chunks force mid-record paging.
  sql::QueryResult count =
      Exec("SELECT COUNT(*) FROM ReadSrfFile('" + blob + "', 4)");
  EXPECT_EQ(count.rows[0][0].AsInt64(), static_cast<int64_t>(reads_.size()));
}

TEST_F(ExtensionsTest, AlignReadsTvfEndToEnd) {
  // The in-database secondary analysis: lane in a FileStream, reference
  // on disk, alignment as a FROM-clause TVF.
  const std::string fastq = "/tmp/htg_ext_alignreads.fastq";
  ASSERT_TRUE(genomics::WriteFastqFile(fastq, reads_).ok());
  const std::string ref_fasta = "/tmp/htg_ext_reference.fa";
  ASSERT_TRUE(reference_.SaveFasta(ref_fasta).ok());

  Exec("CREATE TABLE ShortReadFiles ("
       "guid UNIQUEIDENTIFIER ROWGUIDCOL PRIMARY KEY,"
       "sample INT, lane INT, reads VARBINARY(MAX) FILESTREAM)");
  Exec("INSERT INTO ShortReadFiles SELECT NEWID(), 855, 1, * "
       "FROM OPENROWSET(BULK '" + fastq + "', SINGLE_BLOB)");

  sql::QueryResult aligned = Exec(
      "SELECT COUNT(*) FROM AlignReads(855, 1, '" + ref_fasta + "', 2)");
  // The simulator's default error profile keeps most reads alignable.
  EXPECT_GT(aligned.rows[0][0].AsInt64(),
            static_cast<int64_t>(reads_.size() * 6 / 10));

  // Compose with relational logic: per-chromosome hit counts.
  sql::QueryResult per_chromosome = Exec(
      "SELECT chromosome, COUNT(*) AS hits "
      "FROM AlignReads(855, 1, '" + ref_fasta + "', 2) "
      "GROUP BY chromosome ORDER BY chromosome");
  EXPECT_EQ(per_chromosome.rows.size(), 2u);

  // INSERT ... SELECT from the aligner (the paper's phase-2-in-SQL).
  Exec("CREATE TABLE Hits (name VARCHAR(100), chrom VARCHAR(50), "
       "pos BIGINT, mapq INT)");
  Exec("INSERT INTO Hits SELECT read_name, chromosome, position, mapq "
       "FROM AlignReads(855, 1, '" + ref_fasta + "', 2)");
  sql::QueryResult stored = Exec("SELECT COUNT(*) FROM Hits");
  EXPECT_EQ(stored.rows[0][0].AsInt64(), aligned.rows[0][0].AsInt64());
}

TEST_F(ExtensionsTest, ProvenanceLineageChain) {
  Result<workflow::ProvenanceRecorder> recorder =
      workflow::ProvenanceRecorder::Open(engine_.get());
  ASSERT_TRUE(recorder.ok());
  // A typical pipeline: sequencer → fastq → alignments → consensus.
  ASSERT_TRUE(recorder
                  ->Record("illumina-ga", "run=855 lane=1", "flowcell:855/1",
                           "fastq:lane1")
                  .ok());
  ASSERT_TRUE(recorder
                  ->Record("htgdb-align", "ref=hg18 mm=2", "fastq:lane1",
                           "alignments:lane1")
                  .ok());
  ASSERT_TRUE(recorder
                  ->Record("AssembleConsensus", "window", "alignments:lane1",
                           "consensus:lane1")
                  .ok());
  // An unrelated event must not show up in the lineage.
  ASSERT_TRUE(
      recorder->Record("htgdb-align", "ref=hg18", "fastq:lane2",
                       "alignments:lane2")
          .ok());

  Result<std::vector<workflow::ProvenanceRecorder::Event>> lineage =
      recorder->LineageOf("consensus:lane1");
  ASSERT_TRUE(lineage.ok());
  ASSERT_EQ(lineage->size(), 3u);
  EXPECT_EQ((*lineage)[0].tool, "illumina-ga");
  EXPECT_EQ((*lineage)[1].tool, "htgdb-align");
  EXPECT_EQ((*lineage)[1].parameters, "ref=hg18 mm=2");
  EXPECT_EQ((*lineage)[2].output_artifact, "consensus:lane1");

  // The provenance table is also just a table: plain SQL sees it.
  sql::QueryResult by_tool = Exec(
      "SELECT tool, COUNT(*) FROM DataProvenance GROUP BY tool "
      "ORDER BY tool");
  ASSERT_EQ(by_tool.rows.size(), 3u);
}

TEST_F(ExtensionsTest, ProvenanceSurvivesReopen) {
  {
    Result<workflow::ProvenanceRecorder> recorder =
        workflow::ProvenanceRecorder::Open(engine_.get());
    ASSERT_TRUE(recorder.ok());
    ASSERT_TRUE(recorder->Record("t1", "", "", "a").ok());
  }
  Result<workflow::ProvenanceRecorder> reopened =
      workflow::ProvenanceRecorder::Open(engine_.get());
  ASSERT_TRUE(reopened.ok());
  Result<int64_t> id = reopened->Record("t2", "", "a", "b");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 1);  // numbering resumed after the existing event
}

}  // namespace
}  // namespace htg
