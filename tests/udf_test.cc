#include <gtest/gtest.h>

#include "catalog/database.h"
#include "exec/expression.h"
#include "udf/registry.h"

namespace htg::udf {
namespace {

class BuiltinsTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(RegisterBuiltins(&registry_).ok()); }

  Value Eval(const std::string& name, std::vector<Value> args) {
    const ScalarFunction* fn = registry_.FindScalar(name);
    EXPECT_NE(fn, nullptr) << name;
    Result<Value> result = fn->eval(nullptr, args);
    EXPECT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    return result.ok() ? std::move(*result) : Value::Null();
  }

  FunctionRegistry registry_;
};

TEST_F(BuiltinsTest, LookupIsCaseInsensitive) {
  EXPECT_NE(registry_.FindScalar("charindex"), nullptr);
  EXPECT_NE(registry_.FindScalar("CharIndex"), nullptr);
  EXPECT_EQ(registry_.FindScalar("nope"), nullptr);
}

TEST_F(BuiltinsTest, DuplicateRegistrationRejected) {
  ScalarFunction dup;
  dup.name = "LEN";
  dup.min_args = 1;
  dup.max_args = 1;
  dup.result_type = [](const std::vector<DataType>&) {
    return DataType::kInt64;
  };
  dup.eval = [](EvalContext*, const std::vector<Value>&) -> Result<Value> {
    return Value::Int64(0);
  };
  EXPECT_FALSE(registry_.RegisterScalar(std::move(dup)).ok());
}

TEST_F(BuiltinsTest, LenIgnoresTrailingBlanks) {
  EXPECT_EQ(Eval("LEN", {Value::String("ACGT   ")}).AsInt64(), 4);
  EXPECT_EQ(Eval("LEN", {Value::String("")}).AsInt64(), 0);
}

TEST_F(BuiltinsTest, CharIndexOneBased) {
  EXPECT_EQ(Eval("CHARINDEX", {Value::String("N"), Value::String("ACGN")})
                .AsInt64(),
            4);
  EXPECT_EQ(Eval("CHARINDEX", {Value::String("X"), Value::String("ACGN")})
                .AsInt64(),
            0);
  // Start position argument.
  EXPECT_EQ(Eval("CHARINDEX", {Value::String("A"), Value::String("ABAB"),
                               Value::Int32(2)})
                .AsInt64(),
            3);
}

TEST_F(BuiltinsTest, SubstringTsqlSemantics) {
  EXPECT_EQ(
      Eval("SUBSTRING",
           {Value::String("GATTACA"), Value::Int32(2), Value::Int32(3)})
          .AsString(),
      "ATT");
  // A start before 1 consumes length (T-SQL behaviour).
  EXPECT_EQ(
      Eval("SUBSTRING",
           {Value::String("GATTACA"), Value::Int32(0), Value::Int32(3)})
          .AsString(),
      "GA");
  EXPECT_EQ(
      Eval("SUBSTRING",
           {Value::String("GATTACA"), Value::Int32(100), Value::Int32(3)})
          .AsString(),
      "");
}

TEST_F(BuiltinsTest, StringSuite) {
  EXPECT_EQ(Eval("LEFT", {Value::String("ACGT"), Value::Int32(2)}).AsString(),
            "AC");
  EXPECT_EQ(Eval("RIGHT", {Value::String("ACGT"), Value::Int32(2)}).AsString(),
            "GT");
  EXPECT_EQ(Eval("REVERSE", {Value::String("ACGT")}).AsString(), "TGCA");
  EXPECT_EQ(Eval("REPLACE", {Value::String("AANAA"), Value::String("N"),
                             Value::String("-")})
                .AsString(),
            "AA-AA");
  EXPECT_EQ(Eval("REPLICATE", {Value::String("AC"), Value::Int32(3)})
                .AsString(),
            "ACACAC");
  EXPECT_EQ(Eval("LTRIM", {Value::String("  x ")}).AsString(), "x ");
  EXPECT_EQ(Eval("RTRIM", {Value::String("  x ")}).AsString(), "  x");
}

TEST_F(BuiltinsTest, MathSuite) {
  EXPECT_EQ(Eval("ABS", {Value::Int64(-5)}).AsInt64(), 5);
  EXPECT_EQ(Eval("FLOOR", {Value::Double(2.7)}).AsDouble(), 2.0);
  EXPECT_EQ(Eval("CEILING", {Value::Double(2.1)}).AsDouble(), 3.0);
  EXPECT_EQ(Eval("POWER", {Value::Double(2), Value::Double(10)}).AsDouble(),
            1024.0);
  EXPECT_EQ(Eval("ROUND", {Value::Double(2.345), Value::Int32(2)}).AsDouble(),
            2.35);
}

TEST_F(BuiltinsTest, NullHandlingFunctions) {
  EXPECT_EQ(Eval("ISNULL", {Value::Null(), Value::Int64(7)}).AsInt64(), 7);
  EXPECT_EQ(Eval("ISNULL", {Value::Int64(1), Value::Int64(7)}).AsInt64(), 1);
  EXPECT_EQ(Eval("COALESCE", {Value::Null(), Value::Null(), Value::String("x")})
                .AsString(),
            "x");
  EXPECT_TRUE(Eval("COALESCE", {Value::Null()}).is_null());
  EXPECT_EQ(Eval("CONCAT", {Value::String("a"), Value::Null(),
                            Value::Int64(3)})
                .AsString(),
            "a3");
}

TEST_F(BuiltinsTest, NewIdIsValidAndNondeterministic) {
  const ScalarFunction* fn = registry_.FindScalar("NEWID");
  ASSERT_NE(fn, nullptr);
  EXPECT_FALSE(fn->deterministic);
  const Value a = Eval("NEWID", {});
  const Value b = Eval("NEWID", {});
  EXPECT_NE(a.AsString(), b.AsString());
}

TEST_F(BuiltinsTest, AggregatesRegistered) {
  for (const char* name : {"COUNT", "SUM", "MIN", "MAX", "AVG"}) {
    EXPECT_NE(registry_.FindAggregate(name), nullptr) << name;
  }
}

TEST_F(BuiltinsTest, SumIntAndDouble) {
  const AggregateFunction* sum = registry_.FindAggregate("SUM");
  auto instance = sum->NewInstance();
  ASSERT_TRUE(instance->Accumulate({Value::Int64(3)}).ok());
  ASSERT_TRUE(instance->Accumulate({Value::Null()}).ok());
  ASSERT_TRUE(instance->Accumulate({Value::Int64(4)}).ok());
  EXPECT_EQ(instance->Terminate()->AsInt64(), 7);

  auto dbl = sum->NewInstance();
  ASSERT_TRUE(dbl->Accumulate({Value::Double(1.5)}).ok());
  ASSERT_TRUE(dbl->Accumulate({Value::Int64(1)}).ok());
  EXPECT_EQ(dbl->Terminate()->AsDouble(), 2.5);
}

TEST_F(BuiltinsTest, SumOfAllNullsIsNull) {
  auto instance = registry_.FindAggregate("SUM")->NewInstance();
  ASSERT_TRUE(instance->Accumulate({Value::Null()}).ok());
  EXPECT_TRUE(instance->Terminate()->is_null());
}

TEST_F(BuiltinsTest, MinMaxMergeAcrossPartials) {
  const AggregateFunction* mx = registry_.FindAggregate("MAX");
  auto a = mx->NewInstance();
  auto b = mx->NewInstance();
  ASSERT_TRUE(a->Accumulate({Value::Int64(3)}).ok());
  ASSERT_TRUE(b->Accumulate({Value::Int64(9)}).ok());
  ASSERT_TRUE(a->Merge(*b).ok());
  EXPECT_EQ(a->Terminate()->AsInt64(), 9);
}

TEST_F(BuiltinsTest, AvgIgnoresNulls) {
  auto instance = registry_.FindAggregate("AVG")->NewInstance();
  ASSERT_TRUE(instance->Accumulate({Value::Int64(2)}).ok());
  ASSERT_TRUE(instance->Accumulate({Value::Null()}).ok());
  ASSERT_TRUE(instance->Accumulate({Value::Int64(4)}).ok());
  EXPECT_EQ(instance->Terminate()->AsDouble(), 3.0);
}

TEST_F(BuiltinsTest, CountStarVersusCountColumn) {
  const AggregateFunction* count = registry_.FindAggregate("COUNT");
  auto star = count->NewInstance();
  auto col = count->NewInstance();
  ASSERT_TRUE(star->Accumulate({}).ok());
  ASSERT_TRUE(star->Accumulate({}).ok());
  ASSERT_TRUE(col->Accumulate({Value::Int64(1)}).ok());
  ASSERT_TRUE(col->Accumulate({Value::Null()}).ok());
  EXPECT_EQ(star->Terminate()->AsInt64(), 2);
  EXPECT_EQ(col->Terminate()->AsInt64(), 1);
}

TEST(LikeMatcherTest, Wildcards) {
  using exec::LikeExpr;
  EXPECT_TRUE(LikeExpr::Match("ACGT", "ACGT"));
  EXPECT_TRUE(LikeExpr::Match("ACGT", "AC%"));
  EXPECT_TRUE(LikeExpr::Match("ACGT", "%GT"));
  EXPECT_TRUE(LikeExpr::Match("ACGT", "%CG%"));
  EXPECT_TRUE(LikeExpr::Match("ACGT", "A_G_"));
  EXPECT_TRUE(LikeExpr::Match("", "%"));
  EXPECT_TRUE(LikeExpr::Match("AAGT", "%A%G%"));
  EXPECT_FALSE(LikeExpr::Match("ACGT", "ACG"));
  EXPECT_FALSE(LikeExpr::Match("ACGT", "_GT"));
  EXPECT_FALSE(LikeExpr::Match("", "_"));
  EXPECT_FALSE(LikeExpr::Match("ACGT", "%X%"));
}

}  // namespace
}  // namespace htg::udf
