#include <gtest/gtest.h>

#include "catalog/database.h"
#include "exec/aggregate_ops.h"
#include "exec/basic_ops.h"
#include "exec/expression.h"
#include "exec/join_ops.h"
#include "exec/operator.h"
#include "exec/sort_ops.h"
#include "storage/heap_table.h"

namespace htg::exec {
namespace {

std::unique_ptr<Database> OpenTestDb(const std::string& name) {
  DatabaseOptions options;
  options.filestream_root = "/tmp/htg_exec_test_" + name;
  auto db = Database::Open(name, options);
  EXPECT_TRUE(db.ok());
  return std::move(*db);
}

// Creates a heap table of (k INT, v BIGINT, s VARCHAR) with n rows:
// (i % groups, i, "s<i % groups>").
catalog::TableDef* MakeNumbersTable(Database* db, const std::string& name,
                                    int n, int groups) {
  catalog::TableDef def;
  def.name = name;
  def.schema.AddColumn({.name = "k", .type = DataType::kInt32});
  def.schema.AddColumn({.name = "v", .type = DataType::kInt64});
  def.schema.AddColumn({.name = "s", .type = DataType::kString});
  EXPECT_TRUE(db->CreateTable(std::move(def)).ok());
  catalog::TableDef* table = *db->GetTable(name);
  for (int i = 0; i < n; ++i) {
    Row row{Value::Int32(i % groups), Value::Int64(i),
            Value::String("s" + std::to_string(i % groups))};
    EXPECT_TRUE(table->table->Insert(row).ok());
  }
  return table;
}

ExprPtr Col(int i, DataType t = DataType::kInt64) {
  return std::make_unique<ColumnRefExpr>(i, "c" + std::to_string(i), t);
}

ExprPtr Lit(int64_t v) { return std::make_unique<LiteralExpr>(Value::Int64(v)); }

TEST(ExpressionTest, ArithmeticAndPromotion) {
  udf::EvalContext eval;
  BinaryExpr add(BinaryOp::kAdd, Lit(2), Lit(3));
  EXPECT_EQ(add.Eval(&eval, {})->AsInt64(), 5);
  BinaryExpr mixed(BinaryOp::kMul, Lit(2),
                   std::make_unique<LiteralExpr>(Value::Double(1.5)));
  EXPECT_EQ(mixed.Eval(&eval, {})->AsDouble(), 3.0);
  BinaryExpr intdiv(BinaryOp::kDiv, Lit(7), Lit(2));
  EXPECT_EQ(intdiv.Eval(&eval, {})->AsInt64(), 3);  // T-SQL integer division
}

TEST(ExpressionTest, DivisionByZeroFails) {
  udf::EvalContext eval;
  BinaryExpr div(BinaryOp::kDiv, Lit(1), Lit(0));
  EXPECT_FALSE(div.Eval(&eval, {}).ok());
}

TEST(ExpressionTest, StringConcatWithPlus) {
  udf::EvalContext eval;
  BinaryExpr cat(BinaryOp::kAdd,
                 std::make_unique<LiteralExpr>(Value::String("AC")),
                 std::make_unique<LiteralExpr>(Value::String("GT")));
  EXPECT_EQ(cat.Eval(&eval, {})->AsString(), "ACGT");
}

TEST(ExpressionTest, ThreeValuedLogic) {
  udf::EvalContext eval;
  auto null_expr = [] { return std::make_unique<LiteralExpr>(Value::Null()); };
  auto true_expr = [] {
    return std::make_unique<LiteralExpr>(Value::Bool(true));
  };
  auto false_expr = [] {
    return std::make_unique<LiteralExpr>(Value::Bool(false));
  };
  // NULL AND FALSE = FALSE; NULL AND TRUE = NULL.
  BinaryExpr and1(BinaryOp::kAnd, null_expr(), false_expr());
  EXPECT_FALSE(and1.Eval(&eval, {})->is_null());
  EXPECT_FALSE(and1.Eval(&eval, {})->AsBool());
  BinaryExpr and2(BinaryOp::kAnd, null_expr(), true_expr());
  EXPECT_TRUE(and2.Eval(&eval, {})->is_null());
  // NULL OR TRUE = TRUE; NULL OR FALSE = NULL.
  BinaryExpr or1(BinaryOp::kOr, null_expr(), true_expr());
  EXPECT_TRUE(or1.Eval(&eval, {})->AsBool());
  BinaryExpr or2(BinaryOp::kOr, null_expr(), false_expr());
  EXPECT_TRUE(or2.Eval(&eval, {})->is_null());
}

TEST(ExpressionTest, ComparisonWithNullIsNull) {
  udf::EvalContext eval;
  BinaryExpr eq(BinaryOp::kEq, Lit(1),
                std::make_unique<LiteralExpr>(Value::Null()));
  EXPECT_TRUE(eq.Eval(&eval, {})->is_null());
  // ... and predicates treat it as false.
  Result<bool> keep = EvalPredicate(eq, &eval, {});
  ASSERT_TRUE(keep.ok());
  EXPECT_FALSE(*keep);
}

TEST(ExpressionTest, IsNullAndCase) {
  udf::EvalContext eval;
  IsNullExpr is_null(std::make_unique<LiteralExpr>(Value::Null()), false);
  EXPECT_TRUE(is_null.Eval(&eval, {})->AsBool());
  IsNullExpr is_not_null(Lit(5), true);
  EXPECT_TRUE(is_not_null.Eval(&eval, {})->AsBool());

  std::vector<std::pair<ExprPtr, ExprPtr>> branches;
  branches.emplace_back(
      std::make_unique<BinaryExpr>(BinaryOp::kGt, Lit(5), Lit(3)), Lit(10));
  CaseExpr case_expr(std::move(branches), Lit(20));
  EXPECT_EQ(case_expr.Eval(&eval, {})->AsInt64(), 10);
}

TEST(ExpressionTest, CloneIsDeepAndEqual) {
  BinaryExpr original(BinaryOp::kAdd, Col(0), Lit(1));
  ExprPtr clone = original.Clone();
  EXPECT_TRUE(original.Equals(*clone));
}

TEST(OperatorTest, FilterProjectPipeline) {
  auto db = OpenTestDb("filter");
  catalog::TableDef* table = MakeNumbersTable(db.get(), "t", 100, 10);
  OperatorPtr plan = std::make_unique<TableScanOp>(table);
  plan = std::make_unique<FilterOp>(
      std::move(plan), std::make_unique<BinaryExpr>(
                           BinaryOp::kLt, Col(1), Lit(10)));
  std::vector<ExprPtr> exprs;
  exprs.push_back(std::make_unique<BinaryExpr>(BinaryOp::kMul, Col(1), Lit(2)));
  plan = std::make_unique<ProjectOp>(std::move(plan), std::move(exprs),
                                     std::vector<std::string>{"doubled"});
  ExecContext ctx = ExecContext::For(db.get());
  auto iter = plan->Open(&ctx);
  ASSERT_TRUE(iter.ok());
  std::vector<Row> rows;
  ASSERT_TRUE(DrainIterator(iter->get(), &rows).ok());
  ASSERT_EQ(rows.size(), 10u);
  EXPECT_EQ(rows[3][0].AsInt64(), 6);
}

TEST(OperatorTest, HashAggregateGroups) {
  auto db = OpenTestDb("agg");
  catalog::TableDef* table = MakeNumbersTable(db.get(), "t", 100, 4);
  std::vector<ExprPtr> groups;
  groups.push_back(Col(0, DataType::kInt32));
  std::vector<AggSpec> aggs;
  AggSpec count;
  count.fn = db->functions()->FindAggregate("COUNT");
  count.display = "COUNT(*)";
  aggs.push_back(std::move(count));
  AggSpec sum;
  sum.fn = db->functions()->FindAggregate("SUM");
  sum.args.push_back(Col(1));
  sum.display = "SUM(v)";
  aggs.push_back(std::move(sum));
  OperatorPtr plan = std::make_unique<HashAggregateOp>(
      std::make_unique<TableScanOp>(table), std::move(groups),
      std::vector<std::string>{"k"}, std::move(aggs));
  ExecContext ctx = ExecContext::For(db.get());
  auto iter = plan->Open(&ctx);
  ASSERT_TRUE(iter.ok());
  std::vector<Row> rows;
  ASSERT_TRUE(DrainIterator(iter->get(), &rows).ok());
  ASSERT_EQ(rows.size(), 4u);
  int64_t total = 0;
  for (const Row& r : rows) {
    EXPECT_EQ(r[1].AsInt64(), 25);  // 100 rows over 4 groups
    total += r[2].AsInt64();
  }
  EXPECT_EQ(total, 99 * 100 / 2);
}

TEST(OperatorTest, GlobalAggregateOnEmptyInputYieldsOneRow) {
  auto db = OpenTestDb("emptyagg");
  catalog::TableDef* table = MakeNumbersTable(db.get(), "t", 0, 1);
  std::vector<AggSpec> aggs;
  AggSpec count;
  count.fn = db->functions()->FindAggregate("COUNT");
  count.display = "COUNT(*)";
  aggs.push_back(std::move(count));
  OperatorPtr plan = std::make_unique<HashAggregateOp>(
      std::make_unique<TableScanOp>(table), std::vector<ExprPtr>{},
      std::vector<std::string>{}, std::move(aggs));
  ExecContext ctx = ExecContext::For(db.get());
  auto iter = plan->Open(&ctx);
  ASSERT_TRUE(iter.ok());
  std::vector<Row> rows;
  ASSERT_TRUE(DrainIterator(iter->get(), &rows).ok());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt64(), 0);
}

TEST(OperatorTest, ParallelAggregateMatchesSerial) {
  auto db = OpenTestDb("paragg");
  catalog::TableDef* table = MakeNumbersTable(db.get(), "t", 5000, 13);
  auto* heap = dynamic_cast<storage::HeapTable*>(table->table.get());
  ASSERT_NE(heap, nullptr);
  ASSERT_TRUE(heap->SealCurrentPage().ok());
  auto make_aggs = [&] {
    std::vector<AggSpec> aggs;
    AggSpec count;
    count.fn = db->functions()->FindAggregate("COUNT");
    count.display = "COUNT(*)";
    aggs.push_back(std::move(count));
    AggSpec mx;
    mx.fn = db->functions()->FindAggregate("MAX");
    mx.args.push_back(Col(1));
    mx.display = "MAX(v)";
    aggs.push_back(std::move(mx));
    return aggs;
  };
  std::vector<ExprPtr> groups;
  groups.push_back(Col(0, DataType::kInt32));
  // Morsels of 2 pages over a ~14-page heap exercise real work stealing.
  OperatorPtr parallel = std::make_unique<ParallelAggregateOp>(
      table, std::vector<ParallelStage>{}, std::move(groups),
      std::vector<std::string>{"k"}, make_aggs(), /*dop=*/4,
      /*morsel_pages=*/2);
  ExecContext ctx = ExecContext::For(db.get());
  auto iter = parallel->Open(&ctx);
  ASSERT_TRUE(iter.ok());
  std::vector<Row> rows;
  ASSERT_TRUE(DrainIterator(iter->get(), &rows).ok());
  ASSERT_EQ(rows.size(), 13u);
  int64_t count_total = 0;
  for (const Row& r : rows) count_total += r[1].AsInt64();
  EXPECT_EQ(count_total, 5000);
}

TEST(OperatorTest, ParallelAggregateWithFilterStage) {
  auto db = OpenTestDb("paraggfilter");
  catalog::TableDef* table = MakeNumbersTable(db.get(), "t", 5000, 13);
  auto* heap = dynamic_cast<storage::HeapTable*>(table->table.get());
  ASSERT_NE(heap, nullptr);
  ASSERT_TRUE(heap->SealCurrentPage().ok());
  // WHERE v >= 2500 as a per-morsel filter stage.
  auto make_pred = [&]() -> ExprPtr {
    return std::make_unique<BinaryExpr>(BinaryOp::kGe, Col(1), Lit(int64_t{2500}));
  };
  std::vector<ParallelStage> stages;
  stages.push_back(ParallelStage::Filter(make_pred()));
  std::vector<AggSpec> aggs;
  AggSpec count;
  count.fn = db->functions()->FindAggregate("COUNT");
  count.display = "COUNT(*)";
  aggs.push_back(std::move(count));
  OperatorPtr parallel = std::make_unique<ParallelAggregateOp>(
      table, std::move(stages), std::vector<ExprPtr>{},
      std::vector<std::string>{}, std::move(aggs), /*dop=*/4,
      /*morsel_pages=*/2);
  ExecContext ctx = ExecContext::For(db.get());
  auto iter = parallel->Open(&ctx);
  ASSERT_TRUE(iter.ok());
  std::vector<Row> rows;
  ASSERT_TRUE(DrainIterator(iter->get(), &rows).ok());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt64(), 2500);
}

TEST(ParallelTest, MakeMorselsCoversAllPages) {
  auto morsels = MakeMorsels(/*num_pages=*/10, /*morsel_pages=*/3);
  ASSERT_EQ(morsels.size(), 4u);
  size_t expected_first = 0;
  for (const Morsel& m : morsels) {
    EXPECT_EQ(m.first_page, expected_first);
    EXPECT_GT(m.end_page, m.first_page);
    expected_first = m.end_page;
  }
  EXPECT_EQ(morsels.back().end_page, 10u);
  EXPECT_TRUE(MakeMorsels(0, 3).empty());
  EXPECT_EQ(MakeMorsels(3, 8).size(), 1u);
}

TEST(ParallelTest, ChooseMorselPagesShrinksForSlack) {
  // Big table: capped at the configured maximum.
  EXPECT_EQ(ChooseMorselPages(/*num_pages=*/10000, /*dop=*/4,
                              /*max_pages=*/32),
            32u);
  // Small table: shrunk so each worker sees several morsels.
  EXPECT_LT(ChooseMorselPages(/*num_pages=*/16, /*dop=*/4, /*max_pages=*/32),
            16u);
  EXPECT_GE(ChooseMorselPages(/*num_pages=*/16, /*dop=*/4, /*max_pages=*/32),
            1u);
  // Never zero, even on empty input.
  EXPECT_GE(ChooseMorselPages(0, 4, 32), 1u);
}

TEST(ParallelTest, ParallelMapOpMatchesSerialOrder) {
  auto db = OpenTestDb("parmap");
  catalog::TableDef* table = MakeNumbersTable(db.get(), "t", 5000, 7);
  auto* heap = dynamic_cast<storage::HeapTable*>(table->table.get());
  ASSERT_NE(heap, nullptr);
  ASSERT_TRUE(heap->SealCurrentPage().ok());
  auto make_pred = [&]() -> ExprPtr {
    return std::make_unique<BinaryExpr>(BinaryOp::kLt, Col(1), Lit(int64_t{100}));
  };

  // Serial reference: scan + filter in heap order.
  std::vector<Row> serial;
  {
    OperatorPtr plan = std::make_unique<FilterOp>(
        std::make_unique<TableScanOp>(table), make_pred());
    ExecContext ctx = ExecContext::For(db.get());
    auto iter = plan->Open(&ctx);
    ASSERT_TRUE(iter.ok());
    ASSERT_TRUE(DrainIterator(iter->get(), &serial).ok());
  }

  std::vector<ParallelStage> stages;
  stages.push_back(ParallelStage::Filter(make_pred()));
  OperatorPtr parallel = std::make_unique<ParallelMapOp>(
      table, std::move(stages), /*dop=*/4, /*morsel_pages=*/2,
      /*preserve_order=*/true);
  ExecContext ctx = ExecContext::For(db.get());
  auto iter = parallel->Open(&ctx);
  ASSERT_TRUE(iter.ok());
  std::vector<Row> rows;
  ASSERT_TRUE(DrainIterator(iter->get(), &rows).ok());

  ASSERT_EQ(rows.size(), serial.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_EQ(rows[i].size(), serial[i].size());
    for (size_t c = 0; c < rows[i].size(); ++c) {
      EXPECT_EQ(rows[i][c].Compare(serial[i][c]), 0) << "row " << i;
    }
  }
  EXPECT_NE(parallel->Describe().find("Gather Streams"), std::string::npos);
}

TEST(ParallelTest, ParallelSortMatchesSerial) {
  auto db = OpenTestDb("parsort");
  // Enough rows to cross the parallel-sort threshold.
  catalog::TableDef* table = MakeNumbersTable(db.get(), "t", 6000, 17);
  auto run_sort = [&](int dop) {
    OperatorPtr plan = std::make_unique<TableScanOp>(table);
    std::vector<SortKey> keys;
    keys.push_back({Col(0, DataType::kInt32), false});  // group key: many ties
    plan = std::make_unique<SortOp>(std::move(plan), std::move(keys));
    ExecContext ctx = ExecContext::For(db.get());
    ctx.dop = dop;
    auto iter = plan->Open(&ctx);
    EXPECT_TRUE(iter.ok());
    std::vector<Row> rows;
    EXPECT_TRUE(DrainIterator(iter->get(), &rows).ok());
    return rows;
  };
  const std::vector<Row> serial = run_sort(1);
  const std::vector<Row> parallel = run_sort(4);
  ASSERT_EQ(serial.size(), parallel.size());
  // Ties broken by input order in both paths: byte-identical output.
  for (size_t i = 0; i < serial.size(); ++i) {
    for (size_t c = 0; c < serial[i].size(); ++c) {
      ASSERT_EQ(serial[i][c].Compare(parallel[i][c]), 0) << "row " << i;
    }
  }
}

TEST(OperatorTest, SortAndTop) {
  auto db = OpenTestDb("sort");
  catalog::TableDef* table = MakeNumbersTable(db.get(), "t", 50, 50);
  OperatorPtr plan = std::make_unique<TableScanOp>(table);
  std::vector<SortKey> keys;
  keys.push_back({Col(1), true});  // v DESC
  plan = std::make_unique<SortOp>(std::move(plan), std::move(keys));
  plan = std::make_unique<TopOp>(std::move(plan), 3);
  ExecContext ctx = ExecContext::For(db.get());
  auto iter = plan->Open(&ctx);
  ASSERT_TRUE(iter.ok());
  std::vector<Row> rows;
  ASSERT_TRUE(DrainIterator(iter->get(), &rows).ok());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][1].AsInt64(), 49);
  EXPECT_EQ(rows[2][1].AsInt64(), 47);
}

TEST(OperatorTest, RowNumberAppendsRank) {
  auto db = OpenTestDb("rownum");
  catalog::TableDef* table = MakeNumbersTable(db.get(), "t", 5, 5);
  std::vector<SortKey> keys;
  keys.push_back({Col(1), true});
  OperatorPtr plan = std::make_unique<RowNumberOp>(
      std::make_unique<TableScanOp>(table), std::move(keys), "rank");
  ExecContext ctx = ExecContext::For(db.get());
  auto iter = plan->Open(&ctx);
  ASSERT_TRUE(iter.ok());
  std::vector<Row> rows;
  ASSERT_TRUE(DrainIterator(iter->get(), &rows).ok());
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0][1].AsInt64(), 4);  // highest v first
  EXPECT_EQ(rows[0][3].AsInt64(), 1);  // rank 1
  EXPECT_EQ(rows[4][3].AsInt64(), 5);
}

// Hash join and merge join must agree.
TEST(OperatorTest, HashAndMergeJoinAgree) {
  auto db = OpenTestDb("joins");
  // Clustered tables so merge join inputs stream in key order.
  catalog::TableDef left_def;
  left_def.name = "L";
  left_def.schema.AddColumn({.name = "id", .type = DataType::kInt64});
  left_def.schema.AddColumn({.name = "lv", .type = DataType::kString});
  left_def.clustered_key = {0};
  ASSERT_TRUE(db->CreateTable(std::move(left_def)).ok());
  catalog::TableDef right_def;
  right_def.name = "R";
  right_def.schema.AddColumn({.name = "id", .type = DataType::kInt64});
  right_def.schema.AddColumn({.name = "rv", .type = DataType::kString});
  right_def.clustered_key = {0};
  ASSERT_TRUE(db->CreateTable(std::move(right_def)).ok());
  catalog::TableDef* left = *db->GetTable("L");
  catalog::TableDef* right = *db->GetTable("R");
  // Left: ids 0..99 with duplicates every 10; right: even ids, some dup.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(left->table
                    ->Insert(Row{Value::Int64(i % 90),
                                 Value::String("l" + std::to_string(i))})
                    .ok());
  }
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(right->table
                    ->Insert(Row{Value::Int64(i * 2),
                                 Value::String("r" + std::to_string(i))})
                    .ok());
  }
  auto run = [&](bool merge) {
    std::vector<ExprPtr> lk, rk;
    lk.push_back(Col(0));
    rk.push_back(Col(0));
    OperatorPtr plan;
    if (merge) {
      plan = std::make_unique<MergeJoinOp>(
          std::make_unique<TableScanOp>(left),
          std::make_unique<TableScanOp>(right), std::move(lk), std::move(rk));
    } else {
      plan = std::make_unique<HashJoinOp>(
          std::make_unique<TableScanOp>(left),
          std::make_unique<TableScanOp>(right), std::move(lk), std::move(rk));
    }
    ExecContext ctx = ExecContext::For(db.get());
    auto iter = plan->Open(&ctx);
    EXPECT_TRUE(iter.ok());
    std::vector<Row> rows;
    EXPECT_TRUE(DrainIterator(iter->get(), &rows).ok());
    std::vector<std::string> keys;
    for (const Row& r : rows) {
      keys.push_back(r[0].ToString() + "|" + r[1].AsString() + "|" +
                     r[3].AsString());
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  };
  const auto hash_rows = run(false);
  const auto merge_rows = run(true);
  EXPECT_FALSE(hash_rows.empty());
  EXPECT_EQ(hash_rows, merge_rows);
}

TEST(OperatorTest, NestedLoopJoinWithResidual) {
  auto db = OpenTestDb("nlj");
  catalog::TableDef* a = MakeNumbersTable(db.get(), "a", 10, 10);
  catalog::TableDef* b = MakeNumbersTable(db.get(), "b", 10, 10);
  // Join on a.v < b.v (non-equi): pairs (i, j) with i < j → 45 rows.
  ExprPtr pred = std::make_unique<BinaryExpr>(BinaryOp::kLt, Col(1), Col(4));
  OperatorPtr plan = std::make_unique<NestedLoopJoinOp>(
      std::make_unique<TableScanOp>(a), std::make_unique<TableScanOp>(b),
      std::move(pred));
  ExecContext ctx = ExecContext::For(db.get());
  auto iter = plan->Open(&ctx);
  ASSERT_TRUE(iter.ok());
  std::vector<Row> rows;
  ASSERT_TRUE(DrainIterator(iter->get(), &rows).ok());
  EXPECT_EQ(rows.size(), 45u);
}

TEST(OperatorTest, StreamAggregateOverOrderedInput) {
  auto db = OpenTestDb("streamagg");
  catalog::TableDef def;
  def.name = "ordered";
  def.schema.AddColumn({.name = "g", .type = DataType::kInt32});
  def.schema.AddColumn({.name = "v", .type = DataType::kInt64});
  def.clustered_key = {0};
  ASSERT_TRUE(db->CreateTable(std::move(def)).ok());
  catalog::TableDef* table = *db->GetTable("ordered");
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(
        table->table->Insert(Row{Value::Int32(i / 20), Value::Int64(i)}).ok());
  }
  std::vector<ExprPtr> groups;
  groups.push_back(Col(0, DataType::kInt32));
  std::vector<AggSpec> aggs;
  AggSpec count;
  count.fn = db->functions()->FindAggregate("COUNT");
  count.display = "COUNT(*)";
  aggs.push_back(std::move(count));
  OperatorPtr plan = std::make_unique<StreamAggregateOp>(
      std::make_unique<TableScanOp>(table), std::move(groups),
      std::vector<std::string>{"g"}, std::move(aggs));
  ExecContext ctx = ExecContext::For(db.get());
  auto iter = plan->Open(&ctx);
  ASSERT_TRUE(iter.ok());
  std::vector<Row> rows;
  ASSERT_TRUE(DrainIterator(iter->get(), &rows).ok());
  ASSERT_EQ(rows.size(), 3u);
  for (const Row& r : rows) EXPECT_EQ(r[1].AsInt64(), 20);
}

TEST(OperatorTest, ExplainRendersTree) {
  auto db = OpenTestDb("explain");
  catalog::TableDef* table = MakeNumbersTable(db.get(), "t", 10, 2);
  OperatorPtr plan = std::make_unique<FilterOp>(
      std::make_unique<TableScanOp>(table),
      std::make_unique<BinaryExpr>(BinaryOp::kGt, Col(1), Lit(5)));
  const std::string text = ExplainPlan(*plan);
  EXPECT_NE(text.find("Filter"), std::string::npos);
  EXPECT_NE(text.find("Table Scan [t]"), std::string::npos);
}

}  // namespace
}  // namespace htg::exec
