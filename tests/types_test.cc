#include <gtest/gtest.h>

#include "types/data_type.h"
#include "types/schema.h"
#include "types/value.h"

namespace htg {
namespace {

TEST(DataTypeTest, NamesRoundTrip) {
  EXPECT_EQ(*DataTypeFromName("int"), DataType::kInt32);
  EXPECT_EQ(*DataTypeFromName("BIGINT"), DataType::kInt64);
  EXPECT_EQ(*DataTypeFromName("VarChar"), DataType::kString);
  EXPECT_EQ(*DataTypeFromName("varbinary"), DataType::kBlob);
  EXPECT_EQ(*DataTypeFromName("uniqueidentifier"), DataType::kGuid);
  EXPECT_EQ(*DataTypeFromName("FLOAT"), DataType::kDouble);
  EXPECT_FALSE(DataTypeFromName("FROBNICATE").ok());
}

TEST(DataTypeTest, NumericClassification) {
  EXPECT_TRUE(IsNumeric(DataType::kInt32));
  EXPECT_TRUE(IsNumeric(DataType::kDouble));
  EXPECT_FALSE(IsNumeric(DataType::kString));
  EXPECT_FALSE(IsNumeric(DataType::kBlob));
}

TEST(ValueTest, NullBehaviour) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "NULL");
  EXPECT_EQ(v.Compare(Value::Null()), 0);
  EXPECT_LT(v.Compare(Value::Int32(0)), 0);  // NULL sorts first
}

TEST(ValueTest, NumericComparisonAcrossWidths) {
  EXPECT_EQ(Value::Int32(5).Compare(Value::Int64(5)), 0);
  EXPECT_LT(Value::Int32(5).Compare(Value::Double(5.5)), 0);
  EXPECT_GT(Value::Double(10.0).Compare(Value::Int32(9)), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
}

TEST(ValueTest, HashEqualValuesAgree) {
  EXPECT_EQ(Value::Int32(7).Hash(), Value::Int32(7).Hash());
  EXPECT_EQ(Value::String("ACGT").Hash(), Value::String("ACGT").Hash());
  EXPECT_NE(Value::String("ACGT").Hash(), Value::String("ACGA").Hash());
}

TEST(ValueTest, CastIntToString) {
  Result<Value> v = Value::Int64(42).CastTo(DataType::kString);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "42");
}

TEST(ValueTest, CastStringToInt) {
  Result<Value> v = Value::String("17").CastTo(DataType::kInt64);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt64(), 17);
  EXPECT_FALSE(Value::String("x").CastTo(DataType::kInt64).ok());
}

TEST(ValueTest, CastNullStaysNull) {
  Result<Value> v = Value::Null().CastTo(DataType::kInt32);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
}

TEST(ValueTest, DoubleToStringReadable) {
  EXPECT_EQ(Value::Double(2.0).ToString(), "2.0");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
}

TEST(SchemaTest, FindColumnCaseInsensitive) {
  Schema schema;
  schema.AddColumn({.name = "Short_Read_Seq", .type = DataType::kString});
  schema.AddColumn({.name = "r_id", .type = DataType::kInt64});
  EXPECT_EQ(schema.FindColumn("short_read_seq"), 0);
  EXPECT_EQ(schema.FindColumn("R_ID"), 1);
  EXPECT_EQ(schema.FindColumn("nope"), -1);
  EXPECT_FALSE(schema.ResolveColumn("nope").ok());
}

TEST(SchemaTest, ToStringListsColumns) {
  Schema schema;
  schema.AddColumn({.name = "a", .type = DataType::kInt32});
  Column fs;
  fs.name = "reads";
  fs.type = DataType::kBlob;
  fs.filestream = true;
  schema.AddColumn(fs);
  const std::string text = schema.ToString();
  EXPECT_NE(text.find("a INT"), std::string::npos);
  EXPECT_NE(text.find("FILESTREAM"), std::string::npos);
}

TEST(RowTest, CompareRowsOnSubset) {
  Row a{Value::Int32(1), Value::String("x")};
  Row b{Value::Int32(1), Value::String("y")};
  EXPECT_EQ(CompareRowsOn(a, b, {0}), 0);
  EXPECT_LT(CompareRowsOn(a, b, {0, 1}), 0);
  EXPECT_LT(CompareRowsOn(a, b, {1}), 0);
}

}  // namespace
}  // namespace htg
