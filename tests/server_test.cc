// Server subsystem tests: wire codecs, the table lock manager, and full
// client<->server conversations over loopback — session concurrency,
// lock conflict timeouts crossing the wire typed, prepared-statement
// cache eviction, mid-statement client disconnect, graceful-shutdown
// drain, and the statement dedupe token that keeps retries from
// re-executing committed loads.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/lock_manager.h"
#include "server/server.h"
#include "server/session.h"
#include "server/wire.h"
#include "sql/engine.h"
#include "sql/parser.h"

namespace htg::server {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    DatabaseOptions options;
    options.filestream_root =
        "/tmp/htg_server_test_" + std::to_string(counter++);
    auto db = Database::Open("servertest", options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    ASSERT_TRUE(db_->filestream()->Clear().ok());
  }

  void StartServer(ServerOptions options = {}) {
    server_ = std::make_unique<Server>(db_.get(), options);
    const Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  std::unique_ptr<Client> Connect() {
    auto client = Client::Connect(server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? std::move(*client) : nullptr;
  }

  ClientResult Query(Client* client, const std::string& sql) {
    Result<ClientResult> r = client->Query(sql);
    EXPECT_TRUE(r.ok()) << sql << "\n--> " << r.status().ToString();
    return r.ok() ? std::move(*r) : ClientResult{};
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Server> server_;
};

// ----------------------------------------------------------- wire codecs

TEST(WireCodec, ValueRoundTripAllTypes) {
  std::vector<Row> rows;
  rows.push_back({Value::Null(), Value::Bool(true), Value::Int32(-7),
                  Value::Int64(1ll << 40), Value::Double(2.5),
                  Value::String("chr1"), Value::Blob(std::string("\0\xff", 2)),
                  Value::Guid("0123456789abcdef")});
  rows.push_back({Value::Int64(0)});
  std::string payload;
  EncodeRowBatch(rows, 0, rows.size(), &payload);
  std::vector<Row> decoded;
  ASSERT_TRUE(DecodeRowBatch(payload, &decoded).ok());
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_TRUE(decoded[0][0].is_null());
  EXPECT_TRUE(decoded[0][1].AsBool());
  EXPECT_EQ(decoded[0][2].AsInt64(), -7);
  EXPECT_EQ(decoded[0][3].AsInt64(), 1ll << 40);
  EXPECT_EQ(decoded[0][4].AsDouble(), 2.5);
  EXPECT_EQ(decoded[0][5].AsString(), "chr1");
  EXPECT_EQ(decoded[0][6].AsString(), std::string("\0\xff", 2));
  EXPECT_EQ(decoded[0][7].type(), DataType::kGuid);
}

TEST(WireCodec, TruncatedPayloadIsCorruption) {
  std::vector<Row> rows;
  rows.push_back({Value::String("a long enough string")});
  std::string payload;
  EncodeRowBatch(rows, 0, 1, &payload);
  std::vector<Row> decoded;
  const Status s =
      DecodeRowBatch(std::string_view(payload).substr(0, payload.size() - 3),
                     &decoded);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(WireCodec, SchemaRoundTrip) {
  Schema schema;
  schema.AddColumn({.name = "id", .type = DataType::kInt64});
  Column sample;
  sample.name = "sample";
  sample.type = DataType::kString;
  sample.nullable = true;
  schema.AddColumn(std::move(sample));
  std::string payload;
  EncodeSchema(schema, &payload);
  Schema decoded;
  ASSERT_TRUE(DecodeSchema(payload, &decoded).ok());
  ASSERT_EQ(decoded.num_columns(), 2);
  EXPECT_EQ(decoded.column(0).name, "id");
  EXPECT_TRUE(decoded.column(1).nullable);
}

// ---------------------------------------------------------- lock manager

TEST(LockManagerTest, SharedReadersCoexistWritersExclude) {
  LockManager locks;
  auto r1 = locks.Acquire({"T"}, {}, 100);
  auto r2 = locks.Acquire({"T"}, {}, 100);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  // A writer cannot get in while readers hold the table.
  auto w = locks.Acquire({}, {"T"}, 50);
  ASSERT_FALSE(w.ok());
  EXPECT_EQ(w.status().code(), StatusCode::kAborted);
  EXPECT_NE(w.status().message().find("lock timeout"), std::string::npos);
  r1->Release();
  r2->Release();
  auto w2 = locks.Acquire({}, {"T"}, 50);
  EXPECT_TRUE(w2.ok());
  EXPECT_EQ(locks.LockedTableCount(), 1u);
  w2->Release();
  EXPECT_EQ(locks.LockedTableCount(), 0u);
}

TEST(LockManagerTest, WriteLockUnblocksWaitingReader) {
  LockManager locks;
  auto w = locks.Acquire({}, {"T"}, 100);
  ASSERT_TRUE(w.ok());
  std::atomic<bool> acquired{false};
  std::thread reader([&] {
    auto r = locks.Acquire({"T"}, {}, 5000);
    EXPECT_TRUE(r.ok());
    acquired.store(true);
  });
  w->Release();
  reader.join();
  EXPECT_TRUE(acquired.load());
}

TEST(LockManagerTest, TableInBothSetsIsExclusive) {
  LockManager locks;
  // INSERT INTO T SELECT FROM T: T appears as read and write; the write
  // wins, so a concurrent reader must time out.
  auto both = locks.Acquire({"T"}, {"T"}, 100);
  ASSERT_TRUE(both.ok());
  auto r = locks.Acquire({"T"}, {}, 50);
  EXPECT_FALSE(r.ok());
}

TEST(LockFootprintTest, DerivedFromAst) {
  auto stmts = sql::ParseSql(
      "INSERT INTO dst SELECT r.id FROM src r JOIN other o ON r.id = o.id");
  ASSERT_TRUE(stmts.ok());
  const LockFootprint fp = DeriveLockFootprint(*stmts);
  EXPECT_TRUE(fp.has_writes);
  ASSERT_EQ(fp.writes.size(), 1u);
  EXPECT_EQ(fp.writes[0], "DST");
  // src + other + the shared catalog pseudo-lock.
  EXPECT_EQ(fp.reads.size(), 3u);
}

// --------------------------------------------------------- conversations

TEST_F(ServerTest, QueryPrepareExecuteRoundTrip) {
  StartServer();
  std::unique_ptr<Client> client = Connect();
  ASSERT_NE(client, nullptr);
  Query(client.get(), "CREATE TABLE Read (id INT, sample VARCHAR(20))");
  const ClientResult ins = Query(
      client.get(),
      "INSERT INTO Read VALUES (1, 'NA12878'), (2, 'NA12891'), (3, 'NA12878')");
  EXPECT_EQ(ins.rows_affected, 3u);
  const ClientResult sel = Query(
      client.get(), "SELECT sample, COUNT(*) FROM Read GROUP BY sample");
  EXPECT_EQ(sel.rows.size(), 2u);
  EXPECT_EQ(sel.schema.num_columns(), 2);

  auto prepared = client->Prepare("SELECT COUNT(*) FROM Read");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto executed = client->Execute(*prepared);
  ASSERT_TRUE(executed.ok()) << executed.status().ToString();
  ASSERT_EQ(executed->rows.size(), 1u);
  EXPECT_EQ(executed->rows[0][0].AsInt64(), 3);
  ASSERT_TRUE(client->CloseStatement(*prepared).ok());
  auto gone = client->Execute(*prepared);
  ASSERT_FALSE(gone.ok());
  EXPECT_TRUE(gone.status().IsNotFound()) << gone.status().ToString();
  client->Goodbye();
}

TEST_F(ServerTest, StatementErrorKeepsSessionUsable) {
  StartServer();
  std::unique_ptr<Client> client = Connect();
  ASSERT_NE(client, nullptr);
  auto bad = client->Query("SELECT * FROM NoSuchTable");
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsNotFound());
  auto parse = client->Query("SELEC oops");
  ASSERT_FALSE(parse.ok());
  EXPECT_TRUE(parse.status().IsParseError());
  // The session survives both failures.
  const ClientResult ok = Query(client.get(), "SELECT 1 + 1 AS two");
  ASSERT_EQ(ok.rows.size(), 1u);
  EXPECT_EQ(ok.rows[0][0].AsInt64(), 2);
}

TEST_F(ServerTest, ConcurrentReadersAndWriterInterleave) {
  ServerOptions options;
  options.threads = 8;
  StartServer(options);
  {
    std::unique_ptr<Client> admin = Connect();
    ASSERT_NE(admin, nullptr);
    Query(admin.get(), "CREATE TABLE hits (id INT, n INT)");
    Query(admin.get(), "INSERT INTO hits VALUES (0, 0)");
    admin->Goodbye();
  }
  constexpr int kReaders = 4;
  constexpr int kWrites = 25;
  std::atomic<int> reader_failures{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&] {
      auto client = Client::Connect(server_->port());
      if (!client.ok()) {
        ++reader_failures;
        return;
      }
      while (!stop.load(std::memory_order_acquire)) {
        auto r = (*client)->Query("SELECT COUNT(*) FROM hits");
        if (!r.ok()) ++reader_failures;
      }
      (*client)->Goodbye();
    });
  }
  {
    auto writer = Client::Connect(server_->port());
    ASSERT_TRUE(writer.ok());
    for (int i = 1; i <= kWrites; ++i) {
      auto r = (*writer)->Query(
          "INSERT INTO hits VALUES (" + std::to_string(i) + ", 1)");
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
    (*writer)->Goodbye();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(reader_failures.load(), 0);
  std::unique_ptr<Client> check = Connect();
  ASSERT_NE(check, nullptr);
  const ClientResult count =
      Query(check.get(), "SELECT COUNT(*) FROM hits");
  ASSERT_EQ(count.rows.size(), 1u);
  EXPECT_EQ(count.rows[0][0].AsInt64(), kWrites + 1);
  check->Goodbye();
  EXPECT_EQ(server_->locks()->LockedTableCount(), 0u);
}

TEST_F(ServerTest, LockConflictTimesOutTyped) {
  ServerOptions options;
  options.lock_timeout_ms = 100;
  StartServer(options);
  std::unique_ptr<Client> client = Connect();
  ASSERT_NE(client, nullptr);
  Query(client.get(), "CREATE TABLE busy (id INT)");
  // Hold the table exclusively out-of-band, then watch a writer's
  // bounded wait fail typed across the wire. (A reader would sail
  // through: under MVCC, scans take only the schema-stability lock —
  // see docs/CONCURRENCY.md.)
  auto held = server_->locks()->Acquire({}, {"BUSY"}, 1000);
  ASSERT_TRUE(held.ok());
  const ClientResult read = Query(client.get(), "SELECT COUNT(*) FROM busy");
  EXPECT_EQ(read.rows.size(), 1u);  // snapshot read never queues
  auto r = client->Query("INSERT INTO busy VALUES (1)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAborted) << r.status().ToString();
  EXPECT_NE(r.status().message().find("lock timeout"), std::string::npos);
  held->Release();
  // And with the conflict gone the same statement succeeds.
  auto ok = client->Query("INSERT INTO busy VALUES (1)");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST_F(ServerTest, PreparedStatementCacheEvicts) {
  ServerOptions options;
  options.stmt_cache_capacity = 2;
  StartServer(options);
  std::unique_ptr<Client> client = Connect();
  ASSERT_NE(client, nullptr);
  auto s1 = client->Prepare("SELECT 1");
  auto s2 = client->Prepare("SELECT 2");
  auto s3 = client->Prepare("SELECT 3");  // evicts s1 (LRU)
  ASSERT_TRUE(s1.ok() && s2.ok() && s3.ok());
  auto evicted = client->Execute(*s1);
  ASSERT_FALSE(evicted.ok());
  EXPECT_TRUE(evicted.status().IsNotFound()) << evicted.status().ToString();
  auto live = client->Execute(*s3);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live->rows[0][0].AsInt64(), 3);
  // Executing s2 refreshes it; the next prepare evicts s3, not s2.
  ASSERT_TRUE(client->Execute(*s2).ok());
  auto s4 = client->Prepare("SELECT 4");
  ASSERT_TRUE(s4.ok());
  EXPECT_FALSE(client->Execute(*s3).ok());
  EXPECT_TRUE(client->Execute(*s2).ok());
}

TEST_F(ServerTest, MidStatementClientDisconnect) {
  StartServer();
  {
    std::unique_ptr<Client> admin = Connect();
    ASSERT_NE(admin, nullptr);
    Query(admin.get(), "CREATE TABLE big (id INT)");
    for (int i = 0; i < 20; ++i) {
      Query(admin.get(), "INSERT INTO big VALUES (" + std::to_string(i) + ")");
    }
    admin->Goodbye();
  }
  // Fire a query and slam the connection without reading the result. The
  // server must absorb the dead peer (no SIGPIPE, no leaked lock).
  {
    auto raw = ConnectLoopback(server_->port());
    ASSERT_TRUE(raw.ok());
    HelloMsg hello;
    std::string payload;
    EncodeHello(hello, &payload);
    ASSERT_TRUE(WriteFrame(raw->get(), MsgType::kHello, payload).ok());
    Frame ack;
    ASSERT_TRUE(ReadFrame(raw->get(), &ack).ok());
    QueryMsg query;
    query.sql = "SELECT * FROM big";
    payload.clear();
    EncodeQuery(query, &payload);
    ASSERT_TRUE(WriteFrame(raw->get(), MsgType::kQuery, payload).ok());
    (*raw)->Close();
  }
  // The server keeps serving other sessions and every lock drains.
  std::unique_ptr<Client> client = Connect();
  ASSERT_NE(client, nullptr);
  const ClientResult count = Query(client.get(), "SELECT COUNT(*) FROM big");
  ASSERT_EQ(count.rows.size(), 1u);
  EXPECT_EQ(count.rows[0][0].AsInt64(), 20);
  client->Goodbye();
  for (int i = 0; i < 100 && server_->locks()->LockedTableCount() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server_->locks()->LockedTableCount(), 0u);
}

TEST_F(ServerTest, GracefulShutdownDrainsInFlightWrites) {
  StartServer();
  {
    std::unique_ptr<Client> admin = Connect();
    ASSERT_NE(admin, nullptr);
    Query(admin.get(), "CREATE TABLE load (id INT)");
    admin->Goodbye();
  }
  std::atomic<int> committed{0};
  std::thread loader([&] {
    auto client = Client::Connect(server_->port());
    if (!client.ok()) return;
    for (int i = 0; i < 100000; ++i) {
      auto r = (*client)->Query("INSERT INTO load VALUES (" +
                                std::to_string(i) + ")");
      if (!r.ok()) break;  // server drained; the wire said goodbye
      committed.fetch_add(1);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server_->Shutdown();
  loader.join();
  EXPECT_GT(committed.load(), 0);
  // Nothing half-applied and nothing orphaned: every acknowledged insert
  // is in the table, no trailing partial row, and every lock released.
  EXPECT_EQ(server_->locks()->LockedTableCount(), 0u);
  sql::SqlEngine engine(db_.get());
  auto count = engine.Execute("SELECT COUNT(*) FROM load");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt64(), committed.load());
  // New connections are refused after shutdown.
  auto late = Client::Connect(server_->port());
  EXPECT_FALSE(late.ok());
}

TEST_F(ServerTest, IdleClientSeesGoodbyeOnShutdown) {
  StartServer();
  std::unique_ptr<Client> client = Connect();
  ASSERT_NE(client, nullptr);
  server_->Shutdown();
  auto r = client->Query("SELECT 1");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAborted) << r.status().ToString();
}

// ----------------------------------------------- statement dedupe tokens

TEST_F(ServerTest, TokenDedupeDoesNotReExecuteCommittedLoad) {
  // Satellite regression: once the session layer owns retries, re-running
  // a committed non-idempotent load after a kTransient must return the
  // recorded result, not double the rows.
  sql::SqlEngine engine(db_.get());
  ASSERT_TRUE(engine.Execute("CREATE TABLE reads (id INT)").ok());
  sql::StatementOptions opts;
  opts.token = "load-1";
  opts.caller_owns_retries = true;
  auto first =
      engine.Execute("INSERT INTO reads VALUES (1), (2), (3)", opts);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->rows_affected, 3u);
  // The session-layer retry of the same statement (same token).
  auto retried =
      engine.Execute("INSERT INTO reads VALUES (1), (2), (3)", opts);
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(retried->rows_affected, 3u);
  auto count = engine.Execute("SELECT COUNT(*) FROM reads");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt64(), 3) << "committed load ran twice";
  // A different token is a different statement and does execute.
  opts.token = "load-2";
  ASSERT_TRUE(
      engine.Execute("INSERT INTO reads VALUES (4)", opts).ok());
  count = engine.Execute("SELECT COUNT(*) FROM reads");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt64(), 4);
}

TEST_F(ServerTest, ClientTokenDedupesAcrossWire) {
  StartServer();
  std::unique_ptr<Client> client = Connect();
  ASSERT_NE(client, nullptr);
  Query(client.get(), "CREATE TABLE t (id INT)");
  auto first = client->Query("INSERT INTO t VALUES (1)", "tok-a");
  ASSERT_TRUE(first.ok());
  // A client that never saw the ack retries with the same token.
  auto retry = client->Query("INSERT INTO t VALUES (1)", "tok-a");
  ASSERT_TRUE(retry.ok());
  const ClientResult count = Query(client.get(), "SELECT COUNT(*) FROM t");
  EXPECT_EQ(count.rows[0][0].AsInt64(), 1);
}

// Per-session memory budgets surface as typed kResourceExhausted.
TEST_F(ServerTest, SessionMemoryBudgetIsEnforced) {
  ServerOptions options;
  options.session_mem_bytes = 16 * 1024;  // far too small for a big sort
  StartServer(options);
  std::unique_ptr<Client> client = Connect();
  ASSERT_NE(client, nullptr);
  Query(client.get(), "CREATE TABLE wide (id INT, label VARCHAR(64))");
  for (int i = 0; i < 40; ++i) {
    std::string values;
    for (int j = 0; j < 50; ++j) {
      const int v = i * 50 + j;
      values += (j > 0 ? "," : "");
      values += "(" + std::to_string(v) + ", 'sample_label_" +
                std::to_string(v) + "')";
    }
    Query(client.get(), "INSERT INTO wide VALUES " + values);
  }
  // Spilling keeps the statement alive under the tiny budget; what must
  // hold is that it either succeeds (degraded) or fails typed.
  auto r = client->Query("SELECT id, label FROM wide ORDER BY label");
  if (!r.ok()) {
    EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  } else {
    EXPECT_EQ(r->rows.size(), 2000u);
  }
}

}  // namespace
}  // namespace htg::server
