#include <gtest/gtest.h>

#include "genomics/aligner.h"
#include "genomics/nucleotide.h"
#include "genomics/simulator.h"

namespace htg::genomics {
namespace {

class AlignerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reference_ = ReferenceGenome::Random(60000, 3, 21);
  }

  ReferenceGenome reference_;
};

TEST_F(AlignerTest, ExactReadsAlignToOrigin) {
  SimulatorOptions sim_options;
  sim_options.seed = 22;
  sim_options.base_error_rate = 0.0;
  sim_options.error_rate_slope = 0.0;
  sim_options.n_rate = 0.0;
  ReadSimulator sim(&reference_, sim_options);
  std::vector<SimulatedOrigin> origins;
  std::vector<ShortRead> reads = sim.SimulateResequencing(300, &origins);

  Aligner aligner(&reference_, {});
  int aligned = 0;
  int correct = 0;
  for (size_t i = 0; i < reads.size(); ++i) {
    Result<Alignment> a = aligner.AlignRead(reads[i]);
    if (!a.ok()) continue;
    ++aligned;
    if (a->chromosome == origins[i].chromosome &&
        a->position == origins[i].position &&
        a->reverse_strand == origins[i].reverse_strand) {
      ++correct;
    }
  }
  // Error-free 36-mers over a 60 kbp random genome are essentially unique.
  EXPECT_EQ(aligned, 300);
  EXPECT_GE(correct, 298);
}

TEST_F(AlignerTest, ReadsWithErrorsStillAlign) {
  SimulatorOptions sim_options;
  sim_options.seed = 23;
  sim_options.base_error_rate = 0.01;
  sim_options.error_rate_slope = 0.01;
  sim_options.n_rate = 0.0;
  ReadSimulator sim(&reference_, sim_options);
  std::vector<SimulatedOrigin> origins;
  std::vector<ShortRead> reads = sim.SimulateResequencing(300, &origins);
  Aligner aligner(&reference_, {});
  int correct = 0;
  for (size_t i = 0; i < reads.size(); ++i) {
    Result<Alignment> a = aligner.AlignRead(reads[i]);
    if (a.ok() && a->chromosome == origins[i].chromosome &&
        a->position == origins[i].position) {
      ++correct;
    }
  }
  // Seed errors cost some reads; the bulk must still map home.
  EXPECT_GT(correct, 200);
}

TEST_F(AlignerTest, ReverseStrandDetected) {
  const std::string& chr = reference_.chromosome(0).sequence;
  ShortRead read;
  read.sequence = ReverseComplement(chr.substr(1000, 36));
  read.quality = std::string(36, 'I');
  read.name = "rc";
  Aligner aligner(&reference_, {});
  Result<Alignment> a = aligner.AlignRead(read);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->reverse_strand);
  EXPECT_EQ(a->chromosome, 0);
  EXPECT_EQ(a->position, 1000);
}

TEST_F(AlignerTest, MismatchLimitEnforced) {
  const std::string& chr = reference_.chromosome(0).sequence;
  ShortRead read;
  read.sequence = chr.substr(2000, 36);
  read.quality = std::string(36, 'I');
  read.name = "mm";
  // Introduce 3 mismatches (limit is 2) far from the seed (first 18 bp).
  for (int i : {20, 26, 32}) {
    read.sequence[i] = Complement(read.sequence[i]);
  }
  AlignerOptions options;
  options.max_mismatches = 2;
  Aligner strict(&reference_, options);
  EXPECT_FALSE(strict.AlignRead(read).ok());
  options.max_mismatches = 3;
  Aligner lenient(&reference_, options);
  Result<Alignment> a = lenient.AlignRead(read);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->position, 2000);
  EXPECT_EQ(a->mismatches, 3);
}

TEST_F(AlignerTest, NInSeedSkipsRead) {
  ShortRead read;
  read.sequence = std::string(36, 'N');
  read.quality = std::string(36, '!');
  read.name = "n";
  Aligner aligner(&reference_, {});
  EXPECT_FALSE(aligner.AlignRead(read).ok());
}

TEST_F(AlignerTest, MappingQualityReflectsAmbiguity) {
  // Construct a reference with an exact repeat: reads from it must get
  // mapping quality 0; unique reads get high quality.
  std::string chr = reference_.chromosome(0).sequence.substr(0, 5000);
  const std::string repeat = chr.substr(100, 200);
  chr += repeat;  // duplicate the segment at the end
  ReferenceGenome repeated({{"chrR", chr}});
  Aligner aligner(&repeated, {});

  ShortRead ambiguous;
  ambiguous.sequence = repeat.substr(50, 36);
  ambiguous.quality = std::string(36, 'I');
  Result<Alignment> amb = aligner.AlignRead(ambiguous);
  ASSERT_TRUE(amb.ok());
  EXPECT_EQ(amb->mapping_quality, 0);

  ShortRead unique;
  unique.sequence = chr.substr(2000, 36);
  unique.quality = std::string(36, 'I');
  Result<Alignment> uni = aligner.AlignRead(unique);
  ASSERT_TRUE(uni.ok());
  EXPECT_GT(uni->mapping_quality, 30);
}

TEST_F(AlignerTest, BatchAssignsReadIds) {
  SimulatorOptions sim_options;
  sim_options.seed = 24;
  sim_options.base_error_rate = 0.0;
  sim_options.error_rate_slope = 0.0;
  sim_options.n_rate = 0.0;
  ReadSimulator sim(&reference_, sim_options);
  std::vector<ShortRead> reads = sim.SimulateResequencing(50);
  Aligner aligner(&reference_, {});
  std::vector<Alignment> alignments = aligner.AlignBatch(reads, 1000);
  ASSERT_EQ(alignments.size(), 50u);
  EXPECT_EQ(alignments.front().read_id, 1000);
  EXPECT_EQ(alignments.back().read_id, 1049);
}

TEST_F(AlignerTest, ShortReadRejected) {
  ShortRead read;
  read.sequence = "ACGT";
  Aligner aligner(&reference_, {});
  EXPECT_FALSE(aligner.AlignRead(read).ok());
}

}  // namespace
}  // namespace htg::genomics
