#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "genomics/register.h"
#include "sql/engine.h"
#include "sql/parser.h"

namespace htg::sql {
namespace {

class SqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    DatabaseOptions options;
    options.filestream_root =
        "/tmp/htg_sql_test_" + std::to_string(counter++);
    auto db = Database::Open("sqltest", options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    ASSERT_TRUE(db_->filestream()->Clear().ok());
    ASSERT_TRUE(genomics::RegisterGenomicsExtensions(db_.get()).ok());
    engine_ = std::make_unique<SqlEngine>(db_.get());
  }

  QueryResult Exec(const std::string& sql) {
    Result<QueryResult> result = engine_->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << "\n--> " << result.status().ToString();
    return result.ok() ? std::move(*result) : QueryResult{};
  }

  // Asserts the statement fails; no Status escapes (nothing inspected it).
  void ExecError(const std::string& sql) {
    Result<QueryResult> result = engine_->Execute(sql);
    EXPECT_FALSE(result.ok()) << sql;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<SqlEngine> engine_;
};

TEST_F(SqlTest, SelectWithoutFrom) {
  QueryResult r = Exec("SELECT 1 + 2 AS three, 'ab' + 'cd' AS cat");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 3);
  EXPECT_EQ(r.rows[0][1].AsString(), "abcd");
  EXPECT_EQ(r.schema.column(0).name, "three");
}

TEST_F(SqlTest, CreateInsertSelect) {
  Exec("CREATE TABLE t (a INT, b VARCHAR(20), c FLOAT)");
  Exec("INSERT INTO t VALUES (1, 'x', 1.5), (2, 'y', 2.5), (3, NULL, NULL)");
  QueryResult r = Exec("SELECT a, b, c FROM t WHERE a >= 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 2);
  EXPECT_TRUE(r.rows[1][1].is_null());
}

TEST_F(SqlTest, InsertColumnListReordersAndDefaultsNull) {
  Exec("CREATE TABLE t (a INT, b VARCHAR(20), c FLOAT)");
  Exec("INSERT INTO t (c, a) VALUES (9.5, 4)");
  QueryResult r = Exec("SELECT a, b, c FROM t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 4);
  EXPECT_TRUE(r.rows[0][1].is_null());
  EXPECT_EQ(r.rows[0][2].AsDouble(), 9.5);
}

TEST_F(SqlTest, GroupByWithHaving) {
  Exec("CREATE TABLE sales (region VARCHAR(10), amount INT)");
  Exec("INSERT INTO sales VALUES ('n', 10), ('n', 20), ('s', 5), ('s', 1), "
       "('w', 100)");
  QueryResult r = Exec(
      "SELECT region, SUM(amount), COUNT(*) FROM sales "
      "GROUP BY region HAVING SUM(amount) > 6 ORDER BY region");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "n");
  EXPECT_EQ(r.rows[0][1].AsInt64(), 30);
  EXPECT_EQ(r.rows[1][0].AsString(), "w");
}

TEST_F(SqlTest, PaperQuery1BinningShape) {
  // The paper's Query 1: ROW_NUMBER over COUNT(*) DESC, N-filter, GROUP BY.
  Exec("CREATE TABLE ReadT (r_e_id INT, r_sg_id INT, r_s_id INT, "
       "short_read_seq VARCHAR(40))");
  Exec("INSERT INTO ReadT VALUES "
       "(1,2,1,'AAAA'), (1,2,1,'AAAA'), (1,2,1,'AAAA'), "
       "(1,2,1,'CCCC'), (1,2,1,'CCCC'), (1,2,1,'GGNG'), (9,9,9,'TTTT')");
  QueryResult r = Exec(
      "SELECT ROW_NUMBER() OVER (ORDER BY COUNT(*) DESC) AS rank, "
      "COUNT(*) AS freq, short_read_seq "
      "FROM ReadT "
      "WHERE r_e_id=1 AND r_sg_id=2 AND r_s_id=1 "
      "  AND CHARINDEX('N', short_read_seq) = 0 "
      "GROUP BY short_read_seq "
      "ORDER BY rank");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 1);
  EXPECT_EQ(r.rows[0][1].AsInt64(), 3);
  EXPECT_EQ(r.rows[0][2].AsString(), "AAAA");
  EXPECT_EQ(r.rows[1][1].AsInt64(), 2);
  EXPECT_EQ(r.rows[1][2].AsString(), "CCCC");
}

TEST_F(SqlTest, PaperQuery2GeneExpressionShape) {
  Exec("CREATE TABLE AlignmentT (a_g_id INT, a_e_id INT, a_sg_id INT, "
       "a_s_id INT, a_t_id BIGINT)");
  Exec("CREATE TABLE TagT (t_id BIGINT, t_frequency BIGINT)");
  Exec("CREATE TABLE GeneExpressionT (g INT, e INT, sg INT, s INT, "
       "total_freq BIGINT, tags BIGINT)");
  Exec("INSERT INTO TagT VALUES (1, 100), (2, 50), (3, 10)");
  Exec("INSERT INTO AlignmentT VALUES (7,1,1,1,1), (7,1,1,1,2), (8,1,1,1,3), "
       "(9,2,1,1,1)");
  Exec("INSERT INTO GeneExpressionT "
       "SELECT a_g_id, a_e_id, a_sg_id, a_s_id, SUM(t_frequency), "
       "COUNT(a_t_id) "
       "FROM AlignmentT JOIN TagT ON (a_t_id = t_id) "
       "WHERE a_e_id=1 AND a_sg_id=1 AND a_s_id=1 "
       "GROUP BY a_g_id, a_e_id, a_sg_id, a_s_id");
  QueryResult r = Exec(
      "SELECT g, total_freq, tags FROM GeneExpressionT ORDER BY g");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 7);
  EXPECT_EQ(r.rows[0][1].AsInt64(), 150);
  EXPECT_EQ(r.rows[0][2].AsInt64(), 2);
  EXPECT_EQ(r.rows[1][0].AsInt64(), 8);
  EXPECT_EQ(r.rows[1][1].AsInt64(), 10);
}

TEST_F(SqlTest, JoinPicksMergeForClusteredKeys) {
  Exec("CREATE TABLE L (id BIGINT PRIMARY KEY, lv VARCHAR(10))");
  Exec("CREATE TABLE R (id BIGINT PRIMARY KEY, rv VARCHAR(10))");
  Result<std::string> plan =
      engine_->Explain("SELECT lv, rv FROM L JOIN R ON L.id = R.id");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("Merge Join"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("Clustered Index Scan"), std::string::npos) << *plan;
}

TEST_F(SqlTest, JoinFallsBackToHashForHeaps) {
  Exec("CREATE TABLE LH (id BIGINT, lv VARCHAR(10))");
  Exec("CREATE TABLE RH (id BIGINT, rv VARCHAR(10))");
  Result<std::string> plan =
      engine_->Explain("SELECT lv, rv FROM LH JOIN RH ON LH.id = RH.id");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("Hash Match (Inner Join)"), std::string::npos) << *plan;
}

TEST_F(SqlTest, LeftOuterJoin) {
  // The canonical genomics use: reads that did NOT align.
  Exec("CREATE TABLE Reads (r_id BIGINT, seq VARCHAR(20))");
  Exec("CREATE TABLE Aligns (a_r_id BIGINT, pos BIGINT)");
  Exec("INSERT INTO Reads VALUES (1,'AAAA'), (2,'CCCC'), (3,'GGGG')");
  Exec("INSERT INTO Aligns VALUES (1, 100), (1, 200), (3, 50)");
  QueryResult all = Exec(
      "SELECT r_id, pos FROM Reads LEFT JOIN Aligns ON r_id = a_r_id "
      "ORDER BY r_id, pos");
  ASSERT_EQ(all.rows.size(), 4u);  // read 2 survives with NULL pos
  EXPECT_TRUE(all.rows[2][1].is_null());
  EXPECT_EQ(all.rows[2][0].AsInt64(), 2);

  QueryResult unaligned = Exec(
      "SELECT seq FROM Reads LEFT OUTER JOIN Aligns ON r_id = a_r_id "
      "WHERE a_r_id IS NULL");
  ASSERT_EQ(unaligned.rows.size(), 1u);
  EXPECT_EQ(unaligned.rows[0][0].AsString(), "CCCC");

  // Plan names the outer join.
  Result<std::string> plan = engine_->Explain(
      "SELECT r_id FROM Reads LEFT JOIN Aligns ON r_id = a_r_id");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("Left Outer Join"), std::string::npos) << *plan;

  // Non-equi LEFT JOIN is rejected, not silently mis-planned.
  ExecError("SELECT r_id FROM Reads LEFT JOIN Aligns ON r_id < a_r_id");
}

TEST_F(SqlTest, JoinResultsCorrect) {
  Exec("CREATE TABLE L (id BIGINT PRIMARY KEY, lv VARCHAR(10))");
  Exec("CREATE TABLE R (id BIGINT PRIMARY KEY, rv VARCHAR(10))");
  Exec("INSERT INTO L VALUES (1,'a'), (2,'b'), (3,'c')");
  Exec("INSERT INTO R VALUES (2,'x'), (3,'y'), (4,'z')");
  QueryResult r =
      Exec("SELECT L.id, lv, rv FROM L JOIN R ON L.id = R.id ORDER BY 1");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].AsString(), "b");
  EXPECT_EQ(r.rows[0][2].AsString(), "x");
  EXPECT_EQ(r.rows[1][2].AsString(), "y");
}

TEST_F(SqlTest, ParallelPlanForLargeHeapAggregate) {
  Exec("CREATE TABLE big (k INT, v BIGINT)");
  // Below threshold: serial plan.
  Result<std::string> serial =
      engine_->Explain("SELECT k, COUNT(*) FROM big GROUP BY k");
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(serial->find("Gather Streams"), std::string::npos);
  // Fill past the parallel threshold.
  auto* table = *db_->GetTable("big");
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(db_->InsertRow(table,
                               Row{Value::Int32(i % 5), Value::Int64(i)})
                    .ok());
  }
  Result<std::string> parallel =
      engine_->Explain("SELECT k, COUNT(*) FROM big GROUP BY k");
  ASSERT_TRUE(parallel.ok());
  EXPECT_NE(parallel->find("Gather Streams"), std::string::npos) << *parallel;
  // And it returns correct results.
  QueryResult r = Exec("SELECT k, COUNT(*) AS c FROM big GROUP BY k ORDER BY k");
  ASSERT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.rows[0][1].AsInt64(), 4000);
}

TEST_F(SqlTest, SubqueryInFrom) {
  Exec("CREATE TABLE t (a INT, b INT)");
  Exec("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)");
  QueryResult r = Exec(
      "SELECT total FROM (SELECT SUM(b) AS total FROM t) sub");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 60);
}

TEST_F(SqlTest, TopAndOrderBy) {
  Exec("CREATE TABLE t (a INT)");
  Exec("INSERT INTO t VALUES (5), (3), (9), (1), (7)");
  QueryResult r = Exec("SELECT TOP 2 a FROM t ORDER BY a DESC");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 9);
  EXPECT_EQ(r.rows[1][0].AsInt64(), 7);
}

TEST_F(SqlTest, OrderByHiddenExpression) {
  Exec("CREATE TABLE t (a INT, b INT)");
  Exec("INSERT INTO t VALUES (1, 30), (2, 10), (3, 20)");
  QueryResult r = Exec("SELECT a FROM t ORDER BY b");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.schema.num_columns(), 1);  // hidden sort column dropped
  EXPECT_EQ(r.rows[0][0].AsInt64(), 2);
  EXPECT_EQ(r.rows[2][0].AsInt64(), 1);
}

TEST_F(SqlTest, ScalarFunctions) {
  QueryResult r = Exec(
      "SELECT CHARINDEX('N', 'ACGNT'), LEN('ACGT  '), SUBSTRING('GATTACA', "
      "2, 3), UPPER('acgt'), REVERSE('ACGT')");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 4);
  EXPECT_EQ(r.rows[0][1].AsInt64(), 4);
  EXPECT_EQ(r.rows[0][2].AsString(), "ATT");
  EXPECT_EQ(r.rows[0][3].AsString(), "ACGT");
  EXPECT_EQ(r.rows[0][4].AsString(), "TGCA");
}

TEST_F(SqlTest, GenomicsScalars) {
  QueryResult r = Exec(
      "SELECT REVCOMP('ACGT'), UNPACK_DNA(PACK_DNA('ACGTN')), "
      "DNA_LENGTH(PACK_DNA('ACGTACGT'))");
  EXPECT_EQ(r.rows[0][0].AsString(), "ACGT");
  EXPECT_EQ(r.rows[0][1].AsString(), "ACGTN");
  EXPECT_EQ(r.rows[0][2].AsInt64(), 8);
}

TEST_F(SqlTest, CaseAndCastAndIn) {
  Exec("CREATE TABLE t (a INT)");
  Exec("INSERT INTO t VALUES (1), (2), (3), (4)");
  QueryResult r = Exec(
      "SELECT a, CASE WHEN a % 2 = 0 THEN 'even' ELSE 'odd' END, "
      "CAST(a AS VARCHAR) FROM t WHERE a IN (2, 3) ORDER BY a");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].AsString(), "even");
  EXPECT_EQ(r.rows[0][2].AsString(), "2");
  EXPECT_EQ(r.rows[1][1].AsString(), "odd");
}

TEST_F(SqlTest, LikePredicate) {
  Exec("CREATE TABLE seqs (s VARCHAR(20))");
  Exec("INSERT INTO seqs VALUES ('ACGT'), ('AANN'), ('TTTT'), (NULL)");
  QueryResult r =
      Exec("SELECT s FROM seqs WHERE s LIKE 'A%' ORDER BY s");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "AANN");
  r = Exec("SELECT s FROM seqs WHERE s NOT LIKE '%N%' ORDER BY s");
  ASSERT_EQ(r.rows.size(), 2u);  // NULL excluded by three-valued logic
  EXPECT_EQ(r.rows[0][0].AsString(), "ACGT");
  r = Exec("SELECT s FROM seqs WHERE s LIKE '_C__'");
  ASSERT_EQ(r.rows.size(), 1u);
}

TEST_F(SqlTest, BetweenPredicate) {
  Exec("CREATE TABLE nums (a INT)");
  Exec("INSERT INTO nums VALUES (1), (5), (10), (15)");
  QueryResult r = Exec("SELECT a FROM nums WHERE a BETWEEN 5 AND 10 ORDER BY a");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 5);
  EXPECT_EQ(r.rows[1][0].AsInt64(), 10);
  r = Exec("SELECT a FROM nums WHERE a NOT BETWEEN 5 AND 10 ORDER BY a");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[1][0].AsInt64(), 15);
}

TEST_F(SqlTest, SelectDistinct) {
  Exec("CREATE TABLE dup (a INT, b VARCHAR(5))");
  Exec("INSERT INTO dup VALUES (1,'x'), (1,'x'), (2,'y'), (1,'z')");
  QueryResult r = Exec("SELECT DISTINCT a, b FROM dup ORDER BY a, b");
  ASSERT_EQ(r.rows.size(), 3u);
  r = Exec("SELECT DISTINCT a FROM dup ORDER BY a");
  ASSERT_EQ(r.rows.size(), 2u);
}

TEST_F(SqlTest, CountDistinct) {
  Exec("CREATE TABLE obs (g INT, v INT)");
  Exec("INSERT INTO obs VALUES (1,10), (1,10), (1,20), (2,10), (2,10)");
  QueryResult r = Exec(
      "SELECT g, COUNT(*) AS n, COUNT(DISTINCT v) AS d FROM obs "
      "GROUP BY g ORDER BY g");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].AsInt64(), 3);
  EXPECT_EQ(r.rows[0][2].AsInt64(), 2);
  EXPECT_EQ(r.rows[1][1].AsInt64(), 2);
  EXPECT_EQ(r.rows[1][2].AsInt64(), 1);
}

TEST_F(SqlTest, CountDistinctParallelPlanCorrect) {
  // DISTINCT aggregates must stay correct through partial/final merge.
  Exec("CREATE TABLE big2 (k INT, v INT)");
  auto* table = *db_->GetTable("big2");
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(db_->InsertRow(table, Row{Value::Int32(i % 3),
                                          Value::Int32(i % 17)})
                    .ok());
  }
  QueryResult r = Exec(
      "SELECT k, COUNT(DISTINCT v) FROM big2 GROUP BY k ORDER BY k");
  ASSERT_EQ(r.rows.size(), 3u);
  for (const Row& row : r.rows) {
    EXPECT_EQ(row[1].AsInt64(), 17);
  }
}

TEST_F(SqlTest, IsNullPredicate) {
  Exec("CREATE TABLE t (a INT, b VARCHAR(5))");
  Exec("INSERT INTO t VALUES (1, 'x'), (2, NULL)");
  QueryResult r = Exec("SELECT a FROM t WHERE b IS NULL");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 2);
  r = Exec("SELECT a FROM t WHERE b IS NOT NULL");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 1);
}

TEST_F(SqlTest, FileStreamImportAndWrapperTvf) {
  // The paper's §3.3 flow end to end: CREATE TABLE with FILESTREAM,
  // OPENROWSET bulk import, metadata query, then the wrapper TVF.
  const std::string fastq = "/tmp/htg_sql_855_s_1.fastq";
  FILE* f = fopen(fastq.c_str(), "wb");
  fputs(
      "@IL4_855:1:1:954:659\n"
      "GTTTTTATGGTTTTAGATCTTAAGTCTTTAATCCAA\n"
      "+\n"
      ">>>>>>>>>>>>>>>6>>>>>>>;>>>>>>;>>;>;\n"
      "@IL4_855:1:1:497:759\n"
      "ACGTACGTACGTACGTACGTACGTACGTACGTACGT\n"
      "+\n"
      "IIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIII\n",
      f);
  fclose(f);

  Exec("CREATE TABLE ShortReadFiles ("
       " guid UNIQUEIDENTIFIER ROWGUIDCOL PRIMARY KEY,"
       " sample INT, lane INT,"
       " reads VARBINARY(MAX) FILESTREAM"
       ") FILESTREAM_ON FileStreamGroup");
  Exec("INSERT INTO ShortReadFiles (guid, sample, lane, reads) "
       "SELECT NEWID(), 855, 1, * "
       "FROM OPENROWSET(BULK '" + fastq + "', SINGLE_BLOB)");

  // Metadata: DATALENGTH resolves the external file size; PATHNAME points
  // into the FileStream store.
  QueryResult meta = Exec(
      "SELECT guid, sample, lane, PATHNAME(reads), DATALENGTH(reads) "
      "FROM ShortReadFiles");
  ASSERT_EQ(meta.rows.size(), 1u);
  EXPECT_EQ(meta.rows[0][1].AsInt64(), 855);
  EXPECT_GT(meta.rows[0][4].AsInt64(), 100);
  EXPECT_NE(meta.rows[0][3].AsString().find(db_->filestream()->root()),
            std::string::npos);

  // The wrapper TVF streams the records back out of the BLOB.
  QueryResult rows = Exec("SELECT * FROM ListShortReads(855, 1, 'FastQ')");
  ASSERT_EQ(rows.rows.size(), 2u);
  EXPECT_EQ(rows.rows[0][0].AsString(), "IL4_855:1:1:954:659");
  EXPECT_EQ(rows.rows[0][1].AsString(),
            "GTTTTTATGGTTTTAGATCTTAAGTCTTTAATCCAA");

  // And composes with relational operators.
  QueryResult counted = Exec(
      "SELECT COUNT(*) FROM ListShortReads(855, 1, 'FastQ') "
      "WHERE CHARINDEX('N', short_read_seq) = 0");
  EXPECT_EQ(counted.rows[0][0].AsInt64(), 2);
}

TEST_F(SqlTest, CrossApplyPivotAlignment) {
  Exec("CREATE TABLE aligned (pos BIGINT, seq VARCHAR(10), quals "
       "VARCHAR(10))");
  Exec("INSERT INTO aligned VALUES (100, 'ACG', 'III'), (101, 'CGT', 'III')");
  QueryResult r = Exec(
      "SELECT pa.pos AS ref_pos, base, qual FROM aligned "
      "CROSS APPLY PivotAlignment(aligned.pos, seq, quals) AS pa "
      "ORDER BY ref_pos, base");
  // 3 bases per read at overlapping reference positions 100..103.
  ASSERT_EQ(r.rows.size(), 6u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 100);
  EXPECT_EQ(r.rows[0][1].AsString(), "A");
  EXPECT_EQ(r.rows[5][0].AsInt64(), 103);
  EXPECT_EQ(r.rows[5][1].AsString(), "T");
  // Unqualified `pos` is ambiguous between the table and the TVF output.
  ExecError(
      "SELECT pos FROM aligned "
      "CROSS APPLY PivotAlignment(aligned.pos, seq, quals) AS pa");
}

TEST_F(SqlTest, ConsensusViaSqlAggregates) {
  // Query 3's inner shape over a toy alignment set.
  Exec("CREATE TABLE aligned (chromosome INT, pos BIGINT, seq VARCHAR(10), "
       "quals VARCHAR(10))");
  // Two overlapping reads on chromosome 1: consensus ACGT A.
  Exec("INSERT INTO aligned VALUES (1, 0, 'ACGT', 'IIII'), "
       "(1, 2, 'GTA', 'III')");
  QueryResult r = Exec(
      "SELECT chromosome, AssembleConsensus(pos, seq, quals) AS consensus "
      "FROM aligned GROUP BY chromosome");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][1].AsString(), "ACGTA");
}

TEST_F(SqlTest, ExplainShowsParallelBinningPlan) {
  Exec("CREATE TABLE ReadT (r_e_id INT, short_read_seq VARCHAR(40))");
  auto* table = *db_->GetTable("ReadT");
  for (int i = 0; i < 15000; ++i) {
    ASSERT_TRUE(
        db_->InsertRow(table, Row{Value::Int32(1),
                                  Value::String("ACGT" +
                                                std::to_string(i % 100))})
            .ok());
  }
  Result<std::string> plan = engine_->Explain(
      "SELECT ROW_NUMBER() OVER (ORDER BY COUNT(*) DESC), COUNT(*), "
      "short_read_seq FROM ReadT WHERE CHARINDEX('N', short_read_seq) = 0 "
      "GROUP BY short_read_seq");
  ASSERT_TRUE(plan.ok());
  // The Fig. 9 shape: sequence project over sort over gather over
  // partitioned partial aggregation with per-partition filters.
  EXPECT_NE(plan->find("Sequence Project"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("Gather Streams"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("Filter"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("Table Scan [ReadT] pages"), std::string::npos)
      << *plan;
}

TEST_F(SqlTest, ParallelCrossApplyPipelineMatchesSerial) {
  // A non-aggregate CROSS APPLY pipeline over a big heap parallelizes as
  // an exchange; the order-preserving gather keeps output byte-identical
  // to the serial plan.
  Exec("CREATE TABLE aligned (pos BIGINT, seq VARCHAR(10), quals "
       "VARCHAR(10))");
  auto* table = *db_->GetTable("aligned");
  for (int i = 0; i < 12000; ++i) {
    ASSERT_TRUE(db_->InsertRow(table, Row{Value::Int64(i * 2),
                                          Value::String("ACG"),
                                          Value::String("III")})
                    .ok());
  }
  const std::string query =
      "SELECT pa.pos AS ref_pos, base, qual FROM aligned "
      "CROSS APPLY PivotAlignment(aligned.pos, seq, quals) AS pa";

  db_->set_max_dop(1);
  Result<std::string> serial_plan = engine_->Explain(query);
  ASSERT_TRUE(serial_plan.ok());
  EXPECT_EQ(serial_plan->find("Gather Streams"), std::string::npos)
      << *serial_plan;
  QueryResult serial = Exec(query);

  db_->set_max_dop(4);
  Result<std::string> plan = engine_->Explain(query);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("Gather Streams"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("Distribute Streams"), std::string::npos) << *plan;
  QueryResult parallel = Exec(query);

  ASSERT_EQ(serial.rows.size(), 12000u * 3);
  ASSERT_EQ(parallel.rows.size(), serial.rows.size());
  for (size_t i = 0; i < serial.rows.size(); ++i) {
    for (size_t c = 0; c < serial.rows[i].size(); ++c) {
      ASSERT_EQ(serial.rows[i][c].Compare(parallel.rows[i][c]), 0)
          << "row " << i;
    }
  }
}

TEST_F(SqlTest, ConcurrentParallelQueriesShareDefaultPool) {
  // Two threads running the parallel-aggregate Query 1 shape concurrently
  // share ThreadPool::Default(); both must complete with correct results.
  Exec("CREATE TABLE ReadT (r_e_id INT, short_read_seq VARCHAR(40))");
  auto* table = *db_->GetTable("ReadT");
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(db_->InsertRow(
                    table, Row{Value::Int32(1),
                               Value::String("ACGT" + std::to_string(i % 5))})
                    .ok());
  }
  const std::string query =
      "SELECT COUNT(*) AS freq, short_read_seq FROM ReadT "
      "WHERE CHARINDEX('N', short_read_seq) = 0 "
      "GROUP BY short_read_seq ORDER BY short_read_seq";
  // The plan must actually be parallel for this to exercise contention.
  Result<std::string> plan = engine_->Explain(query);
  ASSERT_TRUE(plan.ok());
  ASSERT_NE(plan->find("Gather Streams"), std::string::npos) << *plan;

  constexpr int kRunsPerThread = 4;
  std::atomic<int> failures{0};
  auto run = [&] {
    for (int r = 0; r < kRunsPerThread; ++r) {
      Result<QueryResult> result = engine_->Execute(query);
      if (!result.ok() || result->rows.size() != 5) {
        failures.fetch_add(1);
        continue;
      }
      for (const Row& row : result->rows) {
        if (row[0].AsInt64() != 4000) failures.fetch_add(1);
      }
    }
  };
  std::thread a(run);
  std::thread b(run);
  a.join();
  b.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(SqlTest, ErrorsAreReported) {
  ExecError("SELECT FROM");
  ExecError("SELECT unknown_col FROM nowhere");
  Exec("CREATE TABLE t (a INT)");
  ExecError("SELECT b FROM t");
  ExecError("INSERT INTO t VALUES (1, 2)");  // too many values
  ExecError("SELECT a, COUNT(*) FROM t");    // a not grouped
  ExecError("CREATE TABLE t (a INT)");       // duplicate
}

TEST_F(SqlTest, TruncateAndDrop) {
  Exec("CREATE TABLE t (a INT)");
  Exec("INSERT INTO t VALUES (1), (2)");
  Exec("TRUNCATE TABLE t");
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t").rows[0][0].AsInt64(), 0);
  Exec("DROP TABLE t");
  ExecError("SELECT * FROM t");
}

TEST_F(SqlTest, CompressionSyntaxAccepted) {
  Exec("CREATE TABLE T1 (c1 INT, c2 NVARCHAR(50)) "
       "WITH (DATA_COMPRESSION = ROW)");
  Exec("CREATE TABLE T2 (c1 INT, c2 NVARCHAR(50)) "
       "WITH (DATA_COMPRESSION = PAGE)");
  auto* t1 = *db_->GetTable("T1");
  auto* t2 = *db_->GetTable("T2");
  EXPECT_EQ(t1->compression, storage::Compression::kRow);
  EXPECT_EQ(t2->compression, storage::Compression::kPage);
}

TEST_F(SqlTest, ParserHandlesComments) {
  QueryResult r = Exec("SELECT 1 -- trailing comment\n + 1 /* inline */");
  EXPECT_EQ(r.rows[0][0].AsInt64(), 2);
}

TEST_F(SqlTest, MultiStatementScript) {
  QueryResult r = Exec(
      "CREATE TABLE t (a INT); INSERT INTO t VALUES (5); SELECT a FROM t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 5);
}

}  // namespace
}  // namespace htg::sql
