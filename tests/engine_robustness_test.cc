// Robustness of the engine surface: transactional undo of failed bulk
// inserts, FILESTREAM cleanup on rollback, NOT NULL enforcement, UTF-16
// storage round trips, and binder edge cases.

#include <gtest/gtest.h>

#include <filesystem>

#include "genomics/register.h"
#include "sql/engine.h"

namespace htg::sql {
namespace {

class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    DatabaseOptions options;
    options.filestream_root =
        "/tmp/htg_robust_test_" + std::to_string(counter++);
    auto db = Database::Open("robust", options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    ASSERT_TRUE(db_->filestream()->Clear().ok());
    ASSERT_TRUE(genomics::RegisterGenomicsExtensions(db_.get()).ok());
    engine_ = std::make_unique<SqlEngine>(db_.get());
  }

  QueryResult Exec(const std::string& sql) {
    Result<QueryResult> result = engine_->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << "\n--> " << result.status().ToString();
    return result.ok() ? std::move(*result) : QueryResult{};
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<SqlEngine> engine_;
};

TEST_F(RobustnessTest, FailedInsertSelectRollsBackHeapRows) {
  Exec("CREATE TABLE src (a INT, b VARCHAR(10))");
  Exec("INSERT INTO src VALUES (1, 'x'), (2, NULL), (3, 'z')");
  Exec("CREATE TABLE dst (a INT, b VARCHAR(10) NOT NULL)");
  Exec("INSERT INTO dst VALUES (100, 'pre')");
  // The NULL in row 2 violates dst's NOT NULL mid-stream: the whole
  // statement must roll back, leaving only the pre-existing row.
  Result<QueryResult> failed =
      engine_->Execute("INSERT INTO dst SELECT a, b FROM src");
  ASSERT_FALSE(failed.ok());
  QueryResult after = Exec("SELECT COUNT(*), MIN(a) FROM dst");
  EXPECT_EQ(after.rows[0][0].AsInt64(), 1);
  EXPECT_EQ(after.rows[0][1].AsInt64(), 100);
}

TEST_F(RobustnessTest, FailedInsertRollsBackFilestreamBlobs) {
  Exec("CREATE TABLE files (id INT NOT NULL, data VARBINARY(MAX) FILESTREAM)");
  const uint64_t before = db_->filestream()->TotalBytes();
  // Row 1 creates a blob; row 2 fails (NULL into NOT NULL id): the blob
  // from row 1 must be deleted again.
  Result<QueryResult> failed = engine_->Execute(
      "INSERT INTO files VALUES (1, 'blob-bytes'), (NULL, 'more')");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(db_->filestream()->TotalBytes(), before);
  QueryResult count = Exec("SELECT COUNT(*) FROM files");
  EXPECT_EQ(count.rows[0][0].AsInt64(), 0);
}

TEST_F(RobustnessTest, SuccessfulFilestreamInsertKeepsBlob) {
  Exec("CREATE TABLE files (id INT, data VARBINARY(MAX) FILESTREAM)");
  Exec("INSERT INTO files VALUES (1, 'blob-bytes')");
  EXPECT_EQ(db_->filestream()->TotalBytes(), 10u);
  QueryResult r = Exec("SELECT DATALENGTH(data) FROM files");
  EXPECT_EQ(r.rows[0][0].AsInt64(), 10);
}

TEST_F(RobustnessTest, Utf16ColumnsRoundTripThroughStorage) {
  Exec("CREATE TABLE n (a NVARCHAR(50), b NCHAR(4))");
  Exec("INSERT INTO n VALUES ('hello', 'AC'), (NULL, NULL)");
  QueryResult r = Exec("SELECT a, b FROM n");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "hello");
  EXPECT_EQ(r.rows[0][1].AsString(), "AC  ");  // NCHAR blank padding
  EXPECT_TRUE(r.rows[1][0].is_null());
  // UTF-16 columns really cost 2 bytes per char in storage.
  auto* table = *db_->GetTable("n");
  Exec("TRUNCATE TABLE n");
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db_->InsertRow(table, Row{Value::String(std::string(20, 'x')),
                                          Value::String("ABCD")})
                    .ok());
  }
  const uint64_t utf16_bytes = table->table->Stats().data_bytes;
  Exec("CREATE TABLE v (a VARCHAR(50), b CHAR(4))");
  auto* narrow = *db_->GetTable("v");
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db_->InsertRow(narrow, Row{Value::String(std::string(20, 'x')),
                                           Value::String("ABCD")})
                    .ok());
  }
  const uint64_t narrow_bytes = narrow->table->Stats().data_bytes;
  EXPECT_GT(utf16_bytes, narrow_bytes * 17 / 10);
}

TEST_F(RobustnessTest, NotNullEnforcedOnDirectInsert) {
  Exec("CREATE TABLE t (a INT NOT NULL)");
  Result<QueryResult> failed =
      engine_->Execute("INSERT INTO t VALUES (NULL)");
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t").rows[0][0].AsInt64(), 0);
}

TEST_F(RobustnessTest, PrimaryKeyColumnsClusterTheTable) {
  Exec("CREATE TABLE pk (a INT, b INT, PRIMARY KEY (b, a))");
  auto* table = *db_->GetTable("pk");
  ASSERT_EQ(table->clustered_key.size(), 2u);
  EXPECT_EQ(table->clustered_key[0], 1);  // b first
  EXPECT_EQ(table->clustered_key[1], 0);
  Exec("INSERT INTO pk VALUES (1, 9), (2, 3), (3, 3)");
  QueryResult r = Exec("SELECT a, b FROM pk");  // clustered scan order
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][1].AsInt64(), 3);
  EXPECT_EQ(r.rows[2][1].AsInt64(), 9);
}

TEST_F(RobustnessTest, DistinctWithHiddenOrderByRejected) {
  Exec("CREATE TABLE t (a INT, b INT)");
  Result<QueryResult> failed =
      engine_->Execute("SELECT DISTINCT a FROM t ORDER BY b");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kBindError);
}

TEST_F(RobustnessTest, DeeplyNestedExpressionsEvaluate) {
  std::string expr = "1";
  for (int i = 0; i < 200; ++i) expr = "(" + expr + " + 1)";
  QueryResult r = Exec("SELECT " + expr);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 201);
}

TEST_F(RobustnessTest, WideRowsSurviveStorage) {
  // A row wider than one page must still store and scan (pages hold at
  // least one row each).
  Exec("CREATE TABLE wide (a VARCHAR(100000)) WITH (DATA_COMPRESSION = ROW)");
  auto* table = *db_->GetTable("wide");
  const std::string big(50000, 'G');
  ASSERT_TRUE(db_->InsertRow(table, Row{Value::String(big)}).ok());
  ASSERT_TRUE(db_->InsertRow(table, Row{Value::String("tiny")}).ok());
  QueryResult r = Exec("SELECT LEN(a) FROM wide ORDER BY 1 DESC");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 50000);
}

TEST_F(RobustnessTest, AggregateOverEmptyGroupByYieldsNoRows) {
  Exec("CREATE TABLE t (k INT, v INT)");
  QueryResult r = Exec("SELECT k, SUM(v) FROM t GROUP BY k");
  EXPECT_TRUE(r.rows.empty());
}

TEST_F(RobustnessTest, SelfJoinWithAliases) {
  Exec("CREATE TABLE e (id INT, boss INT)");
  Exec("INSERT INTO e VALUES (1, NULL), (2, 1), (3, 1), (4, 2)");
  QueryResult r = Exec(
      "SELECT a.id, b.id FROM e a JOIN e b ON a.boss = b.id ORDER BY a.id");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 2);
  EXPECT_EQ(r.rows[0][1].AsInt64(), 1);
  EXPECT_EQ(r.rows[2][0].AsInt64(), 4);
  EXPECT_EQ(r.rows[2][1].AsInt64(), 2);
}

TEST_F(RobustnessTest, TvfInsideSubquery) {
  QueryResult r = Exec(
      "SELECT total FROM (SELECT COUNT(*) AS total FROM "
      "PivotAlignment(5, 'ACGT', 'IIII')) t");
  EXPECT_EQ(r.rows[0][0].AsInt64(), 4);
}

TEST_F(RobustnessTest, QueryResultToStringRendersTable) {
  Exec("CREATE TABLE t (a INT, b VARCHAR(10))");
  Exec("INSERT INTO t VALUES (1, 'x')");
  QueryResult r = Exec("SELECT a, b FROM t");
  const std::string text = r.ToString();
  EXPECT_NE(text.find("a"), std::string::npos);
  EXPECT_NE(text.find("x"), std::string::npos);
  EXPECT_NE(text.find('-'), std::string::npos);  // header rule
}

TEST_F(RobustnessTest, ErrorMessagesNameTheProblem) {
  Exec("CREATE TABLE t (a INT)");
  Result<QueryResult> r = engine_->Execute("SELECT nope FROM t");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("nope"), std::string::npos);
  r = engine_->Execute("SELECT FROBNICATE(a) FROM t");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("FROBNICATE"), std::string::npos);
}

}  // namespace
}  // namespace htg::sql
