// Randomized property tests over the storage and parsing invariants the
// rest of the system leans on: codecs must round-trip arbitrary rows at
// every compression level, pages must return exactly the rows that went
// in, the B+-tree must agree with std::multimap, chunk parsers must be
// insensitive to buffer split points, and LIKE must agree with a
// reference matcher.

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "exec/expression.h"
#include "genomics/dna_sequence.h"
#include "genomics/formats.h"
#include "genomics/nucleotide.h"
#include "storage/bplus_tree.h"
#include "storage/heap_table.h"
#include "storage/page.h"
#include "storage/row_codec.h"

namespace htg {
namespace {

using storage::Compression;

// Random schema of 1..8 columns over all types, with occasional CHAR(n)
// and UTF-16 columns.
Schema RandomSchema(Random* rng) {
  Schema schema;
  const int ncols = 1 + static_cast<int>(rng->Uniform(8));
  for (int i = 0; i < ncols; ++i) {
    Column col;
    col.name = "c" + std::to_string(i);
    switch (rng->Uniform(6)) {
      case 0:
        col.type = DataType::kBool;
        break;
      case 1:
        col.type = DataType::kInt32;
        break;
      case 2:
        col.type = DataType::kInt64;
        break;
      case 3:
        col.type = DataType::kDouble;
        break;
      case 4:
        col.type = DataType::kString;
        if (rng->Bernoulli(0.3)) {
          col.fixed_length = 1 + static_cast<int>(rng->Uniform(20));
        }
        if (rng->Bernoulli(0.3)) col.utf16 = true;
        break;
      default:
        col.type = DataType::kBlob;
        break;
    }
    schema.AddColumn(std::move(col));
  }
  return schema;
}

std::string RandomAscii(Random* rng, size_t max_len) {
  std::string s;
  const size_t len = rng->Uniform(max_len + 1);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(' ' + rng->Uniform(95)));
  }
  return s;
}

Value RandomValue(Random* rng, const Column& col) {
  if (rng->Bernoulli(0.15)) return Value::Null();
  switch (col.type) {
    case DataType::kBool:
      return Value::Bool(rng->Bernoulli(0.5));
    case DataType::kInt32:
      return Value::Int32(static_cast<int32_t>(rng->Next()));
    case DataType::kInt64:
      return Value::Int64(static_cast<int64_t>(rng->Next()));
    case DataType::kDouble:
      return Value::Double(rng->NextDouble() * 1e6 - 5e5);
    case DataType::kString: {
      if (col.fixed_length > 0) {
        // Stay within the declared width; avoid trailing blanks which
        // CHAR(n) round-trips as padding by design.
        std::string s = RandomAscii(rng, col.fixed_length);
        while (!s.empty() && s.back() == ' ') s.pop_back();
        return Value::String(std::move(s));
      }
      return Value::String(RandomAscii(rng, 60));
    }
    case DataType::kBlob: {
      std::string s;
      const size_t len = rng->Uniform(40);
      for (size_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng->Uniform(256)));
      }
      return Value::Blob(std::move(s));
    }
    case DataType::kGuid:
      return Value::Guid("0b9e612c-8e6a-4f7a-9d26-00124a39b19c");
  }
  return Value::Null();
}

// CHAR(n) decodes blank-padded under NONE; normalize for comparison.
std::string ExpectedString(const Column& col, const Value& v,
                           Compression mode) {
  std::string s = v.AsString();
  if (col.type == DataType::kString && col.fixed_length > 0) {
    if (mode == Compression::kNone) {
      s = s.substr(0, col.fixed_length);
      s.resize(col.fixed_length, ' ');
    } else {
      if (s.size() > static_cast<size_t>(col.fixed_length)) {
        s = s.substr(0, col.fixed_length);
      }
      while (!s.empty() && s.back() == ' ') s.pop_back();
    }
  }
  return s;
}

void ExpectRowsEqual(const Schema& schema, const Row& expected,
                     const Row& actual, Compression mode, uint64_t seed) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    const Column& col = schema.column(static_cast<int>(i));
    if (expected[i].is_null()) {
      EXPECT_TRUE(actual[i].is_null()) << "seed=" << seed << " col=" << i;
      continue;
    }
    ASSERT_FALSE(actual[i].is_null()) << "seed=" << seed << " col=" << i;
    if (col.type == DataType::kString || col.type == DataType::kBlob) {
      EXPECT_EQ(actual[i].AsString(), ExpectedString(col, expected[i], mode))
          << "seed=" << seed << " col=" << i;
    } else if (col.type == DataType::kDouble) {
      EXPECT_EQ(actual[i].AsDouble(), expected[i].AsDouble())
          << "seed=" << seed;
    } else {
      EXPECT_EQ(actual[i].AsInt64(), expected[i].AsInt64())
          << "seed=" << seed;
    }
  }
}

class CodecProperty : public ::testing::TestWithParam<Compression> {};

TEST_P(CodecProperty, RandomRowsRoundTrip) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Random rng(seed);
    const Schema schema = RandomSchema(&rng);
    Row row;
    for (const Column& col : schema.columns()) {
      row.push_back(RandomValue(&rng, col));
    }
    std::string encoded;
    ASSERT_TRUE(storage::EncodeRow(schema, row, GetParam(), &encoded).ok());
    Row decoded;
    ASSERT_TRUE(
        storage::DecodeRow(schema, GetParam(), Slice(encoded), &decoded).ok())
        << "seed=" << seed;
    ExpectRowsEqual(schema, row, decoded, GetParam(), seed);
  }
}

TEST_P(CodecProperty, RandomPagesRoundTrip) {
  for (uint64_t seed = 100; seed <= 115; ++seed) {
    Random rng(seed);
    const Schema schema = RandomSchema(&rng);
    const int nrows = 1 + static_cast<int>(rng.Uniform(120));
    std::vector<Row> rows;
    storage::PageBuilder builder(&schema, GetParam());
    for (int i = 0; i < nrows; ++i) {
      Row row;
      for (const Column& col : schema.columns()) {
        row.push_back(RandomValue(&rng, col));
      }
      ASSERT_TRUE(builder.Add(row).ok());
      rows.push_back(std::move(row));
    }
    const std::string page = builder.Finish();
    storage::PageReader reader(&schema, Slice(page));
    ASSERT_TRUE(reader.Init().ok()) << "seed=" << seed;
    ASSERT_EQ(reader.row_count(), nrows);
    Row decoded;
    for (int i = 0; i < nrows; ++i) {
      ASSERT_TRUE(reader.Next(&decoded)) << "seed=" << seed << " row=" << i;
      ExpectRowsEqual(schema, rows[i], decoded, GetParam(), seed);
    }
    EXPECT_FALSE(reader.Next(&decoded));
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, CodecProperty,
                         ::testing::Values(Compression::kNone,
                                           Compression::kRow,
                                           Compression::kPage));

TEST(BPlusTreeProperty, AgreesWithMultimapUnderRandomWorkload) {
  for (uint64_t seed = 200; seed <= 205; ++seed) {
    Random rng(seed);
    storage::BPlusTree tree(4 + static_cast<int>(rng.Uniform(60)));
    std::multimap<std::pair<int64_t, int64_t>, std::string> expected;
    const int n = 500 + static_cast<int>(rng.Uniform(2000));
    for (int i = 0; i < n; ++i) {
      const int64_t k1 = static_cast<int64_t>(rng.Uniform(50));
      const int64_t k2 = static_cast<int64_t>(rng.Uniform(200));
      const std::string payload = std::to_string(i);
      tree.Insert(Row{Value::Int64(k1), Value::Int64(k2)}, payload);
      expected.emplace(std::make_pair(k1, k2), payload);
    }
    ASSERT_EQ(tree.size(), expected.size());
    // Full ordered scan agrees on keys.
    auto cursor = tree.First();
    auto it = expected.begin();
    while (cursor.Valid()) {
      ASSERT_NE(it, expected.end()) << "seed=" << seed;
      EXPECT_EQ(cursor.key()[0].AsInt64(), it->first.first);
      EXPECT_EQ(cursor.key()[1].AsInt64(), it->first.second);
      cursor.Advance();
      ++it;
    }
    EXPECT_EQ(it, expected.end());
    // Random prefix seeks agree with lower_bound.
    for (int probe = 0; probe < 50; ++probe) {
      const int64_t k1 = static_cast<int64_t>(rng.Uniform(55));
      auto c = tree.Seek(Row{Value::Int64(k1)});
      auto lb = expected.lower_bound({k1, INT64_MIN});
      if (lb == expected.end()) {
        EXPECT_FALSE(c.Valid()) << "seed=" << seed << " k1=" << k1;
      } else {
        ASSERT_TRUE(c.Valid()) << "seed=" << seed << " k1=" << k1;
        EXPECT_EQ(c.key()[0].AsInt64(), lb->first.first);
        EXPECT_EQ(c.key()[1].AsInt64(), lb->first.second);
      }
    }
  }
}

TEST(FastqChunkProperty, SplitPointInsensitive) {
  // Parse a multi-record buffer through every possible split point with a
  // two-phase "partial then full" feed: results must always match.
  std::vector<genomics::ShortRead> reads;
  Random rng(300);
  for (int i = 0; i < 6; ++i) {
    std::string seq;
    std::string qual;
    const int len = 5 + static_cast<int>(rng.Uniform(30));
    for (int b = 0; b < len; ++b) {
      seq.push_back("ACGTN"[rng.Uniform(5)]);
      qual.push_back(static_cast<char>('!' + rng.Uniform(60)));
    }
    reads.push_back({"r" + std::to_string(i), seq, qual});
  }
  std::string data;
  for (const auto& r : reads) {
    data += "@" + r.name + "\n" + r.sequence + "\n+\n" + r.quality + "\n";
  }
  for (size_t split = 1; split < data.size(); ++split) {
    genomics::FastqChunkParser parser;
    std::vector<genomics::ShortRead> parsed;
    genomics::ShortRead record;
    // Phase 1: only the first `split` bytes are available.
    size_t pos = 0;
    while (parser.ParseRecord(data.data(), split, &pos, &record)) {
      parsed.push_back(record);
    }
    ASSERT_TRUE(parser.status().ok()) << "split=" << split;
    // Phase 2: the full buffer arrives (the pager keeps `pos`).
    while (parser.ParseRecord(data.data(), data.size(), &pos, &record)) {
      parsed.push_back(record);
    }
    ASSERT_TRUE(parser.status().ok()) << "split=" << split;
    ASSERT_EQ(parsed.size(), reads.size()) << "split=" << split;
    for (size_t i = 0; i < reads.size(); ++i) {
      EXPECT_EQ(parsed[i].name, reads[i].name) << "split=" << split;
      EXPECT_EQ(parsed[i].sequence, reads[i].sequence) << "split=" << split;
      EXPECT_EQ(parsed[i].quality, reads[i].quality) << "split=" << split;
    }
  }
}

TEST(DnaSequenceProperty, RandomSequencesRoundTrip) {
  Random rng(400);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const size_t len = rng.Uniform(300);
    for (size_t i = 0; i < len; ++i) {
      text.push_back("ACGTN"[rng.Uniform(rng.Bernoulli(0.1) ? 5 : 4)]);
    }
    genomics::DnaSequence seq = genomics::DnaSequence::FromText(text);
    EXPECT_EQ(seq.ToText(), text) << "trial=" << trial;
    Result<genomics::DnaSequence> decoded =
        genomics::DnaSequence::FromBlob(seq.ToBlob());
    ASSERT_TRUE(decoded.ok()) << "trial=" << trial;
    EXPECT_TRUE(*decoded == seq) << "trial=" << trial;
  }
}

// Reference implementation of SQL LIKE via recursive matching.
bool ReferenceLike(std::string_view text, std::string_view pattern) {
  if (pattern.empty()) return text.empty();
  if (pattern[0] == '%') {
    for (size_t skip = 0; skip <= text.size(); ++skip) {
      if (ReferenceLike(text.substr(skip), pattern.substr(1))) return true;
    }
    return false;
  }
  if (text.empty()) return false;
  if (pattern[0] != '_' && pattern[0] != text[0]) return false;
  return ReferenceLike(text.substr(1), pattern.substr(1));
}

TEST(LikeProperty, AgreesWithReferenceMatcher) {
  Random rng(500);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string text;
    std::string pattern;
    const size_t tlen = rng.Uniform(8);
    for (size_t i = 0; i < tlen; ++i) text.push_back("AB"[rng.Uniform(2)]);
    const size_t plen = rng.Uniform(8);
    for (size_t i = 0; i < plen; ++i) {
      pattern.push_back("AB%_"[rng.Uniform(4)]);
    }
    EXPECT_EQ(exec::LikeExpr::Match(text, pattern),
              ReferenceLike(text, pattern))
        << "text=" << text << " pattern=" << pattern;
  }
}

TEST(HeapTableProperty, ScanReturnsInsertionOrderAtAnyPageSize) {
  for (size_t page_size : {256u, 1024u, 8192u}) {
    Random rng(600);
    Schema schema;
    schema.AddColumn({.name = "i", .type = DataType::kInt64});
    schema.AddColumn({.name = "s", .type = DataType::kString});
    storage::HeapTable table(schema, Compression::kRow, page_size);
    const int n = 777;
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(
          table.Insert(Row{Value::Int64(i),
                           Value::String(RandomAscii(&rng, 30))})
              .ok());
    }
    auto iter = table.NewScan();
    Row row;
    int i = 0;
    while (iter->Next(&row)) {
      EXPECT_EQ(row[0].AsInt64(), i) << "page_size=" << page_size;
      ++i;
    }
    EXPECT_EQ(i, n);
  }
}

}  // namespace
}  // namespace htg
