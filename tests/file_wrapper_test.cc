#include <gtest/gtest.h>

#include "catalog/database.h"
#include "genomics/file_wrapper.h"
#include "genomics/register.h"
#include "genomics/simulator.h"
#include "sql/engine.h"

namespace htg::genomics {
namespace {

class FileWrapperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    DatabaseOptions options;
    options.filestream_root =
        "/tmp/htg_fwrap_test_" + std::to_string(counter++);
    auto db = Database::Open("fwrap", options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    ASSERT_TRUE(db_->filestream()->Clear().ok());
    ASSERT_TRUE(RegisterGenomicsExtensions(db_.get()).ok());

    ReferenceGenome ref = ReferenceGenome::Random(20000, 2, 81);
    SimulatorOptions sim_options;
    sim_options.seed = 82;
    ReadSimulator sim(&ref, sim_options);
    reads_ = sim.SimulateResequencing(500);
  }

  std::string WriteBlob(const std::string& content) {
    auto path = db_->filestream()->CreateBlob("test.dat", content);
    EXPECT_TRUE(path.ok());
    return *path;
  }

  std::unique_ptr<Database> db_;
  std::vector<ShortRead> reads_;
};

// The central Fig. 5 property: the chunk pager must produce identical
// records regardless of the chunk size — including chunk sizes that split
// every record across buffer refills.
class ChunkSizeSweep : public FileWrapperTest,
                       public ::testing::WithParamInterface<size_t> {};

TEST_P(ChunkSizeSweep, FastqRecordsIdenticalAcrossChunkSizes) {
  const std::string fastq = "/tmp/htg_fwrap_sweep.fastq";
  ASSERT_TRUE(WriteFastqFile(fastq, reads_).ok());
  const std::string blob =
      *db_->filestream()->ImportFile(fastq, "sweep.fastq");
  auto stream = db_->filestream()->OpenStream(blob);
  ASSERT_TRUE(stream.ok());
  ShortReadStreamIterator iter(std::move(*stream), ShortReadFormat::kFastq,
                               GetParam());
  Row row;
  size_t i = 0;
  while (iter.Next(&row)) {
    ASSERT_LT(i, reads_.size());
    EXPECT_EQ(row[0].AsString(), reads_[i].name) << "chunk=" << GetParam();
    EXPECT_EQ(row[1].AsString(), reads_[i].sequence);
    EXPECT_EQ(row[2].AsString(), reads_[i].quality);
    ++i;
  }
  EXPECT_TRUE(iter.status().ok()) << iter.status().ToString();
  EXPECT_EQ(i, reads_.size());
}

INSTANTIATE_TEST_SUITE_P(Paging, ChunkSizeSweep,
                         ::testing::Values(4096, 4097, 8192, 65536, 1 << 20));

TEST_F(FileWrapperTest, FastaStreamingMatchesWholeFileParse) {
  const std::string fasta = "/tmp/htg_fwrap_stream.fasta";
  ASSERT_TRUE(WriteFastaFile(fasta, reads_, 30).ok());
  const std::string blob = *db_->filestream()->ImportFile(fasta, "s.fasta");
  auto stream = db_->filestream()->OpenStream(blob);
  ASSERT_TRUE(stream.ok());
  ShortReadStreamIterator iter(std::move(*stream), ShortReadFormat::kFasta,
                               4096);
  Row row;
  size_t i = 0;
  while (iter.Next(&row)) {
    EXPECT_EQ(row[1].AsString(), reads_[i].sequence);
    ++i;
  }
  EXPECT_EQ(i, reads_.size());
}

TEST_F(FileWrapperTest, SchemaDependsOnFormat) {
  EXPECT_EQ(ShortReadSchema(ShortReadFormat::kFastq).num_columns(), 3);
  EXPECT_EQ(ShortReadSchema(ShortReadFormat::kFasta).num_columns(), 2);
  ListShortReadsTvf tvf;
  Schema fq = *tvf.BindSchema(
      {Value::Int32(1), Value::Int32(1), Value::String("FastQ")});
  EXPECT_EQ(fq.num_columns(), 3);
  Schema fa = *tvf.BindSchema(
      {Value::Int32(1), Value::Int32(1), Value::String("Fasta")});
  EXPECT_EQ(fa.num_columns(), 2);
  EXPECT_FALSE(
      tvf.BindSchema({Value::Int32(1), Value::Int32(1), Value::String("HDF5")})
          .ok());
}

TEST_F(FileWrapperTest, ListShortReadsErrorsWithoutTable) {
  ListShortReadsTvf tvf;
  auto iter = tvf.Open({Value::Int32(855), Value::Int32(1)}, db_.get());
  EXPECT_FALSE(iter.ok());  // no ShortReadFiles table yet
}

TEST_F(FileWrapperTest, ListShortReadsFindsLane) {
  sql::SqlEngine engine(db_.get());
  ASSERT_TRUE(engine
                  .Execute("CREATE TABLE ShortReadFiles ("
                           "guid UNIQUEIDENTIFIER ROWGUIDCOL PRIMARY KEY,"
                           "sample INT, lane INT,"
                           "reads VARBINARY(MAX) FILESTREAM)")
                  .ok());
  const std::string fastq = "/tmp/htg_fwrap_lane.fastq";
  ASSERT_TRUE(WriteFastqFile(fastq, reads_).ok());
  ASSERT_TRUE(engine
                  .Execute("INSERT INTO ShortReadFiles "
                           "SELECT NEWID(), 855, 2, * FROM OPENROWSET(BULK '" +
                           fastq + "', SINGLE_BLOB)")
                  .ok());
  // Wrong lane → NotFound; right lane streams.
  EXPECT_FALSE(FindShortReadBlob(db_.get(), 855, 1).ok());
  EXPECT_TRUE(FindShortReadBlob(db_.get(), 855, 2).ok());
  auto count = engine.Execute(
      "SELECT COUNT(*) FROM ListShortReads(855, 2, 'FastQ')");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt64(),
            static_cast<int64_t>(reads_.size()));
}

TEST_F(FileWrapperTest, ChunkSizeArgumentRespected) {
  const std::string fastq = "/tmp/htg_fwrap_chunkarg.fastq";
  ASSERT_TRUE(WriteFastqFile(fastq, reads_).ok());
  const std::string blob = *db_->filestream()->ImportFile(fastq, "c.fastq");
  sql::SqlEngine engine(db_.get());
  // 4 KiB chunks through the SQL surface.
  auto result = engine.Execute("SELECT COUNT(*) FROM ReadFastqFile('" + blob +
                               "', 4)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows[0][0].AsInt64(), static_cast<int64_t>(reads_.size()));
}

TEST_F(FileWrapperTest, CorruptBlobSurfacesError) {
  const std::string blob = WriteBlob("this is not fastq\nat all\n");
  auto stream = db_->filestream()->OpenStream(blob);
  ASSERT_TRUE(stream.ok());
  ShortReadStreamIterator iter(std::move(*stream), ShortReadFormat::kFastq);
  Row row;
  EXPECT_FALSE(iter.Next(&row));
  EXPECT_FALSE(iter.status().ok());
}

TEST_F(FileWrapperTest, EmptyBlobYieldsNoRows) {
  const std::string blob = WriteBlob("");
  auto stream = db_->filestream()->OpenStream(blob);
  ASSERT_TRUE(stream.ok());
  ShortReadStreamIterator iter(std::move(*stream), ShortReadFormat::kFastq);
  Row row;
  EXPECT_FALSE(iter.Next(&row));
  EXPECT_TRUE(iter.status().ok());
}

TEST_F(FileWrapperTest, BytesReadTracksFileSize) {
  const std::string fastq = "/tmp/htg_fwrap_bytes.fastq";
  ASSERT_TRUE(WriteFastqFile(fastq, reads_).ok());
  const std::string blob = *db_->filestream()->ImportFile(fastq, "b.fastq");
  auto stream = db_->filestream()->OpenStream(blob);
  ASSERT_TRUE(stream.ok());
  const uint64_t file_size = (*stream)->size();
  ShortReadStreamIterator iter(std::move(*stream), ShortReadFormat::kFastq);
  Row row;
  while (iter.Next(&row)) {
  }
  EXPECT_EQ(iter.bytes_read(), file_size);
}

}  // namespace
}  // namespace htg::genomics
