// Tests for the annotated synchronization primitives
// (src/common/synchronization.h) and the runtime lock-order detector
// behind them, plus TSan regression hammers for the concurrent paths the
// lock-discipline sweep audited: the morsel-drain stats sink
// (src/exec/parallel.cc) and the FaultInjectingVfs op counters. Runs in
// the `concurrency` ctest label, so the CI TSan and ASan sweeps both
// execute it (with HTG_DEADLOCK_DETECT=1).

#include "common/synchronization.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "exec/parallel.h"
#include "storage/fault_injection.h"
#include "storage/vfs.h"

// This binary deliberately performs acquisition-order inversions that are
// NOT deadlocks — a reverse order after only a TryLock, and a reverse
// order against a destroyed-and-recycled mutex — to prove our detector
// classifies them correctly. TSan's own deadlock heuristic flags both
// (it records try-lock edges and keeps edges across pthread mutex
// destruction), so turn just that heuristic off for this binary; TSan's
// data-race detection, the reason the test runs in the `concurrency`
// label, is unaffected.
#if defined(__SANITIZE_THREAD__)
#define HTG_SYNC_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HTG_SYNC_TEST_TSAN 1
#endif
#endif
#ifdef HTG_SYNC_TEST_TSAN
extern "C" const char* __tsan_default_options();
extern "C" const char* __tsan_default_options() {
  return "detect_deadlocks=0";
}
#endif

namespace htg {
namespace {

// Restores the detector's prior state on scope exit so tests compose
// regardless of whether the runner exported HTG_DEADLOCK_DETECT.
class ScopedDeadlockDetection {
 public:
  explicit ScopedDeadlockDetection(bool enabled)
      : prior_(DeadlockDetectionEnabled()) {
    SetDeadlockDetectionEnabled(enabled);
  }
  ~ScopedDeadlockDetection() { SetDeadlockDetectionEnabled(prior_); }

 private:
  bool prior_;
};

// ---------------------------------------------------------------------
// Lock-order detector

TEST(LockOrderDetectorDeathTest, InversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // A->B then B->A in one thread: no run of this program can hang, but
  // two threads interleaving these orders would. The detector must abort
  // on the second pattern even though nothing ever blocks.
  EXPECT_DEATH(
      {
        SetDeadlockDetectionEnabled(true);
        Mutex a("LockA");
        Mutex b("LockB");
        a.Lock();
        b.Lock();  // records A -> B
        b.Unlock();
        a.Unlock();
        b.Lock();
        a.Lock();  // A is reachable from... A -> B exists: inversion
        a.Unlock();
        b.Unlock();
      },
      "lock-order inversion");
}

// Clang's static analysis (correctly) rejects a visible double-acquire;
// the point of this test is that the *runtime* detector catches the same
// bug when it is reached dynamically, so the helper opts out of the
// static check. The code is "safe" in the only sense that matters here:
// it must die before the second lock() ever blocks.
void AcquireTwice(Mutex* m) HTG_NO_THREAD_SAFETY_ANALYSIS {
  m->Lock();
  m->Lock();  // non-recursive lock acquired twice by one thread
}

TEST(LockOrderDetectorDeathTest, SelfDeadlockAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SetDeadlockDetectionEnabled(true);
        Mutex m("Recursive");
        AcquireTwice(&m);
      },
      "recursive acquisition");
}

TEST(LockOrderDetector, ConsistentOrderIsClean) {
  ScopedDeadlockDetection on(true);
  Mutex a("OrderedA");
  Mutex b("OrderedB");
  Mutex c("OrderedC");
  // The same nesting order repeated (and deepened) never trips: the
  // graph A->B->C stays acyclic.
  for (int i = 0; i < 3; ++i) {
    MutexLock la(&a);
    MutexLock lb(&b);
    MutexLock lc(&c);
  }
  {
    MutexLock la(&a);
    MutexLock lc(&c);  // skipping B is still consistent with A->B->C
  }
}

TEST(LockOrderDetector, TryLockDoesNotRecordAnEdge) {
  ScopedDeadlockDetection on(true);
  Mutex a("TryA");
  Mutex b("TryB");
  a.Lock();
  // Plain bool + branch (not ASSERT_TRUE(TryLock())) so the thread-safety
  // analysis can see the lock is only released when it was acquired.
  const bool acquired = b.TryLock();  // a real hold, not a blocking step
  EXPECT_TRUE(acquired);
  if (acquired) b.Unlock();
  a.Unlock();
  // The reverse blocking order must still be legal: TryLock above did
  // not commit A -> B to the graph.
  b.Lock();
  a.Lock();
  a.Unlock();
  b.Unlock();
}

TEST(LockOrderDetector, DestructionPurgesTheNode) {
  ScopedDeadlockDetection on(true);
  Mutex a("PurgeA");
  {
    Mutex b("PurgeB");
    MutexLock la(&a);
    MutexLock lb(&b);  // A -> B
  }  // b destroyed; its node and edges must go with it
  {
    Mutex b2("PurgeB2");  // may land on the recycled address
    MutexLock lb(&b2);
    MutexLock la(&a);  // B2 -> A: only an inversion if stale edges leak
  }
}

// ---------------------------------------------------------------------
// Wrapper semantics

TEST(MutexTest, TryLockRespectsOwnership) {
  Mutex m("TryLockTest");
  m.Lock();
  std::thread other([&m] {
    const bool stolen = m.TryLock();
    EXPECT_FALSE(stolen);
    if (stolen) m.Unlock();
  });
  other.join();
  m.Unlock();
  const bool acquired = m.TryLock();
  EXPECT_TRUE(acquired);
  if (acquired) m.Unlock();
}

TEST(SharedMutexTest, ReadersShareWritersExclude) {
  SharedMutex m("RWTest");
  m.ReaderLock();
  std::thread reader([&m] {
    const bool shared = m.ReaderTryLock();  // second reader admitted
    EXPECT_TRUE(shared);
    if (shared) m.ReaderUnlock();
  });
  reader.join();
  std::thread writer([&m] {
    const bool exclusive = m.TryLock();  // excluded while a reader holds
    EXPECT_FALSE(exclusive);
    if (exclusive) m.Unlock();
  });
  writer.join();
  m.ReaderUnlock();
  const bool acquired = m.TryLock();
  EXPECT_TRUE(acquired);
  std::thread late_reader([&m] {
    const bool shared = m.ReaderTryLock();  // excluded by the writer
    EXPECT_FALSE(shared);
    if (shared) m.ReaderUnlock();
  });
  late_reader.join();
  if (acquired) m.Unlock();
}

struct Channel {
  Mutex mu{"Channel::mu"};
  CondVar cv;
  int value HTG_GUARDED_BY(mu) = 0;
  bool ready HTG_GUARDED_BY(mu) = false;
};

TEST(CondVarTest, WaitReacquiresTheMutex) {
  Channel ch;
  std::thread consumer([&ch] {
    MutexLock lock(&ch.mu);
    while (!ch.ready) ch.cv.Wait(&ch.mu);
    // Wait() returned with the lock held: the guarded reads are safe.
    EXPECT_EQ(ch.value, 42);
  });
  {
    MutexLock lock(&ch.mu);
    ch.value = 42;
    ch.ready = true;
  }
  ch.cv.NotifyAll();
  consumer.join();
}

TEST(CondVarTest, WaitForTimesOutWithoutANotifier) {
  Channel ch;
  MutexLock lock(&ch.mu);
  ch.cv.WaitFor(&ch.mu, 5);  // spurious wakeups allowed; predicate is not
  EXPECT_FALSE(ch.ready);
}

// ---------------------------------------------------------------------
// TSan regression: the morsel-drain dispatch and its per-worker stats
// slots. Worker ids are dense in [0, dop), so each worker owns its slot
// without a lock — the seam the lock-discipline audit verified race-free.

TEST(ParallelDrainTest, StatsSlotsAndDispatchAreRaceFree) {
  ScopedDeadlockDetection on(true);  // detector active under the hammer
  constexpr int kDop = 8;
  constexpr size_t kMorsels = 512;
  ThreadPool pool(kDop);
  std::array<int64_t, kDop> per_worker{};
  std::atomic<int64_t> morsel_sum{0};
  Status st = exec::ParallelDrainMorsels(
      &pool, kDop, kMorsels, [&](int worker, size_t m) {
        per_worker[static_cast<size_t>(worker)] += 1;
        morsel_sum.fetch_add(static_cast<int64_t>(m),
                             std::memory_order_relaxed);
        return Status::OK();
      });
  ASSERT_TRUE(st.ok()) << st.message();
  int64_t claimed = 0;
  for (int64_t v : per_worker) claimed += v;
  EXPECT_EQ(claimed, static_cast<int64_t>(kMorsels));
  EXPECT_EQ(morsel_sum.load(),
            static_cast<int64_t>(kMorsels * (kMorsels - 1) / 2));
}

TEST(ParallelDrainTest, FirstErrorWinsAndDrainTerminates) {
  ScopedDeadlockDetection on(true);
  constexpr int kDop = 8;
  constexpr size_t kMorsels = 256;
  ThreadPool pool(kDop);
  std::atomic<int64_t> executed{0};
  Status st = exec::ParallelDrainMorsels(
      &pool, kDop, kMorsels, [&](int /*worker*/, size_t m) {
        if (m == 17 || m == 101) {
          return Status::ExecError("injected at morsel " +
                                   std::to_string(m));
        }
        executed.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      });
  ASSERT_FALSE(st.ok());
  // Remaining morsels are claimed-but-skipped after the first error, so
  // the drain always terminates and never over-executes.
  EXPECT_LE(executed.load(), static_cast<int64_t>(kMorsels) - 2);
}

// ---------------------------------------------------------------------
// TSan regression: FaultInjectingVfs op/read counters under concurrent
// traffic. Learn the per-iteration op count single-threaded, then assert
// the concurrent total matches exactly — a lost update would undercount.

void RunVfsWorkload(storage::FaultInjectingVfs* vfs, const std::string& dir,
                    int thread_id, int iters) {
  for (int i = 0; i < iters; ++i) {
    const std::string path =
        dir + "/t" + std::to_string(thread_id) + "_" + std::to_string(i);
    auto file = vfs->NewWritableFile(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("sync_test payload").ok());
    ASSERT_TRUE((*file)->Close().ok());
    EXPECT_TRUE(vfs->FileExists(path));
    auto contents = vfs->ReadFileToString(path);
    ASSERT_TRUE(contents.ok());
    EXPECT_EQ(*contents, "sync_test payload");
    ASSERT_TRUE(vfs->DeleteFile(path).ok());
  }
}

TEST(FaultInjectingVfsTest, OpCountersAreRaceFreeAtDop8) {
  ScopedDeadlockDetection on(true);
  const std::string dir = "/tmp/htg_sync_test_vfs";
  ASSERT_TRUE(storage::Vfs::Default()->CreateDirs(dir).ok());
  storage::FaultInjectingVfs vfs(storage::Vfs::Default(),
                                 storage::FaultPlan{});
  RunVfsWorkload(&vfs, dir, /*thread_id=*/99, /*iters=*/1);
  const int64_t ops_per_iter = vfs.ops_seen();
  ASSERT_GT(ops_per_iter, 0);

  vfs.Reset(storage::FaultPlan{});
  ASSERT_EQ(vfs.ops_seen(), 0);
  constexpr int kThreads = 8;
  constexpr int kIters = 16;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&vfs, &dir, t] { RunVfsWorkload(&vfs, dir, t, kIters); });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(vfs.ops_seen(), ops_per_iter * kThreads * kIters);
  EXPECT_FALSE(vfs.fault_fired());
}

}  // namespace
}  // namespace htg
