#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"

namespace htg::sql {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a.b, 'it''s', 42, 3.5e2 FROM [Read];");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 12u);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_TRUE((*tokens)[0].IsKeyword("select"));
  EXPECT_EQ((*tokens)[1].text, "a");
  EXPECT_TRUE((*tokens)[2].IsOp("."));
  EXPECT_EQ((*tokens)[5].type, TokenType::kString);
  EXPECT_EQ((*tokens)[5].text, "it's");
  EXPECT_EQ((*tokens)[7].int_value, 42);
  EXPECT_EQ((*tokens)[9].float_value, 350.0);
}

TEST(LexerTest, BracketedIdentifiersStripBrackets) {
  auto tokens = Tokenize("[Read]");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "Read");
}

TEST(LexerTest, NStringPrefixDropped) {
  auto tokens = Tokenize("N'unicode'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kString);
  EXPECT_EQ((*tokens)[0].text, "unicode");
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("1 -- comment\n /* block\ncomment */ 2");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);  // 1, 2, END
  EXPECT_EQ((*tokens)[0].int_value, 1);
  EXPECT_EQ((*tokens)[1].int_value, 2);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("[unterminated").ok());
  EXPECT_FALSE(Tokenize("SELECT ?").ok());
}

TEST(ParserTest, SelectClausesRoundTrip) {
  Result<Statement> stmt = ParseStatement(
      "SELECT TOP 5 a, b AS bee, COUNT(*) FROM t JOIN u ON t.x = u.y "
      "WHERE a > 1 AND b LIKE 'AC%' GROUP BY a HAVING COUNT(*) > 2 "
      "ORDER BY 1 DESC, bee");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const SelectStmt& s = *stmt->select;
  EXPECT_EQ(s.top, 5);
  ASSERT_EQ(s.items.size(), 3u);
  EXPECT_EQ(s.items[1].alias, "bee");
  EXPECT_EQ(s.from.name, "t");
  ASSERT_EQ(s.joins.size(), 1u);
  EXPECT_EQ(s.joins[0].ref.name, "u");
  ASSERT_NE(s.where, nullptr);
  ASSERT_EQ(s.group_by.size(), 1u);
  ASSERT_NE(s.having, nullptr);
  ASSERT_EQ(s.order_by.size(), 2u);
  EXPECT_TRUE(s.order_by[0].descending);
  EXPECT_FALSE(s.order_by[1].descending);
}

TEST(ParserTest, ImplicitAndExplicitAliases) {
  Result<Statement> stmt =
      ParseStatement("SELECT x FROM Reads r JOIN Tags AS t ON r.a = t.b");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->from.alias, "r");
  EXPECT_EQ(stmt->select->joins[0].ref.alias, "t");
}

TEST(ParserTest, CreateTableFull) {
  Result<Statement> stmt = ParseStatement(
      "CREATE TABLE ShortReadFiles ("
      " guid UNIQUEIDENTIFIER ROWGUIDCOL PRIMARY KEY,"
      " sample INT NOT NULL,"
      " name NVARCHAR(50),"
      " reads VARBINARY(MAX) FILESTREAM"
      ") WITH (DATA_COMPRESSION = PAGE) FILESTREAM_ON grp "
      "CLUSTER BY (sample, guid)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const CreateTableStmt& ct = *stmt->create_table;
  EXPECT_EQ(ct.name, "ShortReadFiles");
  ASSERT_EQ(ct.columns.size(), 4u);
  EXPECT_TRUE(ct.columns[0].rowguid);
  EXPECT_TRUE(ct.columns[0].primary_key);
  EXPECT_TRUE(ct.columns[1].not_null);
  EXPECT_EQ(ct.columns[2].length, 50);
  EXPECT_TRUE(ct.columns[3].filestream);
  EXPECT_EQ(ct.columns[3].length, ColumnDefAst::kMaxLength);
  EXPECT_EQ(ct.compression, "PAGE");
  EXPECT_EQ(ct.filestream_group, "grp");
  ASSERT_EQ(ct.cluster_by.size(), 2u);
}

TEST(ParserTest, TableLevelPrimaryKey) {
  Result<Statement> stmt = ParseStatement(
      "CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->create_table->primary_key.size(), 2u);
  EXPECT_EQ(stmt->create_table->primary_key[0], "a");
}

TEST(ParserTest, InsertVariants) {
  Result<Statement> values = ParseStatement(
      "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(values->insert->columns.size(), 2u);
  EXPECT_EQ(values->insert->values_rows.size(), 2u);

  Result<Statement> select = ParseStatement(
      "INSERT INTO t SELECT * FROM OPENROWSET(BULK '/tmp/x', SINGLE_BLOB)");
  ASSERT_TRUE(select.ok());
  ASSERT_NE(select->insert->select, nullptr);
  EXPECT_EQ(select->insert->select->from.kind, TableRef::Kind::kOpenRowset);
  EXPECT_EQ(select->insert->select->from.bulk_path, "/tmp/x");
}

TEST(ParserTest, CrossApplyAndTvf) {
  Result<Statement> stmt = ParseStatement(
      "SELECT * FROM ListShortReads(855, 1, 'FastQ') r "
      "CROSS APPLY PivotAlignment(r.pos, r.seq, r.quals) pa");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->from.kind, TableRef::Kind::kTvf);
  EXPECT_EQ(stmt->select->from.args.size(), 3u);
  ASSERT_EQ(stmt->select->joins.size(), 1u);
  EXPECT_TRUE(stmt->select->joins[0].cross_apply);
}

TEST(ParserTest, WindowFunction) {
  Result<Statement> stmt = ParseStatement(
      "SELECT ROW_NUMBER() OVER (ORDER BY COUNT(*) DESC, x ASC) FROM t "
      "GROUP BY x");
  ASSERT_TRUE(stmt.ok());
  const AstExpr& call = *stmt->select->items[0].expr;
  EXPECT_EQ(call.kind, AstExpr::Kind::kCall);
  EXPECT_TRUE(call.has_over);
  ASSERT_EQ(call.over_order.size(), 2u);
  EXPECT_TRUE(call.over_desc[0]);
  EXPECT_FALSE(call.over_desc[1]);
}

TEST(ParserTest, ExpressionPrecedence) {
  Result<Statement> stmt =
      ParseStatement("SELECT 1 + 2 * 3 = 7 AND NOT 1 > 2");
  ASSERT_TRUE(stmt.ok());
  // Text form encodes the tree: ((1 + (2 * 3)) = 7) AND NOT (1 > 2).
  EXPECT_EQ(stmt->select->items[0].expr->ToText(),
            "(((1 + (2 * 3)) = 7) AND NOT (1 > 2))");
}

TEST(ParserTest, BetweenAndInAndLike) {
  Result<Statement> stmt = ParseStatement(
      "SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b NOT IN (1, 2) "
      "AND c NOT LIKE '%N%'");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const std::string text = stmt->select->where->ToText();
  EXPECT_NE(text.find("BETWEEN 1 AND 10"), std::string::npos);
  EXPECT_NE(text.find("NOT IN (1, 2)"), std::string::npos);
  EXPECT_NE(text.find("NOT LIKE '%N%'"), std::string::npos);
}

TEST(ParserTest, DistinctForms) {
  Result<Statement> stmt =
      ParseStatement("SELECT DISTINCT a, COUNT(DISTINCT b) FROM t GROUP BY a");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->select->distinct);
  EXPECT_TRUE(stmt->select->items[1].expr->distinct_arg);
}

TEST(ParserTest, CaseExpression) {
  Result<Statement> stmt = ParseStatement(
      "SELECT CASE WHEN a = 1 THEN 'one' WHEN a = 2 THEN 'two' "
      "ELSE 'many' END FROM t");
  ASSERT_TRUE(stmt.ok());
  const AstExpr& e = *stmt->select->items[0].expr;
  EXPECT_EQ(e.kind, AstExpr::Kind::kCase);
  EXPECT_EQ(e.case_branches.size(), 2u);
  ASSERT_NE(e.case_else, nullptr);
}

TEST(ParserTest, MultipleStatements) {
  Result<std::vector<Statement>> stmts = ParseSql(
      "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT a FROM t;");
  ASSERT_TRUE(stmts.ok());
  ASSERT_EQ(stmts->size(), 3u);
  EXPECT_EQ((*stmts)[0].kind, Statement::Kind::kCreateTable);
  EXPECT_EQ((*stmts)[1].kind, Statement::Kind::kInsert);
  EXPECT_EQ((*stmts)[2].kind, Statement::Kind::kSelect);
}

TEST(ParserTest, SyntaxErrorsReportContext) {
  Result<Statement> stmt = ParseStatement("SELECT a FROM WHERE");
  ASSERT_FALSE(stmt.ok());
  EXPECT_TRUE(stmt.status().IsParseError());
  EXPECT_FALSE(ParseStatement("CREATE TABLE (a INT)").ok());
  EXPECT_FALSE(ParseStatement("INSERT t SET a = 1").ok());
  EXPECT_FALSE(ParseStatement("SELECT (1 + ").ok());
}

TEST(ParserTest, ExplainStatement) {
  Result<Statement> stmt = ParseStatement("EXPLAIN SELECT 1");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, Statement::Kind::kExplain);
}

}  // namespace
}  // namespace htg::sql
