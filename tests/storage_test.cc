#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "common/random.h"
#include "storage/bplus_tree.h"
#include "storage/clustered_table.h"
#include "storage/filestream.h"
#include "storage/heap_table.h"
#include "storage/page.h"
#include "storage/row_codec.h"
#include "storage/transaction.h"

namespace htg::storage {
namespace {

Schema TestSchema() {
  Schema schema;
  schema.AddColumn({.name = "id", .type = DataType::kInt64});
  schema.AddColumn({.name = "lane", .type = DataType::kInt32});
  schema.AddColumn({.name = "seq", .type = DataType::kString});
  Column fixed;
  fixed.name = "code";
  fixed.type = DataType::kString;
  fixed.fixed_length = 8;
  schema.AddColumn(fixed);
  schema.AddColumn({.name = "score", .type = DataType::kDouble});
  return schema;
}

Row TestRow(int64_t id) {
  return Row{Value::Int64(id), Value::Int32(static_cast<int32_t>(id % 8)),
             Value::String("ACGT" + std::to_string(id)),
             Value::String("AB"), Value::Double(id * 0.5)};
}

class RowCodecTest : public ::testing::TestWithParam<Compression> {};

TEST_P(RowCodecTest, RoundTrip) {
  const Schema schema = TestSchema();
  const Row row = TestRow(12345);
  std::string encoded;
  ASSERT_TRUE(EncodeRow(schema, row, GetParam(), &encoded).ok());
  Row decoded;
  ASSERT_TRUE(DecodeRow(schema, GetParam(), Slice(encoded), &decoded).ok());
  ASSERT_EQ(decoded.size(), row.size());
  EXPECT_EQ(decoded[0].AsInt64(), 12345);
  EXPECT_EQ(decoded[1].AsInt64(), 12345 % 8);
  EXPECT_EQ(decoded[2].AsString(), "ACGT12345");
  EXPECT_EQ(decoded[4].AsDouble(), 12345 * 0.5);
}

TEST_P(RowCodecTest, NullsRoundTrip) {
  const Schema schema = TestSchema();
  Row row(5, Value::Null());
  std::string encoded;
  ASSERT_TRUE(EncodeRow(schema, row, GetParam(), &encoded).ok());
  Row decoded;
  ASSERT_TRUE(DecodeRow(schema, GetParam(), Slice(encoded), &decoded).ok());
  for (const Value& v : decoded) EXPECT_TRUE(v.is_null());
}

INSTANTIATE_TEST_SUITE_P(AllModes, RowCodecTest,
                         ::testing::Values(Compression::kNone,
                                           Compression::kRow,
                                           Compression::kPage));

TEST(RowCodecTest, FixedCharPaddedUncompressed) {
  Schema schema;
  Column fixed;
  fixed.name = "code";
  fixed.type = DataType::kString;
  fixed.fixed_length = 8;
  schema.AddColumn(fixed);
  Row row{Value::String("AB")};
  std::string none_encoded;
  ASSERT_TRUE(EncodeRow(schema, row, Compression::kNone, &none_encoded).ok());
  std::string row_encoded;
  ASSERT_TRUE(EncodeRow(schema, row, Compression::kRow, &row_encoded).ok());
  // NONE pads to 8; ROW trims trailing blanks.
  EXPECT_GT(none_encoded.size(), row_encoded.size());
  Row decoded;
  ASSERT_TRUE(
      DecodeRow(schema, Compression::kNone, Slice(none_encoded), &decoded).ok());
  EXPECT_EQ(decoded[0].AsString(), "AB      ");
  ASSERT_TRUE(
      DecodeRow(schema, Compression::kRow, Slice(row_encoded), &decoded).ok());
  EXPECT_EQ(decoded[0].AsString(), "AB");
}

TEST(RowCodecTest, RowCompressionShrinksSmallIntegers) {
  Schema schema;
  schema.AddColumn({.name = "a", .type = DataType::kInt64});
  schema.AddColumn({.name = "b", .type = DataType::kInt32});
  Row row{Value::Int64(3), Value::Int32(7)};
  std::string none_encoded, row_encoded;
  ASSERT_TRUE(EncodeRow(schema, row, Compression::kNone, &none_encoded).ok());
  ASSERT_TRUE(EncodeRow(schema, row, Compression::kRow, &row_encoded).ok());
  EXPECT_EQ(none_encoded.size(), 1u + 8 + 4);  // bitmap + fixed widths
  EXPECT_EQ(row_encoded.size(), 1u + 1 + 1);   // bitmap + varints
}

TEST(RowCodecTest, GuidPacksTo16Bytes) {
  const std::string guid = "0b9e612c-8e6a-4f7a-9d26-00124a39b19c";
  EXPECT_EQ(GuidToBytes(guid).size(), 16u);
  EXPECT_EQ(BytesToGuid(GuidToBytes(guid)), guid);
  Schema schema;
  schema.AddColumn({.name = "g", .type = DataType::kGuid});
  Row row{Value::Guid(guid)};
  std::string encoded;
  ASSERT_TRUE(EncodeRow(schema, row, Compression::kNone, &encoded).ok());
  EXPECT_EQ(encoded.size(), 1u + 1 + 16);
  Row decoded;
  ASSERT_TRUE(
      DecodeRow(schema, Compression::kNone, Slice(encoded), &decoded).ok());
  EXPECT_EQ(decoded[0].AsString(), guid);
}

TEST(RowCodecTest, CorruptRowDetected) {
  const Schema schema = TestSchema();
  std::string encoded;
  ASSERT_TRUE(EncodeRow(schema, TestRow(1), Compression::kRow, &encoded).ok());
  Row decoded;
  EXPECT_FALSE(DecodeRow(schema, Compression::kRow,
                         Slice(encoded.data(), encoded.size() / 2), &decoded)
                   .ok());
}

class PageTest : public ::testing::TestWithParam<Compression> {};

TEST_P(PageTest, BuildAndReadBack) {
  const Schema schema = TestSchema();
  PageBuilder builder(&schema, GetParam());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(builder.Add(TestRow(i)).ok());
  }
  const std::string page = builder.Finish();
  PageReader reader(&schema, Slice(page));
  ASSERT_TRUE(reader.Init().ok());
  EXPECT_EQ(reader.row_count(), 50);
  Row row;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(reader.Next(&row)) << i;
    EXPECT_EQ(row[0].AsInt64(), i);
    EXPECT_EQ(row[2].AsString(), "ACGT" + std::to_string(i));
  }
  EXPECT_FALSE(reader.Next(&row));
  EXPECT_TRUE(reader.status().ok());
}

TEST_P(PageTest, NullsInPage) {
  const Schema schema = TestSchema();
  PageBuilder builder(&schema, GetParam());
  Row with_nulls = TestRow(1);
  with_nulls[2] = Value::Null();
  with_nulls[4] = Value::Null();
  ASSERT_TRUE(builder.Add(with_nulls).ok());
  ASSERT_TRUE(builder.Add(TestRow(2)).ok());
  const std::string page = builder.Finish();
  PageReader reader(&schema, Slice(page));
  ASSERT_TRUE(reader.Init().ok());
  Row row;
  ASSERT_TRUE(reader.Next(&row));
  EXPECT_TRUE(row[2].is_null());
  EXPECT_TRUE(row[4].is_null());
  EXPECT_EQ(row[0].AsInt64(), 1);
  ASSERT_TRUE(reader.Next(&row));
  EXPECT_EQ(row[2].AsString(), "ACGT2");
}

INSTANTIATE_TEST_SUITE_P(AllModes, PageTest,
                         ::testing::Values(Compression::kNone,
                                           Compression::kRow,
                                           Compression::kPage));

TEST(PageCompressionTest, DictionaryShrinksRepetitiveColumns) {
  Schema schema;
  schema.AddColumn({.name = "tag", .type = DataType::kString});
  // Highly repetitive values (the DGE regime): dictionary should collapse
  // the page to a fraction of the row-compressed size.
  PageBuilder page_builder(&schema, Compression::kPage);
  PageBuilder row_builder(&schema, Compression::kRow);
  for (int i = 0; i < 200; ++i) {
    Row row{Value::String("ACGTACGTACGTACGTACGT" + std::to_string(i % 4))};
    ASSERT_TRUE(page_builder.Add(row).ok());
    ASSERT_TRUE(row_builder.Add(row).ok());
  }
  const std::string page_compressed = page_builder.Finish();
  const std::string row_compressed = row_builder.Finish();
  EXPECT_LT(page_compressed.size(), row_compressed.size() / 3);
}

TEST(PageCompressionTest, UniqueValuesGainLittle) {
  Schema schema;
  schema.AddColumn({.name = "read", .type = DataType::kString});
  Random rng(3);
  PageBuilder page_builder(&schema, Compression::kPage);
  PageBuilder row_builder(&schema, Compression::kRow);
  for (int i = 0; i < 150; ++i) {
    std::string seq;
    for (int b = 0; b < 36; ++b) seq.push_back("ACGT"[rng.Uniform(4)]);
    Row row{Value::String(seq)};
    ASSERT_TRUE(page_builder.Add(row).ok());
    ASSERT_TRUE(row_builder.Add(row).ok());
  }
  const std::string page_compressed = page_builder.Finish();
  const std::string row_compressed = row_builder.Finish();
  // The 1000-Genomes regime of §5.1.2: compression is much less effective;
  // allow at most ~15% difference either way.
  EXPECT_GT(page_compressed.size(), row_compressed.size() * 85 / 100);
}

TEST(HeapTableTest, InsertScanRoundTrip) {
  HeapTable table(TestSchema(), Compression::kRow, 1024);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(table.Insert(TestRow(i)).ok());
  }
  EXPECT_EQ(table.num_rows(), 500u);
  auto iter = table.NewScan();
  Row row;
  int count = 0;
  while (iter->Next(&row)) {
    EXPECT_EQ(row[0].AsInt64(), count);
    ++count;
  }
  EXPECT_TRUE(iter->status().ok());
  EXPECT_EQ(count, 500);
  EXPECT_GT(table.Stats().pages, 1u);
}

TEST(HeapTableTest, RangeScansPartitionCompletely) {
  HeapTable table(TestSchema(), Compression::kNone, 512);
  for (int i = 0; i < 300; ++i) ASSERT_TRUE(table.Insert(TestRow(i)).ok());
  ASSERT_TRUE(table.SealCurrentPage().ok());
  const size_t pages = table.num_pages_sealed();
  ASSERT_GT(pages, 3u);
  int total = 0;
  const int parts = 3;
  for (int p = 0; p < parts; ++p) {
    auto iter = table.NewScanRange(pages * p / parts, pages * (p + 1) / parts);
    Row row;
    while (iter->Next(&row)) ++total;
    EXPECT_TRUE(iter->status().ok());
  }
  EXPECT_EQ(total, 300);
}

TEST(HeapTableTest, TruncateToRowsUndoesAppends) {
  HeapTable table(TestSchema(), Compression::kRow, 512);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(table.Insert(TestRow(i)).ok());
  for (int i = 100; i < 177; ++i) ASSERT_TRUE(table.Insert(TestRow(i)).ok());
  ASSERT_TRUE(table.TruncateToRows(100).ok());
  EXPECT_EQ(table.num_rows(), 100u);
  auto iter = table.NewScan();
  Row row;
  int count = 0;
  while (iter->Next(&row)) {
    EXPECT_EQ(row[0].AsInt64(), count);
    ++count;
  }
  EXPECT_EQ(count, 100);
}

TEST(HeapTableTest, TruncateClearsAll) {
  HeapTable table(TestSchema(), Compression::kNone);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(table.Insert(TestRow(i)).ok());
  table.Truncate();
  EXPECT_EQ(table.num_rows(), 0u);
  auto iter = table.NewScan();
  Row row;
  EXPECT_FALSE(iter->Next(&row));
}

TEST(BPlusTreeTest, OrderedScanMatchesMultimap) {
  BPlusTree tree(16);
  std::multimap<int64_t, std::string> expected;
  Random rng(5);
  for (int i = 0; i < 2000; ++i) {
    const int64_t key = static_cast<int64_t>(rng.Uniform(500));
    const std::string payload = "p" + std::to_string(i);
    tree.Insert(Row{Value::Int64(key)}, payload);
    expected.emplace(key, payload);
  }
  EXPECT_EQ(tree.size(), 2000u);
  auto cursor = tree.First();
  auto it = expected.begin();
  int64_t prev = INT64_MIN;
  size_t n = 0;
  while (cursor.Valid()) {
    ASSERT_NE(it, expected.end());
    const int64_t key = cursor.key()[0].AsInt64();
    EXPECT_GE(key, prev);
    EXPECT_EQ(key, it->first);
    prev = key;
    cursor.Advance();
    ++it;
    ++n;
  }
  EXPECT_EQ(n, expected.size());
}

TEST(BPlusTreeTest, SeekFindsLowerBound) {
  BPlusTree tree(8);
  for (int i = 0; i < 100; ++i) {
    tree.Insert(Row{Value::Int64(i * 10)}, std::to_string(i));
  }
  auto cursor = tree.Seek(Row{Value::Int64(255)});
  ASSERT_TRUE(cursor.Valid());
  EXPECT_EQ(cursor.key()[0].AsInt64(), 260);
  cursor = tree.Seek(Row{Value::Int64(0)});
  ASSERT_TRUE(cursor.Valid());
  EXPECT_EQ(cursor.key()[0].AsInt64(), 0);
  cursor = tree.Seek(Row{Value::Int64(99999)});
  EXPECT_FALSE(cursor.Valid());
}

TEST(BPlusTreeTest, CompositeKeyPrefixSeek) {
  BPlusTree tree(8);
  for (int chr = 0; chr < 5; ++chr) {
    for (int pos = 0; pos < 50; ++pos) {
      tree.Insert(Row{Value::Int32(chr), Value::Int64(pos * 3)}, "x");
    }
  }
  auto cursor = tree.Seek(Row{Value::Int32(2)});
  ASSERT_TRUE(cursor.Valid());
  EXPECT_EQ(cursor.key()[0].AsInt64(), 2);
  EXPECT_EQ(cursor.key()[1].AsInt64(), 0);
  cursor = tree.Seek(Row{Value::Int32(2), Value::Int64(10)});
  ASSERT_TRUE(cursor.Valid());
  EXPECT_EQ(cursor.key()[1].AsInt64(), 12);
}

TEST(BPlusTreeTest, DuplicateKeysAllKept) {
  BPlusTree tree(8);
  for (int i = 0; i < 200; ++i) {
    tree.Insert(Row{Value::Int64(7)}, "dup" + std::to_string(i));
  }
  auto cursor = tree.Seek(Row{Value::Int64(7)});
  int count = 0;
  while (cursor.Valid()) {
    EXPECT_EQ(cursor.key()[0].AsInt64(), 7);
    cursor.Advance();
    ++count;
  }
  EXPECT_EQ(count, 200);
}

TEST(ClusteredTableTest, ScanInKeyOrder) {
  Schema schema;
  schema.AddColumn({.name = "chr", .type = DataType::kInt32});
  schema.AddColumn({.name = "pos", .type = DataType::kInt64});
  schema.AddColumn({.name = "payload", .type = DataType::kString});
  ClusteredTable table(schema, {0, 1}, Compression::kRow);
  Random rng(9);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(table
                    .Insert(Row{Value::Int32(static_cast<int32_t>(
                                    rng.Uniform(4))),
                                Value::Int64(static_cast<int64_t>(
                                    rng.Uniform(1000))),
                                Value::String("v" + std::to_string(i))})
                    .ok());
  }
  auto iter = table.NewScan();
  Row row;
  Row prev;
  int count = 0;
  while (iter->Next(&row)) {
    if (!prev.empty()) {
      EXPECT_LE(CompareRowsOn(prev, row, {0, 1}), 0);
    }
    prev = row;
    ++count;
  }
  EXPECT_EQ(count, 500);
}

TEST(ClusteredTableTest, ScanFromSeeksPrefix) {
  Schema schema;
  schema.AddColumn({.name = "k", .type = DataType::kInt64});
  schema.AddColumn({.name = "v", .type = DataType::kString});
  ClusteredTable table(schema, {0}, Compression::kNone);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(table.Insert(Row{Value::Int64(i), Value::String("x")}).ok());
  }
  auto iter = table.NewScanFrom(Row{Value::Int64(90)});
  ASSERT_TRUE(iter.ok());
  Row row;
  int count = 0;
  while ((*iter)->Next(&row)) {
    EXPECT_GE(row[0].AsInt64(), 90);
    ++count;
  }
  EXPECT_EQ(count, 10);
}

TEST(FileStreamTest, CreateReadDelete) {
  auto store = FileStreamStore::Open("/tmp/htg_fs_test_1");
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Clear().ok());
  Result<std::string> path = (*store)->CreateBlob("lane1.fastq", "hello blob");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*(*store)->BlobSize(*path), 10u);
  EXPECT_EQ(*(*store)->ReadAll(*path), "hello blob");
  EXPECT_EQ((*store)->TotalBytes(), 10u);
  ASSERT_TRUE((*store)->Delete(*path).ok());
  EXPECT_FALSE((*store)->BlobSize(*path).ok());
}

TEST(FileStreamTest, StreamingReaderChunks) {
  auto store = FileStreamStore::Open("/tmp/htg_fs_test_2");
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Clear().ok());
  std::string content;
  for (int i = 0; i < 1000; ++i) content += "0123456789";
  Result<std::string> path = (*store)->CreateBlob("big.bin", content);
  ASSERT_TRUE(path.ok());
  auto reader = (*store)->OpenStream(*path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->size(), content.size());
  std::string assembled;
  char buf[313];
  uint64_t offset = 0;
  for (;;) {
    Result<size_t> n = (*reader)->GetBytes(offset, buf, sizeof(buf));
    ASSERT_TRUE(n.ok());
    if (*n == 0) break;
    assembled.append(buf, *n);
    offset += *n;
  }
  EXPECT_EQ(assembled, content);
  // Random access after sequential reads.
  Result<size_t> n = (*reader)->GetBytes(5, buf, 5);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, *n), "56789");
}

TEST(FileStreamTest, ImportFileCopiesBytes) {
  auto store = FileStreamStore::Open("/tmp/htg_fs_test_3");
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Clear().ok());
  const std::string src = "/tmp/htg_fs_import_src.txt";
  FILE* f = fopen(src.c_str(), "wb");
  fputs("imported content", f);
  fclose(f);
  Result<std::string> path = (*store)->ImportFile(src, "import.txt");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*(*store)->ReadAll(*path), "imported content");
  EXPECT_FALSE((*store)->ImportFile("/nonexistent", "x").ok());
}

TEST(TransactionTest, RollbackRunsUndoInReverse) {
  std::vector<int> order;
  {
    Transaction txn;
    txn.OnRollback([&order] { order.push_back(1); });
    txn.OnRollback([&order] { order.push_back(2); });
    txn.Rollback();
  }
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 1);
}

TEST(TransactionTest, CommitSkipsUndo) {
  bool undone = false;
  {
    Transaction txn;
    txn.OnRollback([&undone] { undone = true; });
    txn.Commit();
  }
  EXPECT_FALSE(undone);
}

TEST(TransactionTest, DestructorRollsBackIfActive) {
  bool undone = false;
  {
    Transaction txn;
    txn.OnRollback([&undone] { undone = true; });
  }
  EXPECT_TRUE(undone);
}

}  // namespace
}  // namespace htg::storage
