// Buffer-pool unit tests: pin semantics, CLOCK eviction, WAL-ordered
// write-back through a TableSpace, concurrent hit storms (the TSan
// target of the `concurrency` label), and the fault-injection contract —
// a failed or corrupted miss-fill must surface an error and leave no
// poisoned frame behind.

#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/crc32c.h"
#include "common/metrics.h"
#include "storage/fault_injection.h"
#include "storage/page.h"
#include "storage/tablespace.h"
#include "storage/vfs.h"

namespace htg::storage {
namespace {

// payload + little-endian CRC32C trailer: the on-disk page image the
// pool verifies on every miss-fill of a checksummed file.
std::string ChecksummedPage(std::string payload) {
  const uint32_t crc = Crc32c(payload.data(), payload.size());
  char trailer[kPageChecksumBytes];
  std::memcpy(trailer, &crc, kPageChecksumBytes);
  payload.append(trailer, kPageChecksumBytes);
  return payload;
}

std::string PagePayload(int page_no, size_t payload_bytes) {
  return std::string(payload_bytes, static_cast<char>('A' + page_no));
}

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->Value();
}

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/htg_bufferpool_test";
    ASSERT_TRUE(Vfs::Default()->CreateDirs(dir_).ok());
  }

  // Writes `n` distinct checksummed pages of `payload_bytes` payload each
  // to `name` under the test dir and registers the file with `pool`
  // (opening it through `vfs`, so a FaultInjectingVfs wraps the reader).
  uint32_t MakePagedFile(BufferPool* pool, Vfs* vfs, const std::string& name,
                         int n, size_t payload_bytes) {
    const std::string path = dir_ + "/" + name;
    auto writer = vfs->NewWritableFile(path);
    EXPECT_TRUE(writer.ok());
    std::vector<std::pair<uint64_t, uint32_t>> extents;
    uint64_t offset = 0;
    for (int i = 0; i < n; ++i) {
      const std::string page = ChecksummedPage(PagePayload(i, payload_bytes));
      EXPECT_TRUE((*writer)->Append(page).ok());
      extents.emplace_back(offset, static_cast<uint32_t>(page.size()));
      offset += page.size();
    }
    EXPECT_TRUE((*writer)->Close().ok());
    auto file = vfs->NewRandomAccessFile(path);
    EXPECT_TRUE(file.ok());
    PagedFileOptions options;
    options.checksummed = true;
    const uint32_t id = pool->RegisterFile(std::move(*file), options);
    for (int i = 0; i < n; ++i) {
      pool->AddPageExtent(id, i, extents[i].first, extents[i].second);
    }
    return id;
  }

  std::string dir_;
};

constexpr size_t kPayload = 100;
constexpr size_t kPageBytes = kPayload + kPageChecksumBytes;

TEST_F(BufferPoolTest, PinBlocksEviction) {
  BufferPoolOptions options;
  options.capacity_bytes = 2 * kPageBytes;
  BufferPool pool(options);
  const uint32_t id = MakePagedFile(&pool, Vfs::Default(), "pin.dat", 3,
                                    kPayload);

  auto g0 = pool.Fetch(id, 0);
  ASSERT_TRUE(g0.ok());
  {
    auto g1 = pool.Fetch(id, 1);
    ASSERT_TRUE(g1.ok());
  }
  // Page 0 is pinned; making room for page 2 must victimize page 1.
  auto g2 = pool.Fetch(id, 2);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(pool.frames_cached(), 2u);
  EXPECT_EQ(g0->data().ToString(), ChecksummedPage(PagePayload(0, kPayload)));

  const uint64_t hits = CounterValue("bufferpool.hit");
  const uint64_t misses = CounterValue("bufferpool.miss");
  { auto again = pool.Fetch(id, 0); ASSERT_TRUE(again.ok()); }
  EXPECT_EQ(CounterValue("bufferpool.hit"), hits + 1);   // 0 survived
  { auto again = pool.Fetch(id, 1); ASSERT_TRUE(again.ok()); }
  EXPECT_EQ(CounterValue("bufferpool.miss"), misses + 1);  // 1 was evicted
}

TEST_F(BufferPoolTest, AllPinnedOvercommitsInsteadOfDeadlocking) {
  BufferPoolOptions options;
  options.capacity_bytes = 2 * kPageBytes;
  BufferPool pool(options);
  const uint32_t id = MakePagedFile(&pool, Vfs::Default(), "overcommit.dat",
                                    3, kPayload);

  auto g0 = pool.Fetch(id, 0);
  auto g1 = pool.Fetch(id, 1);
  ASSERT_TRUE(g0.ok());
  ASSERT_TRUE(g1.ok());
  const uint64_t overcommits = CounterValue("bufferpool.overcommit");
  auto g2 = pool.Fetch(id, 2);  // every frame pinned: must not deadlock
  ASSERT_TRUE(g2.ok());
  EXPECT_GT(pool.bytes_cached(), pool.capacity_bytes());
  EXPECT_GT(CounterValue("bufferpool.overcommit"), overcommits);
  EXPECT_EQ(g2->data().ToString(), ChecksummedPage(PagePayload(2, kPayload)));
}

TEST_F(BufferPoolTest, ClockGivesReferencedFramesASecondChance) {
  BufferPoolOptions options;
  options.capacity_bytes = 2 * kPageBytes;
  BufferPool pool(options);
  const uint32_t id = MakePagedFile(&pool, Vfs::Default(), "clock.dat", 4,
                                    kPayload);

  { auto g = pool.Fetch(id, 0); ASSERT_TRUE(g.ok()); }
  { auto g = pool.Fetch(id, 1); ASSERT_TRUE(g.ok()); }
  // Page 2's fill sweeps ref bits off 0 and 1, then takes 0 (hand order).
  { auto g = pool.Fetch(id, 2); ASSERT_TRUE(g.ok()); }
  // Page 3's fill finds 1 unreferenced and 2 freshly referenced: CLOCK's
  // second chance keeps 2 resident and evicts 1.
  { auto g = pool.Fetch(id, 3); ASSERT_TRUE(g.ok()); }

  const uint64_t hits = CounterValue("bufferpool.hit");
  const uint64_t misses = CounterValue("bufferpool.miss");
  { auto g = pool.Fetch(id, 2); ASSERT_TRUE(g.ok()); }
  EXPECT_EQ(CounterValue("bufferpool.hit"), hits + 1);
  EXPECT_EQ(CounterValue("bufferpool.miss"), misses);
  { auto g = pool.Fetch(id, 1); ASSERT_TRUE(g.ok()); }
  EXPECT_EQ(CounterValue("bufferpool.miss"), misses + 1);
}

TEST_F(BufferPoolTest, DirtyPagesWriteBackInOrderAndRereadFromDisk) {
  BufferPoolOptions options;
  options.capacity_bytes = 2 * (1000 + kPageChecksumBytes) + 100;
  BufferPool pool(options);
  auto space = TableSpace::Open(Vfs::Default(), dir_ + "/ts_writeback",
                                &pool);
  ASSERT_TRUE(space.ok());
  auto tf = (*space)->CreateTableFile("wb");
  ASSERT_TRUE(tf.ok());
  TableFile* file = tf->get();

  const uint64_t writebacks = CounterValue("bufferpool.writeback");
  constexpr int kPages = 6;
  for (int i = 0; i < kPages; ++i) {
    auto page_no = file->AppendPage(ChecksummedPage(PagePayload(i, 1000)));
    ASSERT_TRUE(page_no.ok());
    EXPECT_EQ(*page_no, static_cast<uint64_t>(i));
  }
  // The pool holds two pages; sealing six forced the older ones to disk.
  EXPECT_GE(CounterValue("bufferpool.writeback"), writebacks + 4);
  // The write-back WAL records intents ahead of the data appends.
  EXPECT_TRUE(Vfs::Default()->FileExists(dir_ + "/ts_writeback/WAL"));

  // Every page reads back intact — cached tail and evicted head alike.
  for (int i = 0; i < kPages; ++i) {
    auto guard = file->ReadPage(i);
    ASSERT_TRUE(guard.ok()) << guard.status().ToString();
    EXPECT_EQ(guard->data().ToString(),
              ChecksummedPage(PagePayload(i, 1000)));
  }
  // A cold restart of the cache rereads everything from the data file.
  ASSERT_TRUE(pool.EvictAll().ok());
  EXPECT_EQ(pool.frames_cached(), 0u);
  for (int i = 0; i < kPages; ++i) {
    auto guard = file->ReadPage(i);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(guard->data().ToString(),
              ChecksummedPage(PagePayload(i, 1000)));
  }
}

TEST_F(BufferPoolTest, ConcurrentHitStormKeepsFramesConsistent) {
  BufferPoolOptions options;
  options.capacity_bytes = 1 << 20;
  BufferPool pool(options);
  constexpr int kPages = 8;
  const uint32_t id = MakePagedFile(&pool, Vfs::Default(), "storm.dat",
                                    kPages, 512);

  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, id, t, &failures] {
      for (int i = 0; i < kIters; ++i) {
        const int page = (t + i) % kPages;
        auto guard = pool.Fetch(id, page);
        if (!guard.ok() ||
            guard->data()[0] != static_cast<char>('A' + page)) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  // One thread repeatedly empties the cache under the readers' feet:
  // eviction must respect pins and refills must stay consistent.
  threads.emplace_back([&pool, &failures] {
    for (int i = 0; i < 50; ++i) {
      if (!pool.EvictAll().ok()) {
        failures.fetch_add(1);
        return;
      }
    }
  });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(BufferPoolTest, InjectedReadFaultLeavesNoPoisonedFrame) {
  FaultInjectingVfs vfs(Vfs::Default(), FaultPlan{});
  BufferPool pool;
  const uint32_t id = MakePagedFile(&pool, &vfs, "readfault.dat", 2,
                                    kPayload);

  ReadFaultPlan plan;
  plan.kind = ReadFaultPlan::Kind::kFail;
  plan.fail_read_at = vfs.reads_seen();  // the very next pread
  vfs.SetReadFaults(plan);

  auto failed = pool.Fetch(id, 0);
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(vfs.fault_fired());
  // Nothing was cached: a faulted fill must not leave a frame behind.
  EXPECT_EQ(pool.frames_cached(), 0u);
  EXPECT_EQ(pool.bytes_cached(), 0u);

  // The device "recovers" (the plan fires once); the retry fills cleanly.
  auto retried = pool.Fetch(id, 0);
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(retried->data().ToString(),
            ChecksummedPage(PagePayload(0, kPayload)));
}

TEST_F(BufferPoolTest, CorruptedFillSurfacesChecksumCorruption) {
  FaultInjectingVfs vfs(Vfs::Default(), FaultPlan{});
  BufferPool pool;
  const uint32_t id = MakePagedFile(&pool, &vfs, "bitrot.dat", 2, kPayload);

  ReadFaultPlan plan;
  plan.kind = ReadFaultPlan::Kind::kCorrupt;
  plan.fail_read_at = vfs.reads_seen();
  plan.seed = 17;
  vfs.SetReadFaults(plan);

  const uint64_t checksum_failures = CounterValue("bufferpool.checksum_failure");
  auto corrupted = pool.Fetch(id, 0);
  ASSERT_FALSE(corrupted.ok());
  EXPECT_TRUE(corrupted.status().IsCorruption())
      << corrupted.status().ToString();
  EXPECT_EQ(CounterValue("bufferpool.checksum_failure"),
            checksum_failures + 1);
  EXPECT_EQ(pool.frames_cached(), 0u);

  auto retried = pool.Fetch(id, 0);
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(retried->data().ToString(),
            ChecksummedPage(PagePayload(0, kPayload)));
}

}  // namespace
}  // namespace htg::storage
