// Batch/row execution parity: every operator converted to the vectorized
// NextBatch path must produce exactly the rows the legacy row-at-a-time
// path produces. DatabaseOptions::batch_rows = 1 forces the row
// iterators, so each query runs under three engines (row mode, an odd
// batch size, the default 1024) over identically seeded data — with
// NULLs, empty inputs, and row counts straddling the batch boundary.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "genomics/register.h"
#include "sql/engine.h"
#include "types/row_batch.h"

namespace htg {
namespace {

// ------------------------------------------------------------ RowBatch ---

TEST(RowBatchTest, AppendFillAndCapacity) {
  RowBatch batch(4);
  EXPECT_EQ(batch.capacity(), 4u);
  EXPECT_EQ(batch.num_rows(), 0u);
  EXPECT_FALSE(batch.full());
  for (int i = 0; i < 4; ++i) {
    batch.AppendRow(Row{Value::Int64(i), Value::String("r" +
                                                       std::to_string(i))});
  }
  EXPECT_TRUE(batch.full());
  EXPECT_EQ(batch.num_columns(), 2u);
  EXPECT_EQ(batch.ActiveRows(), 4u);
  Row row;
  batch.FillRowAt(2, &row);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0].AsInt64(), 2);
  EXPECT_EQ(row[1].AsString(), "r2");
}

TEST(RowBatchTest, SelectionNarrowsActiveRows) {
  RowBatch batch(8);
  for (int i = 0; i < 8; ++i) batch.AppendRow(Row{Value::Int64(i)});
  batch.SetSelection({1, 4, 6});
  EXPECT_TRUE(batch.has_selection());
  EXPECT_EQ(batch.ActiveRows(), 3u);
  EXPECT_EQ(batch.ActiveIndex(1), 4u);
  Row row;
  batch.FillRow(2, &row);  // active position 2 -> physical row 6
  EXPECT_EQ(row[0].AsInt64(), 6);
  batch.ClearSelection();
  EXPECT_EQ(batch.ActiveRows(), 8u);
  EXPECT_EQ(batch.selection_data(), nullptr);
}

TEST(RowBatchTest, ClearKeepsShapeAndReshapesOnNewArity) {
  RowBatch batch(4);
  batch.AppendRow(Row{Value::Int64(1), Value::Int64(2)});
  batch.Clear();
  EXPECT_EQ(batch.num_rows(), 0u);
  EXPECT_EQ(batch.num_columns(), 2u);  // shape survives Clear()
  // A recycled batch fed by a producer of different arity must reshape,
  // not silently pad or truncate.
  batch.AppendRow(Row{Value::Int64(7), Value::Int64(8), Value::Int64(9)});
  EXPECT_EQ(batch.num_columns(), 3u);
  Row row;
  batch.FillRowAt(0, &row);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[2].AsInt64(), 9);
}

// -------------------------------------------------------------- parity ---

class BatchParityTest : public ::testing::Test {
 protected:
  struct Instance {
    std::unique_ptr<Database> db;
    std::unique_ptr<sql::SqlEngine> engine;
  };

  Instance Make(size_t batch_rows, int max_dop = 0,
                uint64_t parallel_threshold = 0) {
    static int counter = 0;
    DatabaseOptions options;
    options.batch_rows = batch_rows;
    if (max_dop > 0) options.max_dop = max_dop;
    if (parallel_threshold > 0) options.parallel_threshold = parallel_threshold;
    options.filestream_root =
        "/tmp/htg_batch_exec_test_" + std::to_string(counter++);
    auto db = Database::Open("batchtest", options);
    EXPECT_TRUE(db.ok());
    Instance in;
    in.db = std::move(*db);
    EXPECT_TRUE(in.db->filestream()->Clear().ok());
    EXPECT_TRUE(genomics::RegisterGenomicsExtensions(in.db.get()).ok());
    in.engine = std::make_unique<sql::SqlEngine>(in.db.get());
    return in;
  }

  sql::QueryResult Exec(Instance& in, const std::string& query) {
    Result<sql::QueryResult> result = in.engine->Execute(query);
    EXPECT_TRUE(result.ok())
        << query << "\n--> " << result.status().ToString();
    return result.ok() ? std::move(*result) : sql::QueryResult{};
  }

  // Seeds `t(a BIGINT, b VARCHAR(20), c FLOAT)` with n deterministic rows;
  // every 7th b and every 11th c is NULL, and a == 0 appears (the
  // short-circuit division guard needs it).
  void SeedT(Instance& in, int n) {
    Exec(in, "CREATE TABLE t (a BIGINT, b VARCHAR(20), c FLOAT)");
    auto table = in.db->GetTable("t");
    ASSERT_TRUE(table.ok());
    for (int i = 0; i < n; ++i) {
      Row row;
      row.push_back(Value::Int64(i % 97));
      if (i % 7 == 3) {
        row.push_back(Value::Null());
      } else {
        row.push_back(Value::String((i % 3 != 0 ? "ACGT" : "TTNA") +
                                    std::to_string(i % 53)));
      }
      if (i % 11 == 5) {
        row.push_back(Value::Null());
      } else {
        row.push_back(Value::Double(i * 0.5));
      }
      ASSERT_TRUE(in.db->InsertRow(*table, std::move(row)).ok());
    }
  }

  // One line per row; unordered queries compare as sorted multisets.
  static std::string Render(const sql::QueryResult& r, bool sort_lines) {
    std::vector<std::string> lines;
    lines.reserve(r.rows.size());
    for (const Row& row : r.rows) {
      std::string line;
      for (const Value& v : row) {
        line += v.is_null() ? "<null>" : v.ToString();
        line += '|';
      }
      lines.push_back(std::move(line));
    }
    if (sort_lines) std::sort(lines.begin(), lines.end());
    std::string out;
    for (const std::string& line : lines) {
      out += line;
      out += '\n';
    }
    return out;
  }

  // Every converted operator shows up here: scan, filter (with the
  // short-circuit AND divide guard), project (CASE / IS NULL / LIKE),
  // hash aggregate, global aggregate, distinct, sort, top.
  struct ParityQuery {
    const char* sql;
    bool ordered;  // ORDER BY output: compare positionally, not as a set
  };
  static const std::vector<ParityQuery>& Queries() {
    static const std::vector<ParityQuery>* queries =
        new std::vector<ParityQuery>{
            {"SELECT a, b, c FROM t WHERE a >= 40 AND a < 80", false},
            {"SELECT a, CASE WHEN c IS NULL THEN 'nul' WHEN a < 10 "
             "THEN 'small' ELSE 'big' END FROM t",
             false},
            {"SELECT b FROM t WHERE b LIKE 'ACGT%'", false},
            {"SELECT a, c FROM t WHERE b IS NULL", false},
            // AND must not evaluate the division for a == 0 rows.
            {"SELECT a FROM t WHERE a <> 0 AND 100 / a > 1", false},
            {"SELECT a, COUNT(*), SUM(c) FROM t GROUP BY a", false},
            {"SELECT COUNT(*), SUM(a), MIN(b), MAX(c) FROM t", false},
            {"SELECT DISTINCT a FROM t", false},
            {"SELECT a, b, c FROM t ORDER BY a", true},
            {"SELECT TOP 10 a, b, c FROM t ORDER BY a DESC", true},
        };
    return *queries;
  }

  void ExpectParityAt(int n) {
    Instance row_mode = Make(1);
    Instance odd_mode = Make(7);
    Instance batch_mode = Make(1024);
    SeedT(row_mode, n);
    SeedT(odd_mode, n);
    SeedT(batch_mode, n);
    for (const ParityQuery& q : Queries()) {
      const std::string want = Render(Exec(row_mode, q.sql), !q.ordered);
      EXPECT_EQ(want, Render(Exec(odd_mode, q.sql), !q.ordered))
          << "rows=" << n << " batch_rows=7: " << q.sql;
      EXPECT_EQ(want, Render(Exec(batch_mode, q.sql), !q.ordered))
          << "rows=" << n << " batch_rows=1024: " << q.sql;
    }
  }
};

TEST_F(BatchParityTest, EmptyInput) { ExpectParityAt(0); }

TEST_F(BatchParityTest, BatchBoundaryRowCounts) {
  // One row short of a full batch, exactly one batch, one row into the
  // second batch: the classic off-by-one surface of batched producers.
  for (int n : {1023, 1024, 1025}) ExpectParityAt(n);
}

TEST_F(BatchParityTest, CrossApplyTvfSeam) {
  // CROSS APPLY stays row-at-a-time by design (the paper's UDF/TVF
  // boundary); it must still consume batched children losslessly.
  const int n = 1025;
  Instance row_mode = Make(1);
  Instance batch_mode = Make(1024);
  for (Instance* in : {&row_mode, &batch_mode}) {
    Exec(*in,
         "CREATE TABLE aligned (pos BIGINT, seq VARCHAR(10), "
         "quals VARCHAR(10))");
    auto table = in->db->GetTable("aligned");
    ASSERT_TRUE(table.ok());
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(in->db
                      ->InsertRow(*table, Row{Value::Int64(i * 2),
                                              Value::String("ACG"),
                                              Value::String("III")})
                      .ok());
    }
  }
  const std::string query =
      "SELECT pa.pos AS ref_pos, base, qual FROM aligned "
      "CROSS APPLY PivotAlignment(aligned.pos, seq, quals) AS pa";
  EXPECT_EQ(Render(Exec(row_mode, query), true),
            Render(Exec(batch_mode, query), true));
}

TEST_F(BatchParityTest, ParallelPlansAtDop8) {
  // Morsel-driven parallel map and partial/final aggregate pipelines at
  // DOP 8 (parallel_threshold 1 forces the exchange in); run under
  // HTG_SANITIZE=thread via the concurrency ctest label.
  const int n = 3000;
  Instance row_mode = Make(1, /*max_dop=*/8, /*parallel_threshold=*/1);
  Instance batch_mode = Make(1024, /*max_dop=*/8, /*parallel_threshold=*/1);
  SeedT(row_mode, n);
  SeedT(batch_mode, n);
  for (const char* query :
       {"SELECT a, COUNT(*), SUM(c) FROM t GROUP BY a",
        "SELECT a, b FROM t WHERE a >= 10 AND b IS NOT NULL",
        // The second sort key breaks COUNT(*) ties: group order out of the
        // parallel partitioned merge depends on morsel completion order, so
        // without it ROW_NUMBER over tied counts is nondeterministic.
        "SELECT ROW_NUMBER() OVER (ORDER BY COUNT(*) DESC, a) AS rank, "
        "COUNT(*) AS freq, a FROM t GROUP BY a"}) {
    EXPECT_EQ(Render(Exec(row_mode, query), true),
              Render(Exec(batch_mode, query), true))
        << query;
  }
}

TEST_F(BatchParityTest, ExplainAnalyzeReportsBatchSizes) {
  Instance in = Make(1024);
  SeedT(in, 4000);
  Result<sql::QueryResult> result =
      in.engine->Execute("EXPLAIN ANALYZE SELECT a, b, c FROM t "
                         "WHERE a >= 0");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string& plan = result->message;
  const size_t pos = plan.find("rows/batch=");
  ASSERT_NE(pos, std::string::npos) << plan;
  // 4000 rows in 1024-row batches: every batched operator should be
  // moving far more than 256 rows per pull.
  const double rows_per_batch =
      std::strtod(plan.c_str() + pos + std::string("rows/batch=").size(),
                  nullptr);
  EXPECT_GT(rows_per_batch, 256.0) << plan;
}

TEST_F(BatchParityTest, UdfSeamStillCountsPerRowCalls) {
  // Vectorization must stop at the scalar-UDF boundary: CHARINDEX over n
  // rows is n individual udf.scalar.calls ticks (NULL inputs propagate
  // without a call), not one vectorized invocation.
  const int n = 1000;
  Instance in = Make(1024);
  SeedT(in, n);
  uint64_t expected_calls = 0;
  for (int i = 0; i < n; ++i) {
    if (i % 7 != 3) ++expected_calls;  // NULL b rows never reach the UDF
  }
  obs::Counter* calls = HTG_METRIC_COUNTER("udf.scalar.calls");
  const uint64_t before = calls->Value();
  Exec(in, "SELECT CHARINDEX('N', b) FROM t");
  EXPECT_EQ(calls->Value() - before, expected_calls);
}

}  // namespace
}  // namespace htg
