// Transaction and MVCC tests: the TxnManager / MvccTableState storage
// primitives, engine-level BEGIN/COMMIT/ABORT semantics (snapshot reads,
// first-writer-wins conflicts, rollback of heap and clustered tables,
// version GC), and full wire conversations — readers not blocking behind
// an open bulk-load transaction, auto-abort on statement failure with
// the session surviving, implicit abort on client disconnect, and the
// typed rejection of BEGIN when MVCC is disabled.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/database.h"
#include "common/metrics.h"
#include "server/client.h"
#include "server/server.h"
#include "server/session.h"
#include "sql/engine.h"
#include "sql/parser.h"
#include "storage/clustered_table.h"
#include "storage/mvcc.h"

namespace htg {
namespace {

using server::Client;
using server::ClientResult;
using server::Server;
using server::ServerOptions;
using sql::SqlEngine;
using sql::TxnContext;
using storage::kFrozenTxn;
using storage::MvccTableState;
using storage::Snapshot;
using storage::TxnManager;

// ------------------------------------------------------------ TxnManager

TEST(TxnManagerTest, SnapshotExcludesActiveAndSelf) {
  TxnManager txns;
  const auto a = txns.Begin();
  const auto b = txns.Begin();
  // b's snapshot was taken while a was active: a is invisible, and so is
  // b itself (self-visibility is layered on top by the caller).
  EXPECT_FALSE(b.snapshot.Sees(a.id));
  EXPECT_FALSE(b.snapshot.Sees(b.id));
  EXPECT_TRUE(b.snapshot.Sees(kFrozenTxn));
  txns.Commit(a.id);
  // An existing snapshot never changes: a stays invisible to b.
  EXPECT_FALSE(b.snapshot.Sees(a.id));
  // But a fresh snapshot sees the committed a and not the active b.
  const Snapshot fresh = txns.TakeSnapshot();
  EXPECT_TRUE(fresh.Sees(a.id));
  EXPECT_FALSE(fresh.Sees(b.id));
  txns.Commit(b.id);
}

TEST(TxnManagerTest, AbortedStaysInvisibleToNewSnapshots) {
  TxnManager txns;
  const auto a = txns.Begin();
  txns.Abort(a.id);
  EXPECT_TRUE(txns.IsAborted(a.id));
  const Snapshot fresh = txns.TakeSnapshot();
  EXPECT_FALSE(fresh.Sees(a.id));
}

TEST(TxnManagerTest, HorizonHeldBackByOldestSnapshot) {
  TxnManager txns;
  const auto a = txns.Begin();
  const auto b = txns.Begin();
  txns.Commit(b.id);
  // a is still active, so nothing at or above a.id is settled.
  EXPECT_LE(txns.Horizon(), a.id);
  txns.Commit(a.id);
  // Everything allocated so far is now below the horizon.
  EXPECT_GT(txns.Horizon(), b.id);
}

TEST(TxnManagerTest, TrimAbortedBelowDropsSweptIds) {
  TxnManager txns;
  const auto a = txns.Begin();
  txns.Abort(a.id);
  ASSERT_EQ(txns.AbortedSet().size(), 1u);
  txns.TrimAbortedBelow(txns.Horizon());
  EXPECT_TRUE(txns.AbortedSet().empty());
  EXPECT_FALSE(txns.IsAborted(a.id));  // settled history, not "aborted"
}

// -------------------------------------------------------- MvccTableState

TEST(MvccTableStateTest, CommittedWatermarkVisibleToLaterSnapshots) {
  TxnManager txns;
  MvccTableState state;
  const auto writer = txns.Begin();
  const Snapshot before = txns.TakeSnapshot();
  ASSERT_TRUE(state.BeginWrite(writer.id, 0).ok());
  // Mid-write: a reader sees none of the pending rows; the writer sees
  // everything it appended.
  EXPECT_EQ(state.VisibleRows(before, kFrozenTxn, 100), 0u);
  EXPECT_EQ(state.VisibleRows(writer.snapshot, writer.id, 100), 100u);
  state.CommitWrite(writer.id, 100);
  txns.Commit(writer.id);
  // The old snapshot still predates the writer; a fresh one sees it.
  EXPECT_EQ(state.VisibleRows(before, kFrozenTxn, 100), 0u);
  EXPECT_EQ(state.VisibleRows(txns.TakeSnapshot(), kFrozenTxn, 100), 100u);
  EXPECT_EQ(state.LastCommittedWriter(), writer.id);
}

TEST(MvccTableStateTest, AbortTargetWhilePendingThenCollapse) {
  TxnManager txns;
  MvccTableState state;
  const auto w1 = txns.Begin();
  ASSERT_TRUE(state.BeginWrite(w1.id, 10).ok());
  // AbortTarget while pending reports the pre-write row count; the tail
  // stays hidden until AbortWrite clears the pending marker.
  EXPECT_EQ(state.AbortTarget(w1.id), 10u);
  EXPECT_EQ(state.VisibleRows(txns.TakeSnapshot(), kFrozenTxn, 25), 10u);
  EXPECT_EQ(state.AbortWrite(w1.id), 10u);
  txns.Abort(w1.id);

  const auto w2 = txns.Begin();
  ASSERT_TRUE(state.BeginWrite(w2.id, 10).ok());
  state.CommitWrite(w2.id, 40);
  txns.Commit(w2.id);
  // GC: collapsing below the horizon folds the range into frozen rows.
  EXPECT_EQ(state.CollapseBelow(txns.Horizon()), 1u);
  EXPECT_EQ(state.VisibleRows(txns.TakeSnapshot(), kFrozenTxn, 40), 40u);
}

TEST(MvccTableStateTest, UntrackedRowsFoldOnlyWithFullPrefix) {
  TxnManager txns;
  MvccTableState state;
  const auto writer = txns.Begin();
  const Snapshot before = txns.TakeSnapshot();
  ASSERT_TRUE(state.BeginWrite(writer.id, 0).ok());
  state.CommitWrite(writer.id, 50);
  txns.Commit(writer.id);
  // 10 untracked (library-mode) rows appended after the committed 50:
  // visible to snapshots that see the writer, not to older ones (prefix
  // semantics: you cannot see row 51 without seeing rows 0..49).
  EXPECT_EQ(state.VisibleRows(txns.TakeSnapshot(), kFrozenTxn, 60), 60u);
  EXPECT_EQ(state.VisibleRows(before, kFrozenTxn, 60), 0u);
}

// ----------------------------------------------------- clustered GC sweep

TEST(ClusteredSweepTest, SweepRemovesAbortedStampsWithoutDeadRowAccounting) {
  Schema schema;
  schema.AddColumn({.name = "k", .type = DataType::kInt64});
  schema.AddColumn({.name = "v", .type = DataType::kString});
  storage::ClusteredTable table(schema, {0}, storage::Compression::kNone);
  ASSERT_TRUE(table.Insert(Row{Value::Int64(1), Value::String("keep")}).ok());
  // An entry stamped by an aborted txn whose MarkAborted accounting was
  // lost: dead_rows_ is zero, yet the sweep must still remove it — the
  // caller retires the id from the allocator's aborted set right after
  // the sweep, and a leftover entry would resurrect as committed data
  // the moment new snapshots stop recognizing the id as aborted.
  ASSERT_TRUE(table
                  .InsertStamped(Row{Value::Int64(2), Value::String("dead")},
                                 /*txn=*/7)
                  .ok());
  EXPECT_EQ(table.SweepAborted({7}), 1u);
  EXPECT_EQ(table.num_rows(), 1u);
  auto iter = table.NewScan();
  Row row;
  ASSERT_TRUE(iter->Next(&row));
  EXPECT_EQ(row[0].AsInt64(), 1);
  EXPECT_FALSE(iter->Next(&row));
}

// ----------------------------------------------------------- GC cadence

TEST(GcCadenceTest, BatchedCompletionsCountTowardSweepThreshold) {
  DatabaseOptions options;
  options.filestream_root = "/tmp/htg_txn_gc_cadence";
  options.mvcc_gc_every = 4;
  auto db = Database::Open("gccadence", options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  // Three completions the opportunistic trigger has not observed yet:
  // they sit in the TxnManager's since-sweep counter.
  for (int i = 0; i < 3; ++i) {
    const auto t = (*db)->txns()->Begin();
    (*db)->txns()->Commit(t.id);
  }
  const uint64_t before = HTG_METRIC_COUNTER("mvcc.gc.sweeps")->Value();
  // The fourth completion reaches the threshold exactly — the trigger
  // must count the whole batch it just folded in, not "pre-add + 1".
  const auto t = (*db)->txns()->Begin();
  (*db)->txns()->Commit(t.id);
  (*db)->MaybeSweepVersions();
  EXPECT_EQ(HTG_METRIC_COUNTER("mvcc.gc.sweeps")->Value(), before + 1);
}

// ------------------------------------------------------------ engine txn

class TxnEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    DatabaseOptions options;
    options.filestream_root = "/tmp/htg_txn_test_" + std::to_string(counter++);
    auto db = Database::Open("txntest", options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    ASSERT_TRUE(db_->filestream()->Clear().ok());
    engine_ = std::make_unique<SqlEngine>(db_.get());
  }

  sql::QueryResult Exec(const std::string& sqltext, TxnContext* txn = nullptr) {
    sql::StatementOptions opts;
    opts.txn = txn;
    auto r = engine_->Execute(sqltext, opts);
    EXPECT_TRUE(r.ok()) << sqltext << "\n--> " << r.status().ToString();
    return r.ok() ? std::move(*r) : sql::QueryResult{};
  }

  int64_t Count(const std::string& table, TxnContext* txn = nullptr) {
    const sql::QueryResult r = Exec("SELECT COUNT(*) FROM " + table, txn);
    return r.rows.empty() ? -1 : r.rows[0][0].AsInt64();
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<SqlEngine> engine_;
};

TEST_F(TxnEngineTest, SnapshotReaderSeesNoneOfOpenTxnsRows) {
  Exec("CREATE TABLE t (id INT, v INT)");
  Exec("INSERT INTO t VALUES (1, 10), (2, 20)");
  auto txn = engine_->BeginTxn();
  ASSERT_TRUE(txn.ok()) << txn.status().ToString();
  Exec("INSERT INTO t VALUES (3, 30)", txn->get());
  Exec("INSERT INTO t VALUES (4, 40)", txn->get());
  // Autocommit reader: pre-transaction state. The writer: all its rows.
  EXPECT_EQ(Count("t"), 2);
  EXPECT_EQ(Count("t", txn->get()), 4);
  ASSERT_TRUE(engine_->CommitTxn(txn->get()).ok());
  EXPECT_EQ(Count("t"), 4);
}

TEST_F(TxnEngineTest, SnapshotTakenBeforeCommitStaysConsistent) {
  Exec("CREATE TABLE t (id INT, v INT)");
  Exec("INSERT INTO t VALUES (1, 10)");
  auto reader = engine_->BeginTxn();
  ASSERT_TRUE(reader.ok());
  auto writer = engine_->BeginTxn();
  ASSERT_TRUE(writer.ok());
  Exec("INSERT INTO t VALUES (2, 20)", writer->get());
  ASSERT_TRUE(engine_->CommitTxn(writer->get()).ok());
  // The reader's snapshot predates the writer's commit: repeatable reads.
  EXPECT_EQ(Count("t", reader->get()), 1);
  EXPECT_EQ(Count("t"), 2);
  ASSERT_TRUE(engine_->CommitTxn(reader->get()).ok());
}

TEST_F(TxnEngineTest, AbortRollsBackHeapAndClusteredCounts) {
  Exec("CREATE TABLE h (id INT, v INT)");
  Exec("CREATE TABLE c (id INT PRIMARY KEY, v INT)");
  Exec("INSERT INTO h VALUES (1, 10)");
  Exec("INSERT INTO c VALUES (1, 10)");
  auto txn = engine_->BeginTxn();
  ASSERT_TRUE(txn.ok());
  Exec("INSERT INTO h VALUES (2, 20), (3, 30)", txn->get());
  Exec("INSERT INTO c VALUES (2, 20), (3, 30)", txn->get());
  EXPECT_EQ(Count("h", txn->get()), 3);
  EXPECT_EQ(Count("c", txn->get()), 3);
  ASSERT_TRUE(engine_->AbortTxn(txn->get()).ok());
  EXPECT_EQ(Count("h"), 1);
  EXPECT_EQ(Count("c"), 1);
  // The tables stay writable after the rollback.
  Exec("INSERT INTO h VALUES (9, 90)");
  Exec("INSERT INTO c VALUES (9, 90)");
  EXPECT_EQ(Count("h"), 2);
  EXPECT_EQ(Count("c"), 2);
}

TEST_F(TxnEngineTest, FirstWriterWinsConflictIsTypedAborted) {
  Exec("CREATE TABLE t (id INT, v INT)");
  auto a = engine_->BeginTxn();
  auto b = engine_->BeginTxn();
  ASSERT_TRUE(a.ok() && b.ok());
  Exec("INSERT INTO t VALUES (1, 10)", a->get());
  ASSERT_TRUE(engine_->CommitTxn(a->get()).ok());
  // b's snapshot predates a's commit, and a wrote the same table: the
  // first writer won, b must abort rather than write blind.
  sql::StatementOptions opts;
  opts.txn = b->get();
  auto r = engine_->Execute("INSERT INTO t VALUES (2, 20)", opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAborted);
  EXPECT_NE(r.status().message().find("write-write conflict"),
            std::string::npos)
      << r.status().ToString();
  ASSERT_TRUE(engine_->AbortTxn(b->get()).ok());
  EXPECT_EQ(Count("t"), 1);
}

TEST_F(TxnEngineTest, MidStatementFailureInTxnRollsBackOnAbort) {
  Exec("CREATE TABLE h (id INT, v INT)");
  Exec("CREATE TABLE c (id INT PRIMARY KEY, v INT)");
  Exec("INSERT INTO h VALUES (1, 10)");
  Exec("INSERT INTO c VALUES (1, 10)");
  auto txn = engine_->BeginTxn();
  ASSERT_TRUE(txn.ok());
  sql::StatementOptions opts;
  opts.txn = txn->get();
  // The second VALUES row has the wrong arity, so each statement fails
  // after its first row was already inserted — and it is the txn's first
  // (and only) write to that table. ABORT must still find the table,
  // undo the partial row, and clear the pending-writer marker.
  auto h = engine_->Execute("INSERT INTO h VALUES (2, 20), (3)", opts);
  ASSERT_FALSE(h.ok());
  auto c = engine_->Execute("INSERT INTO c VALUES (2, 20), (3)", opts);
  ASSERT_FALSE(c.ok());
  ASSERT_TRUE(engine_->AbortTxn(txn->get()).ok());
  EXPECT_EQ(Count("h"), 1);
  EXPECT_EQ(Count("c"), 1);
  // Both explicit-txn and autocommit writes work again afterwards (a
  // stuck pending marker would fail the former and hide the latter).
  auto txn2 = engine_->BeginTxn();
  ASSERT_TRUE(txn2.ok());
  Exec("INSERT INTO h VALUES (8, 80)", txn2->get());
  Exec("INSERT INTO c VALUES (8, 80)", txn2->get());
  ASSERT_TRUE(engine_->CommitTxn(txn2->get()).ok());
  Exec("INSERT INTO h VALUES (9, 90)");
  Exec("INSERT INTO c VALUES (9, 90)");
  EXPECT_EQ(Count("h"), 3);
  EXPECT_EQ(Count("c"), 3);
  // GC physically removes the aborted clustered entry; counts hold.
  db_->SweepVersions();
  EXPECT_EQ(Count("c"), 3);
  EXPECT_TRUE(db_->txns()->AbortedSet().empty());
}

TEST_F(TxnEngineTest, GcSweepRemovesAbortedClusteredEntries) {
  Exec("CREATE TABLE c (id INT PRIMARY KEY, v INT)");
  Exec("INSERT INTO c VALUES (1, 10)");
  auto txn = engine_->BeginTxn();
  ASSERT_TRUE(txn.ok());
  Exec("INSERT INTO c VALUES (2, 20), (3, 30)", txn->get());
  ASSERT_TRUE(engine_->AbortTxn(txn->get()).ok());
  // The aborted entries are hidden logically; an unconditional sweep
  // removes them physically and retires the aborted id.
  EXPECT_EQ(db_->SweepVersions(), 2u);
  EXPECT_EQ(Count("c"), 1);
  EXPECT_TRUE(db_->txns()->AbortedSet().empty());
  // Idempotent: nothing left to sweep.
  EXPECT_EQ(db_->SweepVersions(), 0u);
}

TEST_F(TxnEngineTest, DdlInsideTxnRejected) {
  auto txn = engine_->BeginTxn();
  ASSERT_TRUE(txn.ok());
  sql::StatementOptions opts;
  opts.txn = txn->get();
  auto r = engine_->Execute("CREATE TABLE t (id INT)", opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(engine_->AbortTxn(txn->get()).ok());
}

TEST_F(TxnEngineTest, BeginTxnFailsWithMvccDisabled) {
  DatabaseOptions options;
  options.enable_mvcc = false;
  options.filestream_root = "/tmp/htg_txn_test_nomvcc";
  auto db = Database::Open("nomvcc", options);
  ASSERT_TRUE(db.ok());
  SqlEngine engine(db->get());
  auto txn = engine.BeginTxn();
  ASSERT_FALSE(txn.ok());
  EXPECT_EQ(txn.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------- lock footprints

TEST(TxnLockFootprintTest, MvccReadersTakeSchemaLocksNotTableLocks) {
  auto stmts = sql::ParseSql("SELECT * FROM t");
  ASSERT_TRUE(stmts.ok());
  const server::LockFootprint fp =
      server::DeriveLockFootprint(*stmts, /*mvcc_snapshots=*/true);
  EXPECT_TRUE(fp.writes.empty());
  // Schema-stability lock + catalog pseudo-lock; no plain "T" read lock,
  // which is exactly why a SELECT cannot block behind a bulk load.
  ASSERT_EQ(fp.reads.size(), 2u);
  EXPECT_EQ(fp.reads[0], std::string("\x02") + "T");
}

TEST(TxnLockFootprintTest, MvccInsertHoldsTableExclusiveAndSchemaShared) {
  auto stmts = sql::ParseSql("INSERT INTO t VALUES (1)");
  ASSERT_TRUE(stmts.ok());
  const server::LockFootprint fp =
      server::DeriveLockFootprint(*stmts, /*mvcc_snapshots=*/true);
  ASSERT_EQ(fp.writes.size(), 1u);
  EXPECT_EQ(fp.writes[0], "T");
  ASSERT_EQ(fp.reads.size(), 2u);
  EXPECT_EQ(fp.reads[0], std::string("\x02") + "T");
}

TEST(TxnLockFootprintTest, MvccTruncateTakesSchemaExclusive) {
  auto stmts = sql::ParseSql("TRUNCATE TABLE t");
  ASSERT_TRUE(stmts.ok());
  const server::LockFootprint fp =
      server::DeriveLockFootprint(*stmts, /*mvcc_snapshots=*/true);
  // Table exclusive + schema exclusive: waits out snapshot scans.
  ASSERT_EQ(fp.writes.size(), 2u);
  EXPECT_EQ(fp.writes[0], "T");
  EXPECT_EQ(fp.writes[1], std::string("\x02") + "T");
}

// ------------------------------------------------------------ wire level

class TxnServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    options_.filestream_root =
        "/tmp/htg_txn_server_test_" + std::to_string(counter++);
  }

  void OpenAndStart(ServerOptions server_options = {}) {
    auto db = Database::Open("txnserver", options_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    ASSERT_TRUE(db_->filestream()->Clear().ok());
    server_ = std::make_unique<Server>(db_.get(), server_options);
    const Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  std::unique_ptr<Client> Connect() {
    auto client = Client::Connect(server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? std::move(*client) : nullptr;
  }

  ClientResult Query(Client* client, const std::string& sqltext) {
    Result<ClientResult> r = client->Query(sqltext);
    EXPECT_TRUE(r.ok()) << sqltext << "\n--> " << r.status().ToString();
    return r.ok() ? std::move(*r) : ClientResult{};
  }

  int64_t Count(Client* client, const std::string& table) {
    const ClientResult r = Query(client, "SELECT COUNT(*) FROM " + table);
    return r.rows.empty() ? -1 : r.rows[0][0].AsInt64();
  }

  DatabaseOptions options_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Server> server_;
};

TEST_F(TxnServerTest, BeginCommitAbortRoundTrip) {
  OpenAndStart();
  std::unique_ptr<Client> c = Connect();
  ASSERT_NE(c, nullptr);
  Query(c.get(), "CREATE TABLE t (id INT, v INT)");

  ASSERT_TRUE(c->Begin().ok());
  Query(c.get(), "INSERT INTO t VALUES (1, 10)");
  ASSERT_TRUE(c->Commit().ok());
  EXPECT_EQ(Count(c.get(), "t"), 1);

  ASSERT_TRUE(c->Begin().ok());
  Query(c.get(), "INSERT INTO t VALUES (2, 20)");
  ASSERT_TRUE(c->Abort().ok());
  EXPECT_EQ(Count(c.get(), "t"), 1);

  // Protocol misuse fails typed without killing the session.
  const Status no_txn = c->Commit();
  ASSERT_FALSE(no_txn.ok());
  EXPECT_EQ(no_txn.code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(c->Begin().ok());
  const Status nested = c->Begin();
  ASSERT_FALSE(nested.ok());
  EXPECT_EQ(nested.code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(c->Abort().ok());
  EXPECT_EQ(Count(c.get(), "t"), 1);
}

TEST_F(TxnServerTest, ReaderDoesNotBlockBehindOpenLoadTxn) {
  // A short lock timeout turns "the reader waited on the loader's table
  // lock" into a hard test failure instead of a slow pass.
  ServerOptions server_options;
  server_options.lock_timeout_ms = 250;
  OpenAndStart(server_options);
  std::unique_ptr<Client> loader = Connect();
  std::unique_ptr<Client> reader = Connect();
  ASSERT_NE(loader, nullptr);
  ASSERT_NE(reader, nullptr);
  Query(loader.get(), "CREATE TABLE reads (id INT, sample VARCHAR(20))");
  Query(loader.get(), "INSERT INTO reads VALUES (1, 'NA12878')");

  ASSERT_TRUE(loader->Begin().ok());
  Query(loader.get(), "INSERT INTO reads VALUES (2, 'NA12891')");
  Query(loader.get(), "INSERT INTO reads VALUES (3, 'NA12892')");
  // The loader holds the table exclusively (write locks to commit), yet
  // the reader completes within the 250 ms lock budget and sees the
  // consistent pre-load snapshot.
  EXPECT_EQ(Count(reader.get(), "reads"), 1);
  ASSERT_TRUE(loader->Commit().ok());
  EXPECT_EQ(Count(reader.get(), "reads"), 3);
}

TEST_F(TxnServerTest, StatementFailureAutoAbortsAndSessionSurvives) {
  OpenAndStart();
  std::unique_ptr<Client> c1 = Connect();
  std::unique_ptr<Client> c2 = Connect();
  ASSERT_NE(c1, nullptr);
  ASSERT_NE(c2, nullptr);
  Query(c1.get(), "CREATE TABLE t (id INT, v INT)");

  ASSERT_TRUE(c1->Begin().ok());
  ASSERT_TRUE(c2->Begin().ok());
  Query(c1.get(), "INSERT INTO t VALUES (1, 10)");
  ASSERT_TRUE(c1->Commit().ok());
  // c2's snapshot predates c1's commit: first-writer-wins aborts c2's
  // insert, typed, and the server auto-aborts the whole transaction.
  auto conflicted = c2->Query("INSERT INTO t VALUES (2, 20)");
  ASSERT_FALSE(conflicted.ok());
  EXPECT_EQ(conflicted.status().code(), StatusCode::kAborted);
  EXPECT_NE(conflicted.status().message().find("transaction aborted"),
            std::string::npos)
      << conflicted.status().ToString();
  // The transaction is gone (auto-aborted) but the session lives on.
  const Status commit_after = c2->Commit();
  ASSERT_FALSE(commit_after.ok());
  EXPECT_EQ(commit_after.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Count(c2.get(), "t"), 1);
}

TEST_F(TxnServerTest, DdlInsideTxnAutoAborts) {
  OpenAndStart();
  std::unique_ptr<Client> c = Connect();
  ASSERT_NE(c, nullptr);
  Query(c.get(), "CREATE TABLE t (id INT, v INT)");
  ASSERT_TRUE(c->Begin().ok());
  Query(c.get(), "INSERT INTO t VALUES (1, 10)");
  auto ddl = c->Query("TRUNCATE TABLE t");
  ASSERT_FALSE(ddl.ok());
  EXPECT_EQ(ddl.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(ddl.status().message().find("transaction aborted"),
            std::string::npos);
  // The insert rolled back with the auto-abort.
  EXPECT_EQ(Count(c.get(), "t"), 0);
}

TEST_F(TxnServerTest, DisconnectMidTxnAbortsAndReleasesLocks) {
  OpenAndStart();
  std::unique_ptr<Client> doomed = Connect();
  std::unique_ptr<Client> survivor = Connect();
  ASSERT_NE(doomed, nullptr);
  ASSERT_NE(survivor, nullptr);
  Query(doomed.get(), "CREATE TABLE t (id INT, v INT)");
  Query(doomed.get(), "INSERT INTO t VALUES (1, 10)");

  ASSERT_TRUE(doomed->Begin().ok());
  Query(doomed.get(), "INSERT INTO t VALUES (2, 20)");
  // Hard disconnect mid-transaction: the session must abort implicitly
  // and release the accumulated table lock.
  doomed->Goodbye();
  doomed.reset();
  for (int i = 0; i < 100 && server_->locks()->LockedTableCount() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server_->locks()->LockedTableCount(), 0u);
  // The write rolled back and the table is immediately writable.
  EXPECT_EQ(Count(survivor.get(), "t"), 1);
  Query(survivor.get(), "INSERT INTO t VALUES (3, 30)");
  EXPECT_EQ(Count(survivor.get(), "t"), 2);
}

TEST_F(TxnServerTest, BeginRejectedTypedWhenMvccDisabled) {
  options_.enable_mvcc = false;
  OpenAndStart();
  std::unique_ptr<Client> c = Connect();
  ASSERT_NE(c, nullptr);
  const Status begin = c->Begin();
  ASSERT_FALSE(begin.ok());
  EXPECT_EQ(begin.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(begin.message().find("MVCC"), std::string::npos);
  // Plain autocommit statements still work without MVCC.
  Query(c.get(), "CREATE TABLE t (id INT)");
  Query(c.get(), "INSERT INTO t VALUES (1)");
  EXPECT_EQ(Count(c.get(), "t"), 1);
}

}  // namespace
}  // namespace htg
