#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "genomics/aligner.h"
#include "genomics/consensus.h"
#include "genomics/nucleotide.h"
#include "genomics/reference.h"
#include "genomics/simulator.h"

namespace htg::genomics {
namespace {

TEST(PivotAlignmentTest, ExplodesReadIntoBases) {
  PivotAlignmentTvf tvf;
  Schema schema = *tvf.BindSchema({});
  EXPECT_EQ(schema.num_columns(), 3);
  auto iter = tvf.Open({Value::Int64(100), Value::String("ACG"),
                        Value::String("I#5")},
                       nullptr);
  ASSERT_TRUE(iter.ok());
  Row row;
  ASSERT_TRUE((*iter)->Next(&row));
  EXPECT_EQ(row[0].AsInt64(), 100);
  EXPECT_EQ(row[1].AsString(), "A");
  EXPECT_EQ(row[2].AsInt64(), CharToPhred('I'));
  ASSERT_TRUE((*iter)->Next(&row));
  EXPECT_EQ(row[0].AsInt64(), 101);
  ASSERT_TRUE((*iter)->Next(&row));
  EXPECT_EQ(row[0].AsInt64(), 102);
  EXPECT_EQ(row[1].AsString(), "G");
  EXPECT_FALSE((*iter)->Next(&row));
}

TEST(CallBaseTest, QualityWeightedVote) {
  CallBaseAggregate agg;
  auto instance = agg.NewInstance();
  // Two low-quality As vs one high-quality C.
  ASSERT_TRUE(
      instance->Accumulate({Value::String("A"), Value::Int32(5)}).ok());
  ASSERT_TRUE(
      instance->Accumulate({Value::String("A"), Value::Int32(5)}).ok());
  ASSERT_TRUE(
      instance->Accumulate({Value::String("C"), Value::Int32(40)}).ok());
  EXPECT_EQ(instance->Terminate()->AsString(), "C");
}

TEST(CallBaseTest, MergeCombinesPartials) {
  CallBaseAggregate agg;
  auto a = agg.NewInstance();
  auto b = agg.NewInstance();
  ASSERT_TRUE(a->Accumulate({Value::String("G"), Value::Int32(10)}).ok());
  ASSERT_TRUE(b->Accumulate({Value::String("G"), Value::Int32(10)}).ok());
  ASSERT_TRUE(b->Accumulate({Value::String("T"), Value::Int32(15)}).ok());
  ASSERT_TRUE(a->Merge(*b).ok());
  EXPECT_EQ(a->Terminate()->AsString(), "G");  // 20 vs 15
}

TEST(CallBaseTest, NsNeverWin) {
  CallBaseAggregate agg;
  auto instance = agg.NewInstance();
  ASSERT_TRUE(
      instance->Accumulate({Value::String("N"), Value::Int32(90)}).ok());
  ASSERT_TRUE(
      instance->Accumulate({Value::String("T"), Value::Int32(1)}).ok());
  EXPECT_EQ(instance->Terminate()->AsString(), "T");
}

TEST(AssembleSequenceTest, OrdersByPositionAndFillsGaps) {
  AssembleSequenceAggregate agg;
  auto instance = agg.NewInstance();
  ASSERT_TRUE(
      instance->Accumulate({Value::Int64(12), Value::String("G")}).ok());
  ASSERT_TRUE(
      instance->Accumulate({Value::Int64(10), Value::String("A")}).ok());
  ASSERT_TRUE(
      instance->Accumulate({Value::Int64(11), Value::String("C")}).ok());
  ASSERT_TRUE(
      instance->Accumulate({Value::Int64(14), Value::String("T")}).ok());
  EXPECT_EQ(instance->Terminate()->AsString(), "ACGNT");
}

TEST(SlidingWindowTest, MatchesNaivePivotConsensus) {
  // Property check: the sliding-window consensus equals the
  // pivot-then-group-then-call consensus on random overlapping reads.
  Random rng(31);
  std::string truth;
  for (int i = 0; i < 400; ++i) truth.push_back(kBases[rng.Uniform(4)]);

  struct Aligned {
    int64_t pos;
    std::string seq;
    std::string qual;
  };
  std::vector<Aligned> alignments;
  for (int64_t pos = 0; pos + 36 <= static_cast<int64_t>(truth.size());
       pos += 7) {
    Aligned a;
    a.pos = pos;
    a.seq = truth.substr(pos, 36);
    a.qual = std::string(36, 'I');
    // Sprinkle a low-quality error.
    if (rng.Bernoulli(0.5)) {
      const size_t i = rng.Uniform(36);
      a.seq[i] = Complement(a.seq[i]);
      a.qual[i] = PhredToChar(2);
    }
    alignments.push_back(std::move(a));
  }

  // Naive: pivot into per-position weighted votes.
  std::map<int64_t, std::array<double, 5>> votes;
  for (const Aligned& a : alignments) {
    for (size_t i = 0; i < a.seq.size(); ++i) {
      const int code = BaseCode(a.seq[i]);
      const int idx = code < 0 ? 4 : code;
      votes[a.pos + i][idx] +=
          std::max(1, CharToPhred(a.qual[i]));
    }
  }
  std::string naive;
  for (const auto& [pos, w] : votes) {
    int best = 4;
    double best_w = 0;
    for (int i = 0; i < 4; ++i) {
      if (w[i] > best_w) {
        best = i;
        best_w = w[i];
      }
    }
    naive.push_back(best < 4 ? kBases[best] : 'N');
  }

  SlidingWindowConsensus window;
  for (const Aligned& a : alignments) window.Add(a.pos, a.seq, a.qual);
  const std::string streamed = window.Finish();

  EXPECT_EQ(streamed, naive);
  // And with high-coverage quality weighting, it recovers the truth prefix.
  EXPECT_EQ(streamed.substr(30, 300), truth.substr(30, 300));
}

TEST(SlidingWindowTest, GapsBecomeNs) {
  SlidingWindowConsensus window;
  window.Add(0, "AC", "II");
  window.Add(5, "GT", "II");
  EXPECT_EQ(window.Finish(), "ACNNNGT");
  EXPECT_EQ(window.start_position(), 0);
}

TEST(AssembleConsensusUdaTest, RequiresOrderedInput) {
  AssembleConsensusAggregate agg;
  auto instance = agg.NewInstance();
  ASSERT_TRUE(instance
                  ->Accumulate({Value::Int64(10), Value::String("ACGT"),
                                Value::String("IIII")})
                  .ok());
  const Status s = instance->Accumulate(
      {Value::Int64(5), Value::String("ACGT"), Value::String("IIII")});
  EXPECT_FALSE(s.ok());
}

TEST(AssembleConsensusUdaTest, MergeUnsupported) {
  AssembleConsensusAggregate agg;
  EXPECT_FALSE(agg.SupportsMerge());
  auto a = agg.NewInstance();
  auto b = agg.NewInstance();
  EXPECT_FALSE(a->Merge(*b).ok());
}

TEST(SnpTest, FindsSubstitutions) {
  const std::string reference = "AAAACCCCGGGGTTTT";
  //                                 ^ pos 4 C→A     ^ pos 12 T→G
  const std::string consensus = "AAAAACCCGGGGGTTT";
  std::vector<Snp> snps = FindSnps(reference, consensus, 0);
  ASSERT_EQ(snps.size(), 2u);
  EXPECT_EQ(snps[0].position, 4);
  EXPECT_EQ(snps[0].reference_base, 'C');
  EXPECT_EQ(snps[0].called_base, 'A');
  EXPECT_EQ(snps[1].position, 12);
}

TEST(SnpTest, NsNotCalled) {
  std::vector<Snp> snps = FindSnps("ACGT", "ANGT", 0);
  EXPECT_TRUE(snps.empty());
}

TEST(SnpTest, OffsetRespected) {
  std::vector<Snp> snps = FindSnps("AAAACCCC", "CC", 4);
  EXPECT_TRUE(snps.empty());
  snps = FindSnps("AAAACCCC", "GG", 4);
  ASSERT_EQ(snps.size(), 2u);
  EXPECT_EQ(snps[0].position, 4);
}

TEST(EndToEndConsensusTest, RecoverConsensusFromSimulatedAlignments) {
  // Simulate 20x coverage of one chromosome, align, consensus-call, and
  // check the call matches the reference away from the edges.
  ReferenceGenome ref = ReferenceGenome::Random(8000, 1, 41);
  SimulatorOptions options;
  options.seed = 42;
  options.base_error_rate = 0.01;
  options.error_rate_slope = 0.0;
  options.n_rate = 0.0;
  ReadSimulator sim(&ref, options);
  const uint64_t num_reads = 8000 * 20 / 36;
  std::vector<ShortRead> reads = sim.SimulateResequencing(num_reads);
  Aligner aligner(&ref, {});
  std::vector<Alignment> alignments = aligner.AlignBatch(reads);
  ASSERT_GT(alignments.size(), num_reads * 8 / 10);

  // Order by position, feed the sliding window with the read's forward
  // sequence (reverse-strand alignments contribute their reverse
  // complement, which is what matched the reference).
  std::sort(alignments.begin(), alignments.end(),
            [](const Alignment& a, const Alignment& b) {
              return a.position < b.position;
            });
  SlidingWindowConsensus window;
  for (const Alignment& a : alignments) {
    const ShortRead& r = reads[a.read_id];
    std::string seq = r.sequence;
    std::string qual = r.quality;
    if (a.reverse_strand) {
      seq = ReverseComplement(seq);
      std::reverse(qual.begin(), qual.end());
    }
    window.Add(a.position, seq, qual);
  }
  const int64_t start = window.start_position();
  const std::string consensus = window.Finish();
  ASSERT_GT(consensus.size(), 7000u);
  // Compare the interior; count disagreements.
  const std::string& truth = ref.chromosome(0).sequence;
  int disagreements = 0;
  int compared = 0;
  for (size_t i = 100; i + 100 < consensus.size(); ++i) {
    const size_t ref_pos = start + i;
    if (ref_pos >= truth.size()) break;
    if (consensus[i] == 'N') continue;
    ++compared;
    if (consensus[i] != truth[ref_pos]) ++disagreements;
  }
  ASSERT_GT(compared, 5000);
  EXPECT_LT(disagreements, compared / 100);  // < 1% residual error at 20x
}

}  // namespace
}  // namespace htg::genomics
