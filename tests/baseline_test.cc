#include <gtest/gtest.h>

#include "baseline/file_pipeline.h"
#include "baseline/script_binning.h"
#include "genomics/gene_expression.h"
#include "genomics/simulator.h"

namespace htg::baseline {
namespace {

using genomics::ReferenceGenome;
using genomics::ShortRead;

TEST(ScriptBinningTest, MatchesInMemoryReference) {
  ReferenceGenome ref = ReferenceGenome::Random(30000, 2, 51);
  genomics::SimulatorOptions options;
  options.seed = 52;
  genomics::ReadSimulator sim(&ref, options);
  genomics::DgeOptions dge;
  dge.num_genes = 100;
  std::vector<ShortRead> reads = sim.SimulateDge(2000, dge);
  const std::string fastq = "/tmp/htg_script_binning.fastq";
  ASSERT_TRUE(genomics::WriteFastqFile(fastq, reads).ok());

  const std::string out = "/tmp/htg_script_binning.txt";
  Result<ScriptBinningReport> report = RunScriptBinning(fastq, out);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->reads_total, 2000u);

  std::vector<genomics::TagCount> expected = genomics::BinUniqueReads(reads);
  EXPECT_EQ(report->unique_tags, expected.size());

  // Output file lines: rank \t freq \t seq.
  FILE* f = fopen(out.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  long long rank, freq;
  char seq[512];
  ASSERT_EQ(fscanf(f, "%lld\t%lld\t%511s", &rank, &freq, seq), 3);
  EXPECT_EQ(rank, 1);
  EXPECT_EQ(freq, expected[0].frequency);
  fclose(f);
}

TEST(ScriptBinningTest, MissingInputFails) {
  EXPECT_FALSE(RunScriptBinning("/nonexistent.fastq", "/tmp/x.txt").ok());
}

class FilePipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ref_ = ReferenceGenome::Random(40000, 2, 61);
    ASSERT_TRUE(ref_.SaveFasta(fasta_).ok());
    genomics::SimulatorOptions options;
    options.seed = 62;
    options.base_error_rate = 0.0;
    options.error_rate_slope = 0.0;
    options.n_rate = 0.0;
    genomics::ReadSimulator sim(&ref_, options);
    reads_ = sim.SimulateResequencing(200);
    ASSERT_TRUE(genomics::WriteFastqFile(fastq_, reads_).ok());
  }

  ReferenceGenome ref_;
  std::vector<ShortRead> reads_;
  const std::string fasta_ = "/tmp/htg_pipeline_ref.fa";
  const std::string fastq_ = "/tmp/htg_pipeline_reads.fastq";
};

TEST_F(FilePipelineTest, BfqRoundTrip) {
  const std::string bfq = "/tmp/htg_pipeline.bfq";
  ASSERT_TRUE(ConvertFastqToBfq(fastq_, bfq).ok());
  Result<std::vector<ShortRead>> loaded = ReadBfq(bfq);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), reads_.size());
  EXPECT_EQ((*loaded)[5].sequence, reads_[5].sequence);
  EXPECT_EQ((*loaded)[5].quality, reads_[5].quality);
  EXPECT_EQ((*loaded)[5].name, reads_[5].name);
}

TEST_F(FilePipelineTest, BfqIsSmallerThanFastq) {
  const std::string bfq = "/tmp/htg_pipeline_size.bfq";
  ASSERT_TRUE(ConvertFastqToBfq(fastq_, bfq).ok());
  FILE* a = fopen(fastq_.c_str(), "rb");
  FILE* b = fopen(bfq.c_str(), "rb");
  fseek(a, 0, SEEK_END);
  fseek(b, 0, SEEK_END);
  const long fastq_size = ftell(a);
  const long bfq_size = ftell(b);
  fclose(a);
  fclose(b);
  EXPECT_LT(bfq_size, fastq_size);
}

TEST_F(FilePipelineTest, BfaRoundTrip) {
  const std::string bfa = "/tmp/htg_pipeline.bfa";
  ASSERT_TRUE(ConvertFastaToBfa(fasta_, bfa).ok());
  Result<ReferenceGenome> loaded = ReadBfa(bfa);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_chromosomes(), 2);
  EXPECT_EQ(loaded->chromosome(0).sequence, ref_.chromosome(0).sequence);
}

TEST_F(FilePipelineTest, FullPipelineProducesAlignments) {
  const std::string bfq = "/tmp/htg_pipe_full.bfq";
  const std::string bfa = "/tmp/htg_pipe_full.bfa";
  const std::string map = "/tmp/htg_pipe_full.map";
  const std::string text = "/tmp/htg_pipe_full.txt";
  ASSERT_TRUE(ConvertFastqToBfq(fastq_, bfq).ok());
  ASSERT_TRUE(ConvertFastaToBfa(fasta_, bfa).ok());
  ASSERT_TRUE(AlignBinary(bfq, bfa, map, {}).ok());
  Result<std::vector<genomics::Alignment>> alignments = ReadMap(map);
  ASSERT_TRUE(alignments.ok());
  EXPECT_EQ(alignments->size(), reads_.size());  // error-free: all align
  ASSERT_TRUE(MapToText(map, text, ref_).ok());
  // Text output is tab-separated with chromosome names.
  FILE* f = fopen(text.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char line[512];
  ASSERT_NE(fgets(line, sizeof(line), f), nullptr);
  EXPECT_NE(std::string(line).find("chr"), std::string::npos);
  fclose(f);
}

}  // namespace
}  // namespace htg::baseline
