#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/guid.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/varint.h"

namespace htg {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing table");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing table");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_EQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_EQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Result<int> Doubled(int v) {
  HTG_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(ResultTest, ValuePath) {
  Result<int> r = Doubled(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, ErrorPath) {
  Result<int> r = Doubled(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(VarintTest, RoundTripBoundaries) {
  const uint64_t values[] = {0,      1,        127,        128,
                             16383,  16384,    1u << 21,   1ull << 35,
                             1ull << 63, ~0ull};
  for (uint64_t v : values) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(v));
    uint64_t decoded = 0;
    const char* end = GetVarint64(buf.data(), buf.data() + buf.size(), &decoded);
    ASSERT_NE(end, nullptr) << v;
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(end, buf.data() + buf.size());
  }
}

TEST(VarintTest, SignedZigZag) {
  const int64_t values[] = {0, -1, 1, -64, 63, -12345678, 12345678,
                            INT64_MIN, INT64_MAX};
  for (int64_t v : values) {
    std::string buf;
    PutVarintSigned64(&buf, v);
    int64_t decoded = 0;
    ASSERT_NE(GetVarintSigned64(buf.data(), buf.data() + buf.size(), &decoded),
              nullptr);
    EXPECT_EQ(decoded, v);
  }
}

TEST(VarintTest, SmallNegativesStayShort) {
  std::string buf;
  PutVarintSigned64(&buf, -2);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(VarintTest, TruncatedInputReturnsNull) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  uint64_t decoded = 0;
  EXPECT_EQ(GetVarint64(buf.data(), buf.data() + 2, &decoded), nullptr);
}

TEST(VarintTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  std::string_view a, b, c;
  const char* p = buf.data();
  const char* limit = buf.data() + buf.size();
  p = GetLengthPrefixed(p, limit, &a);
  ASSERT_NE(p, nullptr);
  p = GetLengthPrefixed(p, limit, &b);
  ASSERT_NE(p, nullptr);
  p = GetLengthPrefixed(p, limit, &c);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c.size(), 1000u);
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a::b:", ':');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, ParseInt64Strict) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-7"), -7);
  EXPECT_FALSE(ParseInt64("42x").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999").ok());
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KiB");
  EXPECT_EQ(HumanBytes(5ull * 1024 * 1024), "5.00 MiB");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
}

TEST(GuidTest, FormatIsCanonical) {
  const std::string g = NewGuid();
  EXPECT_TRUE(IsGuid(g)) << g;
  EXPECT_EQ(g.size(), 36u);
}

TEST(GuidTest, GuidsAreDistinct) {
  std::set<std::string> seen;
  for (int i = 0; i < 100; ++i) seen.insert(NewGuid());
  EXPECT_EQ(seen.size(), 100u);
}

TEST(RandomTest, Deterministic) {
  Random a(7);
  Random b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformInRange) {
  Random rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
}

TEST(RandomTest, ZipfIsSkewed) {
  Random rng(13);
  int rank0 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(1000, 1.1) == 0) ++rank0;
  }
  // Rank 0 should dominate: far more than the uniform 1/1000 share.
  EXPECT_GT(rank0, n / 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndexes) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, NestedParallelForFromPoolTaskDoesNotDeadlock) {
  // Regression: every pool thread blocks inside an outer ParallelFor while
  // each outer iteration issues an inner ParallelFor. With completion
  // waiting on helper *tasks* (which can never be scheduled — all workers
  // are blocked callers) this deadlocked; caller participation makes the
  // nested loops drain on the calling threads themselves.
  ThreadPool pool(2);
  constexpr int kOuter = 8;
  constexpr int kInner = 16;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.ParallelFor(kOuter, [&](int outer) {
    pool.ParallelFor(kInner, [&](int inner) {
      hits[outer * kInner + inner].fetch_add(1);
    });
  });
  for (int i = 0; i < kOuter * kInner; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, ParallelForFromSubmittedTasksDoesNotDeadlock) {
  // Saturate the pool with tasks that each run a ParallelFor: nested use
  // from inside pool tasks must complete even with zero free workers.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int t = 0; t < 8; ++t) {
    pool.Submit([&] { pool.ParallelFor(32, [&](int) { total.fetch_add(1); }); });
  }
  pool.Wait();
  EXPECT_EQ(total.load(), 8 * 32);
}

TEST(ThreadPoolTest, WaitDrainsQueue) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 50);
}

}  // namespace
}  // namespace htg
