#include "genomics/reference.h"

#include "common/string_util.h"
#include "genomics/formats.h"
#include "genomics/nucleotide.h"

namespace htg::genomics {

ReferenceGenome ReferenceGenome::Random(uint64_t total_bases,
                                        int num_chromosomes, uint64_t seed) {
  ::htg::Random rng(seed);
  std::vector<Chromosome> chromosomes;
  chromosomes.reserve(num_chromosomes);
  // Decreasing sizes: chromosome i gets weight (n - i).
  uint64_t weight_sum = 0;
  for (int i = 0; i < num_chromosomes; ++i) weight_sum += num_chromosomes - i;
  for (int i = 0; i < num_chromosomes; ++i) {
    Chromosome chr;
    chr.name = StringPrintf("chr%d", i + 1);
    const uint64_t size =
        std::max<uint64_t>(1000, total_bases * (num_chromosomes - i) /
                                     weight_sum);
    chr.sequence.reserve(size);
    for (uint64_t b = 0; b < size; ++b) {
      chr.sequence.push_back(kBases[rng.Uniform(4)]);
    }
    chromosomes.push_back(std::move(chr));
  }
  return ReferenceGenome(std::move(chromosomes));
}

Result<ReferenceGenome> ReferenceGenome::LoadFasta(const std::string& path) {
  HTG_ASSIGN_OR_RETURN(std::vector<ShortRead> records, ReadFastaFile(path));
  std::vector<Chromosome> chromosomes;
  chromosomes.reserve(records.size());
  for (ShortRead& r : records) {
    chromosomes.push_back({std::move(r.name), std::move(r.sequence)});
  }
  return ReferenceGenome(std::move(chromosomes));
}

Status ReferenceGenome::SaveFasta(const std::string& path) const {
  std::vector<ShortRead> records;
  records.reserve(chromosomes_.size());
  for (const Chromosome& c : chromosomes_) {
    ShortRead r;
    r.name = c.name;
    r.sequence = c.sequence;
    records.push_back(std::move(r));
  }
  return WriteFastaFile(path, records);
}

uint64_t ReferenceGenome::total_bases() const {
  uint64_t total = 0;
  for (const Chromosome& c : chromosomes_) total += c.sequence.size();
  return total;
}

int ReferenceGenome::FindChromosome(std::string_view name) const {
  for (int i = 0; i < num_chromosomes(); ++i) {
    if (chromosomes_[i].name == name) return i;
  }
  return -1;
}

}  // namespace htg::genomics
