#include "genomics/gene_expression.h"

#include <algorithm>
#include <cmath>

#include "genomics/nucleotide.h"

namespace htg::genomics {

std::vector<TagCount> BinUniqueReads(const std::vector<ShortRead>& reads) {
  std::unordered_map<std::string_view, int64_t> counts;
  counts.reserve(reads.size());
  for (const ShortRead& r : reads) {
    if (!IsUnambiguous(r.sequence)) continue;  // CHARINDEX('N', seq) = 0
    ++counts[r.sequence];
  }
  std::vector<TagCount> tags;
  tags.reserve(counts.size());
  for (const auto& [seq, freq] : counts) {
    tags.push_back({std::string(seq), freq, 0});
  }
  std::sort(tags.begin(), tags.end(), [](const TagCount& a, const TagCount& b) {
    if (a.frequency != b.frequency) return a.frequency > b.frequency;
    return a.sequence < b.sequence;
  });
  for (size_t i = 0; i < tags.size(); ++i) {
    tags[i].rank = static_cast<int64_t>(i + 1);
  }
  return tags;
}

std::vector<GeneExpression> AggregateExpression(
    const std::vector<AlignedTag>& alignments) {
  std::unordered_map<int64_t, GeneExpression> by_gene;
  for (const AlignedTag& t : alignments) {
    GeneExpression& g = by_gene[t.gene_id];
    g.gene_id = t.gene_id;
    g.total_frequency += t.frequency;
    g.tag_count += 1;
  }
  std::vector<GeneExpression> out;
  out.reserve(by_gene.size());
  for (auto& [id, g] : by_gene) out.push_back(g);
  std::sort(out.begin(), out.end(),
            [](const GeneExpression& a, const GeneExpression& b) {
              return a.total_frequency > b.total_frequency;
            });
  return out;
}

std::vector<DifferentialExpression> CompareExpression(
    const std::vector<GeneExpression>& sample_a,
    const std::vector<GeneExpression>& sample_b) {
  std::unordered_map<int64_t, std::pair<int64_t, int64_t>> merged;
  int64_t total_a = 0;
  int64_t total_b = 0;
  for (const GeneExpression& g : sample_a) {
    merged[g.gene_id].first += g.total_frequency;
    total_a += g.total_frequency;
  }
  for (const GeneExpression& g : sample_b) {
    merged[g.gene_id].second += g.total_frequency;
    total_b += g.total_frequency;
  }
  if (total_a == 0) total_a = 1;
  if (total_b == 0) total_b = 1;
  std::vector<DifferentialExpression> out;
  out.reserve(merged.size());
  for (const auto& [gene, counts] : merged) {
    DifferentialExpression d;
    d.gene_id = gene;
    d.count_a = counts.first;
    d.count_b = counts.second;
    // Normalized counts with a pseudo-count of 1.
    const double na = (d.count_a + 1.0) / static_cast<double>(total_a);
    const double nb = (d.count_b + 1.0) / static_cast<double>(total_b);
    d.log2_fold_change = std::log2(nb / na);
    // Chi-square against the pooled expectation.
    const double pooled =
        static_cast<double>(d.count_a + d.count_b) / (total_a + total_b);
    const double expect_a = pooled * total_a;
    const double expect_b = pooled * total_b;
    if (expect_a > 0 && expect_b > 0) {
      d.chi_square = (d.count_a - expect_a) * (d.count_a - expect_a) / expect_a +
                     (d.count_b - expect_b) * (d.count_b - expect_b) / expect_b;
    }
    out.push_back(d);
  }
  std::sort(out.begin(), out.end(),
            [](const DifferentialExpression& a,
               const DifferentialExpression& b) {
              return a.chi_square > b.chi_square;
            });
  return out;
}

}  // namespace htg::genomics
