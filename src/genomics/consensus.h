#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "udf/function.h"

namespace htg::genomics {

// PivotAlignment(pos, seq, quals): table-valued function that explodes one
// aligned read into (position, base, qual) tuples — the conceptually clean
// but intermediate-result-heavy building block of the paper's Query 3.
class PivotAlignmentTvf : public udf::TableFunction {
 public:
  std::string_view name() const override { return "PivotAlignment"; }
  Result<Schema> BindSchema(const std::vector<Value>& args) const override;
  Result<std::unique_ptr<storage::RowIterator>> Open(
      const std::vector<Value>& args, Database* db) const override;
};

// CallBase(base, qual): user-defined aggregate that calls the consensus
// base for one reference position, weighting votes by Phred quality.
// Merge-able, so it parallelizes like a built-in aggregate.
class CallBaseAggregate : public udf::AggregateFunction {
 public:
  std::string_view name() const override { return "CallBase"; }
  int min_args() const override { return 2; }
  int max_args() const override { return 2; }
  DataType result_type(const std::vector<DataType>&) const override {
    return DataType::kString;
  }
  std::unique_ptr<udf::AggregateInstance> NewInstance() const override;
};

// AssembleSequence(pos, base): user-defined aggregate concatenating called
// bases in position order into the consensus sequence.
class AssembleSequenceAggregate : public udf::AggregateFunction {
 public:
  std::string_view name() const override { return "AssembleSequence"; }
  int min_args() const override { return 2; }
  int max_args() const override { return 2; }
  DataType result_type(const std::vector<DataType>&) const override {
    return DataType::kString;
  }
  std::unique_ptr<udf::AggregateInstance> NewInstance() const override;
};

// AssembleConsensus(pos, seq, quals): the paper's proposed optimization —
// one sliding-window aggregate that consumes alignments in ascending
// position order and emits the consensus without pivoting. Columns left
// of the current alignment's start can no longer change and are flushed
// eagerly, so the internal state stays proportional to read length, not
// chromosome length. Not mergeable (partition borders overlap, the issue
// the paper discusses), so plans over it stay serial.
class AssembleConsensusAggregate : public udf::AggregateFunction {
 public:
  std::string_view name() const override { return "AssembleConsensus"; }
  int min_args() const override { return 3; }
  int max_args() const override { return 3; }
  DataType result_type(const std::vector<DataType>&) const override {
    return DataType::kString;
  }
  bool SupportsMerge() const override { return false; }
  std::unique_ptr<udf::AggregateInstance> NewInstance() const override;
};

// Plain-C++ consensus caller used by tests and baselines: feeds
// (position, seq, quals) alignments (sorted by position) through the same
// sliding-window logic and returns the consensus string starting at the
// first covered position.
class SlidingWindowConsensus {
 public:
  void Add(int64_t position, std::string_view seq, std::string_view quals);
  // Flushes the remaining window and returns the consensus.
  std::string Finish();

  int64_t start_position() const { return start_; }

 private:
  void FlushBefore(int64_t position);

  struct Weights {
    double w[5] = {0, 0, 0, 0, 0};  // A C G T N
  };
  std::deque<Weights> window_;
  int64_t window_start_ = -1;
  int64_t start_ = -1;
  std::string out_;
};

// A single nucleotide polymorphism found by comparing a consensus against
// the reference (the 1000 Genomes tertiary analysis).
struct Snp {
  int64_t position = 0;  // 0-based within the chromosome
  char reference_base = 'N';
  char called_base = 'N';
};

// Reports positions where `consensus` (aligned at `offset` within
// `reference`) disagrees with the reference. 'N's are not called.
std::vector<Snp> FindSnps(std::string_view reference,
                          std::string_view consensus, int64_t offset);

}  // namespace htg::genomics

