#include "genomics/nucleotide.h"

#include <cmath>

namespace htg::genomics {

int BaseCode(char base) {
  switch (base) {
    case 'A':
    case 'a':
      return 0;
    case 'C':
    case 'c':
      return 1;
    case 'G':
    case 'g':
      return 2;
    case 'T':
    case 't':
      return 3;
    default:
      return -1;
  }
}

char CodeBase(int code) {
  return (code >= 0 && code < kNumBases) ? kBases[code] : 'N';
}

char Complement(char base) {
  switch (base) {
    case 'A':
      return 'T';
    case 'C':
      return 'G';
    case 'G':
      return 'C';
    case 'T':
      return 'A';
    case 'a':
      return 't';
    case 'c':
      return 'g';
    case 'g':
      return 'c';
    case 't':
      return 'a';
    default:
      return 'N';
  }
}

std::string ReverseComplement(std::string_view seq) {
  std::string out;
  out.reserve(seq.size());
  for (size_t i = seq.size(); i > 0; --i) {
    out.push_back(Complement(seq[i - 1]));
  }
  return out;
}

bool IsUnambiguous(std::string_view seq) {
  for (char c : seq) {
    if (BaseCode(c) < 0) return false;
  }
  return true;
}

char PhredToChar(int phred) {
  if (phred < 0) phred = 0;
  if (phred > kMaxPhred) phred = kMaxPhred;
  return static_cast<char>(phred + kPhredOffset);
}

int CharToPhred(char c) {
  const int q = static_cast<unsigned char>(c) - kPhredOffset;
  return q < 0 ? 0 : q;
}

double PhredToErrorProbability(int phred) {
  return std::pow(10.0, -phred / 10.0);
}

int ErrorProbabilityToPhred(double p) {
  if (p <= 0) return kMaxPhred;
  const int q = static_cast<int>(std::lround(-10.0 * std::log10(p)));
  return q < 0 ? 0 : (q > kMaxPhred ? kMaxPhred : q);
}

}  // namespace htg::genomics
