#include "genomics/aligner.h"

#include <algorithm>

#include "genomics/nucleotide.h"

namespace htg::genomics {

Aligner::Aligner(const ReferenceGenome* reference, AlignerOptions options)
    : reference_(reference), options_(options) {
  if (options_.seed_length > 31) options_.seed_length = 31;
  BuildIndex();
}

bool Aligner::EncodeKmer(const char* seq, int len, uint64_t* kmer) {
  uint64_t k = 0;
  for (int i = 0; i < len; ++i) {
    const int code = BaseCode(seq[i]);
    if (code < 0) return false;
    k = (k << 2) | static_cast<uint64_t>(code);
  }
  *kmer = k;
  return true;
}

void Aligner::BuildIndex() {
  const int k = options_.seed_length;
  for (int c = 0; c < reference_->num_chromosomes(); ++c) {
    const std::string& seq = reference_->chromosome(c).sequence;
    if (static_cast<int>(seq.size()) < k) continue;
    for (size_t pos = 0; pos + k <= seq.size(); ++pos) {
      uint64_t kmer = 0;
      if (!EncodeKmer(seq.data() + pos, k, &kmer)) continue;
      seed_index_[kmer].push_back({c, static_cast<int64_t>(pos)});
    }
  }
}

void Aligner::Verify(const std::string& seq, const std::string& qual,
                     const Candidate& cand, bool reverse, Alignment* best,
                     Alignment* second) const {
  const std::string& ref = reference_->chromosome(cand.chromosome).sequence;
  const size_t len = seq.size();
  if (cand.position < 0 ||
      cand.position + static_cast<int64_t>(len) >
          static_cast<int64_t>(ref.size())) {
    return;
  }
  int mismatches = 0;
  int quality_score = 0;
  for (size_t i = 0; i < len; ++i) {
    const char read_base = seq[i];
    const char ref_base = ref[cand.position + i];
    if (BaseCode(read_base) < 0) continue;  // N never counts as a mismatch
    if (read_base != ref_base) {
      ++mismatches;
      quality_score += qual.empty() ? 30 : CharToPhred(qual[i]);
      if (mismatches > options_.max_mismatches) return;
    }
  }
  Alignment candidate;
  candidate.chromosome = cand.chromosome;
  candidate.position = cand.position;
  candidate.reverse_strand = reverse;
  candidate.mismatches = mismatches;
  candidate.quality_score = quality_score;
  // Keep the two best-scoring hits (lowest summed mismatch quality).
  auto better = [](const Alignment& a, const Alignment& b) {
    if (a.quality_score != b.quality_score) {
      return a.quality_score < b.quality_score;
    }
    return a.mismatches < b.mismatches;
  };
  if (best->chromosome < 0 || better(candidate, *best)) {
    *second = *best;
    *best = candidate;
  } else if (second->chromosome < 0 || better(candidate, *second)) {
    *second = candidate;
  }
}

Result<Alignment> Aligner::AlignRead(const ShortRead& read) const {
  const int k = options_.seed_length;
  if (static_cast<int>(read.sequence.size()) < k) {
    return Status::InvalidArgument("read shorter than seed length");
  }
  Alignment best;
  Alignment second;

  auto probe = [&](const std::string& seq, const std::string& qual,
                   bool reverse) {
    uint64_t kmer = 0;
    if (!EncodeKmer(seq.data(), k, &kmer)) return;  // N in the seed
    auto it = seed_index_.find(kmer);
    if (it == seed_index_.end()) return;
    for (const Candidate& cand : it->second) {
      Verify(seq, qual, cand, reverse, &best, &second);
    }
  };

  probe(read.sequence, read.quality, false);
  if (options_.align_reverse) {
    std::string rc_seq = ReverseComplement(read.sequence);
    std::string rc_qual(read.quality.rbegin(), read.quality.rend());
    probe(rc_seq, rc_qual, true);
  }

  if (best.chromosome < 0) {
    return Status::NotFound("read does not align");
  }
  // Mapping quality: margin between best and second-best scores, capped.
  if (second.chromosome < 0) {
    best.mapping_quality = 60;
  } else {
    const int margin = second.quality_score - best.quality_score;
    best.mapping_quality = std::min(60, std::max(0, margin));
  }
  return best;
}

std::vector<Alignment> Aligner::AlignBatch(const std::vector<ShortRead>& reads,
                                           int64_t first_id) const {
  std::vector<Alignment> alignments;
  alignments.reserve(reads.size());
  for (size_t i = 0; i < reads.size(); ++i) {
    Result<Alignment> a = AlignRead(reads[i]);
    if (!a.ok()) continue;
    a->read_id = first_id + static_cast<int64_t>(i);
    alignments.push_back(std::move(*a));
  }
  return alignments;
}

}  // namespace htg::genomics
