#pragma once

#include <memory>

#include "udf/function.h"

namespace htg::genomics {

// AlignReads(sample, lane, reference_fasta [, max_mismatches]):
// in-database short-read alignment — the §6.1 direction of integrating
// MAQ-style alignment into the engine. Streams the lane's FileStream FASTQ
// through the aligner against the given reference, emitting one row per
// aligned read:
//
//   (read_name, chromosome, position BIGINT, reverse_strand BIT,
//    mismatches INT, mapq INT)
//
// so Phase-2 analysis becomes a FROM-clause citizen:
//
//   INSERT INTO Alignment
//   SELECT ... FROM AlignReads(855, 1, '/ref/human.fa', 2)
//
// The reference k-mer index is built at Open() and cached per reference
// path for the lifetime of the process (indexing dominates otherwise).
class AlignReadsTvf : public udf::TableFunction {
 public:
  std::string_view name() const override { return "AlignReads"; }
  Result<Schema> BindSchema(const std::vector<Value>& args) const override;
  Result<std::unique_ptr<storage::RowIterator>> Open(
      const std::vector<Value>& args, Database* db) const override;
};

}  // namespace htg::genomics

