#include "genomics/srf.h"

#include <cmath>
#include <cstring>

#include "catalog/database.h"
#include "common/random.h"
#include "common/varint.h"
#include "genomics/nucleotide.h"
#include "storage/vfs.h"

namespace htg::genomics {

namespace {

void PutFloat(std::string* dst, float v) {
  char buf[4];
  memcpy(buf, &v, 4);
  dst->append(buf, 4);
}

const char* GetFloat(const char* p, const char* limit, float* v) {
  if (limit - p < 4) return nullptr;
  memcpy(v, p, 4);
  return p + 4;
}

void EncodeRecord(const SrfRecord& record, std::string* out) {
  PutLengthPrefixed(out, record.read.name);
  PutLengthPrefixed(out, record.read.sequence);
  PutLengthPrefixed(out, record.read.quality);
  PutFloat(out, record.signal_to_noise);
  PutVarint64(out, record.intensities.size());
  for (float f : record.intensities) PutFloat(out, f);
}

const char* DecodeRecord(const char* p, const char* limit, SrfRecord* out) {
  std::string_view name, seq, qual;
  p = GetLengthPrefixed(p, limit, &name);
  if (p == nullptr) return nullptr;
  p = GetLengthPrefixed(p, limit, &seq);
  if (p == nullptr) return nullptr;
  p = GetLengthPrefixed(p, limit, &qual);
  if (p == nullptr) return nullptr;
  p = GetFloat(p, limit, &out->signal_to_noise);
  if (p == nullptr) return nullptr;
  uint64_t n = 0;
  p = GetVarint64(p, limit, &n);
  if (p == nullptr) return nullptr;
  out->intensities.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    p = GetFloat(p, limit, &out->intensities[i]);
    if (p == nullptr) return nullptr;
  }
  out->read.name = std::string(name);
  out->read.sequence = std::string(seq);
  out->read.quality = std::string(qual);
  return p;
}

}  // namespace

Status WriteSrfFile(const std::string& path,
                    const std::vector<SrfRecord>& records) {
  std::string out(kSrfMagic, sizeof(kSrfMagic));
  PutVarint64(&out, records.size());
  for (const SrfRecord& r : records) EncodeRecord(r, &out);
  return storage::WriteFileAtomic(storage::Vfs::Default(), path, out);
}

Result<std::vector<SrfRecord>> ReadSrfFile(const std::string& path) {
  HTG_ASSIGN_OR_RETURN(std::string data,
                       storage::Vfs::Default()->ReadFileToString(path));
  if (data.size() < sizeof(kSrfMagic) ||
      memcmp(data.data(), kSrfMagic, sizeof(kSrfMagic)) != 0) {
    return Status::Corruption("not an SRF container: " + path);
  }
  const char* p = data.data() + sizeof(kSrfMagic);
  const char* limit = data.data() + data.size();
  uint64_t count = 0;
  p = GetVarint64(p, limit, &count);
  if (p == nullptr) return Status::Corruption("bad SRF header");
  std::vector<SrfRecord> records;
  records.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SrfRecord record;
    p = DecodeRecord(p, limit, &record);
    if (p == nullptr) return Status::Corruption("truncated SRF record");
    records.push_back(std::move(record));
  }
  return records;
}

std::vector<SrfRecord> AttachSrfSignals(const std::vector<ShortRead>& reads,
                                        uint64_t seed) {
  Random rng(seed);
  std::vector<SrfRecord> records;
  records.reserve(reads.size());
  for (const ShortRead& read : reads) {
    SrfRecord record;
    record.read = read;
    record.intensities.reserve(read.sequence.size());
    double snr_accum = 0;
    for (size_t i = 0; i < read.sequence.size(); ++i) {
      const int phred =
          i < read.quality.size() ? CharToPhred(read.quality[i]) : 20;
      // Intensity roughly exponential in quality, with multiplicative
      // noise — the flavour of raw Illumina channel intensities.
      const float intensity = static_cast<float>(
          std::pow(10.0, phred / 20.0) * (0.8 + 0.4 * rng.NextDouble()));
      record.intensities.push_back(intensity);
      snr_accum += phred;
    }
    record.signal_to_noise = static_cast<float>(
        read.sequence.empty() ? 0.0 : snr_accum / read.sequence.size() / 4.0);
    records.push_back(std::move(record));
  }
  return records;
}

namespace {

// Streams an SRF FileStream BLOB record by record with the Fig. 5 chunk
// pager (records are length-delimited, so paging needs only "retry when
// DecodeRecord hits the buffer end").
class SrfStreamIterator : public storage::RowIterator {
 public:
  SrfStreamIterator(std::unique_ptr<storage::FileStreamReader> stream,
                    size_t chunk_bytes)
      : stream_(std::move(stream)) {
    buffer_.resize(std::max<size_t>(chunk_bytes, 4096));
  }

  bool Next(Row* row) override {
    if (!status_.ok()) return false;
    if (!header_done_ && !ReadHeader()) return false;
    if (emitted_ >= record_count_) return false;
    SrfRecord record;
    for (;;) {
      const char* p = buffer_.data() + buffer_pos_;
      const char* end = DecodeRecord(p, buffer_.data() + buffer_filled_,
                                     &record);
      if (end != nullptr) {
        buffer_pos_ = end - buffer_.data();
        break;
      }
      if (!ReadChunk()) {
        if (status_.ok()) {
          status_ = Status::Corruption("truncated SRF stream");
        }
        return false;
      }
    }
    ++emitted_;
    double avg_intensity = 0;
    for (float f : record.intensities) avg_intensity += f;
    if (!record.intensities.empty()) {
      avg_intensity /= record.intensities.size();
    }
    row->clear();
    row->push_back(Value::String(std::move(record.read.name)));
    row->push_back(Value::String(std::move(record.read.sequence)));
    row->push_back(Value::String(std::move(record.read.quality)));
    row->push_back(Value::Double(avg_intensity));
    row->push_back(Value::Double(record.signal_to_noise));
    return true;
  }

  Status status() const override { return status_; }

 private:
  bool ReadHeader() {
    while (buffer_filled_ < sizeof(kSrfMagic) + 10) {
      if (!ReadChunk()) break;
    }
    if (buffer_filled_ < sizeof(kSrfMagic) ||
        memcmp(buffer_.data(), kSrfMagic, sizeof(kSrfMagic)) != 0) {
      status_ = Status::Corruption("not an SRF container");
      return false;
    }
    const char* p = GetVarint64(buffer_.data() + sizeof(kSrfMagic),
                                buffer_.data() + buffer_filled_,
                                &record_count_);
    if (p == nullptr) {
      status_ = Status::Corruption("bad SRF header");
      return false;
    }
    buffer_pos_ = p - buffer_.data();
    header_done_ = true;
    return true;
  }

  bool ReadChunk() {
    const size_t tail = buffer_filled_ - buffer_pos_;
    if (tail > 0 && buffer_pos_ > 0) {
      memmove(buffer_.data(), buffer_.data() + buffer_pos_, tail);
    }
    buffer_pos_ = 0;
    buffer_filled_ = tail;
    if (buffer_filled_ == buffer_.size()) buffer_.resize(buffer_.size() * 2);
    Result<size_t> n = stream_->GetBytes(
        file_pos_, buffer_.data() + buffer_filled_,
        buffer_.size() - buffer_filled_);
    if (!n.ok()) {
      status_ = n.status();
      return false;
    }
    if (*n == 0) return false;
    file_pos_ += *n;
    buffer_filled_ += *n;
    return true;
  }

  std::unique_ptr<storage::FileStreamReader> stream_;
  std::string buffer_;
  size_t buffer_pos_ = 0;
  size_t buffer_filled_ = 0;
  uint64_t file_pos_ = 0;
  bool header_done_ = false;
  uint64_t record_count_ = 0;
  uint64_t emitted_ = 0;
  Status status_;
};

}  // namespace

Result<Schema> ReadSrfFileTvf::BindSchema(const std::vector<Value>&) const {
  Schema schema;
  schema.AddColumn({.name = "read_name", .type = DataType::kString});
  schema.AddColumn({.name = "short_read_seq", .type = DataType::kString});
  schema.AddColumn({.name = "quality", .type = DataType::kString});
  schema.AddColumn({.name = "avg_intensity", .type = DataType::kDouble});
  schema.AddColumn({.name = "snr", .type = DataType::kDouble});
  return schema;
}

Result<std::unique_ptr<storage::RowIterator>> ReadSrfFileTvf::Open(
    const std::vector<Value>& args, Database* db) const {
  if (args.empty() || args[0].is_null()) {
    return Status::InvalidArgument("ReadSrfFile(path [, chunk_kb])");
  }
  if (db == nullptr) return Status::ExecError("no database");
  size_t chunk = 64 * 1024;
  if (args.size() > 1 && !args[1].is_null()) {
    chunk = static_cast<size_t>(args[1].AsInt64()) * 1024;
  }
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::FileStreamReader> stream,
                       db->filestream()->OpenStream(args[0].AsString()));
  return {std::make_unique<SrfStreamIterator>(std::move(stream), chunk)};
}

}  // namespace htg::genomics
