#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "genomics/formats.h"
#include "genomics/reference.h"

namespace htg::genomics {

// One alignment of a short read against the reference (level-2 data).
struct Alignment {
  int64_t read_id = -1;  // caller-assigned id of the aligned read
  int chromosome = -1;
  int64_t position = -1;  // 0-based position of the read's first base
  bool reverse_strand = false;
  int mismatches = 0;
  // MAQ-style mapping quality: confidence that this is the true origin.
  int mapping_quality = 0;
  // Sum of Phred qualities at mismatching positions (the alignment score
  // MAQ minimizes).
  int quality_score = 0;
};

struct AlignerOptions {
  int seed_length = 18;    // exact-match seed (MAQ seeds the first 28 bp)
  int max_mismatches = 2;  // per full read
  bool align_reverse = true;
};

// A hash-seeded, quality-aware ungapped short-read aligner: the engine's
// stand-in for MAQ (see DESIGN.md substitutions). The reference is indexed
// by k-mer; each read's leading seed proposes candidate positions that are
// verified base-by-base with at most `max_mismatches` mismatches; the
// candidate minimizing the summed Phred quality at mismatching positions
// wins, and the margin to the runner-up yields the mapping quality.
class Aligner {
 public:
  Aligner(const ReferenceGenome* reference, AlignerOptions options);

  // Aligns one read (sequence + ASCII qualities). Returns the best
  // alignment, or NotFound when nothing aligns within the thresholds.
  Result<Alignment> AlignRead(const ShortRead& read) const;

  // Aligns a batch, assigning read ids [first_id, first_id + n). Unaligned
  // reads are skipped (typical pipelines drop them).
  std::vector<Alignment> AlignBatch(const std::vector<ShortRead>& reads,
                                    int64_t first_id = 0) const;

  const AlignerOptions& options() const { return options_; }
  size_t index_size() const { return seed_index_.size(); }

 private:
  void BuildIndex();
  // Encodes `len` bases at `seq` as a 2-bit k-mer; false if an N occurs.
  static bool EncodeKmer(const char* seq, int len, uint64_t* kmer);

  struct Candidate {
    int chromosome;
    int64_t position;
  };

  void Verify(const std::string& seq, const std::string& qual,
              const Candidate& cand, bool reverse, Alignment* best,
              Alignment* second) const;

  const ReferenceGenome* reference_;
  AlignerOptions options_;
  // k-mer -> positions (chromosome, offset) where it occurs.
  std::unordered_map<uint64_t, std::vector<Candidate>> seed_index_;
};

}  // namespace htg::genomics

