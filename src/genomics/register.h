#pragma once

#include "catalog/database.h"

namespace htg::genomics {

// Installs the genomics "assembly" into a database — the equivalent of
// CREATE ASSEMBLY + CREATE FUNCTION for the paper's CLR extensions:
//
//  scalar UDFs : PACK_DNA, UNPACK_DNA, DNA_LENGTH, REVCOMP, PHRED_AVG,
//                PATHNAME
//  TVFs        : ListShortReads, ReadFastqFile, ReadFastaFile,
//                PivotAlignment
//  UDAs        : CallBase, AssembleSequence, AssembleConsensus
Status RegisterGenomicsExtensions(Database* db);

}  // namespace htg::genomics

