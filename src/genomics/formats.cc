#include "genomics/formats.h"

#include "common/string_util.h"
#include "storage/vfs.h"

namespace htg::genomics {

std::string FormatReadName(const ReadCoordinates& coords) {
  return StringPrintf("%s_%d:%d:%d:%d:%d", coords.machine.c_str(),
                      coords.flowcell, coords.lane, coords.tile, coords.x,
                      coords.y);
}

Result<ReadCoordinates> ParseReadName(const std::string& name) {
  const size_t underscore = name.find('_');
  if (underscore == std::string::npos) {
    return Status::InvalidArgument("read name missing machine prefix: " +
                                   name);
  }
  ReadCoordinates coords;
  coords.machine = name.substr(0, underscore);
  const std::vector<std::string_view> parts =
      Split(std::string_view(name).substr(underscore + 1), ':');
  if (parts.size() != 5) {
    return Status::InvalidArgument("read name needs 5 coordinates: " + name);
  }
  HTG_ASSIGN_OR_RETURN(int64_t flowcell, ParseInt64(parts[0]));
  HTG_ASSIGN_OR_RETURN(int64_t lane, ParseInt64(parts[1]));
  HTG_ASSIGN_OR_RETURN(int64_t tile, ParseInt64(parts[2]));
  HTG_ASSIGN_OR_RETURN(int64_t x, ParseInt64(parts[3]));
  HTG_ASSIGN_OR_RETURN(int64_t y, ParseInt64(parts[4]));
  coords.flowcell = static_cast<int>(flowcell);
  coords.lane = static_cast<int>(lane);
  coords.tile = static_cast<int>(tile);
  coords.x = static_cast<int>(x);
  coords.y = static_cast<int>(y);
  return coords;
}

namespace {

// Finds the next '\n' at or after `pos`; npos if none.
size_t FindNewline(const char* buffer, size_t size, size_t pos) {
  for (size_t i = pos; i < size; ++i) {
    if (buffer[i] == '\n') return i;
  }
  return static_cast<size_t>(-1);
}

std::string_view LineAt(const char* buffer, size_t begin, size_t end) {
  // Trim a trailing '\r' (Windows line endings).
  if (end > begin && buffer[end - 1] == '\r') --end;
  return std::string_view(buffer + begin, end - begin);
}

}  // namespace

bool FastqChunkParser::ParseRecord(const char* buffer, size_t size,
                                   size_t* pos, ShortRead* out) {
  size_t p = *pos;
  // Skip blank lines between records.
  while (p < size && (buffer[p] == '\n' || buffer[p] == '\r')) ++p;
  if (p >= size) return false;

  // Line 1: @name
  const size_t l1 = FindNewline(buffer, size, p);
  if (l1 == static_cast<size_t>(-1)) return false;
  std::string_view name_line = LineAt(buffer, p, l1);
  if (name_line.empty() || name_line[0] != '@') {
    status_ = Status::Corruption("FASTQ record does not start with '@'");
    return false;
  }
  // Line 2: sequence
  const size_t l2 = FindNewline(buffer, size, l1 + 1);
  if (l2 == static_cast<size_t>(-1)) return false;
  std::string_view seq = LineAt(buffer, l1 + 1, l2);
  // Line 3: + comment
  const size_t l3 = FindNewline(buffer, size, l2 + 1);
  if (l3 == static_cast<size_t>(-1)) return false;
  std::string_view plus = LineAt(buffer, l2 + 1, l3);
  if (plus.empty() || plus[0] != '+') {
    status_ = Status::Corruption("FASTQ record missing '+' separator");
    return false;
  }
  // Line 4: qualities. May be the last line of the file without '\n'.
  size_t l4 = FindNewline(buffer, size, l3 + 1);
  bool last_line = false;
  if (l4 == static_cast<size_t>(-1)) {
    // Complete only if the qualities already span the sequence length —
    // otherwise more bytes may follow in the next chunk.
    if (size - (l3 + 1) < seq.size()) return false;
    l4 = size;
    last_line = true;
  }
  std::string_view qual = LineAt(buffer, l3 + 1, l4);
  if (qual.size() != seq.size()) {
    if (last_line) return false;  // partial quality line: page more bytes
    status_ = Status::Corruption("FASTQ quality length mismatch");
    return false;
  }
  out->name = std::string(name_line.substr(1));
  out->sequence = std::string(seq);
  out->quality = std::string(qual);
  *pos = last_line ? size : l4 + 1;
  return true;
}

bool FastaChunkParser::ParseRecord(const char* buffer, size_t size,
                                   size_t* pos, ShortRead* out) {
  size_t p = *pos;
  while (p < size && (buffer[p] == '\n' || buffer[p] == '\r')) ++p;
  if (p >= size) return false;
  if (buffer[p] != '>') {
    status_ = Status::Corruption("FASTA record does not start with '>'");
    return false;
  }
  const size_t l1 = FindNewline(buffer, size, p);
  if (l1 == static_cast<size_t>(-1)) return false;
  std::string_view name_line = LineAt(buffer, p, l1);

  // Sequence lines until the next '>' or (at EOF) end of buffer.
  std::string seq;
  size_t cursor = l1 + 1;
  for (;;) {
    if (cursor >= size) {
      if (!at_eof_) return false;  // record may continue in the next chunk
      break;
    }
    if (buffer[cursor] == '>') break;
    size_t eol = FindNewline(buffer, size, cursor);
    if (eol == static_cast<size_t>(-1)) {
      if (!at_eof_) return false;
      eol = size;
      std::string_view line = LineAt(buffer, cursor, eol);
      seq.append(line);
      cursor = size;
      break;
    }
    std::string_view line = LineAt(buffer, cursor, eol);
    seq.append(line);
    cursor = eol + 1;
  }
  out->name = std::string(name_line.substr(1));
  out->sequence = std::move(seq);
  out->quality.clear();
  *pos = cursor;
  return true;
}

Result<std::vector<ShortRead>> ReadFastqFile(const std::string& path) {
  HTG_ASSIGN_OR_RETURN(std::string data,
                       storage::Vfs::Default()->ReadFileToString(path));
  std::vector<ShortRead> reads;
  FastqChunkParser parser;
  size_t pos = 0;
  ShortRead read;
  while (parser.ParseRecord(data.data(), data.size(), &pos, &read)) {
    reads.push_back(std::move(read));
  }
  HTG_RETURN_IF_ERROR(parser.status());
  return reads;
}

Status WriteFastqFile(const std::string& path,
                      const std::vector<ShortRead>& reads) {
  std::string out;
  for (const ShortRead& r : reads) {
    out += '@';
    out += r.name;
    out += '\n';
    out += r.sequence;
    out += "\n+\n";
    out += r.quality;
    out += '\n';
  }
  return storage::WriteFileAtomic(storage::Vfs::Default(), path, out);
}

Status WriteFastaFile(const std::string& path,
                      const std::vector<ShortRead>& records, int wrap) {
  std::string out;
  for (const ShortRead& r : records) {
    out += '>';
    out += r.name;
    out += '\n';
    const std::string& seq = r.sequence;
    for (size_t i = 0; i < seq.size(); i += wrap) {
      const size_t len = std::min<size_t>(wrap, seq.size() - i);
      out.append(seq, i, len);
      out += '\n';
    }
  }
  return storage::WriteFileAtomic(storage::Vfs::Default(), path, out);
}

Result<std::vector<ShortRead>> ReadFastaFile(const std::string& path) {
  HTG_ASSIGN_OR_RETURN(std::string data,
                       storage::Vfs::Default()->ReadFileToString(path));
  std::vector<ShortRead> records;
  FastaChunkParser parser;
  parser.set_at_eof(true);
  size_t pos = 0;
  ShortRead rec;
  while (parser.ParseRecord(data.data(), data.size(), &pos, &rec)) {
    records.push_back(std::move(rec));
  }
  HTG_RETURN_IF_ERROR(parser.status());
  return records;
}

}  // namespace htg::genomics
