#include "genomics/register.h"

#include "genomics/align_tvf.h"
#include "genomics/consensus.h"
#include "genomics/dna_sequence.h"
#include "genomics/file_wrapper.h"
#include "genomics/nucleotide.h"
#include "genomics/srf.h"

namespace htg::genomics {

Status RegisterGenomicsExtensions(Database* db) {
  udf::FunctionRegistry* registry = db->functions();

  // Scalar UDFs over the DnaSequence UDT blob encoding.
  {
    udf::ScalarFunction fn;
    fn.name = "PACK_DNA";
    fn.min_args = 1;
    fn.max_args = 1;
    fn.result_type = [](const std::vector<DataType>&) {
      return DataType::kBlob;
    };
    fn.eval = [](udf::EvalContext*,
                 const std::vector<Value>& a) -> Result<Value> {
      return Value::Blob(DnaSequence::FromText(a[0].AsString()).ToBlob());
    };
    HTG_RETURN_IF_ERROR(registry->RegisterScalar(std::move(fn)));
  }
  {
    udf::ScalarFunction fn;
    fn.name = "UNPACK_DNA";
    fn.min_args = 1;
    fn.max_args = 1;
    fn.result_type = [](const std::vector<DataType>&) {
      return DataType::kString;
    };
    fn.eval = [](udf::EvalContext*,
                 const std::vector<Value>& a) -> Result<Value> {
      HTG_ASSIGN_OR_RETURN(DnaSequence seq,
                           DnaSequence::FromBlob(a[0].AsString()));
      return Value::String(seq.ToText());
    };
    HTG_RETURN_IF_ERROR(registry->RegisterScalar(std::move(fn)));
  }
  {
    udf::ScalarFunction fn;
    fn.name = "DNA_LENGTH";
    fn.min_args = 1;
    fn.max_args = 1;
    fn.result_type = [](const std::vector<DataType>&) {
      return DataType::kInt64;
    };
    fn.eval = [](udf::EvalContext*,
                 const std::vector<Value>& a) -> Result<Value> {
      HTG_ASSIGN_OR_RETURN(DnaSequence seq,
                           DnaSequence::FromBlob(a[0].AsString()));
      return Value::Int64(static_cast<int64_t>(seq.length()));
    };
    HTG_RETURN_IF_ERROR(registry->RegisterScalar(std::move(fn)));
  }
  {
    udf::ScalarFunction fn;
    fn.name = "REVCOMP";
    fn.min_args = 1;
    fn.max_args = 1;
    fn.result_type = [](const std::vector<DataType>&) {
      return DataType::kString;
    };
    fn.eval = [](udf::EvalContext*,
                 const std::vector<Value>& a) -> Result<Value> {
      return Value::String(ReverseComplement(a[0].AsString()));
    };
    HTG_RETURN_IF_ERROR(registry->RegisterScalar(std::move(fn)));
  }
  {
    udf::ScalarFunction fn;
    fn.name = "PHRED_AVG";
    fn.min_args = 1;
    fn.max_args = 1;
    fn.result_type = [](const std::vector<DataType>&) {
      return DataType::kDouble;
    };
    fn.eval = [](udf::EvalContext*,
                 const std::vector<Value>& a) -> Result<Value> {
      const std::string& quals = a[0].AsString();
      if (quals.empty()) return Value::Double(0.0);
      double sum = 0;
      for (char c : quals) sum += CharToPhred(c);
      return Value::Double(sum / static_cast<double>(quals.size()));
    };
    HTG_RETURN_IF_ERROR(registry->RegisterScalar(std::move(fn)));
  }
  {
    // reads.PathName() of the paper's T-SQL appears here as
    // PATHNAME(reads): FILESTREAM values already store the path.
    udf::ScalarFunction fn;
    fn.name = "PATHNAME";
    fn.min_args = 1;
    fn.max_args = 1;
    fn.result_type = [](const std::vector<DataType>&) {
      return DataType::kString;
    };
    fn.eval = [](udf::EvalContext*,
                 const std::vector<Value>& a) -> Result<Value> {
      return Value::String(a[0].AsString());
    };
    HTG_RETURN_IF_ERROR(registry->RegisterScalar(std::move(fn)));
  }

  HTG_RETURN_IF_ERROR(
      registry->RegisterTableFunction(std::make_unique<ListShortReadsTvf>()));
  HTG_RETURN_IF_ERROR(
      registry->RegisterTableFunction(std::make_unique<ReadFastqFileTvf>()));
  HTG_RETURN_IF_ERROR(
      registry->RegisterTableFunction(std::make_unique<ReadFastaFileTvf>()));
  HTG_RETURN_IF_ERROR(
      registry->RegisterTableFunction(std::make_unique<PivotAlignmentTvf>()));
  HTG_RETURN_IF_ERROR(
      registry->RegisterTableFunction(std::make_unique<ReadSrfFileTvf>()));
  HTG_RETURN_IF_ERROR(
      registry->RegisterTableFunction(std::make_unique<AlignReadsTvf>()));

  HTG_RETURN_IF_ERROR(
      registry->RegisterAggregate(std::make_unique<CallBaseAggregate>()));
  HTG_RETURN_IF_ERROR(registry->RegisterAggregate(
      std::make_unique<AssembleSequenceAggregate>()));
  HTG_RETURN_IF_ERROR(registry->RegisterAggregate(
      std::make_unique<AssembleConsensusAggregate>()));
  return Status::OK();
}

}  // namespace htg::genomics
