#pragma once

#include <memory>
#include <string>
#include <vector>

#include "genomics/formats.h"
#include "storage/filestream.h"
#include "storage/table.h"
#include "udf/function.h"

namespace htg::genomics {

// The default ReadChunk() size of the streaming file wrappers.
inline constexpr size_t kDefaultChunkBytes = 64 * 1024;

enum class ShortReadFormat { kFastq, kFasta };

// The schema a wrapper TVF exposes for a format: FASTQ yields
// (read_name, short_read_seq, quality), FASTA omits quality.
Schema ShortReadSchema(ShortReadFormat format);

// Streaming row iterator over a FileStream BLOB containing FASTQ/FASTA
// records: the engine-side realization of the paper's Fig. 5. The iterator
// pulls the file in large chunks (ReadChunk), parses records out of its
// buffer, and pages incomplete trailing entries to the buffer front before
// refilling — exactly the pseudo-code of §4.1. Each Next() performs the
// FillRow-style conversion of parsed fields into engine Values.
class ShortReadStreamIterator : public storage::RowIterator {
 public:
  ShortReadStreamIterator(std::unique_ptr<storage::FileStreamReader> stream,
                          ShortReadFormat format,
                          size_t chunk_bytes = kDefaultChunkBytes);

  bool Next(Row* row) override;
  Status status() const override { return status_; }

  // Bytes pulled from the stream so far (observability for benches).
  uint64_t bytes_read() const { return file_pos_; }

 private:
  // Refills the buffer, preserving [buffer_pos_, buffer_filled_) at the
  // front (the paging algorithm). Returns false at end of file.
  bool ReadChunk();

  std::unique_ptr<storage::FileStreamReader> stream_;
  ShortReadFormat format_;
  std::string buffer_;
  size_t buffer_pos_ = 0;
  size_t buffer_filled_ = 0;
  uint64_t file_pos_ = 0;
  bool at_eof_ = false;
  FastqChunkParser fastq_;
  FastaChunkParser fasta_;
  Status status_;
};

// ListShortReads(sample, lane, format): the paper's wrapper TVF over the
// ShortReadFiles FileStream table — finds the BLOB for (sample, lane) and
// streams its records as rows.
class ListShortReadsTvf : public udf::TableFunction {
 public:
  std::string_view name() const override { return "ListShortReads"; }
  Result<Schema> BindSchema(const std::vector<Value>& args) const override;
  Result<std::unique_ptr<storage::RowIterator>> Open(
      const std::vector<Value>& args, Database* db) const override;
};

// ReadFastqFile(path [, chunk_kb]): streams any FASTQ file by path.
class ReadFastqFileTvf : public udf::TableFunction {
 public:
  std::string_view name() const override { return "ReadFastqFile"; }
  Result<Schema> BindSchema(const std::vector<Value>& args) const override;
  Result<std::unique_ptr<storage::RowIterator>> Open(
      const std::vector<Value>& args, Database* db) const override;
};

// ReadFastaFile(path [, chunk_kb]): streams any FASTA file by path.
class ReadFastaFileTvf : public udf::TableFunction {
 public:
  std::string_view name() const override { return "ReadFastaFile"; }
  Result<Schema> BindSchema(const std::vector<Value>& args) const override;
  Result<std::unique_ptr<storage::RowIterator>> Open(
      const std::vector<Value>& args, Database* db) const override;
};

// Looks up the FileStream path stored in ShortReadFiles for (sample, lane).
Result<std::string> FindShortReadBlob(Database* db, int64_t sample,
                                      int64_t lane);

}  // namespace htg::genomics

