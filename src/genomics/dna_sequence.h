#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace htg::genomics {

// The domain-specific short-read sequence type the paper's §5.1.2 calls
// for: "a bit-encoding of the sequences could reduce the size to just
// about a quarter. This could be achieved by introducing a corresponding
// domain-specific short-read data type."
//
// Bases pack 4-per-byte (2 bits each); 'N' positions are kept in an
// exception list. The serialized form is stored in VARBINARY columns and
// manipulated through the PACK_DNA / UNPACK_DNA / DNA_LENGTH scalar UDFs.
class DnaSequence {
 public:
  DnaSequence() = default;

  // Builds from a text sequence (ACGTN, case-insensitive).
  static DnaSequence FromText(std::string_view text);

  // Parses the serialized blob form.
  static Result<DnaSequence> FromBlob(std::string_view blob);

  // Serialized form: varint length, varint #exceptions, exception
  // positions (varint deltas), packed 2-bit payload.
  std::string ToBlob() const;

  // Expands back to ACGTN text.
  std::string ToText() const;

  size_t length() const { return length_; }
  char BaseAt(size_t i) const;

  bool operator==(const DnaSequence& other) const {
    return length_ == other.length_ && packed_ == other.packed_ &&
           n_positions_ == other.n_positions_;
  }

 private:
  size_t length_ = 0;
  std::vector<uint8_t> packed_;
  std::vector<uint32_t> n_positions_;  // sorted
};

}  // namespace htg::genomics

