#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace htg::genomics {

// One level-1 short read (a FASTQ entry, paper Fig. 3).
struct ShortRead {
  std::string name;      // e.g. "IL4_855:1:1:954:659"
  std::string sequence;  // ACGTN text
  std::string quality;   // ASCII Phred+33, same length; empty for FASTA
};

// Coordinates encoded in an Illumina-style read name
// "<machine>_<flowcell>:<lane>:<tile>:<x>:<y>" — the paper's §5.1.1
// example of a materialized composite key.
struct ReadCoordinates {
  std::string machine;
  int flowcell = 0;
  int lane = 0;
  int tile = 0;
  int x = 0;
  int y = 0;
};

// Builds the composite textual name from coordinates.
std::string FormatReadName(const ReadCoordinates& coords);

// Parses a composite read name; errors if malformed.
Result<ReadCoordinates> ParseReadName(const std::string& name);

// Incremental FASTQ parser over a caller-managed byte buffer. This is the
// ParseShortReadEntry() of the paper's Fig. 5 pseudo-code: it consumes one
// complete 4-line record at *pos, or reports that the buffer ends inside a
// record so the caller can run its paging algorithm.
class FastqChunkParser {
 public:
  // Returns true and advances *pos past one record, filling *out.
  // Returns false if [buffer + *pos, buffer + size) holds no complete
  // record; *pos is left unchanged. Corrupt input sets status().
  bool ParseRecord(const char* buffer, size_t size, size_t* pos,
                   ShortRead* out);

  Status status() const { return status_; }

 private:
  Status status_;
};

// Incremental FASTA parser (">" header + wrapped sequence lines). A record
// is complete when the next '>' appears, or at end of input when the
// caller has signalled EOF.
class FastaChunkParser {
 public:
  void set_at_eof(bool at_eof) { at_eof_ = at_eof; }

  bool ParseRecord(const char* buffer, size_t size, size_t* pos,
                   ShortRead* out);

  Status status() const { return status_; }

 private:
  bool at_eof_ = false;
  Status status_;
};

// Whole-file helpers --------------------------------------------------

Result<std::vector<ShortRead>> ReadFastqFile(const std::string& path);
Status WriteFastqFile(const std::string& path,
                      const std::vector<ShortRead>& reads);

// FASTA with sequences wrapped at `wrap` characters per line (the 60 bp
// convention the paper calls out as display-oriented).
Status WriteFastaFile(const std::string& path,
                      const std::vector<ShortRead>& records, int wrap = 60);
Result<std::vector<ShortRead>> ReadFastaFile(const std::string& path);

}  // namespace htg::genomics

