#include "genomics/dna_sequence.h"

#include <algorithm>

#include "common/varint.h"
#include "genomics/nucleotide.h"

namespace htg::genomics {

DnaSequence DnaSequence::FromText(std::string_view text) {
  DnaSequence seq;
  seq.length_ = text.size();
  seq.packed_.assign((text.size() + 3) / 4, 0);
  for (size_t i = 0; i < text.size(); ++i) {
    int code = BaseCode(text[i]);
    if (code < 0) {
      seq.n_positions_.push_back(static_cast<uint32_t>(i));
      code = 0;  // placeholder bits under an N
    }
    seq.packed_[i / 4] |= static_cast<uint8_t>(code << ((i % 4) * 2));
  }
  return seq;
}

std::string DnaSequence::ToBlob() const {
  std::string out;
  PutVarint64(&out, length_);
  PutVarint64(&out, n_positions_.size());
  uint32_t prev = 0;
  for (uint32_t pos : n_positions_) {
    PutVarint64(&out, pos - prev);
    prev = pos;
  }
  out.append(reinterpret_cast<const char*>(packed_.data()), packed_.size());
  return out;
}

Result<DnaSequence> DnaSequence::FromBlob(std::string_view blob) {
  DnaSequence seq;
  const char* p = blob.data();
  const char* limit = blob.data() + blob.size();
  uint64_t length = 0;
  uint64_t num_exceptions = 0;
  p = GetVarint64(p, limit, &length);
  if (p == nullptr) return Status::Corruption("bad DnaSequence header");
  p = GetVarint64(p, limit, &num_exceptions);
  if (p == nullptr) return Status::Corruption("bad DnaSequence header");
  seq.length_ = length;
  uint64_t pos = 0;
  for (uint64_t i = 0; i < num_exceptions; ++i) {
    uint64_t delta = 0;
    p = GetVarint64(p, limit, &delta);
    if (p == nullptr) return Status::Corruption("bad DnaSequence exceptions");
    pos = i == 0 ? delta : pos + delta;
    seq.n_positions_.push_back(static_cast<uint32_t>(pos));
  }
  const size_t packed_bytes = (length + 3) / 4;
  if (static_cast<size_t>(limit - p) < packed_bytes) {
    return Status::Corruption("truncated DnaSequence payload");
  }
  seq.packed_.assign(reinterpret_cast<const uint8_t*>(p),
                     reinterpret_cast<const uint8_t*>(p) + packed_bytes);
  return seq;
}

char DnaSequence::BaseAt(size_t i) const {
  if (std::binary_search(n_positions_.begin(), n_positions_.end(),
                         static_cast<uint32_t>(i))) {
    return 'N';
  }
  const int code = (packed_[i / 4] >> ((i % 4) * 2)) & 3;
  return CodeBase(code);
}

std::string DnaSequence::ToText() const {
  std::string out;
  out.reserve(length_);
  size_t next_exception = 0;
  for (size_t i = 0; i < length_; ++i) {
    if (next_exception < n_positions_.size() &&
        n_positions_[next_exception] == i) {
      out.push_back('N');
      ++next_exception;
      continue;
    }
    const int code = (packed_[i / 4] >> ((i % 4) * 2)) & 3;
    out.push_back(CodeBase(code));
  }
  return out;
}

}  // namespace htg::genomics
