#include "genomics/file_wrapper.h"

#include <cstring>

#include "catalog/database.h"
#include "common/string_util.h"

namespace htg::genomics {

Schema ShortReadSchema(ShortReadFormat format) {
  Schema schema;
  schema.AddColumn({.name = "read_name", .type = DataType::kString});
  schema.AddColumn({.name = "short_read_seq", .type = DataType::kString});
  if (format == ShortReadFormat::kFastq) {
    schema.AddColumn({.name = "quality", .type = DataType::kString});
  }
  return schema;
}

ShortReadStreamIterator::ShortReadStreamIterator(
    std::unique_ptr<storage::FileStreamReader> stream, ShortReadFormat format,
    size_t chunk_bytes)
    : stream_(std::move(stream)), format_(format) {
  buffer_.resize(std::max<size_t>(chunk_bytes, 4096));
}

bool ShortReadStreamIterator::ReadChunk() {
  // Paging algorithm (Fig. 5): move the incomplete tail entry to the
  // buffer start, then fill the remainder from the stream.
  const size_t tail = buffer_filled_ - buffer_pos_;
  if (tail > 0 && buffer_pos_ > 0) {
    memmove(buffer_.data(), buffer_.data() + buffer_pos_, tail);
  }
  buffer_pos_ = 0;
  buffer_filled_ = tail;
  if (at_eof_) return false;
  if (buffer_filled_ == buffer_.size()) {
    // One record larger than the buffer: grow (rare; long FASTA records).
    buffer_.resize(buffer_.size() * 2);
  }
  Result<size_t> read = stream_->GetBytes(
      file_pos_, buffer_.data() + buffer_filled_,
      buffer_.size() - buffer_filled_);
  if (!read.ok()) {
    status_ = read.status();
    return false;
  }
  if (*read == 0) {
    at_eof_ = true;
    fasta_.set_at_eof(true);
    return false;
  }
  file_pos_ += *read;
  buffer_filled_ += *read;
  return true;
}

bool ShortReadStreamIterator::Next(Row* row) {
  if (!status_.ok()) return false;
  ShortRead read;
  for (;;) {
    bool parsed;
    if (format_ == ShortReadFormat::kFastq) {
      parsed = fastq_.ParseRecord(buffer_.data(), buffer_filled_,
                                  &buffer_pos_, &read);
      if (!fastq_.status().ok()) {
        status_ = fastq_.status();
        return false;
      }
    } else {
      parsed = fasta_.ParseRecord(buffer_.data(), buffer_filled_,
                                  &buffer_pos_, &read);
      if (!fasta_.status().ok()) {
        status_ = fasta_.status();
        return false;
      }
    }
    if (parsed) break;
    if (!ReadChunk()) {
      if (!status_.ok()) return false;
      if (at_eof_ && buffer_pos_ < buffer_filled_ &&
          format_ == ShortReadFormat::kFasta) {
        // One more attempt with the EOF flag set (final FASTA record).
        if (fasta_.ParseRecord(buffer_.data(), buffer_filled_, &buffer_pos_,
                               &read)) {
          break;
        }
      }
      return false;
    }
  }
  // FillRow: convert the parsed record into engine values.
  row->clear();
  row->push_back(Value::String(std::move(read.name)));
  row->push_back(Value::String(std::move(read.sequence)));
  if (format_ == ShortReadFormat::kFastq) {
    row->push_back(Value::String(std::move(read.quality)));
  }
  return true;
}

Result<std::string> FindShortReadBlob(Database* db, int64_t sample,
                                      int64_t lane) {
  HTG_ASSIGN_OR_RETURN(catalog::TableDef * table,
                       db->GetTable("ShortReadFiles"));
  const int sample_col = table->schema.FindColumn("sample");
  const int lane_col = table->schema.FindColumn("lane");
  const int reads_col = table->schema.FindColumn("reads");
  if (sample_col < 0 || lane_col < 0 || reads_col < 0) {
    return Status::BindError(
        "ShortReadFiles must have (sample, lane, reads) columns");
  }
  std::unique_ptr<storage::RowIterator> scan = table->table->NewScan();
  Row row;
  while (scan->Next(&row)) {
    if (!row[sample_col].is_null() && !row[lane_col].is_null() &&
        row[sample_col].AsInt64() == sample &&
        row[lane_col].AsInt64() == lane && !row[reads_col].is_null()) {
      return row[reads_col].AsString();
    }
  }
  HTG_RETURN_IF_ERROR(scan->status());
  return Status::NotFound(StringPrintf(
      "no ShortReadFiles row for sample %lld lane %lld",
      static_cast<long long>(sample), static_cast<long long>(lane)));
}

namespace {

Result<ShortReadFormat> FormatFromName(const Value& v) {
  if (v.is_null()) return ShortReadFormat::kFastq;
  const std::string& name = v.AsString();
  if (EqualsIgnoreCase(name, "FASTQ")) return ShortReadFormat::kFastq;
  if (EqualsIgnoreCase(name, "FASTA")) return ShortReadFormat::kFasta;
  return Status::InvalidArgument("unknown short-read format: " + name);
}

size_t ChunkBytesArg(const std::vector<Value>& args, size_t index) {
  if (args.size() > index && !args[index].is_null()) {
    return static_cast<size_t>(args[index].AsInt64()) * 1024;
  }
  return kDefaultChunkBytes;
}

}  // namespace

Result<Schema> ListShortReadsTvf::BindSchema(
    const std::vector<Value>& args) const {
  ShortReadFormat format = ShortReadFormat::kFastq;
  if (args.size() >= 3) {
    HTG_ASSIGN_OR_RETURN(format, FormatFromName(args[2]));
  }
  return ShortReadSchema(format);
}

Result<std::unique_ptr<storage::RowIterator>> ListShortReadsTvf::Open(
    const std::vector<Value>& args, Database* db) const {
  if (args.size() < 2 || args.size() > 4) {
    return Status::InvalidArgument(
        "ListShortReads(sample, lane [, format [, chunk_kb]])");
  }
  if (db == nullptr) return Status::ExecError("no database");
  ShortReadFormat format = ShortReadFormat::kFastq;
  if (args.size() >= 3) {
    HTG_ASSIGN_OR_RETURN(format, FormatFromName(args[2]));
  }
  HTG_ASSIGN_OR_RETURN(
      std::string path,
      FindShortReadBlob(db, args[0].AsInt64(), args[1].AsInt64()));
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::FileStreamReader> stream,
                       db->filestream()->OpenStream(path));
  return {std::make_unique<ShortReadStreamIterator>(
      std::move(stream), format, ChunkBytesArg(args, 3))};
}

Result<Schema> ReadFastqFileTvf::BindSchema(const std::vector<Value>&) const {
  return ShortReadSchema(ShortReadFormat::kFastq);
}

Result<std::unique_ptr<storage::RowIterator>> ReadFastqFileTvf::Open(
    const std::vector<Value>& args, Database* db) const {
  if (args.empty() || args[0].is_null()) {
    return Status::InvalidArgument("ReadFastqFile(path [, chunk_kb])");
  }
  if (db == nullptr) return Status::ExecError("no database");
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::FileStreamReader> stream,
                       db->filestream()->OpenStream(args[0].AsString()));
  return {std::make_unique<ShortReadStreamIterator>(
      std::move(stream), ShortReadFormat::kFastq, ChunkBytesArg(args, 1))};
}

Result<Schema> ReadFastaFileTvf::BindSchema(const std::vector<Value>&) const {
  return ShortReadSchema(ShortReadFormat::kFasta);
}

Result<std::unique_ptr<storage::RowIterator>> ReadFastaFileTvf::Open(
    const std::vector<Value>& args, Database* db) const {
  if (args.empty() || args[0].is_null()) {
    return Status::InvalidArgument("ReadFastaFile(path [, chunk_kb])");
  }
  if (db == nullptr) return Status::ExecError("no database");
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::FileStreamReader> stream,
                       db->filestream()->OpenStream(args[0].AsString()));
  return {std::make_unique<ShortReadStreamIterator>(
      std::move(stream), ShortReadFormat::kFasta, ChunkBytesArg(args, 1))};
}

}  // namespace htg::genomics
