#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "genomics/formats.h"
#include "genomics/reference.h"

namespace htg::genomics {

// Configuration of one simulated flowcell lane.
struct SimulatorOptions {
  uint64_t seed = 42;
  int read_length = 36;       // Illumina-era short reads (paper: 35-300 bp)
  int lane = 1;
  int tiles = 300;            // tiles per lane (paper §2.1: ~300)
  double base_error_rate = 0.005;  // error probability at read start
  double error_rate_slope = 0.01;  // additional error per base position
  double n_rate = 0.01;            // probability of an uncalled base ('N')
  std::string machine = "IL4";
  int flowcell = 855;
};

// Digital-gene-expression mode parameters: tags are drawn from a small set
// of transcript positions with Zipf-distributed abundance, so the tag
// multiset is highly repetitive (paper §2.1.2, §5.1.1).
struct DgeOptions {
  int num_genes = 5000;
  double zipf_exponent = 1.05;
};

// Where a simulated read came from (ground truth for aligner tests).
struct SimulatedOrigin {
  int chromosome = 0;
  int64_t position = 0;  // 0-based
  bool reverse_strand = false;
  int gene_id = -1;  // DGE mode only
};

// Generates synthetic level-1 data in the two statistical regimes the
// paper evaluates: re-sequencing (nearly-unique reads, uniform coverage —
// the 1000 Genomes workload) and digital gene expression (repetitive
// Zipf-abundant tags). Substitutes for the proprietary Illumina/Sanger
// lane data (see DESIGN.md).
class ReadSimulator {
 public:
  ReadSimulator(const ReferenceGenome* reference, SimulatorOptions options);

  // Uniform re-sequencing reads over the whole genome.
  std::vector<ShortRead> SimulateResequencing(uint64_t num_reads,
                                              std::vector<SimulatedOrigin>*
                                                  origins = nullptr);

  // DGE tags: picks gene start sites, then samples reads from genes with
  // Zipf abundance.
  std::vector<ShortRead> SimulateDge(uint64_t num_reads, const DgeOptions& dge,
                                     std::vector<SimulatedOrigin>* origins =
                                         nullptr);

 private:
  ShortRead MakeRead(int chromosome, int64_t pos, bool reverse, int index);

  const ReferenceGenome* reference_;
  SimulatorOptions options_;
  Random rng_;
};

}  // namespace htg::genomics

