#include "genomics/consensus.h"

#include <algorithm>

#include "genomics/nucleotide.h"

namespace htg::genomics {

namespace {

int BaseIndex(char base) {
  const int code = BaseCode(base);
  return code < 0 ? 4 : code;
}

char IndexBase(int i) { return i < 4 ? kBases[i] : 'N'; }

class PivotIterator : public storage::RowIterator {
 public:
  PivotIterator(int64_t position, std::string seq, std::string quals)
      : position_(position), seq_(std::move(seq)), quals_(std::move(quals)) {}

  bool Next(Row* row) override {
    if (index_ >= seq_.size()) return false;
    row->clear();
    row->push_back(Value::Int64(position_ + static_cast<int64_t>(index_)));
    row->push_back(Value::String(std::string(1, seq_[index_])));
    row->push_back(Value::Int32(
        index_ < quals_.size() ? CharToPhred(quals_[index_]) : 0));
    ++index_;
    return true;
  }

 private:
  int64_t position_;
  std::string seq_;
  std::string quals_;
  size_t index_ = 0;
};

class CallBaseInstance : public udf::AggregateInstance {
 public:
  Status Accumulate(const std::vector<Value>& args) override {
    if (args[0].is_null()) return Status::OK();
    const std::string& base = args[0].AsString();
    if (base.empty()) return Status::OK();
    const double qual = args[1].is_null() ? 1.0 : args[1].AsDouble();
    weights_[BaseIndex(base[0])] += qual > 0 ? qual : 1.0;
    return Status::OK();
  }

  Status Merge(const udf::AggregateInstance& other) override {
    const auto& o = static_cast<const CallBaseInstance&>(other);
    for (int i = 0; i < 5; ++i) weights_[i] += o.weights_[i];
    return Status::OK();
  }

  Result<Value> Terminate() override {
    int best = 4;
    double best_weight = 0;
    for (int i = 0; i < 4; ++i) {
      if (weights_[i] > best_weight) {
        best = i;
        best_weight = weights_[i];
      }
    }
    return Value::String(std::string(1, IndexBase(best)));
  }

 private:
  double weights_[5] = {0, 0, 0, 0, 0};
};

class AssembleSequenceInstance : public udf::AggregateInstance {
 public:
  Status Accumulate(const std::vector<Value>& args) override {
    if (args[0].is_null() || args[1].is_null()) return Status::OK();
    const std::string& base = args[1].AsString();
    entries_.emplace_back(args[0].AsInt64(),
                          base.empty() ? 'N' : base[0]);
    return Status::OK();
  }

  Status Merge(const udf::AggregateInstance& other) override {
    const auto& o = static_cast<const AssembleSequenceInstance&>(other);
    entries_.insert(entries_.end(), o.entries_.begin(), o.entries_.end());
    return Status::OK();
  }

  Result<Value> Terminate() override {
    std::sort(entries_.begin(), entries_.end());
    std::string out;
    out.reserve(entries_.size());
    int64_t expected = entries_.empty() ? 0 : entries_.front().first;
    for (const auto& [pos, base] : entries_) {
      // Uncovered gaps become 'N'.
      while (expected < pos) {
        out.push_back('N');
        ++expected;
      }
      out.push_back(base);
      expected = pos + 1;
    }
    return Value::String(std::move(out));
  }

 private:
  std::vector<std::pair<int64_t, char>> entries_;
};

class AssembleConsensusInstance : public udf::AggregateInstance {
 public:
  Status Accumulate(const std::vector<Value>& args) override {
    if (args[0].is_null() || args[1].is_null()) return Status::OK();
    const int64_t pos = args[0].AsInt64();
    if (pos < last_pos_) {
      return Status::ExecError(
          "AssembleConsensus requires input ordered by position");
    }
    last_pos_ = pos;
    window_.Add(pos, args[1].AsString(),
                args[2].is_null() ? std::string_view() : args[2].AsString());
    return Status::OK();
  }

  Status Merge(const udf::AggregateInstance&) override {
    return Status::NotImplemented(
        "AssembleConsensus cannot merge partial windows (overlapping "
        "partition borders)");
  }

  Result<Value> Terminate() override {
    return Value::String(window_.Finish());
  }

 private:
  SlidingWindowConsensus window_;
  int64_t last_pos_ = -1;
};

}  // namespace

Result<Schema> PivotAlignmentTvf::BindSchema(const std::vector<Value>&) const {
  Schema schema;
  schema.AddColumn({.name = "pos", .type = DataType::kInt64});
  schema.AddColumn({.name = "base", .type = DataType::kString});
  schema.AddColumn({.name = "qual", .type = DataType::kInt32});
  return schema;
}

// Thread-safe for concurrent Open() (parallel CROSS APPLY): no shared
// mutable state — each iterator owns copies of its arguments.
Result<std::unique_ptr<storage::RowIterator>> PivotAlignmentTvf::Open(
    const std::vector<Value>& args, Database*) const {
  if (args.size() != 3) {
    return Status::InvalidArgument("PivotAlignment(pos, seq, quals)");
  }
  if (args[0].is_null() || args[1].is_null()) {
    return {std::make_unique<PivotIterator>(0, "", "")};
  }
  return {std::make_unique<PivotIterator>(
      args[0].AsInt64(), args[1].AsString(),
      args[2].is_null() ? std::string() : args[2].AsString())};
}

std::unique_ptr<udf::AggregateInstance> CallBaseAggregate::NewInstance()
    const {
  return std::make_unique<CallBaseInstance>();
}

std::unique_ptr<udf::AggregateInstance>
AssembleSequenceAggregate::NewInstance() const {
  return std::make_unique<AssembleSequenceInstance>();
}

std::unique_ptr<udf::AggregateInstance>
AssembleConsensusAggregate::NewInstance() const {
  return std::make_unique<AssembleConsensusInstance>();
}

void SlidingWindowConsensus::Add(int64_t position, std::string_view seq,
                                 std::string_view quals) {
  if (window_start_ < 0) {
    window_start_ = position;
    start_ = position;
  }
  // Everything strictly left of this alignment's start is final.
  FlushBefore(position);
  // Grow the window to cover this read.
  const size_t needed = static_cast<size_t>(position - window_start_) +
                        seq.size();
  while (window_.size() < needed) window_.emplace_back();
  for (size_t i = 0; i < seq.size(); ++i) {
    const size_t col = static_cast<size_t>(position - window_start_) + i;
    const double w =
        i < quals.size() ? std::max(1, CharToPhred(quals[i])) : 1.0;
    window_[col].w[BaseIndex(seq[i])] += w;
  }
}

void SlidingWindowConsensus::FlushBefore(int64_t position) {
  while (window_start_ < position && !window_.empty()) {
    const Weights& col = window_.front();
    int best = 4;
    double best_weight = 0;
    for (int i = 0; i < 4; ++i) {
      if (col.w[i] > best_weight) {
        best = i;
        best_weight = col.w[i];
      }
    }
    out_.push_back(IndexBase(best));
    window_.pop_front();
    ++window_start_;
  }
  if (window_.empty() && window_start_ < position) {
    // Uncovered gap between reads.
    out_.append(static_cast<size_t>(position - window_start_), 'N');
    window_start_ = position;
  }
}

std::string SlidingWindowConsensus::Finish() {
  if (window_start_ >= 0) {
    FlushBefore(window_start_ + static_cast<int64_t>(window_.size()));
  }
  return std::move(out_);
}

std::vector<Snp> FindSnps(std::string_view reference,
                          std::string_view consensus, int64_t offset) {
  std::vector<Snp> snps;
  for (size_t i = 0; i < consensus.size(); ++i) {
    const size_t ref_pos = static_cast<size_t>(offset) + i;
    if (ref_pos >= reference.size()) break;
    const char called = consensus[i];
    const char ref = reference[ref_pos];
    if (called == 'N' || ref == 'N') continue;
    if (called != ref) {
      snps.push_back({static_cast<int64_t>(ref_pos), ref, called});
    }
  }
  return snps;
}

}  // namespace htg::genomics
