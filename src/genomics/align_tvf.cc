#include "genomics/align_tvf.h"

#include <map>

#include "catalog/database.h"
#include "common/synchronization.h"
#include "genomics/aligner.h"
#include "genomics/file_wrapper.h"

namespace htg::genomics {

namespace {

struct CachedReference {
  ReferenceGenome reference;
  std::unique_ptr<Aligner> aligner;
  AlignerOptions options;
};

// Process-wide reference/index cache keyed by (path, max_mismatches).
// Function-local static reference: never destroyed (per style rules on
// static storage duration).
//
// Thread-safety (parallel executor opens this TVF from many workers):
// CacheMutex() serializes every map lookup/insert; entries are never
// erased, so the `const CachedReference*` handed out stays valid and is
// immutable after GetOrBuild returns. Concurrent iterators then share one
// Aligner through that pointer, which is safe because AlignRead() is
// const over an index built once in the constructor.
Mutex& CacheMutex() {
  static Mutex& mu = *new Mutex("align_tvf::CacheMutex");
  return mu;
}

std::map<std::pair<std::string, int>, CachedReference>& Cache()
    HTG_REQUIRES(CacheMutex()) {
  static std::map<std::pair<std::string, int>, CachedReference>& cache =
      *new std::map<std::pair<std::string, int>, CachedReference>();
  return cache;
}

Result<const CachedReference*> GetOrBuild(const std::string& path,
                                          int max_mismatches) {
  MutexLock lock(&CacheMutex());
  auto key = std::make_pair(path, max_mismatches);
  auto it = Cache().find(key);
  if (it != Cache().end()) return &it->second;
  HTG_ASSIGN_OR_RETURN(ReferenceGenome reference,
                       ReferenceGenome::LoadFasta(path));
  CachedReference entry;
  entry.reference = std::move(reference);
  entry.options.max_mismatches = max_mismatches;
  it = Cache().emplace(std::move(key), std::move(entry)).first;
  // Build the index only after the entry has its final address: the
  // aligner keeps a pointer to the cached ReferenceGenome.
  it->second.aligner =
      std::make_unique<Aligner>(&it->second.reference, it->second.options);
  return &it->second;
}

// Pulls reads from the lane stream, aligns, and emits aligned rows.
class AlignIterator : public storage::RowIterator {
 public:
  AlignIterator(std::unique_ptr<storage::RowIterator> reads,
                const CachedReference* cached)
      : reads_(std::move(reads)), cached_(cached) {}

  bool Next(Row* row) override {
    Row read_row;
    while (reads_->Next(&read_row)) {
      ShortRead read;
      read.name = read_row[0].AsString();
      read.sequence = read_row[1].AsString();
      if (read_row.size() > 2 && !read_row[2].is_null()) {
        read.quality = read_row[2].AsString();
      }
      Result<Alignment> aligned = cached_->aligner->AlignRead(read);
      if (!aligned.ok()) continue;  // unaligned reads are dropped
      row->clear();
      row->push_back(Value::String(std::move(read.name)));
      row->push_back(Value::String(
          cached_->reference.chromosome(aligned->chromosome).name));
      row->push_back(Value::Int64(aligned->position));
      row->push_back(Value::Bool(aligned->reverse_strand));
      row->push_back(Value::Int32(aligned->mismatches));
      row->push_back(Value::Int32(aligned->mapping_quality));
      return true;
    }
    status_ = reads_->status();
    return false;
  }

  Status status() const override { return status_; }

 private:
  std::unique_ptr<storage::RowIterator> reads_;
  const CachedReference* cached_;
  Status status_;
};

}  // namespace

Result<Schema> AlignReadsTvf::BindSchema(const std::vector<Value>&) const {
  Schema schema;
  schema.AddColumn({.name = "read_name", .type = DataType::kString});
  schema.AddColumn({.name = "chromosome", .type = DataType::kString});
  schema.AddColumn({.name = "position", .type = DataType::kInt64});
  schema.AddColumn({.name = "reverse_strand", .type = DataType::kBool});
  schema.AddColumn({.name = "mismatches", .type = DataType::kInt32});
  schema.AddColumn({.name = "mapq", .type = DataType::kInt32});
  return schema;
}

Result<std::unique_ptr<storage::RowIterator>> AlignReadsTvf::Open(
    const std::vector<Value>& args, Database* db) const {
  if (args.size() < 3 || args[2].is_null()) {
    return Status::InvalidArgument(
        "AlignReads(sample, lane, reference_fasta [, max_mismatches])");
  }
  if (db == nullptr) return Status::ExecError("no database");
  const int max_mismatches =
      args.size() > 3 && !args[3].is_null()
          ? static_cast<int>(args[3].AsInt64())
          : 2;
  HTG_ASSIGN_OR_RETURN(const CachedReference* cached,
                       GetOrBuild(args[2].AsString(), max_mismatches));
  HTG_ASSIGN_OR_RETURN(
      std::string blob,
      FindShortReadBlob(db, args[0].AsInt64(), args[1].AsInt64()));
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::FileStreamReader> stream,
                       db->filestream()->OpenStream(blob));
  auto reads = std::make_unique<ShortReadStreamIterator>(
      std::move(stream), ShortReadFormat::kFastq);
  return {std::make_unique<AlignIterator>(std::move(reads), cached)};
}

}  // namespace htg::genomics
