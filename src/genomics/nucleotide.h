#pragma once

#include <cstdint>
#include <string>

namespace htg::genomics {

// Nucleotide codes: A=0, C=1, G=2, T=3. 'N' (uncertain call) is
// represented outside the 2-bit alphabet.
inline constexpr int kNumBases = 4;
inline constexpr char kBases[kNumBases + 1] = "ACGT";

// Returns 0-3 for ACGT (case-insensitive), -1 for anything else ('N').
int BaseCode(char base);

// Returns the base character for a 0-3 code.
char CodeBase(int code);

// Watson-Crick complement; 'N' maps to 'N'.
char Complement(char base);

// Reverse complement of a sequence.
std::string ReverseComplement(std::string_view seq);

// True if the sequence contains only A/C/G/T (upper or lower case).
bool IsUnambiguous(std::string_view seq);

// Phred quality scores and their FASTQ ASCII encoding (offset 33, the
// Sanger convention; the paper's Fig. 3 example uses the printable form).
inline constexpr int kPhredOffset = 33;
inline constexpr int kMaxPhred = 93;

// Encodes one Phred score (clamped to [0, 93]) as its ASCII character.
char PhredToChar(int phred);

// Decodes an ASCII quality character to its Phred score.
int CharToPhred(char c);

// Error probability of a Phred score: p = 10^(-q/10).
double PhredToErrorProbability(int phred);

// Phred score of an error probability (clamped to [0, 93]).
int ErrorProbabilityToPhred(double p);

}  // namespace htg::genomics

