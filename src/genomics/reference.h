#pragma once

#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace htg::genomics {

struct Chromosome {
  std::string name;
  std::string sequence;
};

// A reference genome: a set of named chromosomes (for the human reference
// the paper aligns against, 25 sequences: 22 autosomes + X, Y, MT).
class ReferenceGenome {
 public:
  ReferenceGenome() = default;
  explicit ReferenceGenome(std::vector<Chromosome> chromosomes)
      : chromosomes_(std::move(chromosomes)) {}

  // A synthetic reference: `num_chromosomes` random sequences whose sizes
  // split `total_bases` in decreasing chromosome-like proportions.
  static ReferenceGenome Random(uint64_t total_bases, int num_chromosomes,
                                uint64_t seed);

  static Result<ReferenceGenome> LoadFasta(const std::string& path);
  Status SaveFasta(const std::string& path) const;

  int num_chromosomes() const { return static_cast<int>(chromosomes_.size()); }
  const Chromosome& chromosome(int i) const { return chromosomes_[i]; }
  const std::vector<Chromosome>& chromosomes() const { return chromosomes_; }

  uint64_t total_bases() const;

  // Index of a chromosome by name, -1 if absent.
  int FindChromosome(std::string_view name) const;

 private:
  std::vector<Chromosome> chromosomes_;
};

}  // namespace htg::genomics

