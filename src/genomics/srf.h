#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "genomics/formats.h"
#include "storage/filestream.h"
#include "storage/table.h"
#include "udf/function.h"

namespace htg::genomics {

// A level-1 record in the Sequence Read Format sense (paper §5.3.1): the
// short read plus core image-analysis signals — per-base intensity and a
// per-read signal-to-noise ratio — that plain FASTQ drops.
struct SrfRecord {
  ShortRead read;
  std::vector<float> intensities;  // one per base
  float signal_to_noise = 0.0f;
};

// Container header magic ("htg-SRF1").
inline constexpr char kSrfMagic[8] = {'h', 't', 'g', '-', 'S', 'R', 'F', '1'};

// Writes a container: magic, varint record count, then per record the
// name/sequence/qualities (length-prefixed), SNR, and packed intensities.
Status WriteSrfFile(const std::string& path,
                    const std::vector<SrfRecord>& records);

// Reads a whole container back.
Result<std::vector<SrfRecord>> ReadSrfFile(const std::string& path);

// Derives plausible SRF signals for simulated reads: intensity tracks the
// base quality with noise, SNR summarizes the read.
std::vector<SrfRecord> AttachSrfSignals(const std::vector<ShortRead>& reads,
                                        uint64_t seed);

// ReadSrfFile(path [, chunk_kb]): streaming wrapper TVF over an SRF
// container held in a FileStream — the paper's "naturally extends to
// encapsulate SRF files as FileStreams too". Output schema:
//   (read_name, short_read_seq, quality, avg_intensity FLOAT, snr FLOAT).
class ReadSrfFileTvf : public udf::TableFunction {
 public:
  std::string_view name() const override { return "ReadSrfFile"; }
  Result<Schema> BindSchema(const std::vector<Value>& args) const override;
  Result<std::unique_ptr<storage::RowIterator>> Open(
      const std::vector<Value>& args, Database* db) const override;
};

}  // namespace htg::genomics

