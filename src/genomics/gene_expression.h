#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "genomics/formats.h"

namespace htg::genomics {

// A unique tag with its observation count (the output of the paper's
// Query 1 / the 26-line Perl script).
struct TagCount {
  std::string sequence;
  int64_t frequency = 0;
  int64_t rank = 0;  // 1-based, most frequent first
};

// Bins unique short reads: drops sequences containing 'N', counts
// duplicates, ranks by descending frequency. The in-memory reference
// implementation both baselines and tests compare against.
std::vector<TagCount> BinUniqueReads(const std::vector<ShortRead>& reads);

// Gene-level expression: total tag frequency and distinct tag count per
// gene (the paper's Query 2 output).
struct GeneExpression {
  int64_t gene_id = 0;
  int64_t total_frequency = 0;
  int64_t tag_count = 0;
};

// One aligned tag: which gene it hit and how often the tag occurred.
struct AlignedTag {
  int64_t gene_id = 0;
  int64_t tag_id = 0;
  int64_t frequency = 0;
};

std::vector<GeneExpression> AggregateExpression(
    const std::vector<AlignedTag>& alignments);

// Differential expression between two samples: log2 fold change with a
// pseudo-count, plus a simple chi-square score against proportionality.
struct DifferentialExpression {
  int64_t gene_id = 0;
  int64_t count_a = 0;
  int64_t count_b = 0;
  double log2_fold_change = 0.0;
  double chi_square = 0.0;
};

std::vector<DifferentialExpression> CompareExpression(
    const std::vector<GeneExpression>& sample_a,
    const std::vector<GeneExpression>& sample_b);

}  // namespace htg::genomics

