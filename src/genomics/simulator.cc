#include "genomics/simulator.h"

#include <algorithm>

#include "genomics/nucleotide.h"

namespace htg::genomics {

ReadSimulator::ReadSimulator(const ReferenceGenome* reference,
                             SimulatorOptions options)
    : reference_(reference), options_(options), rng_(options.seed) {}

ShortRead ReadSimulator::MakeRead(int chromosome, int64_t pos, bool reverse,
                                  int index) {
  const std::string& chr = reference_->chromosome(chromosome).sequence;
  std::string seq = chr.substr(pos, options_.read_length);
  if (reverse) seq = ReverseComplement(seq);

  ShortRead read;
  read.sequence.reserve(seq.size());
  read.quality.reserve(seq.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    const double error_p =
        options_.base_error_rate + options_.error_rate_slope *
                                       (static_cast<double>(i) / seq.size());
    char base = seq[i];
    int phred = ErrorProbabilityToPhred(error_p);
    if (rng_.Bernoulli(options_.n_rate * (i + 1) / seq.size())) {
      base = 'N';
      phred = 2;
    } else if (rng_.Bernoulli(error_p)) {
      // Miscall: substitute a different base; quality stays plausible.
      const int original = BaseCode(base);
      int substitute = static_cast<int>(rng_.Uniform(3));
      if (substitute >= original) ++substitute;
      base = CodeBase(substitute);
    }
    // Jitter the reported quality a little around the true error rate.
    phred += static_cast<int>(rng_.Uniform(7)) - 3;
    if (phred < 2) phred = 2;
    read.sequence.push_back(base);
    read.quality.push_back(PhredToChar(phred));
  }

  ReadCoordinates coords;
  coords.machine = options_.machine;
  coords.flowcell = options_.flowcell;
  coords.lane = options_.lane;
  coords.tile = 1 + index % options_.tiles;
  coords.x = static_cast<int>(rng_.Uniform(2048));
  coords.y = static_cast<int>(rng_.Uniform(2048));
  read.name = FormatReadName(coords);
  return read;
}

std::vector<ShortRead> ReadSimulator::SimulateResequencing(
    uint64_t num_reads, std::vector<SimulatedOrigin>* origins) {
  std::vector<ShortRead> reads;
  reads.reserve(num_reads);
  const int nchrom = reference_->num_chromosomes();
  // Weight chromosomes by length for uniform genome coverage.
  std::vector<uint64_t> cumulative(nchrom);
  uint64_t total = 0;
  for (int c = 0; c < nchrom; ++c) {
    total += reference_->chromosome(c).sequence.size();
    cumulative[c] = total;
  }
  for (uint64_t i = 0; i < num_reads; ++i) {
    const uint64_t r = rng_.Uniform(total);
    int chromosome = 0;
    while (cumulative[chromosome] <= r) ++chromosome;
    const std::string& chr = reference_->chromosome(chromosome).sequence;
    if (chr.size() < static_cast<size_t>(options_.read_length)) continue;
    const int64_t pos = static_cast<int64_t>(
        rng_.Uniform(chr.size() - options_.read_length + 1));
    const bool reverse = rng_.Bernoulli(0.5);
    reads.push_back(MakeRead(chromosome, pos, reverse, static_cast<int>(i)));
    if (origins != nullptr) {
      origins->push_back({chromosome, pos, reverse, -1});
    }
  }
  return reads;
}

std::vector<ShortRead> ReadSimulator::SimulateDge(
    uint64_t num_reads, const DgeOptions& dge,
    std::vector<SimulatedOrigin>* origins) {
  // Pick gene tag sites: fixed (chromosome, position, strand) per gene.
  struct GeneSite {
    int chromosome;
    int64_t position;
    bool reverse;
  };
  std::vector<GeneSite> genes;
  genes.reserve(dge.num_genes);
  const int nchrom = reference_->num_chromosomes();
  for (int g = 0; g < dge.num_genes; ++g) {
    const int chromosome = static_cast<int>(rng_.Uniform(nchrom));
    const std::string& chr = reference_->chromosome(chromosome).sequence;
    if (chr.size() < static_cast<size_t>(options_.read_length + 1)) {
      genes.push_back({chromosome, 0, false});
      continue;
    }
    genes.push_back({chromosome,
                     static_cast<int64_t>(rng_.Uniform(
                         chr.size() - options_.read_length)),
                     rng_.Bernoulli(0.5)});
  }
  std::vector<ShortRead> reads;
  reads.reserve(num_reads);
  for (uint64_t i = 0; i < num_reads; ++i) {
    const int gene =
        static_cast<int>(rng_.Zipf(dge.num_genes, dge.zipf_exponent));
    const GeneSite& site = genes[gene];
    reads.push_back(MakeRead(site.chromosome, site.position, site.reverse,
                             static_cast<int>(i)));
    if (origins != nullptr) {
      origins->push_back({site.chromosome, site.position, site.reverse, gene});
    }
  }
  return reads;
}

}  // namespace htg::genomics
