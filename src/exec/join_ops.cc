#include "exec/join_ops.h"

#include <unordered_map>

#include "common/string_util.h"

namespace htg::exec {

namespace {

struct RowHash {
  size_t operator()(const Row& row) const {
    size_t h = 14695981039346656037ULL;
    for (const Value& v : row) {
      h ^= v.Hash();
      h *= 1099511628211ULL;
    }
    return h;
  }
};

struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};

Result<Row> EvalKeys(const std::vector<ExprPtr>& keys, udf::EvalContext* eval,
                     const Row& row) {
  Row out;
  out.reserve(keys.size());
  for (const ExprPtr& k : keys) {
    HTG_ASSIGN_OR_RETURN(Value v, k->Eval(eval, row));
    out.push_back(std::move(v));
  }
  return out;
}

Row ConcatRows(const Row& left, const Row& right) {
  Row out;
  out.reserve(left.size() + right.size());
  out.insert(out.end(), left.begin(), left.end());
  out.insert(out.end(), right.begin(), right.end());
  return out;
}

std::string DescribeJoinKeys(const std::vector<ExprPtr>& l,
                             const std::vector<ExprPtr>& r) {
  std::string out = "[";
  for (size_t i = 0; i < l.size(); ++i) {
    if (i > 0) out += " AND ";
    out += l[i]->ToString() + " = " + r[i]->ToString();
  }
  out += "]";
  return out;
}

class HashJoinIterator : public storage::RowIterator {
 public:
  HashJoinIterator(std::unique_ptr<storage::RowIterator> left,
                   std::unordered_map<Row, std::vector<Row>, RowHash, RowEq>
                       build,
                   const std::vector<ExprPtr>* left_keys,
                   udf::EvalContext* eval, bool left_outer, int right_width)
      : left_(std::move(left)),
        build_(std::move(build)),
        left_keys_(left_keys),
        eval_(eval),
        left_outer_(left_outer),
        right_width_(right_width) {}

  bool Next(Row* row) override {
    for (;;) {
      if (matches_ != nullptr && match_index_ < matches_->size()) {
        *row = ConcatRows(left_row_, (*matches_)[match_index_++]);
        return true;
      }
      if (!left_->Next(&left_row_)) {
        status_ = left_->status();
        return false;
      }
      Result<Row> key = EvalKeys(*left_keys_, eval_, left_row_);
      if (!key.ok()) {
        status_ = key.status();
        return false;
      }
      // SQL equi-join: NULL keys never match.
      bool has_null = false;
      for (const Value& v : *key) has_null = has_null || v.is_null();
      auto it = has_null ? build_.end() : build_.find(*key);
      if (it == build_.end()) {
        if (left_outer_) {
          // Unmatched left row: pad the right side with NULLs.
          *row = ConcatRows(left_row_, Row(right_width_, Value::Null()));
          matches_ = nullptr;
          return true;
        }
        matches_ = nullptr;
        continue;
      }
      matches_ = &it->second;
      match_index_ = 0;
    }
  }

  Status status() const override { return status_; }

 private:
  std::unique_ptr<storage::RowIterator> left_;
  std::unordered_map<Row, std::vector<Row>, RowHash, RowEq> build_;
  const std::vector<ExprPtr>* left_keys_;
  udf::EvalContext* eval_;
  bool left_outer_;
  int right_width_;
  Row left_row_;
  const std::vector<Row>* matches_ = nullptr;
  size_t match_index_ = 0;
  Status status_;
};

// Streaming merge join. Both inputs ascend on their keys; buffers the
// right-side group matching the current key.
class MergeJoinIterator : public storage::RowIterator {
 public:
  MergeJoinIterator(std::unique_ptr<storage::RowIterator> left,
                    std::unique_ptr<storage::RowIterator> right,
                    const std::vector<ExprPtr>* left_keys,
                    const std::vector<ExprPtr>* right_keys,
                    udf::EvalContext* eval)
      : left_(std::move(left)),
        right_(std::move(right)),
        left_keys_(left_keys),
        right_keys_(right_keys),
        eval_(eval) {}

  bool Next(Row* row) override {
    if (!status_.ok()) return false;
    for (;;) {
      if (emitting_ && group_index_ < right_group_.size()) {
        *row = ConcatRows(left_row_, right_group_[group_index_++]);
        return true;
      }
      emitting_ = false;
      // Advance the left side.
      if (!AdvanceLeft()) return false;
      // Align the right side's buffered group to the new left key.
      for (;;) {
        const int cmp = group_valid_
                            ? CompareKeys(left_key_, right_group_key_)
                            : 1;
        if (group_valid_ && cmp == 0) {
          emitting_ = true;
          group_index_ = 0;
          break;
        }
        if (group_valid_ && cmp < 0) {
          // Left key smaller: this left row has no match.
          break;
        }
        if (!LoadNextRightGroup()) {
          if (!status_.ok()) return false;
          return false;  // right exhausted: no further matches possible
        }
      }
      if (!emitting_) continue;
    }
  }

  Status status() const override { return status_; }

 private:
  static int CompareKeys(const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      const int r = a[i].Compare(b[i]);
      if (r != 0) return r;
    }
    return 0;
  }

  bool AdvanceLeft() {
    if (!left_->Next(&left_row_)) {
      status_ = left_->status();
      return false;
    }
    Result<Row> key = EvalKeys(*left_keys_, eval_, left_row_);
    if (!key.ok()) {
      status_ = key.status();
      return false;
    }
    left_key_ = std::move(*key);
    return true;
  }

  // Reads the next run of equal-keyed rows from the right input.
  bool LoadNextRightGroup() {
    right_group_.clear();
    if (!pending_valid_) {
      if (!right_->Next(&pending_row_)) {
        status_ = right_->status();
        group_valid_ = false;
        return false;
      }
      Result<Row> key = EvalKeys(*right_keys_, eval_, pending_row_);
      if (!key.ok()) {
        status_ = key.status();
        return false;
      }
      pending_key_ = std::move(*key);
      pending_valid_ = true;
    }
    right_group_key_ = pending_key_;
    right_group_.push_back(std::move(pending_row_));
    pending_valid_ = false;
    // Pull until the key changes.
    for (;;) {
      if (!right_->Next(&pending_row_)) {
        status_ = right_->status();
        break;
      }
      Result<Row> key = EvalKeys(*right_keys_, eval_, pending_row_);
      if (!key.ok()) {
        status_ = key.status();
        return false;
      }
      if (CompareKeys(*key, right_group_key_) == 0) {
        right_group_.push_back(std::move(pending_row_));
        continue;
      }
      pending_key_ = std::move(*key);
      pending_valid_ = true;
      break;
    }
    group_valid_ = true;
    return true;
  }

  std::unique_ptr<storage::RowIterator> left_;
  std::unique_ptr<storage::RowIterator> right_;
  const std::vector<ExprPtr>* left_keys_;
  const std::vector<ExprPtr>* right_keys_;
  udf::EvalContext* eval_;

  Row left_row_;
  Row left_key_;
  std::vector<Row> right_group_;
  Row right_group_key_;
  bool group_valid_ = false;
  size_t group_index_ = 0;
  bool emitting_ = false;
  Row pending_row_;
  Row pending_key_;
  bool pending_valid_ = false;
  Status status_;
};

class NestedLoopIterator : public storage::RowIterator {
 public:
  NestedLoopIterator(std::unique_ptr<storage::RowIterator> left,
                     std::vector<Row> right, const Expr* predicate,
                     udf::EvalContext* eval)
      : left_(std::move(left)),
        right_(std::move(right)),
        predicate_(predicate),
        eval_(eval) {}

  bool Next(Row* row) override {
    for (;;) {
      while (right_index_ < right_.size()) {
        Row candidate = ConcatRows(left_row_, right_[right_index_++]);
        if (predicate_ == nullptr) {
          *row = std::move(candidate);
          return true;
        }
        Result<bool> keep = EvalPredicate(*predicate_, eval_, candidate);
        if (!keep.ok()) {
          status_ = keep.status();
          return false;
        }
        if (*keep) {
          *row = std::move(candidate);
          return true;
        }
      }
      if (!left_->Next(&left_row_)) {
        status_ = left_->status();
        return false;
      }
      right_index_ = 0;
    }
  }

  Status status() const override { return status_; }

 private:
  std::unique_ptr<storage::RowIterator> left_;
  std::vector<Row> right_;
  const Expr* predicate_;
  udf::EvalContext* eval_;
  Row left_row_;
  size_t right_index_ = static_cast<size_t>(-1);
  Status status_;
};

}  // namespace

Schema ConcatSchemas(const Schema& left, const Schema& right) {
  Schema out = left;
  for (const Column& c : right.columns()) out.AddColumn(c);
  return out;
}

HashJoinOp::HashJoinOp(OperatorPtr left, OperatorPtr right,
                       std::vector<ExprPtr> left_keys,
                       std::vector<ExprPtr> right_keys, bool left_outer)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      left_outer_(left_outer),
      schema_(ConcatSchemas(left_->output_schema(), right_->output_schema())) {
  if (left_outer_) {
    // Outer-padded right columns are nullable in the output schema.
    Schema padded = left_->output_schema();
    for (Column col : right_->output_schema().columns()) {
      col.nullable = true;
      padded.AddColumn(std::move(col));
    }
    schema_ = std::move(padded);
  }
}

Result<std::unique_ptr<storage::RowIterator>> HashJoinOp::OpenImpl(
    ExecContext* ctx) {
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::RowIterator> right,
                       right_->Open(ctx));
  std::unordered_map<Row, std::vector<Row>, RowHash, RowEq> build;
  Row row;
  while (right->Next(&row)) {
    HTG_ASSIGN_OR_RETURN(Row key, EvalKeys(right_keys_, &ctx->eval, row));
    bool has_null = false;
    for (const Value& v : key) has_null = has_null || v.is_null();
    if (has_null) continue;
    build[std::move(key)].push_back(std::move(row));
    row.clear();
  }
  HTG_RETURN_IF_ERROR(right->status());
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::RowIterator> left,
                       left_->Open(ctx));
  return {std::make_unique<HashJoinIterator>(
      std::move(left), std::move(build), &left_keys_, &ctx->eval, left_outer_,
      right_->output_schema().num_columns())};
}

std::string HashJoinOp::Describe() const {
  return std::string(left_outer_ ? "Hash Match (Left Outer Join) "
                                 : "Hash Match (Inner Join) ") +
         DescribeJoinKeys(left_keys_, right_keys_);
}

MergeJoinOp::MergeJoinOp(OperatorPtr left, OperatorPtr right,
                         std::vector<ExprPtr> left_keys,
                         std::vector<ExprPtr> right_keys)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      schema_(ConcatSchemas(left_->output_schema(), right_->output_schema())) {}

Result<std::unique_ptr<storage::RowIterator>> MergeJoinOp::OpenImpl(
    ExecContext* ctx) {
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::RowIterator> left,
                       left_->Open(ctx));
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::RowIterator> right,
                       right_->Open(ctx));
  return {std::make_unique<MergeJoinIterator>(std::move(left), std::move(right),
                                              &left_keys_, &right_keys_,
                                              &ctx->eval)};
}

std::string MergeJoinOp::Describe() const {
  return "Merge Join (Inner Join) " +
         DescribeJoinKeys(left_keys_, right_keys_);
}

NestedLoopJoinOp::NestedLoopJoinOp(OperatorPtr left, OperatorPtr right,
                                   ExprPtr predicate)
    : left_(std::move(left)),
      right_(std::move(right)),
      predicate_(std::move(predicate)),
      schema_(ConcatSchemas(left_->output_schema(), right_->output_schema())) {}

Result<std::unique_ptr<storage::RowIterator>> NestedLoopJoinOp::OpenImpl(
    ExecContext* ctx) {
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::RowIterator> right,
                       right_->Open(ctx));
  std::vector<Row> right_rows;
  HTG_RETURN_IF_ERROR(DrainIterator(right.get(), &right_rows));
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::RowIterator> left,
                       left_->Open(ctx));
  return {std::make_unique<NestedLoopIterator>(
      std::move(left), std::move(right_rows), predicate_.get(), &ctx->eval)};
}

std::string NestedLoopJoinOp::Describe() const {
  return "Nested Loops (Inner Join) [" +
         (predicate_ ? predicate_->ToString() : std::string("true")) + "]";
}

}  // namespace htg::exec
