#include "exec/join_ops.h"

#include <unordered_map>

#include "common/string_util.h"
#include "exec/spill_util.h"
#include "storage/spill.h"

namespace htg::exec {

namespace {

struct RowHash {
  size_t operator()(const Row& row) const {
    size_t h = 14695981039346656037ULL;
    for (const Value& v : row) {
      h ^= v.Hash();
      h *= 1099511628211ULL;
    }
    return h;
  }
};

struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};

using BuildMap = std::unordered_map<Row, std::vector<Row>, RowHash, RowEq>;

// Rough accounting overhead per build-table entry (hash node + bucket
// vector slot) on top of the key's and row's own bytes.
constexpr size_t kJoinEntryOverheadBytes = 96;

Result<Row> EvalKeys(const std::vector<ExprPtr>& keys, udf::EvalContext* eval,
                     const Row& row) {
  Row out;
  out.reserve(keys.size());
  for (const ExprPtr& k : keys) {
    HTG_ASSIGN_OR_RETURN(Value v, k->Eval(eval, row));
    out.push_back(std::move(v));
  }
  return out;
}

Row ConcatRows(const Row& left, const Row& right) {
  Row out;
  out.reserve(left.size() + right.size());
  out.insert(out.end(), left.begin(), left.end());
  out.insert(out.end(), right.begin(), right.end());
  return out;
}

std::string DescribeJoinKeys(const std::vector<ExprPtr>& l,
                             const std::vector<ExprPtr>& r) {
  std::string out = "[";
  for (size_t i = 0; i < l.size(); ++i) {
    if (i > 0) out += " AND ";
    out += l[i]->ToString() + " = " + r[i]->ToString();
  }
  out += "]";
  return out;
}

class HashJoinIterator : public storage::RowIterator {
 public:
  HashJoinIterator(std::unique_ptr<storage::RowIterator> left, BuildMap build,
                   const std::vector<ExprPtr>* left_keys,
                   udf::EvalContext* eval, bool left_outer, int right_width,
                   MemoryCharge charge)
      : left_(std::move(left)),
        build_(std::move(build)),
        left_keys_(left_keys),
        eval_(eval),
        left_outer_(left_outer),
        right_width_(right_width),
        charge_(std::move(charge)) {}

  bool Next(Row* row) override {
    for (;;) {
      if (matches_ != nullptr && match_index_ < matches_->size()) {
        *row = ConcatRows(left_row_, (*matches_)[match_index_++]);
        return true;
      }
      if (!left_->Next(&left_row_)) {
        status_ = left_->status();
        return false;
      }
      Result<Row> key = EvalKeys(*left_keys_, eval_, left_row_);
      if (!key.ok()) {
        status_ = key.status();
        return false;
      }
      // SQL equi-join: NULL keys never match.
      bool has_null = false;
      for (const Value& v : *key) has_null = has_null || v.is_null();
      auto it = has_null ? build_.end() : build_.find(*key);
      if (it == build_.end()) {
        if (left_outer_) {
          // Unmatched left row: pad the right side with NULLs.
          *row = ConcatRows(left_row_, Row(right_width_, Value::Null()));
          matches_ = nullptr;
          return true;
        }
        matches_ = nullptr;
        continue;
      }
      matches_ = &it->second;
      match_index_ = 0;
    }
  }

  Status status() const override { return status_; }

 private:
  std::unique_ptr<storage::RowIterator> left_;
  BuildMap build_;
  const std::vector<ExprPtr>* left_keys_;
  udf::EvalContext* eval_;
  bool left_outer_;
  int right_width_;
  MemoryCharge charge_;  // keeps the build table accounted while live
  Row left_row_;
  const std::vector<Row>* matches_ = nullptr;
  size_t match_index_ = 0;
  Status status_;
};

// One spilled join partition: a build run and a probe run on the same
// spill file, paired by partition index. `level` is the recursion depth
// of the pass that will process it.
struct JoinSpillWork {
  storage::SpillFile* file;
  storage::SpillRun build;
  storage::SpillRun probe;
  int level;
};

// Partitioned spill sink for a grace hash join (build rows and probe
// rows hashed into paired runs, plus an optional run for NULL-keyed
// probe rows that a left-outer join must still pad and emit).
class JoinSpill {
 public:
  JoinSpill(storage::TableSpace* space, size_t nparts, int level,
            OperatorStats* stats, bool with_null_run)
      : space_(space),
        nparts_(nparts == 0 ? 1 : nparts),
        level_(level),
        stats_(stats),
        with_null_run_(with_null_run) {}

  Status Open() {
    HTG_ASSIGN_OR_RETURN(file_, storage::SpillFile::Create(space_, "join"));
    build_writers_.reserve(nparts_);
    probe_writers_.reserve(nparts_);
    for (size_t p = 0; p < nparts_; ++p) {
      build_writers_.push_back(
          std::make_unique<storage::SpillRunWriter>(file_.get()));
      probe_writers_.push_back(
          std::make_unique<storage::SpillRunWriter>(file_.get()));
    }
    if (with_null_run_) {
      null_writer_ = std::make_unique<storage::SpillRunWriter>(file_.get());
    }
    return Status::OK();
  }

  int level() const { return level_; }
  storage::SpillFile* file() { return file_.get(); }
  std::unique_ptr<storage::SpillFile> TakeFile() { return std::move(file_); }
  storage::SpillRun TakeNullRun() { return std::move(null_run_); }

  Status AddBuild(const Row& key, const Row& row) {
    return build_writers_[SpillRowHash(key, level_) % nparts_]->Add(row);
  }
  Status AddProbe(const Row& key, const Row& row) {
    return probe_writers_[SpillRowHash(key, level_) % nparts_]->Add(row);
  }
  Status AddNullProbe(const Row& row) { return null_writer_->Add(row); }

  // Seals all partitions and flushes the file, so injected write faults
  // surface inside the statement. A partition with no probe rows can
  // never produce output and is dropped here.
  Result<std::vector<JoinSpillWork>> Finish() {
    std::vector<JoinSpillWork> work;
    for (size_t p = 0; p < nparts_; ++p) {
      storage::SpillRun build;
      storage::SpillRun probe;
      if (build_writers_[p]->rows() > 0) {
        HTG_ASSIGN_OR_RETURN(build, FinishOne(build_writers_[p].get()));
      }
      if (probe_writers_[p]->rows() > 0) {
        HTG_ASSIGN_OR_RETURN(probe, FinishOne(probe_writers_[p].get()));
      }
      if (probe.rows == 0) continue;
      work.push_back(JoinSpillWork{file_.get(), std::move(build),
                                   std::move(probe), level_ + 1});
    }
    build_writers_.clear();
    probe_writers_.clear();
    if (null_writer_ != nullptr && null_writer_->rows() > 0) {
      HTG_ASSIGN_OR_RETURN(null_run_, FinishOne(null_writer_.get()));
    }
    null_writer_.reset();
    HTG_RETURN_IF_ERROR(file_->Flush());
    return work;
  }

 private:
  Result<storage::SpillRun> FinishOne(storage::SpillRunWriter* writer) {
    HTG_ASSIGN_OR_RETURN(storage::SpillRun run, writer->Finish());
    if (stats_ != nullptr) {
      stats_->spill_runs.fetch_add(1, std::memory_order_relaxed);
      stats_->spill_bytes.fetch_add(run.bytes, std::memory_order_relaxed);
    }
    return run;
  }

  storage::TableSpace* space_;
  size_t nparts_;
  int level_;
  OperatorStats* stats_;
  bool with_null_run_;
  std::unique_ptr<storage::SpillFile> file_;
  std::vector<std::unique_ptr<storage::SpillRunWriter>> build_writers_;
  std::vector<std::unique_ptr<storage::SpillRunWriter>> probe_writers_;
  std::unique_ptr<storage::SpillRunWriter> null_writer_;
  storage::SpillRun null_run_;
};

// Streams a spilled (grace) hash join: per partition, the build run is
// loaded into an in-memory table under the budget charge and the probe
// run streamed against it; partitions whose build side still exceeds the
// budget re-partition both runs with a deeper hash salt and re-queue.
// Output order differs from the in-memory join. Owns every spill file,
// so the data is deleted with the iterator.
class GraceHashJoinIterator : public storage::RowIterator {
 public:
  GraceHashJoinIterator(std::vector<std::unique_ptr<storage::SpillFile>> files,
                        std::vector<JoinSpillWork> work,
                        storage::SpillRun null_run,
                        const std::vector<ExprPtr>* left_keys,
                        const std::vector<ExprPtr>* right_keys,
                        ExecContext* ctx, OperatorStats* stats,
                        bool left_outer, int right_width, const char* op_name,
                        MemoryCharge charge)
      : files_(std::move(files)),
        worklist_(std::move(work)),
        left_keys_(left_keys),
        right_keys_(right_keys),
        ctx_(ctx),
        stats_(stats),
        left_outer_(left_outer),
        right_width_(right_width),
        op_name_(op_name),
        charge_(std::move(charge)) {
    if (left_outer_ && null_run.rows > 0 && !files_.empty()) {
      null_reader_ = std::make_unique<storage::SpillRunReader>(
          files_.front().get(), std::move(null_run));
    }
  }

  bool Next(Row* out) override {
    if (!status_.ok()) return false;
    for (;;) {
      if (matches_ != nullptr && match_index_ < matches_->size()) {
        *out = ConcatRows(probe_row_, (*matches_)[match_index_++]);
        return true;
      }
      matches_ = nullptr;
      if (probe_ != nullptr) {
        if (probe_->Next(&probe_row_)) {
          Result<Row> key = EvalKeys(*left_keys_, &ctx_->eval, probe_row_);
          if (!key.ok()) {
            status_ = key.status();
            return false;
          }
          auto it = build_.find(*key);
          if (it == build_.end()) {
            if (left_outer_) {
              *out = ConcatRows(probe_row_, Row(right_width_, Value::Null()));
              return true;
            }
            continue;
          }
          matches_ = &it->second;
          match_index_ = 0;
          continue;
        }
        status_ = probe_->status();
        if (!status_.ok()) return false;
        probe_.reset();
        build_.clear();
        charge_.ReleaseAll();
      }
      if (null_reader_ != nullptr) {
        if (null_reader_->Next(&probe_row_)) {
          *out = ConcatRows(probe_row_, Row(right_width_, Value::Null()));
          return true;
        }
        status_ = null_reader_->status();
        if (!status_.ok()) return false;
        null_reader_.reset();
      }
      if (worklist_.empty()) return false;
      const Status s = LoadNextPartition();
      if (!s.ok()) {
        status_ = s;
        return false;
      }
    }
  }

  Status status() const override { return status_; }

 private:
  Status LoadNextPartition() {
    JoinSpillWork work = std::move(worklist_.back());
    worklist_.pop_back();
    if (work.level > kMaxSpillDepth) return SpillDepthError(op_name_);
    build_.clear();
    charge_.ReleaseAll();
    storage::SpillRunReader build_reader(work.file, std::move(work.build));
    std::unique_ptr<JoinSpill> sub;
    Row row;
    while (build_reader.Next(&row)) {
      HTG_ASSIGN_OR_RETURN(Row key, EvalKeys(*right_keys_, &ctx_->eval, row));
      if (sub != nullptr) {
        HTG_RETURN_IF_ERROR(sub->AddBuild(key, row));
        continue;
      }
      const size_t bytes =
          ApproxRowBytes(key) + ApproxRowBytes(row) + kJoinEntryOverheadBytes;
      const Status charged = charge_.Add(bytes);
      if (charged.ok()) {
        build_[std::move(key)].push_back(std::move(row));
        continue;
      }
      charge_.Release(bytes);
      if (!charged.IsResourceExhausted()) return charged;
      // This partition's build side alone busts the budget: push the
      // resident table (and everything still unread) one level deeper.
      sub = std::make_unique<JoinSpill>(ctx_->tablespace,
                                        ctx_->spill_partitions, work.level,
                                        stats_, /*with_null_run=*/false);
      HTG_RETURN_IF_ERROR(sub->Open());
      for (auto& [bkey, brows] : build_) {
        for (const Row& brow : brows) {
          HTG_RETURN_IF_ERROR(sub->AddBuild(bkey, brow));
        }
      }
      build_.clear();
      charge_.ReleaseAll();
      HTG_RETURN_IF_ERROR(sub->AddBuild(key, row));
    }
    HTG_RETURN_IF_ERROR(build_reader.status());
    if (sub == nullptr) {
      if (stats_ != nullptr) RecordPeakMem(stats_, charge_.peak());
      probe_ = std::make_unique<storage::SpillRunReader>(work.file,
                                                         std::move(work.probe));
      return Status::OK();
    }
    storage::SpillRunReader probe_reader(work.file, std::move(work.probe));
    while (probe_reader.Next(&row)) {
      HTG_ASSIGN_OR_RETURN(Row key, EvalKeys(*left_keys_, &ctx_->eval, row));
      HTG_RETURN_IF_ERROR(sub->AddProbe(key, row));
    }
    HTG_RETURN_IF_ERROR(probe_reader.status());
    HTG_ASSIGN_OR_RETURN(std::vector<JoinSpillWork> sub_work, sub->Finish());
    for (JoinSpillWork& w : sub_work) worklist_.push_back(std::move(w));
    files_.push_back(sub->TakeFile());
    return Status::OK();
  }

  // Files outlive the readers below (destruction is reverse order).
  std::vector<std::unique_ptr<storage::SpillFile>> files_;
  std::vector<JoinSpillWork> worklist_;
  const std::vector<ExprPtr>* left_keys_;
  const std::vector<ExprPtr>* right_keys_;
  ExecContext* ctx_;
  OperatorStats* stats_;
  bool left_outer_;
  int right_width_;
  const char* op_name_;
  MemoryCharge charge_;
  BuildMap build_;
  std::unique_ptr<storage::SpillRunReader> probe_;
  std::unique_ptr<storage::SpillRunReader> null_reader_;
  Row probe_row_;
  const std::vector<Row>* matches_ = nullptr;
  size_t match_index_ = 0;
  Status status_;
};

// Streaming merge join. Both inputs ascend on their keys; buffers the
// right-side group matching the current key (charged against the query
// budget — a pathological key group can be arbitrarily wide).
class MergeJoinIterator : public storage::RowIterator {
 public:
  MergeJoinIterator(std::unique_ptr<storage::RowIterator> left,
                    std::unique_ptr<storage::RowIterator> right,
                    const std::vector<ExprPtr>* left_keys,
                    const std::vector<ExprPtr>* right_keys,
                    udf::EvalContext* eval, MemoryContext* mem)
      : left_(std::move(left)),
        right_(std::move(right)),
        left_keys_(left_keys),
        right_keys_(right_keys),
        eval_(eval),
        charge_(mem, "Merge Join") {}

  bool Next(Row* row) override {
    if (!status_.ok()) return false;
    for (;;) {
      if (emitting_ && group_index_ < right_group_.size()) {
        *row = ConcatRows(left_row_, right_group_[group_index_++]);
        return true;
      }
      emitting_ = false;
      // Advance the left side.
      if (!AdvanceLeft()) return false;
      // Align the right side's buffered group to the new left key.
      for (;;) {
        const int cmp = group_valid_
                            ? CompareKeys(left_key_, right_group_key_)
                            : 1;
        if (group_valid_ && cmp == 0) {
          emitting_ = true;
          group_index_ = 0;
          break;
        }
        if (group_valid_ && cmp < 0) {
          // Left key smaller: this left row has no match.
          break;
        }
        if (!LoadNextRightGroup()) {
          if (!status_.ok()) return false;
          return false;  // right exhausted: no further matches possible
        }
      }
      if (!emitting_) continue;
    }
  }

  Status status() const override { return status_; }

 private:
  static int CompareKeys(const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      const int r = a[i].Compare(b[i]);
      if (r != 0) return r;
    }
    return 0;
  }

  bool AdvanceLeft() {
    if (!left_->Next(&left_row_)) {
      status_ = left_->status();
      return false;
    }
    Result<Row> key = EvalKeys(*left_keys_, eval_, left_row_);
    if (!key.ok()) {
      status_ = key.status();
      return false;
    }
    left_key_ = std::move(*key);
    return true;
  }

  bool BufferRightRow(Row row) {
    const Status charged = charge_.Add(ApproxRowBytes(row));
    if (!charged.ok()) {
      status_ = charged;
      return false;
    }
    right_group_.push_back(std::move(row));
    return true;
  }

  // Reads the next run of equal-keyed rows from the right input.
  bool LoadNextRightGroup() {
    right_group_.clear();
    charge_.ReleaseAll();
    if (!pending_valid_) {
      if (!right_->Next(&pending_row_)) {
        status_ = right_->status();
        group_valid_ = false;
        return false;
      }
      Result<Row> key = EvalKeys(*right_keys_, eval_, pending_row_);
      if (!key.ok()) {
        status_ = key.status();
        return false;
      }
      pending_key_ = std::move(*key);
      pending_valid_ = true;
    }
    right_group_key_ = pending_key_;
    if (!BufferRightRow(std::move(pending_row_))) return false;
    pending_valid_ = false;
    // Pull until the key changes.
    for (;;) {
      if (!right_->Next(&pending_row_)) {
        status_ = right_->status();
        break;
      }
      Result<Row> key = EvalKeys(*right_keys_, eval_, pending_row_);
      if (!key.ok()) {
        status_ = key.status();
        return false;
      }
      if (CompareKeys(*key, right_group_key_) == 0) {
        if (!BufferRightRow(std::move(pending_row_))) return false;
        continue;
      }
      pending_key_ = std::move(*key);
      pending_valid_ = true;
      break;
    }
    group_valid_ = true;
    return true;
  }

  std::unique_ptr<storage::RowIterator> left_;
  std::unique_ptr<storage::RowIterator> right_;
  const std::vector<ExprPtr>* left_keys_;
  const std::vector<ExprPtr>* right_keys_;
  udf::EvalContext* eval_;
  MemoryCharge charge_;

  Row left_row_;
  Row left_key_;
  std::vector<Row> right_group_;
  Row right_group_key_;
  bool group_valid_ = false;
  size_t group_index_ = 0;
  bool emitting_ = false;
  Row pending_row_;
  Row pending_key_;
  bool pending_valid_ = false;
  Status status_;
};

class NestedLoopIterator : public storage::RowIterator {
 public:
  NestedLoopIterator(std::unique_ptr<storage::RowIterator> left,
                     std::vector<Row> right, const Expr* predicate,
                     udf::EvalContext* eval, MemoryCharge charge)
      : left_(std::move(left)),
        right_(std::move(right)),
        predicate_(predicate),
        eval_(eval),
        charge_(std::move(charge)) {}

  bool Next(Row* row) override {
    for (;;) {
      while (right_index_ < right_.size()) {
        Row candidate = ConcatRows(left_row_, right_[right_index_++]);
        if (predicate_ == nullptr) {
          *row = std::move(candidate);
          return true;
        }
        Result<bool> keep = EvalPredicate(*predicate_, eval_, candidate);
        if (!keep.ok()) {
          status_ = keep.status();
          return false;
        }
        if (*keep) {
          *row = std::move(candidate);
          return true;
        }
      }
      if (!left_->Next(&left_row_)) {
        status_ = left_->status();
        return false;
      }
      right_index_ = 0;
    }
  }

  Status status() const override { return status_; }

 private:
  std::unique_ptr<storage::RowIterator> left_;
  std::vector<Row> right_;
  const Expr* predicate_;
  udf::EvalContext* eval_;
  MemoryCharge charge_;  // keeps the inner table accounted while live
  Row left_row_;
  size_t right_index_ = static_cast<size_t>(-1);
  Status status_;
};

}  // namespace

Schema ConcatSchemas(const Schema& left, const Schema& right) {
  Schema out = left;
  for (const Column& c : right.columns()) out.AddColumn(c);
  return out;
}

HashJoinOp::HashJoinOp(OperatorPtr left, OperatorPtr right,
                       std::vector<ExprPtr> left_keys,
                       std::vector<ExprPtr> right_keys, bool left_outer)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      left_outer_(left_outer),
      schema_(ConcatSchemas(left_->output_schema(), right_->output_schema())) {
  if (left_outer_) {
    // Outer-padded right columns are nullable in the output schema.
    Schema padded = left_->output_schema();
    for (Column col : right_->output_schema().columns()) {
      col.nullable = true;
      padded.AddColumn(std::move(col));
    }
    schema_ = std::move(padded);
  }
}

Result<std::unique_ptr<storage::RowIterator>> HashJoinOp::OpenImpl(
    ExecContext* ctx) {
  const char* op_name = left_outer_ ? "Hash Match (Left Outer Join)"
                                    : "Hash Match (Inner Join)";
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::RowIterator> right,
                       right_->Open(ctx));
  OperatorStats* stats = mutable_stats();
  MemoryCharge charge(ctx->mem.get(), op_name);
  BuildMap build;
  std::unique_ptr<JoinSpill> spill;  // engaged when the build overflows
  Row row;
  while (right->Next(&row)) {
    HTG_ASSIGN_OR_RETURN(Row key, EvalKeys(right_keys_, &ctx->eval, row));
    // NULL build keys never match; drop them here.
    bool has_null = false;
    for (const Value& v : key) has_null = has_null || v.is_null();
    if (has_null) continue;
    if (spill != nullptr) {
      HTG_RETURN_IF_ERROR(spill->AddBuild(key, row));
      row.clear();
      continue;
    }
    const size_t bytes =
        ApproxRowBytes(key) + ApproxRowBytes(row) + kJoinEntryOverheadBytes;
    const Status charged = charge.Add(bytes);
    if (charged.ok()) {
      build[std::move(key)].push_back(std::move(row));
      row.clear();
      continue;
    }
    charge.Release(bytes);
    if (!charged.IsResourceExhausted()) return charged;
    if (!ctx->CanSpill()) return SpillUnavailableError(op_name, *ctx->mem);
    // Degrade to a grace hash join: dump the resident build table into
    // hash partitions and keep routing the rest of both inputs there.
    spill = std::make_unique<JoinSpill>(ctx->tablespace, ctx->spill_partitions,
                                        /*level=*/0, stats,
                                        /*with_null_run=*/left_outer_);
    HTG_RETURN_IF_ERROR(spill->Open());
    for (auto& [bkey, brows] : build) {
      for (const Row& brow : brows) {
        HTG_RETURN_IF_ERROR(spill->AddBuild(bkey, brow));
      }
    }
    build.clear();
    charge.ReleaseAll();
    HTG_RETURN_IF_ERROR(spill->AddBuild(key, row));
    row.clear();
  }
  HTG_RETURN_IF_ERROR(right->status());
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::RowIterator> left,
                       left_->Open(ctx));
  if (spill == nullptr) {
    RecordPeakMem(stats, charge.peak());
    return {std::make_unique<HashJoinIterator>(
        std::move(left), std::move(build), &left_keys_, &ctx->eval,
        left_outer_, right_->output_schema().num_columns(),
        std::move(charge))};
  }
  // Route the probe side into the matching partitions. NULL-keyed probe
  // rows match nothing: an inner join drops them, a left-outer join
  // parks them in a dedicated run to pad later.
  while (left->Next(&row)) {
    HTG_ASSIGN_OR_RETURN(Row key, EvalKeys(left_keys_, &ctx->eval, row));
    bool has_null = false;
    for (const Value& v : key) has_null = has_null || v.is_null();
    if (has_null) {
      if (left_outer_) HTG_RETURN_IF_ERROR(spill->AddNullProbe(row));
      continue;
    }
    HTG_RETURN_IF_ERROR(spill->AddProbe(key, row));
  }
  HTG_RETURN_IF_ERROR(left->status());
  HTG_ASSIGN_OR_RETURN(std::vector<JoinSpillWork> work, spill->Finish());
  storage::SpillRun null_run = spill->TakeNullRun();
  std::vector<std::unique_ptr<storage::SpillFile>> files;
  files.push_back(spill->TakeFile());
  RecordPeakMem(stats, charge.peak());
  return {std::make_unique<GraceHashJoinIterator>(
      std::move(files), std::move(work), std::move(null_run), &left_keys_,
      &right_keys_, ctx, stats, left_outer_,
      right_->output_schema().num_columns(), op_name, std::move(charge))};
}

std::string HashJoinOp::Describe() const {
  return std::string(left_outer_ ? "Hash Match (Left Outer Join) "
                                 : "Hash Match (Inner Join) ") +
         DescribeJoinKeys(left_keys_, right_keys_);
}

MergeJoinOp::MergeJoinOp(OperatorPtr left, OperatorPtr right,
                         std::vector<ExprPtr> left_keys,
                         std::vector<ExprPtr> right_keys)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      schema_(ConcatSchemas(left_->output_schema(), right_->output_schema())) {}

Result<std::unique_ptr<storage::RowIterator>> MergeJoinOp::OpenImpl(
    ExecContext* ctx) {
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::RowIterator> left,
                       left_->Open(ctx));
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::RowIterator> right,
                       right_->Open(ctx));
  return {std::make_unique<MergeJoinIterator>(std::move(left), std::move(right),
                                              &left_keys_, &right_keys_,
                                              &ctx->eval, ctx->mem.get())};
}

std::string MergeJoinOp::Describe() const {
  return "Merge Join (Inner Join) " +
         DescribeJoinKeys(left_keys_, right_keys_);
}

NestedLoopJoinOp::NestedLoopJoinOp(OperatorPtr left, OperatorPtr right,
                                   ExprPtr predicate)
    : left_(std::move(left)),
      right_(std::move(right)),
      predicate_(std::move(predicate)),
      schema_(ConcatSchemas(left_->output_schema(), right_->output_schema())) {}

Result<std::unique_ptr<storage::RowIterator>> NestedLoopJoinOp::OpenImpl(
    ExecContext* ctx) {
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::RowIterator> right,
                       right_->Open(ctx));
  std::vector<Row> right_rows;
  HTG_RETURN_IF_ERROR(DrainIterator(right.get(), &right_rows));
  // The inner table has no out-of-core fallback; over budget is a typed
  // statement error.
  MemoryCharge charge(ctx->mem.get(), "Nested Loops (Inner Join)");
  size_t total = 0;
  for (const Row& r : right_rows) total += ApproxRowBytes(r);
  const Status charged = charge.Add(total);
  if (!charged.ok()) return charged;
  RecordPeakMem(mutable_stats(), charge.peak());
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::RowIterator> left,
                       left_->Open(ctx));
  return {std::make_unique<NestedLoopIterator>(
      std::move(left), std::move(right_rows), predicate_.get(), &ctx->eval,
      std::move(charge))};
}

std::string NestedLoopJoinOp::Describe() const {
  return "Nested Loops (Inner Join) [" +
         (predicate_ ? predicate_->ToString() : std::string("true")) + "]";
}

}  // namespace htg::exec
