#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"

namespace htg::exec {

struct SortKey {
  ExprPtr expr;
  bool descending = false;
};

// In-memory sort (blocking).
class SortOp : public Operator {
 public:
  SortOp(OperatorPtr child, std::vector<SortKey> keys)
      : child_(std::move(child)), keys_(std::move(keys)) {}

  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  Result<std::unique_ptr<storage::RowIterator>> OpenImpl(ExecContext* ctx) override;
  std::string Describe() const override;
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }
  int64_t EstimateRows() const override { return child_->EstimateRows(); }

 private:
  OperatorPtr child_;
  std::vector<SortKey> keys_;
};

// ROW_NUMBER() OVER (ORDER BY keys): sorts the input and appends a BIGINT
// rank column ("Sequence Project" in SQL Server plans).
class RowNumberOp : public Operator {
 public:
  RowNumberOp(OperatorPtr child, std::vector<SortKey> keys,
              std::string column_name);

  const Schema& output_schema() const override { return schema_; }
  Result<std::unique_ptr<storage::RowIterator>> OpenImpl(ExecContext* ctx) override;
  std::string Describe() const override;
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }
  int64_t EstimateRows() const override { return child_->EstimateRows(); }

 private:
  OperatorPtr child_;
  std::vector<SortKey> keys_;
  Schema schema_;
};

// Shared helper: drains `child` and returns its rows sorted by `keys`.
// Charges the buffered working set against ctx->mem and degrades to an
// external merge sort (runs through the tablespace) when the budget is
// exceeded; with spilling unavailable it fails with kResourceExhausted.
// Peak memory and spill activity are recorded into `stats`.
Result<std::unique_ptr<storage::RowIterator>> OpenSorted(
    Operator* child, const std::vector<SortKey>& keys, ExecContext* ctx,
    OperatorStats* stats);

}  // namespace htg::exec

