#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalog/database.h"
#include "common/memory.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "exec/expression.h"
#include "storage/mvcc.h"
#include "storage/table.h"
#include "storage/tablespace.h"
#include "types/schema.h"

namespace htg::exec {

// Per-execution state threaded through every operator.
struct ExecContext {
  Database* db = nullptr;
  ThreadPool* pool = nullptr;
  int dop = 1;
  // EXPLAIN ANALYZE: time Open/Next/close and count rows per operator.
  // Off by default so normal queries pay nothing for the stats machinery.
  bool collect_stats = false;
  // Rows per RowBatch on the vectorized pull path; 1 forces the legacy
  // row-at-a-time iterators (parity testing, bisecting regressions).
  size_t batch_rows = RowBatch::kDefaultRows;
  // Query-scoped memory budget shared by every operator (and every
  // morsel-worker copy of this context). Default: unlimited.
  std::shared_ptr<MemoryContext> mem = std::make_shared<MemoryContext>();
  // Where over-budget operators write spill runs; null disables spilling
  // (over-budget statements fail with kResourceExhausted instead).
  storage::TableSpace* tablespace = nullptr;
  // Fan-out of one partition-spill pass (hash aggregate / hash join).
  size_t spill_partitions = 16;
  // MVCC visibility: when set, table scans bound themselves to this
  // snapshot (heap row-count prefix, clustered stamp filter) instead of
  // reading the live table tail. The pointer outlives the statement (it
  // points into the session's TxnContext or the engine's per-statement
  // pin) and is shared by every morsel-worker copy of this context.
  const storage::Snapshot* snapshot = nullptr;
  // The reading transaction's id — a transaction always sees its own
  // uncommitted writes. kFrozenTxn outside any transaction.
  storage::TxnId txn_id = storage::kFrozenTxn;
  udf::EvalContext eval;

  bool UseBatches() const { return batch_rows > 1; }

  // True when an over-budget operator may degrade to disk instead of
  // failing the statement.
  bool CanSpill() const {
    return mem->spill_enabled() && tablespace != nullptr;
  }

  static ExecContext For(Database* db) {
    ExecContext ctx;
    ctx.db = db;
    ctx.pool = &ThreadPool::Default();
    ctx.dop = db != nullptr ? db->options().max_dop : 1;
    if (db != nullptr) {
      ctx.batch_rows = db->options().ResolvedBatchRows();
      ctx.mem = std::make_shared<MemoryContext>(
          db->options().ResolvedQueryMemBytes(),
          db->options().ResolvedSpillEnabled());
      ctx.tablespace = db->tablespace();
      ctx.spill_partitions = db->options().spill_partitions;
      ctx.eval = db->MakeEvalContext();
    }
    return ctx;
  }
};

// Runtime counters for one plan operator, filled only under
// ExecContext::collect_stats. Atomic because parallel plans feed one
// operator's stats from several morsel workers at once. Exchange
// operators additionally record per-worker totals (skew diagnosis).
struct OperatorStats {
  std::atomic<uint64_t> open_calls{0};  // streams opened (morsel replays)
  std::atomic<uint64_t> rows_out{0};
  std::atomic<uint64_t> batches_out{0};  // NextBatch calls that produced rows
  std::atomic<uint64_t> open_ns{0};
  std::atomic<uint64_t> next_ns{0};   // cumulative time inside Next
  std::atomic<uint64_t> close_ns{0};  // iterator teardown
  // Memory governance: high-water of bytes this operator had charged
  // against the query's MemoryContext, and its spill activity. Written
  // unconditionally (rare events, atomics) so EXPLAIN ANALYZE is honest
  // even when only some stats collection ran.
  std::atomic<uint64_t> peak_mem_bytes{0};
  std::atomic<uint64_t> spill_runs{0};
  std::atomic<uint64_t> spill_bytes{0};
  // Indexed by dense worker id; sized by the exchange operator at Open.
  // Each slot is written by exactly one worker thread.
  std::vector<uint64_t> worker_rows;
  std::vector<uint64_t> worker_morsels;
  std::vector<uint64_t> worker_batches;
};

// Fetch-max into an operator's peak-mem counter (several charges per
// operator, possibly from concurrent workers).
inline void RecordPeakMem(OperatorStats* stats, uint64_t bytes) {
  uint64_t prev = stats->peak_mem_bytes.load(std::memory_order_relaxed);
  while (bytes > prev && !stats->peak_mem_bytes.compare_exchange_weak(
                             prev, bytes, std::memory_order_relaxed)) {
  }
}

// A physical plan node. Open() builds the pull-based row stream; the tree
// structure is also what EXPLAIN prints.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual const Schema& output_schema() const = 0;

  // Non-virtual entry point: forwards to OpenImpl, and when the context
  // collects stats, times the call and wraps the returned iterator so
  // rows and Next() time accumulate into stats(). The fast path is a
  // single branch.
  Result<std::unique_ptr<storage::RowIterator>> Open(ExecContext* ctx);

  // One-line plan description, e.g. "Hash Match (Aggregate) [groups=1]".
  virtual std::string Describe() const = 0;
  virtual std::vector<const Operator*> children() const { return {}; }

  // Planner cardinality estimate for ANALYZE's actual-vs-estimated
  // column; negative when unknown.
  virtual int64_t EstimateRows() const { return -1; }

  // Stats are execution telemetry, not plan state: mutable so morsel
  // pipeline clones can be pointed at the stats of the EXPLAIN tree node
  // they replay (SetStatsSink), which the renderer walks const.
  OperatorStats* mutable_stats() const { return sink_; }
  const OperatorStats& stats() const { return *sink_; }
  void SetStatsSink(OperatorStats* sink) const { sink_ = sink; }

 protected:
  virtual Result<std::unique_ptr<storage::RowIterator>> OpenImpl(
      ExecContext* ctx) = 0;

 private:
  mutable OperatorStats stats_;
  mutable OperatorStats* sink_ = &stats_;
};

using OperatorPtr = std::unique_ptr<Operator>;

// Renders the plan tree, most SQL-Server-showplan-looking thing we print:
//
//   Sequence Project (ROW_NUMBER)
//     Sort [COUNT(*) DESC]
//       Gather Streams (DOP=4)
//         Hash Match (Partial Aggregate) ...
std::string ExplainPlan(const Operator& root);

// Renders the plan tree annotated with runtime stats. Only meaningful
// after the plan ran with ExecContext::collect_stats set; operators that
// never opened (EXPLAIN-only markers) print without an annotation.
//
//   Hash Match (Aggregate) [...] (actual rows=4, est rows=?, time=1.2 ms)
//     Filter [...] (actual rows=600, est rows=333, time=0.8 ms)
std::string ExplainAnalyzePlan(const Operator& root);

// Drains `iter`, appending every row to `rows`. Pulls batches and moves
// rows out of them, so batch-native pipelines stay vectorized up to the
// final materialization.
Status DrainIterator(storage::RowIterator* iter, std::vector<Row>* rows);

// Wraps an iterator so rows passed through are counted into *counter
// (single-writer; exchange operators use one slot per worker). When
// `batch_counter` is non-null, NextBatch calls that produce rows are
// counted into it too (worker batch-skew diagnosis).
std::unique_ptr<storage::RowIterator> WrapCounting(
    std::unique_ptr<storage::RowIterator> inner, uint64_t* counter,
    uint64_t* batch_counter = nullptr);

}  // namespace htg::exec
