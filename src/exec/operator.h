#pragma once

#include <memory>
#include <string>
#include <vector>

#include "catalog/database.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "exec/expression.h"
#include "storage/table.h"
#include "types/schema.h"

namespace htg::exec {

// Per-execution state threaded through every operator.
struct ExecContext {
  Database* db = nullptr;
  ThreadPool* pool = nullptr;
  int dop = 1;
  udf::EvalContext eval;

  static ExecContext For(Database* db) {
    ExecContext ctx;
    ctx.db = db;
    ctx.pool = &ThreadPool::Default();
    ctx.dop = db != nullptr ? db->options().max_dop : 1;
    if (db != nullptr) ctx.eval = db->MakeEvalContext();
    return ctx;
  }
};

// A physical plan node. Open() builds the pull-based row stream; the tree
// structure is also what EXPLAIN prints.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual const Schema& output_schema() const = 0;
  virtual Result<std::unique_ptr<storage::RowIterator>> Open(
      ExecContext* ctx) = 0;

  // One-line plan description, e.g. "Hash Match (Aggregate) [groups=1]".
  virtual std::string Describe() const = 0;
  virtual std::vector<const Operator*> children() const { return {}; }
};

using OperatorPtr = std::unique_ptr<Operator>;

// Renders the plan tree, most SQL-Server-showplan-looking thing we print:
//
//   Sequence Project (ROW_NUMBER)
//     Sort [COUNT(*) DESC]
//       Gather Streams (DOP=4)
//         Hash Match (Partial Aggregate) ...
std::string ExplainPlan(const Operator& root);

// Drains `iter`, appending every row to `rows`.
Status DrainIterator(storage::RowIterator* iter, std::vector<Row>* rows);

}  // namespace htg::exec

