#pragma once

#include <memory>
#include <vector>

#include "common/result.h"
#include "storage/table.h"
#include "types/row_batch.h"

namespace htg::exec {

// Base class for batch-native executor iterators. Subclasses implement
// ProduceBatch() only; this class provides both pull interfaces:
//
//   * NextBatch() — the vectorized fast path. Ticks the exec.batch.*
//     metrics so batch throughput shows up next to the morsel counters.
//   * Next() — a row-at-a-time shim that drains an internal buffer batch
//     via RowBatch::FillRow. This is the sanctioned row seam: row-only
//     consumers (CROSS APPLY, stream aggregate, DISTINCT) sit on top of
//     batch producers without any operator knowing about the other side.
//
// Error contract matches storage::RowIterator: a false return means end
// of stream or error; status() distinguishes.
class BatchIterator : public storage::RowIterator {
 public:
  explicit BatchIterator(size_t batch_rows)
      : batch_rows_(batch_rows == 0 ? RowBatch::kDefaultRows : batch_rows),
        buffer_(batch_rows_) {}

  bool Next(Row* row) final;
  bool NextBatch(RowBatch* batch) final;
  bool BatchNative() const final { return true; }

  Status status() const override { return status_; }

 protected:
  // Clears and fills `batch` with up to batch_rows_ rows. Returns true
  // iff at least one live row was produced; on error, sets status_ and
  // returns false.
  virtual bool ProduceBatch(RowBatch* batch) = 0;

  size_t batch_rows_;
  Status status_;

 private:
  RowBatch buffer_;  // backs the Next() shim only
  size_t buffer_pos_ = 0;
};

// Row-native iterator over pre-materialized rows — the one shared
// implementation behind sort output, aggregate output, constant scans,
// and the row-pipeline parallel gather (previously four private copies).
// Deliberately NOT batch-native: the rows already exist, so Next() hands
// each one over with a single vector move, while batching them would
// move every value into columns and straight back out. Batch consumers
// above a materialization point still work via the inherited adapter.
class MaterializedRowsIterator : public storage::RowIterator {
 public:
  explicit MaterializedRowsIterator(std::vector<Row> rows)
      : rows_(std::move(rows)) {}

  bool Next(Row* row) override {
    if (next_ >= rows_.size()) return false;
    *row = std::move(rows_[next_++]);
    return true;
  }

 private:
  std::vector<Row> rows_;
  size_t next_ = 0;
};

// Batch-native iterator over pre-materialized batches (parallel gather:
// morsel workers drain their pipelines into RowBatch buffers, and the
// gather side replays them without ever converting to rows).
class MaterializedBatchesIterator : public BatchIterator {
 public:
  explicit MaterializedBatchesIterator(
      std::vector<RowBatch> batches,
      size_t batch_rows = RowBatch::kDefaultRows)
      : BatchIterator(batch_rows), batches_(std::move(batches)) {}

 protected:
  bool ProduceBatch(RowBatch* batch) override;

 private:
  std::vector<RowBatch> batches_;
  size_t next_ = 0;
};

// Drains `iter` into freshly allocated batches of `batch_rows` capacity,
// appending them to `out` (empty batches are not stored). Adds the live
// row count to *rows.
Status DrainBatches(storage::RowIterator* iter, size_t batch_rows,
                    std::vector<RowBatch>* out, uint64_t* rows);

}  // namespace htg::exec
