#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "udf/function.h"

namespace htg::exec {

// FROM-clause invocation of a table-valued function: arguments are
// constants (evaluated once at Open), the TVF's iterator streams rows.
class TvfScanOp : public Operator {
 public:
  TvfScanOp(const udf::TableFunction* fn, std::vector<ExprPtr> args,
            Schema schema)
      : fn_(fn), args_(std::move(args)), schema_(std::move(schema)) {}

  const Schema& output_schema() const override { return schema_; }
  Result<std::unique_ptr<storage::RowIterator>> OpenImpl(ExecContext* ctx) override;
  std::string Describe() const override;

 private:
  const udf::TableFunction* fn_;
  std::vector<ExprPtr> args_;
  Schema schema_;
};

// CROSS APPLY tvf(args): for each input row, evaluates the arguments
// against that row, opens the TVF, and emits input ⨯ tvf rows. The pivot
// step of the paper's Query 3 (PivotAlignment) runs through this operator.
class CrossApplyOp : public Operator {
 public:
  CrossApplyOp(OperatorPtr child, const udf::TableFunction* fn,
               std::vector<ExprPtr> args, Schema fn_schema);

  const Schema& output_schema() const override { return schema_; }
  Result<std::unique_ptr<storage::RowIterator>> OpenImpl(ExecContext* ctx) override;
  std::string Describe() const override;
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

 private:
  OperatorPtr child_;
  const udf::TableFunction* fn_;
  std::vector<ExprPtr> args_;
  Schema fn_schema_;
  Schema schema_;
};

}  // namespace htg::exec

