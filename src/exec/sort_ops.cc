#include "exec/sort_ops.h"

#include <algorithm>

#include "common/string_util.h"
#include "exec/batch.h"
#include "exec/parallel.h"

namespace htg::exec {

namespace {

std::string DescribeKeys(const std::vector<SortKey>& keys) {
  std::string out = "[";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) out += ", ";
    out += keys[i].expr->ToString();
    if (keys[i].descending) out += " DESC";
  }
  out += "]";
  return out;
}

}  // namespace

namespace {

// Rows below this count sort serially: chunked sorting + k-way merge has
// fixed overhead that only pays off on sizable inputs.
constexpr size_t kParallelSortMinRows = 4096;

}  // namespace

Result<std::vector<Row>> DrainAndSort(Operator* child,
                                      const std::vector<SortKey>& keys,
                                      ExecContext* ctx) {
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::RowIterator> iter,
                       child->Open(ctx));
  std::vector<Row> rows;
  std::vector<Row> sort_keys;
  bool have_keys = false;
  if (ctx->UseBatches() && iter->BatchNative()) {
    // Batch path: extract sort keys with vectorized kernels while the
    // input drains, materializing rows by moving values out of each
    // batch. The index sort below then runs against precomputed keys.
    RowBatch batch(ctx->batch_rows);
    std::vector<std::vector<Value>> key_cols(keys.size());
    while (iter->NextBatch(&batch)) {
      const size_t n = batch.ActiveRows();
      const uint32_t* sel = batch.selection_data();
      for (size_t k = 0; k < keys.size(); ++k) {
        HTG_RETURN_IF_ERROR(
            keys[k].expr->EvalBatch(&ctx->eval, batch, sel, n, &key_cols[k]));
      }
      rows.reserve(rows.size() + n);
      sort_keys.reserve(sort_keys.size() + n);
      for (size_t j = 0; j < n; ++j) {
        Row key;
        key.reserve(keys.size());
        for (size_t k = 0; k < keys.size(); ++k) {
          key.push_back(std::move(key_cols[k][j]));
        }
        sort_keys.push_back(std::move(key));
        const size_t r = batch.ActiveIndex(j);
        Row row;
        row.reserve(batch.num_columns());
        for (size_t c = 0; c < batch.num_columns(); ++c) {
          row.push_back(std::move(batch.column(c)[r]));
        }
        rows.push_back(std::move(row));
      }
    }
    HTG_RETURN_IF_ERROR(iter->status());
    have_keys = true;
  } else {
    HTG_RETURN_IF_ERROR(DrainIterator(iter.get(), &rows));
    sort_keys.resize(rows.size());
  }

  const int dop =
      !have_keys && ctx->pool != nullptr && ctx->dop > 1 &&
              rows.size() >= kParallelSortMinRows
          ? std::min<int>(ctx->dop, static_cast<int>(rows.size() / 1024))
          : 1;

  // Row path: precompute sort keys once per row (exprs may be arbitrarily
  // costly); with DOP > 1 the evaluation is chunked across workers, each
  // with its own EvalContext copy. The batch path already filled
  // sort_keys above.
  const auto eval_chunk = [&](udf::EvalContext* eval, size_t lo,
                              size_t hi) -> Status {
    for (size_t r = lo; r < hi; ++r) {
      Row key;
      key.reserve(keys.size());
      for (const SortKey& k : keys) {
        HTG_ASSIGN_OR_RETURN(Value v, k.expr->Eval(eval, rows[r]));
        key.push_back(std::move(v));
      }
      sort_keys[r] = std::move(key);
    }
    return Status::OK();
  };
  // Comparator ordering by (key values, original index): ties resolve to
  // input order, so the result is identical to a serial stable sort no
  // matter how the rows are chunked.
  const auto less = [&](size_t a, size_t b) {
    for (size_t k = 0; k < keys.size(); ++k) {
      const int cmp = sort_keys[a][k].Compare(sort_keys[b][k]);
      if (cmp != 0) return keys[k].descending ? cmp > 0 : cmp < 0;
    }
    return a < b;
  };

  std::vector<size_t> order(rows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  if (dop <= 1) {
    if (!have_keys) {
      HTG_RETURN_IF_ERROR(eval_chunk(&ctx->eval, 0, rows.size()));
    }
    std::sort(order.begin(), order.end(), less);
  } else {
    // Parallel sort: per-worker chunk sort, then a k-way merge.
    const size_t nchunks = static_cast<size_t>(dop);
    const size_t chunk = (rows.size() + nchunks - 1) / nchunks;
    std::vector<udf::EvalContext> evals(nchunks, ctx->eval);
    HTG_RETURN_IF_ERROR(ParallelDrainMorsels(
        ctx->pool, dop, nchunks, [&](int, size_t c) -> Status {
          const size_t lo = c * chunk;
          const size_t hi = std::min(lo + chunk, rows.size());
          if (lo >= hi) return Status::OK();
          HTG_RETURN_IF_ERROR(eval_chunk(&evals[c], lo, hi));
          std::sort(order.begin() + lo, order.begin() + hi, less);
          return Status::OK();
        }));
    std::vector<size_t> merged;
    merged.reserve(order.size());
    std::vector<size_t> head(nchunks);
    for (size_t c = 0; c < nchunks; ++c) head[c] = c * chunk;
    for (size_t produced = 0; produced < order.size(); ++produced) {
      size_t best = nchunks;
      for (size_t c = 0; c < nchunks; ++c) {
        const size_t end = std::min((c + 1) * chunk, order.size());
        if (head[c] >= end) continue;
        if (best == nchunks || less(order[head[c]], order[head[best]])) {
          best = c;
        }
      }
      merged.push_back(order[head[best]++]);
    }
    order = std::move(merged);
  }

  std::vector<Row> sorted;
  sorted.reserve(rows.size());
  for (size_t i : order) sorted.push_back(std::move(rows[i]));
  return sorted;
}

Result<std::unique_ptr<storage::RowIterator>> SortOp::OpenImpl(ExecContext* ctx) {
  HTG_ASSIGN_OR_RETURN(std::vector<Row> rows,
                       DrainAndSort(child_.get(), keys_, ctx));
  return {std::make_unique<MaterializedRowsIterator>(std::move(rows))};
}

std::string SortOp::Describe() const { return "Sort " + DescribeKeys(keys_); }

RowNumberOp::RowNumberOp(OperatorPtr child, std::vector<SortKey> keys,
                         std::string column_name)
    : child_(std::move(child)), keys_(std::move(keys)) {
  schema_ = child_->output_schema();
  Column col;
  col.name = std::move(column_name);
  col.type = DataType::kInt64;
  schema_.AddColumn(col);
}

Result<std::unique_ptr<storage::RowIterator>> RowNumberOp::OpenImpl(
    ExecContext* ctx) {
  HTG_ASSIGN_OR_RETURN(std::vector<Row> rows,
                       DrainAndSort(child_.get(), keys_, ctx));
  for (size_t i = 0; i < rows.size(); ++i) {
    rows[i].push_back(Value::Int64(static_cast<int64_t>(i + 1)));
  }
  return {std::make_unique<MaterializedRowsIterator>(std::move(rows))};
}

std::string RowNumberOp::Describe() const {
  return "Sequence Project (ROW_NUMBER) over Sort " + DescribeKeys(keys_);
}

}  // namespace htg::exec
