#include "exec/sort_ops.h"

#include <algorithm>

#include "common/string_util.h"

namespace htg::exec {

namespace {

class RowsIterator : public storage::RowIterator {
 public:
  explicit RowsIterator(std::vector<Row> rows) : rows_(std::move(rows)) {}

  bool Next(Row* row) override {
    if (next_ >= rows_.size()) return false;
    *row = std::move(rows_[next_++]);
    return true;
  }

 private:
  std::vector<Row> rows_;
  size_t next_ = 0;
};

std::string DescribeKeys(const std::vector<SortKey>& keys) {
  std::string out = "[";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) out += ", ";
    out += keys[i].expr->ToString();
    if (keys[i].descending) out += " DESC";
  }
  out += "]";
  return out;
}

}  // namespace

Result<std::vector<Row>> DrainAndSort(Operator* child,
                                      const std::vector<SortKey>& keys,
                                      ExecContext* ctx) {
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::RowIterator> iter,
                       child->Open(ctx));
  std::vector<Row> rows;
  HTG_RETURN_IF_ERROR(DrainIterator(iter.get(), &rows));

  // Precompute sort keys once per row (exprs may be arbitrarily costly).
  std::vector<Row> sort_keys;
  sort_keys.reserve(rows.size());
  for (const Row& row : rows) {
    Row key;
    key.reserve(keys.size());
    for (const SortKey& k : keys) {
      HTG_ASSIGN_OR_RETURN(Value v, k.expr->Eval(&ctx->eval, row));
      key.push_back(std::move(v));
    }
    sort_keys.push_back(std::move(key));
  }
  std::vector<size_t> order(rows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < keys.size(); ++k) {
      const int cmp = sort_keys[a][k].Compare(sort_keys[b][k]);
      if (cmp != 0) return keys[k].descending ? cmp > 0 : cmp < 0;
    }
    return false;
  });
  std::vector<Row> sorted;
  sorted.reserve(rows.size());
  for (size_t i : order) sorted.push_back(std::move(rows[i]));
  return sorted;
}

Result<std::unique_ptr<storage::RowIterator>> SortOp::Open(ExecContext* ctx) {
  HTG_ASSIGN_OR_RETURN(std::vector<Row> rows,
                       DrainAndSort(child_.get(), keys_, ctx));
  return {std::make_unique<RowsIterator>(std::move(rows))};
}

std::string SortOp::Describe() const { return "Sort " + DescribeKeys(keys_); }

RowNumberOp::RowNumberOp(OperatorPtr child, std::vector<SortKey> keys,
                         std::string column_name)
    : child_(std::move(child)), keys_(std::move(keys)) {
  schema_ = child_->output_schema();
  Column col;
  col.name = std::move(column_name);
  col.type = DataType::kInt64;
  schema_.AddColumn(col);
}

Result<std::unique_ptr<storage::RowIterator>> RowNumberOp::Open(
    ExecContext* ctx) {
  HTG_ASSIGN_OR_RETURN(std::vector<Row> rows,
                       DrainAndSort(child_.get(), keys_, ctx));
  for (size_t i = 0; i < rows.size(); ++i) {
    rows[i].push_back(Value::Int64(static_cast<int64_t>(i + 1)));
  }
  return {std::make_unique<RowsIterator>(std::move(rows))};
}

std::string RowNumberOp::Describe() const {
  return "Sequence Project (ROW_NUMBER) over Sort " + DescribeKeys(keys_);
}

}  // namespace htg::exec
