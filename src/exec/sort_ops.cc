#include "exec/sort_ops.h"

#include <algorithm>
#include <iterator>

#include "common/string_util.h"
#include "exec/batch.h"
#include "exec/parallel.h"
#include "exec/spill_util.h"
#include "storage/spill.h"

namespace htg::exec {

namespace {

std::string DescribeKeys(const std::vector<SortKey>& keys) {
  std::string out = "[";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) out += ", ";
    out += keys[i].expr->ToString();
    if (keys[i].descending) out += " DESC";
  }
  out += "]";
  return out;
}

// Rows below this count sort serially: chunked sorting + k-way merge has
// fixed overhead that only pays off on sizable inputs.
constexpr size_t kParallelSortMinRows = 4096;

// K-way merge over sorted spill runs. Records are (key values ++ payload
// row); the comparator orders by the key prefix with per-key direction,
// breaking ties by run index — runs are written in arrival order and
// sorted stably, so the merged order equals the in-memory stable sort.
class SortRunMergeIterator : public storage::RowIterator {
 public:
  SortRunMergeIterator(std::unique_ptr<storage::SpillFile> file,
                       std::vector<storage::SpillRun> runs, size_t nkeys,
                       std::vector<bool> descending)
      : file_(std::move(file)),
        nkeys_(nkeys),
        descending_(std::move(descending)) {
    readers_.reserve(runs.size());
    // One head row per run: bounded by the merge fan-in, not the data.
    heads_.resize(runs.size());  // NOLINT(htg-exec-untracked-reserve)
    alive_.assign(runs.size(), false);
    for (auto& run : runs) {
      readers_.push_back(
          std::make_unique<storage::SpillRunReader>(file_.get(),
                                                    std::move(run)));
    }
    for (size_t i = 0; i < readers_.size(); ++i) Advance(i);
  }

  bool Next(Row* row) override {
    if (!status_.ok()) return false;
    size_t best = readers_.size();
    for (size_t i = 0; i < readers_.size(); ++i) {
      if (!alive_[i]) continue;
      if (best == readers_.size() || KeyLess(heads_[i], heads_[best])) {
        best = i;
      }
    }
    if (best == readers_.size()) return false;
    Row& head = heads_[best];
    row->assign(std::make_move_iterator(head.begin() +
                                        static_cast<ptrdiff_t>(nkeys_)),
                std::make_move_iterator(head.end()));
    Advance(best);
    return status_.ok();
  }

  Status status() const override { return status_; }

 private:
  bool KeyLess(const Row& a, const Row& b) const {
    for (size_t k = 0; k < nkeys_; ++k) {
      const int cmp = a[k].Compare(b[k]);
      if (cmp != 0) return descending_[k] ? cmp > 0 : cmp < 0;
    }
    return false;  // equal keys: the lower run index (earlier run) wins
  }

  void Advance(size_t i) {
    alive_[i] = readers_[i]->Next(&heads_[i]);
    if (!alive_[i] && !readers_[i]->status().ok()) {
      status_ = readers_[i]->status();
    }
  }

  std::unique_ptr<storage::SpillFile> file_;
  size_t nkeys_;
  std::vector<bool> descending_;
  std::vector<std::unique_ptr<storage::SpillRunReader>> readers_;
  std::vector<Row> heads_;
  std::vector<bool> alive_;
  Status status_;
};

// Sorts `order` (indices into rows/sort_keys) by the key columns,
// breaking ties by original index so the result matches a stable sort.
void SortOrder(std::vector<size_t>* order, const std::vector<Row>& sort_keys,
               const std::vector<SortKey>& keys) {
  std::sort(order->begin(), order->end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < keys.size(); ++k) {
      const int cmp = sort_keys[a][k].Compare(sort_keys[b][k]);
      if (cmp != 0) return keys[k].descending ? cmp > 0 : cmp < 0;
    }
    return a < b;
  });
}

}  // namespace

Result<std::unique_ptr<storage::RowIterator>> OpenSorted(
    Operator* child, const std::vector<SortKey>& keys, ExecContext* ctx,
    OperatorStats* stats) {
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::RowIterator> iter,
                       child->Open(ctx));
  MemoryCharge charge(ctx->mem.get(), "Sort");
  std::vector<Row> rows;
  std::vector<Row> sort_keys;
  std::unique_ptr<storage::SpillFile> spill;
  std::vector<storage::SpillRun> runs;

  // Sorts the buffered rows and writes them out as one external run
  // (key columns ++ payload), releasing their memory charge.
  const auto flush_run = [&]() -> Status {
    if (spill == nullptr) {
      HTG_ASSIGN_OR_RETURN(spill,
                           storage::SpillFile::Create(ctx->tablespace,
                                                      "sort"));
    }
    std::vector<size_t> order(rows.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    SortOrder(&order, sort_keys, keys);
    storage::SpillRunWriter writer(spill.get());
    Row record;
    for (size_t i : order) {
      record.clear();
      record.reserve(sort_keys[i].size() + rows[i].size());
      for (Value& v : sort_keys[i]) record.push_back(std::move(v));
      for (Value& v : rows[i]) record.push_back(std::move(v));
      HTG_RETURN_IF_ERROR(writer.Add(record));
    }
    HTG_ASSIGN_OR_RETURN(storage::SpillRun run, writer.Finish());
    HTG_RETURN_IF_ERROR(spill->Flush());
    if (stats != nullptr) {
      stats->spill_runs.fetch_add(1, std::memory_order_relaxed);
      stats->spill_bytes.fetch_add(run.bytes, std::memory_order_relaxed);
    }
    runs.push_back(std::move(run));
    rows.clear();
    sort_keys.clear();
    charge.ReleaseAll();
    return Status::OK();
  };

  // Buffers one row + its precomputed sort key, charging the budget and
  // degrading to an external run when the charge is rejected.
  const auto append_row = [&](Row row, Row key) -> Status {
    const size_t bytes = ApproxRowBytes(row) + ApproxRowBytes(key);
    rows.push_back(std::move(row));
    sort_keys.push_back(std::move(key));
    Status charged = charge.Add(bytes);
    if (charged.ok()) return Status::OK();
    if (!charged.IsResourceExhausted()) return charged;
    if (!ctx->CanSpill()) return SpillUnavailableError("Sort", *ctx->mem);
    return flush_run();
  };

  if (ctx->UseBatches() && iter->BatchNative()) {
    // Batch path: extract sort keys with vectorized kernels while the
    // input drains, materializing rows by moving values out of each
    // batch.
    RowBatch batch(ctx->batch_rows);
    std::vector<std::vector<Value>> key_cols(keys.size());
    while (iter->NextBatch(&batch)) {
      const size_t n = batch.ActiveRows();
      const uint32_t* sel = batch.selection_data();
      for (size_t k = 0; k < keys.size(); ++k) {
        HTG_RETURN_IF_ERROR(
            keys[k].expr->EvalBatch(&ctx->eval, batch, sel, n, &key_cols[k]));
      }
      rows.reserve(rows.size() + n);
      sort_keys.reserve(sort_keys.size() + n);
      for (size_t j = 0; j < n; ++j) {
        Row key;
        key.reserve(keys.size());
        for (size_t k = 0; k < keys.size(); ++k) {
          key.push_back(std::move(key_cols[k][j]));
        }
        const size_t r = batch.ActiveIndex(j);
        Row row;
        row.reserve(batch.num_columns());
        for (size_t c = 0; c < batch.num_columns(); ++c) {
          row.push_back(std::move(batch.column(c)[r]));
        }
        HTG_RETURN_IF_ERROR(append_row(std::move(row), std::move(key)));
      }
    }
    HTG_RETURN_IF_ERROR(iter->status());
  } else {
    // Row path: evaluate the keys per row while draining (exprs may be
    // arbitrarily costly, but spilling needs the key alongside the row).
    Row row;
    while (iter->Next(&row)) {
      Row key;
      key.reserve(keys.size());
      for (const SortKey& k : keys) {
        HTG_ASSIGN_OR_RETURN(Value v, k.expr->Eval(&ctx->eval, row));
        key.push_back(std::move(v));
      }
      HTG_RETURN_IF_ERROR(append_row(std::move(row), std::move(key)));
      row = Row();
    }
    HTG_RETURN_IF_ERROR(iter->status());
  }

  if (!runs.empty()) {
    // External path: the tail buffer becomes the final run, then a k-way
    // merge streams the total order back from disk.
    if (!rows.empty()) HTG_RETURN_IF_ERROR(flush_run());
    if (stats != nullptr) RecordPeakMem(stats, charge.peak());
    std::vector<bool> descending(keys.size());
    for (size_t k = 0; k < keys.size(); ++k) {
      descending[k] = keys[k].descending;
    }
    return {std::make_unique<SortRunMergeIterator>(
        std::move(spill), std::move(runs), keys.size(),
        std::move(descending))};
  }

  // In-memory path. Keys are already materialized, so parallelism is a
  // pure chunk-sort + k-way merge over index ranges.
  const auto less = [&](size_t a, size_t b) {
    for (size_t k = 0; k < keys.size(); ++k) {
      const int cmp = sort_keys[a][k].Compare(sort_keys[b][k]);
      if (cmp != 0) return keys[k].descending ? cmp > 0 : cmp < 0;
    }
    return a < b;
  };

  std::vector<size_t> order(rows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  const int dop = ctx->pool != nullptr && ctx->dop > 1 &&
                          rows.size() >= kParallelSortMinRows
                      ? std::min<int>(ctx->dop,
                                      static_cast<int>(rows.size() / 1024))
                      : 1;
  if (dop <= 1) {
    std::sort(order.begin(), order.end(), less);
  } else {
    // Parallel sort: per-worker chunk sort, then a k-way merge. Ties
    // resolve to input order (see `less`), so the result is identical to
    // a serial stable sort no matter how the rows are chunked.
    const size_t nchunks = static_cast<size_t>(dop);
    const size_t chunk = (rows.size() + nchunks - 1) / nchunks;
    HTG_RETURN_IF_ERROR(ParallelDrainMorsels(
        ctx->pool, dop, nchunks, [&](int, size_t c) -> Status {
          const size_t lo = c * chunk;
          const size_t hi = std::min(lo + chunk, rows.size());
          if (lo < hi) std::sort(order.begin() + lo, order.begin() + hi, less);
          return Status::OK();
        }));
    std::vector<size_t> merged;
    merged.reserve(order.size());
    std::vector<size_t> head(nchunks);
    for (size_t c = 0; c < nchunks; ++c) head[c] = c * chunk;
    for (size_t produced = 0; produced < order.size(); ++produced) {
      size_t best = nchunks;
      for (size_t c = 0; c < nchunks; ++c) {
        const size_t end = std::min((c + 1) * chunk, order.size());
        if (head[c] >= end) continue;
        if (best == nchunks || less(order[head[c]], order[head[best]])) {
          best = c;
        }
      }
      merged.push_back(order[head[best]++]);
    }
    order = std::move(merged);
  }

  std::vector<Row> sorted;
  sorted.reserve(rows.size());
  for (size_t i : order) sorted.push_back(std::move(rows[i]));
  if (stats != nullptr) RecordPeakMem(stats, charge.peak());
  return {std::make_unique<ChargedRowsIterator>(std::move(sorted),
                                                std::move(charge))};
}

Result<std::unique_ptr<storage::RowIterator>> SortOp::OpenImpl(
    ExecContext* ctx) {
  return OpenSorted(child_.get(), keys_, ctx, mutable_stats());
}

std::string SortOp::Describe() const { return "Sort " + DescribeKeys(keys_); }

RowNumberOp::RowNumberOp(OperatorPtr child, std::vector<SortKey> keys,
                         std::string column_name)
    : child_(std::move(child)), keys_(std::move(keys)) {
  schema_ = child_->output_schema();
  Column col;
  col.name = std::move(column_name);
  col.type = DataType::kInt64;
  schema_.AddColumn(col);
}

namespace {

// Streams the sorted input, appending the 1-based rank — no extra
// materialization on top of the sort.
class RowNumberIterator : public storage::RowIterator {
 public:
  explicit RowNumberIterator(std::unique_ptr<storage::RowIterator> input)
      : input_(std::move(input)) {}

  bool Next(Row* row) override {
    if (!input_->Next(row)) return false;
    row->push_back(Value::Int64(static_cast<int64_t>(++rank_)));
    return true;
  }

  Status status() const override { return input_->status(); }

 private:
  std::unique_ptr<storage::RowIterator> input_;
  uint64_t rank_ = 0;
};

}  // namespace

Result<std::unique_ptr<storage::RowIterator>> RowNumberOp::OpenImpl(
    ExecContext* ctx) {
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::RowIterator> sorted,
                       OpenSorted(child_.get(), keys_, ctx, mutable_stats()));
  return {std::make_unique<RowNumberIterator>(std::move(sorted))};
}

std::string RowNumberOp::Describe() const {
  return "Sequence Project (ROW_NUMBER) over Sort " + DescribeKeys(keys_);
}

}  // namespace htg::exec
