#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"

namespace htg::exec {

// Equi-join via a hash table on the right input ("Hash Match (Inner
// Join)" / "Hash Match (Left Outer Join)"). Blocking on the build side.
// Left-outer emits unmatched left rows padded with NULLs.
class HashJoinOp : public Operator {
 public:
  HashJoinOp(OperatorPtr left, OperatorPtr right,
             std::vector<ExprPtr> left_keys, std::vector<ExprPtr> right_keys,
             bool left_outer = false);

  const Schema& output_schema() const override { return schema_; }
  Result<std::unique_ptr<storage::RowIterator>> OpenImpl(ExecContext* ctx) override;
  std::string Describe() const override;
  std::vector<const Operator*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<ExprPtr> left_keys_;
  std::vector<ExprPtr> right_keys_;
  bool left_outer_;
  Schema schema_;
};

// Inner equi-join over inputs ordered ascending on their join keys ("Merge
// Join (Inner Join)"): non-blocking, streams both sides once, buffering
// only the current right-side key group. This is the plan the paper's
// Fig. 10 shows for Alignment ⋈ Read over clustered indexes.
class MergeJoinOp : public Operator {
 public:
  MergeJoinOp(OperatorPtr left, OperatorPtr right,
              std::vector<ExprPtr> left_keys, std::vector<ExprPtr> right_keys);

  const Schema& output_schema() const override { return schema_; }
  Result<std::unique_ptr<storage::RowIterator>> OpenImpl(ExecContext* ctx) override;
  std::string Describe() const override;
  std::vector<const Operator*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<ExprPtr> left_keys_;
  std::vector<ExprPtr> right_keys_;
  Schema schema_;
};

// Inner join with an arbitrary residual predicate; materializes the right
// input ("Nested Loops (Inner Join)"). The fallback for non-equi joins.
class NestedLoopJoinOp : public Operator {
 public:
  NestedLoopJoinOp(OperatorPtr left, OperatorPtr right, ExprPtr predicate);

  const Schema& output_schema() const override { return schema_; }
  Result<std::unique_ptr<storage::RowIterator>> OpenImpl(ExecContext* ctx) override;
  std::string Describe() const override;
  std::vector<const Operator*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  ExprPtr predicate_;
  Schema schema_;
};

// Concatenates the schemas of two join inputs.
Schema ConcatSchemas(const Schema& left, const Schema& right);

}  // namespace htg::exec

