#include "exec/operator.h"

#include "common/stopwatch.h"
#include "common/string_util.h"

namespace htg::exec {

namespace {

// Times Next() and counts rows into the owning operator's stats. Only
// constructed under EXPLAIN ANALYZE, so the two clock reads per row are
// never on the normal query path.
class StatsIterator : public storage::RowIterator {
 public:
  StatsIterator(std::unique_ptr<storage::RowIterator> inner,
                OperatorStats* stats)
      : inner_(std::move(inner)), stats_(stats) {}

  ~StatsIterator() override {
    Stopwatch sw;
    inner_.reset();
    stats_->close_ns.fetch_add(sw.ElapsedNanos(), std::memory_order_relaxed);
  }

  bool Next(Row* row) override {
    Stopwatch sw;
    const bool ok = inner_->Next(row);
    stats_->next_ns.fetch_add(sw.ElapsedNanos(), std::memory_order_relaxed);
    if (ok) stats_->rows_out.fetch_add(1, std::memory_order_relaxed);
    return ok;
  }

  bool NextBatch(RowBatch* batch) override {
    Stopwatch sw;
    const bool ok = inner_->NextBatch(batch);
    stats_->next_ns.fetch_add(sw.ElapsedNanos(), std::memory_order_relaxed);
    if (ok) {
      stats_->rows_out.fetch_add(batch->ActiveRows(),
                                 std::memory_order_relaxed);
      stats_->batches_out.fetch_add(1, std::memory_order_relaxed);
    }
    return ok;
  }

  bool BatchNative() const override { return inner_->BatchNative(); }

  Status status() const override { return inner_->status(); }

 private:
  std::unique_ptr<storage::RowIterator> inner_;
  OperatorStats* stats_;
};

class CountingIterator : public storage::RowIterator {
 public:
  CountingIterator(std::unique_ptr<storage::RowIterator> inner,
                   uint64_t* counter, uint64_t* batch_counter)
      : inner_(std::move(inner)),
        counter_(counter),
        batch_counter_(batch_counter) {}

  bool Next(Row* row) override {
    const bool ok = inner_->Next(row);
    if (ok) ++*counter_;
    return ok;
  }

  bool NextBatch(RowBatch* batch) override {
    const bool ok = inner_->NextBatch(batch);
    if (ok) {
      *counter_ += batch->ActiveRows();
      if (batch_counter_ != nullptr) ++*batch_counter_;
    }
    return ok;
  }

  bool BatchNative() const override { return inner_->BatchNative(); }

  Status status() const override { return inner_->status(); }

 private:
  std::unique_ptr<storage::RowIterator> inner_;
  uint64_t* counter_;
  uint64_t* batch_counter_;
};

void ExplainRec(const Operator& op, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(op.Describe());
  out->push_back('\n');
  for (const Operator* child : op.children()) {
    ExplainRec(*child, depth + 1, out);
  }
}

void ExplainAnalyzeRec(const Operator& op, int depth, std::string* out) {
  const size_t indent = static_cast<size_t>(depth) * 2;
  out->append(indent, ' ');
  out->append(op.Describe());
  const OperatorStats& s = op.stats();
  const uint64_t opens = s.open_calls.load(std::memory_order_relaxed);
  if (opens > 0) {
    const uint64_t rows = s.rows_out.load(std::memory_order_relaxed);
    const uint64_t batches = s.batches_out.load(std::memory_order_relaxed);
    const int64_t est = op.EstimateRows();
    const double total_ms =
        static_cast<double>(s.open_ns.load(std::memory_order_relaxed) +
                            s.next_ns.load(std::memory_order_relaxed) +
                            s.close_ns.load(std::memory_order_relaxed)) /
        1e6;
    out->append(StringPrintf(" (actual rows=%llu, est rows=%s, opens=%llu, "
                             "time=%.3f ms)",
                             static_cast<unsigned long long>(rows),
                             est < 0 ? "?"
                                     : StringPrintf("%lld",
                                                    static_cast<long long>(est))
                                           .c_str(),
                             static_cast<unsigned long long>(opens),
                             total_ms));
    if (batches > 0) {
      out->append(StringPrintf(
          " (batches=%llu, rows/batch=%.1f)",
          static_cast<unsigned long long>(batches),
          static_cast<double>(rows) / static_cast<double>(batches)));
    }
    const uint64_t peak_mem =
        s.peak_mem_bytes.load(std::memory_order_relaxed);
    const uint64_t spill_runs = s.spill_runs.load(std::memory_order_relaxed);
    if (peak_mem > 0 || spill_runs > 0) {
      out->append(StringPrintf(" (peak-mem=%.1f KiB",
                               static_cast<double>(peak_mem) / 1024.0));
      if (spill_runs > 0) {
        out->append(StringPrintf(
            ", spill runs=%llu, spill bytes=%llu",
            static_cast<unsigned long long>(spill_runs),
            static_cast<unsigned long long>(
                s.spill_bytes.load(std::memory_order_relaxed))));
      }
      out->push_back(')');
    }
  }
  out->push_back('\n');
  for (size_t w = 0; w < s.worker_rows.size(); ++w) {
    out->append(indent + 2, ' ');
    const uint64_t wbatches =
        w < s.worker_batches.size() ? s.worker_batches[w] : 0;
    out->append(StringPrintf(
        "[worker %zu] morsels=%llu rows=%llu", w,
        static_cast<unsigned long long>(
            w < s.worker_morsels.size() ? s.worker_morsels[w] : 0),
        static_cast<unsigned long long>(s.worker_rows[w])));
    if (wbatches > 0) {
      out->append(StringPrintf(
          " batches=%llu rows/batch=%.1f",
          static_cast<unsigned long long>(wbatches),
          static_cast<double>(s.worker_rows[w]) /
              static_cast<double>(wbatches)));
    }
    out->push_back('\n');
  }
  for (const Operator* child : op.children()) {
    ExplainAnalyzeRec(*child, depth + 1, out);
  }
}

}  // namespace

Result<std::unique_ptr<storage::RowIterator>> Operator::Open(
    ExecContext* ctx) {
  if (!ctx->collect_stats) return OpenImpl(ctx);
  OperatorStats* stats = sink_;
  Stopwatch sw;
  Result<std::unique_ptr<storage::RowIterator>> result = OpenImpl(ctx);
  stats->open_ns.fetch_add(sw.ElapsedNanos(), std::memory_order_relaxed);
  stats->open_calls.fetch_add(1, std::memory_order_relaxed);
  if (!result.ok()) return result;
  return {std::make_unique<StatsIterator>(std::move(result).value(), stats)};
}

std::string ExplainPlan(const Operator& root) {
  std::string out;
  ExplainRec(root, 0, &out);
  return out;
}

std::string ExplainAnalyzePlan(const Operator& root) {
  std::string out;
  ExplainAnalyzeRec(root, 0, &out);
  return out;
}

Status DrainIterator(storage::RowIterator* iter, std::vector<Row>* rows) {
  if (!iter->BatchNative()) {
    // Row-only producer: pulling batches through the adapter would move
    // every value into columns and straight back out. Drain rows as rows.
    Row row;
    while (iter->Next(&row)) {
      rows->push_back(std::move(row));
      row.clear();
    }
    return iter->status();
  }
  RowBatch batch;
  while (iter->NextBatch(&batch)) {
    const size_t n = batch.ActiveRows();
    rows->reserve(rows->size() + n);
    for (size_t i = 0; i < n; ++i) {
      const size_t r = batch.ActiveIndex(i);
      Row row;
      row.reserve(batch.num_columns());
      // Selection vectors never repeat a physical row, so moving the
      // values out of the batch (about to be cleared) is safe.
      for (size_t c = 0; c < batch.num_columns(); ++c) {
        row.push_back(std::move(batch.column(c)[r]));
      }
      rows->push_back(std::move(row));
    }
  }
  return iter->status();
}

std::unique_ptr<storage::RowIterator> WrapCounting(
    std::unique_ptr<storage::RowIterator> inner, uint64_t* counter,
    uint64_t* batch_counter) {
  return std::make_unique<CountingIterator>(std::move(inner), counter,
                                            batch_counter);
}

}  // namespace htg::exec
