#include "exec/operator.h"

#include "common/stopwatch.h"
#include "common/string_util.h"

namespace htg::exec {

namespace {

// Times Next() and counts rows into the owning operator's stats. Only
// constructed under EXPLAIN ANALYZE, so the two clock reads per row are
// never on the normal query path.
class StatsIterator : public storage::RowIterator {
 public:
  StatsIterator(std::unique_ptr<storage::RowIterator> inner,
                OperatorStats* stats)
      : inner_(std::move(inner)), stats_(stats) {}

  ~StatsIterator() override {
    Stopwatch sw;
    inner_.reset();
    stats_->close_ns.fetch_add(sw.ElapsedNanos(), std::memory_order_relaxed);
  }

  bool Next(Row* row) override {
    Stopwatch sw;
    const bool ok = inner_->Next(row);
    stats_->next_ns.fetch_add(sw.ElapsedNanos(), std::memory_order_relaxed);
    if (ok) stats_->rows_out.fetch_add(1, std::memory_order_relaxed);
    return ok;
  }

  Status status() const override { return inner_->status(); }

 private:
  std::unique_ptr<storage::RowIterator> inner_;
  OperatorStats* stats_;
};

class CountingIterator : public storage::RowIterator {
 public:
  CountingIterator(std::unique_ptr<storage::RowIterator> inner,
                   uint64_t* counter)
      : inner_(std::move(inner)), counter_(counter) {}

  bool Next(Row* row) override {
    const bool ok = inner_->Next(row);
    if (ok) ++*counter_;
    return ok;
  }

  Status status() const override { return inner_->status(); }

 private:
  std::unique_ptr<storage::RowIterator> inner_;
  uint64_t* counter_;
};

void ExplainRec(const Operator& op, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(op.Describe());
  out->push_back('\n');
  for (const Operator* child : op.children()) {
    ExplainRec(*child, depth + 1, out);
  }
}

void ExplainAnalyzeRec(const Operator& op, int depth, std::string* out) {
  const size_t indent = static_cast<size_t>(depth) * 2;
  out->append(indent, ' ');
  out->append(op.Describe());
  const OperatorStats& s = op.stats();
  const uint64_t opens = s.open_calls.load(std::memory_order_relaxed);
  if (opens > 0) {
    const uint64_t rows = s.rows_out.load(std::memory_order_relaxed);
    const int64_t est = op.EstimateRows();
    const double total_ms =
        static_cast<double>(s.open_ns.load(std::memory_order_relaxed) +
                            s.next_ns.load(std::memory_order_relaxed) +
                            s.close_ns.load(std::memory_order_relaxed)) /
        1e6;
    out->append(StringPrintf(" (actual rows=%llu, est rows=%s, opens=%llu, "
                             "time=%.3f ms)",
                             static_cast<unsigned long long>(rows),
                             est < 0 ? "?"
                                     : StringPrintf("%lld",
                                                    static_cast<long long>(est))
                                           .c_str(),
                             static_cast<unsigned long long>(opens),
                             total_ms));
  }
  out->push_back('\n');
  for (size_t w = 0; w < s.worker_rows.size(); ++w) {
    out->append(indent + 2, ' ');
    out->append(StringPrintf(
        "[worker %zu] morsels=%llu rows=%llu\n", w,
        static_cast<unsigned long long>(
            w < s.worker_morsels.size() ? s.worker_morsels[w] : 0),
        static_cast<unsigned long long>(s.worker_rows[w])));
  }
  for (const Operator* child : op.children()) {
    ExplainAnalyzeRec(*child, depth + 1, out);
  }
}

}  // namespace

Result<std::unique_ptr<storage::RowIterator>> Operator::Open(
    ExecContext* ctx) {
  if (!ctx->collect_stats) return OpenImpl(ctx);
  OperatorStats* stats = sink_;
  Stopwatch sw;
  Result<std::unique_ptr<storage::RowIterator>> result = OpenImpl(ctx);
  stats->open_ns.fetch_add(sw.ElapsedNanos(), std::memory_order_relaxed);
  stats->open_calls.fetch_add(1, std::memory_order_relaxed);
  if (!result.ok()) return result;
  return {std::make_unique<StatsIterator>(std::move(result).value(), stats)};
}

std::string ExplainPlan(const Operator& root) {
  std::string out;
  ExplainRec(root, 0, &out);
  return out;
}

std::string ExplainAnalyzePlan(const Operator& root) {
  std::string out;
  ExplainAnalyzeRec(root, 0, &out);
  return out;
}

Status DrainIterator(storage::RowIterator* iter, std::vector<Row>* rows) {
  Row row;
  while (iter->Next(&row)) {
    rows->push_back(std::move(row));
    row.clear();
  }
  return iter->status();
}

std::unique_ptr<storage::RowIterator> WrapCounting(
    std::unique_ptr<storage::RowIterator> inner, uint64_t* counter) {
  return std::make_unique<CountingIterator>(std::move(inner), counter);
}

}  // namespace htg::exec
