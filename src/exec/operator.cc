#include "exec/operator.h"

namespace htg::exec {

namespace {

void ExplainRec(const Operator& op, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(op.Describe());
  out->push_back('\n');
  for (const Operator* child : op.children()) {
    ExplainRec(*child, depth + 1, out);
  }
}

}  // namespace

std::string ExplainPlan(const Operator& root) {
  std::string out;
  ExplainRec(root, 0, &out);
  return out;
}

Status DrainIterator(storage::RowIterator* iter, std::vector<Row>* rows) {
  Row row;
  while (iter->Next(&row)) {
    rows->push_back(std::move(row));
    row.clear();
  }
  return iter->status();
}

}  // namespace htg::exec
