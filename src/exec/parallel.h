#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "catalog/table_def.h"
#include "exec/operator.h"
#include "udf/function.h"

namespace htg::exec {

// ---------------------------------------------------------------------------
// Morsel-driven scheduling (the paper's intra-query parallelism, Fig. 9,
// generalized). A morsel is a contiguous page range of a heap scan — small
// enough (~tens of pages) that workers draining a shared counter balance
// load even under skewed predicates, where the old static page-range
// partitioning stalled on the unlucky partition.
// ---------------------------------------------------------------------------

// One unit of parallel work: pages [first_page, end_page) of a heap table.
struct Morsel {
  size_t first_page = 0;
  size_t end_page = 0;
};

// Default morsel size. Chosen so a morsel is a few hundred KB of pages:
// big enough to amortize per-morsel pipeline setup, small enough that
// DOP workers stay busy until the very end of the scan.
inline constexpr size_t kDefaultMorselPages = 32;

// Splits [0, num_pages) into morsels of `morsel_pages` pages (last one
// may be short). Empty input yields no morsels.
std::vector<Morsel> MakeMorsels(size_t num_pages, size_t morsel_pages);

// Picks a morsel size for a table of `num_pages` pages: the configured
// `max_pages` cap, shrunk so that `dop` workers see several morsels each
// (work stealing needs slack to balance).
size_t ChooseMorselPages(size_t num_pages, int dop, size_t max_pages);

// Runs fn(worker, morsel) for every morsel index in [0, num_morsels),
// drained from a shared counter by `dop` workers. Worker ids are dense in
// [0, dop) so callers can keep per-worker state (partial aggregates, eval
// contexts). The calling thread participates as one of the workers, which
// makes nested use from inside a pool task deadlock-free. After the first
// error, remaining morsels are claimed but skipped; the first error (by
// worker index) is returned.
Status ParallelDrainMorsels(ThreadPool* pool, int dop, size_t num_morsels,
                            const std::function<Status(int, size_t)>& fn);

// ---------------------------------------------------------------------------
// Morsel pipelines: a restricted, cloneable description of the
// scan→filter→project→CROSS APPLY operator chains that exchange operators
// replay once per morsel.
// ---------------------------------------------------------------------------

struct ParallelStage {
  enum class Kind { kFilter, kProject, kApply };

  Kind kind = Kind::kFilter;
  // kFilter.
  ExprPtr predicate;
  // kProject.
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;
  // kApply.
  const udf::TableFunction* fn = nullptr;
  std::vector<ExprPtr> args;
  Schema fn_schema;

  ParallelStage Clone() const;

  static ParallelStage Filter(ExprPtr predicate);
  static ParallelStage Project(std::vector<ExprPtr> exprs,
                               std::vector<std::string> names);
  static ParallelStage Apply(const udf::TableFunction* fn,
                             std::vector<ExprPtr> args, Schema fn_schema);
};

std::vector<ParallelStage> CloneStages(const std::vector<ParallelStage>& s);

// Builds the per-morsel operator chain: a page-range scan of `table`
// wrapped by each stage in order.
OperatorPtr BuildMorselPipeline(catalog::TableDef* table, const Morsel& morsel,
                                const std::vector<ParallelStage>& stages);

// Output schema of a pipeline over `table` (after every stage).
Schema PipelineSchema(catalog::TableDef* table,
                      const std::vector<ParallelStage>& stages);

// EXPLAIN-only marker for the worker side of an exchange: prints
// "Parallelism (Distribute Streams)" above the scan it wraps, mirroring
// the SQL Server showplan the paper reproduces. Never opened at runtime.
// `dop` is the effective degree (already clamped to the morsel count at
// plan time), so EXPLAIN output is deterministic and golden-testable.
class DistributeStreamsOp : public Operator {
 public:
  DistributeStreamsOp(OperatorPtr child, int dop, size_t morsel_pages);

  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  Result<std::unique_ptr<storage::RowIterator>> OpenImpl(ExecContext* ctx) override;
  std::string Describe() const override;
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }
  int64_t EstimateRows() const override { return child_->EstimateRows(); }

 private:
  OperatorPtr child_;
  int dop_;
  size_t morsel_pages_;
};

// Points each operator of a morsel pipeline at the stats sink of its
// counterpart in the EXPLAIN representative tree, so every morsel replay
// accumulates into the single tree EXPLAIN ANALYZE renders. The repr tree
// differs only by the Distribute Streams marker, which is skipped.
void LinkPipelineStats(const Operator* pipeline, const Operator* repr);

// ---------------------------------------------------------------------------
// ParallelMapOp ("Parallelism (Gather Streams)" over a stateless pipeline):
// runs the stage pipeline per-morsel on DOP workers and gathers the result
// rows — in morsel (i.e. heap) order when `preserve_order` is set, in
// completion order otherwise. This is what parallelizes the CROSS APPLY
// read-alignment pipelines end to end.
// ---------------------------------------------------------------------------
class ParallelMapOp : public Operator {
 public:
  ParallelMapOp(catalog::TableDef* table, std::vector<ParallelStage> stages,
                int dop, size_t morsel_pages, bool preserve_order);

  const Schema& output_schema() const override { return schema_; }
  Result<std::unique_ptr<storage::RowIterator>> OpenImpl(ExecContext* ctx) override;
  std::string Describe() const override;
  std::vector<const Operator*> children() const override {
    return {repr_.get()};
  }
  int64_t EstimateRows() const override;

 private:
  catalog::TableDef* table_;
  std::vector<ParallelStage> stages_;
  int dop_;
  size_t morsel_pages_;
  bool preserve_order_;
  Schema schema_;
  OperatorPtr repr_;  // representative subtree for EXPLAIN
};

// Builds the EXPLAIN subtree shared by the exchange operators: the stage
// chain over a Distribute Streams marker over a full-range scan.
OperatorPtr BuildExplainPipeline(catalog::TableDef* table,
                                 const std::vector<ParallelStage>& stages,
                                 int dop, size_t morsel_pages);

}  // namespace htg::exec

