#include "exec/apply_ops.h"

#include "common/metrics.h"
#include "exec/join_ops.h"

namespace htg::exec {

namespace {

class CrossApplyIterator : public storage::RowIterator {
 public:
  CrossApplyIterator(std::unique_ptr<storage::RowIterator> child,
                     const udf::TableFunction* fn,
                     const std::vector<ExprPtr>* args, Database* db,
                     udf::EvalContext* eval)
      : child_(std::move(child)), fn_(fn), args_(args), db_(db), eval_(eval) {}

  bool Next(Row* row) override {
    for (;;) {
      if (inner_ != nullptr) {
        Row inner_row;
        if (inner_->Next(&inner_row)) {
          row->clear();
          row->reserve(outer_row_.size() + inner_row.size());
          row->insert(row->end(), outer_row_.begin(), outer_row_.end());
          row->insert(row->end(), inner_row.begin(), inner_row.end());
          return true;
        }
        status_ = inner_->status();
        if (!status_.ok()) return false;
        inner_ = nullptr;
      }
      if (!child_->Next(&outer_row_)) {
        status_ = child_->status();
        return false;
      }
      std::vector<Value> args;
      args.reserve(args_->size());
      for (const ExprPtr& a : *args_) {
        Result<Value> v = a->Eval(eval_, outer_row_);
        if (!v.ok()) {
          status_ = v.status();
          return false;
        }
        args.push_back(std::move(*v));
      }
      HTG_METRIC_COUNTER("udf.tvf.opens")->Add(1);
      Result<std::unique_ptr<storage::RowIterator>> inner =
          fn_->Open(args, db_);
      if (!inner.ok()) {
        status_ = inner.status();
        return false;
      }
      inner_ = std::move(*inner);
    }
  }

  Status status() const override { return status_; }

 private:
  std::unique_ptr<storage::RowIterator> child_;
  const udf::TableFunction* fn_;
  const std::vector<ExprPtr>* args_;
  Database* db_;
  udf::EvalContext* eval_;
  Row outer_row_;
  std::unique_ptr<storage::RowIterator> inner_;
  Status status_;
};

}  // namespace

Result<std::unique_ptr<storage::RowIterator>> TvfScanOp::OpenImpl(
    ExecContext* ctx) {
  std::vector<Value> args;
  args.reserve(args_.size());
  for (const ExprPtr& a : args_) {
    HTG_ASSIGN_OR_RETURN(Value v, a->Eval(&ctx->eval, Row{}));
    args.push_back(std::move(v));
  }
  HTG_METRIC_COUNTER("udf.tvf.opens")->Add(1);
  return fn_->Open(args, ctx->db);
}

std::string TvfScanOp::Describe() const {
  std::string out = "Table Valued Function [" + std::string(fn_->name()) + "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i]->ToString();
  }
  out += ")]";
  return out;
}

CrossApplyOp::CrossApplyOp(OperatorPtr child, const udf::TableFunction* fn,
                           std::vector<ExprPtr> args, Schema fn_schema)
    : child_(std::move(child)),
      fn_(fn),
      args_(std::move(args)),
      fn_schema_(std::move(fn_schema)),
      schema_(ConcatSchemas(child_->output_schema(), fn_schema_)) {}

Result<std::unique_ptr<storage::RowIterator>> CrossApplyOp::OpenImpl(
    ExecContext* ctx) {
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::RowIterator> child,
                       child_->Open(ctx));
  return {std::make_unique<CrossApplyIterator>(std::move(child), fn_, &args_,
                                               ctx->db, &ctx->eval)};
}

std::string CrossApplyOp::Describe() const {
  return "Nested Loops (Cross Apply) [" + std::string(fn_->name()) + "]";
}

}  // namespace htg::exec
