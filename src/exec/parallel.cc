#include "exec/parallel.h"

#include <algorithm>
#include <atomic>

#include "common/metrics.h"
#include "common/string_util.h"
#include "common/synchronization.h"
#include "exec/apply_ops.h"
#include "exec/basic_ops.h"
#include "exec/batch.h"
#include "exec/join_ops.h"
#include "storage/heap_table.h"

namespace htg::exec {

std::vector<Morsel> MakeMorsels(size_t num_pages, size_t morsel_pages) {
  std::vector<Morsel> morsels;
  if (morsel_pages == 0) morsel_pages = 1;
  morsels.reserve(num_pages / morsel_pages + 1);
  for (size_t p = 0; p < num_pages; p += morsel_pages) {
    morsels.push_back({p, std::min(p + morsel_pages, num_pages)});
  }
  return morsels;
}

size_t ChooseMorselPages(size_t num_pages, int dop, size_t max_pages) {
  if (max_pages == 0) max_pages = kDefaultMorselPages;
  if (dop < 1) dop = 1;
  // Aim for ~4 morsels per worker so the shared counter can rebalance
  // skew, but never below one page per morsel.
  const size_t target = num_pages / (4 * static_cast<size_t>(dop));
  return std::max<size_t>(1, std::min(max_pages, std::max<size_t>(1, target)));
}

Status ParallelDrainMorsels(ThreadPool* pool, int dop, size_t num_morsels,
                            const std::function<Status(int, size_t)>& fn) {
  if (num_morsels == 0) return Status::OK();
  HTG_METRIC_COUNTER("exec.morsels.dispatched")->Add(num_morsels);
  if (dop < 1) dop = 1;
  dop = std::min<size_t>(dop, num_morsels);
  if (dop == 1 || pool == nullptr) {
    for (size_t i = 0; i < num_morsels; ++i) {
      HTG_RETURN_IF_ERROR(fn(0, i));
    }
    return Status::OK();
  }
  // Shared-counter work stealing. As in ThreadPool::ParallelFor, the
  // caller drains morsels itself (as worker 0), so completion never
  // depends on the helper tasks being scheduled — helpers that start late
  // find the counter exhausted and return. The state is shared-owned
  // because such helpers can outlive this call. After a failure, workers
  // keep claiming (so the completed count still reaches num_morsels) but
  // skip the actual work.
  struct State {
    std::atomic<size_t> next{0};
    std::atomic<int> next_worker{1};  // 0 is the caller
    std::atomic<bool> failed{false};
    size_t n = 0;
    int dop = 0;
    std::function<Status(int, size_t)> fn;
    // Per-worker slots: worker w writes statuses[w] only; the caller
    // reads them after the completion barrier below (the cv handshake
    // publishes the writes).
    std::vector<Status> statuses;
    Mutex mu{"ParallelDrainMorsels::mu"};
    CondVar cv;
    size_t completed HTG_GUARDED_BY(mu) = 0;
  };
  auto state = std::make_shared<State>();
  state->n = num_morsels;
  state->dop = dop;
  state->fn = fn;
  state->statuses.assign(dop, Status::OK());
  auto drain = [](const std::shared_ptr<State>& s, int worker) {
    for (size_t i = s->next.fetch_add(1); i < s->n;
         i = s->next.fetch_add(1)) {
      // A morsel drained by a helper rather than the caller was "stolen"
      // off the shared counter — the steal rate is the load-balance signal.
      if (worker != 0) HTG_METRIC_COUNTER("exec.morsels.stolen")->Add(1);
      if (!s->failed.load(std::memory_order_acquire)) {
        Status status = s->fn(worker, i);
        if (!status.ok()) {
          s->statuses[worker] = std::move(status);
          s->failed.store(true, std::memory_order_release);
        }
      }
      bool all_done = false;
      {
        MutexLock lock(&s->mu);
        all_done = ++s->completed == s->n;
      }
      if (all_done) s->cv.NotifyAll();
    }
  };
  for (int w = 1; w < dop; ++w) {
    pool->Submit([state, drain] {
      const int worker = state->next_worker.fetch_add(1);
      if (worker < state->dop) drain(state, worker);
    });
  }
  drain(state, 0);
  {
    MutexLock lock(&state->mu);
    while (state->completed != state->n) state->cv.Wait(&state->mu);
  }
  for (Status& s : state->statuses) {
    HTG_RETURN_IF_ERROR(std::move(s));
  }
  return Status::OK();
}

// --------------------------------------------------------------------------
// Pipeline stages.
// --------------------------------------------------------------------------

ParallelStage ParallelStage::Clone() const {
  ParallelStage copy;
  copy.kind = kind;
  if (predicate != nullptr) copy.predicate = predicate->Clone();
  copy.exprs.reserve(exprs.size());
  for (const ExprPtr& e : exprs) copy.exprs.push_back(e->Clone());
  copy.names = names;
  copy.fn = fn;
  copy.args.reserve(args.size());
  for (const ExprPtr& a : args) copy.args.push_back(a->Clone());
  copy.fn_schema = fn_schema;
  return copy;
}

ParallelStage ParallelStage::Filter(ExprPtr predicate) {
  ParallelStage stage;
  stage.kind = Kind::kFilter;
  stage.predicate = std::move(predicate);
  return stage;
}

ParallelStage ParallelStage::Project(std::vector<ExprPtr> exprs,
                                     std::vector<std::string> names) {
  ParallelStage stage;
  stage.kind = Kind::kProject;
  stage.exprs = std::move(exprs);
  stage.names = std::move(names);
  return stage;
}

ParallelStage ParallelStage::Apply(const udf::TableFunction* fn,
                                   std::vector<ExprPtr> args,
                                   Schema fn_schema) {
  ParallelStage stage;
  stage.kind = Kind::kApply;
  stage.fn = fn;
  stage.args = std::move(args);
  stage.fn_schema = std::move(fn_schema);
  return stage;
}

std::vector<ParallelStage> CloneStages(const std::vector<ParallelStage>& s) {
  std::vector<ParallelStage> out;
  out.reserve(s.size());
  for (const ParallelStage& stage : s) out.push_back(stage.Clone());
  return out;
}

namespace {

OperatorPtr ApplyStages(OperatorPtr op,
                        const std::vector<ParallelStage>& stages) {
  for (const ParallelStage& stage : stages) {
    switch (stage.kind) {
      case ParallelStage::Kind::kFilter:
        op = std::make_unique<FilterOp>(std::move(op),
                                        stage.predicate->Clone());
        break;
      case ParallelStage::Kind::kProject: {
        std::vector<ExprPtr> exprs;
        exprs.reserve(stage.exprs.size());
        for (const ExprPtr& e : stage.exprs) exprs.push_back(e->Clone());
        op = std::make_unique<ProjectOp>(std::move(op), std::move(exprs),
                                         stage.names);
        break;
      }
      case ParallelStage::Kind::kApply: {
        std::vector<ExprPtr> args;
        args.reserve(stage.args.size());
        for (const ExprPtr& a : stage.args) args.push_back(a->Clone());
        op = std::make_unique<CrossApplyOp>(std::move(op), stage.fn,
                                            std::move(args), stage.fn_schema);
        break;
      }
    }
  }
  return op;
}

}  // namespace

OperatorPtr BuildMorselPipeline(catalog::TableDef* table, const Morsel& morsel,
                                const std::vector<ParallelStage>& stages) {
  OperatorPtr op =
      std::make_unique<TableScanOp>(table, morsel.first_page, morsel.end_page);
  return ApplyStages(std::move(op), stages);
}

Schema PipelineSchema(catalog::TableDef* table,
                      const std::vector<ParallelStage>& stages) {
  Schema schema = table->schema;
  for (const ParallelStage& stage : stages) {
    switch (stage.kind) {
      case ParallelStage::Kind::kFilter:
        break;
      case ParallelStage::Kind::kProject: {
        Schema next;
        for (size_t i = 0; i < stage.exprs.size(); ++i) {
          Column col;
          col.name = i < stage.names.size() ? stage.names[i]
                                            : StringPrintf("col%zu", i);
          col.type = stage.exprs[i]->result_type();
          next.AddColumn(col);
        }
        schema = std::move(next);
        break;
      }
      case ParallelStage::Kind::kApply:
        schema = ConcatSchemas(schema, stage.fn_schema);
        break;
    }
  }
  return schema;
}

// --------------------------------------------------------------------------
// DistributeStreamsOp.
// --------------------------------------------------------------------------

DistributeStreamsOp::DistributeStreamsOp(OperatorPtr child, int dop,
                                         size_t morsel_pages)
    : child_(std::move(child)),
      dop_(dop < 1 ? 1 : dop),
      morsel_pages_(morsel_pages) {}

Result<std::unique_ptr<storage::RowIterator>> DistributeStreamsOp::OpenImpl(
    ExecContext*) {
  return Status::Internal(
      "Distribute Streams is an EXPLAIN marker; exchange operators open "
      "their morsel pipelines directly");
}

std::string DistributeStreamsOp::Describe() const {
  return StringPrintf(
      "Parallelism (Distribute Streams) [DOP=%d, morsels of %zu pages]", dop_,
      morsel_pages_);
}

OperatorPtr BuildExplainPipeline(catalog::TableDef* table,
                                 const std::vector<ParallelStage>& stages,
                                 int dop, size_t morsel_pages) {
  auto* heap = dynamic_cast<storage::HeapTable*>(table->table.get());
  const size_t npages = heap != nullptr ? heap->num_pages_sealed() : 0;
  OperatorPtr op = std::make_unique<TableScanOp>(table, 0, npages);
  op = std::make_unique<DistributeStreamsOp>(std::move(op), dop, morsel_pages);
  return ApplyStages(std::move(op), stages);
}

void LinkPipelineStats(const Operator* pipeline, const Operator* repr) {
  while (pipeline != nullptr && repr != nullptr) {
    if (dynamic_cast<const DistributeStreamsOp*>(repr) != nullptr) {
      const std::vector<const Operator*> kids = repr->children();
      repr = kids.empty() ? nullptr : kids[0];
      continue;
    }
    pipeline->SetStatsSink(repr->mutable_stats());
    const std::vector<const Operator*> pkids = pipeline->children();
    const std::vector<const Operator*> rkids = repr->children();
    pipeline = pkids.empty() ? nullptr : pkids[0];
    repr = rkids.empty() ? nullptr : rkids[0];
  }
}

// --------------------------------------------------------------------------
// ParallelMapOp.
// --------------------------------------------------------------------------

ParallelMapOp::ParallelMapOp(catalog::TableDef* table,
                             std::vector<ParallelStage> stages, int dop,
                             size_t morsel_pages, bool preserve_order)
    : table_(table),
      stages_(std::move(stages)),
      dop_(dop < 1 ? 1 : dop),
      morsel_pages_(morsel_pages == 0 ? kDefaultMorselPages : morsel_pages),
      preserve_order_(preserve_order),
      schema_(PipelineSchema(table_, stages_)),
      repr_(BuildExplainPipeline(table_, stages_, dop_, morsel_pages_)) {}

int64_t ParallelMapOp::EstimateRows() const {
  // Scan cardinality; filter/apply stages make the true fan-out unknown,
  // so only a bare pipeline keeps the estimate.
  return stages_.empty() ? static_cast<int64_t>(table_->table->num_rows())
                         : -1;
}

Result<std::unique_ptr<storage::RowIterator>> ParallelMapOp::OpenImpl(
    ExecContext* ctx) {
  auto* heap = dynamic_cast<storage::HeapTable*>(table_->table.get());
  if (heap == nullptr) {
    return Status::Internal("parallel map over non-heap table " +
                            table_->name);
  }
  HTG_RETURN_IF_ERROR(heap->SealCurrentPage());
  const std::vector<Morsel> morsels =
      MakeMorsels(heap->num_pages_sealed(), morsel_pages_);
  const int dop = std::min<size_t>(dop_, std::max<size_t>(1, morsels.size()));

  OperatorStats* stats = mutable_stats();
  if (ctx->collect_stats) {
    stats->worker_rows.assign(dop, 0);
    stats->worker_morsels.assign(dop, 0);
    stats->worker_batches.assign(dop, 0);
  }

  // Workers drain morsels into per-morsel buffers; each worker evaluates
  // expressions through its own EvalContext copy. Batch-native pipelines
  // (scan, scan+filter, ...) buffer RowBatches, so rows cross the
  // exchange without ever converting to row-at-a-time form; row-only
  // pipelines (CROSS APPLY and friends) buffer plain rows instead of
  // paying a round trip through columns. The stages are identical across
  // morsels, so nativeness is uniform and the gather side picks one
  // replay shape for the whole exchange.
  std::vector<ExecContext> worker_ctx(dop, *ctx);
  std::vector<std::vector<RowBatch>> buffers(morsels.size());
  std::vector<std::vector<Row>> row_buffers(morsels.size());
  std::atomic<bool> batch_exchange{false};
  std::vector<size_t> done_order;  // completion order of morsel indexes
  Mutex done_mu;  // guards done_order until the drain barrier; the
                  // gather loops below read it quiescently afterwards
  done_order.reserve(morsels.size());
  HTG_RETURN_IF_ERROR(ParallelDrainMorsels(
      ctx->pool, dop, morsels.size(), [&](int worker, size_t m) -> Status {
        OperatorPtr pipeline =
            BuildMorselPipeline(table_, morsels[m], stages_);
        if (ctx->collect_stats) {
          LinkPipelineStats(pipeline.get(), repr_.get());
        }
        HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::RowIterator> iter,
                             pipeline->Open(&worker_ctx[worker]));
        uint64_t morsel_rows = 0;
        const bool batchy = ctx->UseBatches() && iter->BatchNative();
        if (batchy) {
          batch_exchange.store(true, std::memory_order_relaxed);
          HTG_RETURN_IF_ERROR(DrainBatches(iter.get(), ctx->batch_rows,
                                           &buffers[m], &morsel_rows));
        } else {
          HTG_RETURN_IF_ERROR(DrainIterator(iter.get(), &row_buffers[m]));
          morsel_rows = row_buffers[m].size();
        }
        if (ctx->collect_stats) {
          stats->worker_rows[worker] += morsel_rows;
          stats->worker_batches[worker] += buffers[m].size();
          ++stats->worker_morsels[worker];
        }
        if (!preserve_order_) {
          MutexLock lock(&done_mu);
          done_order.push_back(m);
        }
        return Status::OK();
      }));

  if (!batch_exchange.load(std::memory_order_relaxed)) {
    size_t total = 0;
    for (const std::vector<Row>& b : row_buffers) total += b.size();
    std::vector<Row> rows;
    rows.reserve(total);
    if (preserve_order_) {
      for (std::vector<Row>& b : row_buffers) {
        for (Row& row : b) rows.push_back(std::move(row));
        b.clear();
      }
    } else {
      for (size_t m : done_order) {
        for (Row& row : row_buffers[m]) rows.push_back(std::move(row));
        row_buffers[m].clear();
      }
    }
    return {std::make_unique<MaterializedRowsIterator>(std::move(rows))};
  }

  size_t total = 0;
  for (const std::vector<RowBatch>& b : buffers) total += b.size();
  std::vector<RowBatch> batches;
  batches.reserve(total);
  if (preserve_order_) {
    // Gather in morsel order: output matches the serial heap scan order.
    for (std::vector<RowBatch>& b : buffers) {
      for (RowBatch& batch : b) batches.push_back(std::move(batch));
      b.clear();
    }
  } else {
    for (size_t m : done_order) {
      for (RowBatch& batch : buffers[m]) batches.push_back(std::move(batch));
      buffers[m].clear();
    }
  }
  return {std::make_unique<MaterializedBatchesIterator>(std::move(batches),
                                                        ctx->batch_rows)};
}

std::string ParallelMapOp::Describe() const {
  return StringPrintf("Parallelism (Gather Streams) [DOP=%d%s]", dop_,
                      preserve_order_ ? ", order preserving" : "");
}

}  // namespace htg::exec
