#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/memory.h"
#include "common/string_util.h"
#include "exec/batch.h"
#include "types/value.h"

namespace htg::exec {

// Shared pieces of the operators' spill machinery (external sort, hash
// aggregate / hash join partition spills).

// Sub-partitioning at recursion depth > kMaxSpillDepth means the data is
// pathologically skewed (or the budget is absurdly small); the operator
// gives up with kResourceExhausted instead of looping.
inline constexpr int kMaxSpillDepth = 8;

// Hash of a key row salted by spill recursion level: keys that collide
// into one partition at level N scatter across partitions at level N+1.
inline size_t SpillRowHash(const Row& key, int level) {
  size_t h = 14695981039346656037ULL ^
             (0x9e3779b97f4a7c15ULL * static_cast<size_t>(level + 1));
  for (const Value& v : key) {
    h ^= v.Hash();
    h *= 1099511628211ULL;
  }
  // Final avalanche so "% partitions" sees more than the low FNV bits.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

// The error an over-budget operator raises when it cannot degrade.
inline Status SpillUnavailableError(const char* op, const MemoryContext& mem) {
  return Status::ResourceExhausted(StringPrintf(
      "%s: query memory budget exceeded (%zu bytes used, budget %zu) and "
      "spilling is unavailable (disabled or no tablespace); raise "
      "HTG_QUERY_MEM_MB or enable spilling",
      op, mem.used(), mem.budget()));
}

inline Status SpillDepthError(const char* op) {
  return Status::ResourceExhausted(StringPrintf(
      "%s: spill repartitioning exceeded depth %d (pathological key skew "
      "for this memory budget)",
      op, kMaxSpillDepth));
}

// Materialized-rows stream that keeps its MemoryCharge (and with it the
// query-context accounting) alive until the consumer is done with the
// rows.
class ChargedRowsIterator : public MaterializedRowsIterator {
 public:
  ChargedRowsIterator(std::vector<Row> rows, MemoryCharge charge)
      : MaterializedRowsIterator(std::move(rows)),
        charge_(std::move(charge)) {}

 private:
  MemoryCharge charge_;
};

}  // namespace htg::exec
