#include "exec/batch.h"

#include "common/metrics.h"

namespace htg::exec {

bool BatchIterator::Next(Row* row) {
  // The row seam: refill the internal buffer from the batch path and hand
  // rows out one at a time. exec.batch.fillrow_rows measures how much
  // output crosses back into row-at-a-time form (the §5.2 boundary).
  while (buffer_pos_ >= buffer_.ActiveRows()) {
    if (!ProduceBatch(&buffer_)) return false;
    buffer_pos_ = 0;
  }
  buffer_.FillRow(buffer_pos_++, row);
  HTG_METRIC_COUNTER("exec.batch.fillrow_rows")->Add(1);
  return true;
}

bool BatchIterator::NextBatch(RowBatch* batch) {
  // Hand out any rows the Next() shim buffered first, so mixing the two
  // pull styles on one iterator never drops or duplicates rows.
  if (buffer_pos_ < buffer_.ActiveRows()) {
    *batch = std::move(buffer_);
    if (buffer_pos_ > 0) {
      std::vector<uint32_t> rest;
      rest.reserve(batch->ActiveRows() - buffer_pos_);
      for (size_t i = buffer_pos_; i < batch->ActiveRows(); ++i) {
        rest.push_back(static_cast<uint32_t>(batch->ActiveIndex(i)));
      }
      batch->SetSelection(std::move(rest));
    }
    buffer_ = RowBatch(batch_rows_);
    buffer_pos_ = 0;
  } else if (!ProduceBatch(batch)) {
    return false;
  }
  HTG_METRIC_COUNTER("exec.batch.batches")->Add(1);
  HTG_METRIC_COUNTER("exec.batch.rows")->Add(batch->ActiveRows());
  return true;
}

bool MaterializedBatchesIterator::ProduceBatch(RowBatch* batch) {
  while (next_ < batches_.size()) {
    *batch = std::move(batches_[next_++]);
    if (batch->ActiveRows() > 0) return true;
  }
  return false;
}

Status DrainBatches(storage::RowIterator* iter, size_t batch_rows,
                    std::vector<RowBatch>* out, uint64_t* rows) {
  for (;;) {
    RowBatch batch(batch_rows);
    if (!iter->NextBatch(&batch)) break;
    if (batch.ActiveRows() == 0) continue;
    *rows += batch.ActiveRows();
    out->push_back(std::move(batch));
  }
  return iter->status();
}

}  // namespace htg::exec
