#include "exec/aggregate_ops.h"

#include <map>
#include <unordered_map>

#include "common/metrics.h"
#include "common/string_util.h"
#include "common/synchronization.h"
#include "exec/batch.h"
#include "exec/spill_util.h"
#include "storage/heap_table.h"
#include "storage/spill.h"

namespace htg::exec {

namespace {

struct RowHash {
  size_t operator()(const Row& row) const {
    size_t h = 14695981039346656037ULL;
    for (const Value& v : row) {
      h ^= v.Hash();
      h *= 1099511628211ULL;
    }
    return h;
  }
};

struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};

using GroupMap =
    std::unordered_map<Row, std::vector<std::unique_ptr<udf::AggregateInstance>>,
                       RowHash, RowEq>;

// Rough per-group accounting overheads (hash node + instance vector +
// instance footprints) on top of the key's own bytes.
constexpr size_t kGroupOverheadBytes = 96;
constexpr size_t kInstanceOverheadBytes = 64;

// Thread-safe partition-spill sink for input rows whose group key did
// not fit in memory. Rows are hashed (salted by recursion level) into
// spill_partitions runs on one shared spill file; a later pass re-
// aggregates each partition with a fresh budget. The file and writers
// materialize lazily on the first spilled row, so the happy path costs
// one atomic load.
class AggSpill {
 public:
  AggSpill(storage::TableSpace* space, size_t nparts, int level,
           OperatorStats* stats)
      : space_(space),
        nparts_(nparts == 0 ? 1 : nparts),
        level_(level),
        stats_(stats) {}

  bool engaged() const { return engaged_.load(std::memory_order_acquire); }
  int level() const { return level_; }
  storage::SpillFile* file() { return file_.get(); }

  Status Add(const Row& key, const Row& input) {
    MutexLock lock(&mu_);
    if (file_ == nullptr) {
      HTG_ASSIGN_OR_RETURN(file_, storage::SpillFile::Create(space_, "agg"));
      writers_.reserve(nparts_);
      for (size_t p = 0; p < nparts_; ++p) {
        writers_.push_back(
            std::make_unique<storage::SpillRunWriter>(file_.get()));
      }
      engaged_.store(true, std::memory_order_release);
    }
    return writers_[SpillRowHash(key, level_) % nparts_]->Add(input);
  }

  // Seals every nonempty partition and flushes the file, so injected
  // write faults surface inside the statement. Returns the runs.
  Result<std::vector<storage::SpillRun>> Finish() {
    MutexLock lock(&mu_);
    std::vector<storage::SpillRun> runs;
    for (auto& writer : writers_) {
      if (writer->rows() == 0) continue;
      HTG_ASSIGN_OR_RETURN(storage::SpillRun run, writer->Finish());
      if (stats_ != nullptr) {
        stats_->spill_runs.fetch_add(1, std::memory_order_relaxed);
        stats_->spill_bytes.fetch_add(run.bytes, std::memory_order_relaxed);
      }
      runs.push_back(std::move(run));
    }
    writers_.clear();
    if (file_ != nullptr) HTG_RETURN_IF_ERROR(file_->Flush());
    return runs;
  }

 private:
  storage::TableSpace* space_;
  size_t nparts_;
  int level_;
  OperatorStats* stats_;
  Mutex mu_{"AggSpill::mu_"};
  std::atomic<bool> engaged_{false};
  // file_ is written once under mu_ and published by the engaged_
  // release store; the unlocked file() accessor is only used after an
  // acquire load observes engaged() == true (or after Finish), so it
  // stays unannotated by design.
  std::unique_ptr<storage::SpillFile> file_;
  std::vector<std::unique_ptr<storage::SpillRunWriter>> writers_
      HTG_GUARDED_BY(mu_);
};

// Memory governance handles threaded into the group-build loops. All
// fields are shared by every morsel worker of a parallel build: the
// charge and spill sink are thread-safe, the rest is read-only.
struct AggGovernance {
  MemoryCharge* charge = nullptr;
  ExecContext* ctx = nullptr;
  AggSpill* spill = nullptr;
  const char* op_name = "Hash Match (Aggregate)";
};

// Looks up (or creates) the group for `key`. Group creation is charged
// against the query budget; once the budget rejects a new group, rows of
// unseen keys are routed to the spill partitions instead — keys already
// resident keep accumulating, so every in-map group is complete and
// disjoint from the spilled keys. Returns end() when the row was routed
// (caller skips it); `make_input` materializes the input row only on
// that path.
template <typename InputFn>
Result<GroupMap::iterator> FindOrCreateGroup(GroupMap* groups, Row key,
                                             const std::vector<AggSpec>& aggs,
                                             AggGovernance* gov,
                                             InputFn&& make_input) {
  auto it = groups->find(key);
  if (it != groups->end()) return it;
  if (gov != nullptr && gov->charge != nullptr) {
    const size_t bytes = ApproxRowBytes(key) + kGroupOverheadBytes +
                         aggs.size() * kInstanceOverheadBytes;
    Status charged = gov->charge->Add(bytes);
    if (!charged.ok()) {
      gov->charge->Release(bytes);  // the group is not being created
      if (!charged.IsResourceExhausted()) return charged;
      if (!gov->ctx->CanSpill()) {
        return SpillUnavailableError(gov->op_name, *gov->ctx->mem);
      }
      HTG_RETURN_IF_ERROR(gov->spill->Add(key, make_input()));
      return groups->end();
    }
  }
  std::vector<std::unique_ptr<udf::AggregateInstance>> instances;
  instances.reserve(aggs.size());
  for (const AggSpec& a : aggs) instances.push_back(a.NewInstance());
  return groups->emplace(std::move(key), std::move(instances)).first;
}

// Drains a child fully into a group map (spilling over-budget keys when
// `gov` is armed).
Status BuildGroups(storage::RowIterator* iter,
                   const std::vector<ExprPtr>& group_exprs,
                   const std::vector<AggSpec>& aggs, udf::EvalContext* eval,
                   GroupMap* groups, AggGovernance* gov) {
  Row row;
  while (iter->Next(&row)) {
    Row key;
    key.reserve(group_exprs.size());
    for (const ExprPtr& g : group_exprs) {
      HTG_ASSIGN_OR_RETURN(Value v, g->Eval(eval, row));
      key.push_back(std::move(v));
    }
    HTG_ASSIGN_OR_RETURN(
        GroupMap::iterator it,
        FindOrCreateGroup(groups, std::move(key), aggs, gov,
                          [&]() -> const Row& { return row; }));
    if (it == groups->end()) continue;
    for (size_t i = 0; i < aggs.size(); ++i) {
      std::vector<Value> args;
      args.reserve(aggs[i].args.size());
      for (const ExprPtr& a : aggs[i].args) {
        HTG_ASSIGN_OR_RETURN(Value v, a->Eval(eval, row));
        args.push_back(std::move(v));
      }
      HTG_RETURN_IF_ERROR(it->second[i]->Accumulate(args));
    }
  }
  return iter->status();
}

// Vectorized BuildGroups: group keys and aggregate arguments evaluate as
// batch kernels, so only the hash probe and the UDA Accumulate call (the
// per-row seam — udf.uda instances accumulate row-at-a-time by contract)
// remain per-row work. Spilled rows are reassembled from the (untouched)
// batch columns.
Status BuildGroupsBatch(storage::RowIterator* iter, size_t batch_rows,
                        const std::vector<ExprPtr>& group_exprs,
                        const std::vector<AggSpec>& aggs,
                        udf::EvalContext* eval, GroupMap* groups,
                        AggGovernance* gov) {
  RowBatch batch(batch_rows);
  std::vector<std::vector<Value>> key_cols(group_exprs.size());
  std::vector<std::vector<std::vector<Value>>> agg_cols(aggs.size());
  for (size_t i = 0; i < aggs.size(); ++i) {
    agg_cols[i].resize(aggs[i].args.size());
  }
  std::vector<Value> args;
  while (iter->NextBatch(&batch)) {
    const size_t n = batch.ActiveRows();
    const uint32_t* sel = batch.selection_data();
    for (size_t g = 0; g < group_exprs.size(); ++g) {
      HTG_RETURN_IF_ERROR(
          group_exprs[g]->EvalBatch(eval, batch, sel, n, &key_cols[g]));
    }
    for (size_t i = 0; i < aggs.size(); ++i) {
      for (size_t a = 0; a < aggs[i].args.size(); ++a) {
        HTG_RETURN_IF_ERROR(
            aggs[i].args[a]->EvalBatch(eval, batch, sel, n, &agg_cols[i][a]));
      }
    }
    for (size_t j = 0; j < n; ++j) {
      Row key;
      key.reserve(group_exprs.size());
      for (size_t g = 0; g < group_exprs.size(); ++g) {
        key.push_back(std::move(key_cols[g][j]));
      }
      HTG_ASSIGN_OR_RETURN(
          GroupMap::iterator it,
          FindOrCreateGroup(groups, std::move(key), aggs, gov, [&]() {
            const size_t r = batch.ActiveIndex(j);
            Row input;
            input.reserve(batch.num_columns());
            for (size_t c = 0; c < batch.num_columns(); ++c) {
              input.push_back(batch.column(c)[r]);
            }
            return input;
          }));
      if (it == groups->end()) continue;
      for (size_t i = 0; i < aggs.size(); ++i) {
        args.clear();
        args.reserve(agg_cols[i].size());
        for (size_t a = 0; a < agg_cols[i].size(); ++a) {
          args.push_back(std::move(agg_cols[i][a][j]));
        }
        HTG_RETURN_IF_ERROR(it->second[i]->Accumulate(args));
      }
    }
  }
  return iter->status();
}

// Finalizes a group map into output rows.
Result<std::vector<Row>> FinalizeGroups(GroupMap* groups, size_t num_aggs,
                                        bool global_aggregate,
                                        const std::vector<AggSpec>& aggs) {
  std::vector<Row> out;
  // Output rows replace the group map 1:1; callers hold the charge that
  // already covers the map.
  out.reserve(groups->size());  // NOLINT(htg-exec-untracked-reserve)
  if (groups->empty() && global_aggregate) {
    // SELECT COUNT(*) over an empty input still yields one row.
    Row row;
    for (const AggSpec& a : aggs) {
      auto instance = a.NewInstance();
      HTG_ASSIGN_OR_RETURN(Value v, instance->Terminate());
      row.push_back(std::move(v));
    }
    out.push_back(std::move(row));
    return out;
  }
  for (auto& [key, instances] : *groups) {
    Row row = key;
    row.reserve(key.size() + num_aggs);
    for (auto& instance : instances) {
      HTG_ASSIGN_OR_RETURN(Value v, instance->Terminate());
      row.push_back(std::move(v));
    }
    out.push_back(std::move(row));
  }
  return out;
}

std::string DescribeAggs(const std::vector<ExprPtr>& group_exprs,
                         const std::vector<AggSpec>& aggs) {
  std::string out = "[";
  if (!group_exprs.empty()) {
    out += "GROUP BY: ";
    for (size_t i = 0; i < group_exprs.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_exprs[i]->ToString();
    }
    out += "; ";
  }
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (i > 0) out += ", ";
    out += aggs[i].display;
  }
  out += "]";
  return out;
}

// One spill partition awaiting re-aggregation. `level` is the recursion
// depth of the pass that will process it (its sub-spills salt their hash
// with this level).
struct AggSpillWork {
  storage::SpillFile* file;
  storage::SpillRun run;
  int level;
};

// Streams the aggregate's output when the build spilled: emits the
// finalized in-memory groups first, then lazily re-aggregates one spill
// partition at a time (each under a fresh budget charge; partitions that
// still blow the budget sub-partition recursively with a new hash salt).
// Owns every spill file involved, so the data is deleted with the
// iterator.
class SpilledAggIterator : public storage::RowIterator {
 public:
  SpilledAggIterator(std::vector<Row> ready, MemoryCharge charge,
                     std::unique_ptr<AggSpill> spill,
                     std::vector<storage::SpillRun> runs,
                     const std::vector<ExprPtr>* group_exprs,
                     const std::vector<AggSpec>* aggs, ExecContext* ctx,
                     OperatorStats* stats)
      : ready_(std::move(ready)),
        charge_(std::move(charge)),
        group_exprs_(group_exprs),
        aggs_(aggs),
        ctx_(ctx),
        stats_(stats) {
    for (storage::SpillRun& run : runs) {
      worklist_.push_back(
          AggSpillWork{spill->file(), std::move(run), spill->level() + 1});
    }
    spills_.push_back(std::move(spill));
  }

  bool Next(Row* out) override {
    if (!status_.ok()) return false;
    for (;;) {
      if (next_ready_ < ready_.size()) {
        *out = std::move(ready_[next_ready_++]);
        return true;
      }
      if (worklist_.empty()) return false;
      const Status s = ProcessNextPartition();
      if (!s.ok()) {
        status_ = s;
        return false;
      }
    }
  }

  Status status() const override { return status_; }

 private:
  Status ProcessNextPartition() {
    AggSpillWork work = std::move(worklist_.back());
    worklist_.pop_back();
    if (work.level > kMaxSpillDepth) {
      return SpillDepthError("Hash Match (Aggregate)");
    }
    ready_.clear();
    next_ready_ = 0;
    charge_.ReleaseAll();  // the previous partition's rows are consumed
    auto sub = std::make_unique<AggSpill>(
        ctx_->tablespace, ctx_->spill_partitions, work.level, stats_);
    AggGovernance gov{&charge_, ctx_, sub.get(), "Hash Match (Aggregate)"};
    GroupMap groups;
    storage::SpillRunReader reader(work.file, std::move(work.run));
    HTG_RETURN_IF_ERROR(BuildGroups(&reader, *group_exprs_, *aggs_,
                                    &ctx_->eval, &groups, &gov));
    if (stats_ != nullptr) RecordPeakMem(stats_, charge_.peak());
    HTG_ASSIGN_OR_RETURN(ready_,
                         FinalizeGroups(&groups, aggs_->size(), false,
                                        *aggs_));
    if (sub->engaged()) {
      HTG_ASSIGN_OR_RETURN(std::vector<storage::SpillRun> runs,
                           sub->Finish());
      for (storage::SpillRun& run : runs) {
        worklist_.push_back(
            AggSpillWork{sub->file(), std::move(run), work.level + 1});
      }
      spills_.push_back(std::move(sub));
    }
    return Status::OK();
  }

  std::vector<Row> ready_;
  size_t next_ready_ = 0;
  MemoryCharge charge_;
  const std::vector<ExprPtr>* group_exprs_;
  const std::vector<AggSpec>* aggs_;
  ExecContext* ctx_;
  OperatorStats* stats_;
  std::vector<std::unique_ptr<AggSpill>> spills_;  // keeps files alive
  std::vector<AggSpillWork> worklist_;
  Status status_;
};

}  // namespace

namespace {

// Wraps an aggregate with DISTINCT semantics: argument tuples are
// deduplicated and replayed into a fresh inner instance at Terminate so
// that Merge (set union) stays correct under parallel plans.
class DistinctAggregateInstance : public udf::AggregateInstance {
 public:
  explicit DistinctAggregateInstance(const udf::AggregateFunction* fn)
      : fn_(fn) {}

  Status Accumulate(const std::vector<Value>& args) override {
    std::string key;
    for (const Value& v : args) {
      if (v.is_null()) {
        key += "\x01N";
      } else {
        key += '\x02';
        key += v.ToString();
      }
    }
    distinct_.emplace(std::move(key), args);
    return Status::OK();
  }

  Status Merge(const udf::AggregateInstance& other) override {
    const auto& o = static_cast<const DistinctAggregateInstance&>(other);
    for (const auto& [key, args] : o.distinct_) distinct_.emplace(key, args);
    return Status::OK();
  }

  Result<Value> Terminate() override {
    std::unique_ptr<udf::AggregateInstance> inner = fn_->NewInstance();
    for (const auto& [key, args] : distinct_) {
      HTG_RETURN_IF_ERROR(inner->Accumulate(args));
    }
    return inner->Terminate();
  }

 private:
  const udf::AggregateFunction* fn_;
  std::map<std::string, std::vector<Value>> distinct_;
};

}  // namespace

AggSpec AggSpec::Clone() const {
  AggSpec copy;
  copy.fn = fn;
  copy.display = display;
  copy.distinct = distinct;
  copy.args.reserve(args.size());
  for (const ExprPtr& a : args) copy.args.push_back(a->Clone());
  return copy;
}

std::unique_ptr<udf::AggregateInstance> AggSpec::NewInstance() const {
  HTG_METRIC_COUNTER("udf.uda.instances")->Add(1);
  if (distinct) return std::make_unique<DistinctAggregateInstance>(fn);
  return fn->NewInstance();
}

DataType AggSpec::result_type() const {
  std::vector<DataType> types;
  types.reserve(args.size());
  for (const ExprPtr& a : args) types.push_back(a->result_type());
  return fn->result_type(types);
}

Schema MakeAggregateSchema(const std::vector<ExprPtr>& group_exprs,
                           const std::vector<std::string>& group_names,
                           const std::vector<AggSpec>& aggs) {
  Schema schema;
  for (size_t i = 0; i < group_exprs.size(); ++i) {
    Column col;
    col.name = i < group_names.size() ? group_names[i]
                                      : StringPrintf("group%zu", i);
    col.type = group_exprs[i]->result_type();
    schema.AddColumn(col);
  }
  for (const AggSpec& a : aggs) {
    Column col;
    col.name = a.display;
    col.type = a.result_type();
    schema.AddColumn(col);
  }
  return schema;
}

HashAggregateOp::HashAggregateOp(OperatorPtr child,
                                 std::vector<ExprPtr> group_exprs,
                                 std::vector<std::string> group_names,
                                 std::vector<AggSpec> aggs)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)),
      schema_(MakeAggregateSchema(group_exprs_, group_names, aggs_)) {}

Result<std::unique_ptr<storage::RowIterator>> HashAggregateOp::OpenImpl(
    ExecContext* ctx) {
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::RowIterator> child,
                       child_->Open(ctx));
  OperatorStats* stats = mutable_stats();
  MemoryCharge charge(ctx->mem.get(), "Hash Match (Aggregate)");
  auto spill = std::make_unique<AggSpill>(
      ctx->tablespace, ctx->spill_partitions, 0, stats);
  AggGovernance gov{&charge, ctx, spill.get(), "Hash Match (Aggregate)"};
  GroupMap groups;
  if (ctx->UseBatches() && child->BatchNative()) {
    HTG_RETURN_IF_ERROR(BuildGroupsBatch(child.get(), ctx->batch_rows,
                                         group_exprs_, aggs_, &ctx->eval,
                                         &groups, &gov));
  } else {
    HTG_RETURN_IF_ERROR(BuildGroups(child.get(), group_exprs_, aggs_,
                                    &ctx->eval, &groups, &gov));
  }
  RecordPeakMem(stats, charge.peak());
  HTG_ASSIGN_OR_RETURN(
      std::vector<Row> rows,
      FinalizeGroups(&groups, aggs_.size(), group_exprs_.empty(), aggs_));
  if (!spill->engaged()) {
    return {std::make_unique<ChargedRowsIterator>(std::move(rows),
                                                  std::move(charge))};
  }
  HTG_ASSIGN_OR_RETURN(std::vector<storage::SpillRun> runs, spill->Finish());
  return {std::make_unique<SpilledAggIterator>(
      std::move(rows), std::move(charge), std::move(spill), std::move(runs),
      &group_exprs_, &aggs_, ctx, stats)};
}

std::string HashAggregateOp::Describe() const {
  return "Hash Match (Aggregate) " + DescribeAggs(group_exprs_, aggs_);
}

StreamAggregateOp::StreamAggregateOp(OperatorPtr child,
                                     std::vector<ExprPtr> group_exprs,
                                     std::vector<std::string> group_names,
                                     std::vector<AggSpec> aggs)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)),
      schema_(MakeAggregateSchema(group_exprs_, group_names, aggs_)) {}

namespace {

// Emits one row per run of equal group keys in the (ordered) input.
class StreamAggIterator : public storage::RowIterator {
 public:
  StreamAggIterator(std::unique_ptr<storage::RowIterator> child,
                    const std::vector<ExprPtr>* group_exprs,
                    const std::vector<AggSpec>* aggs, udf::EvalContext* eval)
      : child_(std::move(child)),
        group_exprs_(group_exprs),
        aggs_(aggs),
        eval_(eval) {}

  bool Next(Row* out) override {
    if (done_) return false;
    Row input;
    for (;;) {
      if (!child_->Next(&input)) {
        status_ = child_->status();
        done_ = true;
        if (!status_.ok() || !has_group_) return false;
        return EmitCurrent(out);
      }
      Row key;
      key.reserve(group_exprs_->size());
      for (const ExprPtr& g : *group_exprs_) {
        Result<Value> v = g->Eval(eval_, input);
        if (!v.ok()) {
          status_ = v.status();
          return false;
        }
        key.push_back(std::move(*v));
      }
      const bool same =
          has_group_ && RowEq()(key, current_key_);
      if (!same && has_group_) {
        // Close the previous group, then start the new one with this row.
        Row result;
        if (!EmitCurrent(&result)) return false;
        StartGroup(std::move(key));
        if (!Accumulate(input)) return false;
        *out = std::move(result);
        return true;
      }
      if (!has_group_) StartGroup(std::move(key));
      if (!Accumulate(input)) return false;
    }
  }

  Status status() const override { return status_; }

 private:
  void StartGroup(Row key) {
    current_key_ = std::move(key);
    has_group_ = true;
    instances_.clear();
    for (const AggSpec& a : *aggs_) instances_.push_back(a.NewInstance());
  }

  bool Accumulate(const Row& input) {
    for (size_t i = 0; i < aggs_->size(); ++i) {
      std::vector<Value> args;
      args.reserve((*aggs_)[i].args.size());
      for (const ExprPtr& a : (*aggs_)[i].args) {
        Result<Value> v = a->Eval(eval_, input);
        if (!v.ok()) {
          status_ = v.status();
          return false;
        }
        args.push_back(std::move(*v));
      }
      const Status s = instances_[i]->Accumulate(args);
      if (!s.ok()) {
        status_ = s;
        return false;
      }
    }
    return true;
  }

  bool EmitCurrent(Row* out) {
    *out = current_key_;
    for (auto& instance : instances_) {
      Result<Value> v = instance->Terminate();
      if (!v.ok()) {
        status_ = v.status();
        return false;
      }
      out->push_back(std::move(*v));
    }
    return true;
  }

  std::unique_ptr<storage::RowIterator> child_;
  const std::vector<ExprPtr>* group_exprs_;
  const std::vector<AggSpec>* aggs_;
  udf::EvalContext* eval_;
  Row current_key_;
  bool has_group_ = false;
  bool done_ = false;
  std::vector<std::unique_ptr<udf::AggregateInstance>> instances_;
  Status status_;
};

}  // namespace

Result<std::unique_ptr<storage::RowIterator>> StreamAggregateOp::OpenImpl(
    ExecContext* ctx) {
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::RowIterator> child,
                       child_->Open(ctx));
  return {std::make_unique<StreamAggIterator>(std::move(child), &group_exprs_,
                                              &aggs_, &ctx->eval)};
}

std::string StreamAggregateOp::Describe() const {
  return "Stream Aggregate " + DescribeAggs(group_exprs_, aggs_);
}

ParallelAggregateOp::ParallelAggregateOp(catalog::TableDef* table,
                                         std::vector<ParallelStage> stages,
                                         std::vector<ExprPtr> group_exprs,
                                         std::vector<std::string> group_names,
                                         std::vector<AggSpec> aggs, int dop,
                                         size_t morsel_pages)
    : table_(table),
      stages_(std::move(stages)),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)),
      dop_(dop < 1 ? 1 : dop),
      morsel_pages_(morsel_pages == 0 ? kDefaultMorselPages : morsel_pages),
      schema_(MakeAggregateSchema(group_exprs_, group_names, aggs_)),
      repr_(BuildExplainPipeline(table_, stages_, dop_, morsel_pages_)) {}

int64_t ParallelAggregateOp::EstimateRows() const {
  // A global aggregate yields exactly one row; grouped cardinality is
  // unknown without column statistics.
  return group_exprs_.empty() ? 1 : -1;
}

Result<std::unique_ptr<storage::RowIterator>> ParallelAggregateOp::OpenImpl(
    ExecContext* ctx) {
  auto* heap = dynamic_cast<storage::HeapTable*>(table_->table.get());
  if (heap == nullptr) {
    return Status::Internal("parallel aggregate over non-heap table " +
                            table_->name);
  }
  HTG_RETURN_IF_ERROR(heap->SealCurrentPage());
  const std::vector<Morsel> morsels =
      MakeMorsels(heap->num_pages_sealed(), morsel_pages_);
  const int dop =
      std::min(static_cast<size_t>(dop_), std::max<size_t>(1, morsels.size()));

  OperatorStats* stats = mutable_stats();
  if (ctx->collect_stats) {
    stats->worker_rows.assign(dop, 0);
    stats->worker_morsels.assign(dop, 0);
    stats->worker_batches.assign(dop, 0);
  }

  // Shared governance: one charge ledger and one partition-spill sink
  // for all workers. A worker that cannot create a new group (budget
  // crossed) spills its input rows; keys resident in *its* partial map
  // keep accumulating. The same key may then live in one worker's map
  // and in the spill partitions, so the spill path below merges
  // everything (maps and re-aggregated partitions) into one final map.
  MemoryCharge charge(ctx->mem.get(), "Parallel Hash Match (Aggregate)");
  auto spill = std::make_unique<AggSpill>(
      ctx->tablespace, ctx->spill_partitions, 0, stats);
  AggGovernance gov{&charge, ctx, spill.get(),
                    "Parallel Hash Match (Aggregate)"};

  // Partial phase: workers steal morsels off the shared counter, replay
  // the stage pipeline over each page range, and accumulate into
  // thread-local partial maps. Expression trees are immutable and shared;
  // each worker evaluates through its own EvalContext copy.
  std::vector<GroupMap> partials(dop);
  std::vector<ExecContext> worker_ctx(dop, *ctx);
  HTG_RETURN_IF_ERROR(ParallelDrainMorsels(
      ctx->pool, dop, morsels.size(), [&](int worker, size_t m) -> Status {
        OperatorPtr pipeline =
            BuildMorselPipeline(table_, morsels[m], stages_);
        if (ctx->collect_stats) {
          LinkPipelineStats(pipeline.get(), repr_.get());
        }
        HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::RowIterator> iter,
                             pipeline->Open(&worker_ctx[worker]));
        if (ctx->collect_stats) {
          // Count the rows (and batches) this worker feeds its partial
          // map, for the per-worker skew lines under the exchange in
          // ANALYZE output.
          iter = WrapCounting(std::move(iter), &stats->worker_rows[worker],
                              &stats->worker_batches[worker]);
          ++stats->worker_morsels[worker];
        }
        if (ctx->UseBatches() && iter->BatchNative()) {
          return BuildGroupsBatch(iter.get(), ctx->batch_rows, group_exprs_,
                                  aggs_, &worker_ctx[worker].eval,
                                  &partials[worker], &gov);
        }
        return BuildGroups(iter.get(), group_exprs_, aggs_,
                           &worker_ctx[worker].eval, &partials[worker], &gov);
      }));
  RecordPeakMem(stats, charge.peak());

  size_t total_groups = 0;
  for (const GroupMap& p : partials) total_groups += p.size();
  if (total_groups == 0 && !spill->engaged()) {
    // SELECT COUNT(*) over an empty input still yields one row.
    HTG_ASSIGN_OR_RETURN(
        std::vector<Row> rows,
        FinalizeGroups(&partials[0], aggs_.size(), group_exprs_.empty(),
                       aggs_));
    return {std::make_unique<MaterializedRowsIterator>(std::move(rows))};
  }

  if (spill->engaged()) {
    // Degraded path: fold every partial map into one final map, then
    // re-aggregate each spill partition (recursively, fresh budget per
    // pass) and merge its groups in too — the only ordering that is
    // correct when a key sits in one worker's map and in the spill.
    GroupMap merged;
    const auto merge_in = [&](GroupMap* from) -> Status {
      for (auto& [key, instances] : *from) {
        auto it = merged.find(key);
        if (it == merged.end()) {
          merged.emplace(key, std::move(instances));
          continue;
        }
        for (size_t a = 0; a < instances.size(); ++a) {
          HTG_RETURN_IF_ERROR(it->second[a]->Merge(*instances[a]));
        }
      }
      from->clear();
      return Status::OK();
    };
    for (GroupMap& partial : partials) {
      HTG_RETURN_IF_ERROR(merge_in(&partial));
    }
    // The resident merged map was sized by the budget during the build;
    // release its charges so each partition pass below gets the full
    // budget — otherwise a pass could never admit a group and rows would
    // re-spill until the depth limit. The map is re-accounted (and the
    // peak recorded) once the passes are done.
    charge.ReleaseAll();
    HTG_ASSIGN_OR_RETURN(std::vector<storage::SpillRun> runs,
                         spill->Finish());
    std::vector<AggSpillWork> worklist;
    std::vector<std::unique_ptr<AggSpill>> spill_files;
    for (storage::SpillRun& run : runs) {
      worklist.push_back(
          AggSpillWork{spill->file(), std::move(run), spill->level() + 1});
    }
    spill_files.push_back(std::move(spill));
    while (!worklist.empty()) {
      AggSpillWork work = std::move(worklist.back());
      worklist.pop_back();
      if (work.level > kMaxSpillDepth) {
        return SpillDepthError("Parallel Hash Match (Aggregate)");
      }
      MemoryCharge pass_charge(ctx->mem.get(),
                               "Parallel Hash Match (Aggregate)");
      auto sub = std::make_unique<AggSpill>(
          ctx->tablespace, ctx->spill_partitions, work.level, stats);
      AggGovernance pass_gov{&pass_charge, ctx, sub.get(),
                             "Parallel Hash Match (Aggregate)"};
      storage::SpillRunReader reader(work.file, std::move(work.run));
      GroupMap part_groups;
      HTG_RETURN_IF_ERROR(BuildGroups(&reader, group_exprs_, aggs_,
                                      &ctx->eval, &part_groups, &pass_gov));
      RecordPeakMem(stats, pass_charge.peak());
      // Keys are owned by exactly one partition per level, so a pass's
      // groups can only collide with build-time residents, never with
      // another pass.
      HTG_RETURN_IF_ERROR(merge_in(&part_groups));
      if (sub->engaged()) {
        HTG_ASSIGN_OR_RETURN(std::vector<storage::SpillRun> sub_runs,
                             sub->Finish());
        for (storage::SpillRun& run : sub_runs) {
          worklist.push_back(
              AggSpillWork{sub->file(), std::move(run), work.level + 1});
        }
        spill_files.push_back(std::move(sub));
      }
    }
    size_t merged_bytes = 0;
    for (const auto& [key, instances] : merged) {
      merged_bytes += ApproxRowBytes(key) + kGroupOverheadBytes +
                      aggs_.size() * kInstanceOverheadBytes;
    }
    charge.AddUnchecked(merged_bytes);
    RecordPeakMem(stats, charge.peak());
    HTG_ASSIGN_OR_RETURN(
        std::vector<Row> rows,
        FinalizeGroups(&merged, aggs_.size(), group_exprs_.empty(), aggs_));
    return {std::make_unique<ChargedRowsIterator>(std::move(rows),
                                                  std::move(charge))};
  }

  // Final phase: a parallel partitioned merge instead of a serial fold.
  // Groups are owned by hash partition; each partition worker walks every
  // partial map, merges the entries it owns, and finalizes them. Entries
  // are only read (key hash) or moved by their owning partition, so the
  // partial maps need no locking.
  const size_t nparts = static_cast<size_t>(dop);
  std::vector<std::vector<Row>> out_parts(nparts);
  HTG_RETURN_IF_ERROR(ParallelDrainMorsels(
      ctx->pool, dop, nparts, [&](int, size_t part) -> Status {
        GroupMap merged;
        for (GroupMap& partial : partials) {
          for (auto& [key, instances] : partial) {
            if (RowHash()(key) % nparts != part) continue;
            auto it = merged.find(key);
            if (it == merged.end()) {
              merged.emplace(key, std::move(instances));
              continue;
            }
            for (size_t a = 0; a < instances.size(); ++a) {
              HTG_RETURN_IF_ERROR(it->second[a]->Merge(*instances[a]));
            }
          }
        }
        HTG_ASSIGN_OR_RETURN(
            out_parts[part],
            FinalizeGroups(&merged, aggs_.size(), false, aggs_));
        return Status::OK();
      }));

  std::vector<Row> rows;
  rows.reserve(total_groups);
  for (std::vector<Row>& part : out_parts) {
    for (Row& r : part) rows.push_back(std::move(r));
    part.clear();
  }
  RecordPeakMem(stats, charge.peak());
  return {std::make_unique<ChargedRowsIterator>(std::move(rows),
                                                std::move(charge))};
}

std::string ParallelAggregateOp::Describe() const {
  return StringPrintf(
             "Parallelism (Gather Streams) + Hash Match "
             "(Partial/Final Aggregate), DOP=%d ",
             dop_) +
         DescribeAggs(group_exprs_, aggs_);
}

}  // namespace htg::exec
