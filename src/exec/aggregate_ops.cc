#include "exec/aggregate_ops.h"

#include <map>
#include <mutex>
#include <unordered_map>

#include "common/metrics.h"
#include "common/string_util.h"
#include "exec/batch.h"
#include "storage/heap_table.h"

namespace htg::exec {

namespace {

struct RowHash {
  size_t operator()(const Row& row) const {
    size_t h = 14695981039346656037ULL;
    for (const Value& v : row) {
      h ^= v.Hash();
      h *= 1099511628211ULL;
    }
    return h;
  }
};

struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};

using GroupMap =
    std::unordered_map<Row, std::vector<std::unique_ptr<udf::AggregateInstance>>,
                       RowHash, RowEq>;

// Accumulates one input row into its group's aggregate instances.
Status AccumulateRow(const Row& input, const std::vector<ExprPtr>& group_exprs,
                     const std::vector<AggSpec>& aggs, udf::EvalContext* eval,
                     GroupMap* groups) {
  Row key;
  key.reserve(group_exprs.size());
  for (const ExprPtr& g : group_exprs) {
    HTG_ASSIGN_OR_RETURN(Value v, g->Eval(eval, input));
    key.push_back(std::move(v));
  }
  auto it = groups->find(key);
  if (it == groups->end()) {
    std::vector<std::unique_ptr<udf::AggregateInstance>> instances;
    instances.reserve(aggs.size());
    for (const AggSpec& a : aggs) instances.push_back(a.NewInstance());
    it = groups->emplace(std::move(key), std::move(instances)).first;
  }
  for (size_t i = 0; i < aggs.size(); ++i) {
    std::vector<Value> args;
    args.reserve(aggs[i].args.size());
    for (const ExprPtr& a : aggs[i].args) {
      HTG_ASSIGN_OR_RETURN(Value v, a->Eval(eval, input));
      args.push_back(std::move(v));
    }
    HTG_RETURN_IF_ERROR(it->second[i]->Accumulate(args));
  }
  return Status::OK();
}

// Drains a child fully into a group map.
Status BuildGroups(storage::RowIterator* iter,
                   const std::vector<ExprPtr>& group_exprs,
                   const std::vector<AggSpec>& aggs, udf::EvalContext* eval,
                   GroupMap* groups) {
  Row row;
  while (iter->Next(&row)) {
    HTG_RETURN_IF_ERROR(AccumulateRow(row, group_exprs, aggs, eval, groups));
  }
  return iter->status();
}

// Vectorized BuildGroups: group keys and aggregate arguments evaluate as
// batch kernels, so only the hash probe and the UDA Accumulate call (the
// per-row seam — udf.uda instances accumulate row-at-a-time by contract)
// remain per-row work.
Status BuildGroupsBatch(storage::RowIterator* iter, size_t batch_rows,
                        const std::vector<ExprPtr>& group_exprs,
                        const std::vector<AggSpec>& aggs,
                        udf::EvalContext* eval, GroupMap* groups) {
  RowBatch batch(batch_rows);
  std::vector<std::vector<Value>> key_cols(group_exprs.size());
  std::vector<std::vector<std::vector<Value>>> agg_cols(aggs.size());
  for (size_t i = 0; i < aggs.size(); ++i) {
    agg_cols[i].resize(aggs[i].args.size());
  }
  std::vector<Value> args;
  while (iter->NextBatch(&batch)) {
    const size_t n = batch.ActiveRows();
    const uint32_t* sel = batch.selection_data();
    for (size_t g = 0; g < group_exprs.size(); ++g) {
      HTG_RETURN_IF_ERROR(
          group_exprs[g]->EvalBatch(eval, batch, sel, n, &key_cols[g]));
    }
    for (size_t i = 0; i < aggs.size(); ++i) {
      for (size_t a = 0; a < aggs[i].args.size(); ++a) {
        HTG_RETURN_IF_ERROR(
            aggs[i].args[a]->EvalBatch(eval, batch, sel, n, &agg_cols[i][a]));
      }
    }
    for (size_t j = 0; j < n; ++j) {
      Row key;
      key.reserve(group_exprs.size());
      for (size_t g = 0; g < group_exprs.size(); ++g) {
        key.push_back(std::move(key_cols[g][j]));
      }
      auto it = groups->find(key);
      if (it == groups->end()) {
        std::vector<std::unique_ptr<udf::AggregateInstance>> instances;
        instances.reserve(aggs.size());
        for (const AggSpec& a : aggs) instances.push_back(a.NewInstance());
        it = groups->emplace(std::move(key), std::move(instances)).first;
      }
      for (size_t i = 0; i < aggs.size(); ++i) {
        args.clear();
        args.reserve(agg_cols[i].size());
        for (size_t a = 0; a < agg_cols[i].size(); ++a) {
          args.push_back(std::move(agg_cols[i][a][j]));
        }
        HTG_RETURN_IF_ERROR(it->second[i]->Accumulate(args));
      }
    }
  }
  return iter->status();
}

// Finalizes a group map into output rows.
Result<std::vector<Row>> FinalizeGroups(GroupMap* groups, size_t num_aggs,
                                        bool global_aggregate,
                                        const std::vector<AggSpec>& aggs) {
  std::vector<Row> out;
  out.reserve(groups->size());
  if (groups->empty() && global_aggregate) {
    // SELECT COUNT(*) over an empty input still yields one row.
    Row row;
    for (const AggSpec& a : aggs) {
      auto instance = a.NewInstance();
      HTG_ASSIGN_OR_RETURN(Value v, instance->Terminate());
      row.push_back(std::move(v));
    }
    out.push_back(std::move(row));
    return out;
  }
  for (auto& [key, instances] : *groups) {
    Row row = key;
    row.reserve(key.size() + num_aggs);
    for (auto& instance : instances) {
      HTG_ASSIGN_OR_RETURN(Value v, instance->Terminate());
      row.push_back(std::move(v));
    }
    out.push_back(std::move(row));
  }
  return out;
}

std::string DescribeAggs(const std::vector<ExprPtr>& group_exprs,
                         const std::vector<AggSpec>& aggs) {
  std::string out = "[";
  if (!group_exprs.empty()) {
    out += "GROUP BY: ";
    for (size_t i = 0; i < group_exprs.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_exprs[i]->ToString();
    }
    out += "; ";
  }
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (i > 0) out += ", ";
    out += aggs[i].display;
  }
  out += "]";
  return out;
}

}  // namespace

namespace {

// Wraps an aggregate with DISTINCT semantics: argument tuples are
// deduplicated and replayed into a fresh inner instance at Terminate so
// that Merge (set union) stays correct under parallel plans.
class DistinctAggregateInstance : public udf::AggregateInstance {
 public:
  explicit DistinctAggregateInstance(const udf::AggregateFunction* fn)
      : fn_(fn) {}

  Status Accumulate(const std::vector<Value>& args) override {
    std::string key;
    for (const Value& v : args) {
      if (v.is_null()) {
        key += "\x01N";
      } else {
        key += '\x02';
        key += v.ToString();
      }
    }
    distinct_.emplace(std::move(key), args);
    return Status::OK();
  }

  Status Merge(const udf::AggregateInstance& other) override {
    const auto& o = static_cast<const DistinctAggregateInstance&>(other);
    for (const auto& [key, args] : o.distinct_) distinct_.emplace(key, args);
    return Status::OK();
  }

  Result<Value> Terminate() override {
    std::unique_ptr<udf::AggregateInstance> inner = fn_->NewInstance();
    for (const auto& [key, args] : distinct_) {
      HTG_RETURN_IF_ERROR(inner->Accumulate(args));
    }
    return inner->Terminate();
  }

 private:
  const udf::AggregateFunction* fn_;
  std::map<std::string, std::vector<Value>> distinct_;
};

}  // namespace

AggSpec AggSpec::Clone() const {
  AggSpec copy;
  copy.fn = fn;
  copy.display = display;
  copy.distinct = distinct;
  copy.args.reserve(args.size());
  for (const ExprPtr& a : args) copy.args.push_back(a->Clone());
  return copy;
}

std::unique_ptr<udf::AggregateInstance> AggSpec::NewInstance() const {
  HTG_METRIC_COUNTER("udf.uda.instances")->Add(1);
  if (distinct) return std::make_unique<DistinctAggregateInstance>(fn);
  return fn->NewInstance();
}

DataType AggSpec::result_type() const {
  std::vector<DataType> types;
  types.reserve(args.size());
  for (const ExprPtr& a : args) types.push_back(a->result_type());
  return fn->result_type(types);
}

Schema MakeAggregateSchema(const std::vector<ExprPtr>& group_exprs,
                           const std::vector<std::string>& group_names,
                           const std::vector<AggSpec>& aggs) {
  Schema schema;
  for (size_t i = 0; i < group_exprs.size(); ++i) {
    Column col;
    col.name = i < group_names.size() ? group_names[i]
                                      : StringPrintf("group%zu", i);
    col.type = group_exprs[i]->result_type();
    schema.AddColumn(col);
  }
  for (const AggSpec& a : aggs) {
    Column col;
    col.name = a.display;
    col.type = a.result_type();
    schema.AddColumn(col);
  }
  return schema;
}

HashAggregateOp::HashAggregateOp(OperatorPtr child,
                                 std::vector<ExprPtr> group_exprs,
                                 std::vector<std::string> group_names,
                                 std::vector<AggSpec> aggs)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)),
      schema_(MakeAggregateSchema(group_exprs_, group_names, aggs_)) {}

Result<std::unique_ptr<storage::RowIterator>> HashAggregateOp::OpenImpl(
    ExecContext* ctx) {
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::RowIterator> child,
                       child_->Open(ctx));
  GroupMap groups;
  if (ctx->UseBatches() && child->BatchNative()) {
    HTG_RETURN_IF_ERROR(BuildGroupsBatch(child.get(), ctx->batch_rows,
                                         group_exprs_, aggs_, &ctx->eval,
                                         &groups));
  } else {
    HTG_RETURN_IF_ERROR(
        BuildGroups(child.get(), group_exprs_, aggs_, &ctx->eval, &groups));
  }
  HTG_ASSIGN_OR_RETURN(
      std::vector<Row> rows,
      FinalizeGroups(&groups, aggs_.size(), group_exprs_.empty(), aggs_));
  return {std::make_unique<MaterializedRowsIterator>(std::move(rows))};
}

std::string HashAggregateOp::Describe() const {
  return "Hash Match (Aggregate) " + DescribeAggs(group_exprs_, aggs_);
}

StreamAggregateOp::StreamAggregateOp(OperatorPtr child,
                                     std::vector<ExprPtr> group_exprs,
                                     std::vector<std::string> group_names,
                                     std::vector<AggSpec> aggs)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)),
      schema_(MakeAggregateSchema(group_exprs_, group_names, aggs_)) {}

namespace {

// Emits one row per run of equal group keys in the (ordered) input.
class StreamAggIterator : public storage::RowIterator {
 public:
  StreamAggIterator(std::unique_ptr<storage::RowIterator> child,
                    const std::vector<ExprPtr>* group_exprs,
                    const std::vector<AggSpec>* aggs, udf::EvalContext* eval)
      : child_(std::move(child)),
        group_exprs_(group_exprs),
        aggs_(aggs),
        eval_(eval) {}

  bool Next(Row* out) override {
    if (done_) return false;
    Row input;
    for (;;) {
      if (!child_->Next(&input)) {
        status_ = child_->status();
        done_ = true;
        if (!status_.ok() || !has_group_) return false;
        return EmitCurrent(out);
      }
      Row key;
      key.reserve(group_exprs_->size());
      for (const ExprPtr& g : *group_exprs_) {
        Result<Value> v = g->Eval(eval_, input);
        if (!v.ok()) {
          status_ = v.status();
          return false;
        }
        key.push_back(std::move(*v));
      }
      const bool same =
          has_group_ && RowEq()(key, current_key_);
      if (!same && has_group_) {
        // Close the previous group, then start the new one with this row.
        Row result;
        if (!EmitCurrent(&result)) return false;
        StartGroup(std::move(key));
        if (!Accumulate(input)) return false;
        *out = std::move(result);
        return true;
      }
      if (!has_group_) StartGroup(std::move(key));
      if (!Accumulate(input)) return false;
    }
  }

  Status status() const override { return status_; }

 private:
  void StartGroup(Row key) {
    current_key_ = std::move(key);
    has_group_ = true;
    instances_.clear();
    for (const AggSpec& a : *aggs_) instances_.push_back(a.NewInstance());
  }

  bool Accumulate(const Row& input) {
    for (size_t i = 0; i < aggs_->size(); ++i) {
      std::vector<Value> args;
      args.reserve((*aggs_)[i].args.size());
      for (const ExprPtr& a : (*aggs_)[i].args) {
        Result<Value> v = a->Eval(eval_, input);
        if (!v.ok()) {
          status_ = v.status();
          return false;
        }
        args.push_back(std::move(*v));
      }
      const Status s = instances_[i]->Accumulate(args);
      if (!s.ok()) {
        status_ = s;
        return false;
      }
    }
    return true;
  }

  bool EmitCurrent(Row* out) {
    *out = current_key_;
    for (auto& instance : instances_) {
      Result<Value> v = instance->Terminate();
      if (!v.ok()) {
        status_ = v.status();
        return false;
      }
      out->push_back(std::move(*v));
    }
    return true;
  }

  std::unique_ptr<storage::RowIterator> child_;
  const std::vector<ExprPtr>* group_exprs_;
  const std::vector<AggSpec>* aggs_;
  udf::EvalContext* eval_;
  Row current_key_;
  bool has_group_ = false;
  bool done_ = false;
  std::vector<std::unique_ptr<udf::AggregateInstance>> instances_;
  Status status_;
};

}  // namespace

Result<std::unique_ptr<storage::RowIterator>> StreamAggregateOp::OpenImpl(
    ExecContext* ctx) {
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::RowIterator> child,
                       child_->Open(ctx));
  return {std::make_unique<StreamAggIterator>(std::move(child), &group_exprs_,
                                              &aggs_, &ctx->eval)};
}

std::string StreamAggregateOp::Describe() const {
  return "Stream Aggregate " + DescribeAggs(group_exprs_, aggs_);
}

ParallelAggregateOp::ParallelAggregateOp(catalog::TableDef* table,
                                         std::vector<ParallelStage> stages,
                                         std::vector<ExprPtr> group_exprs,
                                         std::vector<std::string> group_names,
                                         std::vector<AggSpec> aggs, int dop,
                                         size_t morsel_pages)
    : table_(table),
      stages_(std::move(stages)),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)),
      dop_(dop < 1 ? 1 : dop),
      morsel_pages_(morsel_pages == 0 ? kDefaultMorselPages : morsel_pages),
      schema_(MakeAggregateSchema(group_exprs_, group_names, aggs_)),
      repr_(BuildExplainPipeline(table_, stages_, dop_, morsel_pages_)) {}

int64_t ParallelAggregateOp::EstimateRows() const {
  // A global aggregate yields exactly one row; grouped cardinality is
  // unknown without column statistics.
  return group_exprs_.empty() ? 1 : -1;
}

Result<std::unique_ptr<storage::RowIterator>> ParallelAggregateOp::OpenImpl(
    ExecContext* ctx) {
  auto* heap = dynamic_cast<storage::HeapTable*>(table_->table.get());
  if (heap == nullptr) {
    return Status::Internal("parallel aggregate over non-heap table " +
                            table_->name);
  }
  HTG_RETURN_IF_ERROR(heap->SealCurrentPage());
  const std::vector<Morsel> morsels =
      MakeMorsels(heap->num_pages_sealed(), morsel_pages_);
  const int dop =
      std::min(static_cast<size_t>(dop_), std::max<size_t>(1, morsels.size()));

  OperatorStats* stats = mutable_stats();
  if (ctx->collect_stats) {
    stats->worker_rows.assign(dop, 0);
    stats->worker_morsels.assign(dop, 0);
    stats->worker_batches.assign(dop, 0);
  }

  // Partial phase: workers steal morsels off the shared counter, replay
  // the stage pipeline over each page range, and accumulate into
  // thread-local partial maps. Expression trees are immutable and shared;
  // each worker evaluates through its own EvalContext copy.
  std::vector<GroupMap> partials(dop);
  std::vector<ExecContext> worker_ctx(dop, *ctx);
  HTG_RETURN_IF_ERROR(ParallelDrainMorsels(
      ctx->pool, dop, morsels.size(), [&](int worker, size_t m) -> Status {
        OperatorPtr pipeline =
            BuildMorselPipeline(table_, morsels[m], stages_);
        if (ctx->collect_stats) {
          LinkPipelineStats(pipeline.get(), repr_.get());
        }
        HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::RowIterator> iter,
                             pipeline->Open(&worker_ctx[worker]));
        if (ctx->collect_stats) {
          // Count the rows (and batches) this worker feeds its partial
          // map, for the per-worker skew lines under the exchange in
          // ANALYZE output.
          iter = WrapCounting(std::move(iter), &stats->worker_rows[worker],
                              &stats->worker_batches[worker]);
          ++stats->worker_morsels[worker];
        }
        if (ctx->UseBatches() && iter->BatchNative()) {
          return BuildGroupsBatch(iter.get(), ctx->batch_rows, group_exprs_,
                                  aggs_, &worker_ctx[worker].eval,
                                  &partials[worker]);
        }
        return BuildGroups(iter.get(), group_exprs_, aggs_,
                           &worker_ctx[worker].eval, &partials[worker]);
      }));

  size_t total_groups = 0;
  for (const GroupMap& p : partials) total_groups += p.size();
  if (total_groups == 0) {
    // SELECT COUNT(*) over an empty input still yields one row.
    HTG_ASSIGN_OR_RETURN(
        std::vector<Row> rows,
        FinalizeGroups(&partials[0], aggs_.size(), group_exprs_.empty(),
                       aggs_));
    return {std::make_unique<MaterializedRowsIterator>(std::move(rows))};
  }

  // Final phase: a parallel partitioned merge instead of a serial fold.
  // Groups are owned by hash partition; each partition worker walks every
  // partial map, merges the entries it owns, and finalizes them. Entries
  // are only read (key hash) or moved by their owning partition, so the
  // partial maps need no locking.
  const size_t nparts = static_cast<size_t>(dop);
  std::vector<std::vector<Row>> out_parts(nparts);
  HTG_RETURN_IF_ERROR(ParallelDrainMorsels(
      ctx->pool, dop, nparts, [&](int, size_t part) -> Status {
        GroupMap merged;
        for (GroupMap& partial : partials) {
          for (auto& [key, instances] : partial) {
            if (RowHash()(key) % nparts != part) continue;
            auto it = merged.find(key);
            if (it == merged.end()) {
              merged.emplace(key, std::move(instances));
              continue;
            }
            for (size_t a = 0; a < instances.size(); ++a) {
              HTG_RETURN_IF_ERROR(it->second[a]->Merge(*instances[a]));
            }
          }
        }
        HTG_ASSIGN_OR_RETURN(
            out_parts[part],
            FinalizeGroups(&merged, aggs_.size(), false, aggs_));
        return Status::OK();
      }));

  std::vector<Row> rows;
  rows.reserve(total_groups);
  for (std::vector<Row>& part : out_parts) {
    for (Row& r : part) rows.push_back(std::move(r));
    part.clear();
  }
  return {std::make_unique<MaterializedRowsIterator>(std::move(rows))};
}

std::string ParallelAggregateOp::Describe() const {
  return StringPrintf(
             "Parallelism (Gather Streams) + Hash Match "
             "(Partial/Final Aggregate), DOP=%d ",
             dop_) +
         DescribeAggs(group_exprs_, aggs_);
}

}  // namespace htg::exec
