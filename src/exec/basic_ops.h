#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "catalog/table_def.h"
#include "exec/operator.h"

namespace htg::exec {

// Scan of a base table. Heap scans can be restricted to a page range (the
// partition unit of parallel plans); clustered scans can seek to a key
// prefix and stream in key order.
class TableScanOp : public Operator {
 public:
  explicit TableScanOp(catalog::TableDef* table);

  // Heap page-range partition scan.
  TableScanOp(catalog::TableDef* table, size_t first_page, size_t end_page);

  // Clustered-index range scan from `seek_prefix`.
  TableScanOp(catalog::TableDef* table, Row seek_prefix);

  const Schema& output_schema() const override { return table_->schema; }
  Result<std::unique_ptr<storage::RowIterator>> OpenImpl(ExecContext* ctx) override;
  std::string Describe() const override;
  int64_t EstimateRows() const override;

  catalog::TableDef* table() const { return table_; }

 private:
  catalog::TableDef* table_;
  bool has_range_ = false;
  size_t first_page_ = 0;
  size_t end_page_ = 0;
  bool has_seek_ = false;
  Row seek_prefix_;
};

// Literal rows (INSERT ... VALUES and tests).
class ValuesOp : public Operator {
 public:
  ValuesOp(Schema schema, std::vector<std::vector<ExprPtr>> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& output_schema() const override { return schema_; }
  Result<std::unique_ptr<storage::RowIterator>> OpenImpl(ExecContext* ctx) override;
  std::string Describe() const override;
  int64_t EstimateRows() const override {
    return static_cast<int64_t>(rows_.size());
  }

 private:
  Schema schema_;
  std::vector<std::vector<ExprPtr>> rows_;
};

// OPENROWSET(BULK '<path>', SINGLE_BLOB): one row with one BLOB column
// named BulkColumn holding the file's bytes.
class OpenRowsetOp : public Operator {
 public:
  explicit OpenRowsetOp(std::string path);

  const Schema& output_schema() const override { return schema_; }
  Result<std::unique_ptr<storage::RowIterator>> OpenImpl(ExecContext* ctx) override;
  std::string Describe() const override;
  int64_t EstimateRows() const override { return 1; }

 private:
  std::string path_;
  Schema schema_;
};

class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  Result<std::unique_ptr<storage::RowIterator>> OpenImpl(ExecContext* ctx) override;
  std::string Describe() const override;
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }
  // Textbook default selectivity of 1/3 — no predicate statistics yet.
  int64_t EstimateRows() const override {
    const int64_t child = child_->EstimateRows();
    return child < 0 ? -1 : child / 3;
  }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
};

// Computes scalar expressions per input row ("Compute Scalar").
class ProjectOp : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<ExprPtr> exprs,
            std::vector<std::string> names);

  const Schema& output_schema() const override { return schema_; }
  Result<std::unique_ptr<storage::RowIterator>> OpenImpl(ExecContext* ctx) override;
  std::string Describe() const override;
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }
  int64_t EstimateRows() const override { return child_->EstimateRows(); }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
  Schema schema_;
};

// SELECT DISTINCT: drops duplicate rows via a hash set (blocking on first
// fetch of each distinct row; streaming otherwise).
class DistinctOp : public Operator {
 public:
  explicit DistinctOp(OperatorPtr child) : child_(std::move(child)) {}

  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  Result<std::unique_ptr<storage::RowIterator>> OpenImpl(ExecContext* ctx) override;
  std::string Describe() const override { return "Distinct Sort (Distinct)"; }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

 private:
  OperatorPtr child_;
};

// SELECT TOP n.
class TopOp : public Operator {
 public:
  TopOp(OperatorPtr child, int64_t limit)
      : child_(std::move(child)), limit_(limit) {}

  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  Result<std::unique_ptr<storage::RowIterator>> OpenImpl(ExecContext* ctx) override;
  std::string Describe() const override;
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }
  int64_t EstimateRows() const override {
    const int64_t child = child_->EstimateRows();
    return child < 0 ? limit_ : std::min(limit_, child);
  }

 private:
  OperatorPtr child_;
  int64_t limit_;
};

}  // namespace htg::exec

