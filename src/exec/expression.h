#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/row_batch.h"
#include "types/value.h"
#include "udf/function.h"

namespace htg::exec {

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

// A bound (physical) expression evaluated against a row. Expressions are
// immutable after construction and safe to evaluate from multiple threads,
// which is what lets parallel plans share filter/projection trees.
class Expr {
 public:
  virtual ~Expr() = default;

  virtual Result<Value> Eval(udf::EvalContext* ctx, const Row& row) const = 0;

  // Vectorized evaluation: computes the expression for `count` live rows
  // of `batch` — row j reads physical row sel[j], or j when sel is null —
  // and stores the results densely into out[0..count) (resized here).
  // Kernels loop over plain Value vectors instead of re-walking the tree
  // per row; the base implementation falls back to per-row Eval() via
  // RowBatch::FillRowAt, so every expression works under batch execution.
  // Scalar UDF calls stay per-row inside FnCallExpr's kernel — the §5.2
  // seam — so udf.scalar.calls still counts individual invocations.
  virtual Status EvalBatch(udf::EvalContext* ctx, const RowBatch& batch,
                           const uint32_t* sel, size_t count,
                           std::vector<Value>* out) const;

  virtual DataType result_type() const = 0;
  virtual std::string ToString() const = 0;
  virtual ExprPtr Clone() const = 0;

  // Structural equality (GROUP BY matching in the binder).
  bool Equals(const Expr& other) const { return ToString() == other.ToString(); }
};

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

std::string_view BinaryOpName(BinaryOp op);

// Reference to a column of the input row.
class ColumnRefExpr : public Expr {
 public:
  ColumnRefExpr(int index, std::string name, DataType type)
      : index_(index), name_(std::move(name)), type_(type) {}

  Result<Value> Eval(udf::EvalContext*, const Row& row) const override {
    if (index_ >= static_cast<int>(row.size())) {
      return Status::Internal("column index out of range: " + name_);
    }
    return row[index_];
  }
  Status EvalBatch(udf::EvalContext* ctx, const RowBatch& batch,
                   const uint32_t* sel, size_t count,
                   std::vector<Value>* out) const override;
  DataType result_type() const override { return type_; }
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_unique<ColumnRefExpr>(index_, name_, type_);
  }

  int index() const { return index_; }
  const std::string& name() const { return name_; }

 private:
  int index_;
  std::string name_;
  DataType type_;
};

class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value value) : value_(std::move(value)) {}

  Result<Value> Eval(udf::EvalContext*, const Row&) const override {
    return value_;
  }
  Status EvalBatch(udf::EvalContext* ctx, const RowBatch& batch,
                   const uint32_t* sel, size_t count,
                   std::vector<Value>* out) const override;
  DataType result_type() const override { return value_.type(); }
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_unique<LiteralExpr>(value_);
  }

  const Value& value() const { return value_; }

 private:
  Value value_;
};

// Arithmetic / comparison / logical binary operator with SQL
// three-valued-logic NULL semantics.
class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}

  Result<Value> Eval(udf::EvalContext* ctx, const Row& row) const override;
  Status EvalBatch(udf::EvalContext* ctx, const RowBatch& batch,
                   const uint32_t* sel, size_t count,
                   std::vector<Value>* out) const override;
  DataType result_type() const override;
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_unique<BinaryExpr>(op_, left_->Clone(), right_->Clone());
  }

  BinaryOp op() const { return op_; }
  const Expr* left() const { return left_.get(); }
  const Expr* right() const { return right_.get(); }

 private:
  BinaryOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

// Unary minus / NOT.
class UnaryExpr : public Expr {
 public:
  enum class Op { kNegate, kNot };

  UnaryExpr(Op op, ExprPtr operand) : op_(op), operand_(std::move(operand)) {}

  Result<Value> Eval(udf::EvalContext* ctx, const Row& row) const override;
  Status EvalBatch(udf::EvalContext* ctx, const RowBatch& batch,
                   const uint32_t* sel, size_t count,
                   std::vector<Value>* out) const override;
  DataType result_type() const override {
    return op_ == Op::kNot ? DataType::kBool : operand_->result_type();
  }
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_unique<UnaryExpr>(op_, operand_->Clone());
  }

 private:
  Op op_;
  ExprPtr operand_;
};

// Scalar function invocation.
class FnCallExpr : public Expr {
 public:
  FnCallExpr(const udf::ScalarFunction* fn, std::vector<ExprPtr> args)
      : fn_(fn), args_(std::move(args)) {
    std::vector<DataType> types;
    types.reserve(args_.size());
    for (const ExprPtr& a : args_) types.push_back(a->result_type());
    type_ = fn_->result_type(types);
  }

  Result<Value> Eval(udf::EvalContext* ctx, const Row& row) const override;
  // Batch kernel: argument subtrees evaluate vectorized, but the function
  // itself is invoked once per row — the deliberate UDF seam.
  Status EvalBatch(udf::EvalContext* ctx, const RowBatch& batch,
                   const uint32_t* sel, size_t count,
                   std::vector<Value>* out) const override;
  DataType result_type() const override { return type_; }
  std::string ToString() const override;
  ExprPtr Clone() const override;

 private:
  const udf::ScalarFunction* fn_;
  std::vector<ExprPtr> args_;
  DataType type_;
};

class CastExpr : public Expr {
 public:
  CastExpr(ExprPtr operand, DataType target)
      : operand_(std::move(operand)), target_(target) {}

  Result<Value> Eval(udf::EvalContext* ctx, const Row& row) const override {
    HTG_ASSIGN_OR_RETURN(Value v, operand_->Eval(ctx, row));
    return v.CastTo(target_);
  }
  Status EvalBatch(udf::EvalContext* ctx, const RowBatch& batch,
                   const uint32_t* sel, size_t count,
                   std::vector<Value>* out) const override;
  DataType result_type() const override { return target_; }
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_unique<CastExpr>(operand_->Clone(), target_);
  }

 private:
  ExprPtr operand_;
  DataType target_;
};

// expr IS [NOT] NULL.
class IsNullExpr : public Expr {
 public:
  IsNullExpr(ExprPtr operand, bool negated)
      : operand_(std::move(operand)), negated_(negated) {}

  Result<Value> Eval(udf::EvalContext* ctx, const Row& row) const override {
    HTG_ASSIGN_OR_RETURN(Value v, operand_->Eval(ctx, row));
    return Value::Bool(v.is_null() != negated_);
  }
  Status EvalBatch(udf::EvalContext* ctx, const RowBatch& batch,
                   const uint32_t* sel, size_t count,
                   std::vector<Value>* out) const override;
  DataType result_type() const override { return DataType::kBool; }
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_unique<IsNullExpr>(operand_->Clone(), negated_);
  }

 private:
  ExprPtr operand_;
  bool negated_;
};

// CASE WHEN c1 THEN v1 [WHEN ...] [ELSE e] END.
class CaseExpr : public Expr {
 public:
  CaseExpr(std::vector<std::pair<ExprPtr, ExprPtr>> branches, ExprPtr else_expr)
      : branches_(std::move(branches)), else_(std::move(else_expr)) {}

  Result<Value> Eval(udf::EvalContext* ctx, const Row& row) const override;
  DataType result_type() const override {
    return branches_.empty() ? DataType::kString
                             : branches_[0].second->result_type();
  }
  std::string ToString() const override;
  ExprPtr Clone() const override;

 private:
  std::vector<std::pair<ExprPtr, ExprPtr>> branches_;
  ExprPtr else_;
};

// expr [NOT] LIKE 'pattern' with the SQL wildcards % (any run) and _
// (any single character).
class LikeExpr : public Expr {
 public:
  LikeExpr(ExprPtr operand, std::string pattern, bool negated)
      : operand_(std::move(operand)),
        pattern_(std::move(pattern)),
        negated_(negated) {}

  Result<Value> Eval(udf::EvalContext* ctx, const Row& row) const override;
  Status EvalBatch(udf::EvalContext* ctx, const RowBatch& batch,
                   const uint32_t* sel, size_t count,
                   std::vector<Value>* out) const override;
  DataType result_type() const override { return DataType::kBool; }
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_unique<LikeExpr>(operand_->Clone(), pattern_, negated_);
  }

  // Exposed for direct testing of the matcher.
  static bool Match(std::string_view text, std::string_view pattern);

 private:
  ExprPtr operand_;
  std::string pattern_;
  bool negated_;
};

// Evaluates a predicate for filtering: NULL counts as false.
Result<bool> EvalPredicate(const Expr& expr, udf::EvalContext* ctx,
                           const Row& row);

// Vectorized filtering: evaluates `expr` over the batch's live rows and
// replaces the batch's selection vector with the surviving physical row
// indexes (NULL and false both drop, as in EvalPredicate). `scratch`
// holds the predicate values between calls so the buffer is reused.
Status FilterBatch(const Expr& expr, udf::EvalContext* ctx, RowBatch* batch,
                   std::vector<Value>* scratch);

}  // namespace htg::exec

