#include "exec/expression.h"

#include <cmath>

#include "common/metrics.h"
#include "common/string_util.h"

namespace htg::exec {

std::string_view BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

std::string ColumnRefExpr::ToString() const {
  return StringPrintf("%s#%d", name_.c_str(), index_);
}

std::string LiteralExpr::ToString() const {
  if (value_.is_null()) return "NULL";
  if (value_.IsStringKind()) return "'" + value_.ToString() + "'";
  return value_.ToString();
}

namespace {

Result<Value> EvalArithmetic(BinaryOp op, const Value& l, const Value& r) {
  // String '+' is concatenation (T-SQL).
  if (op == BinaryOp::kAdd && l.IsStringKind() && r.IsStringKind()) {
    return Value::String(l.AsString() + r.AsString());
  }
  if (l.IsStringKind() || r.IsStringKind()) {
    return Status::ExecError("arithmetic on non-numeric operands");
  }
  const bool use_double = l.IsDoubleKind() || r.IsDoubleKind();
  if (use_double) {
    const double a = l.AsDouble();
    const double b = r.AsDouble();
    switch (op) {
      case BinaryOp::kAdd:
        return Value::Double(a + b);
      case BinaryOp::kSub:
        return Value::Double(a - b);
      case BinaryOp::kMul:
        return Value::Double(a * b);
      case BinaryOp::kDiv:
        if (b == 0.0) return Status::ExecError("division by zero");
        return Value::Double(a / b);
      case BinaryOp::kMod:
        if (b == 0.0) return Status::ExecError("division by zero");
        return Value::Double(std::fmod(a, b));
      default:
        break;
    }
  }
  const int64_t a = l.AsInt64();
  const int64_t b = r.AsInt64();
  switch (op) {
    case BinaryOp::kAdd:
      return Value::Int64(a + b);
    case BinaryOp::kSub:
      return Value::Int64(a - b);
    case BinaryOp::kMul:
      return Value::Int64(a * b);
    case BinaryOp::kDiv:
      if (b == 0) return Status::ExecError("division by zero");
      return Value::Int64(a / b);
    case BinaryOp::kMod:
      if (b == 0) return Status::ExecError("division by zero");
      return Value::Int64(a % b);
    default:
      break;
  }
  return Status::Internal("bad arithmetic operator");
}

}  // namespace

Result<Value> BinaryExpr::Eval(udf::EvalContext* ctx, const Row& row) const {
  // AND/OR use three-valued logic with short-circuiting.
  if (op_ == BinaryOp::kAnd || op_ == BinaryOp::kOr) {
    HTG_ASSIGN_OR_RETURN(Value l, left_->Eval(ctx, row));
    const bool l_null = l.is_null();
    const bool l_true = !l_null && l.AsBool();
    if (op_ == BinaryOp::kAnd && !l_null && !l_true) {
      return Value::Bool(false);
    }
    if (op_ == BinaryOp::kOr && l_true) return Value::Bool(true);
    HTG_ASSIGN_OR_RETURN(Value r, right_->Eval(ctx, row));
    const bool r_null = r.is_null();
    const bool r_true = !r_null && r.AsBool();
    if (op_ == BinaryOp::kAnd) {
      if (!r_null && !r_true) return Value::Bool(false);
      if (l_null || r_null) return Value::Null();
      return Value::Bool(true);
    }
    if (r_true) return Value::Bool(true);
    if (l_null || r_null) return Value::Null();
    return Value::Bool(false);
  }

  HTG_ASSIGN_OR_RETURN(Value l, left_->Eval(ctx, row));
  HTG_ASSIGN_OR_RETURN(Value r, right_->Eval(ctx, row));
  if (l.is_null() || r.is_null()) return Value::Null();

  switch (op_) {
    case BinaryOp::kEq:
      return Value::Bool(l.Compare(r) == 0);
    case BinaryOp::kNe:
      return Value::Bool(l.Compare(r) != 0);
    case BinaryOp::kLt:
      return Value::Bool(l.Compare(r) < 0);
    case BinaryOp::kLe:
      return Value::Bool(l.Compare(r) <= 0);
    case BinaryOp::kGt:
      return Value::Bool(l.Compare(r) > 0);
    case BinaryOp::kGe:
      return Value::Bool(l.Compare(r) >= 0);
    default:
      return EvalArithmetic(op_, l, r);
  }
}

DataType BinaryExpr::result_type() const {
  switch (op_) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      return DataType::kBool;
    default: {
      // Compute each child's type exactly once: result_type() recurses,
      // and re-evaluating children would make deeply nested expressions
      // exponential.
      const DataType left = left_->result_type();
      const DataType right = right_->result_type();
      if (left == DataType::kString) return DataType::kString;
      if (left == DataType::kDouble || right == DataType::kDouble) {
        return DataType::kDouble;
      }
      return DataType::kInt64;
    }
  }
}

std::string BinaryExpr::ToString() const {
  return "(" + left_->ToString() + " " + std::string(BinaryOpName(op_)) + " " +
         right_->ToString() + ")";
}

Result<Value> UnaryExpr::Eval(udf::EvalContext* ctx, const Row& row) const {
  HTG_ASSIGN_OR_RETURN(Value v, operand_->Eval(ctx, row));
  if (v.is_null()) return Value::Null();
  if (op_ == Op::kNot) return Value::Bool(!v.AsBool());
  if (v.IsDoubleKind()) return Value::Double(-v.AsDouble());
  return Value::Int64(-v.AsInt64());
}

std::string UnaryExpr::ToString() const {
  return std::string(op_ == Op::kNot ? "NOT " : "-") + operand_->ToString();
}

Result<Value> FnCallExpr::Eval(udf::EvalContext* ctx, const Row& row) const {
  std::vector<Value> args;
  args.reserve(args_.size());
  bool any_null = false;
  for (const ExprPtr& a : args_) {
    HTG_ASSIGN_OR_RETURN(Value v, a->Eval(ctx, row));
    any_null = any_null || v.is_null();
    args.push_back(std::move(v));
  }
  if (any_null && !fn_->null_tolerant) return Value::Null();
  HTG_METRIC_COUNTER("udf.scalar.calls")->Add(1);
  return fn_->eval(ctx, args);
}

std::string FnCallExpr::ToString() const {
  std::string out(fn_->name);
  out += '(';
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i]->ToString();
  }
  out += ')';
  return out;
}

ExprPtr FnCallExpr::Clone() const {
  std::vector<ExprPtr> args;
  args.reserve(args_.size());
  for (const ExprPtr& a : args_) args.push_back(a->Clone());
  return std::make_unique<FnCallExpr>(fn_, std::move(args));
}

std::string CastExpr::ToString() const {
  return "CAST(" + operand_->ToString() + " AS " +
         std::string(DataTypeName(target_)) + ")";
}

std::string IsNullExpr::ToString() const {
  return operand_->ToString() + (negated_ ? " IS NOT NULL" : " IS NULL");
}

Result<Value> CaseExpr::Eval(udf::EvalContext* ctx, const Row& row) const {
  for (const auto& [cond, result] : branches_) {
    HTG_ASSIGN_OR_RETURN(Value c, cond->Eval(ctx, row));
    if (!c.is_null() && c.AsBool()) return result->Eval(ctx, row);
  }
  if (else_ != nullptr) return else_->Eval(ctx, row);
  return Value::Null();
}

std::string CaseExpr::ToString() const {
  std::string out = "CASE";
  for (const auto& [cond, result] : branches_) {
    out += " WHEN " + cond->ToString() + " THEN " + result->ToString();
  }
  if (else_ != nullptr) out += " ELSE " + else_->ToString();
  out += " END";
  return out;
}

ExprPtr CaseExpr::Clone() const {
  std::vector<std::pair<ExprPtr, ExprPtr>> branches;
  branches.reserve(branches_.size());
  for (const auto& [c, r] : branches_) {
    branches.emplace_back(c->Clone(), r->Clone());
  }
  return std::make_unique<CaseExpr>(std::move(branches),
                                    else_ ? else_->Clone() : nullptr);
}

bool LikeExpr::Match(std::string_view text, std::string_view pattern) {
  // Iterative wildcard matcher with backtracking over the last '%'.
  size_t t = 0;
  size_t p = 0;
  size_t star_p = std::string_view::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<Value> LikeExpr::Eval(udf::EvalContext* ctx, const Row& row) const {
  HTG_ASSIGN_OR_RETURN(Value v, operand_->Eval(ctx, row));
  if (v.is_null()) return Value::Null();
  const bool matched = Match(v.AsString(), pattern_);
  return Value::Bool(matched != negated_);
}

std::string LikeExpr::ToString() const {
  return operand_->ToString() + (negated_ ? " NOT LIKE '" : " LIKE '") +
         pattern_ + "'";
}

Result<bool> EvalPredicate(const Expr& expr, udf::EvalContext* ctx,
                           const Row& row) {
  HTG_ASSIGN_OR_RETURN(Value v, expr.Eval(ctx, row));
  return !v.is_null() && v.AsBool();
}

}  // namespace htg::exec
