#include "exec/expression.h"

#include <cmath>

#include "common/metrics.h"
#include "common/string_util.h"

namespace htg::exec {

std::string_view BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

std::string ColumnRefExpr::ToString() const {
  return StringPrintf("%s#%d", name_.c_str(), index_);
}

std::string LiteralExpr::ToString() const {
  if (value_.is_null()) return "NULL";
  if (value_.IsStringKind()) return "'" + value_.ToString() + "'";
  return value_.ToString();
}

namespace {

Result<Value> EvalArithmetic(BinaryOp op, const Value& l, const Value& r) {
  // String '+' is concatenation (T-SQL).
  if (op == BinaryOp::kAdd && l.IsStringKind() && r.IsStringKind()) {
    return Value::String(l.AsString() + r.AsString());
  }
  if (l.IsStringKind() || r.IsStringKind()) {
    return Status::ExecError("arithmetic on non-numeric operands");
  }
  const bool use_double = l.IsDoubleKind() || r.IsDoubleKind();
  if (use_double) {
    const double a = l.AsDouble();
    const double b = r.AsDouble();
    switch (op) {
      case BinaryOp::kAdd:
        return Value::Double(a + b);
      case BinaryOp::kSub:
        return Value::Double(a - b);
      case BinaryOp::kMul:
        return Value::Double(a * b);
      case BinaryOp::kDiv:
        if (b == 0.0) return Status::ExecError("division by zero");
        return Value::Double(a / b);
      case BinaryOp::kMod:
        if (b == 0.0) return Status::ExecError("division by zero");
        return Value::Double(std::fmod(a, b));
      default:
        break;
    }
  }
  const int64_t a = l.AsInt64();
  const int64_t b = r.AsInt64();
  switch (op) {
    case BinaryOp::kAdd:
      return Value::Int64(a + b);
    case BinaryOp::kSub:
      return Value::Int64(a - b);
    case BinaryOp::kMul:
      return Value::Int64(a * b);
    case BinaryOp::kDiv:
      if (b == 0) return Status::ExecError("division by zero");
      return Value::Int64(a / b);
    case BinaryOp::kMod:
      if (b == 0) return Status::ExecError("division by zero");
      return Value::Int64(a % b);
    default:
      break;
  }
  return Status::Internal("bad arithmetic operator");
}

}  // namespace

Result<Value> BinaryExpr::Eval(udf::EvalContext* ctx, const Row& row) const {
  // AND/OR use three-valued logic with short-circuiting.
  if (op_ == BinaryOp::kAnd || op_ == BinaryOp::kOr) {
    HTG_ASSIGN_OR_RETURN(Value l, left_->Eval(ctx, row));
    const bool l_null = l.is_null();
    const bool l_true = !l_null && l.AsBool();
    if (op_ == BinaryOp::kAnd && !l_null && !l_true) {
      return Value::Bool(false);
    }
    if (op_ == BinaryOp::kOr && l_true) return Value::Bool(true);
    HTG_ASSIGN_OR_RETURN(Value r, right_->Eval(ctx, row));
    const bool r_null = r.is_null();
    const bool r_true = !r_null && r.AsBool();
    if (op_ == BinaryOp::kAnd) {
      if (!r_null && !r_true) return Value::Bool(false);
      if (l_null || r_null) return Value::Null();
      return Value::Bool(true);
    }
    if (r_true) return Value::Bool(true);
    if (l_null || r_null) return Value::Null();
    return Value::Bool(false);
  }

  HTG_ASSIGN_OR_RETURN(Value l, left_->Eval(ctx, row));
  HTG_ASSIGN_OR_RETURN(Value r, right_->Eval(ctx, row));
  if (l.is_null() || r.is_null()) return Value::Null();

  switch (op_) {
    case BinaryOp::kEq:
      return Value::Bool(l.Compare(r) == 0);
    case BinaryOp::kNe:
      return Value::Bool(l.Compare(r) != 0);
    case BinaryOp::kLt:
      return Value::Bool(l.Compare(r) < 0);
    case BinaryOp::kLe:
      return Value::Bool(l.Compare(r) <= 0);
    case BinaryOp::kGt:
      return Value::Bool(l.Compare(r) > 0);
    case BinaryOp::kGe:
      return Value::Bool(l.Compare(r) >= 0);
    default:
      return EvalArithmetic(op_, l, r);
  }
}

DataType BinaryExpr::result_type() const {
  switch (op_) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      return DataType::kBool;
    default: {
      // Compute each child's type exactly once: result_type() recurses,
      // and re-evaluating children would make deeply nested expressions
      // exponential.
      const DataType left = left_->result_type();
      const DataType right = right_->result_type();
      if (left == DataType::kString) return DataType::kString;
      if (left == DataType::kDouble || right == DataType::kDouble) {
        return DataType::kDouble;
      }
      return DataType::kInt64;
    }
  }
}

std::string BinaryExpr::ToString() const {
  return "(" + left_->ToString() + " " + std::string(BinaryOpName(op_)) + " " +
         right_->ToString() + ")";
}

Result<Value> UnaryExpr::Eval(udf::EvalContext* ctx, const Row& row) const {
  HTG_ASSIGN_OR_RETURN(Value v, operand_->Eval(ctx, row));
  if (v.is_null()) return Value::Null();
  if (op_ == Op::kNot) return Value::Bool(!v.AsBool());
  if (v.IsDoubleKind()) return Value::Double(-v.AsDouble());
  return Value::Int64(-v.AsInt64());
}

std::string UnaryExpr::ToString() const {
  return std::string(op_ == Op::kNot ? "NOT " : "-") + operand_->ToString();
}

Result<Value> FnCallExpr::Eval(udf::EvalContext* ctx, const Row& row) const {
  std::vector<Value> args;
  args.reserve(args_.size());
  bool any_null = false;
  for (const ExprPtr& a : args_) {
    HTG_ASSIGN_OR_RETURN(Value v, a->Eval(ctx, row));
    any_null = any_null || v.is_null();
    args.push_back(std::move(v));
  }
  if (any_null && !fn_->null_tolerant) return Value::Null();
  HTG_METRIC_COUNTER("udf.scalar.calls")->Add(1);
  return fn_->eval(ctx, args);
}

std::string FnCallExpr::ToString() const {
  std::string out(fn_->name);
  out += '(';
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i]->ToString();
  }
  out += ')';
  return out;
}

ExprPtr FnCallExpr::Clone() const {
  std::vector<ExprPtr> args;
  args.reserve(args_.size());
  for (const ExprPtr& a : args_) args.push_back(a->Clone());
  return std::make_unique<FnCallExpr>(fn_, std::move(args));
}

std::string CastExpr::ToString() const {
  return "CAST(" + operand_->ToString() + " AS " +
         std::string(DataTypeName(target_)) + ")";
}

std::string IsNullExpr::ToString() const {
  return operand_->ToString() + (negated_ ? " IS NOT NULL" : " IS NULL");
}

Result<Value> CaseExpr::Eval(udf::EvalContext* ctx, const Row& row) const {
  for (const auto& [cond, result] : branches_) {
    HTG_ASSIGN_OR_RETURN(Value c, cond->Eval(ctx, row));
    if (!c.is_null() && c.AsBool()) return result->Eval(ctx, row);
  }
  if (else_ != nullptr) return else_->Eval(ctx, row);
  return Value::Null();
}

std::string CaseExpr::ToString() const {
  std::string out = "CASE";
  for (const auto& [cond, result] : branches_) {
    out += " WHEN " + cond->ToString() + " THEN " + result->ToString();
  }
  if (else_ != nullptr) out += " ELSE " + else_->ToString();
  out += " END";
  return out;
}

ExprPtr CaseExpr::Clone() const {
  std::vector<std::pair<ExprPtr, ExprPtr>> branches;
  branches.reserve(branches_.size());
  for (const auto& [c, r] : branches_) {
    branches.emplace_back(c->Clone(), r->Clone());
  }
  return std::make_unique<CaseExpr>(std::move(branches),
                                    else_ ? else_->Clone() : nullptr);
}

bool LikeExpr::Match(std::string_view text, std::string_view pattern) {
  // Iterative wildcard matcher with backtracking over the last '%'.
  size_t t = 0;
  size_t p = 0;
  size_t star_p = std::string_view::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<Value> LikeExpr::Eval(udf::EvalContext* ctx, const Row& row) const {
  HTG_ASSIGN_OR_RETURN(Value v, operand_->Eval(ctx, row));
  if (v.is_null()) return Value::Null();
  const bool matched = Match(v.AsString(), pattern_);
  return Value::Bool(matched != negated_);
}

std::string LikeExpr::ToString() const {
  return operand_->ToString() + (negated_ ? " NOT LIKE '" : " LIKE '") +
         pattern_ + "'";
}

Result<bool> EvalPredicate(const Expr& expr, udf::EvalContext* ctx,
                           const Row& row) {
  HTG_ASSIGN_OR_RETURN(Value v, expr.Eval(ctx, row));
  return !v.is_null() && v.AsBool();
}

// --- Batch kernels ------------------------------------------------------
//
// Each kernel loops over plain Value vectors with the tree walk hoisted
// out of the per-row path. Expressions without a kernel fall back to the
// base implementation below, so batch execution never loses coverage —
// it only loses the vectorized speedup for that node.

Status Expr::EvalBatch(udf::EvalContext* ctx, const RowBatch& batch,
                       const uint32_t* sel, size_t count,
                       std::vector<Value>* out) const {
  out->resize(count);
  Row row;
  for (size_t j = 0; j < count; ++j) {
    batch.FillRowAt(sel != nullptr ? sel[j] : j, &row);
    HTG_ASSIGN_OR_RETURN((*out)[j], Eval(ctx, row));
  }
  return Status::OK();
}

Status ColumnRefExpr::EvalBatch(udf::EvalContext*, const RowBatch& batch,
                                const uint32_t* sel, size_t count,
                                std::vector<Value>* out) const {
  if (count == 0) {
    out->clear();
    return Status::OK();
  }
  if (index_ < 0 || index_ >= static_cast<int>(batch.num_columns())) {
    return Status::Internal("column index out of range: " + name_);
  }
  const std::vector<Value>& col = batch.column(static_cast<size_t>(index_));
  out->resize(count);
  for (size_t j = 0; j < count; ++j) {
    (*out)[j] = col[sel != nullptr ? sel[j] : j];
  }
  return Status::OK();
}

Status LiteralExpr::EvalBatch(udf::EvalContext*, const RowBatch&,
                              const uint32_t*, size_t count,
                              std::vector<Value>* out) const {
  out->assign(count, value_);
  return Status::OK();
}

Status BinaryExpr::EvalBatch(udf::EvalContext* ctx, const RowBatch& batch,
                             const uint32_t* sel, size_t count,
                             std::vector<Value>* out) const {
  if (op_ == BinaryOp::kAnd || op_ == BinaryOp::kOr) {
    // Short-circuit vectorized: evaluate the left side everywhere, then
    // the right side only over the sub-selection of rows the left side
    // did not decide. This keeps row-path semantics — e.g. in
    // `x <> 0 AND 100 / x > 1` the division never sees x = 0.
    HTG_RETURN_IF_ERROR(left_->EvalBatch(ctx, batch, sel, count, out));
    std::vector<uint32_t> need_phys;
    std::vector<uint32_t> need_pos;
    for (size_t j = 0; j < count; ++j) {
      const Value& l = (*out)[j];
      const bool l_null = l.is_null();
      const bool l_true = !l_null && l.AsBool();
      if (op_ == BinaryOp::kAnd && !l_null && !l_true) {
        (*out)[j] = Value::Bool(false);
        continue;
      }
      if (op_ == BinaryOp::kOr && l_true) {
        (*out)[j] = Value::Bool(true);
        continue;
      }
      need_phys.push_back(sel != nullptr ? sel[j] : static_cast<uint32_t>(j));
      need_pos.push_back(static_cast<uint32_t>(j));
    }
    if (need_phys.empty()) return Status::OK();
    std::vector<Value> right;
    HTG_RETURN_IF_ERROR(right_->EvalBatch(ctx, batch, need_phys.data(),
                                          need_phys.size(), &right));
    for (size_t k = 0; k < need_pos.size(); ++k) {
      Value& slot = (*out)[need_pos[k]];
      const bool l_null = slot.is_null();
      const Value& r = right[k];
      const bool r_null = r.is_null();
      const bool r_true = !r_null && r.AsBool();
      if (op_ == BinaryOp::kAnd) {
        if (!r_null && !r_true) {
          slot = Value::Bool(false);
        } else if (l_null || r_null) {
          slot = Value::Null();
        } else {
          slot = Value::Bool(true);
        }
      } else {
        if (r_true) {
          slot = Value::Bool(true);
        } else if (l_null || r_null) {
          slot = Value::Null();
        } else {
          slot = Value::Bool(false);
        }
      }
    }
    return Status::OK();
  }

  std::vector<Value> lhs;
  std::vector<Value> rhs;
  HTG_RETURN_IF_ERROR(left_->EvalBatch(ctx, batch, sel, count, &lhs));
  HTG_RETURN_IF_ERROR(right_->EvalBatch(ctx, batch, sel, count, &rhs));
  out->resize(count);
  for (size_t j = 0; j < count; ++j) {
    const Value& l = lhs[j];
    const Value& r = rhs[j];
    if (l.is_null() || r.is_null()) {
      (*out)[j] = Value::Null();
      continue;
    }
    switch (op_) {
      case BinaryOp::kEq:
        (*out)[j] = Value::Bool(l.Compare(r) == 0);
        break;
      case BinaryOp::kNe:
        (*out)[j] = Value::Bool(l.Compare(r) != 0);
        break;
      case BinaryOp::kLt:
        (*out)[j] = Value::Bool(l.Compare(r) < 0);
        break;
      case BinaryOp::kLe:
        (*out)[j] = Value::Bool(l.Compare(r) <= 0);
        break;
      case BinaryOp::kGt:
        (*out)[j] = Value::Bool(l.Compare(r) > 0);
        break;
      case BinaryOp::kGe:
        (*out)[j] = Value::Bool(l.Compare(r) >= 0);
        break;
      default:
        HTG_ASSIGN_OR_RETURN((*out)[j], EvalArithmetic(op_, l, r));
        break;
    }
  }
  return Status::OK();
}

Status UnaryExpr::EvalBatch(udf::EvalContext* ctx, const RowBatch& batch,
                            const uint32_t* sel, size_t count,
                            std::vector<Value>* out) const {
  HTG_RETURN_IF_ERROR(operand_->EvalBatch(ctx, batch, sel, count, out));
  for (size_t j = 0; j < count; ++j) {
    Value& v = (*out)[j];
    if (v.is_null()) continue;
    if (op_ == Op::kNot) {
      v = Value::Bool(!v.AsBool());
    } else if (v.IsDoubleKind()) {
      v = Value::Double(-v.AsDouble());
    } else {
      v = Value::Int64(-v.AsInt64());
    }
  }
  return Status::OK();
}

Status FnCallExpr::EvalBatch(udf::EvalContext* ctx, const RowBatch& batch,
                             const uint32_t* sel, size_t count,
                             std::vector<Value>* out) const {
  // Arguments vectorize; the function call itself stays per-row. This is
  // the measured UDF boundary of the paper's §5.2 — udf.scalar.calls must
  // keep counting individual invocations.
  std::vector<std::vector<Value>> arg_cols(args_.size());
  for (size_t a = 0; a < args_.size(); ++a) {
    HTG_RETURN_IF_ERROR(
        args_[a]->EvalBatch(ctx, batch, sel, count, &arg_cols[a]));
  }
  out->resize(count);
  std::vector<Value> args(args_.size());
  for (size_t j = 0; j < count; ++j) {
    bool any_null = false;
    for (size_t a = 0; a < args_.size(); ++a) {
      args[a] = std::move(arg_cols[a][j]);
      any_null = any_null || args[a].is_null();
    }
    if (any_null && !fn_->null_tolerant) {
      (*out)[j] = Value::Null();
      continue;
    }
    HTG_METRIC_COUNTER("udf.scalar.calls")->Add(1);
    HTG_ASSIGN_OR_RETURN((*out)[j], fn_->eval(ctx, args));
  }
  return Status::OK();
}

Status CastExpr::EvalBatch(udf::EvalContext* ctx, const RowBatch& batch,
                           const uint32_t* sel, size_t count,
                           std::vector<Value>* out) const {
  HTG_RETURN_IF_ERROR(operand_->EvalBatch(ctx, batch, sel, count, out));
  for (size_t j = 0; j < count; ++j) {
    HTG_ASSIGN_OR_RETURN((*out)[j], (*out)[j].CastTo(target_));
  }
  return Status::OK();
}

Status IsNullExpr::EvalBatch(udf::EvalContext* ctx, const RowBatch& batch,
                             const uint32_t* sel, size_t count,
                             std::vector<Value>* out) const {
  HTG_RETURN_IF_ERROR(operand_->EvalBatch(ctx, batch, sel, count, out));
  for (size_t j = 0; j < count; ++j) {
    (*out)[j] = Value::Bool((*out)[j].is_null() != negated_);
  }
  return Status::OK();
}

Status LikeExpr::EvalBatch(udf::EvalContext* ctx, const RowBatch& batch,
                           const uint32_t* sel, size_t count,
                           std::vector<Value>* out) const {
  HTG_RETURN_IF_ERROR(operand_->EvalBatch(ctx, batch, sel, count, out));
  for (size_t j = 0; j < count; ++j) {
    Value& v = (*out)[j];
    if (v.is_null()) continue;
    v = Value::Bool(Match(v.AsString(), pattern_) != negated_);
  }
  return Status::OK();
}

Status FilterBatch(const Expr& expr, udf::EvalContext* ctx, RowBatch* batch,
                   std::vector<Value>* scratch) {
  const size_t n = batch->ActiveRows();
  if (n == 0) {
    batch->SetSelection({});
    return Status::OK();
  }
  HTG_RETURN_IF_ERROR(
      expr.EvalBatch(ctx, *batch, batch->selection_data(), n, scratch));
  std::vector<uint32_t> keep;
  keep.reserve(n);
  for (size_t j = 0; j < n; ++j) {
    const Value& v = (*scratch)[j];
    if (!v.is_null() && v.AsBool()) {
      keep.push_back(static_cast<uint32_t>(batch->ActiveIndex(j)));
    }
  }
  batch->SetSelection(std::move(keep));
  return Status::OK();
}

}  // namespace htg::exec
