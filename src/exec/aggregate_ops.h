#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "exec/parallel.h"
#include "udf/function.h"

namespace htg::exec {

// One aggregate call inside a GROUP BY plan.
struct AggSpec {
  const udf::AggregateFunction* fn = nullptr;
  std::vector<ExprPtr> args;
  // Output column name, e.g. "COUNT(*)" or a user alias.
  std::string display;
  // COUNT(DISTINCT x): deduplicate argument tuples before accumulation.
  bool distinct = false;

  AggSpec Clone() const;
  DataType result_type() const;
  // Instance factory; wraps the function's instance with a distinct
  // filter when `distinct` is set.
  std::unique_ptr<udf::AggregateInstance> NewInstance() const;
};

// Builds the aggregate output schema: group columns then aggregates.
Schema MakeAggregateSchema(const std::vector<ExprPtr>& group_exprs,
                           const std::vector<std::string>& group_names,
                           const std::vector<AggSpec>& aggs);

// Hash-based grouping ("Hash Match (Aggregate)"). Blocking: the hash table
// is built fully before the first output row.
class HashAggregateOp : public Operator {
 public:
  HashAggregateOp(OperatorPtr child, std::vector<ExprPtr> group_exprs,
                  std::vector<std::string> group_names,
                  std::vector<AggSpec> aggs);

  const Schema& output_schema() const override { return schema_; }
  Result<std::unique_ptr<storage::RowIterator>> OpenImpl(ExecContext* ctx) override;
  std::string Describe() const override;
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }
  int64_t EstimateRows() const override {
    return group_exprs_.empty() ? 1 : -1;
  }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggSpec> aggs_;
  Schema schema_;
};

// Grouping over input already ordered on the group expressions ("Stream
// Aggregate"): non-blocking, emits each group as soon as its run ends.
// This is the shape of the paper's sliding-window consensus plan (§5.3.3).
class StreamAggregateOp : public Operator {
 public:
  StreamAggregateOp(OperatorPtr child, std::vector<ExprPtr> group_exprs,
                    std::vector<std::string> group_names,
                    std::vector<AggSpec> aggs);

  const Schema& output_schema() const override { return schema_; }
  Result<std::unique_ptr<storage::RowIterator>> OpenImpl(ExecContext* ctx) override;
  std::string Describe() const override;
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }
  int64_t EstimateRows() const override {
    return group_exprs_.empty() ? 1 : -1;
  }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggSpec> aggs_;
  Schema schema_;
};

// Parallel partial→final aggregation, the shape of the paper's Fig. 9
// plan, scheduled at morsel granularity: workers steal page-range morsels
// of the heap scan from a shared counter, replay the stage pipeline
// (filter / CROSS APPLY) per morsel, and accumulate into thread-local
// partial GroupMaps. The final merge is itself parallel — groups are
// partitioned by hash and each partition merges/finalizes on its own
// worker — and results stream out of the gather. Requires every aggregate
// to SupportsMerge().
class ParallelAggregateOp : public Operator {
 public:
  ParallelAggregateOp(catalog::TableDef* table,
                      std::vector<ParallelStage> stages,
                      std::vector<ExprPtr> group_exprs,
                      std::vector<std::string> group_names,
                      std::vector<AggSpec> aggs, int dop, size_t morsel_pages);

  const Schema& output_schema() const override { return schema_; }
  Result<std::unique_ptr<storage::RowIterator>> OpenImpl(ExecContext* ctx) override;
  std::string Describe() const override;
  std::vector<const Operator*> children() const override {
    return {repr_.get()};
  }
  int64_t EstimateRows() const override;

 private:
  catalog::TableDef* table_;
  std::vector<ParallelStage> stages_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggSpec> aggs_;
  int dop_;
  size_t morsel_pages_;
  Schema schema_;
  OperatorPtr repr_;  // representative subtree for EXPLAIN
};

}  // namespace htg::exec

