#include "exec/basic_ops.h"

#include <unordered_set>

#include "common/string_util.h"
#include "exec/batch.h"
#include "exec/spill_util.h"
#include "storage/clustered_table.h"
#include "storage/heap_table.h"

namespace htg::exec {

namespace {

class FilterIterator : public storage::RowIterator {
 public:
  FilterIterator(std::unique_ptr<storage::RowIterator> child,
                 const Expr* predicate, udf::EvalContext* eval)
      : child_(std::move(child)), predicate_(predicate), eval_(eval) {}

  bool Next(Row* row) override {
    while (child_->Next(row)) {
      Result<bool> keep = EvalPredicate(*predicate_, eval_, *row);
      if (!keep.ok()) {
        status_ = keep.status();
        return false;
      }
      if (*keep) return true;
    }
    status_ = child_->status();
    return false;
  }

  Status status() const override { return status_; }

 private:
  std::unique_ptr<storage::RowIterator> child_;
  const Expr* predicate_;
  udf::EvalContext* eval_;
  Status status_;
};

class ProjectIterator : public storage::RowIterator {
 public:
  ProjectIterator(std::unique_ptr<storage::RowIterator> child,
                  const std::vector<ExprPtr>* exprs, udf::EvalContext* eval)
      : child_(std::move(child)), exprs_(exprs), eval_(eval) {}

  bool Next(Row* row) override {
    Row input;
    if (!child_->Next(&input)) {
      status_ = child_->status();
      return false;
    }
    row->clear();
    row->reserve(exprs_->size());
    for (const ExprPtr& e : *exprs_) {
      Result<Value> v = e->Eval(eval_, input);
      if (!v.ok()) {
        status_ = v.status();
        return false;
      }
      row->push_back(std::move(*v));
    }
    return true;
  }

  Status status() const override { return status_; }

 private:
  std::unique_ptr<storage::RowIterator> child_;
  const std::vector<ExprPtr>* exprs_;
  udf::EvalContext* eval_;
  Status status_;
};

// Rough accounting overhead of one std::unordered_set<std::string> node
// beyond the string payload itself.
constexpr size_t kDistinctEntryOverheadBytes = 64;

class DistinctIterator : public storage::RowIterator {
 public:
  DistinctIterator(std::unique_ptr<storage::RowIterator> child,
                   MemoryContext* mem, OperatorStats* stats)
      : child_(std::move(child)), charge_(mem, "Distinct"), stats_(stats) {}

  ~DistinctIterator() override {
    if (stats_ != nullptr) RecordPeakMem(stats_, charge_.peak());
  }

  bool Next(Row* row) override {
    if (!status_.ok()) return false;
    while (child_->Next(row)) {
      std::string key;
      for (const Value& v : *row) {
        if (v.is_null()) {
          key += "\x01N";
        } else {
          key += '\x02';
          key += v.ToString();
        }
      }
      // The dedup set grows without bound with the key cardinality;
      // charge each retained key so a runaway DISTINCT fails cleanly
      // instead of exhausting the process.
      const size_t bytes = key.size() + kDistinctEntryOverheadBytes;
      if (!seen_.insert(std::move(key)).second) continue;
      status_ = charge_.Add(bytes);
      if (!status_.ok()) return false;
      return true;
    }
    status_ = child_->status();
    return false;
  }

  Status status() const override { return status_; }

 private:
  std::unique_ptr<storage::RowIterator> child_;
  MemoryCharge charge_;
  OperatorStats* stats_;
  std::unordered_set<std::string> seen_;
  Status status_;
};

class TopIterator : public storage::RowIterator {
 public:
  TopIterator(std::unique_ptr<storage::RowIterator> child, int64_t limit)
      : child_(std::move(child)), remaining_(limit) {}

  bool Next(Row* row) override {
    if (remaining_ <= 0) return false;
    if (!child_->Next(row)) return false;
    --remaining_;
    return true;
  }

  Status status() const override { return child_->status(); }

 private:
  std::unique_ptr<storage::RowIterator> child_;
  int64_t remaining_;
};

// Vectorized Filter: pulls child batches and narrows each one's selection
// vector in place (no row copying) until at least one row survives.
class FilterBatchIterator : public BatchIterator {
 public:
  FilterBatchIterator(std::unique_ptr<storage::RowIterator> child,
                      const Expr* predicate, udf::EvalContext* eval,
                      size_t batch_rows)
      : BatchIterator(batch_rows),
        child_(std::move(child)),
        predicate_(predicate),
        eval_(eval) {}

 protected:
  bool ProduceBatch(RowBatch* batch) override {
    for (;;) {
      if (!child_->NextBatch(batch)) {
        status_ = child_->status();
        return false;
      }
      const Status s = FilterBatch(*predicate_, eval_, batch, &scratch_);
      if (!s.ok()) {
        status_ = s;
        return false;
      }
      if (batch->ActiveRows() > 0) return true;
    }
  }

 private:
  std::unique_ptr<storage::RowIterator> child_;
  const Expr* predicate_;
  udf::EvalContext* eval_;
  std::vector<Value> scratch_;
};

// Vectorized Compute Scalar: evaluates each projection expression over
// the whole input batch (kernel loop over the selection vector), writing
// straight into the output batch's dense columns.
class ProjectBatchIterator : public BatchIterator {
 public:
  ProjectBatchIterator(std::unique_ptr<storage::RowIterator> child,
                       const std::vector<ExprPtr>* exprs,
                       udf::EvalContext* eval, size_t batch_rows)
      : BatchIterator(batch_rows),
        child_(std::move(child)),
        exprs_(exprs),
        eval_(eval),
        input_(batch_rows) {}

 protected:
  bool ProduceBatch(RowBatch* batch) override {
    if (!child_->NextBatch(&input_)) {
      status_ = child_->status();
      return false;
    }
    const size_t n = input_.ActiveRows();
    batch->ResetColumns(exprs_->size());
    for (size_t e = 0; e < exprs_->size(); ++e) {
      const Status s = (*exprs_)[e]->EvalBatch(
          eval_, input_, input_.selection_data(), n, &batch->column(e));
      if (!s.ok()) {
        status_ = s;
        return false;
      }
    }
    batch->set_num_rows(n);
    return n > 0;
  }

 private:
  std::unique_ptr<storage::RowIterator> child_;
  const std::vector<ExprPtr>* exprs_;
  udf::EvalContext* eval_;
  RowBatch input_;
};

// Vectorized Top: passes batches through, truncating the final batch's
// selection to the remaining row budget.
class TopBatchIterator : public BatchIterator {
 public:
  TopBatchIterator(std::unique_ptr<storage::RowIterator> child, int64_t limit,
                   size_t batch_rows, MemoryContext* mem)
      : BatchIterator(batch_rows), child_(std::move(child)),
        remaining_(limit), charge_(mem, "Top") {
    // The pass-through batch is bounded scratch (one batch of values);
    // account it for an honest peak without gating the statement on it.
    charge_.AddUnchecked(batch_rows * sizeof(Value));
  }

 protected:
  bool ProduceBatch(RowBatch* batch) override {
    if (remaining_ <= 0) return false;
    if (!child_->NextBatch(batch)) {
      status_ = child_->status();
      return false;
    }
    const int64_t n = static_cast<int64_t>(batch->ActiveRows());
    if (n <= remaining_) {
      remaining_ -= n;
      return true;
    }
    std::vector<uint32_t> keep;
    keep.reserve(static_cast<size_t>(remaining_));
    for (int64_t i = 0; i < remaining_; ++i) {
      keep.push_back(static_cast<uint32_t>(
          batch->ActiveIndex(static_cast<size_t>(i))));
    }
    batch->SetSelection(std::move(keep));
    remaining_ = 0;
    return true;
  }

 private:
  std::unique_ptr<storage::RowIterator> child_;
  int64_t remaining_;
  MemoryCharge charge_;
};

}  // namespace

TableScanOp::TableScanOp(catalog::TableDef* table) : table_(table) {}

TableScanOp::TableScanOp(catalog::TableDef* table, size_t first_page,
                         size_t end_page)
    : table_(table),
      has_range_(true),
      first_page_(first_page),
      end_page_(end_page) {}

TableScanOp::TableScanOp(catalog::TableDef* table, Row seek_prefix)
    : table_(table), has_seek_(true), seek_prefix_(std::move(seek_prefix)) {}

Result<std::unique_ptr<storage::RowIterator>> TableScanOp::OpenImpl(
    ExecContext* ctx) {
  // MVCC: with a snapshot in the context, bound the scan to the rows the
  // snapshot sees. This is the single interception point for both serial
  // plans and morsel pipelines (each morsel is a range-scan clone opened
  // with a worker copy of the same context).
  const storage::Snapshot* snap =
      ctx != nullptr && table_->mvcc != nullptr ? ctx->snapshot : nullptr;
  if (snap != nullptr) {
    if (auto* heap = dynamic_cast<storage::HeapTable*>(table_->table.get())) {
      const uint64_t limit =
          table_->mvcc->VisibleRows(*snap, ctx->txn_id, heap->num_rows());
      HTG_ASSIGN_OR_RETURN(const storage::HeapTable::PrefixPlan plan,
                           heap->PlanVisiblePrefix(limit));
      size_t first = 0;
      size_t end = plan.end_page;
      if (has_range_) {
        // Morsels past the visible prefix become empty scans.
        first = first_page_;
        if (end_page_ < end) {
          // The morsel ends before the prefix does: no mid-page cap.
          return {heap->NewScanRangeCapped(first, end_page_, 0)};
        }
      }
      return {heap->NewScanRangeCapped(first, end, plan.tail_rows)};
    }
    if (auto* clustered =
            dynamic_cast<storage::ClusteredTable*>(table_->table.get())) {
      if (has_seek_) {
        return clustered->NewSnapshotScanFrom(seek_prefix_, *snap,
                                              ctx->txn_id);
      }
      return {clustered->NewSnapshotScan(*snap, ctx->txn_id)};
    }
  }
  if (has_range_) {
    auto* heap = dynamic_cast<storage::HeapTable*>(table_->table.get());
    if (heap == nullptr) {
      return Status::Internal("page-range scan on non-heap table " +
                              table_->name);
    }
    return {heap->NewScanRange(first_page_, end_page_)};
  }
  if (has_seek_) {
    return table_->table->NewScanFrom(seek_prefix_);
  }
  return {table_->table->NewScan()};
}

int64_t TableScanOp::EstimateRows() const {
  const auto rows = static_cast<int64_t>(table_->table->num_rows());
  if (!has_range_) return rows;
  // Page-range partition: prorate by the fraction of sealed pages scanned.
  auto* heap = dynamic_cast<storage::HeapTable*>(table_->table.get());
  const size_t npages = heap != nullptr ? heap->num_pages_sealed() : 0;
  if (npages == 0) return rows;
  const size_t span = end_page_ > first_page_ ? end_page_ - first_page_ : 0;
  return static_cast<int64_t>(static_cast<uint64_t>(rows) * span / npages);
}

std::string TableScanOp::Describe() const {
  std::string kind = table_->clustered_key.empty()
                         ? "Table Scan"
                         : "Clustered Index Scan";
  std::string out = kind + " [" + table_->name + "]";
  if (has_range_) {
    out += StringPrintf(" pages [%zu, %zu)", first_page_, end_page_);
  }
  if (has_seek_) out += " (seek)";
  return out;
}

Result<std::unique_ptr<storage::RowIterator>> ValuesOp::OpenImpl(
    ExecContext* ctx) {
  MemoryCharge charge(ctx->mem.get(), "Constant Scan");
  std::vector<Row> rows;
  rows.reserve(rows_.size());
  for (const auto& exprs : rows_) {
    Row row;
    row.reserve(exprs.size());
    for (const ExprPtr& e : exprs) {
      HTG_ASSIGN_OR_RETURN(Value v, e->Eval(&ctx->eval, Row{}));
      row.push_back(std::move(v));
    }
    HTG_RETURN_IF_ERROR(charge.Add(ApproxRowBytes(row)));
    rows.push_back(std::move(row));
  }
  RecordPeakMem(mutable_stats(), charge.peak());
  return {std::make_unique<ChargedRowsIterator>(std::move(rows),
                                                std::move(charge))};
}

std::string ValuesOp::Describe() const {
  return StringPrintf("Constant Scan [%zu rows]", rows_.size());
}

OpenRowsetOp::OpenRowsetOp(std::string path) : path_(std::move(path)) {
  Column col;
  col.name = "BulkColumn";
  col.type = DataType::kBlob;
  schema_.AddColumn(col);
}

Result<std::unique_ptr<storage::RowIterator>> OpenRowsetOp::OpenImpl(
    ExecContext* ctx) {
  if (ctx->db == nullptr) {
    return Status::ExecError("OPENROWSET requires a database");
  }
  // Read the external file directly (it need not live in the store);
  // the Vfs seam keeps even ad-hoc imports fault-injectable.
  Result<std::string> read = storage::Vfs::Default()->ReadFileToString(path_);
  if (!read.ok()) {
    return Status::NotFound("OPENROWSET(BULK): cannot open " + path_ + ": " +
                            read.status().message());
  }
  std::string bytes = std::move(*read);
  std::vector<Row> rows;
  rows.push_back(Row{Value::Blob(std::move(bytes))});
  // The whole import is held in memory as one blob row; charge it.
  MemoryCharge charge(ctx->mem.get(), "Bulk Import");
  HTG_RETURN_IF_ERROR(charge.Add(ApproxRowBytes(rows[0])));
  RecordPeakMem(mutable_stats(), charge.peak());
  return {std::make_unique<ChargedRowsIterator>(std::move(rows),
                                                std::move(charge))};
}

std::string OpenRowsetOp::Describe() const {
  return "Bulk Import [" + path_ + "]";
}

Result<std::unique_ptr<storage::RowIterator>> FilterOp::OpenImpl(
    ExecContext* ctx) {
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::RowIterator> child,
                       child_->Open(ctx));
  if (ctx->UseBatches() && child->BatchNative()) {
    return {std::make_unique<FilterBatchIterator>(
        std::move(child), predicate_.get(), &ctx->eval, ctx->batch_rows)};
  }
  return {std::make_unique<FilterIterator>(std::move(child), predicate_.get(),
                                           &ctx->eval)};
}

std::string FilterOp::Describe() const {
  return "Filter [" + predicate_->ToString() + "]";
}

ProjectOp::ProjectOp(OperatorPtr child, std::vector<ExprPtr> exprs,
                     std::vector<std::string> names)
    : child_(std::move(child)), exprs_(std::move(exprs)) {
  for (size_t i = 0; i < exprs_.size(); ++i) {
    Column col;
    col.name = i < names.size() ? names[i] : StringPrintf("col%zu", i);
    col.type = exprs_[i]->result_type();
    schema_.AddColumn(col);
  }
}

Result<std::unique_ptr<storage::RowIterator>> ProjectOp::OpenImpl(
    ExecContext* ctx) {
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::RowIterator> child,
                       child_->Open(ctx));
  if (ctx->UseBatches() && child->BatchNative()) {
    return {std::make_unique<ProjectBatchIterator>(std::move(child), &exprs_,
                                                   &ctx->eval,
                                                   ctx->batch_rows)};
  }
  return {std::make_unique<ProjectIterator>(std::move(child), &exprs_,
                                            &ctx->eval)};
}

std::string ProjectOp::Describe() const {
  std::string out = "Compute Scalar [";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += exprs_[i]->ToString();
  }
  out += "]";
  return out;
}

Result<std::unique_ptr<storage::RowIterator>> DistinctOp::OpenImpl(
    ExecContext* ctx) {
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::RowIterator> child,
                       child_->Open(ctx));
  return {std::make_unique<DistinctIterator>(std::move(child), ctx->mem.get(),
                                             mutable_stats())};
}

Result<std::unique_ptr<storage::RowIterator>> TopOp::OpenImpl(ExecContext* ctx) {
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::RowIterator> child,
                       child_->Open(ctx));
  if (ctx->UseBatches() && child->BatchNative()) {
    return {std::make_unique<TopBatchIterator>(std::move(child), limit_,
                                               ctx->batch_rows,
                                               ctx->mem.get())};
  }
  return {std::make_unique<TopIterator>(std::move(child), limit_)};
}

std::string TopOp::Describe() const {
  return StringPrintf("Top [%lld]", static_cast<long long>(limit_));
}

}  // namespace htg::exec
