#include "workflow/loaders.h"

#include "common/string_util.h"

namespace htg::workflow {

using genomics::Alignment;
using genomics::ReferenceGenome;
using genomics::ShortRead;
using genomics::TagCount;

Result<LoadResult> LoadReads(Database* db, const std::string& table,
                             const std::vector<ShortRead>& reads,
                             const SampleKey& key, int64_t first_id) {
  HTG_ASSIGN_OR_RETURN(catalog::TableDef * def, db->GetTable(table));
  LoadResult result;
  for (size_t i = 0; i < reads.size(); ++i) {
    const ShortRead& r = reads[i];
    Result<genomics::ReadCoordinates> coords = genomics::ParseReadName(r.name);
    Row row;
    row.push_back(Value::Int64(first_id + static_cast<int64_t>(i)));
    row.push_back(Value::Int32(key.e_id));
    row.push_back(Value::Int32(key.sg_id));
    row.push_back(Value::Int32(key.s_id));
    if (coords.ok()) {
      row.push_back(Value::Int32(coords->tile));
      row.push_back(Value::Int32(coords->x));
      row.push_back(Value::Int32(coords->y));
    } else {
      // The read still loads (sequence + quality are intact) but its name
      // did not decompose; surface that in the rejected count instead of
      // silently absorbing it.
      ++result.rejected;
      row.push_back(Value::Null());
      row.push_back(Value::Null());
      row.push_back(Value::Null());
    }
    row.push_back(Value::String(r.sequence));
    row.push_back(r.quality.empty() ? Value::Null()
                                    : Value::String(r.quality));
    HTG_RETURN_IF_ERROR(db->InsertRow(def, std::move(row)));
    ++result.loaded;
  }
  return result;
}

Result<LoadResult> LoadReadsOneToOne(Database* db, const std::string& table,
                                     const std::vector<ShortRead>& reads) {
  HTG_ASSIGN_OR_RETURN(catalog::TableDef * def, db->GetTable(table));
  LoadResult result;
  for (const ShortRead& r : reads) {
    Row row;
    row.push_back(Value::String(r.name));
    row.push_back(Value::String(r.sequence));
    row.push_back(r.quality.empty() ? Value::Null()
                                    : Value::String(r.quality));
    HTG_RETURN_IF_ERROR(db->InsertRow(def, std::move(row)));
    ++result.loaded;
  }
  return result;
}

Result<LoadResult> LoadTags(Database* db, const std::string& table,
                            const std::vector<TagCount>& tags,
                            const SampleKey& key) {
  HTG_ASSIGN_OR_RETURN(catalog::TableDef * def, db->GetTable(table));
  LoadResult result;
  for (const TagCount& t : tags) {
    Row row;
    row.push_back(Value::Int64(t.rank));
    row.push_back(Value::Int32(key.e_id));
    row.push_back(Value::Int32(key.sg_id));
    row.push_back(Value::Int32(key.s_id));
    row.push_back(Value::String(t.sequence));
    row.push_back(Value::Int64(t.frequency));
    HTG_RETURN_IF_ERROR(db->InsertRow(def, std::move(row)));
    ++result.loaded;
  }
  return result;
}

Result<LoadResult> LoadReferenceCatalog(Database* db, const std::string& table,
                                        const ReferenceGenome& ref) {
  HTG_ASSIGN_OR_RETURN(catalog::TableDef * def, db->GetTable(table));
  LoadResult result;
  for (int i = 0; i < ref.num_chromosomes(); ++i) {
    Row row;
    row.push_back(Value::Int32(i));
    row.push_back(Value::String(ref.chromosome(i).name));
    row.push_back(
        Value::Int64(static_cast<int64_t>(ref.chromosome(i).sequence.size())));
    HTG_RETURN_IF_ERROR(db->InsertRow(def, std::move(row)));
    ++result.loaded;
  }
  return result;
}

Result<LoadResult> LoadAlignments(Database* db, const std::string& table,
                                  const std::vector<Alignment>& alignments,
                                  const SampleKey& key) {
  HTG_ASSIGN_OR_RETURN(catalog::TableDef * def, db->GetTable(table));
  LoadResult result;
  for (const Alignment& a : alignments) {
    Row row;
    row.push_back(Value::Int32(key.e_id));
    row.push_back(Value::Int32(key.sg_id));
    row.push_back(Value::Int32(key.s_id));
    row.push_back(Value::Int64(a.read_id));
    row.push_back(Value::Int32(a.chromosome));
    row.push_back(Value::Int64(a.position));
    row.push_back(Value::Bool(a.reverse_strand));
    row.push_back(Value::Int32(a.mismatches));
    row.push_back(Value::Int32(a.mapping_quality));
    HTG_RETURN_IF_ERROR(db->InsertRow(def, std::move(row)));
    ++result.loaded;
  }
  return result;
}

Result<LoadResult> LoadAlignmentsOneToOne(
    Database* db, const std::string& table,
    const std::vector<Alignment>& alignments,
    const std::vector<ShortRead>& reads, const ReferenceGenome& ref) {
  HTG_ASSIGN_OR_RETURN(catalog::TableDef * def, db->GetTable(table));
  LoadResult result;
  for (const Alignment& a : alignments) {
    // Dangling foreign keys are data defects in the source, not engine
    // failures: count and skip rather than aborting the whole load.
    if (a.read_id < 0 || a.read_id >= static_cast<int64_t>(reads.size()) ||
        a.chromosome < 0 || a.chromosome >= ref.num_chromosomes()) {
      ++result.rejected;
      continue;
    }
    Row row;
    row.push_back(Value::String(reads[a.read_id].name));
    row.push_back(Value::String(ref.chromosome(a.chromosome).name));
    row.push_back(Value::Int64(a.position));
    row.push_back(Value::String(a.reverse_strand ? "-" : "+"));
    row.push_back(Value::Int32(a.mismatches));
    row.push_back(Value::Int32(a.mapping_quality));
    HTG_RETURN_IF_ERROR(db->InsertRow(def, std::move(row)));
    ++result.loaded;
  }
  return result;
}

Status ImportFastqAsFileStream(sql::SqlEngine* engine,
                               const std::string& table,
                               const std::string& fastq_path, int sample,
                               int lane) {
  const std::string sql = StringPrintf(
      "INSERT INTO %s (guid, sample, lane, reads) "
      "SELECT NEWID(), %d, %d, * "
      "FROM OPENROWSET(BULK '%s', SINGLE_BLOB)",
      table.c_str(), sample, lane, fastq_path.c_str());
  Result<sql::QueryResult> result = engine->Execute(sql);
  return result.ok() ? Status::OK() : result.status();
}

}  // namespace htg::workflow
