#pragma once

#include <string>

#include "sql/engine.h"
#include "storage/row_codec.h"

namespace htg::workflow {

// Options for instantiating the normalized genomics schema (the paper's
// Fig. 4 conceptual model mapped to relations, §3.2).
struct SchemaOptions {
  // Applied to the bulk tables (Read, Tag, Alignment).
  storage::Compression compression = storage::Compression::kNone;
  // Cluster Read on r_id and Alignment on a_r_id so that
  // Alignment ⋈ Read plans merge-join off the clustered indexes (§5.3.3).
  bool clustered_join_keys = false;
  // Suffix appended to every table name, for side-by-side physical-design
  // comparisons (e.g. "_row" → Read_row).
  std::string suffix;
};

// Creates the normalized schema through SQL DDL:
//   Experiment, SampleGroup, Sample, Lane,
//   Read, Tag, ReferenceSequence, Alignment, GeneExpression,
//   ShortReadFiles (FILESTREAM).
// Workflow provenance and sequence data share one schema — the departure
// from file-centric practice the paper advocates.
Status CreateGenomicsSchema(sql::SqlEngine* engine,
                            const SchemaOptions& options = {});

// Creates the "straightforward 1:1 import" schema that mimics the file
// structures, repeating the textual composite read names in every table —
// the physical design whose storage blow-up Tables 1 & 2 quantify.
Status CreateOneToOneSchema(sql::SqlEngine* engine,
                            const std::string& suffix = "_1to1");

}  // namespace htg::workflow

