#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/database.h"
#include "sql/engine.h"

namespace htg::workflow {

// Data-provenance management, the paper's closing future-work item
// (§6.1): "When and how were short-reads sequenced, which alignment
// algorithm with certain parameters was used to align them against (a
// specific version of) the Human reference genome?"
//
// The recorder maintains a DataProvenance table of workflow events. Each
// event names the tool, its parameter string, the input artifact and the
// output artifact; events chain input→output, so the lineage of any
// artifact is recoverable with recursive lookups (LineageOf walks the
// chain for the caller).
class ProvenanceRecorder {
 public:
  // Creates the DataProvenance table if missing.
  static Result<ProvenanceRecorder> Open(sql::SqlEngine* engine);

  // Appends one event; returns its id.
  Result<int64_t> Record(const std::string& tool,
                         const std::string& parameters,
                         const std::string& input_artifact,
                         const std::string& output_artifact);

  struct Event {
    int64_t event_id = 0;
    int64_t sequence = 0;  // monotonically increasing order of recording
    std::string tool;
    std::string parameters;
    std::string input_artifact;
    std::string output_artifact;
  };

  // All events producing (transitively) the named artifact, in recording
  // order — the provenance chain.
  Result<std::vector<Event>> LineageOf(const std::string& artifact);

 private:
  explicit ProvenanceRecorder(sql::SqlEngine* engine) : engine_(engine) {}

  sql::SqlEngine* engine_;
  int64_t next_id_ = 0;
};

}  // namespace htg::workflow

