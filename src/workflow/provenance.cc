#include "workflow/provenance.h"

#include <set>

#include "common/string_util.h"

namespace htg::workflow {

Result<ProvenanceRecorder> ProvenanceRecorder::Open(sql::SqlEngine* engine) {
  ProvenanceRecorder recorder(engine);
  Database* db = engine->db();
  if (!db->GetTable("DataProvenance").ok()) {
    Result<sql::QueryResult> created = engine->Execute(R"sql(
        CREATE TABLE DataProvenance (
          event_id BIGINT PRIMARY KEY,
          tool VARCHAR(100) NOT NULL,
          parameters VARCHAR(500),
          input_artifact VARCHAR(300),
          output_artifact VARCHAR(300) NOT NULL
        ))sql");
    if (!created.ok()) return created.status();
  } else {
    // Resume numbering after existing events.
    Result<sql::QueryResult> max_id = engine->Execute(
        "SELECT MAX(event_id) FROM DataProvenance");
    if (max_id.ok() && !max_id->rows.empty() &&
        !max_id->rows[0][0].is_null()) {
      recorder.next_id_ = max_id->rows[0][0].AsInt64() + 1;
    }
  }
  return recorder;
}

Result<int64_t> ProvenanceRecorder::Record(const std::string& tool,
                                           const std::string& parameters,
                                           const std::string& input_artifact,
                                           const std::string& output_artifact) {
  const int64_t id = next_id_++;
  HTG_ASSIGN_OR_RETURN(catalog::TableDef * table,
                       engine_->db()->GetTable("DataProvenance"));
  HTG_RETURN_IF_ERROR(engine_->db()->InsertRow(
      table, Row{Value::Int64(id), Value::String(tool),
                 Value::String(parameters), Value::String(input_artifact),
                 Value::String(output_artifact)}));
  return id;
}

Result<std::vector<ProvenanceRecorder::Event>> ProvenanceRecorder::LineageOf(
    const std::string& artifact) {
  // Load all events once, then walk the chain backwards from `artifact`.
  HTG_ASSIGN_OR_RETURN(catalog::TableDef * table,
                       engine_->db()->GetTable("DataProvenance"));
  std::vector<Event> all;
  {
    std::unique_ptr<storage::RowIterator> scan = table->table->NewScan();
    Row row;
    while (scan->Next(&row)) {
      Event event;
      event.event_id = row[0].AsInt64();
      event.sequence = event.event_id;
      event.tool = row[1].AsString();
      event.parameters = row[2].is_null() ? "" : row[2].AsString();
      event.input_artifact = row[3].is_null() ? "" : row[3].AsString();
      event.output_artifact = row[4].AsString();
      all.push_back(std::move(event));
    }
    HTG_RETURN_IF_ERROR(scan->status());
  }
  std::set<std::string> frontier = {artifact};
  std::set<int64_t> selected;
  // Fixed-point: pull in every event whose output feeds the frontier.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Event& event : all) {
      if (selected.count(event.event_id) > 0) continue;
      if (frontier.count(event.output_artifact) > 0) {
        selected.insert(event.event_id);
        if (!event.input_artifact.empty()) {
          frontier.insert(event.input_artifact);
        }
        changed = true;
      }
    }
  }
  std::vector<Event> lineage;
  for (const Event& event : all) {
    if (selected.count(event.event_id) > 0) lineage.push_back(event);
  }
  return lineage;
}

}  // namespace htg::workflow
