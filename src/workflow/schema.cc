#include "workflow/schema.h"

#include "common/string_util.h"

namespace htg::workflow {

namespace {

Status Run(sql::SqlEngine* engine, const std::string& ddl) {
  Result<sql::QueryResult> result = engine->Execute(ddl);
  return result.ok() ? Status::OK() : result.status();
}

}  // namespace

Status CreateGenomicsSchema(sql::SqlEngine* engine,
                            const SchemaOptions& options) {
  const std::string& sfx = options.suffix;
  const std::string comp =
      std::string(storage::CompressionName(options.compression));
  const std::string bulk_with = " WITH (DATA_COMPRESSION = " + comp + ")";

  // Workflow provenance (the meta-data that today lives in the only
  // relational part of sequencing labs' stacks, §2.1).
  HTG_RETURN_IF_ERROR(Run(engine, StringPrintf(R"sql(
    CREATE TABLE Experiment%s (
      e_id INT PRIMARY KEY,
      name VARCHAR(200) NOT NULL,
      experiment_type VARCHAR(40),
      instrument VARCHAR(40),
      started VARCHAR(40)
    ))sql",
                                               sfx.c_str())));
  HTG_RETURN_IF_ERROR(Run(engine, StringPrintf(R"sql(
    CREATE TABLE SampleGroup%s (
      sg_e_id INT,
      sg_id INT,
      name VARCHAR(200),
      PRIMARY KEY (sg_e_id, sg_id)
    ))sql",
                                               sfx.c_str())));
  HTG_RETURN_IF_ERROR(Run(engine, StringPrintf(R"sql(
    CREATE TABLE Sample%s (
      s_e_id INT,
      s_sg_id INT,
      s_id INT,
      name VARCHAR(200),
      flowcell INT,
      lane INT,
      PRIMARY KEY (s_e_id, s_sg_id, s_id)
    ))sql",
                                               sfx.c_str())));
  HTG_RETURN_IF_ERROR(Run(engine, StringPrintf(R"sql(
    CREATE TABLE Lane%s (
      l_flowcell INT,
      l_lane INT,
      l_control BIT,
      l_tiles INT,
      PRIMARY KEY (l_flowcell, l_lane)
    ))sql",
                                               sfx.c_str())));

  // Level-1 data: short reads with synthetic numeric ids; the composite
  // textual name of the FASTQ file is decomposed into its coordinates.
  const std::string read_cluster =
      options.clustered_join_keys ? " CLUSTER BY (r_id)" : "";
  HTG_RETURN_IF_ERROR(Run(engine, StringPrintf(R"sql(
    CREATE TABLE Read%s (
      r_id BIGINT NOT NULL,
      r_e_id INT,
      r_sg_id INT,
      r_s_id INT,
      tile INT,
      x INT,
      y INT,
      short_read_seq VARCHAR(300) NOT NULL,
      quality VARCHAR(300)
    )%s%s)sql",
                                               sfx.c_str(), bulk_with.c_str(),
                                               read_cluster.c_str())));

  // Unique tags of a DGE study (level-1 derived).
  HTG_RETURN_IF_ERROR(Run(engine, StringPrintf(R"sql(
    CREATE TABLE Tag%s (
      t_id BIGINT NOT NULL,
      t_e_id INT,
      t_sg_id INT,
      t_s_id INT,
      t_seq VARCHAR(300) NOT NULL,
      t_frequency BIGINT
    )%s)sql",
                                               sfx.c_str(), bulk_with.c_str())));

  // Reference sequences (chromosomes / genes) aligned against.
  HTG_RETURN_IF_ERROR(Run(engine, StringPrintf(R"sql(
    CREATE TABLE ReferenceSequence%s (
      g_id INT PRIMARY KEY,
      name VARCHAR(100) NOT NULL,
      seq_length BIGINT
    ))sql",
                                               sfx.c_str())));

  // Level-2 data: alignments referencing reads by foreign key instead of
  // repeating the read (the normalization win of §3.2).
  const std::string align_cluster =
      options.clustered_join_keys ? " CLUSTER BY (a_r_id)" : "";
  HTG_RETURN_IF_ERROR(Run(engine, StringPrintf(R"sql(
    CREATE TABLE Alignment%s (
      a_e_id INT,
      a_sg_id INT,
      a_s_id INT,
      a_r_id BIGINT NOT NULL,
      a_g_id INT NOT NULL,
      a_pos BIGINT NOT NULL,
      a_strand BIT,
      a_mismatches INT,
      a_mapq INT
    )%s%s)sql",
                                               sfx.c_str(), bulk_with.c_str(),
                                               align_cluster.c_str())));

  // Level-3 data: gene expression results (paper Query 2 target).
  HTG_RETURN_IF_ERROR(Run(engine, StringPrintf(R"sql(
    CREATE TABLE GeneExpression%s (
      ge_g_id INT,
      ge_e_id INT,
      ge_sg_id INT,
      ge_s_id INT,
      total_frequency BIGINT,
      tag_count BIGINT
    ))sql",
                                               sfx.c_str())));

  // The hybrid design's FileStream table (§3.3 example).
  HTG_RETURN_IF_ERROR(Run(engine, StringPrintf(R"sql(
    CREATE TABLE ShortReadFiles%s (
      guid UNIQUEIDENTIFIER ROWGUIDCOL PRIMARY KEY,
      sample INT,
      lane INT,
      reads VARBINARY(MAX) FILESTREAM
    ) FILESTREAM_ON FileStreamGroup)sql",
                                               sfx.c_str())));
  return Status::OK();
}

Status CreateOneToOneSchema(sql::SqlEngine* engine, const std::string& sfx) {
  // Reads exactly as in the FASTQ file: the composite textual name is the
  // only identifier and is repeated wherever a read is referenced. The
  // "straightforward" import also lands all text in NVARCHAR (UTF-16,
  // 2 bytes per character on SQL Server 2008) — the main reason the 1:1
  // design in the paper's Table 1 nearly doubles the file sizes.
  HTG_RETURN_IF_ERROR(Run(engine, StringPrintf(R"sql(
    CREATE TABLE Read%s (
      read_name NVARCHAR(100) NOT NULL,
      short_read_seq NVARCHAR(300) NOT NULL,
      quality NVARCHAR(300)
    ))sql",
                                               sfx.c_str())));
  HTG_RETURN_IF_ERROR(Run(engine, StringPrintf(R"sql(
    CREATE TABLE Tag%s (
      tag_rank BIGINT,
      tag_count BIGINT,
      tag_seq NVARCHAR(300) NOT NULL
    ))sql",
                                               sfx.c_str())));
  HTG_RETURN_IF_ERROR(Run(engine, StringPrintf(R"sql(
    CREATE TABLE Alignment%s (
      read_name NVARCHAR(100) NOT NULL,
      chromosome NVARCHAR(100) NOT NULL,
      pos BIGINT,
      strand NCHAR(1),
      mismatches INT,
      mapq INT
    ))sql",
                                               sfx.c_str())));
  HTG_RETURN_IF_ERROR(Run(engine, StringPrintf(R"sql(
    CREATE TABLE GeneExpression%s (
      gene_name NVARCHAR(100) NOT NULL,
      sample_name NVARCHAR(100) NOT NULL,
      total_frequency BIGINT,
      tag_count BIGINT
    ))sql",
                                               sfx.c_str())));
  return Status::OK();
}

}  // namespace htg::workflow
