#ifndef HTG_WORKFLOW_LOADERS_H_
#define HTG_WORKFLOW_LOADERS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/database.h"
#include "genomics/aligner.h"
#include "genomics/formats.h"
#include "genomics/gene_expression.h"
#include "genomics/reference.h"
#include "sql/engine.h"

namespace htg::workflow {

// Identifies which experiment/sample the loaded rows belong to
// (the composite-key context of the normalized schema).
struct SampleKey {
  int e_id = 1;
  int sg_id = 1;
  int s_id = 1;
};

// Loads short reads into the normalized Read table, decomposing the
// textual composite name into (tile, x, y) coordinates and assigning
// numeric ids [first_id, ...). Returns the number of rows loaded.
Result<uint64_t> LoadReads(Database* db, const std::string& table,
                           const std::vector<genomics::ShortRead>& reads,
                           const SampleKey& key, int64_t first_id = 0);

// Loads reads 1:1 as in the FASTQ file (textual name kept verbatim).
Result<uint64_t> LoadReadsOneToOne(
    Database* db, const std::string& table,
    const std::vector<genomics::ShortRead>& reads);

// Loads unique-tag bins into the normalized Tag table.
Result<uint64_t> LoadTags(Database* db, const std::string& table,
                          const std::vector<genomics::TagCount>& tags,
                          const SampleKey& key);

// Loads the 25-chromosome (or however many) reference catalog.
Result<uint64_t> LoadReferenceCatalog(Database* db, const std::string& table,
                                      const genomics::ReferenceGenome& ref);

// Loads alignments into the normalized Alignment table (numeric foreign
// keys a_r_id → Read.r_id, a_g_id → ReferenceSequence.g_id).
Result<uint64_t> LoadAlignments(
    Database* db, const std::string& table,
    const std::vector<genomics::Alignment>& alignments, const SampleKey& key);

// Loads alignments 1:1 (textual read name + chromosome name per row).
Result<uint64_t> LoadAlignmentsOneToOne(
    Database* db, const std::string& table,
    const std::vector<genomics::Alignment>& alignments,
    const std::vector<genomics::ShortRead>& reads,
    const genomics::ReferenceGenome& ref);

// Bulk-imports a FASTQ file into the ShortReadFiles FILESTREAM table via
// the paper's T-SQL flow: INSERT ... SELECT NEWID(), ..., * FROM
// OPENROWSET(BULK <path>, SINGLE_BLOB).
Status ImportFastqAsFileStream(sql::SqlEngine* engine,
                               const std::string& table,
                               const std::string& fastq_path, int sample,
                               int lane);

}  // namespace htg::workflow

#endif  // HTG_WORKFLOW_LOADERS_H_
