#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/database.h"
#include "genomics/aligner.h"
#include "genomics/formats.h"
#include "genomics/gene_expression.h"
#include "genomics/reference.h"
#include "sql/engine.h"

namespace htg::workflow {

// Identifies which experiment/sample the loaded rows belong to
// (the composite-key context of the normalized schema).
struct SampleKey {
  int e_id = 1;
  int sg_id = 1;
  int s_id = 1;
};

// Outcome of one bulk load. Malformed source records (unparseable read
// names, dangling foreign keys) are counted in `rejected` rather than
// silently absorbed; engine failures (I/O faults, constraint violations)
// still abort the load with a non-OK Status.
struct LoadResult {
  uint64_t loaded = 0;
  uint64_t rejected = 0;
};

// Loads short reads into the normalized Read table, decomposing the
// textual composite name into (tile, x, y) coordinates and assigning
// numeric ids [first_id, ...). Reads whose names do not parse are stored
// with NULL coordinates and counted as rejected.
Result<LoadResult> LoadReads(Database* db, const std::string& table,
                             const std::vector<genomics::ShortRead>& reads,
                             const SampleKey& key, int64_t first_id = 0);

// Loads reads 1:1 as in the FASTQ file (textual name kept verbatim).
Result<LoadResult> LoadReadsOneToOne(
    Database* db, const std::string& table,
    const std::vector<genomics::ShortRead>& reads);

// Loads unique-tag bins into the normalized Tag table.
Result<LoadResult> LoadTags(Database* db, const std::string& table,
                            const std::vector<genomics::TagCount>& tags,
                            const SampleKey& key);

// Loads the 25-chromosome (or however many) reference catalog.
Result<LoadResult> LoadReferenceCatalog(Database* db, const std::string& table,
                                        const genomics::ReferenceGenome& ref);

// Loads alignments into the normalized Alignment table (numeric foreign
// keys a_r_id → Read.r_id, a_g_id → ReferenceSequence.g_id).
Result<LoadResult> LoadAlignments(
    Database* db, const std::string& table,
    const std::vector<genomics::Alignment>& alignments, const SampleKey& key);

// Loads alignments 1:1 (textual read name + chromosome name per row).
// Alignments whose read or chromosome index resolves nowhere are counted
// as rejected and skipped.
Result<LoadResult> LoadAlignmentsOneToOne(
    Database* db, const std::string& table,
    const std::vector<genomics::Alignment>& alignments,
    const std::vector<genomics::ShortRead>& reads,
    const genomics::ReferenceGenome& ref);

// Bulk-imports a FASTQ file into the ShortReadFiles FILESTREAM table via
// the paper's T-SQL flow: INSERT ... SELECT NEWID(), ..., * FROM
// OPENROWSET(BULK <path>, SINGLE_BLOB).
Status ImportFastqAsFileStream(sql::SqlEngine* engine,
                               const std::string& table,
                               const std::string& fastq_path, int sample,
                               int lane);

}  // namespace htg::workflow

