#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/database.h"
#include "common/result.h"
#include "common/synchronization.h"
#include "exec/operator.h"
#include "sql/ast.h"
#include "storage/mvcc.h"
#include "storage/transaction.h"

namespace htg::sql {

// Materialized result of one statement.
struct QueryResult {
  Schema schema;
  std::vector<Row> rows;
  uint64_t rows_affected = 0;
  // EXPLAIN output / DDL acknowledgement.
  std::string message;

  // Renders an ASCII table (for examples and the shell).
  std::string ToString(size_t max_rows = 50) const;
};

// State of one multi-statement transaction (wire BEGIN .. COMMIT/ABORT).
// Created by SqlEngine::BeginTxn, owned by the session, threaded into
// every statement via StatementOptions::txn, and finished by exactly one
// of CommitTxn/AbortTxn. Statements outside a transaction get an implicit
// per-statement equivalent inside the engine.
struct TxnContext {
  storage::TxnId id = storage::kFrozenTxn;
  // The consistent view every read in this transaction uses; writes the
  // transaction itself made are additionally visible (self-visibility).
  storage::Snapshot snapshot;
  // True for wire-level BEGIN transactions; false for the engine's
  // implicit per-statement transactions. Explicit transactions run the
  // first-writer-wins conflict check and never auto-retry.
  bool is_explicit = false;
  // Tables this transaction has written: commit publishes their
  // watermarks, abort truncates heaps / hides clustered stamps.
  struct WrittenTable {
    catalog::TableDef* table = nullptr;
    uint64_t rows_inserted = 0;  // clustered abort: entries to discount
  };
  std::vector<WrittenTable> written;
  // Compensation actions that must run on abort (FILESTREAM blob
  // deletes). Heap undo is not here — it derives from the MVCC watermark.
  storage::Transaction compensations;
};

// Per-call execution knobs, threaded from the session layer.
struct StatementOptions {
  // Statement dedupe token. When non-empty, a successfully committed
  // execution is recorded in a bounded ledger under this token, and a
  // later Execute with the same token returns the recorded result instead
  // of re-running. This is what makes retry-after-kTransient safe for
  // non-idempotent loads: a transient fault *after* commit (say, while the
  // response crossed the wire) must not insert the rows twice.
  std::string token;
  // Per-statement memory budget override in bytes; 0 keeps the
  // database-wide DatabaseOptions::query_mem_bytes policy. Sessions use
  // this to carve the server budget per connection.
  size_t query_mem_bytes = 0;
  // The session layer owns transient-fault retries (it holds the dedupe
  // token); setting this disables the engine's internal whole-statement
  // retry loop so the two layers don't compound into retries².
  bool caller_owns_retries = false;
  // Explicit transaction this statement runs inside, or null for
  // autocommit. Inside a transaction the engine never silently re-executes
  // a failed statement (earlier statements' effects would replay into an
  // inconsistent interleaving); the whole transaction aborts instead.
  TxnContext* txn = nullptr;
};

// The SQL surface of the engine: parse → bind/plan → execute.
//
//   SqlEngine engine(db);
//   auto result = engine.Execute("SELECT COUNT(*) FROM Read");
//
// The engine itself is stateless apart from the committed-token ledger,
// which is internally synchronized: concurrent sessions may share one
// SqlEngine as long as catalog access is coordinated (the server's
// LockManager serializes DDL against DML).
class SqlEngine {
 public:
  // Whole-statement retry budget for transient I/O faults that survive the
  // storage layer's own RunWithRetries backoff. Rollback makes a failed
  // statement side-effect-free, so re-running it is safe.
  static constexpr int kStatementRetries = 3;
  // Committed dedupe tokens remembered (FIFO eviction). Sized to cover
  // every statement a reconnecting client could plausibly retry.
  static constexpr size_t kTokenLedgerCapacity = 256;

  explicit SqlEngine(Database* db) : db_(db) {}

  // Executes one or more ';'-separated statements; returns the last
  // statement's result.
  Result<QueryResult> Execute(std::string_view sql);
  Result<QueryResult> Execute(std::string_view sql,
                              const StatementOptions& opts);

  // Executes already-parsed statements (the prepared-statement path: parse
  // once at Prepare, run per Execute).
  Result<QueryResult> ExecuteParsed(const std::vector<Statement>& statements,
                                    const StatementOptions& opts);

  // Plans a single SELECT without executing it (benchmarks stream the
  // iterator themselves).
  Result<exec::OperatorPtr> Plan(std::string_view sql);

  // Returns the EXPLAIN plan text for a single SELECT.
  Result<std::string> Explain(std::string_view sql);

  // Transactions ---------------------------------------------------------
  // Starts an explicit multi-statement transaction: allocates a txn id
  // and takes its snapshot. Fails when MVCC is disabled (HTG_MVCC=0).
  Result<std::unique_ptr<TxnContext>> BeginTxn();
  // Publishes every written table's watermark, then marks the txn
  // committed — its writes become visible to new snapshots atomically.
  Status CommitTxn(TxnContext* txn);
  // Rolls back: truncates heap tails to their pre-txn watermarks, hides
  // clustered stamps, runs blob compensations, marks the txn aborted.
  Status AbortTxn(TxnContext* txn);

  Database* db() { return db_; }

 private:
  Result<QueryResult> ExecuteStatement(const Statement& stmt,
                                       const StatementOptions& opts);
  Result<QueryResult> ExecuteSelect(const SelectStmt& stmt,
                                    const StatementOptions& opts);
  Result<QueryResult> ExecuteCreateTable(const CreateTableStmt& stmt);
  Result<QueryResult> ExecuteInsert(const InsertStmt& stmt,
                                    const StatementOptions& opts);

  // ExecContext::For(db_) with the per-statement budget override applied.
  exec::ExecContext MakeContext(const StatementOptions& opts);

  // Returns true and fills *result when `token` already committed.
  bool LookupToken(const std::string& token, QueryResult* result);
  void RecordToken(const std::string& token, const QueryResult& result);

  Database* db_;

  Mutex ledger_mu_{"SqlEngine::ledger_mu_"};
  std::map<std::string, QueryResult> committed_ HTG_GUARDED_BY(ledger_mu_);
  std::deque<std::string> committed_order_ HTG_GUARDED_BY(ledger_mu_);
};

}  // namespace htg::sql

