#pragma once

#include <memory>
#include <string>
#include <vector>

#include "catalog/database.h"
#include "common/result.h"
#include "exec/operator.h"
#include "sql/ast.h"

namespace htg::sql {

// Materialized result of one statement.
struct QueryResult {
  Schema schema;
  std::vector<Row> rows;
  uint64_t rows_affected = 0;
  // EXPLAIN output / DDL acknowledgement.
  std::string message;

  // Renders an ASCII table (for examples and the shell).
  std::string ToString(size_t max_rows = 50) const;
};

// The SQL surface of the engine: parse → bind/plan → execute.
//
//   SqlEngine engine(db);
//   auto result = engine.Execute("SELECT COUNT(*) FROM Read");
class SqlEngine {
 public:
  // Whole-statement retry budget for transient I/O faults that survive the
  // storage layer's own RunWithRetries backoff. Rollback makes a failed
  // statement side-effect-free, so re-running it is safe.
  static constexpr int kStatementRetries = 3;

  explicit SqlEngine(Database* db) : db_(db) {}

  // Executes one or more ';'-separated statements; returns the last
  // statement's result.
  Result<QueryResult> Execute(std::string_view sql);

  // Plans a single SELECT without executing it (benchmarks stream the
  // iterator themselves).
  Result<exec::OperatorPtr> Plan(std::string_view sql);

  // Returns the EXPLAIN plan text for a single SELECT.
  Result<std::string> Explain(std::string_view sql);

  Database* db() { return db_; }

 private:
  Result<QueryResult> ExecuteStatement(const Statement& stmt);
  Result<QueryResult> ExecuteSelect(const SelectStmt& stmt);
  Result<QueryResult> ExecuteCreateTable(const CreateTableStmt& stmt);
  Result<QueryResult> ExecuteInsert(const InsertStmt& stmt);

  Database* db_;
};

}  // namespace htg::sql

