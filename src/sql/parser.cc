#include "sql/parser.h"

#include "common/string_util.h"

namespace htg::sql {

namespace {

// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::vector<Statement>> ParseAll() {
    std::vector<Statement> statements;
    for (;;) {
      while (CurIsOp(";")) Advance();
      if (Cur().type == TokenType::kEnd) break;
      HTG_ASSIGN_OR_RETURN(Statement stmt, ParseStatement());
      statements.push_back(std::move(stmt));
    }
    return statements;
  }

  Result<Statement> ParseStatement() {
    Statement stmt;
    if (CurIsKw("SELECT")) {
      stmt.kind = Statement::Kind::kSelect;
      HTG_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
      return stmt;
    }
    if (CurIsKw("EXPLAIN")) {
      Advance();
      stmt.kind = Statement::Kind::kExplain;
      stmt.explain_analyze = AcceptKw("ANALYZE");
      HTG_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
      return stmt;
    }
    if (CurIsKw("CREATE")) return ParseCreate();
    if (CurIsKw("DROP")) {
      Advance();
      HTG_RETURN_IF_ERROR(ExpectKw("TABLE"));
      stmt.kind = Statement::Kind::kDropTable;
      HTG_ASSIGN_OR_RETURN(stmt.table_name, ExpectIdentifier());
      return stmt;
    }
    if (CurIsKw("TRUNCATE")) {
      Advance();
      HTG_RETURN_IF_ERROR(ExpectKw("TABLE"));
      stmt.kind = Statement::Kind::kTruncate;
      HTG_ASSIGN_OR_RETURN(stmt.table_name, ExpectIdentifier());
      return stmt;
    }
    if (CurIsKw("INSERT")) return ParseInsert();
    return Status::ParseError("unexpected token at statement start: " +
                              Cur().text);
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek(int n = 1) const {
    const size_t i = pos_ + n;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  bool CurIsKw(std::string_view kw) const { return Cur().IsKeyword(kw); }
  bool CurIsOp(std::string_view op) const { return Cur().IsOp(op); }

  bool AcceptKw(std::string_view kw) {
    if (CurIsKw(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptOp(std::string_view op) {
    if (CurIsOp(op)) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectKw(std::string_view kw) {
    if (!AcceptKw(kw)) {
      return Status::ParseError(StringPrintf(
          "expected %s near '%s' (offset %zu)", std::string(kw).c_str(),
          Cur().text.c_str(), Cur().offset));
    }
    return Status::OK();
  }
  Status ExpectOp(std::string_view op) {
    if (!AcceptOp(op)) {
      return Status::ParseError(StringPrintf(
          "expected '%s' near '%s' (offset %zu)", std::string(op).c_str(),
          Cur().text.c_str(), Cur().offset));
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier() {
    if (Cur().type != TokenType::kIdentifier) {
      return Status::ParseError("expected identifier near '" + Cur().text +
                                "'");
    }
    std::string name = Cur().text;
    Advance();
    return name;
  }

  // Reserved words that terminate an implicit alias.
  static bool IsReserved(const Token& t) {
    static const char* kReserved[] = {
        "FROM",  "WHERE",    "GROUP", "ORDER",  "HAVING", "JOIN",   "ON",
        "CROSS", "APPLY",    "INNER", "SELECT", "TOP",    "AND",    "OR",
        "NOT",   "AS",       "BY",    "ASC",    "DESC",   "INSERT", "VALUES",
        "INTO",  "LEFT",     "RIGHT", "SET",    "UNION",  "WITH",   "CASE",
        "DISTINCT",
        "WHEN",  "THEN",     "ELSE",  "END",    "IS",     "NULL",   "IN",
        "LIKE",  "BETWEEN",  "EXISTS"};
    for (const char* kw : kReserved) {
      if (t.IsKeyword(kw)) return true;
    }
    return false;
  }

  // --- SELECT ---------------------------------------------------------

  Result<std::unique_ptr<SelectStmt>> ParseSelect() {
    HTG_RETURN_IF_ERROR(ExpectKw("SELECT"));
    auto stmt = std::make_unique<SelectStmt>();
    if (AcceptKw("DISTINCT")) stmt->distinct = true;
    if (AcceptKw("TOP")) {
      bool paren = AcceptOp("(");
      if (Cur().type != TokenType::kInteger) {
        return Status::ParseError("expected integer after TOP");
      }
      stmt->top = Cur().int_value;
      Advance();
      if (paren) HTG_RETURN_IF_ERROR(ExpectOp(")"));
    }
    // Select list.
    for (;;) {
      SelectItem item;
      if (CurIsOp("*")) {
        item.star = true;
        Advance();
      } else {
        HTG_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKw("AS")) {
          HTG_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
        } else if (Cur().type == TokenType::kIdentifier && !IsReserved(Cur())) {
          item.alias = Cur().text;
          Advance();
        }
      }
      stmt->items.push_back(std::move(item));
      if (!AcceptOp(",")) break;
    }
    // FROM.
    if (AcceptKw("FROM")) {
      HTG_ASSIGN_OR_RETURN(stmt->from, ParseTableRef());
      // Joins / CROSS APPLY.
      for (;;) {
        if (AcceptKw("CROSS")) {
          HTG_RETURN_IF_ERROR(ExpectKw("APPLY"));
          JoinClause jc;
          jc.cross_apply = true;
          HTG_ASSIGN_OR_RETURN(jc.ref, ParseTableRef());
          stmt->joins.push_back(std::move(jc));
          continue;
        }
        const bool inner = CurIsKw("INNER");
        const bool left_outer = CurIsKw("LEFT");
        if (inner || left_outer || CurIsKw("JOIN")) {
          if (inner || left_outer) Advance();
          if (left_outer) AcceptKw("OUTER");
          HTG_RETURN_IF_ERROR(ExpectKw("JOIN"));
          JoinClause jc;
          jc.left_outer = left_outer;
          HTG_ASSIGN_OR_RETURN(jc.ref, ParseTableRef());
          HTG_RETURN_IF_ERROR(ExpectKw("ON"));
          HTG_ASSIGN_OR_RETURN(jc.condition, ParseExpr());
          stmt->joins.push_back(std::move(jc));
          continue;
        }
        break;
      }
    }
    if (AcceptKw("WHERE")) {
      HTG_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (AcceptKw("GROUP")) {
      HTG_RETURN_IF_ERROR(ExpectKw("BY"));
      for (;;) {
        HTG_ASSIGN_OR_RETURN(AstExprPtr e, ParseExpr());
        stmt->group_by.push_back(std::move(e));
        if (!AcceptOp(",")) break;
      }
    }
    if (AcceptKw("HAVING")) {
      HTG_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
    if (AcceptKw("ORDER")) {
      HTG_RETURN_IF_ERROR(ExpectKw("BY"));
      for (;;) {
        OrderItem item;
        HTG_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKw("DESC")) {
          item.descending = true;
        } else {
          AcceptKw("ASC");
        }
        stmt->order_by.push_back(std::move(item));
        if (!AcceptOp(",")) break;
      }
    }
    return stmt;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    if (AcceptOp("(")) {
      ref.kind = TableRef::Kind::kSubquery;
      HTG_ASSIGN_OR_RETURN(ref.subquery, ParseSelect());
      HTG_RETURN_IF_ERROR(ExpectOp(")"));
    } else if (CurIsKw("OPENROWSET")) {
      Advance();
      HTG_RETURN_IF_ERROR(ExpectOp("("));
      HTG_RETURN_IF_ERROR(ExpectKw("BULK"));
      if (Cur().type != TokenType::kString) {
        return Status::ParseError("expected path string in OPENROWSET(BULK)");
      }
      ref.kind = TableRef::Kind::kOpenRowset;
      ref.bulk_path = Cur().text;
      Advance();
      HTG_RETURN_IF_ERROR(ExpectOp(","));
      HTG_RETURN_IF_ERROR(ExpectKw("SINGLE_BLOB"));
      HTG_RETURN_IF_ERROR(ExpectOp(")"));
    } else {
      if (IsReserved(Cur())) {
        return Status::ParseError("expected table name near '" + Cur().text +
                                  "'");
      }
      HTG_ASSIGN_OR_RETURN(ref.name, ExpectIdentifier());
      if (AcceptOp("(")) {
        ref.kind = TableRef::Kind::kTvf;
        if (!CurIsOp(")")) {
          for (;;) {
            HTG_ASSIGN_OR_RETURN(AstExprPtr e, ParseExpr());
            ref.args.push_back(std::move(e));
            if (!AcceptOp(",")) break;
          }
        }
        HTG_RETURN_IF_ERROR(ExpectOp(")"));
      } else {
        ref.kind = TableRef::Kind::kTable;
      }
    }
    if (AcceptKw("AS")) {
      HTG_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
    } else if (Cur().type == TokenType::kIdentifier && !IsReserved(Cur())) {
      ref.alias = Cur().text;
      Advance();
    }
    return ref;
  }

  // --- CREATE TABLE ----------------------------------------------------

  Result<Statement> ParseCreate() {
    Advance();  // CREATE
    HTG_RETURN_IF_ERROR(ExpectKw("TABLE"));
    Statement stmt;
    stmt.kind = Statement::Kind::kCreateTable;
    stmt.create_table = std::make_unique<CreateTableStmt>();
    CreateTableStmt& ct = *stmt.create_table;
    HTG_ASSIGN_OR_RETURN(ct.name, ExpectIdentifier());
    HTG_RETURN_IF_ERROR(ExpectOp("("));
    for (;;) {
      if (CurIsKw("PRIMARY")) {
        Advance();
        HTG_RETURN_IF_ERROR(ExpectKw("KEY"));
        AcceptKw("CLUSTERED");
        HTG_RETURN_IF_ERROR(ExpectOp("("));
        for (;;) {
          HTG_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
          ct.primary_key.push_back(std::move(col));
          AcceptKw("ASC");
          AcceptKw("DESC");
          if (!AcceptOp(",")) break;
        }
        HTG_RETURN_IF_ERROR(ExpectOp(")"));
      } else {
        HTG_ASSIGN_OR_RETURN(ColumnDefAst col, ParseColumnDef());
        ct.columns.push_back(std::move(col));
      }
      if (!AcceptOp(",")) break;
    }
    HTG_RETURN_IF_ERROR(ExpectOp(")"));
    // Trailing options in any order.
    for (;;) {
      if (AcceptKw("WITH")) {
        HTG_RETURN_IF_ERROR(ExpectOp("("));
        HTG_RETURN_IF_ERROR(ExpectKw("DATA_COMPRESSION"));
        HTG_RETURN_IF_ERROR(ExpectOp("="));
        HTG_ASSIGN_OR_RETURN(ct.compression, ExpectIdentifier());
        HTG_RETURN_IF_ERROR(ExpectOp(")"));
        continue;
      }
      if (AcceptKw("FILESTREAM_ON")) {
        HTG_ASSIGN_OR_RETURN(ct.filestream_group, ExpectIdentifier());
        continue;
      }
      if (AcceptKw("CLUSTER")) {
        HTG_RETURN_IF_ERROR(ExpectKw("BY"));
        HTG_RETURN_IF_ERROR(ExpectOp("("));
        for (;;) {
          HTG_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
          ct.cluster_by.push_back(std::move(col));
          if (!AcceptOp(",")) break;
        }
        HTG_RETURN_IF_ERROR(ExpectOp(")"));
        continue;
      }
      break;
    }
    return stmt;
  }

  Result<ColumnDefAst> ParseColumnDef() {
    ColumnDefAst col;
    HTG_ASSIGN_OR_RETURN(col.name, ExpectIdentifier());
    HTG_ASSIGN_OR_RETURN(col.type_name, ExpectIdentifier());
    if (AcceptOp("(")) {
      if (CurIsKw("MAX")) {
        col.length = ColumnDefAst::kMaxLength;
        Advance();
      } else if (Cur().type == TokenType::kInteger) {
        col.length = static_cast<int>(Cur().int_value);
        Advance();
      } else {
        return Status::ParseError("expected length or MAX in type");
      }
      HTG_RETURN_IF_ERROR(ExpectOp(")"));
    }
    for (;;) {
      if (AcceptKw("FILESTREAM")) {
        col.filestream = true;
        continue;
      }
      if (AcceptKw("ROWGUIDCOL")) {
        col.rowguid = true;
        continue;
      }
      if (CurIsKw("PRIMARY")) {
        Advance();
        HTG_RETURN_IF_ERROR(ExpectKw("KEY"));
        AcceptKw("CLUSTERED");
        col.primary_key = true;
        continue;
      }
      if (CurIsKw("NOT")) {
        Advance();
        HTG_RETURN_IF_ERROR(ExpectKw("NULL"));
        col.not_null = true;
        continue;
      }
      if (AcceptKw("NULL")) continue;
      break;
    }
    return col;
  }

  // --- INSERT ----------------------------------------------------------

  Result<Statement> ParseInsert() {
    Advance();  // INSERT
    AcceptKw("INTO");
    Statement stmt;
    stmt.kind = Statement::Kind::kInsert;
    stmt.insert = std::make_unique<InsertStmt>();
    InsertStmt& ins = *stmt.insert;
    HTG_ASSIGN_OR_RETURN(ins.table, ExpectIdentifier());
    if (CurIsOp("(")) {
      // Could be a column list. Distinguish from nothing else: always cols.
      Advance();
      for (;;) {
        HTG_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        ins.columns.push_back(std::move(col));
        if (!AcceptOp(",")) break;
      }
      HTG_RETURN_IF_ERROR(ExpectOp(")"));
    }
    if (AcceptKw("VALUES")) {
      for (;;) {
        HTG_RETURN_IF_ERROR(ExpectOp("("));
        std::vector<AstExprPtr> row;
        for (;;) {
          HTG_ASSIGN_OR_RETURN(AstExprPtr e, ParseExpr());
          row.push_back(std::move(e));
          if (!AcceptOp(",")) break;
        }
        HTG_RETURN_IF_ERROR(ExpectOp(")"));
        ins.values_rows.push_back(std::move(row));
        if (!AcceptOp(",")) break;
      }
      return stmt;
    }
    if (CurIsKw("SELECT")) {
      HTG_ASSIGN_OR_RETURN(ins.select, ParseSelect());
      return stmt;
    }
    return Status::ParseError("expected VALUES or SELECT in INSERT");
  }

  // --- Expressions -----------------------------------------------------

  Result<AstExprPtr> ParseExpr() { return ParseOr(); }

  Result<AstExprPtr> ParseOr() {
    HTG_ASSIGN_OR_RETURN(AstExprPtr left, ParseAnd());
    while (AcceptKw("OR")) {
      HTG_ASSIGN_OR_RETURN(AstExprPtr right, ParseAnd());
      left = MakeBinary(exec::BinaryOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<AstExprPtr> ParseAnd() {
    HTG_ASSIGN_OR_RETURN(AstExprPtr left, ParseNot());
    while (AcceptKw("AND")) {
      HTG_ASSIGN_OR_RETURN(AstExprPtr right, ParseNot());
      left =
          MakeBinary(exec::BinaryOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<AstExprPtr> ParseNot() {
    if (AcceptKw("NOT")) {
      HTG_ASSIGN_OR_RETURN(AstExprPtr operand, ParseNot());
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExpr::Kind::kUnary;
      e->unary_not = true;
      e->operand = std::move(operand);
      return e;
    }
    return ParseComparison();
  }

  Result<AstExprPtr> ParseComparison() {
    HTG_ASSIGN_OR_RETURN(AstExprPtr left, ParseAdditive());
    // IS [NOT] NULL.
    if (CurIsKw("IS")) {
      Advance();
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExpr::Kind::kIsNull;
      e->is_not = AcceptKw("NOT");
      HTG_RETURN_IF_ERROR(ExpectKw("NULL"));
      e->operand = std::move(left);
      return e;
    }
    // [NOT] IN / LIKE / BETWEEN.
    bool not_in = false;
    if (CurIsKw("NOT") && (Peek().IsKeyword("IN") || Peek().IsKeyword("LIKE") ||
                           Peek().IsKeyword("BETWEEN"))) {
      Advance();
      not_in = true;
    }
    if (AcceptKw("LIKE")) {
      if (Cur().type != TokenType::kString) {
        return Status::ParseError("LIKE expects a string pattern literal");
      }
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExpr::Kind::kLike;
      e->is_not = not_in;
      e->operand = std::move(left);
      e->like_pattern = Cur().text;
      Advance();
      return e;
    }
    if (AcceptKw("BETWEEN")) {
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExpr::Kind::kBetween;
      e->is_not = not_in;
      e->operand = std::move(left);
      HTG_ASSIGN_OR_RETURN(e->between_low, ParseAdditive());
      HTG_RETURN_IF_ERROR(ExpectKw("AND"));
      HTG_ASSIGN_OR_RETURN(e->between_high, ParseAdditive());
      return e;
    }
    if (AcceptKw("IN")) {
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExpr::Kind::kIn;
      e->is_not = not_in;
      e->operand = std::move(left);
      HTG_RETURN_IF_ERROR(ExpectOp("("));
      for (;;) {
        HTG_ASSIGN_OR_RETURN(AstExprPtr item, ParseExpr());
        e->in_list.push_back(std::move(item));
        if (!AcceptOp(",")) break;
      }
      HTG_RETURN_IF_ERROR(ExpectOp(")"));
      return e;
    }
    static const std::pair<const char*, exec::BinaryOp> kCmps[] = {
        {"=", exec::BinaryOp::kEq},  {"<>", exec::BinaryOp::kNe},
        {"!=", exec::BinaryOp::kNe}, {"<=", exec::BinaryOp::kLe},
        {">=", exec::BinaryOp::kGe}, {"<", exec::BinaryOp::kLt},
        {">", exec::BinaryOp::kGt},
    };
    for (const auto& [op, bin] : kCmps) {
      if (CurIsOp(op)) {
        Advance();
        HTG_ASSIGN_OR_RETURN(AstExprPtr right, ParseAdditive());
        return MakeBinary(bin, std::move(left), std::move(right));
      }
    }
    return left;
  }

  Result<AstExprPtr> ParseAdditive() {
    HTG_ASSIGN_OR_RETURN(AstExprPtr left, ParseMultiplicative());
    for (;;) {
      exec::BinaryOp op;
      if (CurIsOp("+")) {
        op = exec::BinaryOp::kAdd;
      } else if (CurIsOp("-")) {
        op = exec::BinaryOp::kSub;
      } else {
        break;
      }
      Advance();
      HTG_ASSIGN_OR_RETURN(AstExprPtr right, ParseMultiplicative());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<AstExprPtr> ParseMultiplicative() {
    HTG_ASSIGN_OR_RETURN(AstExprPtr left, ParseUnary());
    for (;;) {
      exec::BinaryOp op;
      if (CurIsOp("*")) {
        op = exec::BinaryOp::kMul;
      } else if (CurIsOp("/")) {
        op = exec::BinaryOp::kDiv;
      } else if (CurIsOp("%")) {
        op = exec::BinaryOp::kMod;
      } else {
        break;
      }
      Advance();
      HTG_ASSIGN_OR_RETURN(AstExprPtr right, ParseUnary());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<AstExprPtr> ParseUnary() {
    if (AcceptOp("-")) {
      HTG_ASSIGN_OR_RETURN(AstExprPtr operand, ParseUnary());
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExpr::Kind::kUnary;
      e->unary_not = false;
      e->operand = std::move(operand);
      return e;
    }
    AcceptOp("+");
    return ParsePrimary();
  }

  Result<AstExprPtr> ParsePrimary() {
    auto e = std::make_unique<AstExpr>();
    const Token& t = Cur();
    switch (t.type) {
      case TokenType::kInteger:
        e->kind = AstExpr::Kind::kLiteral;
        e->literal = Value::Int64(t.int_value);
        Advance();
        return e;
      case TokenType::kFloat:
        e->kind = AstExpr::Kind::kLiteral;
        e->literal = Value::Double(t.float_value);
        Advance();
        return e;
      case TokenType::kString:
        e->kind = AstExpr::Kind::kLiteral;
        e->literal = Value::String(t.text);
        Advance();
        return e;
      case TokenType::kOperator:
        if (t.text == "(") {
          Advance();
          HTG_ASSIGN_OR_RETURN(AstExprPtr inner, ParseExpr());
          HTG_RETURN_IF_ERROR(ExpectOp(")"));
          return inner;
        }
        if (t.text == "*") {
          e->kind = AstExpr::Kind::kStar;
          Advance();
          return e;
        }
        break;
      case TokenType::kIdentifier: {
        if (t.IsKeyword("NULL")) {
          e->kind = AstExpr::Kind::kLiteral;
          e->literal = Value::Null();
          Advance();
          return e;
        }
        if (t.IsKeyword("CAST")) {
          Advance();
          HTG_RETURN_IF_ERROR(ExpectOp("("));
          HTG_ASSIGN_OR_RETURN(AstExprPtr operand, ParseExpr());
          HTG_RETURN_IF_ERROR(ExpectKw("AS"));
          HTG_ASSIGN_OR_RETURN(std::string type_name, ExpectIdentifier());
          if (AcceptOp("(")) {  // CAST(x AS VARCHAR(10)): length ignored
            if (!AcceptKw("MAX")) Advance();
            HTG_RETURN_IF_ERROR(ExpectOp(")"));
          }
          HTG_RETURN_IF_ERROR(ExpectOp(")"));
          HTG_ASSIGN_OR_RETURN(DataType type, DataTypeFromName(type_name));
          e->kind = AstExpr::Kind::kCast;
          e->cast_type = type;
          e->operand = std::move(operand);
          return e;
        }
        if (t.IsKeyword("CASE")) {
          Advance();
          e->kind = AstExpr::Kind::kCase;
          while (AcceptKw("WHEN")) {
            HTG_ASSIGN_OR_RETURN(AstExprPtr cond, ParseExpr());
            HTG_RETURN_IF_ERROR(ExpectKw("THEN"));
            HTG_ASSIGN_OR_RETURN(AstExprPtr result, ParseExpr());
            e->case_branches.emplace_back(std::move(cond), std::move(result));
          }
          if (AcceptKw("ELSE")) {
            HTG_ASSIGN_OR_RETURN(e->case_else, ParseExpr());
          }
          HTG_RETURN_IF_ERROR(ExpectKw("END"));
          return e;
        }
        // Function call?
        if (Peek().IsOp("(")) {
          e->kind = AstExpr::Kind::kCall;
          e->call_name = t.text;
          Advance();
          Advance();  // '('
          if (CurIsOp("*")) {
            e->star_arg = true;
            Advance();
          } else if (CurIsKw("DISTINCT")) {
            e->distinct_arg = true;
            Advance();
            for (;;) {
              HTG_ASSIGN_OR_RETURN(AstExprPtr arg, ParseExpr());
              e->args.push_back(std::move(arg));
              if (!AcceptOp(",")) break;
            }
          } else if (!CurIsOp(")")) {
            for (;;) {
              HTG_ASSIGN_OR_RETURN(AstExprPtr arg, ParseExpr());
              e->args.push_back(std::move(arg));
              if (!AcceptOp(",")) break;
            }
          }
          HTG_RETURN_IF_ERROR(ExpectOp(")"));
          if (CurIsKw("OVER")) {
            Advance();
            e->has_over = true;
            HTG_RETURN_IF_ERROR(ExpectOp("("));
            HTG_RETURN_IF_ERROR(ExpectKw("ORDER"));
            HTG_RETURN_IF_ERROR(ExpectKw("BY"));
            for (;;) {
              HTG_ASSIGN_OR_RETURN(AstExprPtr key, ParseExpr());
              e->over_order.push_back(std::move(key));
              if (AcceptKw("DESC")) {
                e->over_desc.push_back(true);
              } else {
                AcceptKw("ASC");
                e->over_desc.push_back(false);
              }
              if (!AcceptOp(",")) break;
            }
            HTG_RETURN_IF_ERROR(ExpectOp(")"));
          }
          return e;
        }
        // Qualified identifier.
        e->kind = AstExpr::Kind::kIdent;
        e->ident.push_back(t.text);
        Advance();
        while (CurIsOp(".")) {
          Advance();
          HTG_ASSIGN_OR_RETURN(std::string part, ExpectIdentifier());
          e->ident.push_back(std::move(part));
        }
        return e;
      }
      default:
        break;
    }
    return Status::ParseError("unexpected token in expression: '" + t.text +
                              "'");
  }

  static AstExprPtr MakeBinary(exec::BinaryOp op, AstExprPtr left,
                               AstExprPtr right) {
    auto e = std::make_unique<AstExpr>();
    e->kind = AstExpr::Kind::kBinary;
    e->bin_op = op;
    e->left = std::move(left);
    e->right = std::move(right);
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::vector<Statement>> ParseSql(std::string_view sql) {
  HTG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseAll();
}

Result<Statement> ParseStatement(std::string_view sql) {
  HTG_ASSIGN_OR_RETURN(std::vector<Statement> statements, ParseSql(sql));
  if (statements.size() != 1) {
    return Status::ParseError(
        StringPrintf("expected one statement, found %zu", statements.size()));
  }
  return std::move(statements[0]);
}

}  // namespace htg::sql
