#include "sql/engine.h"

#include <algorithm>
#include <cassert>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "storage/clustered_table.h"
#include "storage/heap_table.h"
#include "storage/transaction.h"

namespace htg::sql {

std::string QueryResult::ToString(size_t max_rows) const {
  if (schema.num_columns() == 0) {
    return message.empty()
               ? StringPrintf("(%llu rows affected)",
                              static_cast<unsigned long long>(rows_affected))
               : message;
  }
  const int ncols = schema.num_columns();
  std::vector<size_t> widths(ncols);
  std::vector<std::vector<std::string>> cells;
  for (int c = 0; c < ncols; ++c) widths[c] = schema.column(c).name.size();
  const size_t limit = std::min(rows.size(), max_rows);
  cells.reserve(limit);
  for (size_t r = 0; r < limit; ++r) {
    std::vector<std::string> line;
    line.reserve(ncols);
    for (int c = 0; c < ncols; ++c) {
      std::string text = rows[r][c].ToString();
      if (text.size() > 40) text = text.substr(0, 37) + "...";
      widths[c] = std::max(widths[c], text.size());
      line.push_back(std::move(text));
    }
    cells.push_back(std::move(line));
  }
  std::string out;
  for (int c = 0; c < ncols; ++c) {
    out += StringPrintf("%-*s ", static_cast<int>(widths[c]),
                        schema.column(c).name.c_str());
  }
  out += '\n';
  for (int c = 0; c < ncols; ++c) {
    out += std::string(widths[c], '-') + ' ';
  }
  out += '\n';
  for (const auto& line : cells) {
    for (int c = 0; c < ncols; ++c) {
      out += StringPrintf("%-*s ", static_cast<int>(widths[c]),
                          line[c].c_str());
    }
    out += '\n';
  }
  if (rows.size() > limit) {
    out += StringPrintf("... (%zu rows total)\n", rows.size());
  }
  return out;
}

Result<QueryResult> SqlEngine::Execute(std::string_view sql) {
  return Execute(sql, StatementOptions{});
}

Result<QueryResult> SqlEngine::Execute(std::string_view sql,
                                       const StatementOptions& opts) {
  HTG_ASSIGN_OR_RETURN(std::vector<Statement> statements, ParseSql(sql));
  return ExecuteParsed(statements, opts);
}

Result<QueryResult> SqlEngine::ExecuteParsed(
    const std::vector<Statement>& statements, const StatementOptions& opts) {
  if (statements.empty()) {
    return Status::ParseError("no statement to execute");
  }
  // Dedupe before touching any table: a session retrying a statement whose
  // first run committed (the transient fault hit after the commit point)
  // must observe the recorded result, not a second execution.
  if (!opts.token.empty()) {
    QueryResult recorded;
    if (LookupToken(opts.token, &recorded)) {
      HTG_METRIC_COUNTER("sql.token.dedupe_hit")->Add();
      return recorded;
    }
  }
  QueryResult last;
  for (const Statement& stmt : statements) {
    // Statement-level degradation: a failed statement has already rolled
    // back its partial writes (see ExecuteInsert), so a transient I/O fault
    // can be retried whole-statement, and a hard failure aborts the batch
    // while leaving the session fully usable. When the caller owns retries
    // (the session layer, with its dedupe token) the internal loop is off.
    Result<QueryResult> r = ExecuteStatement(stmt, opts);
    // Inside an explicit transaction there is no silent re-execution:
    // the statement may have observed (and built on) the transaction's
    // earlier writes, so the only sound recovery is aborting the whole
    // transaction — which the session layer does on any statement error.
    if (!opts.caller_owns_retries && opts.txn == nullptr) {
      for (int attempt = 1; !r.ok() && r.status().IsTransient() &&
                            attempt < kStatementRetries;
           ++attempt) {
        r = ExecuteStatement(stmt, opts);
      }
    }
    HTG_ASSIGN_OR_RETURN(last, std::move(r));
  }
  if (!opts.token.empty()) RecordToken(opts.token, last);
  return last;
}

bool SqlEngine::LookupToken(const std::string& token, QueryResult* result) {
  MutexLock lock(&ledger_mu_);
  const auto it = committed_.find(token);
  if (it == committed_.end()) return false;
  *result = it->second;
  return true;
}

void SqlEngine::RecordToken(const std::string& token,
                            const QueryResult& result) {
  MutexLock lock(&ledger_mu_);
  const auto [it, inserted] = committed_.emplace(token, result);
  (void)it;
  if (!inserted) return;
  committed_order_.push_back(token);
  while (committed_order_.size() > kTokenLedgerCapacity) {
    committed_.erase(committed_order_.front());
    committed_order_.pop_front();
  }
}

exec::ExecContext SqlEngine::MakeContext(const StatementOptions& opts) {
  exec::ExecContext ctx = exec::ExecContext::For(db_);
  if (opts.query_mem_bytes > 0) {
    // Session-scoped budget: tighter than (and independent of) the
    // database-wide default, same spill policy.
    ctx.mem = std::make_shared<MemoryContext>(
        opts.query_mem_bytes, db_->options().ResolvedSpillEnabled());
  }
  return ctx;
}

Result<exec::OperatorPtr> SqlEngine::Plan(std::string_view sql) {
  HTG_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  if (stmt.kind != Statement::Kind::kSelect) {
    return Status::InvalidArgument("Plan() expects a SELECT");
  }
  Binder binder(db_);
  return binder.BindSelect(*stmt.select);
}

Result<std::string> SqlEngine::Explain(std::string_view sql) {
  HTG_ASSIGN_OR_RETURN(exec::OperatorPtr plan, Plan(sql));
  return exec::ExplainPlan(*plan);
}

Result<QueryResult> SqlEngine::ExecuteStatement(const Statement& stmt,
                                                const StatementOptions& opts) {
  // DDL and TRUNCATE are not versioned: they rewrite storage in place,
  // which no snapshot could un-see on abort. Keep them out of explicit
  // transactions (autocommit DDL serializes via the catalog lock).
  if (opts.txn != nullptr && (stmt.kind == Statement::Kind::kCreateTable ||
                              stmt.kind == Statement::Kind::kDropTable ||
                              stmt.kind == Statement::Kind::kTruncate)) {
    return Status::InvalidArgument(
        "DDL and TRUNCATE are not allowed inside a transaction");
  }
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      return ExecuteSelect(*stmt.select, opts);
    case Statement::Kind::kExplain: {
      Binder binder(db_);
      HTG_ASSIGN_OR_RETURN(exec::OperatorPtr plan,
                           binder.BindSelect(*stmt.select));
      QueryResult result;
      if (!stmt.explain_analyze) {
        result.message = exec::ExplainPlan(*plan);
        return result;
      }
      // EXPLAIN ANALYZE: run the plan to completion with per-operator
      // stats collection on, then render the annotated tree. Result rows
      // are drained and discarded — the plan is the output.
      exec::ExecContext ctx = MakeContext(opts);
      ctx.collect_stats = true;
      const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
      Stopwatch total;
      HTG_ASSIGN_OR_RETURN(std::unique_ptr<storage::RowIterator> iter,
                           plan->Open(&ctx));
      std::vector<Row> rows;
      HTG_RETURN_IF_ERROR(exec::DrainIterator(iter.get(), &rows));
      iter.reset();  // fold iterator teardown into the close timings
      result.message =
          exec::ExplainAnalyzePlan(*plan) +
          StringPrintf("total: %llu rows in %.3f ms\n",
                       static_cast<unsigned long long>(rows.size()),
                       total.ElapsedMillis());
      // Cache behaviour of this one statement: the pool counters' delta
      // across the run. Omitted when the plan never touched the pool.
      const obs::MetricsSnapshot delta =
          obs::MetricsRegistry::Global().Snapshot().Delta(before);
      const auto counter = [&delta](const char* name) -> uint64_t {
        const auto it = delta.counters.find(name);
        return it == delta.counters.end() ? 0 : it->second;
      };
      const uint64_t hits = counter("bufferpool.hit");
      const uint64_t misses = counter("bufferpool.miss");
      if (hits + misses > 0) {
        result.message += StringPrintf(
            "buffer pool: %llu hits, %llu misses (%.1f%% hit), "
            "%llu evictions, %llu write-backs\n",
            static_cast<unsigned long long>(hits),
            static_cast<unsigned long long>(misses),
            100.0 * static_cast<double>(hits) /
                static_cast<double>(hits + misses),
            static_cast<unsigned long long>(counter("bufferpool.evict")),
            static_cast<unsigned long long>(counter("bufferpool.writeback")));
      }
      // Per-statement memory governance summary: the query context's peak
      // charge, its budget, and any graceful-degradation spilling.
      const size_t peak = ctx.mem->peak();
      HTG_METRIC_GAUGE("mem.query.peak")->Set(static_cast<int64_t>(peak));
      std::string budget_text =
          ctx.mem->unlimited()
              ? std::string("unlimited")
              : StringPrintf("%.1f MiB",
                             static_cast<double>(ctx.mem->budget()) /
                                 (1024.0 * 1024.0));
      result.message += StringPrintf(
          "memory: peak=%.1f KiB (budget %s), spill runs=%llu, "
          "spill bytes=%llu\n",
          static_cast<double>(peak) / 1024.0, budget_text.c_str(),
          static_cast<unsigned long long>(counter("exec.spill.runs")),
          static_cast<unsigned long long>(counter("exec.spill.bytes")));
      return result;
    }
    case Statement::Kind::kCreateTable:
      return ExecuteCreateTable(*stmt.create_table);
    case Statement::Kind::kDropTable: {
      HTG_RETURN_IF_ERROR(db_->DropTable(stmt.table_name));
      QueryResult result;
      result.message = "DROP TABLE " + stmt.table_name;
      return result;
    }
    case Statement::Kind::kTruncate: {
      HTG_ASSIGN_OR_RETURN(catalog::TableDef * table,
                           db_->GetTable(stmt.table_name));
      table->table->Truncate();
      // Version history restarts from zero rows; the server's exclusive
      // schema lock guarantees no snapshot scan is mid-flight here.
      if (table->mvcc != nullptr) table->mvcc->ResetForTruncate();
      QueryResult result;
      result.message = "TRUNCATE TABLE " + stmt.table_name;
      return result;
    }
    case Statement::Kind::kInsert:
      return ExecuteInsert(*stmt.insert, opts);
  }
  return Status::Internal("unhandled statement kind");
}

Result<QueryResult> SqlEngine::ExecuteSelect(const SelectStmt& stmt,
                                             const StatementOptions& opts) {
  Binder binder(db_);
  HTG_ASSIGN_OR_RETURN(exec::OperatorPtr plan, binder.BindSelect(stmt));
  exec::ExecContext ctx = MakeContext(opts);
  // MVCC read view: a transaction reads through its own snapshot; an
  // autocommit SELECT begins a short-lived read transaction, which pins
  // the GC horizon so the sweep cannot collapse versions out from under
  // the running scan.
  storage::Snapshot pinned_snapshot;
  storage::TxnId pinned_id = storage::kFrozenTxn;
  if (opts.txn != nullptr) {
    ctx.snapshot = &opts.txn->snapshot;
    ctx.txn_id = opts.txn->id;
  } else if (db_->mvcc_enabled()) {
    storage::TxnManager::BeginResult pin = db_->txns()->Begin();
    pinned_snapshot = std::move(pin.snapshot);
    pinned_id = pin.id;
    ctx.snapshot = &pinned_snapshot;
    ctx.txn_id = pinned_id;
  }
  const auto finish = [&](Result<QueryResult> r) -> Result<QueryResult> {
    if (pinned_id != storage::kFrozenTxn) db_->txns()->Commit(pinned_id);
    return r;
  };
  Result<std::unique_ptr<storage::RowIterator>> iter = plan->Open(&ctx);
  if (!iter.ok()) return finish(iter.status());
  QueryResult result;
  result.schema = plan->output_schema();
  const Status drained = exec::DrainIterator(iter->get(), &result.rows);
  if (!drained.ok()) return finish(drained);
  iter->reset();  // operators release their charges before we read the peak
  HTG_METRIC_GAUGE("mem.query.peak")
      ->Set(static_cast<int64_t>(ctx.mem->peak()));
  result.rows_affected = result.rows.size();
  return finish(std::move(result));
}

Result<QueryResult> SqlEngine::ExecuteCreateTable(const CreateTableStmt& stmt) {
  catalog::TableDef def;
  def.name = stmt.name;
  std::vector<std::string> pk = stmt.primary_key;
  for (const ColumnDefAst& ast : stmt.columns) {
    Column col;
    col.name = ast.name;
    HTG_ASSIGN_OR_RETURN(col.type, DataTypeFromName(ast.type_name));
    // Only CHAR/NCHAR are fixed-length (blank padded).
    if (ast.length > 0 && (EqualsIgnoreCase(ast.type_name, "CHAR") ||
                           EqualsIgnoreCase(ast.type_name, "NCHAR"))) {
      col.fixed_length = ast.length;
    }
    // N-types store UTF-16 (2 bytes/char in SQL Server 2008).
    if (EqualsIgnoreCase(ast.type_name, "NCHAR") ||
        EqualsIgnoreCase(ast.type_name, "NVARCHAR") ||
        EqualsIgnoreCase(ast.type_name, "NTEXT")) {
      col.utf16 = true;
    }
    col.nullable = !ast.not_null && !ast.primary_key;
    col.filestream = ast.filestream;
    col.rowguid = ast.rowguid;
    if (col.filestream && col.type != DataType::kBlob) {
      return Status::InvalidArgument(
          "FILESTREAM requires VARBINARY(MAX): " + col.name);
    }
    if (ast.primary_key) pk.push_back(ast.name);
    def.schema.AddColumn(std::move(col));
  }
  // Clustering: explicit CLUSTER BY wins, else the primary key (SQL
  // Server's PRIMARY KEY CLUSTERED default).
  const std::vector<std::string>& cluster =
      stmt.cluster_by.empty() ? pk : stmt.cluster_by;
  for (const std::string& name : cluster) {
    HTG_ASSIGN_OR_RETURN(int idx, def.schema.ResolveColumn(name));
    def.clustered_key.push_back(idx);
  }
  if (!stmt.compression.empty()) {
    if (EqualsIgnoreCase(stmt.compression, "NONE")) {
      def.compression = storage::Compression::kNone;
    } else if (EqualsIgnoreCase(stmt.compression, "ROW")) {
      def.compression = storage::Compression::kRow;
    } else if (EqualsIgnoreCase(stmt.compression, "PAGE")) {
      def.compression = storage::Compression::kPage;
    } else {
      return Status::InvalidArgument("bad DATA_COMPRESSION: " +
                                     stmt.compression);
    }
  }
  HTG_RETURN_IF_ERROR(db_->CreateTable(std::move(def)));
  QueryResult result;
  result.message = "CREATE TABLE " + stmt.name;
  return result;
}

namespace {

// Accumulates (table, rows inserted) into a transaction's written set.
void RecordWrite(TxnContext* txn, catalog::TableDef* table, uint64_t rows) {
  for (TxnContext::WrittenTable& w : txn->written) {
    if (w.table == table) {
      w.rows_inserted += rows;
      return;
    }
  }
  txn->written.push_back(TxnContext::WrittenTable{table, rows});
}

}  // namespace

Result<std::unique_ptr<TxnContext>> SqlEngine::BeginTxn() {
  if (!db_->mvcc_enabled()) {
    return Status::InvalidArgument(
        "transactions require MVCC (HTG_MVCC=0 disables them)");
  }
  auto txn = std::make_unique<TxnContext>();
  storage::TxnManager::BeginResult begun = db_->txns()->Begin();
  txn->id = begun.id;
  txn->snapshot = std::move(begun.snapshot);
  txn->is_explicit = true;
  return txn;
}

Status SqlEngine::CommitTxn(TxnContext* txn) {
  // Watermarks first; the txn id flips visible for new snapshots only at
  // TxnManager::Commit, so the whole transaction appears atomically.
  for (const TxnContext::WrittenTable& w : txn->written) {
    w.table->mvcc->CommitWrite(txn->id, w.table->table->num_rows());
  }
  txn->compensations.Commit();
  db_->txns()->Commit(txn->id);
  HTG_IGNORE_STATUS(db_->filestream()->LogTxnOutcome(txn->id, true));
  db_->MaybeSweepVersions();
  return Status::OK();
}

Status SqlEngine::AbortTxn(TxnContext* txn) {
  Status status;
  for (const TxnContext::WrittenTable& w : txn->written) {
    bool undone = true;
    if (auto* heap =
            dynamic_cast<storage::HeapTable*>(w.table->table.get())) {
      // Truncate while the pending marker still hides the tail, so no
      // reader window exists where the doomed rows look committed.
      const uint64_t target = w.table->mvcc->AbortTarget(txn->id);
      const Status undo = heap->TruncateToRows(target);
      if (!undo.ok()) {
        undone = false;
        if (status.ok()) status = undo;
      }
    } else if (auto* clustered = dynamic_cast<storage::ClusteredTable*>(
                   w.table->table.get())) {
      clustered->MarkAborted(w.rows_inserted);
    }
    // Undo failure leaves the pending marker set: the table is
    // quarantined (its surviving uncommitted tail stays hidden from every
    // snapshot) rather than re-exposed as committed rows.
    if (undone) w.table->mvcc->AbortWrite(txn->id);
  }
  txn->compensations.Rollback();
  db_->txns()->Abort(txn->id);
  HTG_IGNORE_STATUS(db_->filestream()->LogTxnOutcome(txn->id, false));
  db_->MaybeSweepVersions();
  return status;
}

Result<QueryResult> SqlEngine::ExecuteInsert(const InsertStmt& stmt,
                                             const StatementOptions& opts) {
  HTG_ASSIGN_OR_RETURN(catalog::TableDef * table, db_->GetTable(stmt.table));
  const Schema& schema = table->schema;

  // Map the supplied column order to table positions.
  std::vector<int> positions;
  if (stmt.columns.empty()) {
    for (int i = 0; i < schema.num_columns(); ++i) positions.push_back(i);
  } else {
    for (const std::string& name : stmt.columns) {
      HTG_ASSIGN_OR_RETURN(int idx, schema.ResolveColumn(name));
      positions.push_back(idx);
    }
  }

  // Transaction setup. Three modes:
  //  * explicit   — opts.txn: first-writer-wins check, writes recorded for
  //                 the session's later COMMIT/ABORT.
  //  * implicit   — MVCC on, no opts.txn: a per-statement transaction so
  //                 concurrent snapshot readers never see a partial
  //                 statement; committed (or aborted) before returning.
  //  * untracked  — MVCC off, or a hand-built TableDef without MVCC
  //                 state: the legacy truncate-to-prior-rows undo.
  TxnContext* txn = opts.txn;
  std::unique_ptr<TxnContext> implicit;
  bool tracked = false;
  auto* heap = dynamic_cast<storage::HeapTable*>(table->table.get());
  if (table->mvcc != nullptr && db_->mvcc_enabled()) {
    if (txn == nullptr) {
      implicit = std::make_unique<TxnContext>();
      storage::TxnManager::BeginResult begun = db_->txns()->Begin();
      implicit->id = begun.id;
      implicit->snapshot = std::move(begun.snapshot);
      txn = implicit.get();
    } else {
      // First-writer-wins: another transaction committed this table after
      // our snapshot was taken; appending behind it would interleave with
      // writes this transaction cannot see. Typed kAborted so clients can
      // retry the whole transaction.
      const storage::TxnId last = table->mvcc->LastCommittedWriter();
      if (last != storage::kFrozenTxn && last != txn->id &&
          !txn->snapshot.Sees(last)) {
        return Status::Aborted(
            "write-write conflict: table " + table->name +
            " was modified by a transaction concurrent with this one");
      }
    }
    const Status begun = table->mvcc->BeginWrite(txn->id,
                                                 table->table->num_rows());
    if (begun.ok()) {
      tracked = true;
      if (txn->is_explicit) {
        // Record the table the moment it has a pending marker, not only on
        // statement success: if this statement fails mid-way, the session's
        // ABORT must still find the table to truncate its tail and clear
        // the marker — an unrecorded pending writer would hide the table's
        // tail from every snapshot forever.
        RecordWrite(txn, table, 0);
      }
    } else if (txn->is_explicit) {
      return begun;  // impossible under the server's write locks
    } else {
      // Library-mode race: another untracked writer is mid-statement on
      // this table. Release the unused txn and fall back to the legacy
      // (unversioned) insert path.
      db_->txns()->Commit(implicit->id);
      implicit.reset();
      txn = nullptr;
    }
  }
  const storage::TxnId stamp =
      tracked ? txn->id : storage::kFrozenTxn;

  // Blob compensations: statement-local for autocommit, transaction-owned
  // for explicit transactions (they must survive until COMMIT/ABORT).
  storage::Transaction local_undo;
  storage::Transaction* blob_undo =
      (txn != nullptr && txn->is_explicit) ? &txn->compensations
                                           : &local_undo;
  if (!tracked && heap != nullptr) {
    const uint64_t prior_rows = heap->num_rows();
    local_undo.OnRollback([heap, prior_rows] {
      // Rollback runs on the void undo path; an undo that loses rows is a
      // broken invariant, not a recoverable error.
      const Status undo = heap->TruncateToRows(prior_rows);
      assert(undo.ok());
      (void)undo;
    });
  }

  uint64_t inserted = 0;
  auto insert_source_row = [&](Row source) -> Status {
    if (source.size() != positions.size()) {
      return Status::InvalidArgument(StringPrintf(
          "INSERT supplies %zu values for %zu columns", source.size(),
          positions.size()));
    }
    Row row(schema.num_columns(), Value::Null());
    for (size_t i = 0; i < positions.size(); ++i) {
      row[positions[i]] = std::move(source[i]);
    }
    HTG_RETURN_IF_ERROR(db_->InsertRow(table, std::move(row), blob_undo,
                                       stamp));
    ++inserted;
    return Status::OK();
  };

  // Statement failure. Explicit transactions leave rollback to the
  // session's ABORT (the appended tail is already invisible to every
  // snapshot); implicit ones abort right here; untracked ones run the
  // legacy compensation.
  auto fail = [&](Status s) -> Status {
    if (tracked && txn->is_explicit) {
      // The rows inserted before the failure are physically present (heap
      // tail / stamped clustered entries); fold them into the written set
      // so ABORT's truncate target and clustered discount match reality.
      RecordWrite(txn, table, inserted);
    } else if (tracked) {
      bool undone = true;
      if (heap != nullptr) {
        const uint64_t target = table->mvcc->AbortTarget(txn->id);
        const Status undo = heap->TruncateToRows(target);
        undone = undo.ok();
      } else if (auto* clustered = dynamic_cast<storage::ClusteredTable*>(
                     table->table.get())) {
        clustered->MarkAborted(inserted);
      }
      if (undone) {
        table->mvcc->AbortWrite(txn->id);
      }
      // Undo failure (I/O error truncating the tail): keep the pending
      // marker set. It quarantines the table — the surviving uncommitted
      // tail stays invisible to every snapshot — instead of clearing the
      // marker and letting VisibleRows treat the tail as committed
      // library-mode rows.
      local_undo.Rollback();
      db_->txns()->Abort(txn->id);
      HTG_IGNORE_STATUS(db_->filestream()->LogTxnOutcome(txn->id, false));
      db_->MaybeSweepVersions();
    } else {
      local_undo.Rollback();
    }
    return s;
  };

  if (!stmt.values_rows.empty()) {
    Binder binder(db_);
    udf::EvalContext eval = db_->MakeEvalContext();
    for (const auto& exprs : stmt.values_rows) {
      Row source;
      for (const AstExprPtr& ast : exprs) {
        // VALUES expressions are scalar (no column references).
        Result<exec::ExprPtr> bound = binder.BindValueExpr(*ast);
        if (!bound.ok()) return fail(bound.status());
        Result<Value> v = (*bound)->Eval(&eval, Row{});
        if (!v.ok()) return fail(v.status());
        source.push_back(std::move(*v));
      }
      const Status s = insert_source_row(std::move(source));
      if (!s.ok()) return fail(s);
    }
  } else if (stmt.select != nullptr) {
    Binder binder(db_);
    Result<exec::OperatorPtr> plan = binder.BindSelect(*stmt.select);
    if (!plan.ok()) return fail(plan.status());
    exec::ExecContext ctx = MakeContext(opts);
    if (txn != nullptr) {
      // INSERT..SELECT reads through the writing transaction's snapshot
      // (and sees its own earlier writes via self-visibility).
      ctx.snapshot = &txn->snapshot;
      ctx.txn_id = txn->id;
    }
    Result<std::unique_ptr<storage::RowIterator>> iter = (*plan)->Open(&ctx);
    if (!iter.ok()) return fail(iter.status());
    Row row;
    while ((*iter)->Next(&row)) {
      const Status s = insert_source_row(std::move(row));
      if (!s.ok()) return fail(s);
      row.clear();
    }
    const Status s = (*iter)->status();
    if (!s.ok()) return fail(s);
  }

  if (tracked) {
    if (txn->is_explicit) {
      RecordWrite(txn, table, inserted);
    } else {
      table->mvcc->CommitWrite(txn->id, table->table->num_rows());
      local_undo.Commit();
      db_->txns()->Commit(txn->id);
      HTG_IGNORE_STATUS(db_->filestream()->LogTxnOutcome(txn->id, true));
      db_->MaybeSweepVersions();
    }
  } else {
    local_undo.Commit();
  }
  QueryResult result;
  result.rows_affected = inserted;
  result.message = StringPrintf("(%llu rows affected)",
                                static_cast<unsigned long long>(inserted));
  return result;
}

}  // namespace htg::sql
