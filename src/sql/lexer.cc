#include "sql/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace htg::sql {

bool Token::IsKeyword(std::string_view kw) const {
  return type == TokenType::kIdentifier && EqualsIgnoreCase(text, kw);
}

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && sql[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(sql[i] == '*' && sql[i + 1] == '/')) ++i;
      i = i + 2 <= n ? i + 2 : n;
      continue;
    }

    Token tok;
    tok.offset = i;

    // Identifiers (plain, [bracketed], or "quoted").
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '@' ||
        c == '#') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_' || sql[j] == '@' || sql[j] == '#' ||
                       sql[j] == '$')) {
        ++j;
      }
      tok.type = TokenType::kIdentifier;
      tok.text = std::string(sql.substr(i, j - i));
      tokens.push_back(std::move(tok));
      i = j;
      continue;
    }
    if (c == '[') {
      const size_t close = sql.find(']', i + 1);
      if (close == std::string_view::npos) {
        return Status::ParseError("unterminated [identifier]");
      }
      tok.type = TokenType::kIdentifier;
      tok.text = std::string(sql.substr(i + 1, close - i - 1));
      tokens.push_back(std::move(tok));
      i = close + 1;
      continue;
    }

    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '.' || sql[j] == 'e' || sql[j] == 'E' ||
                       ((sql[j] == '+' || sql[j] == '-') && j > i &&
                        (sql[j - 1] == 'e' || sql[j - 1] == 'E')))) {
        if (sql[j] == '.' || sql[j] == 'e' || sql[j] == 'E') is_float = true;
        ++j;
      }
      const std::string text(sql.substr(i, j - i));
      if (is_float) {
        HTG_ASSIGN_OR_RETURN(double v, ParseDouble(text));
        tok.type = TokenType::kFloat;
        tok.float_value = v;
      } else {
        HTG_ASSIGN_OR_RETURN(int64_t v, ParseInt64(text));
        tok.type = TokenType::kInteger;
        tok.int_value = v;
      }
      tok.text = text;
      tokens.push_back(std::move(tok));
      i = j;
      continue;
    }

    // Strings with '' escaping. N'...' Unicode prefix handled above as
    // identifier would swallow N — special-case: previous token "N"
    // immediately before a string is dropped.
    if (c == '\'') {
      std::string value;
      size_t j = i + 1;
      for (;;) {
        if (j >= n) return Status::ParseError("unterminated string literal");
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {
            value.push_back('\'');
            j += 2;
            continue;
          }
          break;
        }
        value.push_back(sql[j]);
        ++j;
      }
      if (!tokens.empty() && tokens.back().type == TokenType::kIdentifier &&
          EqualsIgnoreCase(tokens.back().text, "N") &&
          tokens.back().offset + 1 == i) {
        tokens.pop_back();
      }
      tok.type = TokenType::kString;
      tok.text = std::move(value);
      tokens.push_back(std::move(tok));
      i = j + 1;
      continue;
    }

    // Operators.
    static const char* kTwoChar[] = {"<>", "!=", "<=", ">=", "||"};
    bool matched = false;
    for (const char* op : kTwoChar) {
      if (i + 1 < n && sql[i] == op[0] && sql[i + 1] == op[1]) {
        tok.type = TokenType::kOperator;
        tok.text = op;
        tokens.push_back(std::move(tok));
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static const std::string kSingle = "(),.;=<>+-*/%";
    if (kSingle.find(c) != std::string::npos) {
      tok.type = TokenType::kOperator;
      tok.text = std::string(1, c);
      tokens.push_back(std::move(tok));
      ++i;
      continue;
    }
    return Status::ParseError(
        StringPrintf("unexpected character '%c' at offset %zu", c, i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace htg::sql
