#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace htg::sql {

enum class TokenType {
  kIdentifier,  // foo, [Read] (brackets stripped)
  kInteger,
  kFloat,
  kString,      // 'text' (quotes stripped, '' unescaped)
  kOperator,    // punctuation and multi-char operators
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t offset = 0;  // position in the source, for error messages

  bool IsKeyword(std::string_view kw) const;
  bool IsOp(std::string_view op) const {
    return type == TokenType::kOperator && text == op;
  }
};

// Tokenizes a SQL string. Comments (-- and /* */) are skipped.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace htg::sql

