#pragma once

#include <memory>
#include <string>
#include <vector>

#include "catalog/database.h"
#include "common/result.h"
#include "exec/operator.h"
#include "sql/ast.h"

namespace htg::sql {

// Binds a parsed SELECT against the catalog and produces a physical
// operator tree. Planning is rule-based, modeled on the behaviours the
// paper observes in SQL Server:
//
//  * predicates apply below aggregation;
//  * equi-joins over clustered tables whose clustered keys match the join
//    keys become merge joins (Fig. 10), other equi-joins hash joins,
//    anything else nested loops;
//  * GROUP BY plans over a large heap go parallel: partitioned scans feed
//    per-worker partial aggregates that merge in a gather step (Fig. 9),
//    provided every aggregate supports Merge.
class Binder {
 public:
  explicit Binder(Database* db) : db_(db) {}

  Result<exec::OperatorPtr> BindSelect(const SelectStmt& stmt);

  // Binds a standalone scalar expression (INSERT ... VALUES): literals and
  // functions only, no column references.
  Result<exec::ExprPtr> BindValueExpr(const AstExpr& ast);

 private:
  struct Scope;
  struct AggScope;
  struct BindContext;
  struct FromResult;

  Result<FromResult> BindFrom(const SelectStmt& stmt);
  Result<FromResult> BindTableRef(const TableRef& ref);
  Result<exec::ExprPtr> BindExpr(const AstExpr& ast, const BindContext& ctx);
  Result<std::vector<exec::ExprPtr>> BindExprs(
      const std::vector<AstExprPtr>& asts, const BindContext& ctx);

  Database* db_;
};

}  // namespace htg::sql

