#pragma once

#include <memory>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/lexer.h"

namespace htg::sql {

// Parses one or more ';'-separated statements.
Result<std::vector<Statement>> ParseSql(std::string_view sql);

// Parses exactly one statement.
Result<Statement> ParseStatement(std::string_view sql);

}  // namespace htg::sql

