#ifndef HTG_SQL_PARSER_H_
#define HTG_SQL_PARSER_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/lexer.h"

namespace htg::sql {

// Parses one or more ';'-separated statements.
Result<std::vector<Statement>> ParseSql(std::string_view sql);

// Parses exactly one statement.
Result<Statement> ParseStatement(std::string_view sql);

}  // namespace htg::sql

#endif  // HTG_SQL_PARSER_H_
