#include "sql/binder.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"
#include "exec/aggregate_ops.h"
#include "exec/apply_ops.h"
#include "exec/basic_ops.h"
#include "exec/join_ops.h"
#include "exec/parallel.h"
#include "exec/sort_ops.h"
#include "storage/heap_table.h"

namespace htg::sql {

using exec::ExprPtr;
using exec::OperatorPtr;

// One visible column during name resolution.
struct ScopeColumn {
  std::string table_alias;
  std::string name;
  DataType type = DataType::kString;
};

struct Binder::Scope {
  std::vector<ScopeColumn> cols;

  Result<int> Resolve(const std::vector<std::string>& parts) const {
    if (parts.empty()) return Status::BindError("empty identifier");
    const std::string& name = parts.back();
    const std::string* qual = parts.size() > 1 ? &parts[parts.size() - 2]
                                               : nullptr;
    int found = -1;
    for (int i = 0; i < static_cast<int>(cols.size()); ++i) {
      if (!EqualsIgnoreCase(cols[i].name, name)) continue;
      if (qual != nullptr && !EqualsIgnoreCase(cols[i].table_alias, *qual)) {
        continue;
      }
      if (found >= 0) {
        return Status::BindError("ambiguous column: " + name);
      }
      found = i;
    }
    if (found < 0) {
      return Status::BindError("unknown column: " +
                               (qual ? *qual + "." + name : name));
    }
    return found;
  }

  void Append(const std::string& alias, const Schema& schema) {
    for (const Column& c : schema.columns()) {
      cols.push_back({alias, c.name, c.type});
    }
  }
};

// Post-aggregation resolution: expression text → aggregate-output column.
struct Binder::AggScope {
  std::vector<std::string> group_texts;  // canonical text of GROUP BY exprs
  std::vector<std::string> agg_texts;    // canonical text of aggregate calls
  Schema schema;                         // group columns then agg columns
};

struct Binder::BindContext {
  const Scope* scope = nullptr;      // pre-agg input columns
  const AggScope* agg = nullptr;     // post-agg text matching
  // window-call text → appended column index.
  const std::map<std::string, int>* window = nullptr;
  Database* db = nullptr;
};

struct Binder::FromResult {
  OperatorPtr op;
  Scope scope;
  // Set when the FROM clause is one heap base table, optionally extended
  // by CROSS APPLY table functions (recorded in `apply_stages`): the
  // morsel-parallel plan candidates. A regular join clears it.
  catalog::TableDef* pipeline_heap = nullptr;
  std::vector<exec::ParallelStage> apply_stages;
};

namespace {

bool IsAggregateCall(const udf::FunctionRegistry& registry,
                     const AstExpr& e) {
  return e.kind == AstExpr::Kind::kCall && !e.has_over &&
         registry.FindAggregate(e.call_name) != nullptr;
}

// Walks an AST collecting aggregate calls (and, independently, window
// calls) in order of first appearance.
void CollectCalls(const udf::FunctionRegistry& registry, const AstExpr& e,
                  std::vector<const AstExpr*>* aggs,
                  std::vector<const AstExpr*>* windows) {
  if (e.kind == AstExpr::Kind::kCall) {
    if (e.has_over) {
      if (windows != nullptr) {
        bool seen = false;
        for (const AstExpr* w : *windows) {
          if (w->ToText() == e.ToText()) seen = true;
        }
        if (!seen) windows->push_back(&e);
      }
      // Aggregates may appear inside OVER (ORDER BY ...).
      for (const AstExprPtr& k : e.over_order) {
        CollectCalls(registry, *k, aggs, windows);
      }
      for (const AstExprPtr& a : e.args) {
        CollectCalls(registry, *a, aggs, windows);
      }
      return;
    }
    if (registry.FindAggregate(e.call_name) != nullptr) {
      bool seen = false;
      for (const AstExpr* a : *aggs) {
        if (a->ToText() == e.ToText()) seen = true;
      }
      if (!seen) aggs->push_back(&e);
      return;  // no nested aggregates
    }
  }
  for (const AstExprPtr& a : e.args) CollectCalls(registry, *a, aggs, windows);
  if (e.left) CollectCalls(registry, *e.left, aggs, windows);
  if (e.right) CollectCalls(registry, *e.right, aggs, windows);
  if (e.operand) CollectCalls(registry, *e.operand, aggs, windows);
  for (const auto& [c, r] : e.case_branches) {
    CollectCalls(registry, *c, aggs, windows);
    CollectCalls(registry, *r, aggs, windows);
  }
  if (e.case_else) CollectCalls(registry, *e.case_else, aggs, windows);
  for (const AstExprPtr& i : e.in_list) CollectCalls(registry, *i, aggs, windows);
}

// Splits an AST condition into AND-ed conjuncts.
void SplitConjuncts(const AstExpr* e, std::vector<const AstExpr*>* out) {
  if (e->kind == AstExpr::Kind::kBinary && e->bin_op == exec::BinaryOp::kAnd) {
    SplitConjuncts(e->left.get(), out);
    SplitConjuncts(e->right.get(), out);
    return;
  }
  out->push_back(e);
}

ExprPtr AndTogether(std::vector<ExprPtr> preds) {
  ExprPtr result;
  for (ExprPtr& p : preds) {
    if (result == nullptr) {
      result = std::move(p);
    } else {
      result = std::make_unique<exec::BinaryExpr>(
          exec::BinaryOp::kAnd, std::move(result), std::move(p));
    }
  }
  return result;
}

}  // namespace

Result<ExprPtr> Binder::BindValueExpr(const AstExpr& ast) {
  BindContext ctx;
  ctx.db = db_;
  return BindExpr(ast, ctx);
}

Result<std::vector<ExprPtr>> Binder::BindExprs(
    const std::vector<AstExprPtr>& asts, const BindContext& ctx) {
  std::vector<ExprPtr> out;
  out.reserve(asts.size());
  for (const AstExprPtr& a : asts) {
    HTG_ASSIGN_OR_RETURN(ExprPtr e, BindExpr(*a, ctx));
    out.push_back(std::move(e));
  }
  return out;
}

Result<ExprPtr> Binder::BindExpr(const AstExpr& ast, const BindContext& ctx) {
  // Post-aggregation text matching takes priority: a subtree that spells a
  // GROUP BY expression or a collected aggregate becomes a column of the
  // aggregate's output.
  if (ctx.agg != nullptr) {
    const std::string text = ast.ToText();
    for (size_t i = 0; i < ctx.agg->group_texts.size(); ++i) {
      if (ctx.agg->group_texts[i] == text) {
        return ExprPtr(std::make_unique<exec::ColumnRefExpr>(
            static_cast<int>(i), ctx.agg->schema.column(i).name,
            ctx.agg->schema.column(i).type));
      }
    }
    for (size_t j = 0; j < ctx.agg->agg_texts.size(); ++j) {
      if (ctx.agg->agg_texts[j] == text) {
        const int idx = static_cast<int>(ctx.agg->group_texts.size() + j);
        return ExprPtr(std::make_unique<exec::ColumnRefExpr>(
            idx, ctx.agg->schema.column(idx).name,
            ctx.agg->schema.column(idx).type));
      }
    }
  }
  if (ctx.window != nullptr && ast.kind == AstExpr::Kind::kCall &&
      ast.has_over) {
    auto it = ctx.window->find(ast.ToText());
    if (it != ctx.window->end()) {
      return ExprPtr(std::make_unique<exec::ColumnRefExpr>(
          it->second, ast.ToText(), DataType::kInt64));
    }
    return Status::BindError("window function not planned: " + ast.ToText());
  }

  switch (ast.kind) {
    case AstExpr::Kind::kLiteral:
      return ExprPtr(std::make_unique<exec::LiteralExpr>(ast.literal));
    case AstExpr::Kind::kIdent: {
      if (ctx.scope == nullptr) {
        return Status::BindError(
            "column '" + ast.ident.back() +
            "' is invalid here (not in GROUP BY or an aggregate)");
      }
      HTG_ASSIGN_OR_RETURN(int idx, ctx.scope->Resolve(ast.ident));
      const ScopeColumn& col = ctx.scope->cols[idx];
      return ExprPtr(
          std::make_unique<exec::ColumnRefExpr>(idx, col.name, col.type));
    }
    case AstExpr::Kind::kStar:
      return Status::BindError("'*' is not valid in this context");
    case AstExpr::Kind::kUnary: {
      HTG_ASSIGN_OR_RETURN(ExprPtr operand, BindExpr(*ast.operand, ctx));
      return ExprPtr(std::make_unique<exec::UnaryExpr>(
          ast.unary_not ? exec::UnaryExpr::Op::kNot
                        : exec::UnaryExpr::Op::kNegate,
          std::move(operand)));
    }
    case AstExpr::Kind::kBinary: {
      HTG_ASSIGN_OR_RETURN(ExprPtr left, BindExpr(*ast.left, ctx));
      HTG_ASSIGN_OR_RETURN(ExprPtr right, BindExpr(*ast.right, ctx));
      return ExprPtr(std::make_unique<exec::BinaryExpr>(
          ast.bin_op, std::move(left), std::move(right)));
    }
    case AstExpr::Kind::kCall: {
      if (IsAggregateCall(*db_->functions(), ast)) {
        return Status::BindError("aggregate '" + ast.call_name +
                                 "' is not valid in this context");
      }
      const udf::ScalarFunction* fn =
          db_->functions()->FindScalar(ast.call_name);
      if (fn == nullptr) {
        return Status::BindError("unknown function: " + ast.call_name);
      }
      const int n = static_cast<int>(ast.args.size());
      if (n < fn->min_args || n > fn->max_args) {
        return Status::BindError(StringPrintf(
            "%s takes %d..%d arguments, got %d", fn->name.c_str(),
            fn->min_args, fn->max_args, n));
      }
      HTG_ASSIGN_OR_RETURN(std::vector<ExprPtr> args,
                           BindExprs(ast.args, ctx));
      return ExprPtr(
          std::make_unique<exec::FnCallExpr>(fn, std::move(args)));
    }
    case AstExpr::Kind::kCast: {
      HTG_ASSIGN_OR_RETURN(ExprPtr operand, BindExpr(*ast.operand, ctx));
      return ExprPtr(
          std::make_unique<exec::CastExpr>(std::move(operand), ast.cast_type));
    }
    case AstExpr::Kind::kIsNull: {
      HTG_ASSIGN_OR_RETURN(ExprPtr operand, BindExpr(*ast.operand, ctx));
      return ExprPtr(
          std::make_unique<exec::IsNullExpr>(std::move(operand), ast.is_not));
    }
    case AstExpr::Kind::kCase: {
      std::vector<std::pair<ExprPtr, ExprPtr>> branches;
      for (const auto& [c, r] : ast.case_branches) {
        HTG_ASSIGN_OR_RETURN(ExprPtr cond, BindExpr(*c, ctx));
        HTG_ASSIGN_OR_RETURN(ExprPtr result, BindExpr(*r, ctx));
        branches.emplace_back(std::move(cond), std::move(result));
      }
      ExprPtr else_expr;
      if (ast.case_else) {
        HTG_ASSIGN_OR_RETURN(else_expr, BindExpr(*ast.case_else, ctx));
      }
      return ExprPtr(std::make_unique<exec::CaseExpr>(std::move(branches),
                                                      std::move(else_expr)));
    }
    case AstExpr::Kind::kLike: {
      HTG_ASSIGN_OR_RETURN(ExprPtr operand, BindExpr(*ast.operand, ctx));
      return ExprPtr(std::make_unique<exec::LikeExpr>(
          std::move(operand), ast.like_pattern, ast.is_not));
    }
    case AstExpr::Kind::kBetween: {
      // a BETWEEN lo AND hi  ⇒  a >= lo AND a <= hi.
      HTG_ASSIGN_OR_RETURN(ExprPtr low_subject, BindExpr(*ast.operand, ctx));
      HTG_ASSIGN_OR_RETURN(ExprPtr high_subject, BindExpr(*ast.operand, ctx));
      HTG_ASSIGN_OR_RETURN(ExprPtr low, BindExpr(*ast.between_low, ctx));
      HTG_ASSIGN_OR_RETURN(ExprPtr high, BindExpr(*ast.between_high, ctx));
      ExprPtr range = std::make_unique<exec::BinaryExpr>(
          exec::BinaryOp::kAnd,
          std::make_unique<exec::BinaryExpr>(exec::BinaryOp::kGe,
                                             std::move(low_subject),
                                             std::move(low)),
          std::make_unique<exec::BinaryExpr>(exec::BinaryOp::kLe,
                                             std::move(high_subject),
                                             std::move(high)));
      if (ast.is_not) {
        range = std::make_unique<exec::UnaryExpr>(exec::UnaryExpr::Op::kNot,
                                                  std::move(range));
      }
      return range;
    }
    case AstExpr::Kind::kIn: {
      // x IN (a, b) desugars to x = a OR x = b.
      std::vector<ExprPtr> eqs;
      for (const AstExprPtr& item : ast.in_list) {
        HTG_ASSIGN_OR_RETURN(ExprPtr subject, BindExpr(*ast.operand, ctx));
        HTG_ASSIGN_OR_RETURN(ExprPtr value, BindExpr(*item, ctx));
        eqs.push_back(std::make_unique<exec::BinaryExpr>(
            exec::BinaryOp::kEq, std::move(subject), std::move(value)));
      }
      ExprPtr ors;
      for (ExprPtr& e : eqs) {
        ors = ors == nullptr
                  ? std::move(e)
                  : std::make_unique<exec::BinaryExpr>(
                        exec::BinaryOp::kOr, std::move(ors), std::move(e));
      }
      if (ast.is_not) {
        ors = std::make_unique<exec::UnaryExpr>(exec::UnaryExpr::Op::kNot,
                                                std::move(ors));
      }
      return ors;
    }
  }
  return Status::Internal("unhandled AST expression kind");
}

Result<Binder::FromResult> Binder::BindTableRef(const TableRef& ref) {
  FromResult out;
  switch (ref.kind) {
    case TableRef::Kind::kTable: {
      HTG_ASSIGN_OR_RETURN(catalog::TableDef * table, db_->GetTable(ref.name));
      out.op = std::make_unique<exec::TableScanOp>(table);
      const std::string alias = ref.alias.empty() ? ref.name : ref.alias;
      out.scope.Append(alias, table->schema);
      if (table->clustered_key.empty()) out.pipeline_heap = table;
      return out;
    }
    case TableRef::Kind::kTvf: {
      const udf::TableFunction* fn =
          db_->functions()->FindTableFunction(ref.name);
      if (fn == nullptr) {
        return Status::BindError("unknown table function: " + ref.name);
      }
      BindContext ctx;
      ctx.db = db_;
      HTG_ASSIGN_OR_RETURN(std::vector<ExprPtr> args, BindExprs(ref.args, ctx));
      // Constant-fold literal arguments for schema binding.
      std::vector<Value> const_args;
      udf::EvalContext eval = db_->MakeEvalContext();
      for (const ExprPtr& a : args) {
        Result<Value> v = a->Eval(&eval, Row{});
        const_args.push_back(v.ok() ? std::move(*v) : Value::Null());
      }
      HTG_ASSIGN_OR_RETURN(Schema schema, fn->BindSchema(const_args));
      const std::string alias = ref.alias.empty() ? ref.name : ref.alias;
      out.scope.Append(alias, schema);
      out.op = std::make_unique<exec::TvfScanOp>(fn, std::move(args),
                                                 std::move(schema));
      return out;
    }
    case TableRef::Kind::kSubquery: {
      HTG_ASSIGN_OR_RETURN(OperatorPtr sub, BindSelect(*ref.subquery));
      out.scope.Append(ref.alias, sub->output_schema());
      out.op = std::move(sub);
      return out;
    }
    case TableRef::Kind::kOpenRowset: {
      auto op = std::make_unique<exec::OpenRowsetOp>(ref.bulk_path);
      out.scope.Append(ref.alias, op->output_schema());
      out.op = std::move(op);
      return out;
    }
    case TableRef::Kind::kNone:
      break;
  }
  return Status::Internal("bad table reference");
}

Result<Binder::FromResult> Binder::BindFrom(const SelectStmt& stmt) {
  if (stmt.from.kind == TableRef::Kind::kNone) {
    // SELECT without FROM: a single empty row.
    FromResult out;
    std::vector<std::vector<ExprPtr>> rows;
    rows.emplace_back();
    out.op = std::make_unique<exec::ValuesOp>(Schema(), std::move(rows));
    return out;
  }
  HTG_ASSIGN_OR_RETURN(FromResult left, BindTableRef(stmt.from));

  for (const JoinClause& jc : stmt.joins) {
    if (jc.cross_apply) {
      if (jc.ref.kind != TableRef::Kind::kTvf) {
        return Status::BindError("CROSS APPLY expects a table function");
      }
      const udf::TableFunction* fn =
          db_->functions()->FindTableFunction(jc.ref.name);
      if (fn == nullptr) {
        return Status::BindError("unknown table function: " + jc.ref.name);
      }
      BindContext ctx;
      ctx.scope = &left.scope;
      ctx.db = db_;
      HTG_ASSIGN_OR_RETURN(std::vector<ExprPtr> args,
                           BindExprs(jc.ref.args, ctx));
      std::vector<Value> const_args(args.size(), Value::Null());
      HTG_ASSIGN_OR_RETURN(Schema fn_schema, fn->BindSchema(const_args));
      const std::string alias =
          jc.ref.alias.empty() ? jc.ref.name : jc.ref.alias;
      left.scope.Append(alias, fn_schema);
      if (left.pipeline_heap != nullptr) {
        // The pipeline stays morsel-parallelizable: record the apply as a
        // replayable stage alongside the serial plan.
        std::vector<ExprPtr> arg_clones;
        arg_clones.reserve(args.size());
        for (const ExprPtr& a : args) arg_clones.push_back(a->Clone());
        left.apply_stages.push_back(exec::ParallelStage::Apply(
            fn, std::move(arg_clones), fn_schema));
      }
      left.op = std::make_unique<exec::CrossApplyOp>(
          std::move(left.op), fn, std::move(args), std::move(fn_schema));
      continue;
    }

    // Regular inner join: the two-sided input is no longer a single
    // heap-rooted pipeline.
    left.pipeline_heap = nullptr;
    left.apply_stages.clear();
    HTG_ASSIGN_OR_RETURN(FromResult right, BindTableRef(jc.ref));
    const int left_width = static_cast<int>(left.scope.cols.size());

    Scope concat = left.scope;
    for (const ScopeColumn& c : right.scope.cols) concat.cols.push_back(c);

    std::vector<const AstExpr*> conjuncts;
    if (jc.condition != nullptr) {
      SplitConjuncts(jc.condition.get(), &conjuncts);
    }
    std::vector<ExprPtr> left_keys;
    std::vector<ExprPtr> right_keys;
    std::vector<ExprPtr> residual;
    BindContext lctx;
    lctx.scope = &left.scope;
    lctx.db = db_;
    BindContext rctx;
    rctx.scope = &right.scope;
    rctx.db = db_;
    BindContext cctx;
    cctx.scope = &concat;
    cctx.db = db_;
    for (const AstExpr* c : conjuncts) {
      bool handled = false;
      if (c->kind == AstExpr::Kind::kBinary &&
          c->bin_op == exec::BinaryOp::kEq) {
        // Try (left-side expr, right-side expr) in both orders.
        Result<ExprPtr> ll = BindExpr(*c->left, lctx);
        Result<ExprPtr> rr = BindExpr(*c->right, rctx);
        if (ll.ok() && rr.ok()) {
          left_keys.push_back(std::move(*ll));
          right_keys.push_back(std::move(*rr));
          handled = true;
        } else {
          Result<ExprPtr> lr = BindExpr(*c->left, rctx);
          Result<ExprPtr> rl = BindExpr(*c->right, lctx);
          if (lr.ok() && rl.ok()) {
            left_keys.push_back(std::move(*rl));
            right_keys.push_back(std::move(*lr));
            handled = true;
          }
        }
      }
      if (!handled) {
        HTG_ASSIGN_OR_RETURN(ExprPtr pred, BindExpr(*c, cctx));
        residual.push_back(std::move(pred));
      }
    }

    if (jc.left_outer) {
      // LEFT OUTER JOIN: hash-based only, pure equi conditions (residual
      // predicates would need ON-clause semantics we do not implement).
      if (left_keys.empty() || !residual.empty()) {
        return Status::BindError(
            "LEFT JOIN supports only equi-join ON conditions");
      }
      left.op = std::make_unique<exec::HashJoinOp>(
          std::move(left.op), std::move(right.op), std::move(left_keys),
          std::move(right_keys), /*left_outer=*/true);
      left.scope = std::move(concat);
      (void)left_width;
      continue;
    }
    if (left_keys.empty()) {
      ExprPtr pred = AndTogether(std::move(residual));
      left.op = std::make_unique<exec::NestedLoopJoinOp>(
          std::move(left.op), std::move(right.op), std::move(pred));
    } else {
      // Merge join when both sides stream in join-key order off their
      // clustered indexes.
      bool merge_ok = false;
      auto* lscan = dynamic_cast<exec::TableScanOp*>(left.op.get());
      auto* rscan = dynamic_cast<exec::TableScanOp*>(right.op.get());
      if (lscan != nullptr && rscan != nullptr) {
        const std::vector<int>& lkey = lscan->table()->clustered_key;
        const std::vector<int>& rkey = rscan->table()->clustered_key;
        if (lkey.size() >= left_keys.size() &&
            rkey.size() >= right_keys.size() &&
            left_keys.size() == right_keys.size()) {
          merge_ok = true;
          for (size_t i = 0; i < left_keys.size() && merge_ok; ++i) {
            auto* lc = dynamic_cast<exec::ColumnRefExpr*>(left_keys[i].get());
            auto* rc = dynamic_cast<exec::ColumnRefExpr*>(right_keys[i].get());
            merge_ok = lc != nullptr && rc != nullptr &&
                       lc->index() == lkey[i] && rc->index() == rkey[i];
          }
        }
      }
      // Right-side key column indexes are relative to the right input; the
      // join operators evaluate right keys against right rows, so no
      // offsetting is needed. Residual predicates see the concatenated row.
      if (merge_ok) {
        left.op = std::make_unique<exec::MergeJoinOp>(
            std::move(left.op), std::move(right.op), std::move(left_keys),
            std::move(right_keys));
      } else {
        left.op = std::make_unique<exec::HashJoinOp>(
            std::move(left.op), std::move(right.op), std::move(left_keys),
            std::move(right_keys));
      }
      if (!residual.empty()) {
        // Residual column refs bound over `concat` are already correct for
        // the joined row layout.
        left.op = std::make_unique<exec::FilterOp>(
            std::move(left.op), AndTogether(std::move(residual)));
      }
    }
    left.scope = std::move(concat);
    (void)left_width;
  }
  return left;
}

namespace {

// DOP and morsel size for a morsel-parallel plan over `heap`. The heap's
// current page must already be sealed.
struct MorselPlan {
  int dop = 1;
  size_t morsel_pages = 1;
};

MorselPlan PlanMorsels(const storage::HeapTable* heap,
                       const DatabaseOptions& options) {
  const size_t npages = heap->num_pages_sealed();
  MorselPlan plan;
  plan.morsel_pages =
      exec::ChooseMorselPages(npages, options.max_dop, options.morsel_pages);
  const size_t nmorsels =
      (npages + plan.morsel_pages - 1) / plan.morsel_pages;
  plan.dop = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(options.max_dop), std::max<size_t>(1, nmorsels)));
  return plan;
}

}  // namespace

Result<OperatorPtr> Binder::BindSelect(const SelectStmt& stmt) {
  HTG_ASSIGN_OR_RETURN(FromResult from, BindFrom(stmt));
  Scope scope = std::move(from.scope);
  OperatorPtr plan = std::move(from.op);

  BindContext pre_ctx;
  pre_ctx.scope = &scope;
  pre_ctx.db = db_;

  // WHERE.
  ExprPtr where;
  if (stmt.where != nullptr) {
    HTG_ASSIGN_OR_RETURN(where, BindExpr(*stmt.where, pre_ctx));
  }

  // Collect aggregates and window calls from the output clauses.
  std::vector<const AstExpr*> agg_calls;
  std::vector<const AstExpr*> window_calls;
  for (const SelectItem& item : stmt.items) {
    if (item.expr) {
      CollectCalls(*db_->functions(), *item.expr, &agg_calls, &window_calls);
    }
  }
  if (stmt.having) {
    CollectCalls(*db_->functions(), *stmt.having, &agg_calls, &window_calls);
  }
  for (const OrderItem& o : stmt.order_by) {
    CollectCalls(*db_->functions(), *o.expr, &agg_calls, &window_calls);
  }

  const bool has_agg = !agg_calls.empty() || !stmt.group_by.empty();
  AggScope agg_scope;

  if (has_agg) {
    // Bind GROUP BY expressions and aggregate arguments over the input.
    std::vector<ExprPtr> group_exprs;
    std::vector<std::string> group_names;
    for (const AstExprPtr& g : stmt.group_by) {
      HTG_ASSIGN_OR_RETURN(ExprPtr e, BindExpr(*g, pre_ctx));
      group_exprs.push_back(std::move(e));
      agg_scope.group_texts.push_back(g->ToText());
      group_names.push_back(g->ToText());
    }
    std::vector<exec::AggSpec> specs;
    for (const AstExpr* call : agg_calls) {
      const udf::AggregateFunction* fn =
          db_->functions()->FindAggregate(call->call_name);
      exec::AggSpec spec;
      spec.fn = fn;
      spec.display = call->ToText();
      spec.distinct = call->distinct_arg;
      if (!call->star_arg) {
        const int n = static_cast<int>(call->args.size());
        if (n < fn->min_args() || n > fn->max_args()) {
          return Status::BindError("wrong argument count for aggregate " +
                                   call->call_name);
        }
        HTG_ASSIGN_OR_RETURN(spec.args, BindExprs(call->args, pre_ctx));
      }
      agg_scope.agg_texts.push_back(spec.display);
      specs.push_back(std::move(spec));
    }
    agg_scope.schema =
        exec::MakeAggregateSchema(group_exprs, group_names, specs);

    // Parallel plan: heap-rooted scan/filter/apply pipeline, big enough,
    // mergeable aggs.
    bool parallel = from.pipeline_heap != nullptr &&
                    db_->options().max_dop > 1 &&
                    from.pipeline_heap->table->num_rows() >=
                        db_->options().parallel_threshold;
    for (const exec::AggSpec& s : specs) {
      parallel = parallel && s.fn->SupportsMerge();
    }
    auto* heap = from.pipeline_heap == nullptr
                     ? nullptr
                     : dynamic_cast<storage::HeapTable*>(
                           from.pipeline_heap->table.get());
    parallel = parallel && heap != nullptr;

    if (parallel) {
      HTG_RETURN_IF_ERROR(heap->SealCurrentPage());
      const MorselPlan mp = PlanMorsels(heap, db_->options());
      // Stage order matches the serial plan: CROSS APPLY stages from the
      // FROM clause, then the WHERE filter over the widened rows.
      std::vector<exec::ParallelStage> stages =
          exec::CloneStages(from.apply_stages);
      if (where != nullptr) {
        stages.push_back(exec::ParallelStage::Filter(where->Clone()));
      }
      std::vector<exec::AggSpec> spec_copies;
      for (const exec::AggSpec& s : specs) spec_copies.push_back(s.Clone());
      plan = std::make_unique<exec::ParallelAggregateOp>(
          from.pipeline_heap, std::move(stages), std::move(group_exprs),
          group_names, std::move(spec_copies), mp.dop, mp.morsel_pages);
    } else {
      if (where != nullptr) {
        plan = std::make_unique<exec::FilterOp>(std::move(plan),
                                                std::move(where));
      }
      plan = std::make_unique<exec::HashAggregateOp>(
          std::move(plan), std::move(group_exprs), group_names,
          std::move(specs));
    }
    where = nullptr;
  } else {
    // Non-aggregate pipelines parallelize when a CROSS APPLY stage makes
    // the per-row work heavy enough to be worth the exchange; the gather
    // preserves heap order so the result matches the serial plan exactly.
    auto* heap = from.pipeline_heap == nullptr
                     ? nullptr
                     : dynamic_cast<storage::HeapTable*>(
                           from.pipeline_heap->table.get());
    const bool parallel = heap != nullptr && !from.apply_stages.empty() &&
                          db_->options().max_dop > 1 &&
                          from.pipeline_heap->table->num_rows() >=
                              db_->options().parallel_threshold;
    if (parallel) {
      HTG_RETURN_IF_ERROR(heap->SealCurrentPage());
      const MorselPlan mp = PlanMorsels(heap, db_->options());
      std::vector<exec::ParallelStage> stages =
          exec::CloneStages(from.apply_stages);
      if (where != nullptr) {
        stages.push_back(exec::ParallelStage::Filter(std::move(where)));
      }
      plan = std::make_unique<exec::ParallelMapOp>(
          from.pipeline_heap, std::move(stages), mp.dop, mp.morsel_pages,
          /*preserve_order=*/true);
    } else if (where != nullptr) {
      plan =
          std::make_unique<exec::FilterOp>(std::move(plan), std::move(where));
    }
    where = nullptr;
  }

  BindContext post_ctx;
  post_ctx.db = db_;
  if (has_agg) {
    post_ctx.agg = &agg_scope;
  } else {
    post_ctx.scope = &scope;
  }

  // HAVING.
  if (stmt.having != nullptr) {
    HTG_ASSIGN_OR_RETURN(ExprPtr having, BindExpr(*stmt.having, post_ctx));
    plan = std::make_unique<exec::FilterOp>(std::move(plan), std::move(having));
  }

  // Window functions (ROW_NUMBER only).
  std::map<std::string, int> window_map;
  for (const AstExpr* call : window_calls) {
    if (!EqualsIgnoreCase(call->call_name, "ROW_NUMBER")) {
      return Status::BindError("unsupported window function: " +
                               call->call_name);
    }
    std::vector<exec::SortKey> keys;
    for (size_t i = 0; i < call->over_order.size(); ++i) {
      HTG_ASSIGN_OR_RETURN(ExprPtr e, BindExpr(*call->over_order[i], post_ctx));
      keys.push_back({std::move(e), call->over_desc[i]});
    }
    const int col_index = plan->output_schema().num_columns();
    plan = std::make_unique<exec::RowNumberOp>(std::move(plan),
                                               std::move(keys), call->ToText());
    window_map.emplace(call->ToText(), col_index);
  }
  if (!window_map.empty()) post_ctx.window = &window_map;

  // Projection (select list).
  std::vector<ExprPtr> proj_exprs;
  std::vector<std::string> proj_names;
  std::vector<std::string> item_texts;
  for (const SelectItem& item : stmt.items) {
    if (item.star) {
      if (has_agg) {
        return Status::BindError("'*' cannot be used with GROUP BY");
      }
      for (size_t i = 0; i < scope.cols.size(); ++i) {
        proj_exprs.push_back(std::make_unique<exec::ColumnRefExpr>(
            static_cast<int>(i), scope.cols[i].name, scope.cols[i].type));
        proj_names.push_back(scope.cols[i].name);
        item_texts.push_back(ToUpper(scope.cols[i].name));
      }
      continue;
    }
    HTG_ASSIGN_OR_RETURN(ExprPtr e, BindExpr(*item.expr, post_ctx));
    proj_exprs.push_back(std::move(e));
    std::string name = item.alias;
    if (name.empty()) {
      name = item.expr->kind == AstExpr::Kind::kIdent ? item.expr->ident.back()
                                                      : item.expr->ToText();
    }
    proj_names.push_back(name);
    item_texts.push_back(item.expr->ToText());
  }

  // ORDER BY: resolve to projection outputs; unresolved expressions become
  // hidden projection columns dropped after the sort.
  struct PendingSort {
    int column = -1;
    bool desc = false;
  };
  std::vector<PendingSort> sort_cols;
  const size_t visible = proj_exprs.size();
  for (const OrderItem& o : stmt.order_by) {
    PendingSort ps;
    ps.desc = o.descending;
    if (o.expr->kind == AstExpr::Kind::kLiteral &&
        o.expr->literal.IsIntegerKind()) {
      const int64_t pos = o.expr->literal.AsInt64();
      if (pos < 1 || pos > static_cast<int64_t>(visible)) {
        return Status::BindError("ORDER BY position out of range");
      }
      ps.column = static_cast<int>(pos - 1);
    } else {
      const std::string text = o.expr->ToText();
      for (size_t i = 0; i < visible && ps.column < 0; ++i) {
        if (item_texts[i] == text ||
            EqualsIgnoreCase(proj_names[i], text) ||
            (o.expr->kind == AstExpr::Kind::kIdent &&
             EqualsIgnoreCase(proj_names[i], o.expr->ident.back()))) {
          ps.column = static_cast<int>(i);
        }
      }
      if (ps.column < 0) {
        // Hidden sort column.
        HTG_ASSIGN_OR_RETURN(ExprPtr e, BindExpr(*o.expr, post_ctx));
        ps.column = static_cast<int>(proj_exprs.size());
        proj_exprs.push_back(std::move(e));
        proj_names.push_back("__sort" + std::to_string(ps.column));
      }
    }
    sort_cols.push_back(ps);
  }

  const bool has_hidden_sort = proj_exprs.size() > visible;
  if (stmt.distinct && has_hidden_sort) {
    return Status::BindError(
        "ORDER BY items must appear in the select list if SELECT DISTINCT");
  }
  plan = std::make_unique<exec::ProjectOp>(std::move(plan),
                                           std::move(proj_exprs), proj_names);
  if (stmt.distinct) {
    plan = std::make_unique<exec::DistinctOp>(std::move(plan));
  }

  if (!sort_cols.empty()) {
    std::vector<exec::SortKey> keys;
    for (const PendingSort& ps : sort_cols) {
      const Column& col = plan->output_schema().column(ps.column);
      keys.push_back({std::make_unique<exec::ColumnRefExpr>(
                          ps.column, col.name, col.type),
                      ps.desc});
    }
    plan = std::make_unique<exec::SortOp>(std::move(plan), std::move(keys));
    if (plan->output_schema().num_columns() >
        static_cast<int>(visible)) {
      // Drop hidden sort columns.
      std::vector<ExprPtr> keep;
      std::vector<std::string> keep_names;
      for (size_t i = 0; i < visible; ++i) {
        const Column& col = plan->output_schema().column(static_cast<int>(i));
        keep.push_back(std::make_unique<exec::ColumnRefExpr>(
            static_cast<int>(i), col.name, col.type));
        keep_names.push_back(col.name);
      }
      plan = std::make_unique<exec::ProjectOp>(std::move(plan),
                                               std::move(keep), keep_names);
    }
  }

  if (stmt.top >= 0) {
    plan = std::make_unique<exec::TopOp>(std::move(plan), stmt.top);
  }
  return plan;
}

}  // namespace htg::sql
