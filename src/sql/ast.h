#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exec/expression.h"
#include "types/data_type.h"
#include "types/value.h"

namespace htg::sql {

// Parse-level expression. A single tagged struct keeps the parser and the
// binder compact; only the fields relevant to `kind` are populated.
struct AstExpr;
using AstExprPtr = std::unique_ptr<AstExpr>;

struct AstExpr {
  enum class Kind {
    kLiteral,
    kIdent,   // possibly qualified: a.b
    kStar,    // bare * (select item or COUNT(*))
    kUnary,   // -x, NOT x
    kBinary,
    kCall,    // fn(args) with optional OVER (ORDER BY ...)
    kCast,
    kIsNull,   // x IS [NOT] NULL
    kCase,
    kIn,       // x IN (v1, v2, ...)
    kLike,     // x [NOT] LIKE 'pattern'
    kBetween,  // x [NOT] BETWEEN low AND high
  };

  Kind kind = Kind::kLiteral;

  Value literal;
  std::vector<std::string> ident;

  bool unary_not = false;  // kUnary: true=NOT, false=negate
  exec::BinaryOp bin_op = exec::BinaryOp::kAdd;
  AstExprPtr left;
  AstExprPtr right;
  AstExprPtr operand;  // kUnary/kCast/kIsNull/kIn subject

  std::string call_name;
  std::vector<AstExprPtr> args;
  bool star_arg = false;       // COUNT(*)
  bool distinct_arg = false;   // COUNT(DISTINCT x)
  bool has_over = false;
  std::vector<AstExprPtr> over_order;
  std::vector<bool> over_desc;

  DataType cast_type = DataType::kString;
  bool is_not = false;  // IS NOT NULL / NOT IN

  std::vector<std::pair<AstExprPtr, AstExprPtr>> case_branches;
  AstExprPtr case_else;
  std::vector<AstExprPtr> in_list;
  std::string like_pattern;  // kLike
  AstExprPtr between_low;    // kBetween
  AstExprPtr between_high;

  // Canonical text used for GROUP BY / aggregate matching in the binder.
  std::string ToText() const;
};

struct SelectStmt;

// One FROM-clause source.
struct TableRef {
  enum class Kind { kTable, kTvf, kSubquery, kOpenRowset, kNone };
  Kind kind = Kind::kNone;
  std::string name;
  std::string alias;
  std::vector<AstExprPtr> args;          // kTvf
  std::unique_ptr<SelectStmt> subquery;  // kSubquery
  std::string bulk_path;                 // kOpenRowset
};

struct JoinClause {
  TableRef ref;
  AstExprPtr condition;      // JOIN ... ON condition
  bool cross_apply = false;  // CROSS APPLY tvf(...)
  bool left_outer = false;   // LEFT [OUTER] JOIN
};

struct SelectItem {
  AstExprPtr expr;
  std::string alias;
  bool star = false;
};

struct OrderItem {
  AstExprPtr expr;
  bool descending = false;
};

struct SelectStmt {
  int64_t top = -1;  // -1 = no TOP
  bool distinct = false;
  std::vector<SelectItem> items;
  TableRef from;
  std::vector<JoinClause> joins;
  AstExprPtr where;
  std::vector<AstExprPtr> group_by;
  AstExprPtr having;
  std::vector<OrderItem> order_by;
};

struct ColumnDefAst {
  std::string name;
  std::string type_name;
  int length = 0;        // CHAR(n)/VARCHAR(n); kMaxLength for (MAX)
  bool filestream = false;
  bool rowguid = false;
  bool primary_key = false;
  bool not_null = false;

  static constexpr int kMaxLength = -1;
};

struct CreateTableStmt {
  std::string name;
  std::vector<ColumnDefAst> columns;
  std::vector<std::string> primary_key;  // table-level PRIMARY KEY (...)
  std::string compression;               // "", "NONE", "ROW", "PAGE"
  std::vector<std::string> cluster_by;   // explicit CLUSTER BY (...)
  std::string filestream_group;          // FILESTREAM_ON <name>
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // optional explicit column list
  std::vector<std::vector<AstExprPtr>> values_rows;
  std::unique_ptr<SelectStmt> select;
};

struct Statement {
  enum class Kind {
    kSelect,
    kCreateTable,
    kDropTable,
    kTruncate,
    kInsert,
    kExplain,
  };
  Kind kind = Kind::kSelect;
  // EXPLAIN ANALYZE: execute the plan and annotate it with runtime stats.
  bool explain_analyze = false;
  std::unique_ptr<SelectStmt> select;  // kSelect / kExplain
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<InsertStmt> insert;
  std::string table_name;  // kDropTable / kTruncate
};

}  // namespace htg::sql

