#include "sql/ast.h"

#include "common/string_util.h"

namespace htg::sql {

std::string AstExpr::ToText() const {
  switch (kind) {
    case Kind::kLiteral:
      if (literal.is_null()) return "NULL";
      if (literal.IsStringKind()) return "'" + literal.ToString() + "'";
      return literal.ToString();
    case Kind::kIdent: {
      // Canonicalize to the unqualified upper-case name so that
      // "GROUP BY t.x" matches "SELECT x".
      return ToUpper(ident.back());
    }
    case Kind::kStar:
      return "*";
    case Kind::kUnary:
      return (unary_not ? std::string("NOT ") : std::string("-")) +
             operand->ToText();
    case Kind::kBinary:
      return "(" + left->ToText() + " " +
             std::string(exec::BinaryOpName(bin_op)) + " " + right->ToText() +
             ")";
    case Kind::kCall: {
      std::string out = ToUpper(call_name) + "(";
      if (star_arg) out += "*";
      if (distinct_arg) out += "DISTINCT ";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToText();
      }
      out += ")";
      if (has_over) {
        out += " OVER (ORDER BY ";
        for (size_t i = 0; i < over_order.size(); ++i) {
          if (i > 0) out += ", ";
          out += over_order[i]->ToText();
          if (over_desc[i]) out += " DESC";
        }
        out += ")";
      }
      return out;
    }
    case Kind::kCast:
      return "CAST(" + operand->ToText() + " AS " +
             std::string(DataTypeName(cast_type)) + ")";
    case Kind::kIsNull:
      return operand->ToText() + (is_not ? " IS NOT NULL" : " IS NULL");
    case Kind::kCase: {
      std::string out = "CASE";
      for (const auto& [c, r] : case_branches) {
        out += " WHEN " + c->ToText() + " THEN " + r->ToText();
      }
      if (case_else != nullptr) out += " ELSE " + case_else->ToText();
      out += " END";
      return out;
    }
    case Kind::kIn: {
      std::string out = operand->ToText() + (is_not ? " NOT IN (" : " IN (");
      for (size_t i = 0; i < in_list.size(); ++i) {
        if (i > 0) out += ", ";
        out += in_list[i]->ToText();
      }
      out += ")";
      return out;
    }
    case Kind::kLike:
      return operand->ToText() + (is_not ? " NOT LIKE '" : " LIKE '") +
             like_pattern + "'";
    case Kind::kBetween:
      return operand->ToText() + (is_not ? " NOT BETWEEN " : " BETWEEN ") +
             between_low->ToText() + " AND " + between_high->ToText();
  }
  return "?";
}

}  // namespace htg::sql
