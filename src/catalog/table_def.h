#pragma once

#include <memory>
#include <string>
#include <vector>

#include "storage/mvcc.h"
#include "storage/table.h"
#include "types/schema.h"

namespace htg::catalog {

// Catalog entry for one table: logical definition plus physical storage.
struct TableDef {
  std::string name;
  Schema schema;
  // Clustered key column indexes; empty means the table is a heap.
  std::vector<int> clustered_key;
  storage::Compression compression = storage::Compression::kNone;
  std::unique_ptr<storage::TableStorage> table;
  // Per-table MVCC bookkeeping (writer watermarks, first-writer-wins
  // probe). Created by Database::CreateTable; null for hand-built defs.
  std::unique_ptr<storage::MvccTableState> mvcc;

  bool HasFilestreamColumns() const {
    for (const Column& c : schema.columns()) {
      if (c.filestream) return true;
    }
    return false;
  }
};

}  // namespace htg::catalog

