#include "catalog/database.h"

#include "common/metrics.h"
#include "common/string_util.h"
#include "storage/clustered_table.h"
#include "storage/heap_table.h"

#include <algorithm>
#include <cstdlib>

#include "types/row_batch.h"

namespace htg {

size_t DatabaseOptions::ResolvedBatchRows() const {
  if (batch_rows != 0) return batch_rows;
  if (const char* env = std::getenv("HTG_BATCH_ROWS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && parsed > 0) return static_cast<size_t>(parsed);
  }
  return RowBatch::kDefaultRows;
}

size_t DatabaseOptions::ResolvedQueryMemBytes() const {
  if (query_mem_bytes >= 0) return static_cast<size_t>(query_mem_bytes);
  if (const char* env = std::getenv("HTG_QUERY_MEM_MB")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && parsed >= 0) {
      return static_cast<size_t>(parsed) << 20;
    }
  }
  return size_t{256} << 20;
}

bool DatabaseOptions::ResolvedSpillEnabled() const {
  if (!enable_spill) return false;
  if (const char* env = std::getenv("HTG_SPILL")) {
    if (env[0] == '0' && env[1] == '\0') return false;
  }
  return true;
}

bool DatabaseOptions::ResolvedMvccEnabled() const {
  if (!enable_mvcc) return false;
  if (const char* env = std::getenv("HTG_MVCC")) {
    if (env[0] == '0' && env[1] == '\0') return false;
  }
  return true;
}

uint64_t DatabaseOptions::ResolvedMvccGcEvery() const {
  if (mvcc_gc_every >= 0) return static_cast<uint64_t>(mvcc_gc_every);
  if (const char* env = std::getenv("HTG_MVCC_GC_EVERY")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && parsed >= 0) return static_cast<uint64_t>(parsed);
  }
  return 16;
}

Database::Database(std::string name, DatabaseOptions options)
    : name_(std::move(name)), options_(std::move(options)) {}

Database::~Database() = default;

Result<std::unique_ptr<Database>> Database::Open(const std::string& name,
                                                 DatabaseOptions options) {
  if (options.filestream_root.empty()) {
    options.filestream_root = "/tmp/htgdb_" + name + "_fs";
  }
  std::unique_ptr<Database> db(new Database(name, std::move(options)));
  if (db->options_.enable_buffer_pool) {
    storage::BufferPoolOptions pool_options;
    pool_options.capacity_bytes = db->options_.buffer_pool_bytes != 0
                                      ? db->options_.buffer_pool_bytes
                                      : storage::BufferPoolCapacityFromEnv();
    db->buffer_pool_ =
        std::make_unique<storage::BufferPool>(pool_options);
    storage::Vfs* vfs = db->options_.filestream_options.vfs != nullptr
                            ? db->options_.filestream_options.vfs
                            : storage::Vfs::Default();
    HTG_ASSIGN_OR_RETURN(
        db->tablespace_,
        storage::TableSpace::Open(vfs,
                                  db->options_.filestream_root + "/tablespace",
                                  db->buffer_pool_.get()));
    // Blob chunk reads share the same pool as table pages.
    db->options_.filestream_options.buffer_pool = db->buffer_pool_.get();
  }
  HTG_ASSIGN_OR_RETURN(
      db->filestream_,
      storage::FileStreamStore::Open(db->options_.filestream_root,
                                     db->options_.filestream_options));
  HTG_RETURN_IF_ERROR(udf::RegisterBuiltins(&db->functions_));
  db->mvcc_enabled_ = db->options_.ResolvedMvccEnabled();
  db->mvcc_gc_every_ = db->options_.ResolvedMvccGcEvery();
  return db;
}

Status Database::CreateTable(catalog::TableDef def) {
  const std::string key = ToUpper(def.name);
  {
    ReaderMutexLock lock(&catalog_mu_);
    if (tables_.count(key) > 0) {
      return Status::AlreadyExists("table exists: " + def.name);
    }
  }
  for (int c : def.clustered_key) {
    if (c < 0 || c >= def.schema.num_columns()) {
      return Status::InvalidArgument("clustered key column out of range");
    }
  }
  if (def.table == nullptr) {
    if (def.clustered_key.empty()) {
      auto heap = std::make_unique<storage::HeapTable>(def.schema,
                                                       def.compression);
      if (tablespace_ != nullptr) {
        HTG_RETURN_IF_ERROR(heap->AttachStorage(tablespace_.get(), def.name));
      }
      def.table = std::move(heap);
    } else {
      auto clustered = std::make_unique<storage::ClusteredTable>(
          def.schema, def.clustered_key, def.compression);
      if (tablespace_ != nullptr) {
        HTG_RETURN_IF_ERROR(
            clustered->AttachStorage(tablespace_.get(), def.name));
      }
      def.table = std::move(clustered);
    }
  }
  if (def.mvcc == nullptr) {
    def.mvcc = std::make_unique<storage::MvccTableState>();
  }
  MutexLock lock(&catalog_mu_);
  const auto [it, inserted] = tables_.emplace(
      key, std::make_unique<catalog::TableDef>(std::move(def)));
  (void)it;
  if (!inserted) {
    // Lost a create/create race since the pre-check above.
    return Status::AlreadyExists("table exists: " + key);
  }
  return Status::OK();
}

Status Database::DropTable(const std::string& name) {
  const std::string key = ToUpper(name);
  MutexLock lock(&catalog_mu_);
  auto it = tables_.find(key);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  tables_.erase(it);
  return Status::OK();
}

Result<catalog::TableDef*> Database::GetTable(const std::string& name) {
  ReaderMutexLock lock(&catalog_mu_);
  auto it = tables_.find(ToUpper(name));
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return it->second.get();
}

std::vector<std::string> Database::ListTables() const {
  ReaderMutexLock lock(&catalog_mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, def] : tables_) names.push_back(def->name);
  return names;
}

Status Database::InsertRow(catalog::TableDef* table, Row row,
                           storage::Transaction* txn) {
  return InsertRow(table, std::move(row), txn, storage::kFrozenTxn);
}

Status Database::InsertRow(catalog::TableDef* table, Row row,
                           storage::Transaction* txn, storage::TxnId stamp) {
  const Schema& schema = table->schema;
  if (static_cast<int>(row.size()) != schema.num_columns()) {
    return Status::InvalidArgument(StringPrintf(
        "INSERT supplies %zu values for %d columns", row.size(),
        schema.num_columns()));
  }
  for (int i = 0; i < schema.num_columns(); ++i) {
    const Column& col = schema.column(i);
    if (row[i].is_null()) {
      if (!col.nullable) {
        return Status::InvalidArgument("NULL into NOT NULL column " +
                                       col.name);
      }
      continue;
    }
    if (col.filestream && row[i].IsStringKind()) {
      // A string value that is already a path into the store stays a
      // reference (rows copied between FILESTREAM tables); anything else
      // is content and moves out into the FileStream store, with the row
      // keeping the file path (PathName()/DATALENGTH resolve it later).
      if (row[i].type() != DataType::kBlob &&
          row[i].AsString().rfind(filestream_->root(), 0) == 0 &&
          filestream_->BlobSize(row[i].AsString()).ok()) {
        continue;
      }
      HTG_ASSIGN_OR_RETURN(
          std::string path,
          filestream_->CreateBlob(table->name + "_" + col.name,
                                  row[i].AsString()));
      if (txn != nullptr) {
        storage::FileStreamStore* store = filestream_.get();
        txn->OnRollback(
            [store, path] { HTG_IGNORE_STATUS(store->Delete(path)); });
      }
      row[i] = Value::String(path);
      continue;
    }
    if (row[i].type() != col.type) {
      HTG_ASSIGN_OR_RETURN(row[i], row[i].CastTo(col.type));
    }
  }
  if (stamp != storage::kFrozenTxn) {
    // Clustered entries carry the stamp so snapshot scans can filter;
    // heaps stay unstamped — their visibility is a row-count watermark.
    if (auto* clustered =
            dynamic_cast<storage::ClusteredTable*>(table->table.get())) {
      return clustered->InsertStamped(row, stamp);
    }
  }
  return table->table->Insert(row);
}

void Database::MaybeSweepVersions() {
  if (!mvcc_enabled_ || mvcc_gc_every_ == 0) return;
  const uint64_t taken = txn_manager_.TakeCompletedSinceSweep();
  uint64_t pending =
      gc_pending_.fetch_add(taken, std::memory_order_acq_rel) + taken;
  // Claim one sweep's worth via CAS rather than store(0): completions
  // another thread folds in concurrently are never discarded, and two
  // racing triggers cannot both subtract below zero — the loser re-reads
  // the decremented count and backs off.
  while (pending >= mvcc_gc_every_) {
    if (gc_pending_.compare_exchange_weak(pending, pending - mvcc_gc_every_,
                                          std::memory_order_acq_rel)) {
      SweepVersions();
      return;
    }
  }
}

uint64_t Database::SweepVersions() {
  // Only ids below the horizon are settled for every live snapshot; a
  // concurrently-starting abort gets an id >= horizon, so trimming below
  // it cannot race a fresh abort.
  const storage::TxnId horizon = txn_manager_.Horizon();
  std::vector<storage::TxnId> aborted = txn_manager_.AbortedSet();
  aborted.erase(
      std::lower_bound(aborted.begin(), aborted.end(), horizon),
      aborted.end());
  uint64_t removed = 0;
  {
    // Holding the catalog lock keeps every TableDef alive for the sweep;
    // DropTable takes it exclusively. Lock order: catalog_mu_ before any
    // table latch.
    ReaderMutexLock lock(&catalog_mu_);
    for (const auto& [key, def] : tables_) {
      if (def->mvcc == nullptr) continue;
      def->mvcc->CollapseBelow(horizon);
      if (!aborted.empty()) {
        if (auto* clustered =
                dynamic_cast<storage::ClusteredTable*>(def->table.get())) {
          removed += clustered->SweepAborted(aborted);
        }
      }
    }
  }
  if (!aborted.empty()) txn_manager_.TrimAbortedBelow(horizon);
  HTG_METRIC_COUNTER("mvcc.gc.sweeps")->Add(1);
  if (removed > 0) {
    HTG_METRIC_COUNTER("mvcc.gc.entries_removed")->Add(removed);
  }
  return removed;
}

udf::EvalContext Database::MakeEvalContext() {
  udf::EvalContext ctx;
  ctx.db = this;
  storage::FileStreamStore* store = filestream_.get();
  const std::string root = store->root();
  ctx.filestream_size =
      [store, root](const std::string& path) -> Result<uint64_t> {
    if (path.rfind(root, 0) != 0) {
      return Status::NotFound("not a filestream path");
    }
    return store->BlobSize(path);
  };
  return ctx;
}

}  // namespace htg
