#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/table_def.h"
#include "common/result.h"
#include "common/synchronization.h"
#include "storage/buffer_pool.h"
#include "storage/filestream.h"
#include "storage/tablespace.h"
#include "storage/transaction.h"
#include "udf/registry.h"

namespace htg {

// Database-wide tunables.
struct DatabaseOptions {
  // Directory for FILESTREAM BLOBs. Empty = "<name>_fs" under /tmp.
  std::string filestream_root;
  // Durability knobs for the BLOB store (Vfs seam, retry policy, read
  // verification). Tests inject a FaultInjectingVfs here.
  storage::FileStreamOptions filestream_options;
  // Route table pages and BLOB chunk reads through one shared buffer
  // pool (with spill files under "<filestream_root>/tablespace"). Off
  // reverts every table to the fully in-memory storage mode — the
  // ablation knob for cache-effect measurements.
  bool enable_buffer_pool = true;
  // Pool capacity in bytes; 0 = HTG_BUFFER_POOL_MB (default 64 MiB).
  size_t buffer_pool_bytes = 0;
  // Degree of parallelism for eligible query plans (SQL Server's MAXDOP).
  int max_dop = 4;
  // Row-count threshold below which the planner stays serial.
  uint64_t parallel_threshold = 10000;
  // Upper bound on morsel size (heap pages per stolen work unit) for
  // parallel plans; the planner shrinks morsels on small tables so every
  // worker gets several.
  size_t morsel_pages = 32;
  // Rows per execution batch on the vectorized pull path.
  //   0  = use HTG_BATCH_ROWS (default 1024)
  //   1  = force the legacy row-at-a-time iterators (parity testing)
  //   ≥2 = that many rows per batch
  size_t batch_rows = 0;
  // Per-query memory budget for materializing operators (sort, hash
  // aggregate, hash join, DISTINCT).
  //   -1 = use HTG_QUERY_MEM_MB (default 256 MiB)
  //    0 = unlimited
  //   >0 = that many bytes
  int64_t query_mem_bytes = -1;
  // Let over-budget operators degrade to disk spill runs through the
  // tablespace instead of failing. Off (or no buffer pool/tablespace):
  // over-budget statements fail with kResourceExhausted. HTG_SPILL=0
  // disables it from the environment.
  bool enable_spill = true;
  // Fan-out of one partition-spill pass in hash aggregate / hash join.
  size_t spill_partitions = 16;
  // Snapshot-isolation MVCC: statements read a consistent snapshot
  // (heap row-count watermarks, clustered txn stamps) and the server
  // accepts multi-statement BEGIN/COMMIT/ABORT. HTG_MVCC=0 disables it
  // from the environment and reverts to lock-only visibility.
  bool enable_mvcc = true;
  // Completed (committed + aborted) transactions between opportunistic
  // version-GC sweeps. -1 = HTG_MVCC_GC_EVERY (default 16); 0 disables
  // the automatic sweep (SweepVersions can still be called directly).
  int64_t mvcc_gc_every = -1;

  // batch_rows with the 0 = environment default applied.
  size_t ResolvedBatchRows() const;
  // query_mem_bytes with the -1 = environment default applied; 0 means
  // unlimited.
  size_t ResolvedQueryMemBytes() const;
  // enable_spill combined with the HTG_SPILL environment override.
  bool ResolvedSpillEnabled() const;
  // enable_mvcc combined with the HTG_MVCC environment override.
  bool ResolvedMvccEnabled() const;
  // mvcc_gc_every with the -1 = environment default applied.
  uint64_t ResolvedMvccGcEvery() const;
};

// The top-level engine object: catalog of tables, the function registry
// (built-ins plus any registered extension assemblies, e.g. the genomics
// library), and the FileStream BLOB store.
class Database {
 public:
  static Result<std::unique_ptr<Database>> Open(const std::string& name,
                                                DatabaseOptions options = {});
  ~Database();

  const std::string& name() const { return name_; }
  const DatabaseOptions& options() const { return options_; }
  void set_max_dop(int dop) { options_.max_dop = dop; }

  udf::FunctionRegistry* functions() { return &functions_; }
  const udf::FunctionRegistry* functions() const { return &functions_; }
  storage::FileStreamStore* filestream() { return filestream_.get(); }
  // Null when options.enable_buffer_pool is false.
  storage::BufferPool* buffer_pool() { return buffer_pool_.get(); }
  // Spill-file space for out-of-core operators; null when the buffer
  // pool is disabled (no tablespace -> no spilling, budget errors
  // instead).
  storage::TableSpace* tablespace() { return tablespace_.get(); }

  // DDL -----------------------------------------------------------------
  // The catalog map itself is internally synchronized (SharedMutex), so
  // concurrent sessions can resolve tables while one creates or drops.
  // Pointer lifetime is the caller's concern: a TableDef* stays valid
  // until DropTable, which the server's LockManager serializes against
  // in-flight statements (exclusive table + catalog locks).

  // Creates a table; `def.table` is instantiated here (heap, or clustered
  // when def.clustered_key is non-empty).
  Status CreateTable(catalog::TableDef def);
  Status DropTable(const std::string& name);

  Result<catalog::TableDef*> GetTable(const std::string& name);
  std::vector<std::string> ListTables() const;

  // DML -----------------------------------------------------------------

  // Inserts one row, converting inline BLOB values bound for FILESTREAM
  // columns into store-managed files (the stored value becomes the file
  // path, as with SQL Server's PathName()). If `txn` is non-null, undo
  // actions are registered.
  Status InsertRow(catalog::TableDef* table, Row row,
                   storage::Transaction* txn = nullptr);

  // Inserts one row stamped with the writing transaction's id: clustered
  // tables record it on the B+-tree entry (snapshot scans filter on it);
  // heaps ignore the stamp — their visibility is watermark-based.
  Status InsertRow(catalog::TableDef* table, Row row,
                   storage::Transaction* txn, storage::TxnId stamp);

  // An EvalContext wired to this database (DATALENGTH on filestreams etc).
  udf::EvalContext MakeEvalContext();

  // MVCC ----------------------------------------------------------------

  // Resolved enable_mvcc, cached at Open.
  bool mvcc_enabled() const { return mvcc_enabled_; }
  storage::TxnManager* txns() { return &txn_manager_; }

  // Opportunistic version GC: once ResolvedMvccGcEvery() transactions
  // have completed since the last sweep, retires committed watermark
  // ranges below the oldest live snapshot and physically removes
  // aborted-transaction entries from clustered trees.
  void MaybeSweepVersions();
  // Unconditional sweep; returns the number of clustered entries removed.
  uint64_t SweepVersions();

 private:
  Database(std::string name, DatabaseOptions options);

  std::string name_;
  DatabaseOptions options_;
  // Declared before tables_ and filestream_: TableFiles and pooled blob
  // registrations must be destroyed before the pool and tablespace they
  // point into (members destruct in reverse declaration order).
  std::unique_ptr<storage::BufferPool> buffer_pool_;
  std::unique_ptr<storage::TableSpace> tablespace_;
  mutable SharedMutex catalog_mu_{"Database::catalog_mu_"};
  std::map<std::string, std::unique_ptr<catalog::TableDef>> tables_
      HTG_GUARDED_BY(catalog_mu_);
  udf::FunctionRegistry functions_;
  std::unique_ptr<storage::FileStreamStore> filestream_;
  storage::TxnManager txn_manager_;
  bool mvcc_enabled_ = true;        // resolved once at Open
  uint64_t mvcc_gc_every_ = 16;     // resolved once at Open
  std::atomic<uint64_t> gc_pending_{0};
};

}  // namespace htg

