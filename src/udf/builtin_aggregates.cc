#include <memory>

#include "udf/registry.h"

namespace htg::udf {

namespace {

// COUNT(*) / COUNT(expr): rows, or non-null values.
class CountInstance : public AggregateInstance {
 public:
  Status Accumulate(const std::vector<Value>& args) override {
    if (args.empty() || !args[0].is_null()) ++count_;
    return Status::OK();
  }
  Status Merge(const AggregateInstance& other) override {
    count_ += static_cast<const CountInstance&>(other).count_;
    return Status::OK();
  }
  Result<Value> Terminate() override { return Value::Int64(count_); }

 private:
  int64_t count_ = 0;
};

class CountFunction : public AggregateFunction {
 public:
  std::string_view name() const override { return "COUNT"; }
  int min_args() const override { return 0; }
  int max_args() const override { return 1; }
  DataType result_type(const std::vector<DataType>&) const override {
    return DataType::kInt64;
  }
  std::unique_ptr<AggregateInstance> NewInstance() const override {
    return std::make_unique<CountInstance>();
  }
};

// SUM: integer inputs sum in int64, doubles in double. NULLs ignored.
class SumInstance : public AggregateInstance {
 public:
  Status Accumulate(const std::vector<Value>& args) override {
    if (args[0].is_null()) return Status::OK();
    seen_ = true;
    if (args[0].IsDoubleKind()) {
      is_double_ = true;
      dsum_ += args[0].AsDouble();
    } else {
      isum_ += args[0].AsInt64();
    }
    return Status::OK();
  }
  Status Merge(const AggregateInstance& other) override {
    const auto& o = static_cast<const SumInstance&>(other);
    seen_ = seen_ || o.seen_;
    is_double_ = is_double_ || o.is_double_;
    isum_ += o.isum_;
    dsum_ += o.dsum_;
    return Status::OK();
  }
  Result<Value> Terminate() override {
    if (!seen_) return Value::Null();
    if (is_double_) {
      return Value::Double(dsum_ + static_cast<double>(isum_));
    }
    return Value::Int64(isum_);
  }

 private:
  bool seen_ = false;
  bool is_double_ = false;
  int64_t isum_ = 0;
  double dsum_ = 0.0;
};

class SumFunction : public AggregateFunction {
 public:
  std::string_view name() const override { return "SUM"; }
  int min_args() const override { return 1; }
  int max_args() const override { return 1; }
  DataType result_type(const std::vector<DataType>& args) const override {
    return args[0] == DataType::kDouble ? DataType::kDouble : DataType::kInt64;
  }
  std::unique_ptr<AggregateInstance> NewInstance() const override {
    return std::make_unique<SumInstance>();
  }
};

// MIN / MAX over any comparable type.
class MinMaxInstance : public AggregateInstance {
 public:
  explicit MinMaxInstance(bool is_min) : is_min_(is_min) {}
  Status Accumulate(const std::vector<Value>& args) override {
    if (args[0].is_null()) return Status::OK();
    Take(args[0]);
    return Status::OK();
  }
  Status Merge(const AggregateInstance& other) override {
    const auto& o = static_cast<const MinMaxInstance&>(other);
    if (o.seen_) Take(o.best_);
    return Status::OK();
  }
  Result<Value> Terminate() override {
    return seen_ ? best_ : Value::Null();
  }

 private:
  void Take(const Value& v) {
    if (!seen_) {
      best_ = v;
      seen_ = true;
      return;
    }
    const int cmp = v.Compare(best_);
    if ((is_min_ && cmp < 0) || (!is_min_ && cmp > 0)) best_ = v;
  }

  bool is_min_;
  bool seen_ = false;
  Value best_;
};

class MinMaxFunction : public AggregateFunction {
 public:
  explicit MinMaxFunction(bool is_min) : is_min_(is_min) {}
  std::string_view name() const override { return is_min_ ? "MIN" : "MAX"; }
  int min_args() const override { return 1; }
  int max_args() const override { return 1; }
  DataType result_type(const std::vector<DataType>& args) const override {
    return args[0];
  }
  std::unique_ptr<AggregateInstance> NewInstance() const override {
    return std::make_unique<MinMaxInstance>(is_min_);
  }

 private:
  bool is_min_;
};

// AVG: double mean over non-null inputs.
class AvgInstance : public AggregateInstance {
 public:
  Status Accumulate(const std::vector<Value>& args) override {
    if (args[0].is_null()) return Status::OK();
    sum_ += args[0].AsDouble();
    ++count_;
    return Status::OK();
  }
  Status Merge(const AggregateInstance& other) override {
    const auto& o = static_cast<const AvgInstance&>(other);
    sum_ += o.sum_;
    count_ += o.count_;
    return Status::OK();
  }
  Result<Value> Terminate() override {
    if (count_ == 0) return Value::Null();
    return Value::Double(sum_ / static_cast<double>(count_));
  }

 private:
  double sum_ = 0.0;
  int64_t count_ = 0;
};

class AvgFunction : public AggregateFunction {
 public:
  std::string_view name() const override { return "AVG"; }
  int min_args() const override { return 1; }
  int max_args() const override { return 1; }
  DataType result_type(const std::vector<DataType>&) const override {
    return DataType::kDouble;
  }
  std::unique_ptr<AggregateInstance> NewInstance() const override {
    return std::make_unique<AvgInstance>();
  }
};

}  // namespace

Status RegisterBuiltinAggregates(FunctionRegistry* registry) {
  HTG_RETURN_IF_ERROR(
      registry->RegisterAggregate(std::make_unique<CountFunction>()));
  HTG_RETURN_IF_ERROR(
      registry->RegisterAggregate(std::make_unique<SumFunction>()));
  HTG_RETURN_IF_ERROR(
      registry->RegisterAggregate(std::make_unique<MinMaxFunction>(true)));
  HTG_RETURN_IF_ERROR(
      registry->RegisterAggregate(std::make_unique<MinMaxFunction>(false)));
  return registry->RegisterAggregate(std::make_unique<AvgFunction>());
}

}  // namespace htg::udf
