#include <algorithm>
#include <cmath>

#include "common/guid.h"
#include "common/string_util.h"
#include "udf/registry.h"

namespace htg::udf {

namespace {

DataType FixedType(DataType t) { return t; }

ScalarFunction MakeFn(
    std::string name, int min_args, int max_args, DataType result,
    std::function<Result<Value>(EvalContext*, const std::vector<Value>&)> fn) {
  ScalarFunction f;
  f.name = std::move(name);
  f.min_args = min_args;
  f.max_args = max_args;
  f.result_type = [result](const std::vector<DataType>&) { return result; };
  f.eval = std::move(fn);
  return f;
}

// T-SQL LEN ignores trailing blanks.
Result<Value> EvalLen(EvalContext*, const std::vector<Value>& args) {
  const std::string& s = args[0].AsString();
  size_t end = s.size();
  while (end > 0 && s[end - 1] == ' ') --end;
  return Value::Int64(static_cast<int64_t>(end));
}

Result<Value> EvalCharIndex(EvalContext*, const std::vector<Value>& args) {
  const std::string& needle = args[0].AsString();
  const std::string& hay = args[1].AsString();
  size_t start = 0;
  if (args.size() > 2) {
    const int64_t s = args[2].AsInt64();
    if (s > 1) start = static_cast<size_t>(s - 1);
  }
  if (needle.empty()) return Value::Int64(start < hay.size() ? start + 1 : 0);
  const size_t pos = hay.find(needle, start);
  return Value::Int64(pos == std::string::npos ? 0
                                               : static_cast<int64_t>(pos + 1));
}

Result<Value> EvalSubstring(EvalContext*, const std::vector<Value>& args) {
  const std::string& s = args[0].AsString();
  int64_t start = args[1].AsInt64();
  int64_t len = args[2].AsInt64();
  if (len < 0) return Status::InvalidArgument("SUBSTRING length < 0");
  // T-SQL: 1-based; a start before 1 consumes length.
  if (start < 1) {
    len += start - 1;
    start = 1;
  }
  if (len <= 0 || static_cast<size_t>(start) > s.size()) {
    return Value::String("");
  }
  return Value::String(s.substr(start - 1, len));
}

}  // namespace

Status RegisterBuiltins(FunctionRegistry* registry) {
  // Registration only fails on a duplicate name — a programming error —
  // so record the first failure and keep going; the caller refuses to
  // open a database with a half-populated function catalog.
  Status first_error;
  auto reg = [registry, &first_error](ScalarFunction fn) {
    Status s = registry->RegisterScalar(std::move(fn));
    if (first_error.ok() && !s.ok()) first_error = std::move(s);
  };

  reg(MakeFn("LEN", 1, 1, DataType::kInt64, EvalLen));
  reg(MakeFn("CHARINDEX", 2, 3, DataType::kInt64, EvalCharIndex));
  reg(MakeFn("SUBSTRING", 3, 3, DataType::kString, EvalSubstring));

  reg(MakeFn("UPPER", 1, 1, DataType::kString,
             [](EvalContext*, const std::vector<Value>& a) -> Result<Value> {
               return Value::String(ToUpper(a[0].AsString()));
             }));
  reg(MakeFn("LOWER", 1, 1, DataType::kString,
             [](EvalContext*, const std::vector<Value>& a) -> Result<Value> {
               return Value::String(ToLower(a[0].AsString()));
             }));
  reg(MakeFn("LTRIM", 1, 1, DataType::kString,
             [](EvalContext*, const std::vector<Value>& a) -> Result<Value> {
               const std::string& s = a[0].AsString();
               size_t b = 0;
               while (b < s.size() && s[b] == ' ') ++b;
               return Value::String(s.substr(b));
             }));
  reg(MakeFn("RTRIM", 1, 1, DataType::kString,
             [](EvalContext*, const std::vector<Value>& a) -> Result<Value> {
               const std::string& s = a[0].AsString();
               size_t e = s.size();
               while (e > 0 && s[e - 1] == ' ') --e;
               return Value::String(s.substr(0, e));
             }));
  reg(MakeFn("REVERSE", 1, 1, DataType::kString,
             [](EvalContext*, const std::vector<Value>& a) -> Result<Value> {
               std::string s = a[0].AsString();
               std::reverse(s.begin(), s.end());
               return Value::String(std::move(s));
             }));
  reg(MakeFn("REPLACE", 3, 3, DataType::kString,
             [](EvalContext*, const std::vector<Value>& a) -> Result<Value> {
               std::string s = a[0].AsString();
               const std::string& from = a[1].AsString();
               const std::string& to = a[2].AsString();
               if (from.empty()) return Value::String(std::move(s));
               std::string out;
               size_t pos = 0;
               for (;;) {
                 const size_t hit = s.find(from, pos);
                 if (hit == std::string::npos) break;
                 out.append(s, pos, hit - pos);
                 out.append(to);
                 pos = hit + from.size();
               }
               out.append(s, pos, std::string::npos);
               return Value::String(std::move(out));
             }));
  reg(MakeFn("LEFT", 2, 2, DataType::kString,
             [](EvalContext*, const std::vector<Value>& a) -> Result<Value> {
               const std::string& s = a[0].AsString();
               const int64_t n = std::max<int64_t>(0, a[1].AsInt64());
               return Value::String(s.substr(0, n));
             }));
  reg(MakeFn("RIGHT", 2, 2, DataType::kString,
             [](EvalContext*, const std::vector<Value>& a) -> Result<Value> {
               const std::string& s = a[0].AsString();
               const size_t n = static_cast<size_t>(
                   std::max<int64_t>(0, a[1].AsInt64()));
               return Value::String(
                   n >= s.size() ? s : s.substr(s.size() - n));
             }));
  reg(MakeFn("REPLICATE", 2, 2, DataType::kString,
             [](EvalContext*, const std::vector<Value>& a) -> Result<Value> {
               const std::string& s = a[0].AsString();
               const int64_t n = a[1].AsInt64();
               std::string out;
               for (int64_t i = 0; i < n; ++i) out.append(s);
               return Value::String(std::move(out));
             }));

  // DATALENGTH: byte length; for a FILESTREAM reference, the external
  // file's size (the paper queries DATALENGTH(reads) on ShortReadFiles).
  {
    ScalarFunction f = MakeFn(
        "DATALENGTH", 1, 1, DataType::kInt64,
        [](EvalContext* ctx, const std::vector<Value>& a) -> Result<Value> {
          if (a[0].IsStringKind() && ctx != nullptr && ctx->filestream_size) {
            Result<uint64_t> size = ctx->filestream_size(a[0].AsString());
            if (size.ok()) {
              return Value::Int64(static_cast<int64_t>(*size));
            }
          }
          if (a[0].IsStringKind()) {
            return Value::Int64(static_cast<int64_t>(a[0].AsString().size()));
          }
          return Value::Int64(8);
        });
    reg(std::move(f));
  }

  reg(MakeFn("ABS", 1, 1, DataType::kDouble,
             [](EvalContext*, const std::vector<Value>& a) -> Result<Value> {
               if (a[0].IsIntegerKind()) {
                 return Value::Int64(std::abs(a[0].AsInt64()));
               }
               return Value::Double(std::abs(a[0].AsDouble()));
             }));
  reg(MakeFn("FLOOR", 1, 1, DataType::kDouble,
             [](EvalContext*, const std::vector<Value>& a) -> Result<Value> {
               return Value::Double(std::floor(a[0].AsDouble()));
             }));
  reg(MakeFn("CEILING", 1, 1, DataType::kDouble,
             [](EvalContext*, const std::vector<Value>& a) -> Result<Value> {
               return Value::Double(std::ceil(a[0].AsDouble()));
             }));
  reg(MakeFn("SQRT", 1, 1, DataType::kDouble,
             [](EvalContext*, const std::vector<Value>& a) -> Result<Value> {
               return Value::Double(std::sqrt(a[0].AsDouble()));
             }));
  reg(MakeFn("LOG", 1, 1, DataType::kDouble,
             [](EvalContext*, const std::vector<Value>& a) -> Result<Value> {
               return Value::Double(std::log(a[0].AsDouble()));
             }));
  reg(MakeFn("POWER", 2, 2, DataType::kDouble,
             [](EvalContext*, const std::vector<Value>& a) -> Result<Value> {
               return Value::Double(
                   std::pow(a[0].AsDouble(), a[1].AsDouble()));
             }));
  reg(MakeFn("ROUND", 2, 2, DataType::kDouble,
             [](EvalContext*, const std::vector<Value>& a) -> Result<Value> {
               const double scale = std::pow(10.0, a[1].AsDouble());
               return Value::Double(std::round(a[0].AsDouble() * scale) /
                                    scale);
             }));

  {
    ScalarFunction f = MakeFn(
        "NEWID", 0, 0, DataType::kGuid,
        [](EvalContext*, const std::vector<Value>&) -> Result<Value> {
          return Value::Guid(NewGuid());
        });
    f.deterministic = false;
    reg(std::move(f));
  }

  {
    ScalarFunction f;
    f.name = "ISNULL";
    f.min_args = 2;
    f.max_args = 2;
    f.null_tolerant = true;
    f.result_type = [](const std::vector<DataType>& t) {
      return t.empty() ? DataType::kString : t[0];
    };
    f.eval = [](EvalContext*, const std::vector<Value>& a) -> Result<Value> {
      return a[0].is_null() ? a[1] : a[0];
    };
    reg(std::move(f));
  }
  {
    ScalarFunction f;
    f.name = "COALESCE";
    f.min_args = 1;
    f.max_args = ScalarFunction::kVarArgs;
    f.null_tolerant = true;
    f.result_type = [](const std::vector<DataType>& t) {
      return t.empty() ? DataType::kString : t[0];
    };
    f.eval = [](EvalContext*, const std::vector<Value>& a) -> Result<Value> {
      for (const Value& v : a) {
        if (!v.is_null()) return v;
      }
      return Value::Null();
    };
    reg(std::move(f));
  }
  {
    ScalarFunction f;
    f.name = "CONCAT";
    f.min_args = 1;
    f.max_args = ScalarFunction::kVarArgs;
    f.null_tolerant = true;
    f.result_type = [](const std::vector<DataType>&) {
      return DataType::kString;
    };
    f.eval = [](EvalContext*, const std::vector<Value>& a) -> Result<Value> {
      std::string out;
      for (const Value& v : a) {
        if (!v.is_null()) out.append(v.ToString());
      }
      return Value::String(std::move(out));
    };
    reg(std::move(f));
  }

  HTG_RETURN_IF_ERROR(RegisterBuiltinAggregates(registry));
  (void)FixedType;
  return first_error;
}

}  // namespace htg::udf
