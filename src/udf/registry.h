#pragma once

#include <map>
#include <memory>
#include <string>

#include "udf/function.h"

namespace htg::udf {

// Name-indexed catalog of scalar functions, table-valued functions, and
// aggregates — the engine's CREATE FUNCTION surface. Lookup is
// case-insensitive. Built-ins are registered by RegisterBuiltins();
// domain extensions (the genomics library) add theirs on database open.
class FunctionRegistry {
 public:
  FunctionRegistry();

  Status RegisterScalar(ScalarFunction fn);
  Status RegisterTableFunction(std::unique_ptr<TableFunction> fn);
  Status RegisterAggregate(std::unique_ptr<AggregateFunction> fn);

  // nullptr when not found.
  const ScalarFunction* FindScalar(std::string_view name) const;
  const TableFunction* FindTableFunction(std::string_view name) const;
  const AggregateFunction* FindAggregate(std::string_view name) const;

 private:
  std::map<std::string, ScalarFunction> scalars_;
  std::map<std::string, std::unique_ptr<TableFunction>> tvfs_;
  std::map<std::string, std::unique_ptr<AggregateFunction>> aggregates_;
};

// Installs the built-in function library (string/math scalars and the
// COUNT/SUM/MIN/MAX/AVG aggregates). Fails only on a duplicate name (a
// programming error); callers must not serve SQL from a registry that
// failed to populate.
Status RegisterBuiltins(FunctionRegistry* registry);

// Installs only the standard aggregates (called by RegisterBuiltins).
Status RegisterBuiltinAggregates(FunctionRegistry* registry);

}  // namespace htg::udf

