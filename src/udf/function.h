#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"
#include "types/schema.h"
#include "types/value.h"

namespace htg {
class Database;  // from catalog/database.h; passed through opaquely
}

namespace htg::udf {

// Evaluation-time services available to scalar functions (FileStream size
// lookups, NEWID, ...). A thin view over the Database; the filestream_size
// hook is installed by the Database so DATALENGTH can report the external
// file size of a FILESTREAM reference without udf depending on catalog.
struct EvalContext {
  Database* db = nullptr;
  std::function<Result<uint64_t>(const std::string&)> filestream_size;
};

// A scalar user-defined (or built-in) function: the engine-side analogue of
// a CLR scalar UDF (paper §2.3.2). Stateless; eval may be called from
// multiple threads concurrently.
struct ScalarFunction {
  std::string name;
  int min_args = 0;
  int max_args = 0;  // inclusive; use kVarArgs for unbounded
  static constexpr int kVarArgs = 1 << 20;
  // Result type given argument types.
  std::function<DataType(const std::vector<DataType>&)> result_type;
  std::function<Result<Value>(EvalContext*, const std::vector<Value>&)> eval;
  bool deterministic = true;
  // When false (the default) the evaluator short-circuits a NULL argument
  // to a NULL result without calling eval (T-SQL NULL propagation).
  bool null_tolerant = false;
};

// A table-valued function (paper §2.3.2 / Fig. 5): binds an output schema
// from constant arguments, then opens a pull-based row iterator. The
// iterator owns all file access and parsing; the engine pulls one row at a
// time, so results stream instead of materializing.
//
// Concurrency contract: the parallel executor calls Open() from multiple
// worker threads at once (one CROSS APPLY invocation per input row per
// morsel), so Open() and BindSchema() must be thread-safe — any shared
// mutable state behind them (caches, pools) needs its own lock. Each
// *returned iterator* is only ever pulled by the worker that opened it,
// so iterator state needs no synchronization.
class TableFunction {
 public:
  virtual ~TableFunction() = default;

  virtual std::string_view name() const = 0;

  // Output schema. `args` are the call's constant-foldable arguments
  // (non-constant arguments arrive as NULL placeholders).
  virtual Result<Schema> BindSchema(const std::vector<Value>& args) const = 0;

  // Opens the row stream for one invocation.
  virtual Result<std::unique_ptr<storage::RowIterator>> Open(
      const std::vector<Value>& args, Database* db) const = 0;
};

// Running state of one aggregate group (paper §2.3.4). Implementations
// accumulate input rows and produce the final value at Terminate().
//
// Concurrency contract: an instance is owned by exactly one worker during
// the parallel partial phase; Merge() runs in the final phase where the
// merging worker exclusively owns both `this` and `other`. Instances
// therefore never need internal locking, but must not share mutable
// state across instances without it.
class AggregateInstance {
 public:
  virtual ~AggregateInstance() = default;

  virtual Status Accumulate(const std::vector<Value>& args) = 0;

  // Folds another instance's partial state into this one. Required for
  // parallel (partial → final) aggregation, exactly like SQL Server's
  // built-in parallelizable aggregates.
  virtual Status Merge(const AggregateInstance& other) = 0;

  virtual Result<Value> Terminate() = 0;
};

// Factory + metadata for an aggregate function (built-in or UDA).
class AggregateFunction {
 public:
  virtual ~AggregateFunction() = default;

  virtual std::string_view name() const = 0;
  // Number of arguments; COUNT(*) is the 0-arg form of COUNT.
  virtual int min_args() const = 0;
  virtual int max_args() const = 0;
  virtual DataType result_type(const std::vector<DataType>& args) const = 0;
  // False disables parallel plans over this aggregate (no partial/final).
  virtual bool SupportsMerge() const { return true; }

  virtual std::unique_ptr<AggregateInstance> NewInstance() const = 0;
};

}  // namespace htg::udf

