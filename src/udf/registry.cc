#include "udf/registry.h"

#include "common/string_util.h"

namespace htg::udf {

FunctionRegistry::FunctionRegistry() = default;

Status FunctionRegistry::RegisterScalar(ScalarFunction fn) {
  const std::string key = ToUpper(fn.name);
  if (scalars_.count(key) > 0) {
    return Status::AlreadyExists("scalar function exists: " + fn.name);
  }
  scalars_.emplace(key, std::move(fn));
  return Status::OK();
}

Status FunctionRegistry::RegisterTableFunction(
    std::unique_ptr<TableFunction> fn) {
  const std::string key = ToUpper(fn->name());
  if (tvfs_.count(key) > 0) {
    return Status::AlreadyExists("table function exists: " +
                                 std::string(fn->name()));
  }
  tvfs_.emplace(key, std::move(fn));
  return Status::OK();
}

Status FunctionRegistry::RegisterAggregate(
    std::unique_ptr<AggregateFunction> fn) {
  const std::string key = ToUpper(fn->name());
  if (aggregates_.count(key) > 0) {
    return Status::AlreadyExists("aggregate exists: " +
                                 std::string(fn->name()));
  }
  aggregates_.emplace(key, std::move(fn));
  return Status::OK();
}

const ScalarFunction* FunctionRegistry::FindScalar(
    std::string_view name) const {
  auto it = scalars_.find(ToUpper(name));
  return it == scalars_.end() ? nullptr : &it->second;
}

const TableFunction* FunctionRegistry::FindTableFunction(
    std::string_view name) const {
  auto it = tvfs_.find(ToUpper(name));
  return it == tvfs_.end() ? nullptr : it->second.get();
}

const AggregateFunction* FunctionRegistry::FindAggregate(
    std::string_view name) const {
  auto it = aggregates_.find(ToUpper(name));
  return it == aggregates_.end() ? nullptr : it->second.get();
}

}  // namespace htg::udf
