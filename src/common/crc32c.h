#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace htg {

// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum SQL Server's PAGE_VERIFY CHECKSUM and most storage engines use
// for torn-page and bit-rot detection. Software slice-by-4 implementation;
// fast enough for 8 KiB pages and blob-sized buffers.

// Extends `crc` (a running CRC32C) with `data`; start from 0.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

inline uint32_t Crc32c(std::string_view data) {
  return Crc32cExtend(0, data.data(), data.size());
}

}  // namespace htg

