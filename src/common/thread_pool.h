#pragma once

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/synchronization.h"

namespace htg {

// A fixed-size worker pool. The executor's exchange operators submit one
// task per plan partition; ParallelFor is a convenience for data-parallel
// loops (partial aggregation, parallel load).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `task` for execution by a worker thread.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished.
  void Wait();

  // Runs fn(i) for i in [0, n) across the pool and waits for completion.
  // fn must be safe to call concurrently for distinct i. The calling
  // thread participates in draining the indexes, so this is safe to call
  // from inside a pool task (nested data parallelism cannot deadlock even
  // with every worker busy).
  void ParallelFor(int n, const std::function<void(int)>& fn);

  int num_threads() const { return static_cast<int>(threads_.size()); }

  // Default pool sized to the hardware concurrency. Lives for the process
  // lifetime (function-local static reference; never destroyed).
  static ThreadPool& Default();

 private:
  void WorkerLoop();

  Mutex mu_{"ThreadPool::mu_"};
  CondVar work_cv_;
  CondVar idle_cv_;
  std::deque<std::function<void()>> queue_ HTG_GUARDED_BY(mu_);
  std::vector<std::thread> threads_;
  int active_ HTG_GUARDED_BY(mu_) = 0;
  bool shutdown_ HTG_GUARDED_BY(mu_) = false;
};

}  // namespace htg
