#pragma once

#include <chrono>
#include <cstdint>

namespace htg {

// Wall-clock timer for benches and EXPLAIN ANALYZE-style reporting. This
// is the only sanctioned timing primitive in src/exec (the htg_lint
// exec-raw-timing rule bans direct clock calls there).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace htg

