#pragma once

#include <chrono>

namespace htg {

// Wall-clock timer for benches and EXPLAIN ANALYZE-style reporting.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace htg

