#include "common/random.h"

#include <cmath>

namespace htg {

uint64_t Random::Zipf(uint64_t n, double s) {
  // Approximate inverse-CDF sampling of a Zipf(s) distribution over
  // ranks 1..n using the continuous bounding technique of Devroye.
  if (n <= 1) return 0;
  const double t = (std::pow(static_cast<double>(n), 1.0 - s) - s) / (1.0 - s);
  for (;;) {
    const double u = NextDouble() * t;
    double x;
    if (u <= 1.0) {
      x = u;
    } else {
      x = std::pow(u * (1.0 - s) + s, 1.0 / (1.0 - s));
    }
    const uint64_t k = static_cast<uint64_t>(x) + 1;
    if (k < 1 || k > n) continue;
    const double ratio =
        std::pow(static_cast<double>(k), -s) /
        (k == 1 ? 1.0 : std::pow(x, -s));
    if (NextDouble() < ratio) return k - 1;
  }
}

}  // namespace htg
