#include "common/varint.h"

#include <string_view>

namespace htg {

void PutVarint64(std::string* dst, uint64_t v) {
  unsigned char buf[10];
  int i = 0;
  while (v >= 0x80) {
    buf[i++] = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  buf[i++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), i);
}

void PutVarintSigned64(std::string* dst, int64_t v) {
  // Zig-zag: maps 0,-1,1,-2,... to 0,1,2,3,...
  const uint64_t encoded =
      (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
  PutVarint64(dst, encoded);
}

const char* GetVarint64(const char* p, const char* limit, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && p < limit; shift += 7) {
    const uint64_t byte = static_cast<unsigned char>(*p);
    ++p;
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return p;
    }
  }
  return nullptr;
}

const char* GetVarintSigned64(const char* p, const char* limit,
                              int64_t* value) {
  uint64_t encoded = 0;
  p = GetVarint64(p, limit, &encoded);
  if (p == nullptr) return nullptr;
  *value = static_cast<int64_t>(encoded >> 1) ^ -static_cast<int64_t>(encoded & 1);
  return p;
}

int VarintLength(uint64_t v) {
  int len = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++len;
  }
  return len;
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

const char* GetLengthPrefixed(const char* p, const char* limit,
                              std::string_view* value) {
  uint64_t len = 0;
  p = GetVarint64(p, limit, &len);
  if (p == nullptr) return nullptr;
  if (static_cast<uint64_t>(limit - p) < len) return nullptr;
  *value = std::string_view(p, len);
  return p + len;
}

}  // namespace htg
