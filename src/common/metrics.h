#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/synchronization.h"

namespace htg::obs {

// Process-wide engine metrics (the observability layer of DESIGN.md).
//
// Design constraints, in order:
//   1. Hot-path cost: Counter::Add is a relaxed load (enabled flag), a
//      thread-local read, and one relaxed fetch_add on a cache-line-padded
//      shard — safe to leave in per-row code.
//   2. Always-on: metrics accumulate monotonically for the process
//      lifetime; consumers diff two Snapshot()s rather than resetting
//      (resets would race with concurrent writers).
//   3. No dependencies: plain atomics, no allocation after registration.
//
// The kill switch exists to *measure* the instrumentation itself (the
// bench suite reports fig7 with metrics on vs. off); production code never
// needs to toggle it.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

namespace internal {

extern std::atomic<bool> g_metrics_enabled;

// Stable per-thread shard index (hashed thread id, cached thread-local).
size_t ThreadShard();

}  // namespace internal

// Monotonic counter, sharded across cache lines so concurrent writers
// (morsel workers, pool threads) don't serialize on one atomic.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (!internal::g_metrics_enabled.load(std::memory_order_relaxed)) return;
    cells_[internal::ThreadShard() & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  static constexpr size_t kShards = 16;
  Cell cells_[kShards];
};

// Last-value-wins instantaneous measure (queue depth, open files).
class Gauge {
 public:
  void Set(int64_t v) {
    if (!internal::g_metrics_enabled.load(std::memory_order_relaxed)) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t d) {
    if (!internal::g_metrics_enabled.load(std::memory_order_relaxed)) return;
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// Latency histogram with log2 buckets: bucket i holds values whose bit
// width is i, i.e. [2^(i-1), 2^i). Values are nanoseconds by convention.
// Recording is two relaxed fetch_adds; percentiles are estimated from the
// bucket upper bounds at snapshot time.
class Histogram {
 public:
  // bit_width(uint64) is in [0, 64], so 65 buckets.
  static constexpr size_t kBuckets = 65;

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// Point-in-time copy of one histogram.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  std::vector<uint64_t> buckets;  // Histogram::kBuckets entries

  // Upper-bound estimate of the p-th percentile (p in [0, 1]) in the
  // recorded unit; 0 when empty.
  uint64_t Percentile(double p) const;
  HistogramSnapshot Delta(const HistogramSnapshot& base) const;
};

// Point-in-time copy of every registered metric. Diffable and
// serializable; this is what benches embed in BENCH_*.json.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  // this - base, per metric (counters and histogram buckets subtract;
  // gauges keep their current value). Metrics absent from `base` are
  // treated as zero there.
  MetricsSnapshot Delta(const MetricsSnapshot& base) const;

  // Compact one-line JSON object:
  //   {"counters":{...},"gauges":{...},"histograms":{"name":
  //     {"count":N,"sum":N,"p50":N,"p90":N,"p99":N}}}
  std::string ToJson() const;
};

// The process-wide registry. Get* registers on first use and returns a
// pointer that stays valid for the process lifetime, so call sites cache
// it in a static (see the HTG_METRIC_* macros).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

 private:
  MetricsRegistry() = default;

  mutable Mutex mu_{"MetricsRegistry::mu_"};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      HTG_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      HTG_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      HTG_GUARDED_BY(mu_);
};

// Escapes a string for embedding in a JSON string literal (no quotes).
std::string JsonEscape(std::string_view s);

}  // namespace htg::obs

// Call-site helpers: resolve the metric once (function-local static) and
// hand back the pointer. `name` must be a string literal so each call
// site owns its static.
#define HTG_METRIC_COUNTER(name)                        \
  ([]() -> ::htg::obs::Counter* {                       \
    static ::htg::obs::Counter* metric =                \
        ::htg::obs::MetricsRegistry::Global().GetCounter(name); \
    return metric;                                      \
  }())

#define HTG_METRIC_GAUGE(name)                          \
  ([]() -> ::htg::obs::Gauge* {                         \
    static ::htg::obs::Gauge* metric =                  \
        ::htg::obs::MetricsRegistry::Global().GetGauge(name); \
    return metric;                                      \
  }())

#define HTG_METRIC_HISTOGRAM(name)                      \
  ([]() -> ::htg::obs::Histogram* {                     \
    static ::htg::obs::Histogram* metric =              \
        ::htg::obs::MetricsRegistry::Global().GetHistogram(name); \
    return metric;                                      \
  }())
