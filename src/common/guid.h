#pragma once

#include <string>

namespace htg {

// Generates a random RFC-4122-v4-style GUID string, the engine's
// `NEWID()` (used by uniqueidentifier ROWGUIDCOL columns of FileStream
// tables, as in the paper's ShortReadFiles example).
std::string NewGuid();

// True if `s` looks like a 8-4-4-4-12 hex GUID.
bool IsGuid(const std::string& s);

}  // namespace htg

