#pragma once

// Annotated synchronization primitives: the only sanctioned mutex types
// in htgdb (the sync-raw-mutex lint rule bans raw std::mutex et al.
// everywhere else). The wrappers carry Clang thread-safety capability
// attributes, so a Clang build with -Wthread-safety (on by default via
// HTG_THREAD_SAFETY) statically checks that every HTG_GUARDED_BY field
// is touched only with its mutex held and every HTG_REQUIRES method is
// called only under the right lock. On GCC the attributes compile away
// to nothing and the wrappers are zero-cost shims over <mutex>.
//
// On top of the same seam sits a runtime lock-order detector (see
// synchronization.cc): when HTG_DEADLOCK_DETECT=1, every blocking
// acquisition feeds a per-thread held-lock stack into a global
// acquisition-order graph, and a would-be cycle (an A->B acquisition
// after a B->A one was recorded) aborts with both stacks printed —
// catching potential deadlocks on paths where no thread ever actually
// blocks. When the variable is unset the per-acquire cost is one
// relaxed atomic load.

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------
// Thread-safety annotation macros. Clang implements these as the
// capability attributes behind -Wthread-safety; GCC accepts the code
// with the macros expanding to nothing.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define HTG_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef HTG_THREAD_ANNOTATION
#define HTG_THREAD_ANNOTATION(x)
#endif

// On a type: instances are lockable capabilities.
#define HTG_CAPABILITY(x) HTG_THREAD_ANNOTATION(capability(x))
// On a type: RAII object that holds a capability for its lifetime.
#define HTG_SCOPED_CAPABILITY HTG_THREAD_ANNOTATION(scoped_lockable)
// On a data member: may only be read/written with the mutex held.
#define HTG_GUARDED_BY(x) HTG_THREAD_ANNOTATION(guarded_by(x))
// On a pointer member: the pointee (not the pointer) is guarded.
#define HTG_PT_GUARDED_BY(x) HTG_THREAD_ANNOTATION(pt_guarded_by(x))
// On a function: caller must hold the capability (exclusive / shared).
#define HTG_REQUIRES(...) \
  HTG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define HTG_REQUIRES_SHARED(...) \
  HTG_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
// On a function: acquires / releases the capability.
#define HTG_ACQUIRE(...) \
  HTG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define HTG_ACQUIRE_SHARED(...) \
  HTG_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define HTG_RELEASE(...) \
  HTG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define HTG_RELEASE_SHARED(...) \
  HTG_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
// Releases however the capability was acquired (shared or exclusive);
// the right spelling for scoped-guard destructors over shared locks.
#define HTG_RELEASE_GENERIC(...) \
  HTG_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
// On a bool-returning function: acquires the capability iff it returns
// the given value.
#define HTG_TRY_ACQUIRE(...) \
  HTG_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define HTG_TRY_ACQUIRE_SHARED(...) \
  HTG_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
// On a function: caller must NOT hold the capability (deadlock guard).
#define HTG_EXCLUDES(...) HTG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// On a function: asserts the capability is held without acquiring it.
#define HTG_ASSERT_CAPABILITY(x) \
  HTG_THREAD_ANNOTATION(assert_capability(x))
// On a function returning a mutex reference.
#define HTG_RETURN_CAPABILITY(x) HTG_THREAD_ANNOTATION(lock_returned(x))
// Escape hatch. Only for documented analysis blind spots (cond-var
// adopt/release plumbing, locals shared across worker lambdas); every
// use must carry a comment saying why the code is actually safe.
#define HTG_NO_THREAD_SAFETY_ANALYSIS \
  HTG_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace htg {

// ---------------------------------------------------------------------
// Mutex: exclusive lock. Prefer the MutexLock RAII guard over manual
// Lock()/Unlock() pairs. The optional name is used by the lock-order
// detector's diagnostics; name mutexes that outlive a function scope.
class HTG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(const char* name) : name_(name) {}
  ~Mutex();

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() HTG_ACQUIRE();
  void Unlock() HTG_RELEASE();
  bool TryLock() HTG_TRY_ACQUIRE(true);

  const char* name() const { return name_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const char* name_ = "Mutex";
};

// ---------------------------------------------------------------------
// SharedMutex: writer-exclusive / reader-shared lock. Writers use
// Lock()/MutexLock, readers ReaderLock()/ReaderMutexLock.
class HTG_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(const char* name) : name_(name) {}
  ~SharedMutex();

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() HTG_ACQUIRE();
  void Unlock() HTG_RELEASE();
  bool TryLock() HTG_TRY_ACQUIRE(true);

  void ReaderLock() HTG_ACQUIRE_SHARED();
  void ReaderUnlock() HTG_RELEASE_SHARED();
  bool ReaderTryLock() HTG_TRY_ACQUIRE_SHARED(true);

  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const char* name_ = "SharedMutex";
};

// ---------------------------------------------------------------------
// MutexLock: RAII exclusive guard over either mutex type.
class HTG_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) HTG_ACQUIRE(mu) : mu_(mu) { mu->Lock(); }
  explicit MutexLock(SharedMutex* mu) HTG_ACQUIRE(mu) : smu_(mu) {
    mu->Lock();
  }
  ~MutexLock() HTG_RELEASE() {
    if (mu_ != nullptr) mu_->Unlock();
    if (smu_ != nullptr) smu_->Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_ = nullptr;
  SharedMutex* smu_ = nullptr;
};

// ReaderMutexLock: RAII shared guard.
class HTG_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) HTG_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu->ReaderLock();
  }
  ~ReaderMutexLock() HTG_RELEASE_GENERIC() { mu_->ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

// ---------------------------------------------------------------------
// CondVar: condition variable bound to Mutex. Wait() atomically
// releases the mutex, blocks, and reacquires before returning; callers
// therefore keep the capability across the call, and the analysis sees
// the lock as continuously held (which is the invariant that matters
// for guarded data: it is never touched while unlocked). Always wait
// in a loop re-checking the predicate.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) HTG_REQUIRES(mu);
  // Returns false on timeout, true if notified (predicate may still be
  // false either way; re-check in a loop).
  bool WaitFor(Mutex* mu, int64_t timeout_ms) HTG_REQUIRES(mu);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// ---------------------------------------------------------------------
// Lock-order detector controls. Detection defaults to the value of the
// HTG_DEADLOCK_DETECT env var (read once, lazily); tests flip it
// explicitly so death tests are deterministic regardless of the
// environment the runner inherited.
void SetDeadlockDetectionEnabled(bool enabled);
bool DeadlockDetectionEnabled();

}  // namespace htg
