#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace htg {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> Split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

Result<int64_t> ParseInt64(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty integer literal");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const long long v = strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer literal out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("bad integer literal: " + buf);
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty numeric literal");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const double v = strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("bad numeric literal: " + buf);
  }
  return v;
}

std::string StringPrintf(const char* format, ...) {
  va_list ap;
  va_start(ap, format);
  va_list ap_copy;
  va_copy(ap_copy, ap);
  const int len = vsnprintf(nullptr, 0, format, ap);
  va_end(ap);
  std::string out(len, '\0');
  vsnprintf(out.data(), len + 1, format, ap_copy);
  va_end(ap_copy);
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StringPrintf("%llu B", static_cast<unsigned long long>(bytes));
  return StringPrintf("%.2f %s", v, kUnits[unit]);
}

}  // namespace htg
