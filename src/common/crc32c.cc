#include "common/crc32c.h"

#include <array>

namespace htg {

namespace {

// Four 256-entry tables for slice-by-4, generated at first use.
struct Crc32cTables {
  uint32_t t[4][256];

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int b = 0; b < 8; ++b) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xff];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xff];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xff];
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const Crc32cTables& tab = Tables();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 3) != 0) {
    crc = (crc >> 8) ^ tab.t[0][(crc ^ *p++) & 0xff];
    --n;
  }
  while (n >= 4) {
    const uint32_t w = crc ^ (static_cast<uint32_t>(p[0]) |
                              (static_cast<uint32_t>(p[1]) << 8) |
                              (static_cast<uint32_t>(p[2]) << 16) |
                              (static_cast<uint32_t>(p[3]) << 24));
    crc = tab.t[3][w & 0xff] ^ tab.t[2][(w >> 8) & 0xff] ^
          tab.t[1][(w >> 16) & 0xff] ^ tab.t[0][(w >> 24) & 0xff];
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ tab.t[0][(crc ^ *p++) & 0xff];
    --n;
  }
  return ~crc;
}

}  // namespace htg
