#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace htg {

// ASCII case-insensitive equality (SQL keywords, identifiers).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Returns `s` upper-cased (ASCII only).
std::string ToUpper(std::string_view s);
// Returns `s` lower-cased (ASCII only).
std::string ToLower(std::string_view s);

// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

// Splits on a single character delimiter; empty fields are preserved.
std::vector<std::string_view> Split(std::string_view s, char delim);

// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Strict integer / double parsing (whole string must parse).
Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

// printf-style formatting into a std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

// Human-readable byte count, e.g. "1.25 MiB".
std::string HumanBytes(uint64_t bytes);

}  // namespace htg

