// Runtime lock-order detector behind the Mutex/SharedMutex wrappers.
//
// The algorithm is the classic acquisition-order graph: each thread
// keeps a stack of locks it currently holds; a blocking acquisition of
// M while holding H (top of stack) proposes the directed edge H -> M.
// Before recording a new edge we check whether M already reaches H in
// the graph — if so, some earlier execution acquired these locks in
// the opposite order, and the program has a latent deadlock even if no
// run has ever actually hung. We then print the current thread's held
// stack, the conflicting recorded ordering (with the stack captured
// when it was first seen), and abort.
//
// TryLock successes push onto the held stack (they are real holds and
// valid edge *sources*) but record no incoming edge: a non-blocking
// acquisition cannot participate in a deadlock cycle as the blocking
// step. CondVar::Wait keeps the mutex on the held stack — the wait
// releases and reacquires the same lock, which cannot introduce a new
// ordering.
//
// Everything here is gated on HTG_DEADLOCK_DETECT (or the programmatic
// override used by tests); when off, the per-acquire cost is a single
// relaxed atomic load and the graph holds no memory.
//
// This file is the one sanctioned home of raw std:: synchronization
// primitives; the sync-raw-mutex lint rule exempts it. The graph's own
// guard is a spinlock rather than a Mutex so instrumented acquisitions
// never recurse into the detector (and so the raw-mutex token stays
// out of this translation unit entirely, keeping the repo-wide grep
// for it anchored to synchronization.h alone).

#include "common/synchronization.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace htg {
namespace {

// -1 = not yet decided (read env on first use), 0 = off, 1 = on.
std::atomic<int> g_detect{-1};

bool DetectEnabledSlow() {
  const char* v = std::getenv("HTG_DEADLOCK_DETECT");
  int on = (v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0) ? 1 : 0;
  int expected = -1;
  g_detect.compare_exchange_strong(expected, on, std::memory_order_relaxed);
  return g_detect.load(std::memory_order_relaxed) == 1;
}

inline bool DetectEnabled() {
  int v = g_detect.load(std::memory_order_relaxed);
  if (v >= 0) return v == 1;
  return DetectEnabledSlow();
}

struct HeldLock {
  const void* mu;
  const char* name;
};

// Held-lock stack for the current thread. A plain thread_local vector:
// worker threads are long-lived (ThreadPool) and the stack is empty
// whenever lock/unlock pairs balance, so growth is bounded by nesting
// depth.
thread_local std::vector<HeldLock> t_held;

struct EdgeInfo {
  // Human-readable context captured when the edge was first recorded:
  // the acquiring thread's held stack at that moment.
  std::string context;
};

// Acquisition-order graph, keyed by mutex address. Nodes are purged by
// the owning Mutex/SharedMutex destructor so a recycled address cannot
// inherit stale edges.
class SpinLock {
 public:
  void lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

struct Graph {
  SpinLock mu;
  // from -> (to -> info). Presence of edges[a][b] means "a was held
  // while b was (blockingly) acquired".
  std::map<const void*, std::map<const void*, EdgeInfo>> edges;
  // Last known name per node, for diagnostics after the fact.
  std::map<const void*, const char*> names;
};

Graph& graph() {
  static Graph& g = *new Graph();
  return g;
}

// True if `from` reaches `to` in the edge graph. Iterative DFS; the
// graph only holds distinct lock *objects* (not acquisitions), so it
// is small.
bool ReachableLocked(const Graph& g, const void* from, const void* to) {
  std::vector<const void*> stack{from};
  std::set<const void*> seen;
  while (!stack.empty()) {
    const void* n = stack.back();
    stack.pop_back();
    if (n == to) return true;
    if (!seen.insert(n).second) continue;
    auto it = g.edges.find(n);
    if (it == g.edges.end()) continue;
    for (const auto& [next, info] : it->second) {
      (void)info;
      stack.push_back(next);
    }
  }
  return false;
}

std::string DescribeHeldStack() {
  std::string out;
  for (const HeldLock& h : t_held) {
    if (!out.empty()) out += " -> ";
    out += "\"";
    out += h.name;
    out += "\"";
    char buf[32];
    std::snprintf(buf, sizeof(buf), " (%p)", h.mu);
    out += buf;
  }
  if (out.empty()) out = "(none)";
  return out;
}

[[noreturn]] void DieOnInversion(const void* mu, const char* name,
                                 const char* prior_context) {
  std::fprintf(stderr,
               "[htg-sync] FATAL: lock-order inversion (potential "
               "deadlock)\n"
               "  acquiring \"%s\" (%p)\n"
               "  while holding: %s\n"
               "  conflicting prior acquisition recorded with held "
               "stack: %s\n"
               "  (HTG_DEADLOCK_DETECT=0 disables this detector)\n",
               name, mu, DescribeHeldStack().c_str(),
               prior_context == nullptr ? "(unknown)" : prior_context);
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] void DieOnSelfDeadlock(const void* mu, const char* name) {
  std::fprintf(stderr,
               "[htg-sync] FATAL: recursive acquisition of "
               "non-recursive lock \"%s\" (%p)\n"
               "  while holding: %s\n",
               name, mu, DescribeHeldStack().c_str());
  std::fflush(stderr);
  std::abort();
}

// Called before a blocking acquisition of `mu`. Checks ordering
// against the global graph, records the new edge, and pushes the lock
// onto the thread's held stack.
void OnBlockingAcquire(const void* mu, const char* name) {
  if (!DetectEnabled()) return;
  for (const HeldLock& h : t_held) {
    if (h.mu == mu) DieOnSelfDeadlock(mu, name);
  }
  if (!t_held.empty()) {
    const void* from = t_held.back().mu;
    Graph& g = graph();
    std::string prior;
    bool die = false;
    {
      std::lock_guard<SpinLock> lock(g.mu);
      g.names[mu] = name;
      auto& out = g.edges[from];
      if (out.find(mu) == out.end()) {
        if (ReachableLocked(g, mu, from)) {
          // Grab the context of the direct reverse edge if there is
          // one (the common two-lock inversion); otherwise report the
          // first hop of the cycle.
          auto rev = g.edges.find(mu);
          if (rev != g.edges.end() && !rev->second.empty()) {
            auto direct = rev->second.find(from);
            prior = (direct != rev->second.end())
                        ? direct->second.context
                        : rev->second.begin()->second.context;
          }
          die = true;
        } else {
          EdgeInfo info;
          info.context = DescribeHeldStack() + " -> acquiring \"" +
                         name + "\"";
          out.emplace(mu, std::move(info));
        }
      }
    }
    if (die) DieOnInversion(mu, name, prior.c_str());
  }
  t_held.push_back({mu, name});
}

// Called after a successful TryLock: a real hold (edge source for
// later blocking acquisitions) but not itself a blocking step, so no
// incoming edge is recorded and no cycle check runs.
void OnTryAcquire(const void* mu, const char* name) {
  if (!DetectEnabled()) return;
  t_held.push_back({mu, name});
}

void OnRelease(const void* mu) {
  if (!DetectEnabled()) return;
  // Search from the back: releases are usually LIFO, but out-of-order
  // unlock is legal. A miss means the lock was acquired before
  // detection was enabled; ignore it.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mu == mu) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

// Destructor hook: drop the node and every edge touching it so a
// later allocation at the same address starts clean.
void OnDestroy(const void* mu) {
  if (g_detect.load(std::memory_order_relaxed) != 1) return;
  Graph& g = graph();
  std::lock_guard<SpinLock> lock(g.mu);
  g.edges.erase(mu);
  for (auto& [from, out] : g.edges) {
    (void)from;
    out.erase(mu);
  }
  g.names.erase(mu);
}

}  // namespace

void SetDeadlockDetectionEnabled(bool enabled) {
  g_detect.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

bool DeadlockDetectionEnabled() { return DetectEnabled(); }

// ---------------------------------------------------------------------
// Mutex

Mutex::~Mutex() { OnDestroy(this); }

void Mutex::Lock() {
  OnBlockingAcquire(this, name_);
  mu_.lock();
}

void Mutex::Unlock() {
  mu_.unlock();
  OnRelease(this);
}

bool Mutex::TryLock() {
  if (!mu_.try_lock()) return false;
  OnTryAcquire(this, name_);
  return true;
}

// ---------------------------------------------------------------------
// SharedMutex. Reader and writer acquisitions feed the same node in
// the order graph: reader/writer ordering inversions deadlock just
// like writer/writer ones (a reader blocks behind a queued writer).

SharedMutex::~SharedMutex() { OnDestroy(this); }

void SharedMutex::Lock() {
  OnBlockingAcquire(this, name_);
  mu_.lock();
}

void SharedMutex::Unlock() {
  mu_.unlock();
  OnRelease(this);
}

bool SharedMutex::TryLock() {
  if (!mu_.try_lock()) return false;
  OnTryAcquire(this, name_);
  return true;
}

void SharedMutex::ReaderLock() {
  OnBlockingAcquire(this, name_);
  mu_.lock_shared();
}

void SharedMutex::ReaderUnlock() {
  mu_.unlock_shared();
  OnRelease(this);
}

bool SharedMutex::ReaderTryLock() {
  if (!mu_.try_lock_shared()) return false;
  OnTryAcquire(this, name_);
  return true;
}

// ---------------------------------------------------------------------
// CondVar. std::condition_variable wants a std::unique_lock, so adopt
// the already-held raw mutex and release() it afterwards — ownership
// never actually leaves the caller, which is exactly what the
// HTG_REQUIRES(mu) annotation promises. The held-lock stack likewise
// keeps the entry across the wait: the reacquisition is of a lock this
// thread already ordered, so it cannot create a new edge.

void CondVar::Wait(Mutex* mu) {
  std::unique_lock<decltype(mu->mu_)> lock(mu->mu_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
}

bool CondVar::WaitFor(Mutex* mu, int64_t timeout_ms) {
  std::unique_lock<decltype(mu->mu_)> lock(mu->mu_, std::adopt_lock);
  std::cv_status st =
      cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms));
  lock.release();
  return st == std::cv_status::no_timeout;
}

}  // namespace htg
