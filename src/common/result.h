#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace htg {

// A value-or-error holder (the StatusOr / arrow::Result idiom).
//
//   Result<int> ParsePort(std::string_view s);
//   HTG_ASSIGN_OR_RETURN(int port, ParsePort(arg));
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from a value or from an error Status keeps call
  // sites terse (`return 42;` / `return Status::NotFound(...)`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

}  // namespace htg

