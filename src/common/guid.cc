#include "common/guid.h"

#include <atomic>
#include <cctype>
#include <chrono>

#include "common/random.h"
#include "common/string_util.h"

namespace htg {

std::string NewGuid() {
  static std::atomic<uint64_t> counter{0};
  const uint64_t seed =
      static_cast<uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count()) ^
      (counter.fetch_add(1) * 0x9e3779b97f4a7c15ULL);
  Random rng(seed);
  const uint64_t hi = rng.Next();
  const uint64_t lo = rng.Next();
  return StringPrintf(
      "%08x-%04x-4%03x-%04x-%012llx",
      static_cast<uint32_t>(hi >> 32), static_cast<uint32_t>(hi >> 16) & 0xffff,
      static_cast<uint32_t>(hi) & 0xfff,
      (static_cast<uint32_t>(lo >> 48) & 0x3fff) | 0x8000,
      static_cast<unsigned long long>(lo & 0xffffffffffffULL));
}

bool IsGuid(const std::string& s) {
  if (s.size() != 36) return false;
  for (size_t i = 0; i < s.size(); ++i) {
    if (i == 8 || i == 13 || i == 18 || i == 23) {
      if (s[i] != '-') return false;
    } else if (!std::isxdigit(static_cast<unsigned char>(s[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace htg
