#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace htg {

// Error categories used across the engine. Mirrors the RocksDB/Arrow idiom:
// all fallible operations return a Status (or a Result<T>), never throw.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kCorruption,
  kIOError,
  // A fault that may clear on retry (injected EIO, interrupted syscall);
  // storage::RunWithRetries retries only this code.
  kTransient,
  // A query exceeded its memory budget and could not degrade (spilling
  // disabled or no tablespace). Statement-level: the engine reports it
  // and keeps serving subsequent queries.
  kResourceExhausted,
  kNotImplemented,
  kInternal,
  kAborted,
  kParseError,
  kBindError,
  kExecError,
};

// A success-or-error value. Cheap to copy on the OK path (empty message).
// [[nodiscard]]: dropping a returned Status on the floor is a compile
// error under -Werror; intentional drops must go through
// HTG_IGNORE_STATUS(expr) below, which logs in debug builds.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Transient(std::string msg) {
    return Status(StatusCode::kTransient, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status ExecError(std::string msg) {
    return Status(StatusCode::kExecError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsTransient() const { return code_ == StatusCode::kTransient; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  // Human-readable "CODE: message" form for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Returns the canonical name of a status code, e.g. "InvalidArgument".
std::string_view StatusCodeName(StatusCode code);

namespace internal {

// Debug-build reporter behind HTG_IGNORE_STATUS; no-op for OK statuses.
void LogIgnoredStatus(const Status& status, const char* file, int line);

inline void LogIgnoredValue(const Status& status, const char* file, int line) {
  LogIgnoredStatus(status, file, line);
}

// Overload for Result<T> (and anything else with a .status()) without
// making status.h depend on result.h.
template <typename R>
inline void LogIgnoredValue(const R& result, const char* file, int line) {
  LogIgnoredStatus(result.status(), file, line);
}

}  // namespace internal
}  // namespace htg

// Explicitly discards a Status / Result<T> where failure is acceptable
// (best-effort cleanup, close-on-error paths). This is the only sanctioned
// way to drop a [[nodiscard]] value: htg_lint forbids bare (void) casts of
// Status expressions, and debug builds log every non-OK value dropped here
// so "acceptable" failures stay visible during development.
#ifndef NDEBUG
#define HTG_IGNORE_STATUS(expr) \
  ::htg::internal::LogIgnoredValue((expr), __FILE__, __LINE__)
#else
#define HTG_IGNORE_STATUS(expr) static_cast<void>(expr)
#endif

// Propagates a non-OK Status from the enclosing function.
#define HTG_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::htg::Status _htg_status = (expr);          \
    if (!_htg_status.ok()) return _htg_status;   \
  } while (false)

// Evaluates a Result<T> expression, assigning the value on success and
// propagating the Status on failure.
#define HTG_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr)       \
  auto tmp = (rexpr);                                    \
  if (!tmp.ok()) return std::move(tmp).status();         \
  lhs = std::move(tmp).value()

#define HTG_ASSIGN_OR_RETURN_CONCAT_(a, b) a##b
#define HTG_ASSIGN_OR_RETURN_CONCAT(a, b) HTG_ASSIGN_OR_RETURN_CONCAT_(a, b)
#define HTG_ASSIGN_OR_RETURN(lhs, rexpr) \
  HTG_ASSIGN_OR_RETURN_IMPL(             \
      HTG_ASSIGN_OR_RETURN_CONCAT(_htg_result_, __LINE__), lhs, rexpr)

