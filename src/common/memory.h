#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace htg {

// Process-wide accounting of executor working-set memory. All per-query
// MemoryContexts forward their charges here, so `mem.process.peak`
// reflects the aggregate high-water mark across concurrent statements.
// Lock-free: charges come from morsel workers on the hot insert path.
class MemoryTracker {
 public:
  static MemoryTracker& Process();

  void Add(size_t bytes);
  void Release(size_t bytes);

  size_t current() const { return current_.load(std::memory_order_relaxed); }
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  std::atomic<size_t> current_{0};
  std::atomic<size_t> peak_{0};
};

// Per-query memory budget. Created once per statement (ExecContext::For)
// and shared by every operator (and morsel-worker ExecContext copy) of
// that statement via shared_ptr. Charges are *accounting estimates* of
// materialized working sets (hash tables, sort buffers, join sides), not
// malloc interception: the budget governs graceful degradation, it is
// not a hard allocator cap.
//
// Charge() always records the bytes (so peak() stays honest) and returns
// kResourceExhausted once usage exceeds the budget; the caller decides
// whether to degrade (spill) or surface the error. A budget of 0 means
// unlimited. Default-constructed contexts are unlimited with spilling
// enabled, so bare ExecContext{} uses in tests behave as before.
class MemoryContext {
 public:
  MemoryContext() : MemoryContext(0, true) {}
  MemoryContext(size_t budget_bytes, bool spill_enabled,
                MemoryTracker* tracker = &MemoryTracker::Process());
  ~MemoryContext();

  MemoryContext(const MemoryContext&) = delete;
  MemoryContext& operator=(const MemoryContext&) = delete;

  // Records `bytes` against the query (and process) totals. Returns
  // kResourceExhausted if the post-charge usage exceeds the budget; the
  // bytes remain charged either way (callers release what they do not
  // keep).
  Status Charge(size_t bytes, const char* what);

  // Records bytes without budget enforcement (state that must be built
  // regardless; peaks stay honest without re-triggering degradation).
  void ChargeUnchecked(size_t bytes);

  void Release(size_t bytes);

  // Cheap sticky check for parallel workers: true once usage crossed the
  // budget. Usage only grows while operators build state, so a true
  // result stays true for the rest of the build phase.
  bool over_budget() const {
    const size_t budget = budget_;
    return budget != 0 && used_.load(std::memory_order_relaxed) > budget;
  }

  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }
  size_t budget() const { return budget_; }
  bool unlimited() const { return budget_ == 0; }
  bool spill_enabled() const { return spill_enabled_; }

 private:
  const size_t budget_;  // 0 = unlimited
  const bool spill_enabled_;
  MemoryTracker* tracker_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
};

// RAII charge ledger for one operator (or one spill pass inside an
// operator). Thread-safe: morsel workers of a parallel operator share
// one ledger. Whatever is still held at destruction is released back to
// the MemoryContext, so error paths cannot leak accounting.
class MemoryCharge {
 public:
  explicit MemoryCharge(MemoryContext* ctx, const char* what = "operator")
      : ctx_(ctx), what_(what) {}
  ~MemoryCharge() { ReleaseAll(); }

  MemoryCharge(MemoryCharge&& other) noexcept
      : ctx_(other.ctx_),
        what_(other.what_),
        held_(other.held_.load(std::memory_order_relaxed)),
        peak_(other.peak_.load(std::memory_order_relaxed)) {
    other.ctx_ = nullptr;
    other.held_.store(0, std::memory_order_relaxed);
  }
  MemoryCharge& operator=(MemoryCharge&&) = delete;
  MemoryCharge(const MemoryCharge&) = delete;
  MemoryCharge& operator=(const MemoryCharge&) = delete;

  // Charges `bytes`; on kResourceExhausted the bytes are already
  // recorded — callers that bail out release them, callers that spill
  // release once the state is written out.
  Status Add(size_t bytes);

  // Charges without budget enforcement. Used for state that must be
  // built regardless (e.g. the final merge map of a spilled parallel
  // aggregate) so peaks stay honest without re-triggering degradation.
  void AddUnchecked(size_t bytes);

  void Release(size_t bytes);
  void ReleaseAll();

  size_t held() const { return held_.load(std::memory_order_relaxed); }
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  void Bump(size_t bytes);

  MemoryContext* ctx_;
  const char* what_;
  std::atomic<size_t> held_{0};
  std::atomic<size_t> peak_{0};
};

}  // namespace htg
