#include "common/thread_pool.h"

#include <atomic>

namespace htg {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  std::atomic<int> next{0};
  std::atomic<int> done{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  const int workers = std::min<int>(n, num_threads());
  for (int w = 0; w < workers; ++w) {
    Submit([&, n] {
      for (int i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
      {
        std::lock_guard<std::mutex> lock(done_mu);
        ++done;
      }
      done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return done == workers; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool& pool =
      *new ThreadPool(static_cast<int>(std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace htg
