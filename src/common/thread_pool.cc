#include "common/thread_pool.h"

#include <atomic>
#include <memory>

#include "common/metrics.h"

namespace htg {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  HTG_METRIC_COUNTER("threadpool.tasks.submitted")->Add(1);
  size_t depth = 0;
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  HTG_METRIC_GAUGE("threadpool.queue.depth")
      ->Set(static_cast<int64_t>(depth));
  work_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (!(queue_.empty() && active_ == 0)) idle_cv_.Wait(&mu_);
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  // The caller drains the shared index counter alongside the pool workers,
  // so completion never depends on a helper task being scheduled. This is
  // what makes nested invocation safe: a ParallelFor issued from inside a
  // pool task finishes even when every worker is busy (the helpers it
  // submitted just find the counter exhausted whenever they eventually
  // run). The state block is shared-owned because those late helpers can
  // outlive this call.
  struct State {
    std::atomic<int> next{0};
    int n = 0;
    std::function<void(int)> fn;
    Mutex mu{"ThreadPool::ParallelFor::mu"};
    CondVar cv;
    int completed HTG_GUARDED_BY(mu) = 0;
  };
  auto state = std::make_shared<State>();
  state->n = n;
  state->fn = fn;
  auto drain = [](const std::shared_ptr<State>& s) {
    for (int i = s->next.fetch_add(1); i < s->n; i = s->next.fetch_add(1)) {
      s->fn(i);
      bool all_done = false;
      {
        MutexLock lock(&s->mu);
        all_done = ++s->completed == s->n;
      }
      if (all_done) s->cv.NotifyAll();
    }
  };
  const int helpers = std::min<int>(n, num_threads() + 1) - 1;
  for (int w = 0; w < helpers; ++w) {
    Submit([state, drain] { drain(state); });
  }
  drain(state);
  MutexLock lock(&state->mu);
  while (state->completed != state->n) state->cv.Wait(&state->mu);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty()) work_cv_.Wait(&mu_);
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    HTG_METRIC_COUNTER("threadpool.tasks.executed")->Add(1);
    task();
    {
      MutexLock lock(&mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.NotifyAll();
    }
  }
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool& pool =
      *new ThreadPool(static_cast<int>(std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace htg
