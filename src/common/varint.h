#pragma once

#include <cstdint>
#include <string>

namespace htg {

// LEB128-style variable-length integer codecs. These are the workhorse of
// ROW compression in the storage engine: small integers (ids, lane/tile
// numbers) shrink from 4-8 bytes to 1-2.

// Appends `v` to `dst` as an unsigned varint (1-10 bytes).
void PutVarint64(std::string* dst, uint64_t v);

// Appends `v` zig-zag encoded, so small negative values stay short.
void PutVarintSigned64(std::string* dst, int64_t v);

// Decodes an unsigned varint from [p, limit). Returns the byte past the
// encoded value, or nullptr on truncation/overflow.
const char* GetVarint64(const char* p, const char* limit, uint64_t* value);

// Decodes a zig-zag signed varint.
const char* GetVarintSigned64(const char* p, const char* limit, int64_t* value);

// Number of bytes PutVarint64 would use for `v`.
int VarintLength(uint64_t v);

// Appends a length-prefixed byte string.
void PutLengthPrefixed(std::string* dst, std::string_view value);

// Decodes a length-prefixed byte string written by PutLengthPrefixed.
const char* GetLengthPrefixed(const char* p, const char* limit,
                              std::string_view* value);

}  // namespace htg

