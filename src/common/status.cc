#include "common/status.h"

#include <cstdio>

namespace htg {

namespace internal {

void LogIgnoredStatus(const Status& status, const char* file, int line) {
  if (status.ok()) return;
  std::fprintf(stderr, "[htg] %s:%d: ignored status: %s\n", file, line,
               status.ToString().c_str());
}

}  // namespace internal

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kTransient:
      return "Transient";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kExecError:
      return "ExecError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace htg
