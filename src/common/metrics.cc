#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <functional>
#include <thread>

#include "common/string_util.h"

namespace htg::obs {

namespace internal {

namespace {

// HTG_METRICS=0 (or "off") disables all metric recording for the process
// — the runtime form of the kill switch the instrumentation benches flip
// programmatically via SetMetricsEnabled().
bool MetricsEnabledFromEnv() {
  const char* env = std::getenv("HTG_METRICS");
  if (env == nullptr) return true;
  const std::string_view v(env);
  return !(v == "0" || v == "off" || v == "OFF" || v == "false");
}

}  // namespace

std::atomic<bool> g_metrics_enabled{MetricsEnabledFromEnv()};

size_t ThreadShard() {
  static thread_local const size_t shard =
      std::hash<std::thread::id>()(std::this_thread::get_id());
  return shard;
}

}  // namespace internal

bool MetricsEnabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

void Histogram::Record(uint64_t value) {
  if (!internal::g_metrics_enabled.load(std::memory_order_relaxed)) return;
  buckets_[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

uint64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  // Rank of the percentile observation, 1-based.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(p * static_cast<double>(count) + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // Bucket i holds values in [2^(i-1), 2^i); report the upper bound.
      return i == 0 ? 0 : (i >= 64 ? UINT64_MAX : (uint64_t{1} << i) - 1);
    }
  }
  return 0;
}

HistogramSnapshot HistogramSnapshot::Delta(
    const HistogramSnapshot& base) const {
  HistogramSnapshot out;
  out.count = count - base.count;
  out.sum = sum - base.sum;
  out.buckets.resize(buckets.size());
  for (size_t i = 0; i < buckets.size(); ++i) {
    const uint64_t b = i < base.buckets.size() ? base.buckets[i] : 0;
    out.buckets[i] = buckets[i] - b;
  }
  return out;
}

MetricsSnapshot MetricsSnapshot::Delta(const MetricsSnapshot& base) const {
  MetricsSnapshot out;
  for (const auto& [name, value] : counters) {
    const auto it = base.counters.find(name);
    out.counters[name] = value - (it == base.counters.end() ? 0 : it->second);
  }
  out.gauges = gauges;
  for (const auto& [name, hist] : histograms) {
    const auto it = base.histograms.find(name);
    out.histograms[name] =
        it == base.histograms.end() ? hist : hist.Delta(it->second);
  }
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    out += StringPrintf("\"%s\":%llu", JsonEscape(name).c_str(),
                        static_cast<unsigned long long>(value));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ',';
    first = false;
    out += StringPrintf("\"%s\":%lld", JsonEscape(name).c_str(),
                        static_cast<long long>(value));
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) out += ',';
    first = false;
    out += StringPrintf(
        "\"%s\":{\"count\":%llu,\"sum\":%llu,\"p50\":%llu,\"p90\":%llu,"
        "\"p99\":%llu}",
        JsonEscape(name).c_str(), static_cast<unsigned long long>(hist.count),
        static_cast<unsigned long long>(hist.sum),
        static_cast<unsigned long long>(hist.Percentile(0.50)),
        static_cast<unsigned long long>(hist.Percentile(0.90)),
        static_cast<unsigned long long>(hist.Percentile(0.99)));
  }
  out += "}}";
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaky singleton: metrics outlive every thread that might still be
  // recording at process exit.
  static MetricsRegistry& registry = *new MetricsRegistry();
  return registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot h;
    h.count = hist->count();
    h.sum = hist->sum();
    h.buckets.resize(Histogram::kBuckets);
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      h.buckets[i] = hist->bucket(i);
    }
    snap.histograms[name] = std::move(h);
  }
  return snap;
}

}  // namespace htg::obs
