#include "common/memory.h"

#include "common/metrics.h"
#include "common/string_util.h"

namespace htg {

namespace {

// Lock-free fetch-max on an atomic peak.
void UpdatePeak(std::atomic<size_t>* peak, size_t value) {
  size_t prev = peak->load(std::memory_order_relaxed);
  while (value > prev &&
         !peak->compare_exchange_weak(prev, value,
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace

MemoryTracker& MemoryTracker::Process() {
  // Leaky singleton: never destroyed, so charges racing with shutdown
  // can't touch a dead tracker.
  static MemoryTracker& tracker = *new MemoryTracker();
  return tracker;
}

void MemoryTracker::Add(size_t bytes) {
  const size_t now =
      current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  const size_t prev = peak_.load(std::memory_order_relaxed);
  if (now > prev) {
    UpdatePeak(&peak_, now);
    HTG_METRIC_GAUGE("mem.process.peak")
        ->Set(static_cast<int64_t>(peak_.load(std::memory_order_relaxed)));
  }
}

void MemoryTracker::Release(size_t bytes) {
  current_.fetch_sub(bytes, std::memory_order_relaxed);
}

MemoryContext::MemoryContext(size_t budget_bytes, bool spill_enabled,
                             MemoryTracker* tracker)
    : budget_(budget_bytes), spill_enabled_(spill_enabled),
      tracker_(tracker) {}

MemoryContext::~MemoryContext() {
  // Outstanding charges (operators destroyed without releasing) leave
  // the query context with the statement; give the bytes back to the
  // process tracker so it never drifts.
  const size_t left = used_.load(std::memory_order_relaxed);
  if (left > 0 && tracker_ != nullptr) tracker_->Release(left);
}

Status MemoryContext::Charge(size_t bytes, const char* what) {
  const size_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  UpdatePeak(&peak_, now);
  if (tracker_ != nullptr) tracker_->Add(bytes);
  if (budget_ != 0 && now > budget_) {
    return Status::ResourceExhausted(StringPrintf(
        "%s: query memory budget exceeded (%zu bytes used, budget %zu)",
        what, now, budget_));
  }
  return Status::OK();
}

void MemoryContext::ChargeUnchecked(size_t bytes) {
  const size_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  UpdatePeak(&peak_, now);
  if (tracker_ != nullptr) tracker_->Add(bytes);
}

void MemoryContext::Release(size_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
  if (tracker_ != nullptr) tracker_->Release(bytes);
}

Status MemoryCharge::Add(size_t bytes) {
  Bump(bytes);
  if (ctx_ == nullptr) return Status::OK();
  return ctx_->Charge(bytes, what_);
}

void MemoryCharge::AddUnchecked(size_t bytes) {
  Bump(bytes);
  if (ctx_ != nullptr) ctx_->ChargeUnchecked(bytes);
}

void MemoryCharge::Bump(size_t bytes) {
  const size_t now = held_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  size_t prev = peak_.load(std::memory_order_relaxed);
  while (now > prev &&
         !peak_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
  }
}

void MemoryCharge::Release(size_t bytes) {
  held_.fetch_sub(bytes, std::memory_order_relaxed);
  if (ctx_ != nullptr) ctx_->Release(bytes);
}

void MemoryCharge::ReleaseAll() {
  const size_t held = held_.exchange(0, std::memory_order_relaxed);
  if (held > 0 && ctx_ != nullptr) ctx_->Release(held);
}

}  // namespace htg
