#include "types/schema.h"

#include "common/string_util.h"

namespace htg {

int Schema::FindColumn(std::string_view name) const {
  for (int i = 0; i < num_columns(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return -1;
}

Result<int> Schema::ResolveColumn(std::string_view name) const {
  const int idx = FindColumn(name);
  if (idx < 0) {
    return Status::BindError("unknown column: " + std::string(name));
  }
  return idx;
}

std::string Schema::ToString() const {
  std::string out;
  for (int i = 0; i < num_columns(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ' ';
    out += DataTypeName(columns_[i].type);
    if (columns_[i].fixed_length > 0) {
      out += StringPrintf("(%d)", columns_[i].fixed_length);
    }
    if (columns_[i].filestream) out += " FILESTREAM";
  }
  return out;
}

}  // namespace htg
