#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace htg {

// Scalar SQL types supported by the engine. The mapping to the paper's
// T-SQL surface syntax:
//   INT              -> kInt32
//   BIGINT           -> kInt64
//   FLOAT / REAL     -> kDouble
//   BIT              -> kBool
//   CHAR(n)          -> kString with fixed_length = n (blank padded)
//   VARCHAR/NVARCHAR -> kString
//   VARBINARY(MAX)   -> kBlob
//   UNIQUEIDENTIFIER -> kGuid
enum class DataType : uint8_t {
  kBool = 0,
  kInt32,
  kInt64,
  kDouble,
  kString,
  kBlob,
  kGuid,
};

// SQL-facing name of a type, e.g. "BIGINT".
std::string_view DataTypeName(DataType type);

// True for kBool/kInt32/kInt64/kDouble.
bool IsNumeric(DataType type);

// Parses a SQL type name (case-insensitive, ignoring any "(n)" suffix,
// which the caller extracts separately). Unknown names are an error.
Result<DataType> DataTypeFromName(std::string_view name);

}  // namespace htg

