#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "types/data_type.h"

namespace htg {

// A runtime SQL value: NULL or a scalar of one of the engine's types.
// Integers are held widened to int64_t; the DataType tag preserves the
// declared width for storage encoding.
class Value {
 public:
  // NULL (untyped).
  Value() : type_(DataType::kInt32), data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(DataType::kBool, int64_t{v}); }
  static Value Int32(int32_t v) { return Value(DataType::kInt32, int64_t{v}); }
  static Value Int64(int64_t v) { return Value(DataType::kInt64, v); }
  static Value Double(double v) { return Value(DataType::kDouble, v); }
  static Value String(std::string v) {
    return Value(DataType::kString, std::move(v));
  }
  static Value Blob(std::string v) {
    return Value(DataType::kBlob, std::move(v));
  }
  static Value Guid(std::string v) {
    return Value(DataType::kGuid, std::move(v));
  }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  DataType type() const { return type_; }

  // Accessors. Preconditions: !is_null() and matching storage kind.
  bool AsBool() const { return std::get<int64_t>(data_) != 0; }
  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  double AsDouble() const {
    if (std::holds_alternative<int64_t>(data_)) {
      return static_cast<double>(std::get<int64_t>(data_));
    }
    return std::get<double>(data_);
  }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  std::string&& MoveString() && { return std::get<std::string>(std::move(data_)); }

  bool IsIntegerKind() const { return std::holds_alternative<int64_t>(data_); }
  bool IsDoubleKind() const { return std::holds_alternative<double>(data_); }
  bool IsStringKind() const {
    return std::holds_alternative<std::string>(data_);
  }

  // SQL three-valued comparison is handled by the expression evaluator;
  // Compare here is a total order used by sort/join/group operators
  // (NULL sorts first, mixed numerics compare as double).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  // Stable hash for hash-based operators (FNV over kind + bytes).
  size_t Hash() const;

  // Approximate resident bytes of this value, used by the executor's
  // memory accounting (MemoryContext charges). Counts the inline Value
  // footprint plus heap capacity of string payloads; deliberately cheap
  // rather than exact.
  size_t ApproxBytes() const {
    size_t bytes = sizeof(Value);
    if (IsStringKind()) bytes += std::get<std::string>(data_).capacity();
    return bytes;
  }

  // Display form (used by result printing and CSV export).
  std::string ToString() const;

  // Casts to `target`, erroring on lossy/non-sensible conversions.
  Result<Value> CastTo(DataType target) const;

 private:
  Value(DataType type, int64_t v) : type_(type), data_(v) {}
  Value(DataType type, double v) : type_(type), data_(v) {}
  Value(DataType type, std::string v) : type_(type), data_(std::move(v)) {}

  DataType type_;
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

// Row = tuple of values, positionally matched to an output schema.
using Row = std::vector<Value>;

// Lexicographic comparison of two rows on the given column indexes.
int CompareRowsOn(const Row& a, const Row& b, const std::vector<int>& cols);

// Approximate resident bytes of a row (vector overhead + per-value
// footprint); the unit the executor charges against query budgets.
inline size_t ApproxRowBytes(const Row& row) {
  size_t bytes = sizeof(Row) + (row.capacity() - row.size()) * sizeof(Value);
  for (const Value& v : row) bytes += v.ApproxBytes();
  return bytes;
}

}  // namespace htg

