#include "types/value.h"

#include <cmath>
#include <vector>

#include "common/string_util.h"

namespace htg {

int Value::Compare(const Value& other) const {
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;
  // Numeric kinds compare numerically even when widths differ.
  if (!IsStringKind() && !other.IsStringKind()) {
    if (IsIntegerKind() && other.IsIntegerKind()) {
      const int64_t a = AsInt64();
      const int64_t b = other.AsInt64();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    const double a = AsDouble();
    const double b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (IsStringKind() && other.IsStringKind()) {
    const int r = AsString().compare(other.AsString());
    return r < 0 ? -1 : (r > 0 ? 1 : 0);
  }
  // Mixed string/number: order numbers before strings (arbitrary but total).
  return IsStringKind() ? 1 : -1;
}

size_t Value::Hash() const {
  constexpr size_t kFnvOffset = 1469598103934665603ULL;
  constexpr size_t kFnvPrime = 1099511628211ULL;
  size_t h = kFnvOffset;
  auto mix_bytes = [&h](const char* p, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      h ^= static_cast<unsigned char>(p[i]);
      h *= kFnvPrime;
    }
  };
  if (is_null()) {
    h ^= 0x7f;
    h *= kFnvPrime;
    return h;
  }
  if (IsIntegerKind()) {
    const int64_t v = AsInt64();
    mix_bytes(reinterpret_cast<const char*>(&v), sizeof(v));
  } else if (IsDoubleKind()) {
    const double v = AsDouble();
    mix_bytes(reinterpret_cast<const char*>(&v), sizeof(v));
  } else {
    const std::string& s = AsString();
    mix_bytes(s.data(), s.size());
  }
  return h;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  switch (type_) {
    case DataType::kBool:
      return AsBool() ? "1" : "0";
    case DataType::kInt32:
    case DataType::kInt64:
      return std::to_string(AsInt64());
    case DataType::kDouble: {
      const double v = AsDouble();
      if (v == std::floor(v) && std::abs(v) < 1e15) {
        return StringPrintf("%.1f", v);
      }
      return StringPrintf("%g", v);
    }
    case DataType::kString:
    case DataType::kGuid:
      return AsString();
    case DataType::kBlob:
      return StringPrintf("<blob %zu bytes>", AsString().size());
  }
  return "?";
}

Result<Value> Value::CastTo(DataType target) const {
  if (is_null()) return Value::Null();
  if (type_ == target) return *this;
  switch (target) {
    case DataType::kBool:
      if (IsIntegerKind()) return Value::Bool(AsInt64() != 0);
      if (IsDoubleKind()) return Value::Bool(AsDouble() != 0.0);
      break;
    case DataType::kInt32:
      if (IsIntegerKind()) return Value::Int32(static_cast<int32_t>(AsInt64()));
      if (IsDoubleKind()) return Value::Int32(static_cast<int32_t>(AsDouble()));
      if (IsStringKind()) {
        HTG_ASSIGN_OR_RETURN(int64_t v, ParseInt64(AsString()));
        return Value::Int32(static_cast<int32_t>(v));
      }
      break;
    case DataType::kInt64:
      if (IsIntegerKind()) return Value::Int64(AsInt64());
      if (IsDoubleKind()) return Value::Int64(static_cast<int64_t>(AsDouble()));
      if (IsStringKind()) {
        HTG_ASSIGN_OR_RETURN(int64_t v, ParseInt64(AsString()));
        return Value::Int64(v);
      }
      break;
    case DataType::kDouble:
      if (IsIntegerKind()) return Value::Double(static_cast<double>(AsInt64()));
      if (IsStringKind()) {
        HTG_ASSIGN_OR_RETURN(double v, ParseDouble(AsString()));
        return Value::Double(v);
      }
      break;
    case DataType::kString:
      return Value::String(ToString());
    case DataType::kBlob:
      if (IsStringKind()) return Value::Blob(AsString());
      break;
    case DataType::kGuid:
      if (IsStringKind()) return Value::Guid(AsString());
      break;
  }
  return Status::InvalidArgument(
      std::string("cannot cast ") + std::string(DataTypeName(type_)) + " to " +
      std::string(DataTypeName(target)));
}

int CompareRowsOn(const Row& a, const Row& b, const std::vector<int>& cols) {
  for (int c : cols) {
    const int r = a[c].Compare(b[c]);
    if (r != 0) return r;
  }
  return 0;
}

}  // namespace htg
