#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "types/data_type.h"

namespace htg {

// One column of a table or intermediate result.
struct Column {
  std::string name;
  DataType type = DataType::kInt32;
  // For CHAR(n): the blank-padded width. 0 = variable length.
  int fixed_length = 0;
  // NCHAR/NVARCHAR: stored as UTF-16 (2 bytes per character), the SQL
  // Server 2008 behaviour that makes "straightforward" text imports
  // double in size (paper Table 1). Unicode compression arrived only in
  // 2008 R2, so ROW compression does not shrink these.
  bool utf16 = false;
  bool nullable = true;
  // SQL Server 2008 FILESTREAM attribute: the value is a reference into the
  // FileStreamStore, not inline bytes.
  bool filestream = false;
  // ROWGUIDCOL (required alongside FILESTREAM in the paper's example).
  bool rowguid = false;
};

// An ordered set of columns. Doubles as the schema of base tables and of
// every operator's output.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  void AddColumn(Column column) { columns_.push_back(std::move(column)); }

  // Index of the named column (case-insensitive), or -1.
  int FindColumn(std::string_view name) const;

  // Like FindColumn but errors with the table context on failure.
  Result<int> ResolveColumn(std::string_view name) const;

  // "name TYPE, name TYPE, ..." — used by EXPLAIN and error messages.
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace htg

