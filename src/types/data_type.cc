#include "types/data_type.h"

#include "common/string_util.h"

namespace htg {

std::string_view DataTypeName(DataType type) {
  switch (type) {
    case DataType::kBool:
      return "BIT";
    case DataType::kInt32:
      return "INT";
    case DataType::kInt64:
      return "BIGINT";
    case DataType::kDouble:
      return "FLOAT";
    case DataType::kString:
      return "VARCHAR";
    case DataType::kBlob:
      return "VARBINARY";
    case DataType::kGuid:
      return "UNIQUEIDENTIFIER";
  }
  return "?";
}

bool IsNumeric(DataType type) {
  switch (type) {
    case DataType::kBool:
    case DataType::kInt32:
    case DataType::kInt64:
    case DataType::kDouble:
      return true;
    default:
      return false;
  }
}

Result<DataType> DataTypeFromName(std::string_view name) {
  const std::string upper = ToUpper(name);
  if (upper == "BIT") return DataType::kBool;
  if (upper == "INT" || upper == "INTEGER" || upper == "SMALLINT" ||
      upper == "TINYINT") {
    return DataType::kInt32;
  }
  if (upper == "BIGINT") return DataType::kInt64;
  if (upper == "FLOAT" || upper == "REAL" || upper == "DOUBLE") {
    return DataType::kDouble;
  }
  if (upper == "CHAR" || upper == "NCHAR" || upper == "VARCHAR" ||
      upper == "NVARCHAR" || upper == "TEXT") {
    return DataType::kString;
  }
  if (upper == "VARBINARY" || upper == "BINARY" || upper == "IMAGE") {
    return DataType::kBlob;
  }
  if (upper == "UNIQUEIDENTIFIER") return DataType::kGuid;
  return Status::InvalidArgument("unknown SQL type: " + std::string(name));
}

}  // namespace htg
