#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "types/value.h"

namespace htg {

// A batch of rows in columnar layout: one Value vector per output column,
// plus an optional selection vector naming the live physical rows. This is
// the unit of the executor's vectorized (batch-at-a-time) pull path —
// operators exchange ~1024 rows per virtual call instead of one, so the
// per-row costs that dominated the Volcano path (virtual Next() dispatch,
// Row re-allocation, expression-tree walks) amortize across the batch.
//
// Layout invariants:
//   * Every column vector holds exactly num_rows() values.
//   * When has_selection(), only rows whose physical index appears in
//     selection() (in listed order) are live; otherwise all rows are.
//   * Filters narrow a batch by replacing the selection vector; they never
//     move column data. Projections emit dense (selection-free) batches.
//
// Rows cross back into row-at-a-time form only through FillRow()/
// AppendRow() — the deliberate seam where per-row UDF/TVF/CROSS APPLY
// work happens (the paper's §5.2 boundary, kept measurable on purpose).
class RowBatch {
 public:
  // Default batch size; see HTG_BATCH_ROWS / DatabaseOptions::batch_rows.
  static constexpr size_t kDefaultRows = 1024;

  RowBatch() : capacity_(kDefaultRows) {}
  explicit RowBatch(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  size_t capacity() const { return capacity_; }
  size_t num_columns() const { return columns_.size(); }

  // Physical rows present (before selection).
  size_t num_rows() const { return num_rows_; }
  bool full() const { return num_rows_ >= capacity_; }

  std::vector<Value>& column(size_t c) { return columns_[c]; }
  const std::vector<Value>& column(size_t c) const { return columns_[c]; }

  bool has_selection() const { return has_selection_; }
  const std::vector<uint32_t>& selection() const { return selection_; }

  // Replaces the selection vector (indexes must be < num_rows(), in the
  // order rows should be observed).
  void SetSelection(std::vector<uint32_t> sel) {
    selection_ = std::move(sel);
    has_selection_ = true;
  }
  void ClearSelection() {
    has_selection_ = false;
    selection_.clear();
  }

  // Live rows, and the physical index of the i-th live row.
  size_t ActiveRows() const {
    return has_selection_ ? selection_.size() : num_rows_;
  }
  size_t ActiveIndex(size_t i) const {
    return has_selection_ ? selection_[i] : i;
  }

  // Dense view of the selection for kernel calls: nullptr means rows
  // [0, count) are live.
  const uint32_t* selection_data() const {
    return has_selection_ ? selection_.data() : nullptr;
  }

  // Drops all rows and the selection; keeps column shape and capacity so
  // refills reuse the vectors' memory.
  void Clear() {
    for (std::vector<Value>& col : columns_) col.clear();
    num_rows_ = 0;
    ClearSelection();
  }

  // Reshapes to `num_columns` empty columns (also clears).
  void ResetColumns(size_t num_columns) {
    columns_.resize(num_columns);
    Clear();
  }

  // Declares the row count after columns were written directly by a batch
  // kernel. Every column must hold exactly `n` values.
  void set_num_rows(size_t n) { num_rows_ = n; }

  // Row seam: appends one row, moving its values into the columns. The
  // first append after Clear() reshapes the batch if the arity changed,
  // so a recycled batch can move between producers safely.
  void AppendRow(Row&& row) {
    if (num_rows_ == 0 && columns_.size() != row.size()) {
      columns_.resize(row.size());
    }
    for (size_t c = 0; c < columns_.size(); ++c) {
      columns_[c].push_back(c < row.size() ? std::move(row[c]) : Value::Null());
    }
    ++num_rows_;
  }

  // Row seam: copies the i-th *live* row into `row` (cleared first).
  void FillRow(size_t active_i, Row* row) const {
    FillRowAt(ActiveIndex(active_i), row);
  }

  // Row seam: copies the physical row `r` into `row` (cleared first).
  void FillRowAt(size_t r, Row* row) const {
    row->clear();
    row->reserve(columns_.size());
    for (const std::vector<Value>& col : columns_) row->push_back(col[r]);
  }

 private:
  std::vector<std::vector<Value>> columns_;
  std::vector<uint32_t> selection_;
  size_t num_rows_ = 0;
  size_t capacity_;
  bool has_selection_ = false;
};

}  // namespace htg
