#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"

namespace htg::baseline {

// Phase timings of the sequential script (the resource profile of the
// paper's Fig. 7: read everything, then process, then write).
struct ScriptBinningReport {
  uint64_t reads_total = 0;
  uint64_t unique_tags = 0;
  double read_seconds = 0;
  double process_seconds = 0;
  double write_seconds = 0;

  double TotalSeconds() const {
    return read_seconds + process_seconds + write_seconds;
  }
};

// The "26-line Perl script" stand-in (see DESIGN.md substitutions): a
// deliberately sequential, single-threaded implementation of unique-read
// binning that (1) slurps the whole FASTQ file into memory, (2) bins tags
// in a hash and ranks them, (3) writes the result file. One core, three
// strictly serial phases — the shape the paper's Fig. 7 shows.
Result<ScriptBinningReport> RunScriptBinning(const std::string& fastq_path,
                                             const std::string& output_path);

}  // namespace htg::baseline

