#include "baseline/script_binning.h"

#include <cstdio>

#include "common/stopwatch.h"
#include "genomics/formats.h"
#include "genomics/gene_expression.h"

namespace htg::baseline {

Result<ScriptBinningReport> RunScriptBinning(const std::string& fastq_path,
                                             const std::string& output_path) {
  ScriptBinningReport report;

  // Phase 1: read all data into main memory (the dark-green ramp of
  // Fig. 7).
  Stopwatch timer;
  HTG_ASSIGN_OR_RETURN(std::vector<genomics::ShortRead> reads,
                       genomics::ReadFastqFile(fastq_path));
  report.read_seconds = timer.ElapsedSeconds();
  report.reads_total = reads.size();

  // Phase 2: process sequentially on one core.
  timer.Restart();
  std::vector<genomics::TagCount> tags = genomics::BinUniqueReads(reads);
  report.process_seconds = timer.ElapsedSeconds();
  report.unique_tags = tags.size();

  // Phase 3: write the result back to disk.
  timer.Restart();
  // Raw stdio on purpose: the script baseline's write phase is what the
  // paper times against the engine's durable path.
  FILE* f = fopen(output_path.c_str(), "wb");  // NOLINT(htg-raw-io)
  if (f == nullptr) return Status::IOError("cannot create " + output_path);
  for (const genomics::TagCount& t : tags) {
    fprintf(f, "%lld\t%lld\t%s\n", static_cast<long long>(t.rank),
            static_cast<long long>(t.frequency), t.sequence.c_str());
  }
  fclose(f);
  report.write_seconds = timer.ElapsedSeconds();
  return report;
}

}  // namespace htg::baseline
