#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "genomics/aligner.h"
#include "genomics/formats.h"
#include "genomics/reference.h"

namespace htg::baseline {

// The file-centric secondary-analysis pipeline, shaped like MAQ's
// (paper §2.1): every stage materializes an intermediate file in a
// proprietary binary format —
//
//   fastq  --(ConvertFastqToBfq)-->  .bfq   (binary reads)
//   ref    --(ConvertFastaToBfa)-->  .bfa   (binary reference)
//   .bfq + .bfa --(AlignBinary)-->   .map   (binary alignments)
//   .map   --(MapToText)-->          .txt   ("human readable" output)
//
// The byte sizes of these files feed the "Files" column of Tables 1 & 2.

// Binary read file (.bfq): varint count, then per read: length-prefixed
// name, varint seq length, 2-bit packed bases with N mask, raw qualities.
Status ConvertFastqToBfq(const std::string& fastq_path,
                         const std::string& bfq_path);
Result<std::vector<genomics::ShortRead>> ReadBfq(const std::string& bfq_path);

// Binary reference (.bfa).
Status ConvertFastaToBfa(const std::string& fasta_path,
                         const std::string& bfa_path);
Result<genomics::ReferenceGenome> ReadBfa(const std::string& bfa_path);

// Aligns a .bfq against a .bfa, writing a binary .map file.
Status AlignBinary(const std::string& bfq_path, const std::string& bfa_path,
                   const std::string& map_path,
                   const genomics::AlignerOptions& options);

Result<std::vector<genomics::Alignment>> ReadMap(const std::string& map_path);

// Converts a .map to the tab-separated text form downstream scripts parse.
Status MapToText(const std::string& map_path, const std::string& text_path,
                 const genomics::ReferenceGenome& reference);

// Writes alignments as the text format directly (used by loaders/tests).
Status WriteAlignmentText(const std::string& path,
                          const std::vector<genomics::Alignment>& alignments,
                          const genomics::ReferenceGenome& reference);

}  // namespace htg::baseline

