#include "baseline/file_pipeline.h"

#include <cstdio>

#include "common/varint.h"
#include "genomics/dna_sequence.h"

namespace htg::baseline {

using genomics::Alignment;
using genomics::DnaSequence;
using genomics::ReferenceGenome;
using genomics::ShortRead;

namespace {

// The baseline deliberately bypasses the Vfs seam: it models the flat-file
// script pipeline the paper measures the engine against, including its lack
// of durability discipline — hence the htg-raw-io suppressions below.
Result<std::string> SlurpFile(const std::string& path) {
  FILE* f = fopen(path.c_str(), "rb");  // NOLINT(htg-raw-io)
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  fclose(f);
  return data;
}

Status DumpFile(const std::string& path, const std::string& data) {
  FILE* f = fopen(path.c_str(), "wb");  // NOLINT(htg-raw-io)
  if (f == nullptr) return Status::IOError("cannot create " + path);
  if (!data.empty() && fwrite(data.data(), 1, data.size(), f) != data.size()) {
    fclose(f);
    return Status::IOError("short write to " + path);
  }
  fclose(f);
  return Status::OK();
}

}  // namespace

Status ConvertFastqToBfq(const std::string& fastq_path,
                         const std::string& bfq_path) {
  HTG_ASSIGN_OR_RETURN(std::vector<ShortRead> reads,
                       genomics::ReadFastqFile(fastq_path));
  std::string out;
  PutVarint64(&out, reads.size());
  for (const ShortRead& r : reads) {
    PutLengthPrefixed(&out, r.name);
    PutLengthPrefixed(&out, DnaSequence::FromText(r.sequence).ToBlob());
    PutLengthPrefixed(&out, r.quality);
  }
  return DumpFile(bfq_path, out);
}

Result<std::vector<ShortRead>> ReadBfq(const std::string& bfq_path) {
  HTG_ASSIGN_OR_RETURN(std::string data, SlurpFile(bfq_path));
  const char* p = data.data();
  const char* limit = data.data() + data.size();
  uint64_t count = 0;
  p = GetVarint64(p, limit, &count);
  if (p == nullptr) return Status::Corruption("bad .bfq header");
  std::vector<ShortRead> reads;
  reads.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view name, blob, qual;
    p = GetLengthPrefixed(p, limit, &name);
    if (p == nullptr) return Status::Corruption("truncated .bfq");
    p = GetLengthPrefixed(p, limit, &blob);
    if (p == nullptr) return Status::Corruption("truncated .bfq");
    p = GetLengthPrefixed(p, limit, &qual);
    if (p == nullptr) return Status::Corruption("truncated .bfq");
    HTG_ASSIGN_OR_RETURN(DnaSequence seq, DnaSequence::FromBlob(blob));
    reads.push_back({std::string(name), seq.ToText(), std::string(qual)});
  }
  return reads;
}

Status ConvertFastaToBfa(const std::string& fasta_path,
                         const std::string& bfa_path) {
  HTG_ASSIGN_OR_RETURN(ReferenceGenome reference,
                       ReferenceGenome::LoadFasta(fasta_path));
  std::string out;
  PutVarint64(&out, reference.num_chromosomes());
  for (const genomics::Chromosome& chr : reference.chromosomes()) {
    PutLengthPrefixed(&out, chr.name);
    PutLengthPrefixed(&out, DnaSequence::FromText(chr.sequence).ToBlob());
  }
  return DumpFile(bfa_path, out);
}

Result<ReferenceGenome> ReadBfa(const std::string& bfa_path) {
  HTG_ASSIGN_OR_RETURN(std::string data, SlurpFile(bfa_path));
  const char* p = data.data();
  const char* limit = data.data() + data.size();
  uint64_t count = 0;
  p = GetVarint64(p, limit, &count);
  if (p == nullptr) return Status::Corruption("bad .bfa header");
  std::vector<genomics::Chromosome> chromosomes;
  chromosomes.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view name, blob;
    p = GetLengthPrefixed(p, limit, &name);
    if (p == nullptr) return Status::Corruption("truncated .bfa");
    p = GetLengthPrefixed(p, limit, &blob);
    if (p == nullptr) return Status::Corruption("truncated .bfa");
    HTG_ASSIGN_OR_RETURN(DnaSequence seq, DnaSequence::FromBlob(blob));
    chromosomes.push_back({std::string(name), seq.ToText()});
  }
  return ReferenceGenome(std::move(chromosomes));
}

Status AlignBinary(const std::string& bfq_path, const std::string& bfa_path,
                   const std::string& map_path,
                   const genomics::AlignerOptions& options) {
  HTG_ASSIGN_OR_RETURN(std::vector<ShortRead> reads, ReadBfq(bfq_path));
  HTG_ASSIGN_OR_RETURN(ReferenceGenome reference, ReadBfa(bfa_path));
  genomics::Aligner aligner(&reference, options);
  std::vector<Alignment> alignments = aligner.AlignBatch(reads);
  std::string out;
  PutVarint64(&out, alignments.size());
  for (const Alignment& a : alignments) {
    PutVarint64(&out, static_cast<uint64_t>(a.read_id));
    PutVarint64(&out, static_cast<uint64_t>(a.chromosome));
    PutVarint64(&out, static_cast<uint64_t>(a.position));
    out.push_back(a.reverse_strand ? 1 : 0);
    PutVarint64(&out, static_cast<uint64_t>(a.mismatches));
    PutVarint64(&out, static_cast<uint64_t>(a.mapping_quality));
    PutVarint64(&out, static_cast<uint64_t>(a.quality_score));
  }
  return DumpFile(map_path, out);
}

Result<std::vector<Alignment>> ReadMap(const std::string& map_path) {
  HTG_ASSIGN_OR_RETURN(std::string data, SlurpFile(map_path));
  const char* p = data.data();
  const char* limit = data.data() + data.size();
  uint64_t count = 0;
  p = GetVarint64(p, limit, &count);
  if (p == nullptr) return Status::Corruption("bad .map header");
  std::vector<Alignment> alignments;
  alignments.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Alignment a;
    uint64_t v = 0;
    p = GetVarint64(p, limit, &v);
    if (p == nullptr) return Status::Corruption("truncated .map");
    a.read_id = static_cast<int64_t>(v);
    p = GetVarint64(p, limit, &v);
    if (p == nullptr) return Status::Corruption("truncated .map");
    a.chromosome = static_cast<int>(v);
    p = GetVarint64(p, limit, &v);
    if (p == nullptr) return Status::Corruption("truncated .map");
    a.position = static_cast<int64_t>(v);
    if (p >= limit) return Status::Corruption("truncated .map");
    a.reverse_strand = *p++ != 0;
    p = GetVarint64(p, limit, &v);
    if (p == nullptr) return Status::Corruption("truncated .map");
    a.mismatches = static_cast<int>(v);
    p = GetVarint64(p, limit, &v);
    if (p == nullptr) return Status::Corruption("truncated .map");
    a.mapping_quality = static_cast<int>(v);
    p = GetVarint64(p, limit, &v);
    if (p == nullptr) return Status::Corruption("truncated .map");
    a.quality_score = static_cast<int>(v);
    alignments.push_back(a);
  }
  return alignments;
}

Status WriteAlignmentText(const std::string& path,
                          const std::vector<Alignment>& alignments,
                          const ReferenceGenome& reference) {
  FILE* f = fopen(path.c_str(), "wb");  // NOLINT(htg-raw-io)
  if (f == nullptr) return Status::IOError("cannot create " + path);
  for (const Alignment& a : alignments) {
    fprintf(f, "%lld\t%s\t%lld\t%c\t%d\t%d\t%d\n",
            static_cast<long long>(a.read_id),
            reference.chromosome(a.chromosome).name.c_str(),
            static_cast<long long>(a.position), a.reverse_strand ? '-' : '+',
            a.mismatches, a.mapping_quality, a.quality_score);
  }
  fclose(f);
  return Status::OK();
}

Status MapToText(const std::string& map_path, const std::string& text_path,
                 const ReferenceGenome& reference) {
  HTG_ASSIGN_OR_RETURN(std::vector<Alignment> alignments, ReadMap(map_path));
  return WriteAlignmentText(text_path, alignments, reference);
}

}  // namespace htg::baseline
