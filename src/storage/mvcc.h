#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/synchronization.h"

namespace htg::storage {

// Row-version MVCC primitives layered over the heap/clustered tables.
//
// The design exploits an invariant the server's lock manager already
// provides: write locks are held to commit, so at most one transaction
// writes a given table at a time, and therefore *commit order equals
// append order*. A heap never needs per-row begin/end stamps — the rows
// visible to a snapshot are always a prefix of the heap, described by a
// short list of (row-watermark, txn) ranges per table (MvccTableState).
// Clustered tables insert in key order, not append order, so their
// B+-tree entries carry a per-entry txn stamp instead.
//
// Aborts physically truncate heap tails (append-only undo) and logically
// hide clustered entries via the allocator's aborted set until a GC
// sweep rebuilds the tree without them.

// Process-wide transaction id. 0 is reserved for "frozen" rows — rows
// that predate MVCC tracking (library-mode inserts, recovered data) and
// are visible to every snapshot.
using TxnId = uint64_t;
inline constexpr TxnId kFrozenTxn = 0;

// A consistent point-in-time view: every txn id allocated before `next`
// is visible unless it was still active (or already aborted) when the
// snapshot was taken. Self-visibility is the caller's job: a transaction
// never "sees" itself through its own snapshot.
struct Snapshot {
  TxnId next = 0;
  std::vector<TxnId> active;   // sorted, ids < next
  std::vector<TxnId> aborted;  // sorted, ids < next, not yet swept

  bool Sees(TxnId id) const {
    if (id == kFrozenTxn) return true;
    if (id >= next) return false;
    return !std::binary_search(active.begin(), active.end(), id) &&
           !std::binary_search(aborted.begin(), aborted.end(), id);
  }

  bool valid() const { return next != kFrozenTxn; }
};

// Process-wide transaction-id allocator and active-set tracker. One per
// Database; sessions and the engine's implicit per-statement transactions
// share it.
class TxnManager {
 public:
  struct BeginResult {
    TxnId id = kFrozenTxn;
    Snapshot snapshot;
  };

  // Allocates a txn id and takes its snapshot atomically. The new txn is
  // in its own snapshot's active list (Sees(self) is false by design).
  BeginResult Begin();

  // Snapshot without starting a transaction (diagnostics only: the
  // returned view is not pinned against GC).
  Snapshot TakeSnapshot() const;

  void Commit(TxnId id);
  void Abort(TxnId id);

  bool IsAborted(TxnId id) const;

  // Sorted ids of aborted-but-unswept txns — what the clustered GC sweep
  // removes from trees before TrimAbortedBelow retires them.
  std::vector<TxnId> AbortedSet() const;

  // Every txn id below the horizon is settled (committed or aborted) for
  // every live snapshot: no active txn, and no snapshot held by an active
  // txn, can distinguish it from frozen history. The GC sweeps below this.
  TxnId Horizon() const;

  // Drops aborted ids < `horizon` from the set once their stamped rows
  // have been physically swept from every table.
  void TrimAbortedBelow(TxnId horizon);

  // Completed (committed + aborted) txns since the last GC sweep; the
  // opportunistic sweep trigger reads and resets it.
  uint64_t TakeCompletedSinceSweep();

  uint64_t active_count() const;

 private:
  mutable Mutex mu_;
  TxnId next_ HTG_GUARDED_BY(mu_) = 1;
  // Active txn id -> the low bound of its snapshot (the smallest txn id
  // it can still consider in-flight). The horizon is the min over these.
  std::vector<std::pair<TxnId, TxnId>> active_ HTG_GUARDED_BY(mu_);
  std::vector<TxnId> aborted_ HTG_GUARDED_BY(mu_);  // sorted
  uint64_t completed_since_sweep_ HTG_GUARDED_BY(mu_) = 0;
};

// Per-table MVCC bookkeeping: which row-count watermarks were published
// by which transactions. Because write locks serialize writers per table,
// the committed history is a monotone sequence of (upto_rows, txn)
// ranges; a snapshot's visible row count is the longest prefix of ranges
// whose txns it sees.
class MvccTableState {
 public:
  // Registers `txn` as the table's writer. `current_rows` is the row
  // count at first write — the undo target if the txn aborts. Folds any
  // untracked rows (library-mode inserts bypassing the txn layer) into
  // the frozen base first. Fails if another writer is already pending,
  // which the lock manager should have made impossible.
  Status BeginWrite(TxnId txn, uint64_t current_rows);

  // Publishes the writer's watermark. Call before TxnManager::Commit so
  // the range is in place the moment the txn id becomes visible.
  void CommitWrite(TxnId txn, uint64_t rows_now);

  // The row count a heap must truncate back to if `txn` aborts. Read it
  // and truncate BEFORE AbortWrite: while the pending marker is still
  // set, VisibleRows keeps hiding the doomed tail from every reader.
  uint64_t AbortTarget(TxnId txn) const;

  // Abandons the pending write; returns the row count to truncate back
  // to (heap) — the clustered path instead hides the txn's stamps via
  // the aborted set. Returns current row count if no write was pending.
  uint64_t AbortWrite(TxnId txn);

  // Rows of this table visible to `snap`, given the table currently
  // holds `current_rows` rows. `self` (the caller's txn id, or
  // kFrozenTxn) sees its own pending writes in full.
  uint64_t VisibleRows(const Snapshot& snap, TxnId self,
                       uint64_t current_rows) const;

  // The id of the most recent committed writer (kFrozenTxn if none since
  // the last GC collapse) — the first-writer-wins conflict probe.
  TxnId LastCommittedWriter() const;

  TxnId PendingWriter() const;

  // TRUNCATE drops every version; history restarts from zero rows.
  void ResetForTruncate();

  // Collapses committed ranges whose txn is below `horizon` into the
  // frozen base. Returns the number of ranges retired.
  size_t CollapseBelow(TxnId horizon);

 private:
  struct Range {
    uint64_t upto_rows = 0;  // rows [prev.upto_rows, upto_rows) ...
    TxnId txn = kFrozenTxn;  // ... were committed by this txn
  };

  mutable Mutex mu_;
  // Rows below this count are visible to everyone (pre-MVCC history and
  // GC-collapsed ranges).
  uint64_t frozen_rows_ HTG_GUARDED_BY(mu_) = 0;
  std::vector<Range> ranges_ HTG_GUARDED_BY(mu_);  // monotone upto_rows
  TxnId pending_txn_ HTG_GUARDED_BY(mu_) = kFrozenTxn;
  uint64_t pending_start_rows_ HTG_GUARDED_BY(mu_) = 0;
};

}  // namespace htg::storage
