#pragma once

#include <memory>
#include <string>
#include <vector>

#include "storage/bplus_tree.h"
#include "storage/table.h"
#include "storage/tablespace.h"

namespace htg::storage {

// A table stored in clustered-index order: rows live in a B+-tree keyed by
// the clustered key columns. Scans return rows in key order, which is what
// lets the planner pick merge joins (paper Fig. 10) and lets the
// consensus-calling UDA stream alignments in position order (§5.3.3).
//
// Rows are ROW-compression encoded in the leaves. (SQL Server would also
// allow PAGE compression on indexes; we restrict page compression to heaps
// and note it in DESIGN.md — the storage study of Tables 1/2 uses heaps.)
//
// Two payload residency modes:
//   * In-memory (default): the encoded row (plus its CRC32C trailer)
//     lives directly in the tree leaf.
//   * Pooled (AttachStorage): leaf payloads accumulate into ~8 KiB leaf
//     pages sealed into a TableFile through the shared BufferPool; the
//     tree keeps a fixed 12-byte (page, offset, length) reference per
//     row, and scans pin leaf pages via PageGuard — the B+-tree's leaf
//     level becomes cache-managed while the key level stays in memory.
//   Both modes keep the per-row CRC32C trailer; pooled pages add the
//   page-level trailer the pool verifies on every miss-fill.
class ClusteredTable : public TableStorage {
 public:
  ClusteredTable(Schema schema, std::vector<int> key_columns,
                 Compression mode);

  // Routes sealed leaf pages through `space`'s buffer pool. Must be
  // called before the first Insert.
  Status AttachStorage(TableSpace* space, const std::string& name);

  const Schema& schema() const override { return schema_; }
  Compression compression() const override { return mode_; }
  const std::vector<int>& clustered_key() const override {
    return key_columns_;
  }

  Status Insert(const Row& row) override;
  uint64_t num_rows() const override { return tree_.size(); }
  StorageStats Stats() const override;
  std::unique_ptr<RowIterator> NewScan() override;
  Result<std::unique_ptr<RowIterator>> NewScanFrom(const Row& prefix) override;
  void Truncate() override;

 private:
  class ScanIterator;

  // Seals leaf_buf_ into the backing file (page CRC trailer appended).
  Status SealLeafPage();

  Schema schema_;
  std::vector<int> key_columns_;
  Compression mode_;
  Compression row_mode_;  // encoding used in leaves (kNone or kRow)
  BPlusTree tree_;

  std::unique_ptr<TableFile> backing_;
  std::string leaf_buf_;  // payloads of the in-progress leaf page
  // Raw payload bytes stored (incl. per-row CRC trailers) — what
  // tree_.payload_bytes() reports in the in-memory mode, so Table 1/2
  // storage accounting is identical in both modes.
  uint64_t payload_bytes_total_ = 0;
};

}  // namespace htg::storage
