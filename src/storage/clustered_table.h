#pragma once

#include <memory>
#include <vector>

#include "storage/bplus_tree.h"
#include "storage/table.h"

namespace htg::storage {

// A table stored in clustered-index order: rows live in a B+-tree keyed by
// the clustered key columns. Scans return rows in key order, which is what
// lets the planner pick merge joins (paper Fig. 10) and lets the
// consensus-calling UDA stream alignments in position order (§5.3.3).
//
// Rows are ROW-compression encoded in the leaves. (SQL Server would also
// allow PAGE compression on indexes; we restrict page compression to heaps
// and note it in DESIGN.md — the storage study of Tables 1/2 uses heaps.)
class ClusteredTable : public TableStorage {
 public:
  ClusteredTable(Schema schema, std::vector<int> key_columns,
                 Compression mode);

  const Schema& schema() const override { return schema_; }
  Compression compression() const override { return mode_; }
  const std::vector<int>& clustered_key() const override {
    return key_columns_;
  }

  Status Insert(const Row& row) override;
  uint64_t num_rows() const override { return tree_.size(); }
  StorageStats Stats() const override;
  std::unique_ptr<RowIterator> NewScan() override;
  Result<std::unique_ptr<RowIterator>> NewScanFrom(const Row& prefix) override;
  void Truncate() override;

 private:
  class ScanIterator;

  Schema schema_;
  std::vector<int> key_columns_;
  Compression mode_;
  Compression row_mode_;  // encoding used in leaves (kNone or kRow)
  BPlusTree tree_;
};

}  // namespace htg::storage

