#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/synchronization.h"
#include "storage/bplus_tree.h"
#include "storage/mvcc.h"
#include "storage/table.h"
#include "storage/tablespace.h"

namespace htg::storage {

// A table stored in clustered-index order: rows live in a B+-tree keyed by
// the clustered key columns. Scans return rows in key order, which is what
// lets the planner pick merge joins (paper Fig. 10) and lets the
// consensus-calling UDA stream alignments in position order (§5.3.3).
//
// Rows are ROW-compression encoded in the leaves. (SQL Server would also
// allow PAGE compression on indexes; we restrict page compression to heaps
// and note it in DESIGN.md — the storage study of Tables 1/2 uses heaps.)
//
// Two payload residency modes:
//   * In-memory (default): the encoded row (plus its CRC32C trailer)
//     lives directly in the tree leaf.
//   * Pooled (AttachStorage): leaf payloads accumulate into ~8 KiB leaf
//     pages sealed into a TableFile through the shared BufferPool; the
//     tree keeps a fixed 12-byte (page, offset, length) reference per
//     row, and scans pin leaf pages via PageGuard — the B+-tree's leaf
//     level becomes cache-managed while the key level stays in memory.
//   Both modes keep the per-row CRC32C trailer; pooled pages add the
//   page-level trailer the pool verifies on every miss-fill.
//
// Concurrency (MVCC): every tree entry carries the txn-id stamp of its
// inserting transaction (0 = frozen). Snapshot scans (NewSnapshotScan)
// hold an internal reader/writer latch only while filling one batch and
// re-seek by (last key, visible-duplicate count) between batches, so
// they interleave with a writer transaction's inserts; entries of
// aborted transactions stay in the tree but are invisible to every
// snapshot until SweepAborted rebuilds without them. Plain NewScan
// cursors walk tree nodes unlatched across calls and still require no
// concurrent DML — the library-mode contract.
class ClusteredTable : public TableStorage {
 public:
  ClusteredTable(Schema schema, std::vector<int> key_columns,
                 Compression mode);

  // Routes sealed leaf pages through `space`'s buffer pool. Must be
  // called before the first Insert.
  Status AttachStorage(TableSpace* space, const std::string& name);

  const Schema& schema() const override { return schema_; }
  Compression compression() const override { return mode_; }
  const std::vector<int>& clustered_key() const override {
    return key_columns_;
  }

  Status Insert(const Row& row) override;
  // Insert carrying the writing transaction's id as the entry stamp.
  Status InsertStamped(const Row& row, TxnId txn);
  uint64_t num_rows() const override;
  StorageStats Stats() const override;
  std::unique_ptr<RowIterator> NewScan() override;
  Result<std::unique_ptr<RowIterator>> NewScanFrom(const Row& prefix) override;
  void Truncate() override;

  // Key-ordered scan of exactly the rows visible to `snap` (`self` sees
  // its own uncommitted inserts). Safe against concurrent InsertStamped.
  std::unique_ptr<RowIterator> NewSnapshotScan(Snapshot snap, TxnId self);
  Result<std::unique_ptr<RowIterator>> NewSnapshotScanFrom(const Row& prefix,
                                                           Snapshot snap,
                                                           TxnId self);

  // Transaction abort: `count` freshly inserted entries now belong to an
  // aborted txn. They stay in the tree (hidden by their stamps) until
  // SweepAborted; num_rows() discounts them immediately.
  void MarkAborted(uint64_t count);

  // GC: rebuilds the tree without entries stamped by a txn in `aborted`
  // (sorted). Returns the number of entries removed. Callers must ensure
  // no legacy NewScan cursor is live (snapshot scans are safe).
  uint64_t SweepAborted(const std::vector<TxnId>& aborted);

 private:
  class ScanIterator;
  class SnapshotIterator;

  // Seals leaf_buf_ into the backing file (page CRC trailer appended).
  Status SealLeafPage() HTG_REQUIRES(latch_);
  Status InsertLocked(const Row& row, TxnId txn) HTG_REQUIRES(latch_);
  // Resolves one tree payload to a decoded row (in-memory payloads decode
  // directly; pooled LeafRefs pin their leaf page into `guard`).
  Status DecodeEntryLocked(const std::string& payload, PageGuard* guard,
                           Row* row) const HTG_REQUIRES_SHARED(latch_);

  Schema schema_;
  std::vector<int> key_columns_;
  Compression mode_;
  Compression row_mode_;  // encoding used in leaves (kNone or kRow)

  mutable SharedMutex latch_{"ClusteredTable::latch_"};
  BPlusTree tree_ HTG_GUARDED_BY(latch_);
  std::string leaf_buf_ HTG_GUARDED_BY(latch_);  // in-progress leaf page
  // Raw payload bytes stored (incl. per-row CRC trailers) — what
  // tree_.payload_bytes() reports in the in-memory mode, so Table 1/2
  // storage accounting is identical in both modes.
  uint64_t payload_bytes_total_ HTG_GUARDED_BY(latch_) = 0;
  // Entries inserted by aborted txns, pending SweepAborted.
  uint64_t dead_rows_ HTG_GUARDED_BY(latch_) = 0;

  std::unique_ptr<TableFile> backing_;  // set once, before first use
};

}  // namespace htg::storage
