#include "storage/bplus_tree.h"

#include <cassert>

#include "common/metrics.h"

namespace htg::storage {

struct BPlusTree::Node {
  bool is_leaf = true;
  // Leaf: keys_[i] pairs with payloads_[i] and stamps_[i]. Internal:
  // keys_[i] is the smallest key reachable under children_[i + 1].
  std::vector<Row> keys_;
  std::vector<std::string> payloads_;
  std::vector<uint64_t> stamps_;
  std::vector<Node*> children_;
  Node* next_leaf = nullptr;

  ~Node() {
    for (Node* c : children_) delete c;
  }
};

struct BPlusTree::SplitResult {
  Node* new_node = nullptr;  // right sibling, or nullptr if no split
  Row separator;             // smallest key in new_node
};

BPlusTree::BPlusTree(int fanout) : root_(new Node()), fanout_(fanout) {
  if (fanout_ < 4) fanout_ = 4;
}

BPlusTree::~BPlusTree() { delete root_; }

void BPlusTree::Clear() {
  delete root_;
  root_ = new Node();
  size_ = 0;
  payload_bytes_ = 0;
  num_nodes_ = 1;
  height_ = 1;
}

int BPlusTree::ComparePrefix(const Row& probe, const Row& key) {
  const size_t n = std::min(probe.size(), key.size());
  for (size_t i = 0; i < n; ++i) {
    const int r = probe[i].Compare(key[i]);
    if (r != 0) return r;
  }
  return 0;  // probe prefix matches
}

namespace {

// Full-key comparison, shorter keys sort first on ties.
int CompareFull(const Row& a, const Row& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    const int r = a[i].Compare(b[i]);
    if (r != 0) return r;
  }
  if (a.size() < b.size()) return -1;
  if (a.size() > b.size()) return 1;
  return 0;
}

}  // namespace

BPlusTree::SplitResult BPlusTree::InsertInto(Node* node, Row key,
                                             std::string payload,
                                             uint64_t stamp) {
  if (node->is_leaf) {
    // Upper-bound position: equal keys insert to the right (stable).
    size_t pos = node->keys_.size();
    size_t lo = 0, hi = node->keys_.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (CompareFull(key, node->keys_[mid]) < 0) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    pos = lo;
    node->keys_.insert(node->keys_.begin() + pos, std::move(key));
    node->payloads_.insert(node->payloads_.begin() + pos, std::move(payload));
    node->stamps_.insert(node->stamps_.begin() + pos, stamp);
    if (static_cast<int>(node->keys_.size()) <= fanout_) return {};

    // Split in half.
    Node* right = new Node();
    right->is_leaf = true;
    const size_t mid = node->keys_.size() / 2;
    right->keys_.assign(std::make_move_iterator(node->keys_.begin() + mid),
                        std::make_move_iterator(node->keys_.end()));
    right->payloads_.assign(
        std::make_move_iterator(node->payloads_.begin() + mid),
        std::make_move_iterator(node->payloads_.end()));
    right->stamps_.assign(node->stamps_.begin() + mid, node->stamps_.end());
    node->keys_.resize(mid);
    node->payloads_.resize(mid);
    node->stamps_.resize(mid);
    right->next_leaf = node->next_leaf;
    node->next_leaf = right;
    ++num_nodes_;
    return {right, right->keys_.front()};
  }

  // Internal: find child to descend into.
  size_t child = 0;
  {
    size_t lo = 0, hi = node->keys_.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (CompareFull(key, node->keys_[mid]) < 0) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    child = lo;
  }
  SplitResult split = InsertInto(node->children_[child], std::move(key),
                                 std::move(payload), stamp);
  if (split.new_node == nullptr) return {};

  node->keys_.insert(node->keys_.begin() + child, std::move(split.separator));
  node->children_.insert(node->children_.begin() + child + 1, split.new_node);
  if (static_cast<int>(node->children_.size()) <= fanout_) return {};

  Node* right = new Node();
  right->is_leaf = false;
  const size_t midk = node->keys_.size() / 2;
  Row up_key = std::move(node->keys_[midk]);
  right->keys_.assign(std::make_move_iterator(node->keys_.begin() + midk + 1),
                      std::make_move_iterator(node->keys_.end()));
  right->children_.assign(node->children_.begin() + midk + 1,
                          node->children_.end());
  node->keys_.resize(midk);
  node->children_.resize(midk + 1);
  ++num_nodes_;
  return {right, std::move(up_key)};
}

void BPlusTree::Insert(Row key, std::string payload, uint64_t stamp) {
  payload_bytes_ += payload.size();
  ++size_;
  SplitResult split =
      InsertInto(root_, std::move(key), std::move(payload), stamp);
  if (split.new_node != nullptr) {
    Node* new_root = new Node();
    new_root->is_leaf = false;
    new_root->keys_.push_back(std::move(split.separator));
    new_root->children_.push_back(root_);
    new_root->children_.push_back(split.new_node);
    root_ = new_root;
    ++num_nodes_;
    ++height_;
  }
}

uint64_t BPlusTree::ApproxNodeBytes() const {
  // Rough per-entry key overhead: a Row of Values plus vector slack.
  return num_nodes_ * 64 + size_ * 24;
}

const Row& BPlusTree::Cursor::key() const {
  return static_cast<const Node*>(leaf_)->keys_[index_];
}

const std::string& BPlusTree::Cursor::payload() const {
  return static_cast<const Node*>(leaf_)->payloads_[index_];
}

uint64_t BPlusTree::Cursor::stamp() const {
  return static_cast<const Node*>(leaf_)->stamps_[index_];
}

void BPlusTree::Cursor::Advance() {
  const Node* leaf = static_cast<const Node*>(leaf_);
  ++index_;
  if (index_ >= static_cast<int>(leaf->keys_.size())) {
    leaf_ = leaf->next_leaf;
    index_ = 0;
    if (leaf_ != nullptr) HTG_METRIC_COUNTER("btree.leaf.reads")->Add(1);
    // Skip empty leaves (possible only for a fresh tree's empty root).
    while (leaf_ != nullptr &&
           static_cast<const Node*>(leaf_)->keys_.empty()) {
      leaf_ = static_cast<const Node*>(leaf_)->next_leaf;
    }
  }
}

BPlusTree::Cursor BPlusTree::First() const {
  const Node* node = root_;
  while (!node->is_leaf) node = node->children_.front();
  Cursor c;
  c.leaf_ = node->keys_.empty() ? nullptr : node;
  c.index_ = 0;
  return c;
}

BPlusTree::Cursor BPlusTree::Seek(const Row& key) const {
  HTG_METRIC_COUNTER("btree.seeks")->Add(1);
  HTG_METRIC_COUNTER("btree.node.reads")->Add(height_);
  const Node* node = root_;
  while (!node->is_leaf) {
    // First child whose subtree may contain a key >= probe: descend at the
    // lower-bound position (separator >= probe on the probe's prefix).
    size_t lo = 0, hi = node->keys_.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (ComparePrefix(key, node->keys_[mid]) <= 0) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    node = node->children_[lo];
  }
  // Lower bound within the leaf.
  size_t lo = 0, hi = node->keys_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (ComparePrefix(key, node->keys_[mid]) <= 0) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  Cursor c;
  if (lo < node->keys_.size()) {
    c.leaf_ = node;
    c.index_ = static_cast<int>(lo);
    return c;
  }
  // Past this leaf: move to the next non-empty one.
  const Node* next = node->next_leaf;
  while (next != nullptr && next->keys_.empty()) next = next->next_leaf;
  c.leaf_ = next;
  c.index_ = 0;
  return c;
}

}  // namespace htg::storage
