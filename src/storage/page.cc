#include "storage/page.h"

#include <algorithm>
#include <map>

#include "common/crc32c.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/varint.h"

namespace htg::storage {

namespace {

void PutU16(std::string* dst, uint16_t v) {
  dst->push_back(static_cast<char>(v & 0xff));
  dst->push_back(static_cast<char>(v >> 8));
}

uint16_t GetU16(const char* p) {
  return static_cast<uint16_t>(static_cast<unsigned char>(p[0]) |
                               (static_cast<unsigned char>(p[1]) << 8));
}

void PutU32(std::string* dst, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    dst->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

// Longest common prefix of a set of strings.
size_t CommonPrefixLength(const std::vector<const std::string*>& values) {
  if (values.empty()) return 0;
  size_t lcp = values[0]->size();
  for (size_t i = 1; i < values.size() && lcp > 0; ++i) {
    const std::string& s = *values[i];
    const size_t max = std::min(lcp, s.size());
    size_t j = 0;
    while (j < max && s[j] == (*values[0])[j]) ++j;
    lcp = j;
  }
  return lcp;
}

}  // namespace

PageBuilder::PageBuilder(const Schema* schema, Compression mode,
                         size_t page_size)
    : schema_(schema), mode_(mode), page_size_(page_size) {}

Status PageBuilder::Add(const Row& row) {
  const int ncols = schema_->num_columns();
  if (static_cast<int>(row.size()) != ncols) {
    return Status::Internal("row width does not match schema");
  }
  if (mode_ != Compression::kPage) {
    std::string encoded;
    HTG_RETURN_IF_ERROR(EncodeRow(*schema_, row, mode_, &encoded));
    raw_bytes_ += encoded.size() + VarintLength(encoded.size());
    encoded_rows_.push_back(std::move(encoded));
  } else {
    std::string bitmap((ncols + 7) / 8, '\0');
    std::vector<std::string> row_fields(ncols);
    for (int i = 0; i < ncols; ++i) {
      if (row[i].is_null()) {
        bitmap[i / 8] |= static_cast<char>(1 << (i % 8));
      } else {
        EncodeField(schema_->column(i), row[i], Compression::kRow,
                    &row_fields[i]);
      }
      raw_bytes_ += row_fields[i].size() + 1;
    }
    raw_bytes_ += bitmap.size();
    bitmaps_.push_back(std::move(bitmap));
    fields_.push_back(std::move(row_fields));
  }
  ++row_count_;
  return Status::OK();
}

std::string PageBuilder::Finish() {
  std::string page = mode_ == Compression::kPage ? FinishPageCompressed()
                                                 : FinishRowStream();
  // PAGE_VERIFY CHECKSUM: a CRC32C trailer over the whole page, so a torn
  // or bit-flipped page is a typed Status::Corruption at decode time, not
  // undefined behaviour.
  PutU32(&page, Crc32c(page));
  HTG_METRIC_COUNTER("page.build.ops")->Add(1);
  HTG_METRIC_COUNTER("page.build.bytes")->Add(page.size());
  encoded_rows_.clear();
  bitmaps_.clear();
  fields_.clear();
  row_count_ = 0;
  raw_bytes_ = 0;
  return page;
}

std::string PageBuilder::FinishRowStream() {
  std::string page;
  page.push_back(static_cast<char>(mode_));
  PutU16(&page, static_cast<uint16_t>(row_count_));
  for (const std::string& r : encoded_rows_) {
    PutLengthPrefixed(&page, r);
  }
  return page;
}

std::string PageBuilder::FinishPageCompressed() {
  const int ncols = schema_->num_columns();
  std::string page;
  page.push_back(static_cast<char>(Compression::kPage));
  PutU16(&page, static_cast<uint16_t>(row_count_));
  PutU16(&page, static_cast<uint16_t>(ncols));
  // Null bitmaps, back to back.
  for (const std::string& bm : bitmaps_) page.append(bm);

  for (int c = 0; c < ncols; ++c) {
    // Collect the encoded field of every non-null row in row order.
    std::vector<const std::string*> entries;
    entries.reserve(fields_.size());
    for (size_t r = 0; r < fields_.size(); ++r) {
      const bool is_null = (bitmaps_[r][c / 8] >> (c % 8)) & 1;
      if (!is_null) entries.push_back(&fields_[r][c]);
    }
    const size_t prefix_len = CommonPrefixLength(entries);
    const std::string prefix =
        entries.empty() ? std::string() : entries[0]->substr(0, prefix_len);

    // Candidate 1: dictionary of distinct suffixes.
    std::map<std::string_view, int> dict;
    size_t dict_entry_bytes = 0;
    for (const std::string* e : entries) {
      std::string_view suffix(*e);
      suffix.remove_prefix(prefix_len);
      auto [it, inserted] = dict.emplace(suffix, static_cast<int>(dict.size()));
      if (inserted) {
        dict_entry_bytes += VarintLength(suffix.size()) + suffix.size();
      }
    }
    size_t dict_ref_bytes = 0;
    for (const std::string* e : entries) {
      std::string_view suffix(*e);
      suffix.remove_prefix(prefix_len);
      dict_ref_bytes += VarintLength(dict.find(suffix)->second);
    }
    const size_t dict_cost = dict_entry_bytes + dict_ref_bytes +
                             VarintLength(dict.size());
    // Candidate 2: plain prefix-stripped suffixes.
    size_t plain_cost = 0;
    for (const std::string* e : entries) {
      const size_t n = e->size() - prefix_len;
      plain_cost += VarintLength(n) + n;
    }

    const bool use_dict = dict_cost < plain_cost;
    page.push_back(use_dict ? 1 : 0);
    PutLengthPrefixed(&page, prefix);
    if (use_dict) {
      PutVarint64(&page, dict.size());
      // Entries in id order.
      std::vector<std::string_view> by_id(dict.size());
      for (const auto& [suffix, id] : dict) by_id[id] = suffix;
      for (std::string_view s : by_id) PutLengthPrefixed(&page, s);
      for (const std::string* e : entries) {
        std::string_view suffix(*e);
        suffix.remove_prefix(prefix_len);
        PutVarint64(&page, dict.find(suffix)->second);
      }
    } else {
      for (const std::string* e : entries) {
        std::string_view suffix(*e);
        suffix.remove_prefix(prefix_len);
        PutLengthPrefixed(&page, suffix);
      }
    }
  }
  return page;
}

PageReader::PageReader(const Schema* schema, Slice page)
    : schema_(schema), page_(page) {}

Status PageReader::Init() {
  // Verify the CRC32C trailer before trusting a single header byte: any
  // flipped bit anywhere in the page (including in the trailer itself)
  // surfaces here as Status::Corruption.
  if (page_.size() < 3 + kPageChecksumBytes) {
    return Status::Corruption("page too small");
  }
  const size_t body = page_.size() - kPageChecksumBytes;
  const uint32_t expected = GetU32(page_.data() + body);
  const uint32_t actual = Crc32c(page_.data(), body);
  if (expected != actual) {
    HTG_METRIC_COUNTER("page.checksum.failures")->Add(1);
    return Status::Corruption(StringPrintf(
        "page checksum mismatch (stored %08x, computed %08x)", expected,
        actual));
  }
  HTG_METRIC_COUNTER("page.read.ops")->Add(1);
  mode_ = static_cast<Compression>(page_[0]);
  if (mode_ != Compression::kNone && mode_ != Compression::kRow &&
      mode_ != Compression::kPage) {
    return Status::Corruption("page compression byte invalid");
  }
  row_count_ = GetU16(page_.data() + 1);
  if (mode_ == Compression::kPage) {
    return InitPageCompressed(page_.data() + 3, page_.data() + body);
  }
  cursor_ = page_.data() + 3;
  limit_ = page_.data() + body;
  return Status::OK();
}

Status PageReader::InitPageCompressed(const char* p, const char* limit) {
  if (limit - p < 2) return Status::Corruption("page header truncated");
  const int ncols = GetU16(p);
  p += 2;
  if (ncols != schema_->num_columns()) {
    return Status::Corruption("page column count does not match schema");
  }
  const int bitmap_bytes = (ncols + 7) / 8;
  if (limit - p < static_cast<ptrdiff_t>(row_count_) * bitmap_bytes) {
    return Status::Corruption("page bitmaps truncated");
  }
  const char* bitmaps = p;
  p += static_cast<size_t>(row_count_) * bitmap_bytes;

  decoded_.assign(row_count_, Row(ncols));
  for (int c = 0; c < ncols; ++c) {
    if (p >= limit) return Status::Corruption("page column truncated");
    const bool use_dict = *p++ != 0;
    std::string_view prefix;
    p = GetLengthPrefixed(p, limit, &prefix);
    if (p == nullptr) return Status::Corruption("page prefix truncated");

    std::vector<std::string_view> dict_entries;
    if (use_dict) {
      uint64_t dict_size = 0;
      p = GetVarint64(p, limit, &dict_size);
      if (p == nullptr) return Status::Corruption("page dict truncated");
      dict_entries.resize(dict_size);
      for (uint64_t i = 0; i < dict_size; ++i) {
        p = GetLengthPrefixed(p, limit, &dict_entries[i]);
        if (p == nullptr) return Status::Corruption("page dict truncated");
      }
    }
    std::string field;
    for (int r = 0; r < row_count_; ++r) {
      const char* bm = bitmaps + static_cast<size_t>(r) * bitmap_bytes;
      const bool is_null = (bm[c / 8] >> (c % 8)) & 1;
      if (is_null) {
        decoded_[r][c] = Value::Null();
        continue;
      }
      std::string_view suffix;
      if (use_dict) {
        uint64_t id = 0;
        p = GetVarint64(p, limit, &id);
        if (p == nullptr || id >= dict_entries.size()) {
          return Status::Corruption("page dict reference corrupt");
        }
        suffix = dict_entries[id];
      } else {
        p = GetLengthPrefixed(p, limit, &suffix);
        if (p == nullptr) return Status::Corruption("page field truncated");
      }
      field.assign(prefix);
      field.append(suffix);
      const char* end =
          DecodeField(schema_->column(c), Compression::kRow, field.data(),
                      field.data() + field.size(), &decoded_[r][c]);
      if (end == nullptr) {
        return Status::Corruption("page field undecodable: " +
                                  schema_->column(c).name);
      }
    }
  }
  return Status::OK();
}

bool PageReader::Next(Row* row) {
  if (!status_.ok()) return false;
  if (next_row_ >= row_count_) return false;
  if (mode_ == Compression::kPage) {
    *row = decoded_[next_row_++];
    return true;
  }
  std::string_view encoded;
  cursor_ = GetLengthPrefixed(cursor_, limit_, &encoded);
  if (cursor_ == nullptr) {
    status_ = Status::Corruption("page row stream truncated");
    return false;
  }
  status_ = DecodeRow(*schema_, mode_, Slice(encoded), row);
  if (!status_.ok()) return false;
  ++next_row_;
  return true;
}

}  // namespace htg::storage
