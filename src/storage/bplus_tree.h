#pragma once

#include <memory>
#include <string>
#include <vector>

#include "types/value.h"

namespace htg::storage {

// An in-memory B+-tree mapping composite SQL keys to opaque payloads
// (encoded rows). Duplicate keys are allowed (inserted after existing
// equals), which clustered Alignment tables rely on: many alignments share
// one (chromosome, position) key. Leaves are chained for ordered scans —
// the access path behind merge joins and the sliding-window consensus UDA.
class BPlusTree {
 public:
  // Fanout: max entries per node before a split.
  explicit BPlusTree(int fanout = 64);
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  // `stamp` is an opaque per-entry tag (the MVCC layer stores the
  // creating transaction id; 0 = frozen/visible-to-all).
  void Insert(Row key, std::string payload, uint64_t stamp = 0);

  uint64_t size() const { return size_; }
  uint64_t payload_bytes() const { return payload_bytes_; }
  // Approximate structural overhead (node bookkeeping + key storage).
  uint64_t ApproxNodeBytes() const;
  int height() const { return height_; }
  uint64_t num_nodes() const { return num_nodes_; }

  void Clear();

  // Forward cursor over (key, payload) entries.
  class Cursor {
   public:
    bool Valid() const { return leaf_ != nullptr; }
    const Row& key() const;
    const std::string& payload() const;
    uint64_t stamp() const;
    void Advance();

   private:
    friend class BPlusTree;
    const void* leaf_ = nullptr;
    int index_ = 0;
  };

  // Cursor at the smallest key.
  Cursor First() const;

  // Cursor at the first entry whose key compares >= `key` on the key's
  // leading |key| columns (prefix seek).
  Cursor Seek(const Row& key) const;

 private:
  struct Node;

  // Compares a on min(|a|,|b|) leading columns, then shorter-is-smaller
  // only when exact is required; for prefix seeks a shorter probe matches.
  static int ComparePrefix(const Row& probe, const Row& key);

  struct SplitResult;
  SplitResult InsertInto(Node* node, Row key, std::string payload,
                         uint64_t stamp);

  Node* root_;
  int fanout_;
  uint64_t size_ = 0;
  uint64_t payload_bytes_ = 0;
  uint64_t num_nodes_ = 1;
  int height_ = 1;
};

}  // namespace htg::storage

