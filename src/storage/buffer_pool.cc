#include "storage/buffer_pool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>

#include "common/crc32c.h"
#include "common/metrics.h"
#include "common/status.h"
#include "storage/page.h"

namespace htg::storage {

namespace {

// Page numbers share a 64-bit key with the file id: 24 bits of file id,
// 40 bits of page number (2^40 pages of 8 KiB is 8 EiB per file).
constexpr int kPageNoBits = 40;
constexpr uint64_t kPageNoMask = (uint64_t{1} << kPageNoBits) - 1;

uint32_t TrailerCrc(std::string_view page) {
  uint32_t stored = 0;
  std::memcpy(&stored, page.data() + page.size() - kPageChecksumBytes,
              kPageChecksumBytes);
  return stored;
}

}  // namespace

struct PageGuard::Frame {
  uint64_t key = 0;
  std::string bytes;
  std::atomic<int> pins{0};
  std::atomic<bool> referenced{true};
  // Guarded by BufferPool::mu_ (exclusive): write-back state and the
  // frame's position in the CLOCK vector.
  bool dirty = false;
  size_t clock_pos = 0;
};

// A fully resolved page read: everything Fetch needs to pread + verify
// without holding any pool lock.
struct BufferPool::ReadSpec {
  const RandomAccessFile* file = nullptr;
  uint64_t offset = 0;
  size_t length = 0;
  bool checksummed = false;
};

struct BufferPool::FileInfo {
  std::unique_ptr<RandomAccessFile> file;
  PagedFileOptions options;
  struct Extent {
    uint64_t offset = 0;
    uint32_t length = 0;
  };
  // Indexed by page number; only used when options.fixed_page_bytes == 0.
  std::vector<Extent> extents;
  // Dirty page numbers form a contiguous tail of the append order, so the
  // lowest not-yet-written page is enough to drive ordered write-back.
  uint64_t next_writeback_page = 0;
  uint64_t max_dirty_page = 0;
  bool has_dirty = false;
};

PageGuard::PageGuard(PageGuard&& other) noexcept : frame_(other.frame_) {
  other.frame_ = nullptr;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    frame_ = other.frame_;
    other.frame_ = nullptr;
  }
  return *this;
}

PageGuard::~PageGuard() { Release(); }

Slice PageGuard::data() const {
  assert(frame_ != nullptr);
  return Slice(frame_->bytes);
}

uint64_t PageGuard::page_no() const {
  assert(frame_ != nullptr);
  return frame_->key & kPageNoMask;
}

void PageGuard::Release() {
  if (frame_ == nullptr) return;
  frame_->pins.fetch_sub(1, std::memory_order_release);
  HTG_METRIC_GAUGE("bufferpool.pinned")->Add(-1);
  frame_ = nullptr;
}

size_t BufferPoolCapacityFromEnv() {
  size_t mb = 64;
  if (const char* env = std::getenv("HTG_BUFFER_POOL_MB")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && parsed > 0) mb = static_cast<size_t>(parsed);
  }
  return mb << 20;
}

BufferPool::BufferPool(BufferPoolOptions options) : options_(options) {
  if (options_.capacity_bytes == 0) options_.capacity_bytes = 1;
}

BufferPool::~BufferPool() {
  // Frames die with the pool; anything dirty belongs to tables that are
  // themselves being destroyed, so there is nothing left to write back.
  // The lock is uncontended here but keeps the guarded reads honest.
  MutexLock lock(&mu_);
  HTG_METRIC_GAUGE("bufferpool.bytes")->Add(-static_cast<int64_t>(bytes_cached_));
  HTG_METRIC_GAUGE("bufferpool.frames")
      ->Add(-static_cast<int64_t>(frames_.size()));
}

uint64_t BufferPool::Key(uint32_t file_id, uint64_t page_no) {
  assert(page_no <= kPageNoMask);
  return (static_cast<uint64_t>(file_id) << kPageNoBits) | page_no;
}

uint32_t BufferPool::RegisterFile(std::unique_ptr<RandomAccessFile> file,
                                  PagedFileOptions options) {
  MutexLock lock(&mu_);
  const uint32_t id = next_file_id_++;
  auto info = std::make_unique<FileInfo>();
  info->file = std::move(file);
  info->options = std::move(options);
  files_.emplace(id, std::move(info));
  return id;
}

void BufferPool::UnregisterFile(uint32_t file_id) {
  MutexLock lock(&mu_);
  auto it = files_.find(file_id);
  if (it == files_.end()) return;
  // Collect first: RemoveFrameLocked mutates clock_.
  std::vector<Frame*> victims;
  for (auto& [key, frame] : frames_) {
    if ((key >> kPageNoBits) == file_id) victims.push_back(frame.get());
  }
  for (Frame* frame : victims) {
    assert(frame->pins.load(std::memory_order_acquire) == 0 &&
           "unregistering a file with pinned frames");
    RemoveFrameLocked(frame);
  }
  files_.erase(it);
}

void BufferPool::AddPageExtent(uint32_t file_id, uint64_t page_no,
                               uint64_t offset, uint32_t length) {
  MutexLock lock(&mu_);
  auto it = files_.find(file_id);
  assert(it != files_.end());
  FileInfo& info = *it->second;
  assert(info.options.fixed_page_bytes == 0);
  if (info.extents.size() <= page_no) info.extents.resize(page_no + 1);
  info.extents[page_no] = {offset, length};
}

Result<PageGuard> BufferPool::Fetch(uint32_t file_id, uint64_t page_no) {
  const uint64_t key = Key(file_id, page_no);
  {
    ReaderMutexLock lock(&mu_);
    auto it = frames_.find(key);
    if (it != frames_.end()) {
      Frame* frame = it->second.get();
      frame->pins.fetch_add(1, std::memory_order_acquire);
      frame->referenced.store(true, std::memory_order_relaxed);
      HTG_METRIC_COUNTER("bufferpool.hit")->Add();
      HTG_METRIC_GAUGE("bufferpool.pinned")->Add(1);
      return PageGuard(frame);
    }
  }
  HTG_METRIC_COUNTER("bufferpool.miss")->Add();

  // Resolve the read under the shared lock, then do the I/O outside it:
  // two threads missing the same page may both read it, and the loser of
  // the insert race below adopts the winner's frame.
  ReadSpec spec;
  {
    ReaderMutexLock lock(&mu_);
    auto fit = files_.find(file_id);
    if (fit == files_.end()) {
      return Status::InvalidArgument("buffer pool: unknown file id");
    }
    const FileInfo& info = *fit->second;
    if (info.file == nullptr) {
      return Status::NotFound(
          "buffer pool: page evicted from write-only file");
    }
    // The RandomAccessFile is stable while readers are active (files are
    // unregistered only on table drop/truncate), so the raw pointer stays
    // valid across the unlocked pread below.
    spec.file = info.file.get();
    spec.checksummed = info.options.checksummed;
    if (info.options.fixed_page_bytes > 0) {
      const size_t chunk = info.options.fixed_page_bytes;
      const uint64_t file_size = info.file->size();
      spec.offset = page_no * chunk;
      if (spec.offset >= file_size) {
        return Status::InvalidArgument("buffer pool: page beyond end of file");
      }
      spec.length = static_cast<size_t>(
          std::min<uint64_t>(chunk, file_size - spec.offset));
    } else {
      if (page_no >= info.extents.size() ||
          info.extents[page_no].length == 0) {
        return Status::InvalidArgument("buffer pool: page has no extent");
      }
      spec.offset = info.extents[page_no].offset;
      spec.length = info.extents[page_no].length;
    }
  }
  std::string bytes;
  HTG_ASSIGN_OR_RETURN(bytes, LoadPage(spec, file_id, page_no));

  MutexLock lock(&mu_);
  auto it = frames_.find(key);
  if (it != frames_.end()) {
    // Lost the fill race; use the resident frame.
    Frame* frame = it->second.get();
    frame->pins.fetch_add(1, std::memory_order_acquire);
    frame->referenced.store(true, std::memory_order_relaxed);
    HTG_METRIC_GAUGE("bufferpool.pinned")->Add(1);
    return PageGuard(frame);
  }
  Frame* frame = nullptr;
  HTG_RETURN_IF_ERROR(
      InsertFrameLocked(file_id, page_no, std::move(bytes), false, &frame));
  frame->pins.fetch_add(1, std::memory_order_acquire);
  HTG_METRIC_GAUGE("bufferpool.pinned")->Add(1);
  return PageGuard(frame);
}

Result<std::string> BufferPool::LoadPage(const ReadSpec& spec,
                                         uint32_t file_id,
                                         uint64_t page_no) const {
  std::string bytes(spec.length, '\0');
  HTG_ASSIGN_OR_RETURN(size_t got,
                       spec.file->ReadAt(spec.offset, bytes.data(),
                                         spec.length));
  if (got != spec.length) {
    return Status::IOError("buffer pool: short read of page " +
                           std::to_string(page_no));
  }
  if (spec.checksummed) {
    if (bytes.size() < kPageChecksumBytes ||
        Crc32c(bytes.data(), bytes.size() - kPageChecksumBytes) !=
            TrailerCrc(bytes)) {
      HTG_METRIC_COUNTER("bufferpool.checksum_failure")->Add();
      return Status::Corruption(
          "buffer pool: page checksum mismatch (file id " +
          std::to_string(file_id) + ", page " + std::to_string(page_no) + ")");
    }
  }
  return bytes;
}

Status BufferPool::PutPage(uint32_t file_id, uint64_t page_no,
                           std::string bytes, bool dirty) {
  MutexLock lock(&mu_);
  auto fit = files_.find(file_id);
  if (fit == files_.end()) {
    return Status::InvalidArgument("buffer pool: unknown file id");
  }
  auto it = frames_.find(Key(file_id, page_no));
  if (it != frames_.end()) {
    // Pages are immutable once sealed; a re-put of a resident page is a
    // truncate-then-reappend, which dropped the frame first.
    return Status::InvalidArgument("buffer pool: page already resident");
  }
  FileInfo& info = *fit->second;
  if (dirty) {
    if (!info.options.write_page) {
      return Status::InvalidArgument(
          "buffer pool: dirty page on a file without a write_page hook");
    }
    if (!info.has_dirty) {
      info.has_dirty = true;
      info.next_writeback_page = page_no;
    }
    info.max_dirty_page = page_no;
  }
  Frame* frame = nullptr;
  return InsertFrameLocked(file_id, page_no, std::move(bytes), dirty, &frame);
}

Status BufferPool::InsertFrameLocked(uint32_t file_id, uint64_t page_no,
                                     std::string bytes, bool dirty,
                                     Frame** out) {
  HTG_RETURN_IF_ERROR(EvictForLocked(bytes.size()));
  auto frame = std::make_unique<Frame>();
  frame->key = Key(file_id, page_no);
  frame->bytes = std::move(bytes);
  frame->dirty = dirty;
  frame->clock_pos = clock_.size();
  Frame* raw = frame.get();
  clock_.push_back(raw);
  bytes_cached_ += raw->bytes.size();
  frames_.emplace(raw->key, std::move(frame));
  HTG_METRIC_GAUGE("bufferpool.bytes")->Add(static_cast<int64_t>(raw->bytes.size()));
  HTG_METRIC_GAUGE("bufferpool.frames")->Add(1);
  *out = raw;
  return Status::OK();
}

Status BufferPool::EvictForLocked(size_t incoming_bytes) {
  if (bytes_cached_ + incoming_bytes <= options_.capacity_bytes) {
    return Status::OK();
  }
  // Two full CLOCK sweeps: the first clears ref bits, the second takes
  // victims. If a third pass still finds only pinned frames, overcommit —
  // a pool must never deadlock against its own pins.
  size_t scanned = 0;
  const size_t limit = clock_.size() * 3;
  while (bytes_cached_ + incoming_bytes > options_.capacity_bytes &&
         !clock_.empty() && scanned < limit) {
    if (hand_ >= clock_.size()) hand_ = 0;
    Frame* frame = clock_[hand_];
    ++scanned;
    if (frame->pins.load(std::memory_order_acquire) > 0) {
      ++hand_;
      continue;
    }
    if (frame->referenced.exchange(false, std::memory_order_relaxed)) {
      ++hand_;
      continue;
    }
    if (frame->dirty) {
      const uint32_t file_id = static_cast<uint32_t>(frame->key >> kPageNoBits);
      HTG_RETURN_IF_ERROR(
          WriteBackLocked(file_id, frame->key & kPageNoMask));
    }
    HTG_METRIC_COUNTER("bufferpool.evict")->Add();
    RemoveFrameLocked(frame);  // keeps hand_ in place (slot now refilled)
  }
  if (bytes_cached_ + incoming_bytes > options_.capacity_bytes) {
    HTG_METRIC_COUNTER("bufferpool.overcommit")->Add();
  }
  return Status::OK();
}

Status BufferPool::WriteBackLocked(uint32_t file_id, uint64_t up_to_page) {
  auto fit = files_.find(file_id);
  assert(fit != files_.end());
  FileInfo& info = *fit->second;
  if (!info.has_dirty) return Status::OK();
  // Append-only files: everything before the victim must reach the file
  // first, so flush the ordered dirty run [next_writeback_page, up_to].
  while (info.next_writeback_page <= up_to_page && info.has_dirty) {
    const uint64_t page_no = info.next_writeback_page;
    auto it = frames_.find(Key(file_id, page_no));
    assert(it != frames_.end() && "dirty run has a hole");
    Frame* frame = it->second.get();
    assert(frame->dirty);
    HTG_RETURN_IF_ERROR(info.options.write_page(page_no, frame->bytes));
    HTG_METRIC_COUNTER("bufferpool.writeback")->Add();
    frame->dirty = false;
    if (page_no == info.max_dirty_page) {
      info.has_dirty = false;
    } else {
      info.next_writeback_page = page_no + 1;
    }
  }
  return Status::OK();
}

void BufferPool::RemoveFrameLocked(Frame* frame) {
  const size_t pos = frame->clock_pos;
  assert(clock_[pos] == frame);
  clock_[pos] = clock_.back();
  clock_[pos]->clock_pos = pos;
  clock_.pop_back();
  bytes_cached_ -= frame->bytes.size();
  HTG_METRIC_GAUGE("bufferpool.bytes")
      ->Add(-static_cast<int64_t>(frame->bytes.size()));
  HTG_METRIC_GAUGE("bufferpool.frames")->Add(-1);
  frames_.erase(frame->key);
}

void BufferPool::DropPage(uint32_t file_id, uint64_t page_no) {
  MutexLock lock(&mu_);
  auto it = frames_.find(Key(file_id, page_no));
  auto fit = files_.find(file_id);
  if (fit != files_.end()) {
    FileInfo& info = *fit->second;
    if (info.options.fixed_page_bytes == 0 &&
        page_no < info.extents.size()) {
      info.extents[page_no] = {};
    }
    if (info.has_dirty && page_no == info.max_dirty_page) {
      // Tail truncation shrinks the dirty run from the top.
      if (page_no == info.next_writeback_page) {
        info.has_dirty = false;
      } else {
        info.max_dirty_page = page_no - 1;
      }
    }
  }
  if (it == frames_.end()) return;
  Frame* frame = it->second.get();
  assert(frame->pins.load(std::memory_order_acquire) == 0 &&
         "dropping a pinned page");
  RemoveFrameLocked(frame);
}

Status BufferPool::FlushFile(uint32_t file_id) {
  MutexLock lock(&mu_);
  auto fit = files_.find(file_id);
  if (fit == files_.end()) {
    return Status::InvalidArgument("buffer pool: unknown file id");
  }
  if (!fit->second->has_dirty) return Status::OK();
  return WriteBackLocked(file_id, fit->second->max_dirty_page);
}

Status BufferPool::FlushAll() {
  MutexLock lock(&mu_);
  for (auto& [file_id, info] : files_) {
    if (!info->has_dirty) continue;
    HTG_RETURN_IF_ERROR(WriteBackLocked(file_id, info->max_dirty_page));
  }
  return Status::OK();
}

Status BufferPool::EvictAll() {
  MutexLock lock(&mu_);
  for (auto& [file_id, info] : files_) {
    if (!info->has_dirty) continue;
    HTG_RETURN_IF_ERROR(WriteBackLocked(file_id, info->max_dirty_page));
  }
  std::vector<Frame*> victims;
  victims.reserve(clock_.size());
  for (Frame* frame : clock_) {
    if (frame->pins.load(std::memory_order_acquire) == 0) {
      victims.push_back(frame);
    }
  }
  for (Frame* frame : victims) {
    HTG_METRIC_COUNTER("bufferpool.evict")->Add();
    RemoveFrameLocked(frame);
  }
  hand_ = 0;
  return Status::OK();
}

size_t BufferPool::bytes_cached() const {
  ReaderMutexLock lock(&mu_);
  return bytes_cached_;
}

size_t BufferPool::frames_cached() const {
  ReaderMutexLock lock(&mu_);
  return frames_.size();
}

}  // namespace htg::storage
