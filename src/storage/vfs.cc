#include "storage/vfs.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <thread>

#include "common/metrics.h"
#include "common/stopwatch.h"

namespace htg::storage {

namespace fs = std::filesystem;

namespace {

Status ErrnoStatus(const std::string& what, int err) {
  return Status::IOError(what + ": " + std::strerror(err));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write " + path_, errno);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    HTG_METRIC_COUNTER("vfs.write.ops")->Add(1);
    HTG_METRIC_COUNTER("vfs.write.bytes")->Add(data.size());
    return Status::OK();
  }

  Status Sync() override {
    Stopwatch sw;
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync " + path_, errno);
    HTG_METRIC_COUNTER("vfs.sync.ops")->Add(1);
    HTG_METRIC_HISTOGRAM("vfs.sync.ns")->Record(sw.ElapsedNanos());
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close " + path_, errno);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(int fd, uint64_t size) : fd_(fd), size_(size) {}

  ~PosixRandomAccessFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<size_t> ReadAt(uint64_t offset, char* buf,
                        size_t len) const override {
    size_t done = 0;
    while (done < len) {
      const ssize_t n = ::pread(fd_, buf + done, len - done,
                                static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pread", errno);
      }
      if (n == 0) break;  // EOF
      done += static_cast<size_t>(n);
    }
    HTG_METRIC_COUNTER("vfs.read.ops")->Add(1);
    HTG_METRIC_COUNTER("vfs.read.bytes")->Add(done);
    return done;
  }

  uint64_t size() const override { return size_; }

 private:
  int fd_;
  uint64_t size_;
};

class PosixVfs : public Vfs {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    return OpenWritable(path, O_WRONLY | O_CREAT | O_TRUNC);
  }

  Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override {
    return OpenWritable(path, O_WRONLY | O_CREAT | O_APPEND);
  }

  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return ErrnoStatus("open " + path, errno);
    }
    const off_t end = ::lseek(fd, 0, SEEK_END);
    if (end < 0) {
      ::close(fd);
      return ErrnoStatus("lseek " + path, errno);
    }
    return {std::make_unique<PosixRandomAccessFile>(
        fd, static_cast<uint64_t>(end))};
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    HTG_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                         NewRandomAccessFile(path));
    std::string out;
    out.resize(file->size());
    HTG_ASSIGN_OR_RETURN(size_t n, file->ReadAt(0, out.data(), out.size()));
    out.resize(n);
    return out;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename " + from + " -> " + to, errno);
    }
    return Status::OK();
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return ErrnoStatus("unlink " + path, errno);
    }
    return Status::OK();
  }

  Status CreateDirs(const std::string& path) override {
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec) {
      return Status::IOError("mkdir " + path + ": " + ec.message());
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    std::error_code ec;
    const uint64_t size = fs::file_size(path, ec);
    if (ec) return Status::NotFound("cannot stat " + path);
    return size;
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    std::error_code ec;
    std::vector<std::string> names;
    for (const auto& entry : fs::directory_iterator(path, ec)) {
      if (entry.is_regular_file()) {
        names.push_back(entry.path().filename().string());
      }
    }
    if (ec) return Status::IOError("list " + path + ": " + ec.message());
    return names;
  }

  Status SyncDir(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open dir " + path, errno);
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return ErrnoStatus("fsync dir " + path, errno);
    return Status::OK();
  }

 private:
  Result<std::unique_ptr<WritableFile>> OpenWritable(const std::string& path,
                                                     int flags) {
    const int fd = ::open(path.c_str(), flags | O_CLOEXEC, 0644);
    if (fd < 0) return ErrnoStatus("open " + path, errno);
    return {std::make_unique<PosixWritableFile>(fd, path)};
  }
};

}  // namespace

Vfs* Vfs::Default() {
  static PosixVfs vfs;
  return &vfs;
}

Status WriteFileAtomic(Vfs* vfs, const std::string& path,
                       std::string_view data) {
  const std::string tmp = path + ".tmp";
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                       vfs->NewWritableFile(tmp));
  Status status = file->Append(data);
  if (status.ok()) status = file->Sync();
  const Status close_status = file->Close();
  if (status.ok()) status = close_status;
  if (status.ok()) status = vfs->RenameFile(tmp, path);
  if (!status.ok()) {
    // Best-effort cleanup of the partial temp.
    HTG_IGNORE_STATUS(vfs->DeleteFile(tmp));
    return status;
  }
  const size_t slash = path.rfind('/');
  if (slash != std::string::npos) {
    HTG_RETURN_IF_ERROR(vfs->SyncDir(path.substr(0, slash)));
  }
  return Status::OK();
}

Status RunWithRetries(const RetryPolicy& policy,
                      const std::function<Status()>& op) {
  int backoff_us = policy.initial_backoff_us;
  Status status;
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    status = op();
    if (!status.IsTransient()) return status;
    if (attempt + 1 < policy.max_attempts) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      backoff_us *= policy.backoff_multiplier;
    }
  }
  // Exhausted: surface as a hard I/O error so callers abort the statement.
  return Status::IOError("transient I/O fault persisted after retries: " +
                         status.message());
}

}  // namespace htg::storage
