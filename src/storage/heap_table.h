#pragma once

#include <memory>
#include <string>
#include <vector>

#include "storage/page.h"
#include "storage/table.h"

namespace htg::storage {

// An append-oriented heap table: rows accumulate into a PageBuilder and
// seal into immutable serialized pages. Scans stream page by page.
class HeapTable : public TableStorage {
 public:
  HeapTable(Schema schema, Compression mode,
            size_t page_size = kDefaultPageSize);

  const Schema& schema() const override { return schema_; }
  Compression compression() const override { return mode_; }

  Status Insert(const Row& row) override;
  uint64_t num_rows() const override { return num_rows_; }
  StorageStats Stats() const override;
  std::unique_ptr<RowIterator> NewScan() override;
  void Truncate() override;

  // Scan over the page subrange [first_page, end_page) — the unit of
  // parallel-scan partitioning. Seals the in-progress page first.
  std::unique_ptr<RowIterator> NewScanRange(size_t first_page,
                                            size_t end_page);

  size_t num_pages_sealed() const { return pages_.size(); }

  // Seals the in-progress page so Stats()/scans see every row.
  void SealCurrentPage();

  // Drops rows from the tail until `target_rows` remain (transaction undo;
  // only supports undoing appends). Fails only if a surviving row from a
  // partially-dropped page cannot be re-read or re-encoded — the table is
  // left truncated to the rows that did survive.
  Status TruncateToRows(uint64_t target_rows);

  const std::vector<std::string>& pages() const { return pages_; }

 private:
  class ScanIterator;

  Schema schema_;
  Compression mode_;
  size_t page_size_;
  std::vector<std::string> pages_;
  std::vector<int> page_rows_;  // row count per sealed page
  PageBuilder builder_;
  uint64_t num_rows_ = 0;
};

}  // namespace htg::storage

