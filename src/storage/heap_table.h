#pragma once

#include <memory>
#include <string>
#include <vector>

#include "storage/page.h"
#include "storage/table.h"
#include "storage/tablespace.h"

namespace htg::storage {

// An append-oriented heap table: rows accumulate into a PageBuilder and
// seal into immutable serialized pages. Scans stream page by page.
//
// Two residency modes:
//   * In-memory (default): sealed pages live in pages_ — the mode of
//     directly constructed tables in tests and ablation benches.
//   * Pooled (AttachStorage): sealed pages go to a TableFile, i.e. into
//     the shared BufferPool as dirty frames with the spill file behind
//     them; scans pin pages via PageGuard. Database::CreateTable attaches
//     every table it creates, so SQL-visible heaps are cache-managed.
class HeapTable : public TableStorage {
 public:
  HeapTable(Schema schema, Compression mode,
            size_t page_size = kDefaultPageSize);

  // Routes sealed pages through `space`'s buffer pool (named spill file).
  // Must be called before the first Insert.
  Status AttachStorage(TableSpace* space, const std::string& name);

  const Schema& schema() const override { return schema_; }
  Compression compression() const override { return mode_; }

  Status Insert(const Row& row) override;
  uint64_t num_rows() const override { return num_rows_; }
  StorageStats Stats() const override;
  std::unique_ptr<RowIterator> NewScan() override;
  void Truncate() override;

  // Scan over the page subrange [first_page, end_page) — the unit of
  // parallel-scan partitioning. Seals the in-progress page first.
  std::unique_ptr<RowIterator> NewScanRange(size_t first_page,
                                            size_t end_page);

  size_t num_pages_sealed() const { return page_rows_.size(); }

  // Seals the in-progress page so Stats()/scans see every row. Can only
  // fail in pooled mode (page hand-off to the pool may write back).
  Status SealCurrentPage();

  // Drops rows from the tail until `target_rows` remain (transaction undo;
  // only supports undoing appends). Fails only if a surviving row from a
  // partially-dropped page cannot be re-read or re-encoded — the table is
  // left truncated to the rows that did survive.
  Status TruncateToRows(uint64_t target_rows);

 private:
  class ScanIterator;

  Schema schema_;
  Compression mode_;
  size_t page_size_;
  // In-memory mode: the sealed page images. Pooled mode: unused (the
  // pool + spill file own the images).
  std::vector<std::string> pages_;
  std::vector<int> page_rows_;        // row count per sealed page
  std::vector<uint32_t> page_bytes_;  // serialized size per sealed page
  PageBuilder builder_;
  uint64_t num_rows_ = 0;
  std::unique_ptr<TableFile> backing_;
};

}  // namespace htg::storage
