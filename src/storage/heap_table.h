#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/synchronization.h"
#include "storage/page.h"
#include "storage/table.h"
#include "storage/tablespace.h"

namespace htg::storage {

// An append-oriented heap table: rows accumulate into a PageBuilder and
// seal into immutable serialized pages. Scans stream page by page.
//
// Two residency modes:
//   * In-memory (default): sealed pages live in pages_ — the mode of
//     directly constructed tables in tests and ablation benches.
//   * Pooled (AttachStorage): sealed pages go to a TableFile, i.e. into
//     the shared BufferPool as dirty frames with the spill file behind
//     them; scans pin pages via PageGuard. Database::CreateTable attaches
//     every table it creates, so SQL-visible heaps are cache-managed.
//
// Concurrency: an internal reader/writer lock covers the page directory
// and builder, so MVCC snapshot scans (NewScanPrefix) can stream sealed
// pages while a writer transaction keeps appending. Sealed page images
// are immutable and reference-counted (in-memory mode) or pinned
// (pooled mode), so a scan never observes a page being torn down by a
// concurrent transaction abort (TruncateToRows) — visibility limits
// guarantee a snapshot reader only decodes rows that survive any abort.
class HeapTable : public TableStorage {
 public:
  HeapTable(Schema schema, Compression mode,
            size_t page_size = kDefaultPageSize);

  // Routes sealed pages through `space`'s buffer pool (named spill file).
  // Must be called before the first Insert.
  Status AttachStorage(TableSpace* space, const std::string& name);

  const Schema& schema() const override { return schema_; }
  Compression compression() const override { return mode_; }

  Status Insert(const Row& row) override;
  uint64_t num_rows() const override {
    return num_rows_.load(std::memory_order_acquire);
  }
  StorageStats Stats() const override;
  std::unique_ptr<RowIterator> NewScan() override;
  void Truncate() override;

  // Scan over the page subrange [first_page, end_page) — the unit of
  // parallel-scan partitioning. Seals the in-progress page first.
  std::unique_ptr<RowIterator> NewScanRange(size_t first_page,
                                            size_t end_page);

  // MVCC snapshot scan: exactly rows [0, row_limit), immune to appends
  // that land after the scan opens. Seals the in-progress page on demand
  // when the limit reaches into it (the rows are committed; only the
  // page image is pending).
  std::unique_ptr<RowIterator> NewScanPrefix(uint64_t row_limit);

  // Page extent covering rows [0, row_limit): parallel planners partition
  // [0, end_page) into morsels; the morsel containing the final page caps
  // it at tail_rows rows (0 = the whole page is within the limit). Seals
  // on demand like NewScanPrefix.
  struct PrefixPlan {
    size_t end_page = 0;
    uint64_t tail_rows = 0;
  };
  Result<PrefixPlan> PlanVisiblePrefix(uint64_t row_limit);

  // Range scan with the final-page cap from a PrefixPlan (morsels that do
  // not include the plan's last page pass tail_rows = 0).
  std::unique_ptr<RowIterator> NewScanRangeCapped(size_t first_page,
                                                  size_t end_page,
                                                  uint64_t tail_rows);

  size_t num_pages_sealed() const;

  // Seals the in-progress page so Stats()/scans see every row. Can only
  // fail in pooled mode (page hand-off to the pool may write back).
  Status SealCurrentPage();

  // Drops rows from the tail until `target_rows` remain (transaction undo;
  // only supports undoing appends). Fails only if a surviving row from a
  // partially-dropped page cannot be re-read or re-encoded — the table is
  // left truncated to the rows that did survive.
  Status TruncateToRows(uint64_t target_rows);

 private:
  class ScanIterator;

  Status SealLocked() HTG_REQUIRES(mu_);
  Status InsertLocked(const Row& row) HTG_REQUIRES(mu_);

  Schema schema_;
  Compression mode_;
  size_t page_size_;
  mutable SharedMutex mu_{"HeapTable::mu_"};
  // In-memory mode: the sealed page images, shared with in-flight scans
  // so a truncation cannot pull a page out from under a reader. Pooled
  // mode: unused (the pool + spill file own the images).
  std::vector<std::shared_ptr<const std::string>> pages_ HTG_GUARDED_BY(mu_);
  std::vector<int> page_rows_ HTG_GUARDED_BY(mu_);  // row count per page
  std::vector<uint32_t> page_bytes_ HTG_GUARDED_BY(mu_);  // serialized size
  uint64_t sealed_rows_ HTG_GUARDED_BY(mu_) = 0;
  PageBuilder builder_ HTG_GUARDED_BY(mu_);
  // Written under mu_ exclusive; read lock-free by num_rows().
  std::atomic<uint64_t> num_rows_{0};
  std::unique_ptr<TableFile> backing_;  // set once, before first use
};

}  // namespace htg::storage
