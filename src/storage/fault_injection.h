#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/synchronization.h"
#include "storage/vfs.h"

namespace htg::storage {

// Deterministic fault plan: which mutating operation fails, and how.
// Mutating operations (file creation, append, sync, close, rename, delete,
// directory sync) are numbered 0, 1, 2, ... in call order; the op whose
// index equals `fail_at_op` is hit. Read operations are never counted, so
// an op index identifies the same durability point regardless of how often
// the caller re-reads state.
struct FaultPlan {
  enum class Kind {
    kNone,
    // The op fails with nothing persisted (classic EIO on the syscall).
    kFail,
    // Append persists a prefix of the data (seed-chosen length), then
    // fails — the torn page / short write of a power cut mid-write.
    kTornWrite,
    // Append persists nothing and reports ENOSPC.
    kNoSpace,
    // Sync reports failure; written data stays in the OS cache (and, in
    // this simulation, in the file) but durability was never promised.
    kSyncFail,
    // The op fails with Status::Transient `transient_failures` times in a
    // row, then the device "recovers" and everything succeeds.
    kTransientEio,
  };

  Kind kind = Kind::kNone;
  // Index of the mutating op to hit; -1 disables injection.
  int64_t fail_at_op = -1;
  // kTransientEio: consecutive failures before the fault clears.
  int transient_failures = 2;
  // Varies the torn-write prefix length; defaults from HTG_FAULT_SEED.
  uint64_t seed = 0;
  // After the fault fires, every later mutating op fails too — the process
  // is "dead" until the store is reopened (the crash-recovery sweep).
  // kTransientEio ignores this (a transient fault is by definition one the
  // process survives).
  bool crash_after_fault = true;

  // Reads HTG_FAULT_SEED from the environment (0 if unset).
  static uint64_t SeedFromEnv();
};

// Read faults are planned separately from mutating ops: positioned reads
// (RandomAccessFile::ReadAt) are numbered 0, 1, 2, ... in call order, and
// the read whose index equals `fail_read_at` is hit. Keeping the two
// counters apart preserves the mutating-op numbering invariant above —
// re-reading state never shifts a durability point. The buffer-pool tests
// drive these: an injected read fault must surface as an error with no
// poisoned frame left behind, and a corrupted fill must surface as
// Status::Corruption from checksum verification.
struct ReadFaultPlan {
  enum class Kind {
    kNone,
    // The read fails with EIO; no bytes are produced.
    kFail,
    // The read succeeds but one seed-chosen byte of the returned buffer
    // is flipped — the bit-rot / misdirected-read case page checksums
    // must catch.
    kCorrupt,
  };

  Kind kind = Kind::kNone;
  // Index of the ReadAt call to hit; -1 disables injection.
  int64_t fail_read_at = -1;
  // kCorrupt: picks which byte of the read result is flipped.
  uint64_t seed = 0;
};

// A Vfs wrapper that injects the planned fault, for the crash-recovery
// sweep ("inject fault at op k, reopen, verify invariants" for k = 0..N)
// and the graceful-degradation tests. Thread-safe; one shared op counter.
class FaultInjectingVfs : public Vfs {
 public:
  FaultInjectingVfs(Vfs* base, FaultPlan plan)
      : base_(base), plan_(plan) {}

  // Total mutating ops seen so far — run once fault-free to learn N, then
  // sweep fail_at_op over [0, N).
  int64_t ops_seen() const;
  bool fault_fired() const;
  // Re-arms with a new plan and resets the op counters and crash state
  // (any armed read-fault plan is cleared too).
  void Reset(FaultPlan plan);

  // Positioned reads seen so far (counted independently of ops_seen).
  int64_t reads_seen() const;
  // Arms the read-fault plan without disturbing the mutating-op state.
  void SetReadFaults(ReadFaultPlan plan);

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override;
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status DeleteFile(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  Status SyncDir(const std::string& path) override;

 private:
  class FaultyWritableFile;
  class FaultyRandomAccessFile;

  // Decides the fate of the next mutating op. Returns OK to pass it
  // through; a non-OK status to fail it. `torn_prefix` (may be null) is set
  // to the number of bytes an Append should persist before failing, or -1
  // to persist nothing.
  Status NextOp(const std::string& what, int64_t* torn_prefix);

  // Decides the fate of the next positioned read. Returns OK to pass it
  // through; sets `*corrupt_seed` (to the plan seed) when the read should
  // succeed with a flipped byte.
  Status NextRead(const std::string& what, uint64_t* corrupt_seed);

  Vfs* base_;
  mutable Mutex mu_{"FaultInjectingVfs::mu_"};
  // The plans are mutated by Reset/SetReadFaults while fault sweeps may
  // still hold open file handles, so they are guarded like the counters.
  FaultPlan plan_ HTG_GUARDED_BY(mu_);
  ReadFaultPlan read_plan_ HTG_GUARDED_BY(mu_);
  int64_t ops_ HTG_GUARDED_BY(mu_) = 0;
  int64_t reads_ HTG_GUARDED_BY(mu_) = 0;
  int transient_left_ HTG_GUARDED_BY(mu_) = -1;  // -1 = fault not yet armed
  bool crashed_ HTG_GUARDED_BY(mu_) = false;
  bool fired_ HTG_GUARDED_BY(mu_) = false;
};

}  // namespace htg::storage

