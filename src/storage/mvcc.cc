#include "storage/mvcc.h"

#include "common/metrics.h"

namespace htg::storage {

TxnManager::BeginResult TxnManager::Begin() {
  MutexLock lock(&mu_);
  BeginResult out;
  out.id = next_++;
  out.snapshot.next = next_;
  out.snapshot.active.reserve(active_.size() + 1);
  TxnId low = out.id;
  for (const auto& [id, snap_low] : active_) {
    out.snapshot.active.push_back(id);
    low = std::min(low, id);
  }
  out.snapshot.active.push_back(out.id);  // already sorted: ids ascend
  out.snapshot.aborted = aborted_;
  active_.emplace_back(out.id, low);
  HTG_METRIC_COUNTER("txn.begun")->Add(1);
  return out;
}

Snapshot TxnManager::TakeSnapshot() const {
  MutexLock lock(&mu_);
  Snapshot snap;
  snap.next = next_;
  snap.active.reserve(active_.size());
  for (const auto& [id, low] : active_) snap.active.push_back(id);
  snap.aborted = aborted_;
  return snap;
}

void TxnManager::Commit(TxnId id) {
  MutexLock lock(&mu_);
  for (auto it = active_.begin(); it != active_.end(); ++it) {
    if (it->first == id) {
      active_.erase(it);
      break;
    }
  }
  ++completed_since_sweep_;
  HTG_METRIC_COUNTER("txn.committed")->Add(1);
}

void TxnManager::Abort(TxnId id) {
  MutexLock lock(&mu_);
  for (auto it = active_.begin(); it != active_.end(); ++it) {
    if (it->first == id) {
      active_.erase(it);
      break;
    }
  }
  aborted_.insert(std::lower_bound(aborted_.begin(), aborted_.end(), id), id);
  ++completed_since_sweep_;
  HTG_METRIC_COUNTER("txn.aborted")->Add(1);
}

bool TxnManager::IsAborted(TxnId id) const {
  MutexLock lock(&mu_);
  return std::binary_search(aborted_.begin(), aborted_.end(), id);
}

std::vector<TxnId> TxnManager::AbortedSet() const {
  MutexLock lock(&mu_);
  return aborted_;
}

TxnId TxnManager::Horizon() const {
  MutexLock lock(&mu_);
  TxnId horizon = next_;
  for (const auto& [id, low] : active_) horizon = std::min(horizon, low);
  return horizon;
}

void TxnManager::TrimAbortedBelow(TxnId horizon) {
  MutexLock lock(&mu_);
  aborted_.erase(
      aborted_.begin(),
      std::lower_bound(aborted_.begin(), aborted_.end(), horizon));
}

uint64_t TxnManager::TakeCompletedSinceSweep() {
  MutexLock lock(&mu_);
  const uint64_t n = completed_since_sweep_;
  completed_since_sweep_ = 0;
  return n;
}

uint64_t TxnManager::active_count() const {
  MutexLock lock(&mu_);
  return active_.size();
}

Status MvccTableState::BeginWrite(TxnId txn, uint64_t current_rows) {
  MutexLock lock(&mu_);
  if (pending_txn_ != kFrozenTxn && pending_txn_ != txn) {
    return Status::Internal("table already has a pending writer txn");
  }
  if (pending_txn_ == txn) return Status::OK();  // second write, same txn
  // Fold untracked (library-mode) rows into the frozen base: they were
  // inserted outside any transaction and are committed by definition.
  const uint64_t tracked =
      ranges_.empty() ? frozen_rows_ : ranges_.back().upto_rows;
  if (current_rows > tracked) {
    if (ranges_.empty()) {
      frozen_rows_ = current_rows;
    } else {
      ranges_.back().upto_rows = current_rows;
    }
  }
  pending_txn_ = txn;
  pending_start_rows_ = current_rows;
  return Status::OK();
}

void MvccTableState::CommitWrite(TxnId txn, uint64_t rows_now) {
  MutexLock lock(&mu_);
  if (pending_txn_ != txn) return;
  if (rows_now > pending_start_rows_) {
    ranges_.push_back(Range{rows_now, txn});
  }
  pending_txn_ = kFrozenTxn;
  pending_start_rows_ = 0;
}

uint64_t MvccTableState::AbortTarget(TxnId txn) const {
  MutexLock lock(&mu_);
  if (pending_txn_ != txn) {
    return ranges_.empty() ? frozen_rows_ : ranges_.back().upto_rows;
  }
  return pending_start_rows_;
}

uint64_t MvccTableState::AbortWrite(TxnId txn) {
  MutexLock lock(&mu_);
  if (pending_txn_ != txn) {
    return ranges_.empty() ? frozen_rows_ : ranges_.back().upto_rows;
  }
  const uint64_t target = pending_start_rows_;
  pending_txn_ = kFrozenTxn;
  pending_start_rows_ = 0;
  return target;
}

uint64_t MvccTableState::VisibleRows(const Snapshot& snap, TxnId self,
                                     uint64_t current_rows) const {
  MutexLock lock(&mu_);
  if (self != kFrozenTxn && pending_txn_ == self) {
    // The table's writer sees everything: first-writer-wins guarantees
    // every committed row is in its snapshot, and its own appends are
    // the only uncommitted ones.
    return current_rows;
  }
  uint64_t visible = frozen_rows_;
  for (const Range& r : ranges_) {
    if (!(snap.Sees(r.txn) || r.txn == self)) break;
    visible = r.upto_rows;
  }
  // Untracked rows beyond the watermarks (library-mode inserts) are
  // committed-by-definition, but only extend visibility when every
  // tracked range below them is visible too (prefix semantics).
  const uint64_t tracked =
      ranges_.empty() ? frozen_rows_ : ranges_.back().upto_rows;
  if (pending_txn_ == kFrozenTxn && visible == tracked &&
      current_rows > tracked) {
    visible = current_rows;
  }
  return visible;
}

TxnId MvccTableState::LastCommittedWriter() const {
  MutexLock lock(&mu_);
  return ranges_.empty() ? kFrozenTxn : ranges_.back().txn;
}

TxnId MvccTableState::PendingWriter() const {
  MutexLock lock(&mu_);
  return pending_txn_;
}

void MvccTableState::ResetForTruncate() {
  MutexLock lock(&mu_);
  frozen_rows_ = 0;
  ranges_.clear();
  pending_txn_ = kFrozenTxn;
  pending_start_rows_ = 0;
}

size_t MvccTableState::CollapseBelow(TxnId horizon) {
  MutexLock lock(&mu_);
  size_t retired = 0;
  while (!ranges_.empty() && ranges_.front().txn < horizon) {
    frozen_rows_ = ranges_.front().upto_rows;
    ranges_.erase(ranges_.begin());
    ++retired;
  }
  return retired;
}

}  // namespace htg::storage
