#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "storage/row_codec.h"
#include "types/schema.h"
#include "types/value.h"

namespace htg::storage {

// Storage-engine page size (matches SQL Server's 8 KiB pages).
inline constexpr size_t kDefaultPageSize = 8192;

// Every serialized page carries a CRC32C trailer (PAGE_VERIFY CHECKSUM):
// PageBuilder::Finish appends it, PageReader::Init verifies it and returns
// Status::Corruption on any mismatch — torn pages and bit flips are typed
// errors, never undefined behaviour at decode time.
inline constexpr size_t kPageChecksumBytes = 4;

// Accumulates rows for one page and serializes it.
//
// For NONE and ROW compression the page is a simple row stream. For PAGE
// compression the builder buffers the ROW-encoded fields of each row and,
// at Finish(), applies per-column common-prefix extraction and (when it
// pays off) per-column dictionary encoding — the "row, prefix, and
// dictionary compression over several rows" of the paper's §2.3.5. The
// dictionary scope is one page, which is exactly why page compression is
// effective on repetitive DGE tags and weak on nearly-unique 1000-Genomes
// reads (paper §5.1.2).
class PageBuilder {
 public:
  PageBuilder(const Schema* schema, Compression mode,
              size_t page_size = kDefaultPageSize);

  // Adds a row. Callers should check ShouldFlush() after each Add.
  Status Add(const Row& row);

  // True once the buffered (pre-page-compression) bytes reach the page size.
  bool ShouldFlush() const { return raw_bytes_ >= page_size_; }

  int row_count() const { return row_count_; }
  bool empty() const { return row_count_ == 0; }
  size_t raw_bytes() const { return raw_bytes_; }

  // Serializes the page and resets the builder for the next page.
  std::string Finish();

 private:
  std::string FinishRowStream();
  std::string FinishPageCompressed();

  const Schema* schema_;
  Compression mode_;
  size_t page_size_;

  // NONE/ROW: ready-to-ship encoded rows.
  std::vector<std::string> encoded_rows_;
  // PAGE: per-row null bitmap + per-row per-column encoded fields.
  std::vector<std::string> bitmaps_;
  std::vector<std::vector<std::string>> fields_;

  int row_count_ = 0;
  size_t raw_bytes_ = 0;
};

// Iterates the rows of one serialized page.
class PageReader {
 public:
  PageReader(const Schema* schema, Slice page);

  // Parses the page header (and for PAGE compression, reconstructs rows).
  Status Init();

  // Fetches the next row; returns false at end of page.
  bool Next(Row* row);

  Status status() const { return status_; }
  int row_count() const { return row_count_; }

 private:
  Status InitPageCompressed(const char* p, const char* limit);

  const Schema* schema_;
  Slice page_;
  Compression mode_ = Compression::kNone;
  int row_count_ = 0;
  int next_row_ = 0;
  const char* cursor_ = nullptr;
  const char* limit_ = nullptr;
  // PAGE mode: eagerly reconstructed rows.
  std::vector<Row> decoded_;
  Status status_;
};

}  // namespace htg::storage

