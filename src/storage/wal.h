#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/vfs.h"

namespace htg::storage {

// Record types of the FileStream store's intent log. Every durable catalog
// mutation (a blob becoming visible or being removed) is logged as an
// intent *before* the filesystem is touched and a commit *after* — the
// write-ahead protocol of a transaction log, scoped to the store's
// operations:
//
//   create:  IntentCreate(name, size, crc) -> fsync WAL -> write blob.tmp
//            -> fsync -> rename -> CommitCreate(name)
//   delete:  IntentDelete(name) -> fsync WAL -> unlink -> CommitDelete(name)
//
// Recovery (wal-replay in FileStreamStore::Open) resolves every intent
// without a matching commit against filesystem reality: a create rolls
// forward iff the blob exists complete with matching checksum, otherwise
// rolls back (removing any partial file); a delete always rolls forward
// (unlink is idempotent). A torn tail record — the expected artifact of a
// crash mid-append — is detected by the per-record CRC and ignored.
// kTxnCommit/kTxnAbort are advisory transaction-outcome markers appended
// by the MVCC layer (Database::LogTxnOutcome): the txn id rides in `size`
// and `name` is empty. Recovery ignores them — blob durability is fully
// described by the intent/commit pairs, and MVCC state is rebuilt empty
// on restart (all surviving rows are frozen history) — but the markers
// make commit order auditable from the log.
enum class WalRecordType : uint8_t {
  kIntentCreate = 1,
  kCommitCreate = 2,
  kIntentDelete = 3,
  kCommitDelete = 4,
  kTxnCommit = 5,
  kTxnAbort = 6,
};

struct WalRecord {
  WalRecordType type = WalRecordType::kIntentCreate;
  std::string name;          // blob file name, relative to the store root
  uint64_t size = 0;         // kIntentCreate: expected blob size
  uint32_t content_crc = 0;  // kIntentCreate: CRC32C of the blob content
};

// Append-only log with CRC-framed records.
class WriteAheadLog {
 public:
  // Opens (creating if missing) the log at `path` and replays existing
  // records into `recovered`, stopping silently at a torn/corrupt tail.
  static Result<std::unique_ptr<WriteAheadLog>> Open(
      Vfs* vfs, std::string path, std::vector<WalRecord>* recovered);

  // Appends one record; with `sync`, makes it durable before returning.
  Status Append(const WalRecord& record, bool sync);

  // Truncates the log to empty — called after recovery has folded the old
  // log into the manifest checkpoint.
  Status Reset();

  const std::string& path() const { return path_; }

 private:
  WriteAheadLog(Vfs* vfs, std::string path)
      : vfs_(vfs), path_(std::move(path)) {}

  Status EnsureOpen();

  Vfs* vfs_;
  std::string path_;
  std::unique_ptr<WritableFile> file_;
};

// Serializes one record (framing + CRC); exposed for tests.
std::string EncodeWalRecord(const WalRecord& record);

}  // namespace htg::storage

