#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/synchronization.h"
#include "storage/buffer_pool.h"
#include "storage/vfs.h"
#include "storage/wal.h"

namespace htg::storage {

// Streaming reader over one FileStream BLOB, modeled on SqlBytes.GetBytes
// with the SequentialAccess flag: positioned reads that are cheap when
// sequential. The file-wrapper TVFs call GetBytes from their ReadChunk()
// pager (paper Fig. 5). The reader holds the blob's RandomAccessFile open
// for its lifetime (one open per stream, positioned ReadAt per chunk —
// never a re-open or whole-file read per access); when the store has a
// buffer pool, chunk reads are additionally served from cached frames, so
// the wrap-read benches' repeated passes over one blob stop re-paying
// file I/O.
class FileStreamReader {
 public:
  FileStreamReader(const FileStreamReader&) = delete;
  FileStreamReader& operator=(const FileStreamReader&) = delete;

  // Reads up to `len` bytes starting at `offset` into `buf`; returns the
  // number of bytes read (0 at EOF).
  Result<size_t> GetBytes(uint64_t offset, char* buf, size_t len);

  uint64_t size() const { return size_; }

 private:
  friend class FileStreamStore;
  FileStreamReader(std::unique_ptr<RandomAccessFile> file, uint64_t size,
                   BufferPool* pool, uint32_t pool_file_id,
                   size_t chunk_bytes)
      : file_(std::move(file)),
        size_(size),
        pool_(pool),
        pool_file_id_(pool_file_id),
        chunk_bytes_(chunk_bytes) {}

  // Null in pooled mode (the pool owns the handle).
  std::unique_ptr<RandomAccessFile> file_;
  uint64_t size_ = 0;
  BufferPool* pool_ = nullptr;
  uint32_t pool_file_id_ = 0;
  size_t chunk_bytes_ = 0;
};

// Durability knobs for the store.
struct FileStreamOptions {
  // All file access goes through this seam; null = Vfs::Default(). Tests
  // pass a FaultInjectingVfs here.
  Vfs* vfs = nullptr;
  // Transient-fault retry (see RunWithRetries).
  RetryPolicy retry;
  // Verify the manifest CRC32C on every ReadAll (whole-blob reads).
  bool verify_on_read = true;
  // When set, OpenStream readers serve fixed-size chunks of the blob
  // from this pool (not checksummed — blob integrity is the manifest's
  // whole-file CRC). Database::Open wires its shared pool here.
  BufferPool* buffer_pool = nullptr;
  // Frame granularity of pooled blob reads; matches the file-wrapper
  // TVFs' default chunk size.
  size_t pool_chunk_bytes = 64 * 1024;
};

// The engine-managed BLOB container: each FILESTREAM column value is a
// file in this directory tree, under the engine's control (created and
// deleted with the owning row, counted by the table's storage statistics),
// while remaining accessible by path to external tools — the SQL Server
// 2008 FileStream design the paper's hybrid approach builds on (§2.3.6).
//
// Durability: the store keeps a blob catalog (name -> size + CRC32C) in
// `MANIFEST`, checkpointed atomically, plus a write-ahead intent log
// `wal.log` (see wal.h for the protocol). Blob content is written to a
// temp file, fsynced, and renamed into place, so a crash at any point
// leaves every blob either fully present with a matching checksum or
// absent — never a torn prefix under its final name. Open() replays the
// log against filesystem reality and re-checkpoints.
class FileStreamStore {
 public:
  // Counts of the repair actions the last Open() performed.
  struct RecoveryStats {
    uint64_t creates_rolled_forward = 0;  // intent + complete file, no commit
    uint64_t creates_rolled_back = 0;     // intent + missing/torn file
    uint64_t deletes_completed = 0;       // delete intent without commit
    uint64_t orphans_removed = 0;         // *.tmp and unreachable files
    uint64_t missing_blobs_dropped = 0;   // manifest entry without a file
  };

  // `root` is created if missing; crash recovery runs before returning.
  static Result<std::unique_ptr<FileStreamStore>> Open(
      std::string root, FileStreamOptions options = {});

  ~FileStreamStore();

  // Writes `bytes` to a fresh BLOB file and returns its absolute path
  // (PathName() in the paper's T-SQL listing). Crash-atomic; transient
  // I/O faults are retried with backoff.
  Result<std::string> CreateBlob(const std::string& name_hint,
                                 std::string_view bytes);

  // Bulk-imports an existing file (OPENROWSET(BULK ..., SINGLE_BLOB)).
  Result<std::string> ImportFile(const std::string& source_path,
                                 const std::string& name_hint);

  // Opens a BLOB for streaming reads.
  Result<std::unique_ptr<FileStreamReader>> OpenStream(
      const std::string& path) const;

  // Reads an entire BLOB into memory (small BLOBs / tests); verifies the
  // manifest checksum and returns Status::Corruption on mismatch.
  Result<std::string> ReadAll(const std::string& path) const;

  Result<uint64_t> BlobSize(const std::string& path) const;

  Status Delete(const std::string& path);

  // Recomputes the blob's content CRC32C and compares it to the manifest
  // (torn-page/bit-rot audit; the crash-recovery harness sweeps this).
  Status VerifyBlob(const std::string& path) const;

  // Absolute paths of every blob in the durable catalog.
  std::vector<std::string> ListBlobs() const;

  // Total bytes across every BLOB in the store.
  uint64_t TotalBytes() const;

  const std::string& root() const { return root_; }
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  // Removes every BLOB (used by DROP DATABASE and test teardown).
  Status Clear();

  // Appends an advisory MVCC transaction-outcome marker (kTxnCommit /
  // kTxnAbort) to the intent log. Not synced: the marker is an audit
  // trail of commit order, not a durability point.
  Status LogTxnOutcome(uint64_t txn_id, bool committed);

 private:
  struct BlobMeta {
    uint64_t size = 0;
    uint32_t crc = 0;
  };

  FileStreamStore(std::string root, FileStreamOptions options, Vfs* vfs)
      : root_(std::move(root)), options_(options), vfs_(vfs) {}

  // Replays the WAL against filesystem reality, removes orphans, and
  // checkpoints the manifest. Called once from Open(); takes mu_ for its
  // whole run (recovery is single-threaded, but the manifest/WAL state it
  // rebuilds is guarded).
  Status Recover();
  Status LoadManifest() HTG_REQUIRES(mu_);
  // Atomically rewrites MANIFEST from manifest_.
  Status WriteManifestLocked() HTG_REQUIRES(mu_);
  // Maps an absolute blob path back to its store-relative name.
  Result<std::string> NameForPath(const std::string& path) const;
  // Drops the blob's chunk-cache registration, if any.
  void UnpoolLocked(const std::string& path) HTG_REQUIRES(mu_);

  std::string root_;
  FileStreamOptions options_;
  Vfs* vfs_;
  RecoveryStats recovery_stats_;

  mutable Mutex mu_{"FileStreamStore::mu_"};
  std::unique_ptr<WriteAheadLog> wal_ HTG_GUARDED_BY(mu_);
  std::map<std::string, BlobMeta> manifest_ HTG_GUARDED_BY(mu_);
  // Blobs registered for chunk caching: path -> (pool file id, size).
  // Registered lazily on first OpenStream, dropped on Delete/Clear.
  mutable std::map<std::string, std::pair<uint32_t, uint64_t>> pooled_
      HTG_GUARDED_BY(mu_);
  uint64_t next_id_ HTG_GUARDED_BY(mu_) = 0;
};

}  // namespace htg::storage

