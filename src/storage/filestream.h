#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/vfs.h"
#include "storage/wal.h"

namespace htg::storage {

// Streaming reader over one FileStream BLOB, modeled on SqlBytes.GetBytes
// with the SequentialAccess flag: positioned reads that are cheap when
// sequential. The file-wrapper TVFs call GetBytes from their ReadChunk()
// pager (paper Fig. 5).
class FileStreamReader {
 public:
  FileStreamReader(const FileStreamReader&) = delete;
  FileStreamReader& operator=(const FileStreamReader&) = delete;

  // Reads up to `len` bytes starting at `offset` into `buf`; returns the
  // number of bytes read (0 at EOF).
  Result<size_t> GetBytes(uint64_t offset, char* buf, size_t len);

  uint64_t size() const { return file_->size(); }

 private:
  friend class FileStreamStore;
  explicit FileStreamReader(std::unique_ptr<RandomAccessFile> file)
      : file_(std::move(file)) {}

  std::unique_ptr<RandomAccessFile> file_;
};

// Durability knobs for the store.
struct FileStreamOptions {
  // All file access goes through this seam; null = Vfs::Default(). Tests
  // pass a FaultInjectingVfs here.
  Vfs* vfs = nullptr;
  // Transient-fault retry (see RunWithRetries).
  RetryPolicy retry;
  // Verify the manifest CRC32C on every ReadAll (whole-blob reads).
  bool verify_on_read = true;
};

// The engine-managed BLOB container: each FILESTREAM column value is a
// file in this directory tree, under the engine's control (created and
// deleted with the owning row, counted by the table's storage statistics),
// while remaining accessible by path to external tools — the SQL Server
// 2008 FileStream design the paper's hybrid approach builds on (§2.3.6).
//
// Durability: the store keeps a blob catalog (name -> size + CRC32C) in
// `MANIFEST`, checkpointed atomically, plus a write-ahead intent log
// `wal.log` (see wal.h for the protocol). Blob content is written to a
// temp file, fsynced, and renamed into place, so a crash at any point
// leaves every blob either fully present with a matching checksum or
// absent — never a torn prefix under its final name. Open() replays the
// log against filesystem reality and re-checkpoints.
class FileStreamStore {
 public:
  // Counts of the repair actions the last Open() performed.
  struct RecoveryStats {
    uint64_t creates_rolled_forward = 0;  // intent + complete file, no commit
    uint64_t creates_rolled_back = 0;     // intent + missing/torn file
    uint64_t deletes_completed = 0;       // delete intent without commit
    uint64_t orphans_removed = 0;         // *.tmp and unreachable files
    uint64_t missing_blobs_dropped = 0;   // manifest entry without a file
  };

  // `root` is created if missing; crash recovery runs before returning.
  static Result<std::unique_ptr<FileStreamStore>> Open(
      std::string root, FileStreamOptions options = {});

  // Writes `bytes` to a fresh BLOB file and returns its absolute path
  // (PathName() in the paper's T-SQL listing). Crash-atomic; transient
  // I/O faults are retried with backoff.
  Result<std::string> CreateBlob(const std::string& name_hint,
                                 std::string_view bytes);

  // Bulk-imports an existing file (OPENROWSET(BULK ..., SINGLE_BLOB)).
  Result<std::string> ImportFile(const std::string& source_path,
                                 const std::string& name_hint);

  // Opens a BLOB for streaming reads.
  Result<std::unique_ptr<FileStreamReader>> OpenStream(
      const std::string& path) const;

  // Reads an entire BLOB into memory (small BLOBs / tests); verifies the
  // manifest checksum and returns Status::Corruption on mismatch.
  Result<std::string> ReadAll(const std::string& path) const;

  Result<uint64_t> BlobSize(const std::string& path) const;

  Status Delete(const std::string& path);

  // Recomputes the blob's content CRC32C and compares it to the manifest
  // (torn-page/bit-rot audit; the crash-recovery harness sweeps this).
  Status VerifyBlob(const std::string& path) const;

  // Absolute paths of every blob in the durable catalog.
  std::vector<std::string> ListBlobs() const;

  // Total bytes across every BLOB in the store.
  uint64_t TotalBytes() const;

  const std::string& root() const { return root_; }
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  // Removes every BLOB (used by DROP DATABASE and test teardown).
  Status Clear();

 private:
  struct BlobMeta {
    uint64_t size = 0;
    uint32_t crc = 0;
  };

  FileStreamStore(std::string root, FileStreamOptions options, Vfs* vfs)
      : root_(std::move(root)), options_(options), vfs_(vfs) {}

  // Replays the WAL against filesystem reality, removes orphans, and
  // checkpoints the manifest. Called once from Open().
  Status Recover();
  Status LoadManifest();
  // Atomically rewrites MANIFEST from manifest_ (caller holds mu_).
  Status WriteManifestLocked();
  // Maps an absolute blob path back to its store-relative name.
  Result<std::string> NameForPath(const std::string& path) const;

  std::string root_;
  FileStreamOptions options_;
  Vfs* vfs_;
  RecoveryStats recovery_stats_;

  mutable std::mutex mu_;
  std::unique_ptr<WriteAheadLog> wal_;
  std::map<std::string, BlobMeta> manifest_;
  uint64_t next_id_ = 0;
};

}  // namespace htg::storage

