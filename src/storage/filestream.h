#ifndef HTG_STORAGE_FILESTREAM_H_
#define HTG_STORAGE_FILESTREAM_H_

#include <cstdio>
#include <memory>
#include <string>

#include "common/result.h"

namespace htg::storage {

// Streaming reader over one FileStream BLOB, modeled on SqlBytes.GetBytes
// with the SequentialAccess flag: positioned reads that are cheap when
// sequential. The file-wrapper TVFs call GetBytes from their ReadChunk()
// pager (paper Fig. 5).
class FileStreamReader {
 public:
  ~FileStreamReader();

  FileStreamReader(const FileStreamReader&) = delete;
  FileStreamReader& operator=(const FileStreamReader&) = delete;

  // Reads up to `len` bytes starting at `offset` into `buf`; returns the
  // number of bytes read (0 at EOF).
  Result<size_t> GetBytes(uint64_t offset, char* buf, size_t len);

  uint64_t size() const { return size_; }

 private:
  friend class FileStreamStore;
  FileStreamReader(FILE* file, uint64_t size) : file_(file), size_(size) {}

  FILE* file_;
  uint64_t size_;
  uint64_t pos_ = 0;
};

// The engine-managed BLOB container: each FILESTREAM column value is a
// file in this directory tree, under the engine's control (created and
// deleted with the owning row, counted by the table's storage statistics),
// while remaining accessible by path to external tools — the SQL Server
// 2008 FileStream design the paper's hybrid approach builds on (§2.3.6).
class FileStreamStore {
 public:
  // `root` is created if missing.
  static Result<std::unique_ptr<FileStreamStore>> Open(std::string root);

  // Writes `bytes` to a fresh BLOB file and returns its absolute path
  // (PathName() in the paper's T-SQL listing).
  Result<std::string> CreateBlob(const std::string& name_hint,
                                 std::string_view bytes);

  // Bulk-imports an existing file (OPENROWSET(BULK ..., SINGLE_BLOB)).
  Result<std::string> ImportFile(const std::string& source_path,
                                 const std::string& name_hint);

  // Opens a BLOB for streaming reads.
  Result<std::unique_ptr<FileStreamReader>> OpenStream(
      const std::string& path) const;

  // Reads an entire BLOB into memory (small BLOBs / tests).
  Result<std::string> ReadAll(const std::string& path) const;

  Result<uint64_t> BlobSize(const std::string& path) const;

  Status Delete(const std::string& path);

  // Total bytes across every BLOB in the store.
  uint64_t TotalBytes() const;

  const std::string& root() const { return root_; }

  // Removes every BLOB (used by DROP DATABASE and test teardown).
  Status Clear();

 private:
  explicit FileStreamStore(std::string root) : root_(std::move(root)) {}

  std::string root_;
  uint64_t next_id_ = 0;
};

}  // namespace htg::storage

#endif  // HTG_STORAGE_FILESTREAM_H_
