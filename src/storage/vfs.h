#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace htg::storage {

// The I/O abstraction every durable file access in the engine goes through
// (FileStream blobs, the write-ahead log, the blob manifest). Having one
// seam between the engine and the OS is what makes deterministic fault
// injection possible: FaultInjectingVfs (fault_injection.h) wraps any Vfs
// and fails the N-th operation with a short write, torn page, fsync error,
// ENOSPC, or transient EIO — the crash-recovery sweep in
// tests/faultinject_test.cc drives every one of those points.

// Sequential writer with explicit durability points.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  // Flushes application + OS buffers to the device (fflush + fsync).
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

// Positioned reader (pread-style; safe for concurrent readers).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  // Reads up to `len` bytes at `offset`; returns bytes read (0 at EOF).
  virtual Result<size_t> ReadAt(uint64_t offset, char* buf,
                                size_t len) const = 0;
  virtual uint64_t size() const = 0;
};

class Vfs {
 public:
  virtual ~Vfs() = default;

  // The process-wide POSIX-backed instance.
  static Vfs* Default();

  // Creates (truncating) a file for writing.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;
  // Opens (creating if missing) a file for appending — the WAL's mode.
  virtual Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) = 0;
  virtual Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) = 0;
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;

  // Atomic within a filesystem; the commit point of every blob write.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;
  virtual Status CreateDirs(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
  // Regular-file names (not paths) in `path`, unordered.
  virtual Result<std::vector<std::string>> ListDir(const std::string& path) = 0;
  // Makes a preceding rename/create/delete in `path` durable.
  virtual Status SyncDir(const std::string& path) = 0;
};

// Writes `data` to `path` crash-atomically: temp file in the same
// directory, Sync, Close, rename into place, directory sync. After a crash
// at any point, `path` either holds its previous content (or is absent) or
// holds all of `data` — never a torn prefix under the final name.
Status WriteFileAtomic(Vfs* vfs, const std::string& path,
                       std::string_view data);

// Retry-with-backoff for transient I/O faults (EINTR-ish conditions, the
// injected kTransientEio). Only Status::Transient results are retried;
// anything else returns immediately.
struct RetryPolicy {
  int max_attempts = 4;
  int initial_backoff_us = 100;
  int backoff_multiplier = 4;
};

Status RunWithRetries(const RetryPolicy& policy,
                      const std::function<Status()>& op);

}  // namespace htg::storage

