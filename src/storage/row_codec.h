#pragma once

#include <string>

#include "common/result.h"
#include "common/slice.h"
#include "types/schema.h"
#include "types/value.h"

namespace htg::storage {

// Table compression levels, mirroring SQL Server 2008's
// `WITH (DATA_COMPRESSION = NONE | ROW | PAGE)`:
//
//  * kNone — fixed-width storage: INT is 4 bytes, BIGINT 8, CHAR(n) is blank
//    padded to n, variable strings carry a 4-byte length.
//  * kRow  — variable-length storage for numeric types and fixed-length
//    character strings (varints, trimmed CHAR), per the paper's §2.3.5.
//  * kPage — row compression plus per-page column-prefix and dictionary
//    compression, applied by PageBuilder over the rows sharing a page.
enum class Compression { kNone = 0, kRow = 1, kPage = 2 };

std::string_view CompressionName(Compression c);

// Encodes one field (without null information) at the given level.
// kPage fields use the kRow field encoding; the prefix/dictionary stage
// happens in PageBuilder over these encoded fields.
void EncodeField(const Column& column, const Value& value, Compression mode,
                 std::string* out);

// Decodes one field written by EncodeField. Returns the byte past the field
// or nullptr on corruption.
const char* DecodeField(const Column& column, Compression mode, const char* p,
                        const char* limit, Value* value);

// Encodes a full row: null bitmap followed by the non-null fields.
Status EncodeRow(const Schema& schema, const Row& row, Compression mode,
                 std::string* out);

// Decodes a full row written by EncodeRow.
Status DecodeRow(const Schema& schema, Compression mode, Slice data, Row* row);

// Parses a canonical 36-char GUID into 16 raw bytes ("" on failure).
std::string GuidToBytes(const std::string& guid);
// Formats 16 raw bytes as a canonical GUID string.
std::string BytesToGuid(std::string_view bytes);

}  // namespace htg::storage

